// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation as testing.B benchmarks, reporting the headline
// numbers as custom metrics so `go test -bench` output doubles as a
// reproduction summary (see EXPERIMENTS.md for paper-vs-measured).
//
//	go test -bench=Fig7 -benchtime=1x .
//	go test -bench=. -benchmem ./...
package repro

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/compress"
	"repro/internal/experiments"
	"repro/internal/gpu/sim"
	"repro/internal/gpu/trace"
	"repro/internal/hw"
	"repro/internal/slc"
	"repro/internal/workloads"
)

// sharedRunner memoises runs across benchmarks, so Figure 8 reuses Figure
// 7's simulations exactly as the harness in internal/experiments does.
var (
	runnerOnce sync.Once
	runner     *experiments.Runner
)

func sharedR() *experiments.Runner {
	runnerOnce.Do(func() { runner = experiments.NewRunner() })
	return runner
}

// BenchmarkFig1CompressionRatios regenerates Figure 1: raw vs effective
// compression ratio of BDI, FPC, C-PACK and E2MC at 32 B MAG.
func BenchmarkFig1CompressionRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure1(sharedR(), compress.MAG32)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.GM.Raw["E2MC"], "E2MC-rawCR")
		b.ReportMetric(f.GM.Eff["E2MC"], "E2MC-effCR")
		b.ReportMetric(f.GapPct("E2MC"), "E2MC-gap%")
	}
}

// BenchmarkFig2Distribution regenerates Figure 2: the distribution of
// compressed blocks above multiples of MAG.
func BenchmarkFig2Distribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure2(sharedR(), compress.MAG32)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.FracAboveMultiple()*100, "recoverable%")
	}
}

// BenchmarkTable1Hardware regenerates Table I from the analytical 32 nm
// model.
func BenchmarkTable1Hardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := hw.Model()
		b.ReportMetric(m.Comp.AreaMM2*1000, "comp-area-µm2/1000")
		b.ReportMetric(m.Comp.PowerMW, "comp-power-mW")
		b.ReportMetric(m.Comp.FreqGHz, "comp-freq-GHz")
	}
}

// BenchmarkFig7SpeedupError regenerates Figure 7: speedup and error of the
// three TSLC variants vs E2MC (paper GM: 1.090/1.098/1.097; GM error 0.99%).
func BenchmarkFig7SpeedupError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure7(sharedR())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.GMSpeedup[slc.SIMP], "GM-speedup-SIMP")
		b.ReportMetric(f.GMSpeedup[slc.PRED], "GM-speedup-PRED")
		b.ReportMetric(f.GMSpeedup[slc.OPT], "GM-speedup-OPT")
		b.ReportMetric(f.GMErrorPctOPT, "GM-error%-OPT")
	}
}

// BenchmarkFig8BandwidthEnergy regenerates Figure 8: normalised bandwidth,
// energy and EDP (paper GM: 0.86 / 0.917 / 0.825).
func BenchmarkFig8BandwidthEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure8(sharedR())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.GMBw[slc.OPT], "GM-bandwidth-OPT")
		b.ReportMetric(f.GMEnergy[slc.OPT], "GM-energy-OPT")
		b.ReportMetric(f.GMEDP[slc.OPT], "GM-EDP-OPT")
	}
}

// BenchmarkFig9MAGSensitivity regenerates Figure 9: TSLC-OPT across MAG
// 16/32/64 B (paper GM speedups: 1.05 / 1.097 / 1.09).
func BenchmarkFig9MAGSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure9(sharedR())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.GMSpeedup[compress.MAG16], "GM-speedup-16B")
		b.ReportMetric(f.GMSpeedup[compress.MAG32], "GM-speedup-32B")
		b.ReportMetric(f.GMSpeedup[compress.MAG64], "GM-speedup-64B")
	}
}

// BenchmarkSectionVCEffectiveCR regenerates the §V-C compression-ratio
// numbers (paper: raw 1.54; effective 1.41/1.31/1.16 at 16/32/64 B).
func BenchmarkSectionVCEffectiveCR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.Figure9(sharedR())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(f.RawCRGM, "raw-CR")
		b.ReportMetric(f.EffCRGM[compress.MAG16], "eff-CR-16B")
		b.ReportMetric(f.EffCRGM[compress.MAG32], "eff-CR-32B")
		b.ReportMetric(f.EffCRGM[compress.MAG64], "eff-CR-64B")
	}
}

// benchRunAll executes the Figure-7 sweep on a fresh (cold) runner per
// iteration, so serial and parallel timings are comparable. Run with
// -benchtime=1x; compare BenchmarkRunAllSerial to BenchmarkRunAllParallel
// for the evaluation-engine speedup.
func benchRunAll(b *testing.B, workers int) {
	cells := experiments.Fig7Cells()
	b.ReportMetric(float64(len(cells)), "cells")
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner()
		if _, err := r.RunAll(cells, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllSerial is the Figure-7 sweep on one worker.
func BenchmarkRunAllSerial(b *testing.B) { benchRunAll(b, 1) }

// BenchmarkRunAllParallel is the same sweep fanned across all cores.
func BenchmarkRunAllParallel(b *testing.B) { benchRunAll(b, runtime.GOMAXPROCS(0)) }

// BenchmarkAblationThreshold sweeps the lossy threshold on DCT — the design
// knob of §III-B (paper default 16 B).
func BenchmarkAblationThreshold(b *testing.B) {
	w, err := workloads.ByName("DCT")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r := sharedR()
		base, err := r.Run(w, experiments.E2MCConfig(compress.MAG32))
		if err != nil {
			b.Fatal(err)
		}
		for _, tb := range []int{8, 16, 32} {
			res, err := r.Run(w, experiments.TSLCConfig(slc.OPT, compress.MAG32, tb*8))
			if err != nil {
				b.Fatal(err)
			}
			name := map[int]string{8: "t8B", 16: "t16B", 32: "t32B"}[tb]
			b.ReportMetric(base.Sim.TimeNs/res.Sim.TimeNs, "speedup-"+name)
		}
	}
}

// BenchmarkAblationExtraNodes isolates TSLC-OPT's extra tree nodes (§III-F):
// how many symbols are approximated per lossy block with and without them.
func BenchmarkAblationExtraNodes(b *testing.B) {
	w, err := workloads.ByName("DCT")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r := sharedR()
		pred, err := r.Run(w, experiments.TSLCConfig(slc.PRED, compress.MAG32, 128))
		if err != nil {
			b.Fatal(err)
		}
		opt, err := r.Run(w, experiments.TSLCConfig(slc.OPT, compress.MAG32, 128))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pred.ErrorFrac*100, "error%-no-extra-nodes")
		b.ReportMetric(opt.ErrorFrac*100, "error%-with-extra-nodes")
	}
}

// BenchmarkAblationMDC shrinks the metadata cache to expose its role.
func BenchmarkAblationMDC(b *testing.B) {
	w, err := workloads.ByName("NN")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r := sharedR()
		cfg := experiments.TSLCConfig(slc.OPT, compress.MAG32, 128)
		full, err := experiments.RerunTiming(r, w, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		tiny, err := experiments.RerunTiming(r, w, cfg, func(c *sim.Config) {
			c.MC.MDCLines = 16
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tiny.TimeNs/full.TimeNs, "slowdown-16-line-MDC")
		b.ReportMetric(float64(tiny.MC.MDCMisses), "MDC-misses-tiny")
		b.ReportMetric(float64(full.MC.MDCMisses), "MDC-misses-default")
	}
}

// BenchmarkAblationPrediction compares the decode-side reconstruction
// policies on NN, where value prediction matters most (§III-E).
func BenchmarkAblationPrediction(b *testing.B) {
	w, err := workloads.ByName("NN")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r := sharedR()
		for _, v := range []slc.Variant{slc.SIMP, slc.PRED} {
			res, err := r.Run(w, experiments.TSLCConfig(v, compress.MAG32, 128))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.ErrorFrac*100, "error%-"+v.String())
		}
	}
}

// simBenchTrace is a synthetic streaming trace stressing the event engine:
// 1024 warps × 200 accesses with a write mixed in, matching the shape the
// sim package's own benchmarks use.
func simBenchTrace() *trace.Trace {
	k := trace.Kernel{Name: "bench", Warps: make([][]trace.Access, 1024)}
	for w := range k.Warps {
		accs := make([]trace.Access, 200)
		for i := range accs {
			addr := uint64(w)<<20 | uint64(i)<<7
			accs[i] = trace.Access{Addr: addr, Bursts: 4, Compute: 4, Compressed: true}
			if i%16 == 15 {
				accs[i].Write = true
			}
		}
		k.Warps[w] = accs
	}
	return &trace.Trace{Kernels: []trace.Kernel{k}}
}

// benchSimReplay replays the synthetic trace through one reusable Simulator
// at the given worker count, reporting events/s and ns/event — the same
// metrics `slcbench -simbench` tracks per workload.
func benchSimReplay(b *testing.B, workers int) {
	cfg := sim.DefaultConfig()
	cfg.Workers = workers
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr := simBenchTrace()
	want, err := s.Replay(tr) // warm-up; pins the expected Result
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := s.Replay(tr)
		if err != nil {
			b.Fatal(err)
		}
		if got != want {
			b.Fatalf("replay diverged:\nfirst:  %+v\nreplay: %+v", want, got)
		}
	}
	b.StopTimer()
	events := float64(s.Events())
	nsPerEvent := float64(b.Elapsed().Nanoseconds()) / (float64(b.N) * events)
	b.ReportMetric(nsPerEvent, "ns/event")
	b.ReportMetric(1e9/nsPerEvent, "events/s")
}

// BenchmarkSimSerial is the trace replay on the serial engine.
func BenchmarkSimSerial(b *testing.B) { benchSimReplay(b, 1) }

// BenchmarkSimSharded4 shards the replay across 4 event-lane workers.
func BenchmarkSimSharded4(b *testing.B) { benchSimReplay(b, 4) }

// BenchmarkSimShardedAll shards the replay across all cores.
func BenchmarkSimShardedAll(b *testing.B) { benchSimReplay(b, runtime.GOMAXPROCS(0)) }

// decodeCorpora builds (once) the per-workload entropy-decode corpora the
// decode benchmarks share: blocks sampled from each registered workload's
// device image, encoded with that workload's trained table.
var (
	corporaOnce sync.Once
	corpora     []*experiments.DecodeCorpus
	corporaErr  error
)

func decodeCorpora() ([]*experiments.DecodeCorpus, error) {
	corporaOnce.Do(func() {
		for _, w := range workloads.Registry() {
			c, err := experiments.BuildDecodeCorpus(sharedR(), w, 0)
			if err != nil {
				corporaErr = err
				return
			}
			corpora = append(corpora, c)
		}
	})
	return corpora, corporaErr
}

// benchDecode drives one decoder over every corpus block per iteration and
// reports the mean ns/block. Compare BenchmarkDecodeLUT against
// BenchmarkDecodeReference for the LUT fast-path speedup (the PR's
// acceptance bar is ≥ 3×); `slcbench -decodebench` reports the same split
// per workload.
func benchDecode(b *testing.B, fn func(c *experiments.DecodeCorpus, it *experiments.DecodeItem) error) {
	cs, err := decodeCorpora()
	if err != nil {
		b.Fatal(err)
	}
	blocks := 0
	for _, c := range cs {
		blocks += len(c.Items)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cs {
			for j := range c.Items {
				if err := fn(c, &c.Items[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*blocks), "ns/block")
}

// BenchmarkDecodeLUT times the table-driven decode fast path.
func BenchmarkDecodeLUT(b *testing.B) {
	benchDecode(b, func(c *experiments.DecodeCorpus, it *experiments.DecodeItem) error {
		_, err := c.Table.DecodeWays(it.Payload, it.Starts, 0, 0)
		return err
	})
}

// BenchmarkDecodeReference times the retained bit-by-bit decoder.
func BenchmarkDecodeReference(b *testing.B) {
	benchDecode(b, func(c *experiments.DecodeCorpus, it *experiments.DecodeItem) error {
		_, err := c.Table.DecodeWaysRef(it.Payload, it.Starts, 0, 0)
		return err
	})
}

// BenchmarkDecodeParallel times the gap-array parallel decoder. Per-block
// goroutine fan-out only pays off against decode-side latency hiding, not
// raw throughput — expect it to trail the serial LUT path here.
func BenchmarkDecodeParallel(b *testing.B) {
	benchDecode(b, func(c *experiments.DecodeCorpus, it *experiments.DecodeItem) error {
		_, err := c.Table.DecodeWaysParallel(it.Payload, it.Starts, 0, 0, &it.Gaps)
		return err
	})
}
