package analysis_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// The harness is this module's analysistest: each testdata package is parsed
// and type-checked under a synthetic import path (chosen inside the analyzer's
// Match scope), the full suite runs over the resulting program with the same
// allow suppression the driver applies, and the surviving diagnostics are
// matched against `// want `+"`regex`"+` expectations in the sources. A
// diagnostic without a matching want, or a want without a matching
// diagnostic, fails the test — so deleting an analyzer from the suite makes
// its testdata wants fail, which is the guard the suite rides on.

// testPkg is one testdata package: synthetic import path, source dir, and
// the basenames to parse syntax-only as test files (the registry analyzer
// reads fuzz family assignments from those).
type testPkg struct {
	path      string
	dir       string
	testFiles map[string]bool
}

var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

// stdExports lists export data once per test binary for the std packages the
// testdata sources import.
func stdExports(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		exportsMap, exportsErr = load.Exports("../..", "fmt", "time", "math/rand", "math/rand/v2", "sort")
	})
	if exportsErr != nil {
		t.Fatalf("listing std export data: %v", exportsErr)
	}
	return exportsMap
}

// srcImporter resolves previously source-checked testdata packages first and
// falls back to build-cache export data, so testdata packages can import each
// other under their synthetic paths.
type srcImporter struct {
	base types.Importer
	srcs map[string]*types.Package
}

func (i *srcImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.srcs[path]; ok {
		return p, nil
	}
	return i.base.Import(path)
}

// runAnalysisTest checks pkgs in the given order (dependencies first), runs
// every analyzer in analysis.All() that matches, applies allow suppression,
// and compares diagnostics to want expectations.
func runAnalysisTest(t *testing.T, pkgs []testPkg) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &srcImporter{base: load.Importer(fset, stdExports(t)), srcs: make(map[string]*types.Package)}
	prog := &analysis.Program{Fset: fset, Facts: analysis.NewFactStore()}

	for _, tp := range pkgs {
		entries, err := os.ReadDir(tp.dir)
		if err != nil {
			t.Fatalf("reading %s: %v", tp.dir, err)
		}
		var srcNames, testNames []string
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") {
				continue
			}
			if tp.testFiles[name] {
				testNames = append(testNames, name)
			} else {
				srcNames = append(srcNames, name)
			}
		}
		sort.Strings(srcNames)
		sort.Strings(testNames)
		info, err := load.Check(fset, imp, tp.path, tp.dir, srcNames)
		if err != nil {
			t.Fatalf("type-checking %s: %v", tp.path, err)
		}
		for _, name := range testNames {
			f, err := parser.ParseFile(fset, filepath.Join(tp.dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parsing %s: %v", name, err)
			}
			info.TestFiles = append(info.TestFiles, f)
		}
		imp.srcs[tp.path] = info.Pkg
		prog.Packages = append(prog.Packages, info)
	}

	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }
	analyzers := analysis.All()
	for _, p := range prog.Packages {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(p.Path) {
				continue
			}
			if err := a.Run(prog.NewPass(a, p, report)); err != nil {
				t.Fatalf("%s on %s: %v", a.Name, p.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finalize != nil {
			a.Finalize(prog, report)
		}
	}

	var files []*ast.File
	for _, p := range prog.Packages {
		files = append(files, p.Files...)
		files = append(files, p.TestFiles...)
	}
	allows := analysis.CollectAllows(fset, files, analyzers)
	diags = append(diags, allows.Malformed...)
	var active []analysis.Diagnostic
	for _, d := range diags {
		if _, ok := allows.Suppresses(d); !ok {
			active = append(active, d)
		}
	}

	checkWants(t, fset, files, active)
}

var wantRe = regexp.MustCompile("// want `([^`]+)`")

type wantExp struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// checkWants matches diagnostics against the `// want` expectations in files,
// both directions.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*wantExp
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), m[1], err)
					}
					pos := fset.Position(c.Pos())
					wants = append(wants, &wantExp{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s: %s: %s", fmtPos(pos), d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

func fmtPos(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

func TestDeterminismAnalyzer(t *testing.T) {
	runAnalysisTest(t, []testPkg{
		{path: "repro/internal/gpu/dettest", dir: "testdata/determinism/det"},
	})
}

func TestPoolSafetyAnalyzer(t *testing.T) {
	runAnalysisTest(t, []testPkg{
		{path: "repro/pooltest/pooldef", dir: "testdata/poolsafety/pooldef"},
		{path: "repro/pooltest/pooluse", dir: "testdata/poolsafety/pooluse"},
	})
}

func TestAllocFreeAnalyzer(t *testing.T) {
	runAnalysisTest(t, []testPkg{
		{path: "repro/alloctest/af", dir: "testdata/allocfree/af"},
	})
}

func TestRegistryAnalyzer(t *testing.T) {
	runAnalysisTest(t, []testPkg{
		{path: "repro/internal/compress", dir: "testdata/registry/compress",
			testFiles: map[string]bool{"fuzz.go": true}},
		{path: "repro/internal/compress/goodfam", dir: "testdata/registry/goodfam"},
		{path: "repro/internal/compress/latefam", dir: "testdata/registry/latefam"},
		{path: "repro/internal/compress/badfam", dir: "testdata/registry/badfam"},
		{path: "repro/internal/compress/orphan", dir: "testdata/registry/orphan"},
		{path: "repro/internal/compress/unfuzzed", dir: "testdata/registry/unfuzzed"},
		{path: "repro/internal/compress/dynfam", dir: "testdata/registry/dynfam"},
		{path: "repro/internal/compress/all", dir: "testdata/registry/all"},
	})
}
