package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocFree turns the AllocsPerRun==0 pins (TestSyncSerialAllocFree,
// TestDecodeWaysAllocFree, TestSimSteadyStateAllocFree) from an
// after-the-fact measurement into an at-the-keyboard diagnostic. A function
// opts in through its doc comment:
//
//	//slclint:allocfree
//	func (t *Table) DecodeWays(...) ... { ... }
//
// Inside an annotated function the analyzer flags the constructs that heap-
// allocate on the steady-state path:
//
//   - make, new, and map/chan composite literals (always allocate);
//   - &T{...} and slice literals (escape candidates — annotate an allow if
//     escape analysis provably keeps one on the stack);
//   - append to a slice declared inside the function (growing a fresh
//     backing array every call; appending to a reused parameter, receiver
//     field or outer buffer amortises to zero);
//   - fmt.* calls and non-constant string concatenation;
//   - function literals that capture variables (the closure context
//     allocates); non-capturing literals are static and stay clean, and
//     their bodies are checked;
//   - interface boxing: a non-pointer concrete value converted to an
//     interface at an assignment, return, or call argument (pointer and
//     interface values re-box for free).
//
// Cold paths inside hot functions (error returns, panics on programming
// errors) carry //slclint:allow allocfree annotations — the runtime pin
// never executes them, and the annotation keeps them visible.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "flag heap-allocating constructs inside functions annotated //slclint:allocfree",
	Run:  runAllocFree,
}

const allocFreeMarker = "//slclint:allocfree"

func runAllocFree(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasMarker(fd.Doc, allocFreeMarker) {
				continue
			}
			c := &allocChecker{pass: pass, fn: fd}
			c.block(fd.Body)
		}
	}
	return nil
}

// allocChecker walks one annotated function.
type allocChecker struct {
	pass *Pass
	fn   *ast.FuncDecl
}

func (c *allocChecker) block(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if c.captures(n) {
				c.pass.Reportf(n.Pos(), "closure captures variables and allocates its context on the heap in %s", c.fn.Name.Name)
				return false // creation already flagged; body runs elsewhere
			}
			return true // non-capturing literal is static; check its body
		case *ast.CallExpr:
			c.call(n)
		case *ast.CompositeLit:
			c.composite(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := unparen(n.X).(*ast.CompositeLit); isLit {
					c.pass.Reportf(n.Pos(), "&composite literal is an escape candidate in allocfree %s; reuse a pooled or stack value", c.fn.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			c.concat(n)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) {
					c.boxing(lhs, n.Rhs[i])
				}
			}
		case *ast.ReturnStmt:
			c.returns(n)
		}
		return true
	})
}

// call flags make/new, fmt calls, fresh-slice appends, and boxing at call
// arguments.
func (c *allocChecker) call(call *ast.CallExpr) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, isBuiltin := c.pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
			switch fun.Name {
			case "make":
				c.pass.Reportf(call.Pos(), "make allocates in allocfree %s; hoist the buffer into a pooled or reused field", c.fn.Name.Name)
			case "new":
				c.pass.Reportf(call.Pos(), "new allocates in allocfree %s", c.fn.Name.Name)
			case "append":
				c.append_(call)
			}
			return
		}
	case *ast.SelectorExpr:
		if obj := c.pass.TypesInfo.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			c.pass.Reportf(call.Pos(), "fmt.%s allocates in allocfree %s", obj.Name(), c.fn.Name.Name)
			return
		}
	}
	c.callBoxing(call)
}

// append_ flags appends whose destination is a slice declared inside the
// function — every call grows a fresh backing array, where the alloc-free
// idiom appends into a reused buffer owned by the receiver or caller.
func (c *allocChecker) append_(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	base := baseIdent(unparen(call.Args[0]))
	if base == nil {
		return // selector/index roots reach state that outlives the call
	}
	obj := c.pass.TypesInfo.ObjectOf(base)
	if obj == nil {
		return
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if c.isParamOrReceiver(v) {
		return
	}
	if v.Pos() >= c.fn.Pos() && v.Pos() <= c.fn.End() {
		c.pass.Reportf(call.Pos(), "append to %s, a slice declared in allocfree %s, grows a fresh backing array every call; append into a reused buffer", base.Name, c.fn.Name.Name)
	}
}

// isParamOrReceiver reports whether v is one of the function's parameters,
// results, or receiver — storage the caller owns and can reuse.
func (c *allocChecker) isParamOrReceiver(v *types.Var) bool {
	ft := c.fn.Type
	within := func(fl *ast.FieldList) bool {
		return fl != nil && v.Pos() >= fl.Pos() && v.Pos() <= fl.End()
	}
	return within(ft.Params) || within(ft.Results) || within(c.fn.Recv)
}

// concat flags non-constant string concatenation.
func (c *allocChecker) concat(b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[b]
	if !ok || tv.Type == nil || tv.Value != nil { // constant-folded concat is free
		return
	}
	if bt, ok := tv.Type.Underlying().(*types.Basic); ok && bt.Info()&types.IsString != 0 {
		c.pass.Reportf(b.Pos(), "string concatenation allocates in allocfree %s", c.fn.Name.Name)
	}
}

// composite flags literals that always heap-allocate.
func (c *allocChecker) composite(lit *ast.CompositeLit) {
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		c.pass.Reportf(lit.Pos(), "map literal allocates in allocfree %s", c.fn.Name.Name)
	case *types.Slice:
		c.pass.Reportf(lit.Pos(), "slice literal allocates its backing array in allocfree %s", c.fn.Name.Name)
	case *types.Chan:
		c.pass.Reportf(lit.Pos(), "channel literal allocates in allocfree %s", c.fn.Name.Name)
	}
}

// boxing flags a concrete non-pointer value assigned into an interface.
func (c *allocChecker) boxing(lhs, rhs ast.Expr) {
	lt, ok := c.pass.TypesInfo.Types[lhs]
	if !ok || lt.Type == nil {
		// := defines: look up the object type
		if id, isID := lhs.(*ast.Ident); isID {
			if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
				c.boxingTo(obj.Type(), rhs)
			}
		}
		return
	}
	c.boxingTo(lt.Type, rhs)
}

func (c *allocChecker) returns(ret *ast.ReturnStmt) {
	sig, ok := c.pass.TypesInfo.Defs[c.fn.Name].Type().(*types.Signature)
	if !ok || sig.Results() == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, r := range ret.Results {
		c.boxingTo(sig.Results().At(i).Type(), r)
	}
}

// callBoxing flags concrete non-pointer arguments passed to interface
// parameters (including variadic ...any).
func (c *allocChecker) callBoxing(call *ast.CallExpr) {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		c.boxingTo(pt, arg)
	}
}

// boxingTo reports rhs if converting it to target boxes a non-pointer
// concrete value. Pointers, maps, channels, funcs and existing interfaces
// fit the interface word without allocating; nil never allocates; untyped
// constants that reach here are boxed too (they materialise at runtime) but
// small-integer runtime caching makes them noise, so only non-constant
// values are flagged.
func (c *allocChecker) boxingTo(target types.Type, rhs ast.Expr) {
	if target == nil {
		return
	}
	if _, isIface := target.Underlying().(*types.Interface); !isIface {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[rhs]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return
	}
	c.pass.Reportf(rhs.Pos(), "%s value boxed into %s allocates in allocfree %s",
		types.TypeString(tv.Type, types.RelativeTo(c.pass.Pkg)),
		types.TypeString(target, types.RelativeTo(c.pass.Pkg)), c.fn.Name.Name)
}

// captures reports whether the function literal references any identifier
// declared outside it (in the enclosing function).
func (c *allocChecker) captures(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj == nil {
			return !found
		}
		v, isVar := obj.(*types.Var)
		if !isVar || isPkgLevelVar(v) {
			return !found
		}
		// declared in the enclosing function but outside the literal
		if v.Pos() >= c.fn.Pos() && v.Pos() < lit.Pos() {
			found = true
		}
		return !found
	})
	return found
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
