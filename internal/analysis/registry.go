package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// registryPkg is the registry's import path; codec family packages live
// directly beneath it.
const registryPkg = "repro/internal/compress"

// registryAllPkg is the aggregator that imports every family for its
// Register side effect.
const registryAllPkg = registryPkg + "/all"

// Registry enforces the codec-registry architecture: every codec package
// under internal/compress/<family> registers itself from an init function,
// every registering package is imported (blank) by compress/all, and every
// statically-known registered codec name is assigned to a fuzz family in the
// compress package's fuzz suite. The first two walk the import graph through
// package facts; the last — and the "family package nobody imports" case,
// which has no inbound fact edge at all — run in the Finalize hook over the
// whole program. It is the static twin of TestFuzzFamiliesCoverRegistry and
// of the Register-at-init panic: those fire when the right binary runs, this
// fires on every build of any package.
var Registry = &Analyzer{
	Name:     "registry",
	Doc:      "enforce codec self-registration from init, compress/all imports, and fuzz family coverage of registered names",
	Run:      runRegistry,
	Finalize: finalizeRegistry,
}

// RegistersFact records that a package calls compress.Register, with the
// statically-known codec names (constant first arguments). Dynamic marks
// registration loops whose names are computed (internal/slc registers its
// three variants from a loop), which static fuzz coverage cannot see.
type RegistersFact struct {
	Names    []string
	Dynamic  bool
	FromInit bool
}

// AFact implements Fact.
func (*RegistersFact) AFact() {}

// FuzzFamiliesFact records the codec names assigned to fuzz families in a
// package's test files (the fuzzFamilies map in fuzz_test.go).
type FuzzFamiliesFact struct{ Names []string }

// AFact implements Fact.
func (*FuzzFamiliesFact) AFact() {}

func runRegistry(pass *Pass) error {
	collectRegisterCalls(pass)
	collectFuzzFamilies(pass)

	path := pass.Pkg.Path()
	if fam, ok := familyOf(path); ok {
		var fact RegistersFact
		if !pass.ImportPackageFact(path, &fact) {
			pass.Reportf(pass.Files[0].Package, "codec package %s never calls compress.Register; every internal/compress family must self-register from init", fam)
		} else if !fact.FromInit {
			pass.Reportf(pass.Files[0].Package, "codec package %s calls compress.Register outside an init function; registration must happen at program start", fam)
		}
	}
	if path == registryAllPkg {
		checkAllImports(pass)
	}
	return nil
}

// familyOf extracts the family element of an internal/compress subpackage
// path ("repro/internal/compress/bdi" → "bdi"); the aggregator package is
// not a family.
func familyOf(path string) (string, bool) {
	rest, ok := strings.CutPrefix(path, registryPkg+"/")
	if !ok || rest == "" || strings.Contains(rest, "/") || rest == "all" {
		return "", false
	}
	return rest, true
}

// collectRegisterCalls exports a RegistersFact if the package calls
// compress.Register (or is the compress package calling its own Register).
func collectRegisterCalls(pass *Pass) {
	fact := RegistersFact{}
	found := false
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inInit := fd.Recv == nil && fd.Name.Name == "init"
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isRegisterCall(pass, call) {
					return true
				}
				found = true
				fact.FromInit = fact.FromInit || inInit
				if len(call.Args) > 0 {
					if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
						fact.Names = append(fact.Names, constant.StringVal(tv.Value))
					} else {
						fact.Dynamic = true
					}
				}
				return true
			})
		}
	}
	if found {
		pass.ExportPackageFact(&fact)
	}
}

// isRegisterCall matches compress.Register(...) — called from a family
// package — and the bare Register(...) inside the compress package itself.
func isRegisterCall(pass *Pass, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	default:
		return false
	}
	return obj != nil && obj.Name() == "Register" && obj.Pkg() != nil && obj.Pkg().Path() == registryPkg
}

// collectFuzzFamilies scans the package's (syntax-only) test files for the
// fuzz family assignment map and exports the covered codec names.
func collectFuzzFamilies(pass *Pass) {
	var names []string
	for _, file := range pass.TestFiles {
		ast.Inspect(file, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, id := range vs.Names {
				if id.Name != "fuzzFamilies" || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				// Map keys are family names; the codec names are the strings
				// inside each value slice.
				for _, el := range lit.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					ast.Inspect(kv.Value, func(m ast.Node) bool {
						if bl, ok := m.(*ast.BasicLit); ok && len(bl.Value) >= 2 && bl.Value[0] == '"' {
							names = append(names, strings.Trim(bl.Value, `"`))
						}
						return true
					})
				}
			}
			return true
		})
	}
	if len(names) > 0 {
		pass.ExportPackageFact(&FuzzFamiliesFact{Names: names})
	}
}

// checkAllImports verifies every family import of compress/all actually
// registers; the converse (a family missing from all) needs the whole
// program and runs in Finalize.
func checkAllImports(pass *Pass) {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if _, ok := familyOf(path); !ok {
				continue
			}
			var fact RegistersFact
			if !pass.ImportPackageFact(path, &fact) {
				pass.Reportf(imp.Pos(), "compress/all imports %s, which never calls compress.Register; the blank import does nothing", path)
			}
		}
	}
}

// finalizeRegistry runs the whole-program closures: families absent from
// compress/all's import set, and registered names absent from the fuzz
// family assignment.
func finalizeRegistry(prog *Program, report func(Diagnostic)) {
	allPkg := prog.Package(registryAllPkg)

	// Which families does compress/all blank-import?
	imported := make(map[string]bool)
	if allPkg != nil {
		for _, file := range allPkg.Files {
			for _, imp := range file.Imports {
				imported[strings.Trim(imp.Path.Value, `"`)] = true
			}
		}
	}

	// Fuzz coverage lives in the registry package's test files.
	var fuzz FuzzFamiliesFact
	fuzzKnown := prog.Facts.PackageFact(registryPkg, &fuzz)
	covered := make(map[string]bool, len(fuzz.Names))
	for _, n := range fuzz.Names {
		covered[n] = true
	}

	for _, p := range prog.Packages {
		_, isFamily := familyOf(p.Path)
		var reg RegistersFact
		registers := prog.Facts.PackageFact(p.Path, &reg)
		if isFamily && registers && allPkg != nil && !imported[p.Path] {
			report(Diagnostic{
				Pos: p.Files[0].Package, Analyzer: "registry",
				Message: "codec package " + p.Path + " is not imported by compress/all; its Register never runs in programs built on the full set",
			})
		}
		if registers && fuzzKnown {
			for _, name := range reg.Names {
				if !covered[name] {
					report(Diagnostic{
						Pos: p.Files[0].Package, Analyzer: "registry",
						Message: "codec " + quote(name) + " is registered here but missing from the fuzzFamilies assignment in " + registryPkg + " fuzz_test.go",
					})
				}
			}
		}
	}
}
