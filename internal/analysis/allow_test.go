package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestCollectAllowsMalformed(t *testing.T) {
	cases := []struct {
		comment string
		wantMsg string
	}{
		{"//slclint:allow", "needs an analyzer name and a reason"},
		{"//slclint:allow determinism", "needs a reason"},
		{"//slclint:allow detreminism typo in the analyzer name", `unknown analyzer "detreminism"`},
	}
	for _, c := range cases {
		fset, f := parseOne(t, "package p\n\nvar x = 1 "+c.comment+"\n")
		s := CollectAllows(fset, []*ast.File{f}, All())
		if len(s.Malformed) != 1 {
			t.Errorf("%q: got %d malformed diagnostics, want 1", c.comment, len(s.Malformed))
			continue
		}
		if got := s.Malformed[0].Message; !strings.Contains(got, c.wantMsg) {
			t.Errorf("%q: diagnostic %q does not mention %q", c.comment, got, c.wantMsg)
		}
	}
}

func TestAllowSuppressesOwnAndNextLine(t *testing.T) {
	fset, f := parseOne(t, `package p

//slclint:allow determinism reason above
var a = 1
var b = 2 //slclint:allow allocfree reason inline
var c = 3
`)
	s := CollectAllows(fset, []*ast.File{f}, All())
	if len(s.Malformed) != 0 {
		t.Fatalf("unexpected malformed: %v", s.Malformed)
	}
	posOnLine := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}

	// The standalone comment on line 3 covers lines 3 and 4 for determinism.
	if _, ok := s.Suppresses(Diagnostic{Pos: posOnLine(4), Analyzer: "determinism"}); !ok {
		t.Error("allow above did not suppress the next line")
	}
	// Wrong analyzer name never matches.
	if _, ok := s.Suppresses(Diagnostic{Pos: posOnLine(4), Analyzer: "poolsafety"}); ok {
		t.Error("allow suppressed a different analyzer")
	}
	// The inline comment on line 5 covers line 5 for allocfree.
	if a, ok := s.Suppresses(Diagnostic{Pos: posOnLine(5), Analyzer: "allocfree"}); !ok {
		t.Error("inline allow did not suppress its own line")
	} else if a.Reason != "reason inline" {
		t.Errorf("allow reason = %q, want %q", a.Reason, "reason inline")
	}
	// An allow spans its own line and the one below, so line 6 is still in
	// allocfree's shadow — but never for another analyzer, and line 6's
	// determinism shadow from line 3 ended at line 4.
	if _, ok := s.Suppresses(Diagnostic{Pos: posOnLine(6), Analyzer: "determinism"}); ok {
		t.Error("allow reached two lines past its comment")
	}
}
