// Package analysis is the repository's static-analysis suite: a small,
// dependency-free framework in the shape of golang.org/x/tools/go/analysis
// plus the four analyzers that turn the repo's runtime-checked invariants
// (bitwise-deterministic replay, lane-owned event pools, pinned
// AllocsPerRun==0 hot paths, self-registering fuzz-covered codecs) into
// compile-time diagnostics.
//
// The framework mirrors the x/tools API surface this module would use
// (Analyzer, Pass, Diagnostic, object/package facts) so the analyzers could
// be ported to a real multichecker nearly verbatim; it is hand-rolled here
// because the module is intentionally dependency-free and the build
// environment is offline. Two deliberate deviations:
//
//   - Facts are keyed by (package path, object name) strings instead of
//     types.Object identity, so a package type-checked from source and the
//     same package imported from export data agree about its facts.
//   - An Analyzer may declare a Finalize hook that runs once after every
//     package has been analyzed. The x/tools fact mechanism only propagates
//     along import edges, which cannot express "every codec package is
//     imported by compress/all" — the violation is precisely a package with
//     no inbound edge. Finalize sees the whole program and closes that gap.
//
// Diagnostics are suppressed by an explicit escape hatch written on (or
// immediately above) the offending line:
//
//	//slclint:allow <analyzer> <reason>
//
// The reason is mandatory; an allow comment without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow comments.
	Name string

	// Doc is the one-paragraph description printed by cmd/slclint -help.
	Doc string

	// Match reports whether the analyzer wants to run on the package with
	// the given import path. A nil Match runs everywhere. The driver and the
	// analysistest harness both honour it, so testdata packages are given
	// synthetic import paths inside the analyzer's scope.
	Match func(pkgPath string) bool

	// Run analyzes one package.
	Run func(*Pass) error

	// Finalize, if non-nil, runs once after every package in the program has
	// been analyzed, with the accumulated fact store. It implements the
	// whole-program checks that per-package fact propagation cannot express.
	Finalize func(prog *Program, report func(Diagnostic))
}

// Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer

	Fset  *token.FileSet
	Files []*ast.File // parsed and type-checked non-test sources

	// TestFiles are the package's test sources (both the in-package and the
	// external _test package), parsed but NOT type-checked. Analyzers may
	// inspect them syntactically only; TypesInfo holds nothing for them.
	TestFiles []*ast.File

	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers a diagnostic. The driver applies allow-comment
	// suppression centrally, so analyzers always report unconditionally.
	Report func(Diagnostic)

	facts *FactStore
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// PackageInfo is one loaded, type-checked module package plus its parsed
// test files.
type PackageInfo struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	TestFiles []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Program is the whole analyzed package set, handed to Finalize hooks.
type Program struct {
	Fset     *token.FileSet
	Packages []*PackageInfo // in dependency order, dependencies first
	Facts    *FactStore
}

// Package returns the loaded package with the given import path, or nil.
func (prog *Program) Package(path string) *PackageInfo {
	for _, p := range prog.Packages {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// NewPass builds a's view of p, delivering diagnostics to report and facts to
// the program-wide store.
func (prog *Program) NewPass(a *Analyzer, p *PackageInfo, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      prog.Fset,
		Files:     p.Files,
		TestFiles: p.TestFiles,
		Pkg:       p.Pkg,
		TypesInfo: p.TypesInfo,
		Report:    report,
		facts:     prog.Facts,
	}
}

// All returns the full analyzer suite in stable order. cmd/slclint registers
// exactly this list (a guard test pins it), and the analysistest suites cover
// each member.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		PoolSafety,
		AllocFree,
		Registry,
	}
}
