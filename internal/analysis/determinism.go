package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Determinism enforces the repository's replay-determinism contract in the
// packages whose results are asserted bitwise-identical across worker counts
// (the sharded simulator, the parallel pipeline, the experiment runner):
//
//   - `range` over a map is flagged when the loop body is order-dependent —
//     it appends, sends, calls for effect, or writes through anything that
//     outlives the loop other than keyed map writes and integer counters.
//     Key-extract-then-sort loops stay clean by declaring the slice inside
//     the loop's statement scope or carrying an allow comment.
//   - time.Now / time.Since feed wall-clock time into results; benchmarking
//     call sites annotate an allow with their reason.
//   - math/rand's global generator functions are process-seeded; only
//     explicitly seeded sources (rand.New(rand.NewSource(seed))) are
//     deterministic.
//   - Passing a map to an fmt printing verb renders in runtime-sorted order
//     today, but couples output bytes to fmt internals and NaN-keyed maps
//     are unordered even then; result-path printing must iterate sorted
//     keys.
//
// It is the static twin of TestShardedMatchesSerial, the golden trajectory
// fixture and the -race determinism CI steps: those catch a violation on the
// inputs they replay, this catches the construct itself.
var Determinism = &Analyzer{
	Name:  "determinism",
	Doc:   "flag order-dependent map iteration, wall-clock time, unseeded math/rand and map printing on deterministic result paths",
	Match: determinismScope,
	Run:   runDeterminism,
}

// determinismScope limits the analyzer to the packages under the bitwise
// determinism contract.
func determinismScope(path string) bool {
	return strings.HasPrefix(path, "repro/internal/gpu") ||
		strings.HasPrefix(path, "repro/internal/pipeline") ||
		strings.HasPrefix(path, "repro/internal/experiments") ||
		strings.HasPrefix(path, "repro/internal/serving")
}

// seededConstructors are the math/rand functions that build an explicitly
// seeded generator rather than drawing from the global one.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkDetSelector(pass, n)
			case *ast.CallExpr:
				checkFmtMapArg(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDetSelector flags wall-clock and global-rand references.
func checkDetSelector(pass *Pass, sel *ast.SelectorExpr) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Now" || obj.Name() == "Since" {
			pass.Reportf(sel.Pos(), "time.%s is wall-clock time on a deterministic path (results must not depend on it)", obj.Name())
		}
	case "math/rand", "math/rand/v2":
		// Methods (r.Intn on an explicitly seeded *rand.Rand) are fine; only
		// the package-level functions draw from the process-global generator.
		fn, isFunc := obj.(*types.Func)
		if isFunc && fn.Type().(*types.Signature).Recv() == nil && !seededConstructors[obj.Name()] {
			pass.Reportf(sel.Pos(), "%s.%s draws from the process-global generator; use rand.New(rand.NewSource(seed)) so replays are deterministic", obj.Pkg().Name(), obj.Name())
		}
	}
}

// checkFmtMapArg flags map-typed arguments to fmt printing functions.
func checkFmtMapArg(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return
	}
	if !strings.Contains(obj.Name(), "rint") && obj.Name() != "Errorf" && !strings.Contains(obj.Name(), "ppend") {
		return
	}
	for _, arg := range call.Args {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			pass.Reportf(arg.Pos(), "fmt.%s renders map %s whole; print sorted keys explicitly so output bytes never depend on map internals", obj.Name(), types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
		}
	}
}

// checkMapRange flags order-dependent bodies of range-over-map loops.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	d := &rangeChecker{pass: pass, rng: rng}
	d.stmts(rng.Body.List)
	if d.why != "" {
		pass.Reportf(rng.Pos(), "range over map %s has an order-dependent body (%s); iterate sorted keys or restructure",
			types.ExprString(rng.X), d.why)
	}
}

// rangeChecker walks a range body looking for the first order-dependent
// statement. The commuting whitelist: keyed map writes, delete, integer
// counter updates (+=, |=, ^=, &=, ++/--: commutative and associative on
// fixed-width integers), writes to anything declared inside the loop, and
// control flow over those. Everything else — appends, sends, go/defer,
// calls-for-effect, float accumulation, plain overwrites of outer state,
// returns of loop-dependent values — depends on iteration order.
type rangeChecker struct {
	pass *Pass
	rng  *ast.RangeStmt
	why  string
}

func (d *rangeChecker) fail(pos token.Pos, why string) {
	if d.why == "" {
		p := d.pass.Fset.Position(pos)
		d.why = why + " at line " + strconv.Itoa(p.Line)
	}
}

func (d *rangeChecker) stmts(list []ast.Stmt) {
	for _, s := range list {
		d.stmt(s)
	}
}

func (d *rangeChecker) stmt(s ast.Stmt) {
	if d.why != "" {
		return
	}
	switch s := s.(type) {
	case *ast.AssignStmt:
		d.assign(s)
	case *ast.IncDecStmt:
		d.lvalueUpdate(s.X, s.Pos())
	case *ast.ExprStmt:
		d.exprStmt(s)
	case *ast.SendStmt:
		d.fail(s.Pos(), "channel send")
	case *ast.GoStmt:
		d.fail(s.Pos(), "go statement")
	case *ast.DeferStmt:
		d.fail(s.Pos(), "defer")
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if d.usesLoopVars(r) {
				d.fail(s.Pos(), "returns a loop-dependent value")
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			d.stmt(s.Init)
		}
		d.stmts(s.Body.List)
		if s.Else != nil {
			d.stmt(s.Else)
		}
	case *ast.BlockStmt:
		d.stmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			d.stmt(s.Init)
		}
		if s.Post != nil {
			d.stmt(s.Post)
		}
		d.stmts(s.Body.List)
	case *ast.RangeStmt:
		d.stmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			d.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			d.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			d.stmts(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		d.fail(s.Pos(), "select")
	case *ast.BranchStmt, *ast.DeclStmt, *ast.EmptyStmt, *ast.LabeledStmt:
		if l, ok := s.(*ast.LabeledStmt); ok {
			d.stmt(l.Stmt)
		}
	}
}

// assign classifies one assignment.
func (d *rangeChecker) assign(s *ast.AssignStmt) {
	// RHS appends are order-dependent whenever the target outlives the loop;
	// the define/declared-inside case is handled by lvalue classification.
	for i, lhs := range s.Lhs {
		if s.Tok == token.DEFINE {
			// A := declaration writes only loop-local names (Go scoping), but
			// still look at the RHS for appends to outer slices via :=
			// shadowing — impossible — so defines are clean.
			continue
		}
		if i < len(s.Rhs) {
			if call, ok := s.Rhs[i].(*ast.CallExpr); ok && d.isBuiltin(call, "append") {
				if !d.declaredInLoop(baseIdent(call.Args[0])) {
					d.fail(s.Pos(), "append to a slice that outlives the loop")
					return
				}
			}
		}
		switch s.Tok {
		case token.ASSIGN:
			d.plainAssign(lhs, s.Pos())
		default: // compound op: commutative only for integers
			d.lvalueUpdate(lhs, s.Pos())
		}
	}
}

// plainAssign handles `=`: last writer wins, so writing anything that
// outlives the loop is order-dependent unless it is a keyed map element.
func (d *rangeChecker) plainAssign(lhs ast.Expr, pos token.Pos) {
	if d.isMapIndex(lhs) {
		return
	}
	if id, ok := lhs.(*ast.Ident); ok && (id.Name == "_" || d.declaredInLoop(id)) {
		return
	}
	if d.declaredInLoop(baseIdent(lhs)) {
		return
	}
	d.fail(pos, "overwrites state that outlives the loop")
}

// lvalueUpdate handles compound ops and ++/--: order-independent only on
// integer types (modular arithmetic commutes; float rounding does not).
func (d *rangeChecker) lvalueUpdate(lhs ast.Expr, pos token.Pos) {
	if d.isMapIndex(lhs) {
		return
	}
	if d.declaredInLoop(baseIdent(lhs)) {
		return
	}
	tv, ok := d.pass.TypesInfo.Types[lhs]
	if ok && tv.Type != nil {
		if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsInteger != 0 {
			return
		}
	}
	d.fail(pos, "non-integer accumulation into state that outlives the loop")
}

// exprStmt: a call whose result is discarded runs for its side effects,
// which the loop then performs in map order. delete and clear commute.
func (d *rangeChecker) exprStmt(s *ast.ExprStmt) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return
	}
	if d.isBuiltin(call, "delete") || d.isBuiltin(call, "clear") || d.isBuiltin(call, "panic") {
		return
	}
	d.fail(s.Pos(), "call for effect ("+types.ExprString(call.Fun)+")")
}

func (d *rangeChecker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := d.pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isMapIndex reports whether e indexes a map (keyed writes commute when the
// written keys are distinct, which loop-keyed writes are).
func (d *rangeChecker) isMapIndex(e ast.Expr) bool {
	ix, ok := e.(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := d.pass.TypesInfo.Types[ix.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// declaredInLoop reports whether id's object is declared inside the range
// statement (loop variables included), so writes to it die with the
// iteration.
func (d *rangeChecker) declaredInLoop(id *ast.Ident) bool {
	if id == nil {
		return false
	}
	obj := d.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= d.rng.Pos() && obj.Pos() <= d.rng.End()
}

// usesLoopVars reports whether e references the loop's key or value
// variable.
func (d *rangeChecker) usesLoopVars(e ast.Expr) bool {
	var loopObjs []types.Object
	for _, v := range []ast.Expr{d.rng.Key, d.rng.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := d.pass.TypesInfo.ObjectOf(id); obj != nil {
				loopObjs = append(loopObjs, obj)
			}
		}
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := d.pass.TypesInfo.ObjectOf(id); obj != nil {
				for _, lo := range loopObjs {
					if obj == lo {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// baseIdent peels selectors, indexes and derefs down to the root identifier
// (x in x.f[i].g), or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
