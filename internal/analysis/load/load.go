// Package load turns package patterns into a type-checked analysis.Program
// without golang.org/x/tools: package metadata comes from
// `go list -export -deps -json`, dependencies are imported from the compiler
// export data the build cache already holds, and only the module's own
// packages are parsed and type-checked from source. Test files of module
// packages are parsed (not type-checked) so analyzers can read syntax-level
// facts such as the fuzz family assignment.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath   string
	Dir          string
	Export       string
	Standard     bool
	Module       *struct{ Path string }
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	Error        *struct{ Err string }
}

// Load lists patterns (plus their full dependency closure) and type-checks
// every module package from source, in dependency order. Std and external
// dependencies are imported from export data and are not analyzed.
func Load(dir string, patterns ...string) (*analysis.Program, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var pkgs []*listPackage
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		pkgs = append(pkgs, lp)
	}

	fset := token.NewFileSet()
	// One shared gc importer: it caches every imported package, so all
	// source-checked packages see identical dependency objects.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})

	prog := &analysis.Program{Fset: fset, Facts: analysis.NewFactStore()}
	for _, lp := range pkgs { // -deps emits dependencies before dependents
		if lp.Standard || lp.Module == nil {
			continue
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("load: %s uses cgo, unsupported", lp.ImportPath)
		}
		info, err := Check(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		for _, name := range append(append([]string{}, lp.TestGoFiles...), lp.XTestGoFiles...) {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("load: %s: %v", lp.ImportPath, err)
			}
			info.TestFiles = append(info.TestFiles, f)
		}
		prog.Packages = append(prog.Packages, info)
	}
	return prog, nil
}

// Check parses and type-checks one package's files with the given importer.
// It is exported for the analysistest harness, which type-checks testdata
// packages under synthetic import paths against the real module's export
// data.
func Check(fset *token.FileSet, imp types.Importer, importPath, dir string, fileNames []string) (*analysis.PackageInfo, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %v", importPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", importPath, err)
	}
	return &analysis.PackageInfo{
		Path:      importPath,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}, nil
}

// Exports lists export-data files for patterns' dependency closure — the
// importer backing for harnesses that type-check synthetic packages.
func Exports(dir string, patterns ...string) (map[string]string, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports, nil
}

// Importer returns a gc export-data importer over the given path→file map.
func Importer(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})
}
