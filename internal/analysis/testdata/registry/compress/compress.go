// Package compress is a miniature of the real codec registry, checked under
// the real registry import path so the analyzer's cross-package plumbing is
// exercised end to end.
package compress

// Codec is the registered unit.
type Codec interface{ Name() string }

var registry = map[string]func() Codec{}

// Register installs a codec constructor under name.
func Register(name string, build func() Codec) {
	registry[name] = build
}
