// The miniature fuzz family assignment, parsed syntax-only as a test file —
// exactly how the analyzer reads the real fuzz_test.go.
package compress_test

var fuzzFamilies = map[string][]string{
	"word":    {"good", "late"},
	"entropy": {"orphan"},
}
