package orphan // want `codec package repro/internal/compress/orphan is not imported by compress/all`

import compress "repro/internal/compress"

type codec struct{}

func (codec) Name() string { return "orphan" }

func init() {
	compress.Register("orphan", func() compress.Codec { return codec{} })
}
