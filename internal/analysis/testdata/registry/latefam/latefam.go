package latefam // want `codec package latefam calls compress\.Register outside an init function`

import compress "repro/internal/compress"

type codec struct{}

func (codec) Name() string { return "late" }

// Install registers lazily — which means not at all unless somebody calls it.
func Install() {
	compress.Register("late", func() compress.Codec { return codec{} })
}
