package badfam // want `codec package badfam never calls compress\.Register`

// A codec implementation that never registers itself.
type codec struct{}

func (codec) Name() string { return "bad" }
