// Package all blank-imports the registering families; orphan is deliberately
// missing (flagged at its own package clause by the whole-program pass).
package all

import (
	_ "repro/internal/compress/badfam" // want `compress/all imports repro/internal/compress/badfam, which never calls compress\.Register`
	_ "repro/internal/compress/dynfam"
	_ "repro/internal/compress/goodfam"
	_ "repro/internal/compress/latefam"
	_ "repro/internal/compress/unfuzzed"
)
