// Package goodfam is a well-behaved family: registers from init, imported by
// compress/all, fuzz-covered. No diagnostics.
package goodfam

import compress "repro/internal/compress"

type codec struct{}

func (codec) Name() string { return "good" }

func init() {
	compress.Register("good", func() compress.Codec { return codec{} })
}
