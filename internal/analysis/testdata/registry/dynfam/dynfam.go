// Package dynfam registers computed names from a loop, the way internal/slc
// registers its tslc variants: static fuzz-coverage checking cannot see the
// names, so the Dynamic escape keeps the package clean.
package dynfam

import compress "repro/internal/compress"

var variants = []string{"dyn-a", "dyn-b"}

func init() {
	for _, v := range variants {
		name := v
		compress.Register(name, func() compress.Codec { return nil })
	}
}
