package unfuzzed // want `codec "mystery" is registered here but missing from the fuzzFamilies assignment`

import compress "repro/internal/compress"

type codec struct{}

func (codec) Name() string { return "mystery" }

func init() {
	compress.Register("mystery", func() compress.Codec { return codec{} })
}
