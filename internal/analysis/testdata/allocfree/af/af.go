// Package af exercises the allocfree analyzer: annotated functions are
// checked construct by construct, unannotated functions are ignored, and a
// cold error path shows the allow escape hatch.
package af

import "fmt"

type boxer interface{ box() }

type val int

func (val) box() {}

func eat(vs ...boxer) {}

type sink struct {
	buf []int
	out boxer
}

//slclint:allocfree
func hot(s *sink, n int) {
	b := make([]byte, n) // want `make allocates in allocfree hot`
	_ = b
	p := new(int) // want `new allocates in allocfree hot`
	_ = p
	var local []int
	local = append(local, n) // want `append to local, a slice declared in allocfree hot`
	s.buf = append(s.buf, n) // receiver-owned buffer amortises: clean
	fmt.Println(n)           // want `fmt\.Println allocates in allocfree hot`
	m := map[int]int{0: n}   // want `map literal allocates in allocfree hot`
	_ = m
	sl := []int{1, 2} // want `slice literal allocates its backing array in allocfree hot`
	_ = sl
	ptr := &sink{} // want `&composite literal is an escape candidate in allocfree hot`
	_ = ptr
}

//slclint:allocfree
func boxAssign(s *sink, v val) {
	s.out = v // want `val value boxed into boxer allocates in allocfree boxAssign`
	s.out = &v
}

//slclint:allocfree
func boxReturn(v val) boxer {
	return v // want `val value boxed into boxer allocates in allocfree boxReturn`
}

//slclint:allocfree
func boxCall(v val) {
	eat(v) // want `val value boxed into boxer allocates in allocfree boxCall`
	vs := [1]boxer{}
	eat(vs[:]...) // passing the slice through re-boxes nothing: clean
}

//slclint:allocfree
func closures(n int) func() int {
	f := func() int { return n } // want `closure captures variables and allocates its context`
	g := func() int { return 42 }
	_ = g
	return f
}

//slclint:allocfree
func concat(a, b string) string {
	return a + b // want `string concatenation allocates in allocfree concat`
}

//slclint:allocfree
func constConcat() string {
	return "a" + "b" // constant-folded: clean
}

//slclint:allocfree
func coldError(ok bool) error {
	if !ok {
		return fmt.Errorf("bad state") //slclint:allow allocfree cold error path, never hit steady-state
	}
	return nil
}

// cold is unannotated: the analyzer ignores it entirely.
func cold(n int) []byte {
	return make([]byte, n)
}
