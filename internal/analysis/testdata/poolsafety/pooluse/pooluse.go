// Package pooluse imports the pooled type from another package: the pooled
// mark travels as an object fact, so escapes are flagged here too.
package pooluse

import "repro/pooltest/pooldef"

type cache struct {
	r *pooldef.Rec
}

func storeField(pool []pooldef.Rec, c *cache) {
	c.r = &pool[0] // want `storing pooled pooldef\.Rec pointer in struct field r`
}

func borrow(pool []pooldef.Rec) int {
	r := &pool[0] // borrowing is fine across packages too
	return r.N
}
