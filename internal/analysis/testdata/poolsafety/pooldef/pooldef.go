// Package pooldef declares a pooled arena type and exercises every escape
// class the poolsafety analyzer flags, next to the clean borrowing idiom.
package pooldef

// Rec is one pooled arena slot, recycled when its event completes.
//
//slclint:pooled
type Rec struct {
	N int
}

// Holder outlives any single event.
type Holder struct {
	R *Rec
}

var global *Rec

func use(r *Rec) int { return r.N }

func borrow(pool []Rec) int {
	r := &pool[0] // plain local borrow: the intended idiom, clean
	return use(r) // passing down a call borrows for the current event: clean
}

func storeField(pool []Rec, h *Holder) {
	r := &pool[0]
	h.R = r // want `storing pooled Rec pointer in struct field R`
}

func storeGlobal(pool []Rec) {
	global = &pool[0] // want `storing pooled Rec pointer in package variable global`
}

func storeElem(pool []Rec, out []*Rec) {
	out[0] = &pool[0] // want `storing pooled Rec pointer in a slice/map element`
}

func escapeReturn(pool []Rec) *Rec {
	return &pool[0] // want `returning pooled Rec pointer lets it outlive its event`
}

func escapeSend(pool []Rec, ch chan *Rec) {
	ch <- &pool[0] // want `sending pooled Rec pointer across a channel`
}

func escapeLiteral(pool []Rec) Holder {
	return Holder{R: &pool[0]} // want `storing pooled Rec pointer in a composite literal`
}

func escapeGoroutine(pool []Rec) {
	go func(r *Rec) { _ = r }(&pool[0]) // want `passing pooled Rec pointer to a goroutine`
}
