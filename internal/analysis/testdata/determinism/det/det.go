// Package det exercises the determinism analyzer: each flagged construct
// appears next to its clean counterpart, plus one allow-suppressed case
// showing the escape hatch.
package det

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now is wall-clock time`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since is wall-clock time`
}

func globalRand() int {
	return rand.Intn(10) // want `rand\.Intn draws from the process-global generator`
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // explicitly seeded: deterministic
	return r.Intn(10)
}

func printMap(m map[string]int) {
	fmt.Println(m) // want `fmt\.Println renders map map\[string\]int whole`
}

func printSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m { //slclint:allow determinism keys are sorted before printing
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

func appendRange(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map m has an order-dependent body \(append to a slice that outlives the loop`
		out = append(out, k)
	}
	return out
}

func countRange(m map[string]int) int {
	n := 0
	for _, v := range m { // integer accumulation commutes: clean
		n += v
	}
	return n
}

func keyedWrites(src, dst map[string]int) {
	for k, v := range src { // keyed map writes commute: clean
		dst[k] = v + 1
	}
}

func sendRange(m map[string]int, ch chan string) {
	for k := range m { // want `range over map m has an order-dependent body \(channel send`
		ch <- k
	}
}

func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `non-integer accumulation into state that outlives the loop`
		sum += v
	}
	return sum
}

func loopLocal(m map[string]int) {
	for k, v := range m { // writes die with the iteration: clean
		double := v * 2
		double++
		_ = double
		_ = k
	}
}

func effectCall(m map[string]int) {
	for k := range m { // want `call for effect \(fmt\.Println\)`
		fmt.Println(k)
	}
}
