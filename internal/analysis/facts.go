package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// Fact is a marker interface for analyzer facts, mirroring x/tools. A fact
// attached to an object or package by one pass is visible to later passes of
// the same analyzer (packages are analyzed in dependency order, so facts flow
// along import edges) and to the analyzer's Finalize hook. Facts must be
// pointers to structs.
type Fact interface{ AFact() }

// FactStore holds object and package facts for a whole program run.
//
// Keys are strings — (package path, object name, fact type) — rather than
// types.Object identities, because the loader type-checks each package from
// source while its dependencies are imported from compiler export data: the
// "same" object is represented by distinct types.Object values on the two
// sides, but both agree on path and name. Only package-level objects carry
// facts, which is all the string key can address and all the analyzers need.
type FactStore struct {
	mu      sync.Mutex
	objects map[factKey]Fact
	pkgs    map[factKey]Fact
}

type factKey struct {
	pkg  string
	name string // empty for package facts
	typ  string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		objects: make(map[factKey]Fact),
		pkgs:    make(map[factKey]Fact),
	}
}

// factType names a fact's dynamic type; facts of distinct types coexist on
// one key.
func factType(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.PkgPath() + "." + t.Name()
}

// copyFact copies the stored fact into the caller's *f of the same type.
func copyFact(src, dst Fact) {
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(src)
	if dv.Kind() != reflect.Pointer || sv.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: facts must be pointers to structs, got %T and %T", src, dst))
	}
	dv.Elem().Set(sv.Elem())
}

// ExportObjectFact attaches a fact to a package-level object.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if obj == nil || obj.Pkg() == nil {
		return
	}
	p.facts.putObject(obj.Pkg().Path(), obj.Name(), f)
}

// ImportObjectFact copies the fact of the given type attached to obj into
// *f, reporting whether one was found. obj may come from a source-checked
// package or an export-data import; both resolve to the same fact.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return p.facts.getObject(obj.Pkg().Path(), obj.Name(), f)
}

// ExportPackageFact attaches a fact to the package being analyzed.
func (p *Pass) ExportPackageFact(f Fact) {
	p.facts.putPackage(p.Pkg.Path(), f)
}

// ImportPackageFact copies the fact of the given type attached to the
// package with the given path into *f, reporting whether one was found.
func (p *Pass) ImportPackageFact(path string, f Fact) bool {
	return p.facts.getPackage(path, f)
}

// PackageFact reads a package fact directly from the store (for Finalize
// hooks, which run without a Pass).
func (s *FactStore) PackageFact(path string, f Fact) bool {
	return s.getPackage(path, f)
}

// ObjectFact reads an object fact directly from the store.
func (s *FactStore) ObjectFact(pkgPath, name string, f Fact) bool {
	return s.getObject(pkgPath, name, f)
}

// PackagesWithFact returns the sorted paths of every package carrying a fact
// of the same dynamic type as f.
func (s *FactStore) PackagesWithFact(f Fact) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	typ := factType(f)
	var paths []string
	for k := range s.pkgs {
		if k.typ == typ {
			paths = append(paths, k.pkg)
		}
	}
	sort.Strings(paths)
	return paths
}

func (s *FactStore) putObject(pkg, name string, f Fact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[factKey{pkg, name, factType(f)}] = f
}

func (s *FactStore) getObject(pkg, name string, f Fact) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	got, ok := s.objects[factKey{pkg, name, factType(f)}]
	if ok {
		copyFact(got, f)
	}
	return ok
}

func (s *FactStore) putPackage(pkg string, f Fact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pkgs[factKey{pkg: pkg, typ: factType(f)}] = f
}

func (s *FactStore) getPackage(pkg string, f Fact) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	got, ok := s.pkgs[factKey{pkg: pkg, typ: factType(f)}]
	if ok {
		copyFact(got, f)
	}
	return ok
}
