package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolSafety is the static twin of the eventsdebug runtime poison checks:
// pooled records (event-pool slots in internal/gpu/events, DRAM arena
// request slots in internal/gpu/dram) are recycled the moment their lane
// releases them, so a pointer into a pool must never outlive the event that
// borrowed it. A type opts in by marking its declaration:
//
//	//slclint:pooled
//	type request struct { ... }
//
// The mark travels as an object fact, so any package that can even name the
// type (or a pointer to it) is checked. A pointer to a pooled type may be
// passed down a call (borrowed for the current event) but must not be stored
// anywhere that outlives it: struct fields, package variables, map or slice
// elements, channels, composite literals, or function results.
var PoolSafety = &Analyzer{
	Name: "poolsafety",
	Doc:  "flag pooled event/arena record pointers escaping their owning lane (stores into fields, globals, maps, slices, channels, or returns)",
	Run:  runPoolSafety,
}

// PooledTypeFact marks a named type whose values live in a recycled pool
// arena.
type PooledTypeFact struct{ Marked bool }

// AFact implements Fact.
func (*PooledTypeFact) AFact() {}

const pooledMarker = "//slclint:pooled"

func runPoolSafety(pass *Pass) error {
	exportPooledMarks(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkPooledAssign(pass, n)
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if ptr, name := pooledPtr(pass, r); ptr {
						pass.Reportf(r.Pos(), "returning pooled %s pointer lets it outlive its event; return an index or copy the record", name)
					}
				}
			case *ast.SendStmt:
				if ptr, name := pooledPtr(pass, n.Value); ptr {
					pass.Reportf(n.Value.Pos(), "sending pooled %s pointer across a channel escapes its owning lane", name)
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if ptr, name := pooledPtr(pass, v); ptr {
						pass.Reportf(v.Pos(), "storing pooled %s pointer in a composite literal escapes it; store an index or copy the record", name)
					}
				}
			case *ast.GoStmt:
				for _, arg := range n.Call.Args {
					if ptr, name := pooledPtr(pass, arg); ptr {
						pass.Reportf(arg.Pos(), "passing pooled %s pointer to a goroutine escapes its owning lane", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// exportPooledMarks records an object fact for every type declaration
// carrying the pooled marker.
func exportPooledMarks(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasMarker(gd.Doc, pooledMarker) && !hasMarker(ts.Doc, pooledMarker) && !hasMarker(ts.Comment, pooledMarker) {
					continue
				}
				if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
					pass.ExportObjectFact(obj, &PooledTypeFact{Marked: true})
				}
			}
		}
	}
}

func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") {
			return true
		}
	}
	return false
}

// checkPooledAssign flags assignments whose RHS is a pooled pointer and
// whose LHS outlives the borrowing event: struct fields, package variables,
// and map/slice elements. Writing to a plain local (r := &pool[idx]) is the
// intended borrowing idiom and stays clean.
func checkPooledAssign(pass *Pass, s *ast.AssignStmt) {
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break // single-RHS multi-assign (function call): results checked at return sites
		}
		ptr, name := pooledPtr(pass, s.Rhs[i])
		if !ptr {
			continue
		}
		switch l := lhs.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[l]; ok && sel.Kind() == types.FieldVal {
				pass.Reportf(s.Pos(), "storing pooled %s pointer in struct field %s outlives the event that borrowed it; store an index or copy the record", name, l.Sel.Name)
			} else if obj := pass.TypesInfo.Uses[l.Sel]; obj != nil && isPkgLevelVar(obj) {
				pass.Reportf(s.Pos(), "storing pooled %s pointer in package variable %s escapes its owning lane", name, l.Sel.Name)
			}
		case *ast.IndexExpr:
			pass.Reportf(s.Pos(), "storing pooled %s pointer in a slice/map element outlives the event that borrowed it; store an index or copy the record", name)
		case *ast.Ident:
			if obj := pass.TypesInfo.ObjectOf(l); obj != nil && isPkgLevelVar(obj) {
				pass.Reportf(s.Pos(), "storing pooled %s pointer in package variable %s escapes its owning lane", name, l.Name)
			}
		}
	}
}

func isPkgLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// pooledPtr reports whether e's static type is a pointer to a marked pooled
// type, and the type's short name.
func pooledPtr(pass *Pass, e ast.Expr) (bool, string) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false, ""
	}
	ptr, ok := tv.Type.Underlying().(*types.Pointer)
	if !ok {
		return false, ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false, ""
	}
	obj := named.Obj()
	var fact PooledTypeFact
	if !pass.ImportObjectFact(obj, &fact) || !fact.Marked {
		return false, ""
	}
	if obj.Pkg() != nil && obj.Pkg() != pass.Pkg {
		return true, obj.Pkg().Name() + "." + obj.Name()
	}
	return true, obj.Name()
}
