package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix is the escape-hatch marker: a comment of the form
//
//	//slclint:allow <analyzer> <reason...>
//
// suppresses that analyzer's diagnostics on the comment's own line and on
// the line immediately below it (so it can ride at the end of the offending
// line or stand alone above it). The reason is mandatory and is carried into
// -json output, so deliberate exceptions stay auditable.
const allowPrefix = "//slclint:allow"

// Allow is one parsed escape-hatch comment.
type Allow struct {
	Analyzer string
	Reason   string
	Line     int  // line the comment sits on
	Used     bool // set when it suppresses at least one diagnostic
}

// AllowSet indexes the allow comments of one file set, plus the diagnostics
// produced while parsing them (missing analyzer name or reason).
type AllowSet struct {
	fset      *token.FileSet
	byLine    map[allowLineKey][]*Allow
	Malformed []Diagnostic
}

type allowLineKey struct {
	file string
	line int
}

// CollectAllows scans the comments of files for allow markers. Analyzer
// names are validated against known (the full suite), so a typo in the
// analyzer field cannot silently disable nothing.
func CollectAllows(fset *token.FileSet, files []*ast.File, known []*Analyzer) *AllowSet {
	s := &AllowSet{fset: fset, byLine: make(map[allowLineKey][]*Allow)}
	names := make(map[string]bool, len(known))
	for _, a := range known {
		names[a.Name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					s.Malformed = append(s.Malformed, Diagnostic{
						Pos: c.Pos(), Analyzer: "slclint",
						Message: "slclint:allow needs an analyzer name and a reason",
					})
					continue
				case !names[name]:
					s.Malformed = append(s.Malformed, Diagnostic{
						Pos: c.Pos(), Analyzer: "slclint",
						Message: "slclint:allow names unknown analyzer " + quote(name),
					})
					continue
				case reason == "":
					s.Malformed = append(s.Malformed, Diagnostic{
						Pos: c.Pos(), Analyzer: "slclint",
						Message: "slclint:allow " + name + " needs a reason",
					})
					continue
				}
				a := &Allow{Analyzer: name, Reason: reason, Line: pos.Line}
				s.byLine[allowLineKey{pos.Filename, pos.Line}] = append(s.byLine[allowLineKey{pos.Filename, pos.Line}], a)
			}
		}
	}
	return s
}

func quote(s string) string { return "\"" + s + "\"" }

// Suppresses reports whether d is covered by an allow comment on its line or
// the line above, marking the matching allow used.
func (s *AllowSet) Suppresses(d Diagnostic) (*Allow, bool) {
	if s == nil {
		return nil, false
	}
	pos := s.fset.Position(d.Pos)
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, a := range s.byLine[allowLineKey{pos.Filename, line}] {
			if a.Analyzer == d.Analyzer {
				a.Used = true
				return a, true
			}
		}
	}
	return nil, false
}
