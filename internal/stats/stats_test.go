package stats

import (
	"math"
	"strings"
	"testing"
)

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("Geomean(2,8) = %v, want 4", got)
	}
	if got := Geomean([]float64{1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Geomean(1,1,1) = %v", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", got)
	}
	// Zero entries are clamped, not fatal.
	if got := Geomean([]float64{0, 4}); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("Geomean with zero = %v", got)
	}
}

func TestGeomeanOrderInvariant(t *testing.T) {
	a := Geomean([]float64{1.2, 3.4, 0.9, 2.2})
	b := Geomean([]float64{2.2, 0.9, 3.4, 1.2})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("geomean depends on order: %v vs %v", a, b)
	}
}

func TestHeatmapAddAndCell(t *testing.T) {
	h := NewHeatmap(32, 20)
	h.Add(4, 22) // 22% → bin 4 with 20 bins of 5%
	h.Add(4, 23)
	h.Add(0, 99.9) // top bin
	h.Add(0, 100)  // clamps into top bin
	if got := h.Cell(4, 4); got != 2 {
		t.Errorf("cell(4,4) = %d, want 2", got)
	}
	if got := h.Cell(0, 19); got != 2 {
		t.Errorf("cell(0,19) = %d, want 2", got)
	}
}

func TestHeatmapIgnoresOutOfRange(t *testing.T) {
	h := NewHeatmap(32, 20)
	h.Add(-1, 10)
	h.Add(33, 10)
	for x := 0; x <= 32; x++ {
		for y := 0; y < 20; y++ {
			if h.Cell(x, y) != 0 {
				t.Fatalf("out-of-range Add landed at (%d,%d)", x, y)
			}
		}
	}
}

func TestHeatmapRender(t *testing.T) {
	h := NewHeatmap(32, 10)
	h.Add(4, 15)
	s := h.Render()
	if !strings.Contains(s, "bytes above a multiple of MAG") {
		t.Error("render missing axis label")
	}
	if strings.Count(s, "\n") < 11 {
		t.Errorf("render has too few rows:\n%s", s)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.1234); got != "12.34%" {
		t.Errorf("Pct = %q", got)
	}
}
