// Package stats provides the small numeric and rendering helpers the
// experiment harnesses share: geometric means (the paper's GM columns),
// histogram bucketing and a text heat map for Figure 2.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Geomean returns the geometric mean of positive values; zero or negative
// inputs are clamped to a tiny epsilon, matching how the paper's GM columns
// handle near-zero errors.
func Geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v < 1e-12 {
			v = 1e-12
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// Heatmap is a 2-D sample counter: x = bytes above MAG, y = percentage bin.
type Heatmap struct {
	XMax  int // inclusive upper x value
	YBins int // number of percentage bins covering [0, 100]
	cells [][]int
}

// NewHeatmap builds an empty heat map.
func NewHeatmap(xMax, yBins int) *Heatmap {
	cells := make([][]int, yBins)
	for i := range cells {
		cells[i] = make([]int, xMax+1)
	}
	return &Heatmap{XMax: xMax, YBins: yBins, cells: cells}
}

// Add records one sample: a benchmark whose percentage of blocks at x bytes
// above MAG is pct.
func (h *Heatmap) Add(x int, pct float64) {
	if x < 0 || x > h.XMax {
		return
	}
	bin := int(pct / 100 * float64(h.YBins))
	if bin >= h.YBins {
		bin = h.YBins - 1
	}
	if bin < 0 {
		bin = 0
	}
	h.cells[bin][x]++
}

// Render draws the heat map as text, highest percentage bin on top.
func (h *Heatmap) Render() string {
	var b strings.Builder
	binWidth := 100 / h.YBins
	for y := h.YBins - 1; y >= 0; y-- {
		fmt.Fprintf(&b, "%3d-%3d%% |", y*binWidth, (y+1)*binWidth)
		for x := 0; x <= h.XMax; x++ {
			switch c := h.cells[y][x]; {
			case c == 0:
				b.WriteString(" .")
			case c < 10:
				fmt.Fprintf(&b, " %d", c)
			default:
				b.WriteString(" #")
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("          ")
	for x := 0; x <= h.XMax; x++ {
		if x%4 == 0 {
			fmt.Fprintf(&b, "%2d", x)
		} else {
			b.WriteString("  ")
		}
	}
	b.WriteString("  (bytes above a multiple of MAG)\n")
	return b.String()
}

// Cell returns the sample count at (x, yBin), for tests.
func (h *Heatmap) Cell(x, yBin int) int { return h.cells[yBin][x] }

// Pct formats a fraction as a percentage string.
func Pct(frac float64) string { return fmt.Sprintf("%.2f%%", frac*100) }
