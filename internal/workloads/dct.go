package workloads

import (
	"math"

	"repro/internal/compress"
	"repro/internal/metrics"
)

// dct is the CUDA SDK DCT8x8 benchmark: a forward 8×8 discrete cosine
// transform over a 1024×1024 image, the JPEG/video building block. Input and
// output images are safe to approximate (Table III: #AR 2). The paper's
// largest 32 B-MAG speedup (≈17%) comes from this workload.
type dct struct {
	dim int
}

// NewDCT returns the DCT workload (paper input: 1024×1024 image).
func NewDCT() Workload { return &dct{dim: 1024} }

// Info implements Workload.
func (w *dct) Info() Info {
	return Info{
		Name:   "DCT",
		Short:  "Discrete cosine transform",
		Input:  "1024×1024 image",
		Metric: metrics.ImageDiff,
		AR:     2,
	}
}

// dctBasis precomputes the 8×8 DCT-II basis in float32.
func dctBasis() [8][8]float32 {
	var c [8][8]float32
	for k := 0; k < 8; k++ {
		a := math.Sqrt(0.25)
		if k == 0 {
			a = math.Sqrt(0.125)
		}
		for n := 0; n < 8; n++ {
			c[k][n] = float32(a * math.Cos(math.Pi*float64(k)*(2*float64(n)+1)/16))
		}
	}
	return c
}

// Run implements Workload.
func (w *dct) Run(ctx *Ctx) ([]float64, error) {
	n := w.dim * w.dim
	in, err := ctx.Dev.Malloc("dct.in", n*4, true, 16)
	if err != nil {
		return nil, err
	}
	out, err := ctx.Dev.Malloc("dct.out", n*4, true, 16)
	if err != nil {
		return nil, err
	}
	if err := copyIn(ctx, in, smoothImage(w.dim, w.dim, 4004)); err != nil {
		return nil, err
	}

	basis := dctBasis()
	vi, vo := ctx.Dev.F32View(in), ctx.Dev.F32View(out)
	var tile, tmp [8][8]float32
	for by := 0; by < w.dim; by += 8 {
		for bx := 0; bx < w.dim; bx += 8 {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					tile[y][x] = vi.At((by+y)*w.dim + bx + x)
				}
			}
			// Rows then columns: out = C · tile · Cᵀ.
			for y := 0; y < 8; y++ {
				for k := 0; k < 8; k++ {
					var s float32
					for x := 0; x < 8; x++ {
						s += basis[k][x] * tile[y][x]
					}
					tmp[y][k] = s
				}
			}
			for k := 0; k < 8; k++ {
				for x := 0; x < 8; x++ {
					var s float32
					for y := 0; y < 8; y++ {
						s += basis[k][y] * tmp[y][x]
					}
					vo.Set((by+k)*w.dim+bx+x, s)
				}
			}
		}
	}
	ctx.Sync(out)

	// Trace: each warp handles a 32-pixel-wide strip of a tile row — 8
	// coalesced row reads and 8 row writes covering four 8×8 tiles.
	if ctx.Rec != nil {
		rowBlocks := w.dim / floatsPerBlock
		ctx.Rec.BeginKernel("CUDAkernel1DCT", (w.dim/8)*rowBlocks)
		for tr := 0; tr < w.dim/8; tr++ {
			for strip := 0; strip < rowBlocks; strip++ {
				wp := tr*rowBlocks + strip
				for r := 0; r < 8; r++ {
					b := (tr*8+r)*rowBlocks + strip
					ctx.Rec.Access(wp, in.Addr+uint64(b)*compress.BlockSize, false, 4)
				}
				for r := 0; r < 8; r++ {
					b := (tr*8+r)*rowBlocks + strip
					ctx.Rec.Access(wp, out.Addr+uint64(b)*compress.BlockSize, true, 4)
				}
			}
		}
	}
	return readOut(ctx, out, n)
}
