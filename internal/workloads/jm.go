package workloads

import (
	"repro/internal/compress"
	"repro/internal/gpu/device"
	"repro/internal/metrics"
)

// jm is the AxBench jmeint benchmark: Möller's triangle–triangle
// intersection test over a large batch of triangle pairs. The six vertex
// arrays (three per triangle) are safe to approximate; the boolean output is
// exact (Table III: #AR 6). The output is a hard decision, so a small input
// perturbation can flip it — the reason the paper's highest error (7.3% miss
// rate) occurs here.
type jm struct {
	n int
}

// NewJM returns the JM workload (paper input: 400 K pairs; scaled to 200 K).
func NewJM() Workload { return &jm{n: 200 << 10} }

// Info implements Workload.
func (w *jm) Info() Info {
	return Info{
		Name:   "JM",
		Short:  "Intersection of triangles",
		Input:  "200 K tri. pairs",
		Metric: metrics.MissRate,
		AR:     6,
	}
}

type vec3 struct{ x, y, z float32 }

func sub(a, b vec3) vec3    { return vec3{a.x - b.x, a.y - b.y, a.z - b.z} }
func cross(a, b vec3) vec3  { return vec3{a.y*b.z - a.z*b.y, a.z*b.x - a.x*b.z, a.x*b.y - a.y*b.x} }
func dot(a, b vec3) float32 { return a.x*b.x + a.y*b.y + a.z*b.z }

// triTriIntersect is Möller's interval-overlap triangle intersection test
// (1997), the jmeint kernel. Coplanar pairs are counted as non-intersecting,
// as AxBench's variant does for its inputs.
func triTriIntersect(v0, v1, v2, u0, u1, u2 vec3) bool {
	// Plane of triangle 1: n1·x + d1 = 0.
	e1, e2 := sub(v1, v0), sub(v2, v0)
	n1 := cross(e1, e2)
	d1 := -dot(n1, v0)
	du0 := dot(n1, u0) + d1
	du1 := dot(n1, u1) + d1
	du2 := dot(n1, u2) + d1
	if (du0 > 0 && du1 > 0 && du2 > 0) || (du0 < 0 && du1 < 0 && du2 < 0) {
		return false
	}
	// Plane of triangle 2.
	e1, e2 = sub(u1, u0), sub(u2, u0)
	n2 := cross(e1, e2)
	d2 := -dot(n2, u0)
	dv0 := dot(n2, v0) + d2
	dv1 := dot(n2, v1) + d2
	dv2 := dot(n2, v2) + d2
	if (dv0 > 0 && dv1 > 0 && dv2 > 0) || (dv0 < 0 && dv1 < 0 && dv2 < 0) {
		return false
	}
	// Intersection line direction.
	dir := cross(n1, n2)
	if dir.x == 0 && dir.y == 0 && dir.z == 0 {
		return false // coplanar (or degenerate): treated as non-intersecting
	}
	// Project onto the dominant axis of dir.
	proj := func(v vec3) float32 {
		ax, ay, az := abs32(dir.x), abs32(dir.y), abs32(dir.z)
		switch {
		case ax >= ay && ax >= az:
			return v.x
		case ay >= az:
			return v.y
		default:
			return v.z
		}
	}
	t1lo, t1hi, ok1 := interval(proj(v0), proj(v1), proj(v2), dv0, dv1, dv2)
	t2lo, t2hi, ok2 := interval(proj(u0), proj(u1), proj(u2), du0, du1, du2)
	if !ok1 || !ok2 {
		return false
	}
	return t1lo <= t2hi && t2lo <= t1hi
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

// interval computes the parametric interval where the triangle crosses the
// intersection line, given projected vertices and signed plane distances.
func interval(p0, p1, p2, d0, d1, d2 float32) (lo, hi float32, ok bool) {
	// Order vertices so that v0 and v1 lie on one side, v2 on the other.
	switch {
	case d0*d1 > 0: // v2 alone
		return span(p2, p0, p1, d2, d0, d1)
	case d0*d2 > 0: // v1 alone
		return span(p1, p0, p2, d1, d0, d2)
	case d1*d2 > 0 || d0 != 0: // v0 alone
		return span(p0, p1, p2, d0, d1, d2)
	case d1 != 0:
		return span(p1, p0, p2, d1, d0, d2)
	case d2 != 0:
		return span(p2, p0, p1, d2, d0, d1)
	}
	return 0, 0, false // coplanar
}

// span returns the crossing interval for the lone vertex a against b, c.
func span(pa, pb, pc, da, db, dc float32) (lo, hi float32, ok bool) {
	t1 := pa + (pb-pa)*da/(da-db)
	t2 := pa + (pc-pa)*da/(da-dc)
	if t1 > t2 {
		t1, t2 = t2, t1
	}
	return t1, t2, true
}

// Run implements Workload.
func (w *jm) Run(ctx *Ctx) ([]float64, error) {
	// Six vertex arrays of n×3 floats: vertices 0..2 of triangles A and B.
	names := []string{"jm.a0", "jm.a1", "jm.a2", "jm.b0", "jm.b1", "jm.b2"}
	var regs [6]device.Region
	for i, name := range names {
		r, err := ctx.Dev.Malloc(name, w.n*3*4, true, 16)
		if err != nil {
			return nil, err
		}
		regs[i] = r
	}
	out, err := ctx.Dev.Malloc("jm.out", w.n*4, false, 0)
	if err != nil {
		return nil, err
	}

	// Triangle soup on a 1/1024 grid (mesh-extraction precision); triangle
	// B sits near A so a realistic fraction of pairs intersect.
	rng := newRNG(6006)
	host := make([][]float32, 6)
	for i := range host {
		host[i] = make([]float32, w.n*3)
	}
	const grid = 1.0 / 1024
	for p := 0; p < w.n; p++ {
		var cx, cy, cz float32
		for v := 0; v < 3; v++ {
			host[v][p*3+0] = rng.uniform(0, 1, grid)
			host[v][p*3+1] = rng.uniform(0, 1, grid)
			host[v][p*3+2] = rng.uniform(0, 1, grid)
			cx += host[v][p*3+0]
			cy += host[v][p*3+1]
			cz += host[v][p*3+2]
		}
		// Triangle B: random triangle around A's centroid.
		cx, cy, cz = cx/3, cy/3, cz/3
		for v := 3; v < 6; v++ {
			host[v][p*3+0] = cx + rng.uniform(-0.3, 0.3, grid)
			host[v][p*3+1] = cy + rng.uniform(-0.3, 0.3, grid)
			host[v][p*3+2] = cz + rng.uniform(-0.3, 0.3, grid)
		}
	}
	for i := range regs {
		if err := copyIn(ctx, regs[i], host[i]); err != nil {
			return nil, err
		}
	}

	var views [6]device.F32
	for i := range regs {
		views[i] = ctx.Dev.F32View(regs[i])
	}
	vo := ctx.Dev.F32View(out)
	at := func(a int, p int) vec3 {
		return vec3{views[a].At(p * 3), views[a].At(p*3 + 1), views[a].At(p*3 + 2)}
	}
	for p := 0; p < w.n; p++ {
		hit := triTriIntersect(at(0, p), at(1, p), at(2, p), at(3, p), at(4, p), at(5, p))
		if hit {
			vo.Set(p, 1)
		} else {
			vo.Set(p, 0)
		}
	}
	ctx.Sync(out)

	// Trace: stream the six vertex arrays; one boolean output block per
	// three input blocks (3 floats per vertex vs 1 output per pair).
	if ctx.Rec != nil {
		inBlocks := blocksForFloats(w.n * 3)
		ctx.Rec.BeginKernel("jmeint", warpsFor(inBlocks))
		for b := 0; b < inBlocks; b++ {
			wp := warpOf(b)
			for i := range regs {
				ctx.Rec.Access(wp, regs[i].Addr+uint64(b)*compress.BlockSize, false, 6)
			}
			if b%3 == 0 {
				ctx.Rec.Access(wp, out.Addr+uint64(b/3)*compress.BlockSize, true, 6)
			}
		}
	}
	return readOut(ctx, out, w.n)
}
