package workloads

import (
	"repro/internal/compress"
	"repro/internal/metrics"
)

// tp is the CUDA SDK matrix transpose benchmark: a pure data-movement kernel
// over a 1024×1024 float matrix, tiled 32×32 so both the loads and stores
// are coalesced. Input and output matrices are safe to approximate
// (Table III: #AR 2).
type tp struct {
	dim int
}

// NewTP returns the TP workload (paper input: 1024×1024).
func NewTP() Workload { return &tp{dim: 1024} }

// Info implements Workload.
func (w *tp) Info() Info {
	return Info{
		Name:   "TP",
		Short:  "Matrix transpose",
		Input:  "1024×1024",
		Metric: metrics.NRMSE,
		AR:     2,
	}
}

// Run implements Workload.
func (w *tp) Run(ctx *Ctx) ([]float64, error) {
	n := w.dim * w.dim
	in, err := ctx.Dev.Malloc("tp.in", n*4, true, 16)
	if err != nil {
		return nil, err
	}
	out, err := ctx.Dev.Malloc("tp.out", n*4, true, 16)
	if err != nil {
		return nil, err
	}
	if err := copyIn(ctx, in, smoothImage(w.dim, w.dim, 3003)); err != nil {
		return nil, err
	}

	vi, vo := ctx.Dev.F32View(in), ctx.Dev.F32View(out)
	for y := 0; y < w.dim; y++ {
		for x := 0; x < w.dim; x++ {
			vo.Set(x*w.dim+y, vi.At(y*w.dim+x))
		}
	}
	ctx.Sync(out)

	// Tiled transpose: per 32×32 tile, 32 coalesced row reads from the
	// input and 32 coalesced row writes to the output. One warp per tile;
	// warp order follows the tile raster, keeping the resident window
	// contiguous.
	if ctx.Rec != nil {
		tiles := w.dim / 32
		rowBlocks := w.dim / floatsPerBlock
		ctx.Rec.BeginKernel("transposeCoalesced", tiles*tiles)
		for ty := 0; ty < tiles; ty++ {
			for tx := 0; tx < tiles; tx++ {
				wp := ty*tiles + tx
				for r := 0; r < 32; r++ {
					b := (ty*32+r)*rowBlocks + tx
					ctx.Rec.Access(wp, in.Addr+uint64(b)*compress.BlockSize, false, 2)
				}
				for r := 0; r < 32; r++ {
					b := (tx*32+r)*rowBlocks + ty
					ctx.Rec.Access(wp, out.Addr+uint64(b)*compress.BlockSize, true, 2)
				}
			}
		}
	}
	return readOut(ctx, out, n)
}
