package workloads

import (
	"math"

	"repro/internal/compress"
	"repro/internal/metrics"
)

// bp is the Rodinia backprop benchmark: one training step of a two-layer
// perceptron (64 K input units, 16 hidden units) — a forward pass followed
// by a weight-adjustment pass over the large input-to-hidden weight matrix.
// Six regions are annotated safe-to-approximate (Table III: #AR 6): inputs,
// both weight matrices, the momentum array and the two delta vectors.
type bp struct {
	in, hidden int
}

// NewBP returns the BP workload (paper input: 64 K elements).
func NewBP() Workload { return &bp{in: 64 << 10, hidden: 16} }

// Info implements Workload.
func (w *bp) Info() Info {
	return Info{
		Name:   "BP",
		Short:  "Perceptron training",
		Input:  "64 K elements",
		Metric: metrics.MRE,
		AR:     6,
	}
}

func sigmoid(x float32) float32 {
	return float32(1.0 / (1.0 + math.Exp(-float64(x))))
}

// Run implements Workload.
func (w *bp) Run(ctx *Ctx) ([]float64, error) {
	nw := w.in * w.hidden
	x, err := ctx.Dev.Malloc("bp.input", w.in*4, true, 16)
	if err != nil {
		return nil, err
	}
	w1, err := ctx.Dev.Malloc("bp.w1", nw*4, true, 16)
	if err != nil {
		return nil, err
	}
	prev, err := ctx.Dev.Malloc("bp.prev_w", nw*4, true, 16)
	if err != nil {
		return nil, err
	}
	w2, err := ctx.Dev.Malloc("bp.w2", w.hidden*4, true, 16)
	if err != nil {
		return nil, err
	}
	hid, err := ctx.Dev.Malloc("bp.hidden", w.hidden*4, true, 16)
	if err != nil {
		return nil, err
	}
	deltas, err := ctx.Dev.Malloc("bp.delta", w.hidden*4, true, 16)
	if err != nil {
		return nil, err
	}

	// Rodinia's bpnn_randomize_weights draws weights uniformly from [0, 1);
	// quantisation mirrors its float conversion granularity.
	rng := newRNG(7007)
	xv := make([]float32, w.in)
	for i := range xv {
		xv[i] = rng.uniform(0, 1, 1.0/256)
	}
	w1v := make([]float32, nw)
	for i := range w1v {
		w1v[i] = rng.uniform(0, 1, 1.0/2048)
	}
	w2v := make([]float32, w.hidden)
	for i := range w2v {
		w2v[i] = rng.uniform(0, 1, 1.0/2048)
	}
	if err := copyIn(ctx, x, xv); err != nil {
		return nil, err
	}
	if err := copyIn(ctx, w1, w1v); err != nil {
		return nil, err
	}
	if err := copyIn(ctx, prev, make([]float32, nw)); err != nil {
		return nil, err
	}
	if err := copyIn(ctx, w2, w2v); err != nil {
		return nil, err
	}

	vx, vw1 := ctx.Dev.F32View(x), ctx.Dev.F32View(w1)
	vprev, vw2 := ctx.Dev.F32View(prev), ctx.Dev.F32View(w2)
	vhid, vdelta := ctx.Dev.F32View(hid), ctx.Dev.F32View(deltas)

	// Kernel 1 — layerforward: h_j = σ(Σ_i x_i · w1[i·H + j]).
	sums := make([]float32, w.hidden)
	for i := 0; i < w.in; i++ {
		xi := vx.At(i)
		for j := 0; j < w.hidden; j++ {
			sums[j] += xi * vw1.At(i*w.hidden+j)
		}
	}
	outSum := float32(0)
	for j := 0; j < w.hidden; j++ {
		h := sigmoid(sums[j] / float32(w.in))
		vhid.Set(j, h)
		outSum += h * vw2.At(j)
	}
	ctx.Sync(hid)
	output := sigmoid(outSum)

	wBlocks := blocksForFloats(nw)
	// layerforward trace is emitted now, while the blocks carry their
	// pre-update (copy-in) compression geometry.
	if ctx.Rec != nil {
		ctx.Rec.BeginKernel("bpnn_layerforward", warpsFor(wBlocks))
		for b := 0; b < wBlocks; b++ {
			wp := warpOf(b)
			if b%w.hidden == 0 {
				ctx.Rec.Access(wp, x.Addr+uint64(b/w.hidden)*compress.BlockSize, false, 6)
			}
			ctx.Rec.Access(wp, w1.Addr+uint64(b)*compress.BlockSize, false, 6)
		}
	}

	// Host-side deltas (tiny), then kernel 2 — adjust_weights.
	const target = 0.75
	deltaOut := output * (1 - output) * (target - output)
	for j := 0; j < w.hidden; j++ {
		h := vhid.At(j)
		vdelta.Set(j, h*(1-h)*vw2.At(j)*deltaOut)
	}
	ctx.Sync(deltas)

	const eta, momentum = 0.3, 0.3
	for i := 0; i < w.in; i++ {
		xi := vx.At(i)
		for j := 0; j < w.hidden; j++ {
			k := i*w.hidden + j
			adj := eta*vdelta.At(j)*xi + momentum*vprev.At(k)
			vw1.Set(k, vw1.At(k)+adj)
			vprev.Set(k, adj)
		}
	}

	// adjust_weights: the reads carry the pre-update compression geometry,
	// the writes the post-update one, so the trace is emitted around the
	// region sync.
	if ctx.Rec != nil {
		ctx.Rec.BeginKernel("bpnn_adjust_weights", warpsFor(wBlocks))
		for b := 0; b < wBlocks; b++ {
			wp := warpOf(b)
			if b%w.hidden == 0 {
				ctx.Rec.Access(wp, x.Addr+uint64(b/w.hidden)*compress.BlockSize, false, 4)
			}
			ctx.Rec.Access(wp, w1.Addr+uint64(b)*compress.BlockSize, false, 4)
			ctx.Rec.Access(wp, prev.Addr+uint64(b)*compress.BlockSize, false, 4)
		}
	}
	ctx.Sync(w1)
	ctx.Sync(prev)
	if ctx.Rec != nil {
		for b := 0; b < wBlocks; b++ {
			wp := warpOf(b)
			ctx.Rec.Access(wp, w1.Addr+uint64(b)*compress.BlockSize, true, 4)
			ctx.Rec.Access(wp, prev.Addr+uint64(b)*compress.BlockSize, true, 4)
		}
	}

	// Output: hidden activations, network output and a stride sample of the
	// adjusted weights.
	out := []float64{float64(output)}
	for j := 0; j < w.hidden; j++ {
		out = append(out, float64(vhid.At(j)))
	}
	for k := 0; k < nw; k += 499 {
		out = append(out, float64(vw1.At(k)))
	}
	return out, nil
}
