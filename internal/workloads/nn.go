package workloads

import (
	"math"

	"repro/internal/compress"
	"repro/internal/metrics"
)

// nn is the Rodinia nearest-neighbor benchmark: Euclidean distance from
// every (lat, lng) record to a query point. Both the record array and the
// distance output are safe to approximate (Table III: #AR 2). It is the most
// purely bandwidth-bound workload of the suite, which is why the paper sees
// its largest speedup (35% at 64 B MAG) here.
type nn struct {
	n int
}

// NewNN returns the NN workload (paper input: 20 M records; scaled to 1 M).
func NewNN() Workload { return &nn{n: 1 << 20} }

// Info implements Workload.
func (w *nn) Info() Info {
	return Info{
		Name:   "NN",
		Short:  "Nearest neighbors",
		Input:  "1 M records",
		Metric: metrics.MRE,
		AR:     2,
	}
}

// Run implements Workload.
func (w *nn) Run(ctx *Ctx) ([]float64, error) {
	loc, err := ctx.Dev.Malloc("nn.locations", w.n*2*4, true, 16)
	if err != nil {
		return nil, err
	}
	dist, err := ctx.Dev.Malloc("nn.distances", w.n*4, true, 16)
	if err != nil {
		return nil, err
	}
	if err := copyIn(ctx, loc, clusteredCoords(w.n, 2002)); err != nil {
		return nil, err
	}

	const qLat, qLng = 38.5, -98.3 // query point
	vl, vd := ctx.Dev.F32View(loc), ctx.Dev.F32View(dist)
	for i := 0; i < w.n; i++ {
		lat, lng := vl.At(2*i), vl.At(2*i+1)
		d := float32(math.Sqrt(float64((lat-qLat)*(lat-qLat) + (lng-qLng)*(lng-qLng))))
		vd.Set(i, d)
	}
	ctx.Sync(dist)

	// Each record block (16 records) produces half a distance block; the
	// kernel reads two location blocks per distance block written.
	if ctx.Rec != nil {
		locBlocks := blocksForFloats(w.n * 2)
		ctx.Rec.BeginKernel("euclid", warpsFor(locBlocks))
		for b := 0; b < locBlocks; b++ {
			wp := warpOf(b)
			ctx.Rec.Access(wp, loc.Addr+uint64(b)*compress.BlockSize, false, 4)
			if b%2 == 1 {
				ctx.Rec.Access(wp, dist.Addr+uint64(b/2)*compress.BlockSize, true, 4)
			}
		}
	}
	return readOut(ctx, dist, w.n)
}
