package workloads

import (
	"math"

	"repro/internal/gpu/device"
	"repro/internal/metrics"
)

// bs is the CUDA SDK BlackScholes benchmark: European option pricing over a
// large batch of quantised market quotes. Four regions are annotated
// safe-to-approximate (stock price, strike, time-to-expiry, call output);
// the put output stays exact (Table III: #AR 4).
type bs struct {
	n int
}

// NewBS returns the BS workload (paper input: 4 M options; scaled to 512 K).
func NewBS() Workload { return &bs{n: 512 << 10} }

// Info implements Workload.
func (b *bs) Info() Info {
	return Info{
		Name:   "BS",
		Short:  "Options pricing",
		Input:  "512 K options",
		Metric: metrics.MRE,
		AR:     4,
	}
}

// cnd is the cumulative normal distribution approximation used by the CUDA
// SDK BlackScholes kernel (Abramowitz & Stegun polynomial), in float32.
func cnd(d float32) float32 {
	const (
		a1 = 0.31938153
		a2 = -0.356563782
		a3 = 1.781477937
		a4 = -1.821255978
		a5 = 1.330274429
	)
	k := float32(1.0 / (1.0 + 0.2316419*math.Abs(float64(d))))
	w := float32(1.0 - 1.0/math.Sqrt(2*math.Pi)*math.Exp(-float64(d)*float64(d)/2)*
		float64(k*(a1+k*(a2+k*(a3+k*(a4+k*a5))))))
	if d < 0 {
		return 1.0 - w
	}
	return w
}

// Run implements Workload.
func (b *bs) Run(ctx *Ctx) ([]float64, error) {
	const (
		riskFree   = 0.02
		volatility = 0.30
	)
	s, err := ctx.Dev.Malloc("bs.S", b.n*4, true, 16)
	if err != nil {
		return nil, err
	}
	x, err := ctx.Dev.Malloc("bs.X", b.n*4, true, 16)
	if err != nil {
		return nil, err
	}
	tm, err := ctx.Dev.Malloc("bs.T", b.n*4, true, 16)
	if err != nil {
		return nil, err
	}
	call, err := ctx.Dev.Malloc("bs.Call", b.n*4, true, 16)
	if err != nil {
		return nil, err
	}
	put, err := ctx.Dev.Malloc("bs.Put", b.n*4, false, 0)
	if err != nil {
		return nil, err
	}

	// Real option batches arrive as chains: a run of contracts on one
	// underlying shares the spot price, strikes step through a ladder and
	// expiries cycle through the listed dates. Quotes are tick-quantised
	// (cents; quarter-year expiries) within the CUDA SDK's value ranges.
	rng := newRNG(1001)
	sv := make([]float32, b.n)
	xv := make([]float32, b.n)
	tv := make([]float32, b.n)
	const chain = 64
	for i := 0; i < b.n; i += chain {
		spot := rng.uniform(5, 30, 0.01)
		step := rng.uniform(0.5, 2.5, 0.25)
		for k := 0; k < chain && i+k < b.n; k++ {
			sv[i+k] = spot
			xv[i+k] = spot + float32(k%16-8)*step // ladder around the spot
			if xv[i+k] < 1 {
				xv[i+k] = 1
			}
			tv[i+k] = 0.25 + float32(k/16)*0.25 // listed expiries
		}
	}
	if err := copyIn(ctx, s, sv); err != nil {
		return nil, err
	}
	if err := copyIn(ctx, x, xv); err != nil {
		return nil, err
	}
	if err := copyIn(ctx, tm, tv); err != nil {
		return nil, err
	}

	// Kernel: one thread per option.
	vs, vx, vt := ctx.Dev.F32View(s), ctx.Dev.F32View(x), ctx.Dev.F32View(tm)
	vc, vp := ctx.Dev.F32View(call), ctx.Dev.F32View(put)
	for i := 0; i < b.n; i++ {
		si, xi, ti := vs.At(i), vx.At(i), vt.At(i)
		sqrtT := float32(math.Sqrt(float64(ti)))
		d1 := (float32(math.Log(float64(si/xi))) + (riskFree+0.5*volatility*volatility)*ti) /
			(volatility * sqrtT)
		d2 := d1 - volatility*sqrtT
		expRT := float32(math.Exp(float64(-riskFree * ti)))
		c := si*cnd(d1) - xi*expRT*cnd(d2)
		p := xi*expRT*cnd(-d2) - si*cnd(-d1)
		vc.Set(i, c)
		vp.Set(i, p)
	}
	ctx.Sync(call)
	ctx.Sync(put)

	emitStream(ctx, streamSpec{
		Name:    "BlackScholesGPU",
		Reads:   []device.Region{s, x, tm},
		Writes:  []device.Region{call, put},
		Blocks:  blocksForFloats(b.n),
		Compute: 4,
	})

	co, err := readOut(ctx, call, b.n)
	if err != nil {
		return nil, err
	}
	po, err := readOut(ctx, put, b.n)
	if err != nil {
		return nil, err
	}
	return append(co, po...), nil
}
