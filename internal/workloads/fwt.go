package workloads

import (
	"repro/internal/compress"
	"repro/internal/metrics"
)

// fwt is the CUDA SDK fast Walsh–Hadamard transform: log₂(N) butterfly
// passes ping-ponging between two buffers, both safe to approximate
// (Table III: #AR 2). Because every pass re-reads what the previous pass
// wrote, approximation errors feed back — the effect the paper discusses
// when comparing the TSLC variants.
type fwt struct {
	n int
}

// NewFWT returns the FWT workload (paper input: 8 M elements; scaled to 256 K).
func NewFWT() Workload { return &fwt{n: 256 << 10} }

// Info implements Workload.
func (w *fwt) Info() Info {
	return Info{
		Name:   "FWT",
		Short:  "Fast Walsh transform",
		Input:  "256 K elements",
		Metric: metrics.NRMSE,
		AR:     2,
	}
}

// Run implements Workload.
func (w *fwt) Run(ctx *Ctx) ([]float64, error) {
	a, err := ctx.Dev.Malloc("fwt.a", w.n*4, true, 16)
	if err != nil {
		return nil, err
	}
	b, err := ctx.Dev.Malloc("fwt.b", w.n*4, true, 16)
	if err != nil {
		return nil, err
	}
	if err := copyIn(ctx, a, quantizedSignal(w.n, 1.0/256, 5005)); err != nil {
		return nil, err
	}

	blocks := blocksForFloats(w.n)
	src, dst := a, b
	vsrc, vdst := ctx.Dev.F32View(a), ctx.Dev.F32View(b)
	for h := 1; h < w.n; h <<= 1 {
		// Butterfly pass: (x, y) → (x+y, x−y) over pairs at stride h.
		for i := 0; i < w.n; i += 2 * h {
			for j := i; j < i+h; j++ {
				x, y := vsrc.At(j), vsrc.At(j+h)
				vdst.Set(j, x+y)
				vdst.Set(j+h, x-y)
			}
		}
		ctx.Sync(dst)

		if ctx.Rec != nil {
			ctx.Rec.BeginKernel("fwtBatch", warpsFor(blocks))
			strideBlocks := h / floatsPerBlock
			for blk := 0; blk < blocks; blk++ {
				wp := warpOf(blk)
				ctx.Rec.Access(wp, src.Addr+uint64(blk)*compress.BlockSize, false, 4)
				if strideBlocks > 0 {
					partner := blk ^ strideBlocks
					ctx.Rec.Access(wp, src.Addr+uint64(partner)*compress.BlockSize, false, 2)
				}
				ctx.Rec.Access(wp, dst.Addr+uint64(blk)*compress.BlockSize, true, 2)
			}
		}
		src, dst = dst, src
		vsrc, vdst = vdst, vsrc
	}
	return readOut(ctx, src, w.n)
}
