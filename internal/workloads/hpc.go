package workloads

import (
	"repro/internal/gpu/device"
	"repro/internal/metrics"
)

// HPC float-field workloads (ROADMAP item 2): three streaming kernels over
// the full-precision fields of floatgen.go. They are not part of the
// paper's Table III suite — Registry() and the paper figures are unchanged
// — but open the scenario class the error-bounded sz family targets, where
// "safe to approximate" means a user-supplied error bound rather than an
// output-quality metric alone.

// hpcField is one streaming workload: generate a field, run a cheap
// elementwise kernel over it, and evaluate the output. All regions are
// safe to approximate (#AR 2), so the bounded codec serves everything.
type hpcField struct {
	name   string
	short  string
	kernel string
	n      int
	seed   uint64
	gen    func(n int, seed uint64) []float32
	step   func(in, out []float32)
}

const hpcN = 256 << 10

// NewHPCSmooth returns the smooth sinusoidal field workload: a 3-point
// Jacobi smoothing step, the canonical stencil over a CFD/climate slice.
func NewHPCSmooth() Workload {
	return &hpcField{
		name: "HPC-S", short: "Smooth HPC field (stencil)", kernel: "hpcStencil",
		n: hpcN, seed: 9101, gen: SmoothField,
		step: func(in, out []float32) {
			n := len(in)
			out[0] = in[0]
			out[n-1] = in[n-1]
			for i := 1; i < n-1; i++ {
				out[i] = 0.25*in[i-1] + 0.5*in[i] + 0.25*in[i+1]
			}
		},
	}
}

// NewHPCTurbulent returns the turbulent multi-scale noise workload: a
// central-difference gradient, the first step of any spectral analysis.
func NewHPCTurbulent() Workload {
	return &hpcField{
		name: "HPC-T", short: "Turbulent HPC field (gradient)", kernel: "hpcGradient",
		n: hpcN, seed: 9103, gen: TurbulentField,
		step: func(in, out []float32) {
			n := len(in)
			out[0] = in[1] - in[0]
			out[n-1] = in[n-1] - in[n-2]
			for i := 1; i < n-1; i++ {
				out[i] = 0.5 * (in[i+1] - in[i-1])
			}
		},
	}
}

// NewHPCSparse returns the sparse/spiky field workload: an axpy-style
// scale-and-shift that preserves sparsity.
func NewHPCSparse() Workload {
	return &hpcField{
		name: "HPC-X", short: "Sparse HPC field (axpy)", kernel: "hpcAxpy",
		n: hpcN, seed: 9107, gen: SparseField,
		step: func(in, out []float32) {
			for i, v := range in {
				out[i] = 1.5*v + 0.25*v
			}
		},
	}
}

// Info implements Workload.
func (w *hpcField) Info() Info {
	return Info{
		Name:   w.name,
		Short:  w.short,
		Input:  "256 K floats",
		Metric: metrics.NRMSE,
		AR:     2,
	}
}

// Run implements Workload.
func (w *hpcField) Run(ctx *Ctx) ([]float64, error) {
	in, err := ctx.Dev.Malloc(w.name+".in", w.n*4, true, 16)
	if err != nil {
		return nil, err
	}
	out, err := ctx.Dev.Malloc(w.name+".out", w.n*4, true, 16)
	if err != nil {
		return nil, err
	}
	if err := copyIn(ctx, in, w.gen(w.n, w.seed)); err != nil {
		return nil, err
	}

	vin, vout := ctx.Dev.F32View(in), ctx.Dev.F32View(out)
	src := make([]float32, w.n)
	dst := make([]float32, w.n)
	for i := 0; i < w.n; i++ {
		src[i] = vin.At(i)
	}
	w.step(src, dst)
	for i, v := range dst {
		vout.Set(i, v)
	}
	ctx.Sync(out)
	emitStream(ctx, streamSpec{
		Name:    w.kernel,
		Reads:   []device.Region{in},
		Writes:  []device.Region{out},
		Blocks:  blocksForFloats(w.n),
		Compute: 2,
	})
	return readOut(ctx, out, w.n)
}
