package workloads

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// GenVersion identifies the deterministic input-generation scheme shared by
// every workload (gen.go's PRNG, quantisation steps and the per-workload
// sizes/seeds). Bump it whenever any generator or workload input layout
// changes: the content-addressed result store keys golden runs, entropy
// tables and cell results on Fingerprint, so a bump invalidates all of them
// instead of serving results for data that no longer exists.
const GenVersion = 1

// Fingerprint returns a stable content fingerprint for the workload's
// generated regions. Inputs are synthesised deterministically from the
// workload identity and its fixed generator parameters (captured by Info)
// under the GenVersion scheme, so equal fingerprints imply bitwise-equal
// generated inputs — the property the result store's keys rest on.
func Fingerprint(w Workload) string {
	in := w.Info()
	h := sha256.New()
	fmt.Fprintf(h, "workloads/gen-v%d|%s|%s|%s|%s|ar=%d",
		GenVersion, in.Name, in.Short, in.Input, in.Metric, in.AR)
	return hex.EncodeToString(h.Sum(nil))[:16]
}
