// Package workloads implements the paper's benchmark suite (Table III):
// nine memory-bound, approximation-amenable GPU kernels. Each workload
// executes functionally on the device memory image — so lossy compression
// perturbs real data and real outputs — and emits the per-warp coalesced
// access trace the timing simulator replays.
//
// Inputs are synthesised deterministically with the data character of the
// original benchmarks (smooth images, quantised market data, clustered
// coordinates). Sizes are scaled from the paper where needed to keep
// runtimes in seconds; compression operates per 128-byte block and is
// insensitive to total footprint.
package workloads

import (
	"fmt"

	"repro/internal/gpu/device"
	"repro/internal/gpu/trace"
	"repro/internal/metrics"
)

// Info is the Table III row for a workload.
type Info struct {
	Name   string
	Short  string // short description, as in Table III
	Input  string // input size description
	Metric metrics.Metric
	AR     int // number of approximated memory regions
}

// Ctx is the environment a workload runs in. Sync (re)compresses a region's
// blocks under the active configuration, mutating the device image when the
// mode decision is lossy; it must be called after filling inputs and after
// each kernel's stores. Rec collects the timing trace.
type Ctx struct {
	Dev  *device.Device
	Rec  *trace.Recorder
	Sync func(r device.Region)
}

// NewCtx bundles a context; sync and rec may be no-ops for functional-only
// runs.
func NewCtx(dev *device.Device, rec *trace.Recorder, sync func(device.Region)) *Ctx {
	if sync == nil {
		sync = func(device.Region) {}
	}
	return &Ctx{Dev: dev, Rec: rec, Sync: sync}
}

// Workload is one benchmark. Run allocates regions, fills inputs, executes
// the kernels and returns the output vector used for error evaluation.
type Workload interface {
	Info() Info
	Run(ctx *Ctx) ([]float64, error)
}

// Registry returns the paper's nine workloads in Table III order.
func Registry() []Workload {
	return []Workload{
		NewJM(),
		NewBS(),
		NewDCT(),
		NewFWT(),
		NewTP(),
		NewBP(),
		NewNN(),
		NewSRAD1(),
		NewSRAD2(),
	}
}

// FloatRegistry returns the post-paper HPC float-field workloads (ROADMAP
// item 2). They are deliberately not part of Registry(): the paper figures,
// the smoke matrix and the committed goldens iterate the Table III suite
// only, so adding scenarios here never perturbs them.
func FloatRegistry() []Workload {
	return []Workload{
		NewHPCSmooth(),
		NewHPCTurbulent(),
		NewHPCSparse(),
	}
}

// All returns every workload: the Table III suite followed by the HPC
// float fields.
func All() []Workload {
	return append(Registry(), FloatRegistry()...)
}

// ByName returns the workload with the given name, searching the Table III
// suite and the HPC float fields.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Info().Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q (available: %v)", name, AllNames())
}

// Names lists the Table III registry names in order.
func Names() []string {
	var out []string
	for _, w := range Registry() {
		out = append(out, w.Info().Name)
	}
	return out
}

// AllNames lists every workload name, Table III first.
func AllNames() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Info().Name)
	}
	return out
}
