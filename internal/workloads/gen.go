package workloads

import "math"

// Deterministic input generators. Real GPU workloads rarely stream raw
// entropy: market data is quantised to ticks, images to intensity levels,
// coordinates to survey precision. Quantisation is what gives the 16-bit
// symbol distributions their skew — the property E2MC (and hence SLC)
// exploits. Each generator documents its quantisation step.

// xorshift64 is a small deterministic PRNG so workloads do not depend on
// math/rand ordering guarantees across Go versions.
type xorshift64 struct{ s uint64 }

func newRNG(seed uint64) *xorshift64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &xorshift64{s: seed}
}

func (r *xorshift64) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// float01 returns a uniform value in [0, 1).
func (r *xorshift64) float01() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// uniform returns a value in [lo, hi) quantised to the given step.
func (r *xorshift64) uniform(lo, hi, step float64) float32 {
	v := lo + r.float01()*(hi-lo)
	if step > 0 {
		v = math.Round(v/step) * step
	}
	return float32(v)
}

// smoothImage synthesises a w×h image: a few broad Gaussian blobs over a
// gradient, quantised to 256 intensity levels in [0, 1] — the profile of the
// natural images the DCT/SRAD benchmarks process.
func smoothImage(w, h int, seed uint64) []float32 {
	rng := newRNG(seed)
	type blob struct{ cx, cy, sigma, amp float64 }
	blobs := make([]blob, 6)
	for i := range blobs {
		blobs[i] = blob{
			cx:    rng.float01() * float64(w),
			cy:    rng.float01() * float64(h),
			sigma: (0.05 + 0.15*rng.float01()) * float64(w),
			amp:   0.3 + 0.7*rng.float01(),
		}
	}
	img := make([]float32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 0.15 + 0.2*float64(x)/float64(w) + 0.1*float64(y)/float64(h)
			for _, b := range blobs {
				dx, dy := float64(x)-b.cx, float64(y)-b.cy
				v += b.amp * math.Exp(-(dx*dx+dy*dy)/(2*b.sigma*b.sigma))
			}
			if v > 1 {
				v = 1
			}
			img[y*w+x] = float32(math.Round(v*255) / 255)
		}
	}
	return img
}

// clusteredCoords generates n (lat, lng) pairs around a handful of hub
// locations, quantised to 1/1024 degree — the Rodinia NN record profile.
func clusteredCoords(n int, seed uint64) []float32 {
	rng := newRNG(seed)
	type hub struct{ lat, lng float64 }
	hubs := make([]hub, 8)
	for i := range hubs {
		hubs[i] = hub{lat: 25 + 25*rng.float01(), lng: -120 + 50*rng.float01()}
	}
	out := make([]float32, 2*n)
	const q = 1.0 / 1024
	for i := 0; i < n; i++ {
		h := hubs[rng.next()%uint64(len(hubs))]
		lat := h.lat + (rng.float01()-0.5)*2
		lng := h.lng + (rng.float01()-0.5)*2
		out[2*i] = float32(math.Round(lat/q) * q)
		out[2*i+1] = float32(math.Round(lng/q) * q)
	}
	return out
}

// quantizedSignal generates a smooth 1-D signal quantised to the given step,
// used by FWT.
func quantizedSignal(n int, step float64, seed uint64) []float32 {
	rng := newRNG(seed)
	out := make([]float32, n)
	phase1, phase2 := rng.float01()*2*math.Pi, rng.float01()*2*math.Pi
	for i := range out {
		t := float64(i) / float64(n)
		v := math.Sin(2*math.Pi*5*t+phase1) + 0.5*math.Sin(2*math.Pi*17*t+phase2)
		v += 0.1 * (rng.float01() - 0.5)
		out[i] = float32(math.Round(v/step) * step)
	}
	return out
}
