package workloads

import "testing"

func TestFingerprintsAreStableAndDistinct(t *testing.T) {
	seen := make(map[string]string)
	for _, w := range All() {
		fp := Fingerprint(w)
		if len(fp) != 16 {
			t.Errorf("%s: fingerprint %q is not 16 hex chars", w.Info().Name, fp)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision: %s and %s both map to %s", prev, w.Info().Name, fp)
		}
		seen[fp] = w.Info().Name
		if again := Fingerprint(w); again != fp {
			t.Errorf("%s: fingerprint unstable across calls (%s vs %s)", w.Info().Name, fp, again)
		}
	}
}

// TestFloatWorkloadFingerprintGoldens pins the HPC float-field fingerprints.
// These feed the content-addressed result store keys: an unintentional
// change to a workload's identity or generator parameters shows up here
// before it silently invalidates (or worse, aliases) stored results. A
// deliberate change to the generators must bump GenVersion, which moves
// every fingerprint at once — regenerate the constants below when it does.
func TestFloatWorkloadFingerprintGoldens(t *testing.T) {
	want := map[string]string{
		"HPC-S": "cafc2e846622d869",
		"HPC-T": "2406f051f00a2685",
		"HPC-X": "04bbc9deeea31ad3",
	}
	for _, w := range FloatRegistry() {
		name := w.Info().Name
		if got := Fingerprint(w); got != want[name] {
			t.Errorf("%s: fingerprint %s, want golden %s", name, got, want[name])
		}
	}
}
