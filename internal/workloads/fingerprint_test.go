package workloads

import "testing"

func TestFingerprintsAreStableAndDistinct(t *testing.T) {
	seen := make(map[string]string)
	for _, w := range Registry() {
		fp := Fingerprint(w)
		if len(fp) != 16 {
			t.Errorf("%s: fingerprint %q is not 16 hex chars", w.Info().Name, fp)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision: %s and %s both map to %s", prev, w.Info().Name, fp)
		}
		seen[fp] = w.Info().Name
		if again := Fingerprint(w); again != fp {
			t.Errorf("%s: fingerprint unstable across calls (%s vs %s)", w.Info().Name, fp, again)
		}
	}
}
