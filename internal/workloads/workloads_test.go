package workloads

import (
	"math"
	"testing"

	"repro/internal/compress"
	"repro/internal/gpu/device"
	"repro/internal/gpu/trace"
	"repro/internal/metrics"
)

// runGolden executes a workload with no compression and a trace recorder
// that reports raw blocks.
func runGolden(t *testing.T, w Workload) ([]float64, *trace.Trace) {
	t.Helper()
	dev := device.New()
	rec := trace.NewRecorder(func(uint64) (int, bool) { return 4, false })
	out, err := w.Run(NewCtx(dev, rec, nil))
	if err != nil {
		t.Fatalf("%s: %v", w.Info().Name, err)
	}
	return out, rec.Trace()
}

func TestRegistryMatchesTableIII(t *testing.T) {
	want := map[string]struct {
		metric metrics.Metric
		ar     int
	}{
		"JM":    {metrics.MissRate, 6},
		"BS":    {metrics.MRE, 4},
		"DCT":   {metrics.ImageDiff, 2},
		"FWT":   {metrics.NRMSE, 2},
		"TP":    {metrics.NRMSE, 2},
		"BP":    {metrics.MRE, 6},
		"NN":    {metrics.MRE, 2},
		"SRAD1": {metrics.ImageDiff, 8},
		"SRAD2": {metrics.ImageDiff, 6},
	}
	reg := Registry()
	if len(reg) != 9 {
		t.Fatalf("registry has %d workloads, want 9", len(reg))
	}
	for _, w := range reg {
		in := w.Info()
		exp, ok := want[in.Name]
		if !ok {
			t.Errorf("unexpected workload %q", in.Name)
			continue
		}
		if in.Metric != exp.metric || in.AR != exp.ar {
			t.Errorf("%s: metric %v / AR %d, want %v / %d",
				in.Name, in.Metric, in.AR, exp.metric, exp.ar)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("NN"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestAllWorkloadsRunAndEmitTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep in -short mode")
	}
	for _, w := range Registry() {
		w := w
		t.Run(w.Info().Name, func(t *testing.T) {
			out, tr := runGolden(t, w)
			if len(out) == 0 {
				t.Fatal("no outputs")
			}
			for i, v := range out {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("output %d is %v", i, v)
				}
			}
			st := tr.Stats(compress.MAG32)
			if st.Accesses == 0 || st.Kernels == 0 {
				t.Fatalf("empty trace: %+v", st)
			}
			if st.Writes == 0 {
				t.Error("trace has no writes; kernels must write their outputs")
			}
			// Every access must be block aligned and within the device
			// footprint... alignment is enforced by the recorder; check
			// burst sanity.
			for _, k := range tr.Kernels {
				for _, warp := range k.Warps {
					for _, a := range warp {
						if a.Bursts != 4 || a.Compressed {
							t.Fatalf("golden trace access %+v not raw", a)
						}
					}
				}
			}
		})
	}
}

func TestDeterministicOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("repeat run in -short mode")
	}
	w := NewNN()
	a, _ := runGolden(t, w)
	b, _ := runGolden(t, w)
	if len(a) != len(b) {
		t.Fatal("output lengths differ across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestApproxRegionCountsMatchDevice(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep in -short mode")
	}
	for _, w := range Registry() {
		w := w
		t.Run(w.Info().Name, func(t *testing.T) {
			dev := device.New()
			if _, err := w.Run(NewCtx(dev, nil, nil)); err != nil {
				t.Fatal(err)
			}
			got := 0
			for _, r := range dev.Regions() {
				if r.SafeToApprox {
					got++
				}
			}
			if got != w.Info().AR {
				t.Errorf("device has %d approximable regions, Table III says %d",
					got, w.Info().AR)
			}
		})
	}
}

func TestTriTriIntersect(t *testing.T) {
	// Two triangles crossing through each other.
	a0, a1, a2 := vec3{0, 0, 0}, vec3{2, 0, 0}, vec3{0, 2, 0}
	b0, b1, b2 := vec3{0.5, 0.5, -1}, vec3{0.5, 0.5, 1}, vec3{1.5, 0.5, 1}
	if !triTriIntersect(a0, a1, a2, b0, b1, b2) {
		t.Error("crossing triangles reported disjoint")
	}
	// Far apart.
	c0, c1, c2 := vec3{10, 10, 10}, vec3{11, 10, 10}, vec3{10, 11, 10}
	if triTriIntersect(a0, a1, a2, c0, c1, c2) {
		t.Error("distant triangles reported intersecting")
	}
	// Same plane, overlapping area (coplanar → false by convention).
	if triTriIntersect(a0, a1, a2, a0, a1, a2) {
		t.Error("coplanar identical triangles should report false (convention)")
	}
	// One fully on one side of the other's plane.
	d0, d1, d2 := vec3{0, 0, 1}, vec3{1, 0, 1}, vec3{0, 1, 1}
	if triTriIntersect(a0, a1, a2, d0, d1, d2) {
		t.Error("parallel offset triangles reported intersecting")
	}
}

func TestSmoothImageProperties(t *testing.T) {
	img := smoothImage(64, 64, 1)
	if len(img) != 64*64 {
		t.Fatalf("len = %d", len(img))
	}
	for i, v := range img {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %d = %v outside [0,1]", i, v)
		}
		// Quantised to 1/255.
		q := float32(math.Round(float64(v)*255) / 255)
		if v != q {
			t.Fatalf("pixel %d = %v not quantised", i, v)
		}
	}
}

func TestClusteredCoordsQuantised(t *testing.T) {
	xs := clusteredCoords(100, 7)
	if len(xs) != 200 {
		t.Fatalf("len = %d", len(xs))
	}
	const q = 1.0 / 1024
	for i, v := range xs {
		r := float32(math.Round(float64(v)/q) * q)
		if v != r {
			t.Fatalf("coord %d = %v not on 1/1024 grid", i, v)
		}
	}
}

func TestEmitStreamShape(t *testing.T) {
	dev := device.New()
	a, _ := dev.Malloc("a", 64*compress.BlockSize, false, 0)
	b, _ := dev.Malloc("b", 64*compress.BlockSize, false, 0)
	rec := trace.NewRecorder(func(uint64) (int, bool) { return 4, false })
	ctx := NewCtx(dev, rec, nil)
	emitStream(ctx, streamSpec{Name: "k", Reads: []device.Region{a}, Writes: []device.Region{b}, Blocks: 64, Compute: 3})
	tr := rec.Trace()
	if len(tr.Kernels) != 1 {
		t.Fatal("kernel missing")
	}
	k := tr.Kernels[0]
	if len(k.Warps) != warpsFor(64) {
		t.Errorf("warps = %d, want %d", len(k.Warps), warpsFor(64))
	}
	st := tr.Stats(compress.MAG32)
	if st.Reads != 64 || st.Writes != 64 {
		t.Errorf("reads %d writes %d, want 64/64", st.Reads, st.Writes)
	}
	// Warp 0 must cover the first blocksPerWarp blocks of both regions.
	if got := len(k.Warps[0]); got != 2*blocksPerWarp {
		t.Errorf("warp 0 has %d accesses, want %d", got, 2*blocksPerWarp)
	}
}
