package workloads

import (
	"math"
	"testing"

	"repro/internal/gpu/device"
)

var floatGens = []struct {
	name string
	gen  func(n int, seed uint64) []float32
}{
	{"SmoothField", SmoothField},
	{"TurbulentField", TurbulentField},
	{"SparseField", SparseField},
}

// TestFloatGeneratorsSeededReproducible: the same (n, seed) must produce a
// bitwise-identical field, and a different seed a different one — the
// foundation of the fingerprint → result-store contract.
func TestFloatGeneratorsSeededReproducible(t *testing.T) {
	const n = 4096
	for _, g := range floatGens {
		a, b := g.gen(n, 11), g.gen(n, 11)
		if len(a) != n || len(b) != n {
			t.Fatalf("%s: wrong length %d/%d, want %d", g.name, len(a), len(b), n)
		}
		for i := range a {
			if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
				t.Fatalf("%s: value %d differs across identical seeds (%g vs %g)", g.name, i, a[i], b[i])
			}
		}
		c := g.gen(n, 12)
		same := 0
		for i := range a {
			if math.Float32bits(a[i]) == math.Float32bits(c[i]) {
				same++
			}
		}
		// SparseField is mostly zeros, so require only that the seeds do not
		// produce identical fields.
		if same == n {
			t.Errorf("%s: different seeds produced identical fields", g.name)
		}
	}
}

// TestFloatGeneratorsAreFinite: the fields feed NRMSE evaluation and the
// bounded codecs' quantizer; every generated value must be finite.
func TestFloatGeneratorsAreFinite(t *testing.T) {
	for _, g := range floatGens {
		for i, v := range g.gen(1<<14, 3) {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				t.Fatalf("%s: value %d is %v", g.name, i, v)
			}
		}
	}
}

// TestFloatGeneratorShapes pins each profile's defining character: smooth
// fields have small adjacent deltas relative to their range, turbulent
// fields have much larger relative deltas, and sparse fields are mostly
// zero.
func TestFloatGeneratorShapes(t *testing.T) {
	const n = 1 << 14
	meanDelta := func(vals []float32) float64 {
		sum := 0.0
		for i := 1; i < len(vals); i++ {
			sum += math.Abs(float64(vals[i]) - float64(vals[i-1]))
		}
		return sum / float64(len(vals)-1)
	}
	smooth, turb, sparse := SmoothField(n, 3), TurbulentField(n, 3), SparseField(n, 3)
	if ds, dt := meanDelta(smooth), meanDelta(turb); ds*5 > dt {
		t.Errorf("smooth mean delta %g not well below turbulent %g", ds, dt)
	}
	zeros := 0
	for _, v := range sparse {
		if v == 0 {
			zeros++
		}
	}
	if frac := float64(zeros) / n; frac < 0.5 {
		t.Errorf("sparse field only %.0f%% zero", frac*100)
	}
}

// TestFloatRegistryRunsFunctionally executes each HPC workload with a no-op
// sync and checks it produces a full, finite output vector.
func TestFloatRegistryRunsFunctionally(t *testing.T) {
	for _, w := range FloatRegistry() {
		w := w
		t.Run(w.Info().Name, func(t *testing.T) {
			out, err := w.Run(NewCtx(device.New(), nil, nil))
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != hpcN {
				t.Fatalf("output length %d, want %d", len(out), hpcN)
			}
			for i, v := range out {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("output %d is %v", i, v)
				}
			}
		})
	}
}
