package workloads

import "math"

// HPC float-field generators (ROADMAP item 2). Unlike the quantised inputs
// in gen.go these are full-precision float32 fields: the mantissa carries
// real entropy, so lossless codecs find little to remove and the
// error-bounded sz family is the interesting operating point. The three
// profiles bracket the scientific-data spectrum the SZ/cuSZ literature
// evaluates: smooth (climate/CFD slices), turbulent (multi-scale noise) and
// sparse/spiky (particle deposits, near-empty matrices).

// SmoothField synthesises n values of a smooth 1-D field: a sum of a few
// low-frequency sinusoidal modes with random phases and a slow linear
// drift. Adjacent values differ by small residuals, the best case for the
// Lorenzo/linear predictors.
func SmoothField(n int, seed uint64) []float32 {
	rng := newRNG(seed)
	type mode struct{ freq, amp, phase float64 }
	modes := make([]mode, 5)
	for i := range modes {
		modes[i] = mode{
			freq:  (1 + 7*rng.float01()) * float64(i+1),
			amp:   1.0 / float64(i+1),
			phase: rng.float01() * 2 * math.Pi,
		}
	}
	drift := rng.float01() - 0.5
	out := make([]float32, n)
	for i := range out {
		t := float64(i) / float64(n)
		v := drift * t
		for _, m := range modes {
			v += m.amp * math.Sin(2*math.Pi*m.freq*t+m.phase)
		}
		out[i] = float32(v)
	}
	return out
}

// TurbulentField synthesises n values of multi-scale value noise: octaves
// of linearly interpolated random lattices with amplitude falling as
// 1/f^0.75, the rough spectrum of turbulence. Residuals spread over many
// quantization bins, stressing the codebook's tail.
func TurbulentField(n int, seed uint64) []float32 {
	rng := newRNG(seed)
	out := make([]float32, n)
	lattice := make([]float64, 0, 1<<11)
	period := 1 << 8
	amp := 1.0
	for octave := 0; octave < 5; octave++ {
		points := n/period + 2
		lattice = lattice[:0]
		for i := 0; i < points; i++ {
			lattice = append(lattice, (rng.float01()*2-1)*amp)
		}
		for i := range out {
			pos := float64(i) / float64(period)
			k := int(pos)
			frac := pos - float64(k)
			out[i] += float32(lattice[k]*(1-frac) + lattice[k+1]*frac)
		}
		period /= 4
		if period < 1 {
			period = 1
		}
		amp *= 0.5
	}
	return out
}

// SparseField synthesises n values that are mostly zero with occasional
// exponential spikes (about 3% fill), the profile of particle-deposit grids
// and near-empty sparse matrices. Long zero runs quantize to all-zero
// residuals; the spikes force literal fallbacks.
func SparseField(n int, seed uint64) []float32 {
	rng := newRNG(seed)
	out := make([]float32, n)
	i := 0
	for i < n {
		// Geometric gap between spikes, mean ~32 values.
		gap := 1 + int(-32*math.Log(1-rng.float01()))
		i += gap
		if i >= n {
			break
		}
		spike := float32(math.Exp(6*rng.float01()-3) * (rng.float01()*2 - 1))
		out[i] = spike
		// A short decaying tail after each spike.
		for t := 1; t <= 3 && i+t < n; t++ {
			out[i+t] = spike * float32(math.Pow(0.25, float64(t)))
		}
		i += 4
	}
	return out
}
