package workloads

import (
	"fmt"
	"math"

	"repro/internal/compress"
	"repro/internal/gpu/device"
	"repro/internal/metrics"
)

// srad implements the Rodinia SRAD benchmark (speckle-reducing anisotropic
// diffusion) in its two GPU formulations. SRAD1 follows srad_v1: the
// per-iteration statistics reduce plus two kernels that materialise all four
// directional derivatives and the diffusion coefficient (8 approximable
// regions). SRAD2 follows srad_v2: a fused formulation that caches only the
// north/south derivatives and recomputes the in-row ones (6 approximable
// regions). Both run the same diffusion mathematically; they differ in
// memory traffic — exactly how the two variants differ in Rodinia.
type srad struct {
	name  string
	dim   int
	iters int
	full  bool // SRAD1 materialises dW/dE and the coefficient stencil
}

// NewSRAD1 returns the SRAD1 workload (paper input: 1024²; scaled to 512²).
func NewSRAD1() Workload { return &srad{name: "SRAD1", dim: 512, iters: 4, full: true} }

// NewSRAD2 returns the SRAD2 workload.
func NewSRAD2() Workload { return &srad{name: "SRAD2", dim: 512, iters: 4, full: false} }

// Info implements Workload.
func (w *srad) Info() Info {
	ar := 6
	if w.full {
		ar = 8
	}
	return Info{
		Name:   w.name,
		Short:  "Anisotropic diffusion",
		Input:  fmt.Sprintf("%d×%d image", w.dim, w.dim),
		Metric: metrics.ImageDiff,
		AR:     ar,
	}
}

// Run implements Workload.
func (w *srad) Run(ctx *Ctx) ([]float64, error) {
	n := w.dim * w.dim
	alloc := func(name string, elems int) (device.Region, error) {
		return ctx.Dev.Malloc("srad."+name, elems*4, true, 16)
	}
	img, err := alloc("I", n)
	if err != nil {
		return nil, err
	}
	j, err := alloc("J", n)
	if err != nil {
		return nil, err
	}
	c, err := alloc("c", n)
	if err != nil {
		return nil, err
	}
	dn, err := alloc("dN", n)
	if err != nil {
		return nil, err
	}
	ds, err := alloc("dS", n)
	if err != nil {
		return nil, err
	}
	blocks := blocksForFloats(n)
	sums, err := alloc("sums", 2*blocks)
	if err != nil {
		return nil, err
	}
	var dw, de device.Region
	if w.full {
		if dw, err = alloc("dW", n); err != nil {
			return nil, err
		}
		if de, err = alloc("dE", n); err != nil {
			return nil, err
		}
	}

	// J = exp(I), the Rodinia pre-scaling (keeps J strictly positive).
	pix := smoothImage(w.dim, w.dim, 8008)
	if err := copyIn(ctx, img, pix); err != nil {
		return nil, err
	}
	jv := make([]float32, n)
	for i, p := range pix {
		jv[i] = float32(math.Exp(float64(p)))
	}
	if err := copyIn(ctx, j, jv); err != nil {
		return nil, err
	}

	vj, vc := ctx.Dev.F32View(j), ctx.Dev.F32View(c)
	vdn, vds := ctx.Dev.F32View(dn), ctx.Dev.F32View(ds)
	vsums := ctx.Dev.F32View(sums)
	var vdw, vde device.F32
	if w.full {
		vdw, vde = ctx.Dev.F32View(dw), ctx.Dev.F32View(de)
	}

	const lambda = 0.5
	dim := w.dim
	clamp := func(i int) int {
		if i < 0 {
			return 0
		}
		if i >= dim {
			return dim - 1
		}
		return i
	}
	rowBlocks := dim / floatsPerBlock

	for it := 0; it < w.iters; it++ {
		// Statistics reduce: per-block partial sums, then q0² on the host.
		var tot, tot2 float64
		for b := 0; b < blocks; b++ {
			var s, s2 float32
			for k := b * floatsPerBlock; k < (b+1)*floatsPerBlock; k++ {
				v := vj.At(k)
				s += v
				s2 += v * v
			}
			vsums.Set(2*b, s)
			vsums.Set(2*b+1, s2)
			tot += float64(s)
			tot2 += float64(s2)
		}
		ctx.Sync(sums)
		mean := tot / float64(n)
		variance := tot2/float64(n) - mean*mean
		q0sqr := float32(variance / (mean * mean))
		if q0sqr <= 0 {
			q0sqr = 1e-6
		}

		// Kernel 1: derivatives and diffusion coefficient.
		for y := 0; y < dim; y++ {
			for x := 0; x < dim; x++ {
				k := y*dim + x
				jc := vj.At(k)
				dN := vj.At(clamp(y-1)*dim+x) - jc
				dS := vj.At(clamp(y+1)*dim+x) - jc
				dW := vj.At(y*dim+clamp(x-1)) - jc
				dE := vj.At(y*dim+clamp(x+1)) - jc
				g2 := (dN*dN + dS*dS + dW*dW + dE*dE) / (jc * jc)
				l := (dN + dS + dW + dE) / jc
				num := 0.5*g2 - 0.0625*l*l
				den := 1 + 0.25*l
				qsqr := num / (den * den)
				cv := 1.0 / (1.0 + (qsqr-q0sqr)/(q0sqr*(1+q0sqr)))
				if cv < 0 {
					cv = 0
				} else if cv > 1 {
					cv = 1
				}
				vc.Set(k, cv)
				vdn.Set(k, dN)
				vds.Set(k, dS)
				if w.full {
					vdw.Set(k, dW)
					vde.Set(k, dE)
				}
			}
		}
		ctx.Sync(c)
		ctx.Sync(dn)
		ctx.Sync(ds)
		if w.full {
			ctx.Sync(dw)
			ctx.Sync(de)
		}

		// Kernel 2: diffusion update, in place.
		for y := 0; y < dim; y++ {
			for x := 0; x < dim; x++ {
				k := y*dim + x
				jc := vj.At(k)
				cC := vc.At(k)
				cS := vc.At(clamp(y+1)*dim + x)
				cE := vc.At(y*dim + clamp(x+1))
				var dW, dE float32
				if w.full {
					dW, dE = vdw.At(k), vde.At(k)
				} else {
					dW = vj.At(y*dim+clamp(x-1)) - jc
					dE = vj.At(y*dim+clamp(x+1)) - jc
				}
				d := cC*(vdn.At(k)+dW) + cS*vds.At(k) + cE*dE
				vj.Set(k, jc+0.25*lambda*d)
			}
		}
		ctx.Sync(j)

		w.emitIteration(ctx, j, c, dn, ds, dw, de, sums, blocks, rowBlocks)
	}
	return readOut(ctx, j, n)
}

// emitIteration records the three kernels of one diffusion step.
func (w *srad) emitIteration(ctx *Ctx, j, c, dn, ds, dw, de, sums device.Region, blocks, rowBlocks int) {
	if ctx.Rec == nil {
		return
	}
	warps := warpsFor(blocks)
	blockAddr := func(r device.Region, b int) uint64 {
		return r.Addr + uint64(b)*compress.BlockSize
	}
	clampB := func(b int) int {
		if b < 0 {
			return 0
		}
		if b >= blocks {
			return blocks - 1
		}
		return b
	}

	ctx.Rec.BeginKernel("srad_reduce", warps)
	for b := 0; b < blocks; b++ {
		wp := warpOf(b)
		ctx.Rec.Access(wp, blockAddr(j, b), false, 4)
		if b%(floatsPerBlock/2) == 0 {
			ctx.Rec.Access(wp, blockAddr(sums, b/(floatsPerBlock/2)), true, 4)
		}
	}

	ctx.Rec.BeginKernel("srad_k1", warps)
	for b := 0; b < blocks; b++ {
		wp := warpOf(b)
		ctx.Rec.Access(wp, blockAddr(j, b), false, 8)
		ctx.Rec.Access(wp, blockAddr(j, clampB(b-rowBlocks)), false, 2)
		ctx.Rec.Access(wp, blockAddr(j, clampB(b+rowBlocks)), false, 2)
		ctx.Rec.Access(wp, blockAddr(c, b), true, 2)
		ctx.Rec.Access(wp, blockAddr(dn, b), true, 2)
		ctx.Rec.Access(wp, blockAddr(ds, b), true, 2)
		if w.full {
			ctx.Rec.Access(wp, blockAddr(dw, b), true, 2)
			ctx.Rec.Access(wp, blockAddr(de, b), true, 2)
		}
	}

	ctx.Rec.BeginKernel("srad_k2", warps)
	for b := 0; b < blocks; b++ {
		wp := warpOf(b)
		ctx.Rec.Access(wp, blockAddr(j, b), false, 8)
		ctx.Rec.Access(wp, blockAddr(c, b), false, 2)
		ctx.Rec.Access(wp, blockAddr(c, clampB(b+rowBlocks)), false, 2)
		ctx.Rec.Access(wp, blockAddr(dn, b), false, 2)
		ctx.Rec.Access(wp, blockAddr(ds, b), false, 2)
		if w.full {
			ctx.Rec.Access(wp, blockAddr(dw, b), false, 2)
			ctx.Rec.Access(wp, blockAddr(de, b), false, 2)
		}
		ctx.Rec.Access(wp, blockAddr(j, b), true, 2)
	}
}
