package workloads

import (
	"repro/internal/compress"
	"repro/internal/gpu/device"
)

// Trace-emission helpers. Kernels access memory in coalesced 128-byte block
// transactions; these helpers map element ranges onto block accesses using
// CTA-style decomposition: each warp is short-lived and covers a small
// contiguous run of blocks, and warps are numbered in address order. The
// simulator keeps a bounded number of warps resident per SM, so the active
// window slides coherently through the address space — the behaviour of a
// real grid launch, and what gives DRAM its row locality.

// blocksPerWarp is the contiguous block run one trace warp covers (a
// 256-thread CTA touching 4-byte elements spans 8 blocks).
const blocksPerWarp = 8

// warpOf maps a block index to its warp.
func warpOf(b int) int { return b / blocksPerWarp }

// warpsFor returns the warp count covering the given block count.
func warpsFor(blocks int) int { return (blocks + blocksPerWarp - 1) / blocksPerWarp }

// floatsPerBlock is the number of float32 elements per 128-byte block.
const floatsPerBlock = compress.BlockSize / 4

// streamSpec describes one grid-stride streaming kernel: per element chunk,
// every Reads region is read and every Writes region written, with Compute
// issue slots attached to each access.
type streamSpec struct {
	Name    string
	Reads   []device.Region
	Writes  []device.Region
	Blocks  int // number of 128-byte blocks to stream per region
	Compute int // issue slots per access
}

// emitStream records the trace of a streaming kernel: block i of every
// region belongs to warp i/blocksPerWarp.
func emitStream(ctx *Ctx, s streamSpec) {
	if ctx.Rec == nil || s.Blocks == 0 {
		return
	}
	ctx.Rec.BeginKernel(s.Name, warpsFor(s.Blocks))
	for b := 0; b < s.Blocks; b++ {
		w := warpOf(b)
		off := uint64(b) * compress.BlockSize
		for _, r := range s.Reads {
			ctx.Rec.Access(w, r.Addr+off, false, s.Compute)
		}
		for _, r := range s.Writes {
			ctx.Rec.Access(w, r.Addr+off, true, s.Compute)
		}
	}
}

// blocksForFloats returns the block count covering n float32 elements.
func blocksForFloats(n int) int {
	return (n*4 + compress.BlockSize - 1) / compress.BlockSize
}

// copyIn fills a region from host floats and synchronises it through the
// compression pipeline (the initial cudaMemcpyHostToDevice, after which the
// data lives compressed in DRAM).
func copyIn(ctx *Ctx, r device.Region, vals []float32) error {
	if err := ctx.Dev.CopyFloats32(r, vals); err != nil {
		return err
	}
	ctx.Sync(r)
	return nil
}

// readOut reads n floats back as float64 for error evaluation.
func readOut(ctx *Ctx, r device.Region, n int) ([]float64, error) {
	f, err := ctx.Dev.ReadFloats32(r, n)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i, v := range f {
		out[i] = float64(v)
	}
	return out, nil
}
