package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/compress"
)

// DefaultRequestTimeout bounds one request's work when the handler's
// context carries no earlier deadline.
const DefaultRequestTimeout = 30 * time.Second

// Handler serves the slcd HTTP API over a Core.
//
//	POST /v1/compress    CompressRequest   -> CompressResponse
//	POST /v1/decompress  DecompressRequest -> DecompressResponse
//	POST /v1/evaluate    EvaluateRequest   -> EvaluateResponse
//	GET  /v1/codecs      registered codec table
//	GET  /healthz        200 while serving, 503 while draining
//	GET  /metrics        Prometheus text format
type Handler struct {
	core    *Core
	timeout time.Duration
	mux     *http.ServeMux
}

// NewHandler builds the HTTP API over core. timeout bounds each request's
// work; non-positive selects DefaultRequestTimeout.
func NewHandler(core *Core, timeout time.Duration) *Handler {
	if timeout <= 0 {
		timeout = DefaultRequestTimeout
	}
	h := &Handler{core: core, timeout: timeout, mux: http.NewServeMux()}
	h.mux.HandleFunc("/v1/compress", post(h, "compress", func(ctx context.Context, req *CompressRequest) (*CompressResponse, error) {
		return core.Compress(ctx, req)
	}))
	h.mux.HandleFunc("/v1/decompress", post(h, "decompress", func(ctx context.Context, req *DecompressRequest) (*DecompressResponse, error) {
		return core.Decompress(ctx, req)
	}))
	h.mux.HandleFunc("/v1/evaluate", post(h, "evaluate", func(ctx context.Context, req *EvaluateRequest) (*EvaluateResponse, error) {
		return core.Evaluate(ctx, req)
	}))
	h.mux.HandleFunc("/v1/codecs", h.handleCodecs)
	h.mux.HandleFunc("/healthz", h.handleHealthz)
	h.mux.HandleFunc("/metrics", h.handleMetrics)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// errorBody is the JSON error envelope of every non-2xx API response.
type errorBody struct {
	Error string `json:"error"`
}

// statusFor maps a Core error to its HTTP status.
func statusFor(err error) int {
	var reqErr *RequestError
	switch {
	case errors.As(err, &reqErr):
		return http.StatusBadRequest
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away; 499 in nginx's dialect, any status works — the
		// connection is gone.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON writes one JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are out; nothing left to report to the client
}

// post adapts one typed Core method into an http.HandlerFunc: method check,
// JSON decode, per-request timeout, error mapping and metrics.
func post[Req any, Resp any](h *Handler, endpoint string, fn func(context.Context, *Req) (*Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			h.finish(w, endpoint, http.StatusMethodNotAllowed, time.Time{}, errorBody{Error: "POST only"})
			return
		}
		// Serving latency is wall-clock by nature; the deterministic-core
		// rule stops at the transport layer.
		start := time.Now() //slclint:allow determinism request latency measurement is inherently wall-clock
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			h.finish(w, endpoint, http.StatusBadRequest, start, errorBody{Error: fmt.Sprintf("decoding request: %v", err)})
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), h.timeout)
		defer cancel()
		resp, err := fn(ctx, &req)
		if err != nil {
			status := statusFor(err)
			if status == http.StatusGatewayTimeout && r.Context().Err() == nil {
				// The per-request timeout fired, not the client's deadline.
				err = fmt.Errorf("request exceeded the %s timeout", h.timeout)
			}
			h.finish(w, endpoint, status, start, errorBody{Error: err.Error()})
			return
		}
		h.finish(w, endpoint, http.StatusOK, start, resp)
	}
}

// finish writes the response and records the request metrics.
func (h *Handler) finish(w http.ResponseWriter, endpoint string, status int, start time.Time, body interface{}) {
	labels := `endpoint="` + endpoint + `",code="` + strconv.Itoa(status) + `"`
	h.core.Metrics.Add("slcd_requests_total", labels, 1)
	if !start.IsZero() {
		elapsed := time.Since(start) //slclint:allow determinism request latency measurement is inherently wall-clock
		h.core.Metrics.Observe("slcd_request_seconds", `endpoint="`+endpoint+`"`, elapsed.Seconds())
	}
	writeJSON(w, status, body)
}

// codecInfo is one row of the /v1/codecs listing.
type codecInfo struct {
	Name             string `json:"name"`
	NeedsTable       bool   `json:"needsTable,omitempty"`
	Lossy            bool   `json:"lossy,omitempty"`
	LossyBounded     bool   `json:"lossyBounded,omitempty"`
	Base             string `json:"base,omitempty"`
	Identity         bool   `json:"identity,omitempty"`
	CompressCycles   int    `json:"compressCycles,omitempty"`
	DecompressCycles int    `json:"decompressCycles,omitempty"`
}

// handleCodecs lists every registered codec and the profiles available for
// table training.
func (h *Handler) handleCodecs(w http.ResponseWriter, r *http.Request) {
	var codecs []codecInfo
	for _, name := range compress.Names() {
		info, _ := compress.Lookup(name)
		codecs = append(codecs, codecInfo{
			Name:             name,
			NeedsTable:       info.NeedsTable,
			Lossy:            info.Lossy,
			LossyBounded:     info.LossyBounded,
			Base:             info.Base,
			Identity:         info.Identity,
			CompressCycles:   info.CompressCycles,
			DecompressCycles: info.DecompressCycles,
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Codecs   []codecInfo `json:"codecs"`
		Profiles []string    `json:"profiles"`
	}{codecs, workloadNames()})
}

// handleHealthz reports liveness: 503 once draining starts, so load
// balancers stop routing to an instance that will refuse the work.
func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if h.core.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the Prometheus text exposition.
func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	h.core.Metrics.WriteText(w, h.core.Gauges())
}
