package serving

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Metrics is a minimal Prometheus-text-format registry: labelled counters,
// fixed-bucket latency histograms and point-in-time gauges, rendered in
// sorted order so /metrics output is deterministic for a given state. It
// exists because the container bakes in no client library; the exposition
// format is simple enough to emit directly.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]map[string]int64      // name -> labels -> value
	hists    map[string]map[string]*histogram // name -> labels -> buckets
}

// latencyBuckets are the histogram upper bounds in seconds, covering the
// sub-millisecond warm path up to multi-second cold trains.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

type histogram struct {
	counts []int64 // one per latencyBuckets entry
	sum    float64
	count  int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]map[string]int64),
		hists:    make(map[string]map[string]*histogram),
	}
}

// Add increments a labelled counter. labels is the rendered label body, e.g.
// `endpoint="compress",code="200"` (empty for an unlabelled series).
func (m *Metrics) Add(name, labels string, delta int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	series := m.counters[name]
	if series == nil {
		series = make(map[string]int64)
		m.counters[name] = series
	}
	series[labels] += delta
}

// Observe records one latency sample into a labelled histogram.
func (m *Metrics) Observe(name, labels string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	series := m.hists[name]
	if series == nil {
		series = make(map[string]*histogram)
		m.hists[name] = series
	}
	h := series[labels]
	if h == nil {
		h = &histogram{counts: make([]int64, len(latencyBuckets))}
		series[labels] = h
	}
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			h.counts[i]++
		}
	}
	h.sum += seconds
	h.count++
}

// Gauge is one point-in-time value supplied at render time.
type Gauge struct {
	Name   string
	Labels string
	Value  float64
}

// series joins a metric name with its rendered label body.
func series(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// withLabel appends one label pair to an already-rendered label body.
func withLabel(labels, pair string) string {
	if labels == "" {
		return pair
	}
	return labels + "," + pair
}

// WriteText renders the registry plus the caller's gauges in the Prometheus
// text exposition format, all series sorted by name then labels.
func (m *Metrics) WriteText(w io.Writer, gauges []Gauge) {
	m.mu.Lock()
	defer m.mu.Unlock()

	names := make([]string, 0, len(m.counters))
	for name := range m.counters { //slclint:allow determinism collected names are sorted before rendering
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		for _, labels := range sortedKeys(m.counters[name]) {
			fmt.Fprintf(w, "%s %d\n", series(name, labels), m.counters[name][labels])
		}
	}

	names = names[:0]
	for name := range m.hists { //slclint:allow determinism collected names are sorted before rendering
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		for _, labels := range sortedKeys(m.hists[name]) {
			h := m.hists[name][labels]
			for i, ub := range latencyBuckets {
				le := strings.TrimSuffix(fmt.Sprintf("%g", ub), ".0")
				fmt.Fprintf(w, "%s %d\n", series(name+"_bucket", withLabel(labels, fmt.Sprintf(`le="%s"`, le))), h.counts[i])
			}
			fmt.Fprintf(w, "%s %d\n", series(name+"_bucket", withLabel(labels, `le="+Inf"`)), h.count)
			fmt.Fprintf(w, "%s %g\n", series(name+"_sum", labels), h.sum)
			fmt.Fprintf(w, "%s %d\n", series(name+"_count", labels), h.count)
		}
	}

	sorted := append([]Gauge(nil), gauges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Name != sorted[j].Name {
			return sorted[i].Name < sorted[j].Name
		}
		return sorted[i].Labels < sorted[j].Labels
	})
	last := ""
	for _, g := range sorted {
		if g.Name != last {
			fmt.Fprintf(w, "# TYPE %s gauge\n", g.Name)
			last = g.Name
		}
		fmt.Fprintf(w, "%s %g\n", series(g.Name, g.Labels), g.Value)
	}
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //slclint:allow determinism collected keys are sorted before return
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Gauges snapshots the core's point-in-time state for /metrics: queue
// depth, drain flag, builder-cache traffic and (when a store is attached)
// the resultstore hit counters.
func (c *Core) Gauges() []Gauge {
	draining := 0.0
	if c.Draining() {
		draining = 1
	}
	ts := c.Tables.Stats()
	gauges := []Gauge{
		{Name: "slcd_inflight", Value: float64(c.InFlight())},
		{Name: "slcd_inflight_limit", Value: float64(cap(c.sem))},
		{Name: "slcd_draining", Value: draining},
		{Name: "slcd_table_requests_total", Value: float64(ts.Requests)},
		{Name: "slcd_table_retrains_total", Value: float64(ts.Retrains)},
		{Name: "slcd_table_disk_hits_total", Value: float64(ts.DiskHits)},
	}
	if st := c.Store(); st != nil {
		s := st.Stats()
		gauges = append(gauges,
			Gauge{Name: "slcd_store_hits_total", Value: float64(s.Hits)},
			Gauge{Name: "slcd_store_misses_total", Value: float64(s.Misses)},
			Gauge{Name: "slcd_store_puts_total", Value: float64(s.Puts)},
		)
	}
	return gauges
}
