package serving

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, core *Core) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(core, time.Minute))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, req interface{}) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes()
}

func TestHTTPCompressDecompressRoundTrip(t *testing.T) {
	srv := newTestServer(t, newTestCore(0))
	data := testData(4)
	status, body := postJSON(t, srv.URL+"/v1/compress", &CompressRequest{Codec: "bdi", Data: data})
	if status != http.StatusOK {
		t.Fatalf("compress: %d: %s", status, body)
	}
	var cres CompressResponse
	if err := json.Unmarshal(body, &cres); err != nil {
		t.Fatal(err)
	}
	status, body = postJSON(t, srv.URL+"/v1/decompress", &DecompressRequest{Codec: "bdi", Blocks: cres.Blocks})
	if status != http.StatusOK {
		t.Fatalf("decompress: %d: %s", status, body)
	}
	var dres DecompressResponse
	if err := json.Unmarshal(body, &dres); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dres.Data, data) {
		t.Fatal("HTTP round trip is not byte-identical")
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	core := newTestCore(1)
	srv := newTestServer(t, core)

	// Caller mistakes are 400s with a JSON error body.
	status, body := postJSON(t, srv.URL+"/v1/compress", &CompressRequest{Codec: "no-such", Data: testData(1)})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown codec: %d, want 400", status)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("error body %q is not the JSON envelope", body)
	}
	if !strings.Contains(eb.Error, "available") {
		t.Fatalf("error %q does not list the available codecs", eb.Error)
	}

	// Undecodable JSON is a 400, not a hang or a 500.
	resp, err := http.Post(srv.URL+"/v1/compress", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d, want 400", resp.StatusCode)
	}

	// Wrong method is a 405 with Allow.
	resp, err = http.Get(srv.URL + "/v1/compress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Fatalf("GET on compress: %d Allow=%q, want 405 POST", resp.StatusCode, resp.Header.Get("Allow"))
	}

	// A saturated core answers 429.
	release, err := core.acquire()
	if err != nil {
		t.Fatal(err)
	}
	status, _ = postJSON(t, srv.URL+"/v1/compress", &CompressRequest{Codec: "bdi", Data: testData(1)})
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated: %d, want 429", status)
	}
	release()

	// A draining core answers 503 on work and on healthz.
	core.StartDrain()
	status, _ = postJSON(t, srv.URL+"/v1/compress", &CompressRequest{Codec: "bdi", Data: testData(1)})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining: %d, want 503", status)
	}
}

func TestHTTPHealthzFlipsOnDrain(t *testing.T) {
	core := newTestCore(0)
	srv := newTestServer(t, core)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while serving: %d, want 200", resp.StatusCode)
	}
	core.StartDrain()
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
}

func TestHTTPCodecsListing(t *testing.T) {
	srv := newTestServer(t, newTestCore(0))
	resp, err := http.Get(srv.URL + "/v1/codecs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Codecs   []codecInfo `json:"codecs"`
		Profiles []string    `json:"profiles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, c := range listing.Codecs {
		names[c.Name] = true
	}
	if !names["e2mc"] || !names["bdi"] {
		t.Fatalf("codec listing %v lacks the registry entries", names)
	}
	if len(listing.Profiles) == 0 {
		t.Fatal("no training profiles listed")
	}
}

func TestHTTPMetricsExposition(t *testing.T) {
	core := newTestCore(0)
	srv := newTestServer(t, core)
	if status, body := postJSON(t, srv.URL+"/v1/compress", &CompressRequest{Codec: "bdi", Data: testData(1)}); status != http.StatusOK {
		t.Fatalf("compress: %d: %s", status, body)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`slcd_requests_total{endpoint="compress",code="200"} 1`,
		`slcd_request_seconds_count{endpoint="compress"} 1`,
		"slcd_inflight_limit",
		"slcd_table_retrains_total 0",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, out.String())
		}
	}
}

// TestHTTPRequestTimeoutIs504 pins the per-request deadline: work that
// cannot finish inside the handler timeout maps to 504, not a hung
// connection.
func TestHTTPRequestTimeoutIs504(t *testing.T) {
	core := newTestCore(0)
	srv := httptest.NewServer(NewHandler(core, time.Nanosecond))
	defer srv.Close()
	status, body := postJSON(t, srv.URL+"/v1/compress", &CompressRequest{Codec: "bdi", Data: testData(256)})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("got %d (%s), want 504", status, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || !strings.Contains(eb.Error, "timeout") {
		t.Fatalf("error body %q does not explain the timeout", body)
	}
}
