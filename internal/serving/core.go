package serving

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/compress"
	_ "repro/internal/compress/all" // register every codec
	"repro/internal/compress/e2mc"
	"repro/internal/flight"
	"repro/internal/gpu/device"
	"repro/internal/pipeline"
	"repro/internal/resultstore"
	"repro/internal/workloads"
)

// Sentinel errors the transport layer maps to HTTP statuses.
var (
	// ErrSaturated reports that the bounded in-flight queue is full; the
	// client should back off and retry (429).
	ErrSaturated = errors.New("serving: saturated, retry later")
	// ErrDraining reports that the server is shutting down and admits no new
	// work (503).
	ErrDraining = errors.New("serving: draining, not accepting new work")
)

// RequestError is a caller mistake — unknown codec, bad geometry, undecodable
// payload — mapped to 400 rather than 500.
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return e.msg }

// badRequest builds a RequestError.
func badRequest(format string, args ...interface{}) error {
	return &RequestError{msg: fmt.Sprintf(format, args...)}
}

// Config parameterises a serving Core. The zero value is usable: every field
// has a sensible default applied by NewCore.
type Config struct {
	// Workers is the per-batch fan-out: how many goroutines compress or
	// decompress the blocks of one request, and the pipeline.SetWorkers
	// value of evaluate runs. Non-positive selects one per core.
	Workers int
	// MaxInFlight bounds concurrently admitted requests; requests beyond it
	// are rejected with ErrSaturated instead of queueing unboundedly.
	// Non-positive selects DefaultMaxInFlight.
	MaxInFlight int
}

// DefaultMaxInFlight is the default bound on concurrently admitted requests.
const DefaultMaxInFlight = 64

// Core is the transport-independent serving engine behind slcd: codec
// resolution over the registry (with the table builder cache), bounded
// admission, and batch execution. Safe for concurrent use.
type Core struct {
	workers int
	sem     chan struct{}

	// Tables resolves trained entropy tables; exported so the daemon can
	// attach a result store and tests can read the retrain counters.
	Tables TableCache

	codecs   flight.Group[codecPair]
	draining atomic.Bool

	// Metrics receives request/batch observations; never nil.
	Metrics *Metrics

	store atomic.Pointer[resultstore.Store]
}

// NewCore builds a Core from a config.
func NewCore(cfg Config) *Core {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	c := &Core{
		workers: cfg.Workers,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		Metrics: NewMetrics(),
	}
	c.Tables.Store = func() *resultstore.Store { return c.store.Load() }
	return c
}

// SetStore attaches the result store consulted by the table builder cache
// (nil detaches). Safe to call while serving.
func (c *Core) SetStore(st *resultstore.Store) { c.store.Store(st) }

// Store returns the attached result store, if any.
func (c *Core) Store() *resultstore.Store { return c.store.Load() }

// StartDrain puts the core into draining mode: every subsequent admission
// fails with ErrDraining while already-admitted requests run to completion.
func (c *Core) StartDrain() { c.draining.Store(true) }

// Draining reports whether the core is draining.
func (c *Core) Draining() bool { return c.draining.Load() }

// InFlight returns the number of currently admitted requests.
func (c *Core) InFlight() int { return len(c.sem) }

// acquire admits one request into the bounded in-flight queue.
func (c *Core) acquire() (release func(), err error) {
	if c.draining.Load() {
		return nil, ErrDraining
	}
	select {
	case c.sem <- struct{}{}:
		return func() { <-c.sem }, nil
	default:
		return nil, ErrSaturated
	}
}

// codecPair is the built (lossless, lossy) pair of one configuration; both
// nil for identity codecs.
type codecPair struct {
	lossless compress.Codec
	lossy    compress.Codec
}

// active returns the codec a compress/decompress request runs: the lossy
// codec when the configuration has one (that is the codec the caller named),
// the lossless codec otherwise, nil for identity.
func (p codecPair) active() compress.Codec {
	if p.lossy != nil {
		return p.lossy
	}
	return p.lossless
}

// workloadNames returns the registered profile names (the Table III suite
// plus the HPC float fields), for error messages.
func workloadNames() []string {
	var names []string
	for _, w := range workloads.All() {
		names = append(names, w.Info().Name)
	}
	return names
}

// resolve validates a request's codec selection and returns the built pair,
// memoised per (codec, profile, MAG, threshold, error bound) in a
// singleflight slot — the per-codec builder cache. Table-trained codecs
// require a profile (a registered workload name) that selects the training
// corpus.
func (c *Core) resolve(codec, profile string, magBytes, thresholdBits int, errorBound float64) (codecPair, error) {
	codec = strings.ToLower(strings.TrimSpace(codec))
	info, ok := compress.Lookup(codec)
	if !ok {
		return codecPair{}, badRequest("%v", compress.UnknownCodecError(codec))
	}
	if magBytes == 0 {
		magBytes = int(compress.MAG32)
	}
	mag := compress.MAG(magBytes)
	if !mag.Valid() {
		return codecPair{}, badRequest("serving: invalid MAG %d (power of two dividing %d)", magBytes, compress.BlockSize)
	}
	if thresholdBits < 0 || thresholdBits > compress.BlockBits {
		return codecPair{}, badRequest("serving: threshold %d bits out of range [0, %d]", thresholdBits, compress.BlockBits)
	}
	if math.IsNaN(errorBound) || math.IsInf(errorBound, 0) || errorBound < 0 {
		return codecPair{}, badRequest("serving: error bound must be non-negative and finite, got %v", errorBound)
	}
	var w workloads.Workload
	if info.NeedsTable {
		if profile == "" {
			return codecPair{}, badRequest("serving: codec %q needs a trained table; set profile to one of %v", codec, workloadNames())
		}
		var err error
		if w, err = workloads.ByName(profile); err != nil {
			return codecPair{}, badRequest("serving: unknown profile %q (available: %v)", profile, workloadNames())
		}
		profile = w.Info().Name
	} else {
		profile = ""
	}
	key := fmt.Sprintf("%s|%s|%d|%d|%g", codec, profile, mag, thresholdBits, errorBound)
	return c.codecs.Do(key, func() (codecPair, error) {
		lossless, lossy, err := c.Tables.Codecs(w, codec, mag, thresholdBits, errorBound)
		if err != nil {
			return codecPair{}, err
		}
		return codecPair{lossless: lossless, lossy: lossy}, nil
	})
}

// Block is the wire form of one compressed 128-byte block.
type Block struct {
	// Bits is the compressed size in bits (BlockBits when stored raw).
	Bits int `json:"bits"`
	// Payload is the codec bitstream (base64 in JSON).
	Payload []byte `json:"payload,omitempty"`
	// Lossy marks blocks whose payload decodes to an approximation.
	Lossy bool `json:"lossy,omitempty"`
	// Gaps is the E2MC per-way gap array enabling parallel decode; absent
	// for other codecs (decode then falls back to serial).
	Gaps []uint16 `json:"gaps,omitempty"`
}

// CompressRequest asks for Data, a multiple of 128 bytes, to be compressed
// block-by-block under one codec configuration.
type CompressRequest struct {
	Codec         string  `json:"codec"`
	Profile       string  `json:"profile,omitempty"`
	MAG           int     `json:"mag,omitempty"`
	ThresholdBits int     `json:"thresholdBits,omitempty"`
	ErrorBound    float64 `json:"errorBound,omitempty"`
	Data          []byte  `json:"data"`
}

// CompressResponse carries the per-block encodings and the batch ratio.
type CompressResponse struct {
	Codec    string  `json:"codec"`
	Blocks   []Block `json:"blocks"`
	RawRatio float64 `json:"rawRatio"`
}

// DecompressRequest asks for blocks previously produced by CompressRequest
// under the same configuration to be decoded back to bytes.
type DecompressRequest struct {
	Codec         string  `json:"codec"`
	Profile       string  `json:"profile,omitempty"`
	MAG           int     `json:"mag,omitempty"`
	ThresholdBits int     `json:"thresholdBits,omitempty"`
	ErrorBound    float64 `json:"errorBound,omitempty"`
	Blocks        []Block `json:"blocks"`
}

// DecompressResponse carries the reconstructed bytes (an approximation where
// blocks were lossy).
type DecompressResponse struct {
	Data []byte `json:"data"`
}

// EvaluateRequest measures how a codec configuration performs, through the
// real compression pipeline (including the lossy write-back feedback loop).
// With Data set, the data is loaded into a device region and synchronised
// once; with Data empty, the named Profile workload runs end to end with the
// pipeline attached to every region sync — the serving twin of an
// experiment cell's compression pass.
type EvaluateRequest struct {
	Codec         string  `json:"codec"`
	Profile       string  `json:"profile,omitempty"`
	MAG           int     `json:"mag,omitempty"`
	ThresholdBits int     `json:"thresholdBits,omitempty"`
	ErrorBound    float64 `json:"errorBound,omitempty"`
	Data          []byte  `json:"data,omitempty"`
}

// EvaluateResponse is the pipeline's accounting for the evaluated bytes.
type EvaluateResponse struct {
	Codec          string  `json:"codec"`
	Blocks         int64   `json:"blocks"`
	LossyBlocks    int64   `json:"lossyBlocks"`
	Uncompressed   int64   `json:"uncompressed"`
	RawRatio       float64 `json:"rawRatio"`
	EffectiveRatio float64 `json:"effectiveRatio"`
}

// checkGeometry validates that data splits into whole blocks.
func checkGeometry(n int) error {
	if n == 0 {
		return badRequest("serving: empty data")
	}
	if n%compress.BlockSize != 0 {
		return badRequest("serving: data length %d is not a multiple of the %d-byte block size", n, compress.BlockSize)
	}
	return nil
}

// gapCompressor is the optional codec fast path producing per-way gap
// metadata alongside the encoding (E2MC).
type gapCompressor interface {
	CompressWithGaps(block []byte) (compress.Encoded, e2mc.GapArray)
}

// gapDecompressor is the optional parallel decode path consuming that
// metadata (E2MC's four-way parallel Huffman decode).
type gapDecompressor interface {
	DecompressParallel(e compress.Encoded, gaps *e2mc.GapArray, dst []byte) error
}

// Compress encodes req.Data block-by-block across the core's worker pool.
func (c *Core) Compress(ctx context.Context, req *CompressRequest) (*CompressResponse, error) {
	release, err := c.acquire()
	if err != nil {
		return nil, err
	}
	defer release()
	if err := checkGeometry(len(req.Data)); err != nil {
		return nil, err
	}
	pair, err := c.resolve(req.Codec, req.Profile, req.MAG, req.ThresholdBits, req.ErrorBound)
	if err != nil {
		return nil, err
	}
	cod := pair.active()
	n := len(req.Data) / compress.BlockSize
	blocks := make([]Block, n)
	err = c.forBlocks(ctx, n, func(i int) error {
		raw := req.Data[i*compress.BlockSize : (i+1)*compress.BlockSize]
		if cod == nil {
			// Identity baseline: stored raw.
			blocks[i] = Block{Bits: compress.BlockBits, Payload: append([]byte(nil), raw...)}
			return nil
		}
		var enc compress.Encoded
		var gaps []uint16
		if gc, ok := cod.(gapCompressor); ok {
			e, g := gc.CompressWithGaps(raw)
			enc = e
			gaps = make([]uint16, len(g))
			for j, v := range g {
				gaps[j] = v
			}
		} else {
			enc = cod.Compress(raw)
		}
		blocks[i] = Block{
			Bits:    enc.Bits,
			Payload: append([]byte(nil), enc.Payload...),
			Lossy:   enc.Lossy,
			Gaps:    gaps,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rawBits int64
	for _, b := range blocks {
		rawBits += int64(b.Bits)
	}
	ratio := 1.0
	if rawBits > 0 {
		ratio = float64(int64(n)*compress.BlockBits) / float64(rawBits)
	}
	c.Metrics.Add("slcd_blocks_total", `endpoint="compress"`, int64(n))
	return &CompressResponse{Codec: req.Codec, Blocks: blocks, RawRatio: ratio}, nil
}

// Decompress decodes blocks back into bytes. E2MC blocks carrying their gap
// array decode through DecompressParallel — the four-way parallel Huffman
// path, bitwise-identical to serial decode — and every other block through
// the codec's serial Decompress.
func (c *Core) Decompress(ctx context.Context, req *DecompressRequest) (*DecompressResponse, error) {
	release, err := c.acquire()
	if err != nil {
		return nil, err
	}
	defer release()
	if len(req.Blocks) == 0 {
		return nil, badRequest("serving: no blocks")
	}
	pair, err := c.resolve(req.Codec, req.Profile, req.MAG, req.ThresholdBits, req.ErrorBound)
	if err != nil {
		return nil, err
	}
	cod := pair.active()
	data := make([]byte, len(req.Blocks)*compress.BlockSize)
	err = c.forBlocks(ctx, len(req.Blocks), func(i int) error {
		b := req.Blocks[i]
		dst := data[i*compress.BlockSize : (i+1)*compress.BlockSize]
		if cod == nil {
			if len(b.Payload) != compress.BlockSize {
				return badRequest("serving: block %d: raw payload is %d bytes, want %d", i, len(b.Payload), compress.BlockSize)
			}
			copy(dst, b.Payload)
			return nil
		}
		enc := compress.Encoded{Bits: b.Bits, Payload: b.Payload, Lossy: b.Lossy}
		if gd, ok := cod.(gapDecompressor); ok && len(b.Gaps) > 0 {
			var gaps e2mc.GapArray
			if len(b.Gaps) != len(gaps) {
				return badRequest("serving: block %d: gap array has %d entries, want %d", i, len(b.Gaps), len(gaps))
			}
			for j, v := range b.Gaps {
				gaps[j] = v
			}
			if err := gd.DecompressParallel(enc, &gaps, dst); err != nil {
				return badRequest("serving: block %d: %v", i, err)
			}
			return nil
		}
		if err := cod.Decompress(enc, dst); err != nil {
			return badRequest("serving: block %d: %v", i, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.Metrics.Add("slcd_blocks_total", `endpoint="decompress"`, int64(len(req.Blocks)))
	return &DecompressResponse{Data: data}, nil
}

// Evaluate runs the request through a real pipeline (pipeline.Sync with the
// core's worker pool) and returns its compression accounting.
func (c *Core) Evaluate(ctx context.Context, req *EvaluateRequest) (*EvaluateResponse, error) {
	release, err := c.acquire()
	if err != nil {
		return nil, err
	}
	defer release()
	pair, err := c.resolve(req.Codec, req.Profile, req.MAG, req.ThresholdBits, req.ErrorBound)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mag := compress.MAG(req.MAG)
	if req.MAG == 0 {
		mag = compress.MAG32
	}
	dev := device.New()
	pl, err := pipeline.New(dev, mag, pair.lossless, pair.lossy)
	if err != nil {
		return nil, err
	}
	pl.SetWorkers(c.Workers())
	var stats pipeline.Stats
	switch {
	case len(req.Data) > 0:
		if err := checkGeometry(len(req.Data)); err != nil {
			return nil, err
		}
		reg, err := dev.Malloc("evaluate", len(req.Data), pair.lossy != nil, req.ThresholdBits/8)
		if err != nil {
			return nil, badRequest("serving: %v", err)
		}
		mem, err := dev.Bytes(reg.Addr, reg.Size)
		if err != nil {
			return nil, err
		}
		copy(mem, req.Data)
		pl.Sync(reg)
		stats = pl.Stats()
	case req.Profile != "":
		w, err := workloads.ByName(req.Profile)
		if err != nil {
			return nil, badRequest("serving: unknown profile %q (available: %v)", req.Profile, workloadNames())
		}
		if _, err := w.Run(workloads.NewCtx(dev, nil, pl.Sync)); err != nil {
			return nil, fmt.Errorf("serving: evaluate %s: %w", req.Profile, err)
		}
		stats = pl.Stats()
	default:
		return nil, badRequest("serving: evaluate needs data or a profile")
	}
	c.Metrics.Add("slcd_blocks_total", `endpoint="evaluate"`, stats.Blocks)
	return &EvaluateResponse{
		Codec:          req.Codec,
		Blocks:         stats.Blocks,
		LossyBlocks:    stats.LossyBlocks,
		Uncompressed:   stats.Uncompressed,
		RawRatio:       stats.RawRatio(),
		EffectiveRatio: stats.EffectiveRatio(),
	}, nil
}

// Workers resolves the configured per-batch fan-out (non-positive selects
// one per core, the experiments.Workers policy — duplicated here so serving
// does not import experiments).
func (c *Core) Workers() int {
	if c.workers > 0 {
		return c.workers
	}
	return defaultWorkers()
}

// defaultWorkers is one worker per core (the experiments.Workers policy).
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// forBlocks fans block indices across the core's worker pool, checking ctx
// between blocks. A panicking block — a hostile payload tripping a codec —
// records a RequestError for its index rather than killing the daemon. The
// returned error is the lowest-index failure, so concurrent execution
// reports deterministically.
func (c *Core) forBlocks(ctx context.Context, n int, fn func(i int) error) error {
	workers := c.Workers()
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = badRequest("serving: block %d: invalid payload: %v", i, r)
			}
		}()
		errs[i] = fn(i)
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			run(i)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					run(i)
				}
			}()
		}
	feed:
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(next)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
