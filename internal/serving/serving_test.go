package serving

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/compress"
	"repro/internal/resultstore"
)

// testData builds n blocks of compressible test bytes (the smooth ramps the
// codecs are built for, so every family actually exercises its encoder).
func testData(n int) []byte {
	data := make([]byte, n*compress.BlockSize)
	for i := range data {
		data[i] = byte((i / 4) % 97)
	}
	return data
}

// newTestCore builds a core with a small deterministic fan-out.
func newTestCore(maxInFlight int) *Core {
	return NewCore(Config{Workers: 2, MaxInFlight: maxInFlight})
}

func TestCompressDecompressRoundTripEveryCodec(t *testing.T) {
	core := newTestCore(0)
	data := testData(8)
	for _, name := range compress.Names() {
		t.Run(name, func(t *testing.T) {
			info, _ := compress.Lookup(name)
			req := &CompressRequest{Codec: name, Data: data}
			if info.NeedsTable {
				req.Profile = "TP"
			}
			cres, err := core.Compress(context.Background(), req)
			if err != nil {
				t.Fatalf("compress: %v", err)
			}
			if len(cres.Blocks) != 8 {
				t.Fatalf("got %d blocks, want 8", len(cres.Blocks))
			}
			dres, err := core.Decompress(context.Background(), &DecompressRequest{
				Codec: name, Profile: req.Profile, Blocks: cres.Blocks,
			})
			if err != nil {
				t.Fatalf("decompress: %v", err)
			}
			if len(dres.Data) != len(data) {
				t.Fatalf("got %d bytes back, want %d", len(dres.Data), len(data))
			}
			// Lossy codecs return an approximation; everything else must
			// round-trip exactly.
			if !info.Lossy && !bytes.Equal(dres.Data, data) {
				t.Fatal("lossless round trip is not byte-identical")
			}
		})
	}
}

// TestBoundedCodecServingHonoursBound pushes a float field through an sz
// compress/decompress request pair with an explicit error bound — the
// codec-profile path cmd/slcd exposes — and checks every reconstructed value
// against the bound.
func TestBoundedCodecServingHonoursBound(t *testing.T) {
	core := newTestCore(0)
	const bound = 1e-4
	const n = 8 * compress.BlockSize / 4
	data := make([]byte, n*4)
	for i := 0; i < n; i++ {
		v := float32(math.Sin(float64(i) / 50))
		binary.LittleEndian.PutUint32(data[i*4:], math.Float32bits(v))
	}
	cres, err := core.Compress(context.Background(), &CompressRequest{
		Codec: "sz-lorenzo", Data: data, ErrorBound: bound,
	})
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	dres, err := core.Decompress(context.Background(), &DecompressRequest{
		Codec: "sz-lorenzo", Blocks: cres.Blocks, ErrorBound: bound,
	})
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if len(dres.Data) != len(data) {
		t.Fatalf("got %d bytes back, want %d", len(dres.Data), len(data))
	}
	for i := 0; i < n; i++ {
		o := math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:]))
		g := math.Float32frombits(binary.LittleEndian.Uint32(dres.Data[i*4:]))
		if diff := math.Abs(float64(g) - float64(o)); diff > bound {
			t.Fatalf("value %d: |%g − %g| = %g exceeds bound %g", i, g, o, diff, bound)
		}
	}
	if _, err := core.Compress(context.Background(), &CompressRequest{
		Codec: "sz-lorenzo", Data: data, ErrorBound: -1,
	}); err == nil {
		t.Fatal("compress accepted a negative error bound")
	}
}

// TestParallelDecodeMatchesSerial is the wiring acceptance check: E2MC blocks
// carry their gap arrays, decode through DecompressParallel, and the result
// is byte-identical to the serial path (the same blocks with the gap
// metadata stripped).
func TestParallelDecodeMatchesSerial(t *testing.T) {
	core := newTestCore(0)
	data := testData(16)
	cres, err := core.Compress(context.Background(), &CompressRequest{
		Codec: "e2mc", Profile: "TP", Data: data,
	})
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	withGaps := 0
	for _, b := range cres.Blocks {
		if len(b.Gaps) > 0 {
			withGaps++
		}
	}
	if withGaps == 0 {
		t.Fatal("no block carries a gap array; the parallel path is not wired")
	}
	parallel, err := core.Decompress(context.Background(), &DecompressRequest{
		Codec: "e2mc", Profile: "TP", Blocks: cres.Blocks,
	})
	if err != nil {
		t.Fatalf("parallel decompress: %v", err)
	}
	serialBlocks := make([]Block, len(cres.Blocks))
	copy(serialBlocks, cres.Blocks)
	for i := range serialBlocks {
		serialBlocks[i].Gaps = nil
	}
	serial, err := core.Decompress(context.Background(), &DecompressRequest{
		Codec: "e2mc", Profile: "TP", Blocks: serialBlocks,
	})
	if err != nil {
		t.Fatalf("serial decompress: %v", err)
	}
	if !bytes.Equal(parallel.Data, serial.Data) {
		t.Fatal("parallel decode differs from serial decode")
	}
	if !bytes.Equal(parallel.Data, data) {
		t.Fatal("decode differs from the original data")
	}
}

// TestWarmTableZeroRetrains pins the builder cache: the first e2mc request
// trains the table, every subsequent request reuses it.
func TestWarmTableZeroRetrains(t *testing.T) {
	core := newTestCore(0)
	data := testData(4)
	for i := 0; i < 3; i++ {
		if _, err := core.Compress(context.Background(), &CompressRequest{
			Codec: "e2mc", Profile: "TP", Data: data,
		}); err != nil {
			t.Fatalf("compress %d: %v", i, err)
		}
	}
	st := core.Tables.Stats()
	if st.Retrains != 1 {
		t.Fatalf("3 warm requests retrained %d times, want exactly 1 (the cold train)", st.Retrains)
	}
}

// TestStoreSkipsRetrainAcrossCores pins the disk tier: a second core sharing
// the first's result store serves the table from disk with zero retrains.
func TestStoreSkipsRetrainAcrossCores(t *testing.T) {
	dir := t.TempDir()
	st, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold := newTestCore(0)
	cold.SetStore(st)
	data := testData(4)
	if _, err := cold.Compress(context.Background(), &CompressRequest{
		Codec: "e2mc", Profile: "TP", Data: data,
	}); err != nil {
		t.Fatal(err)
	}
	if s := cold.Tables.Stats(); s.Retrains != 1 {
		t.Fatalf("cold core retrained %d times, want 1", s.Retrains)
	}

	st2, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm := newTestCore(0)
	warm.SetStore(st2)
	if _, err := warm.Compress(context.Background(), &CompressRequest{
		Codec: "e2mc", Profile: "TP", Data: data,
	}); err != nil {
		t.Fatal(err)
	}
	s := warm.Tables.Stats()
	if s.Retrains != 0 {
		t.Fatalf("warm core retrained %d times, want 0 (table is on disk)", s.Retrains)
	}
	if s.DiskHits != 1 {
		t.Fatalf("warm core disk hits = %d, want 1", s.DiskHits)
	}
}

func TestBadRequestsAreRequestErrors(t *testing.T) {
	core := newTestCore(0)
	cases := []struct {
		name string
		call func() error
		want string
	}{
		{"unknown codec", func() error {
			_, err := core.Compress(context.Background(), &CompressRequest{Codec: "no-such", Data: testData(1)})
			return err
		}, "unknown codec"},
		{"bad geometry", func() error {
			_, err := core.Compress(context.Background(), &CompressRequest{Codec: "bdi", Data: make([]byte, 100)})
			return err
		}, "block size"},
		{"empty data", func() error {
			_, err := core.Compress(context.Background(), &CompressRequest{Codec: "bdi"})
			return err
		}, "empty"},
		{"invalid MAG", func() error {
			_, err := core.Compress(context.Background(), &CompressRequest{Codec: "bdi", MAG: 7, Data: testData(1)})
			return err
		}, "invalid MAG"},
		{"missing profile", func() error {
			_, err := core.Compress(context.Background(), &CompressRequest{Codec: "e2mc", Data: testData(1)})
			return err
		}, "profile"},
		{"unknown profile", func() error {
			_, err := core.Compress(context.Background(), &CompressRequest{Codec: "e2mc", Profile: "nope", Data: testData(1)})
			return err
		}, "unknown profile"},
		{"no blocks", func() error {
			_, err := core.Decompress(context.Background(), &DecompressRequest{Codec: "bdi"})
			return err
		}, "no blocks"},
		{"evaluate without target", func() error {
			_, err := core.Evaluate(context.Background(), &EvaluateRequest{Codec: "bdi"})
			return err
		}, "data or a profile"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			var reqErr *RequestError
			if !errors.As(err, &reqErr) {
				t.Fatalf("got %v (%T), want a RequestError", err, err)
			}
			if !bytes.Contains([]byte(err.Error()), []byte(tc.want)) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestHostilePayloadIsRejectedNotFatal feeds garbage bitstreams to decode:
// the daemon must answer with a RequestError, never crash on a panicking
// codec goroutine.
func TestHostilePayloadIsRejectedNotFatal(t *testing.T) {
	core := newTestCore(0)
	// Warm the table so decode reaches the codec.
	if _, err := core.Compress(context.Background(), &CompressRequest{
		Codec: "e2mc", Profile: "TP", Data: testData(1),
	}); err != nil {
		t.Fatal(err)
	}
	for _, codec := range []string{"e2mc", "bdi", "bpc"} {
		t.Run(codec, func(t *testing.T) {
			profile := ""
			if info, _ := compress.Lookup(codec); info.NeedsTable {
				profile = "TP"
			}
			blocks := []Block{{Bits: 64, Payload: []byte{0xff, 0xde, 0xad, 0xbe, 0xef, 0x00, 0x11, 0x22}}}
			_, err := core.Decompress(context.Background(), &DecompressRequest{
				Codec: codec, Profile: profile, Blocks: blocks,
			})
			if err == nil {
				// Some codecs decode any bitstream to something; no error is
				// acceptable, crashing is not.
				return
			}
			var reqErr *RequestError
			if !errors.As(err, &reqErr) {
				t.Fatalf("hostile payload: got %v (%T), want a RequestError", err, err)
			}
		})
	}
}

// TestSaturationRejectsImmediately pins the backpressure contract: with every
// in-flight slot held, new work is rejected with ErrSaturated instead of
// queueing, and the slot's release restores service.
func TestSaturationRejectsImmediately(t *testing.T) {
	core := newTestCore(1)
	release, err := core.acquire()
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Compress(context.Background(), &CompressRequest{Codec: "bdi", Data: testData(1)})
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("got %v, want ErrSaturated", err)
	}
	release()
	if _, err := core.Compress(context.Background(), &CompressRequest{Codec: "bdi", Data: testData(1)}); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// TestSaturationUnderConcurrencyDoesNotDeadlock hammers a small core from
// many goroutines (run under -race in CI): every call must return — success
// or ErrSaturated — and the core must end idle.
func TestSaturationUnderConcurrencyDoesNotDeadlock(t *testing.T) {
	core := newTestCore(2)
	data := testData(4)
	var wg sync.WaitGroup
	var ok, saturated, other int64
	var mu sync.Mutex
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, err := core.Compress(context.Background(), &CompressRequest{Codec: "bdi", Data: data})
				mu.Lock()
				switch {
				case err == nil:
					ok++
				case errors.Is(err, ErrSaturated):
					saturated++
				default:
					other++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("%d unexpected errors", other)
	}
	if ok == 0 {
		t.Fatal("every request was rejected; admission is wedged")
	}
	if n := core.InFlight(); n != 0 {
		t.Fatalf("%d requests still admitted after all returned", n)
	}
}

// TestDrainRefusesNewWorkCompletesOldWork runs compressions concurrently
// with StartDrain (under -race in CI): admitted work finishes, new work gets
// ErrDraining, and nothing deadlocks.
func TestDrainRefusesNewWorkCompletesOldWork(t *testing.T) {
	core := newTestCore(8)
	data := testData(64)
	var wg sync.WaitGroup
	results := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, results[g] = core.Compress(context.Background(), &CompressRequest{Codec: "bdi", Data: data})
		}(g)
	}
	core.StartDrain()
	wg.Wait()
	for g, err := range results {
		if err != nil && !errors.Is(err, ErrDraining) {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if _, err := core.Compress(context.Background(), &CompressRequest{Codec: "bdi", Data: data}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain request: got %v, want ErrDraining", err)
	}
	if !core.Draining() {
		t.Fatal("Draining() = false after StartDrain")
	}
	if n := core.InFlight(); n != 0 {
		t.Fatalf("%d requests still admitted after drain", n)
	}
}

func TestEvaluateDataPath(t *testing.T) {
	core := newTestCore(0)
	res, err := core.Evaluate(context.Background(), &EvaluateRequest{
		Codec: "bdi", Data: testData(32),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 32 {
		t.Fatalf("evaluated %d blocks, want 32", res.Blocks)
	}
	if res.RawRatio < 1 {
		t.Fatalf("raw ratio %v < 1 on compressible data", res.RawRatio)
	}
}

func TestEvaluateProfilePath(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full workload")
	}
	core := newTestCore(0)
	res, err := core.Evaluate(context.Background(), &EvaluateRequest{
		Codec: "e2mc", Profile: "TP",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks == 0 {
		t.Fatal("profile evaluation touched no blocks")
	}
}

func TestCancelledContextStopsBatch(t *testing.T) {
	core := newTestCore(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := core.Compress(ctx, &CompressRequest{Codec: "bdi", Data: testData(256)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestMetricsRenderDeterministically(t *testing.T) {
	core := newTestCore(0)
	if _, err := core.Compress(context.Background(), &CompressRequest{Codec: "bdi", Data: testData(2)}); err != nil {
		t.Fatal(err)
	}
	core.Metrics.Observe("slcd_request_seconds", `endpoint="compress"`, 0.002)
	var a, b bytes.Buffer
	core.Metrics.WriteText(&a, core.Gauges())
	core.Metrics.WriteText(&b, core.Gauges())
	if a.String() != b.String() {
		t.Fatal("two renders of the same state differ")
	}
	for _, want := range []string{
		`slcd_blocks_total{endpoint="compress"} 2`,
		`slcd_request_seconds_bucket{endpoint="compress",le="0.005"} 1`,
		`slcd_request_seconds_count{endpoint="compress"} 1`,
		"slcd_inflight 0",
		"slcd_draining 0",
		"slcd_table_retrains_total 0",
	} {
		if !bytes.Contains(a.Bytes(), []byte(want)) {
			t.Fatalf("metrics output lacks %q:\n%s", want, a.String())
		}
	}
}

// TestResolveMemoisesPairs pins the per-codec builder cache at the resolve
// layer: one flight slot per distinct configuration.
func TestResolveMemoisesPairs(t *testing.T) {
	core := newTestCore(0)
	a, err := core.resolve("bdi", "", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.resolve(" BDI ", "", 32, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.lossless != b.lossless {
		t.Fatal("equivalent configurations built distinct codecs")
	}
	if core.codecs.Len() != 1 {
		t.Fatalf("%d cached pairs, want 1", core.codecs.Len())
	}
	// A distinct error bound is a distinct configuration.
	if _, err := core.resolve("sz-lorenzo", "", 0, 0, 1e-4); err != nil {
		t.Fatal(err)
	}
	if _, err := core.resolve("sz-lorenzo", "", 0, 0, 1e-2); err != nil {
		t.Fatal(err)
	}
	if core.codecs.Len() != 3 {
		t.Fatalf("%d cached pairs, want 3", core.codecs.Len())
	}
	if _, err := core.resolve("sz-lorenzo", "", 0, 0, math.Inf(1)); err == nil {
		t.Fatal("resolve accepted an infinite error bound")
	}
}

func TestConcurrentSameCodecBuildsOnce(t *testing.T) {
	core := NewCore(Config{Workers: 1, MaxInFlight: 64})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = core.Compress(context.Background(), &CompressRequest{
				Codec: "e2mc", Profile: "TP", Data: testData(1),
			})
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if s := core.Tables.Stats(); s.Retrains != 1 {
		t.Fatalf("8 concurrent cold requests trained %d tables, want 1", s.Retrains)
	}
}

// TestIdentityCodecServes pins the raw baseline: every registered codec is
// servable, including the identity entry.
func TestIdentityCodecServes(t *testing.T) {
	var identity string
	for _, name := range compress.Names() {
		if info, _ := compress.Lookup(name); info.Identity {
			identity = name
			break
		}
	}
	if identity == "" {
		t.Skip("no identity codec registered")
	}
	core := newTestCore(0)
	data := testData(2)
	cres, err := core.Compress(context.Background(), &CompressRequest{Codec: identity, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if cres.RawRatio != 1 {
		t.Fatalf("identity raw ratio %v, want 1", cres.RawRatio)
	}
	dres, err := core.Decompress(context.Background(), &DecompressRequest{Codec: identity, Blocks: cres.Blocks})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dres.Data, data) {
		t.Fatal("identity round trip altered the data")
	}
}

// TestWorkersBoundsBatchFanOut sanity-checks the worker plumbing across
// configurations (1, 2, many) on a batch bigger than the pool.
func TestWorkersBoundsBatchFanOut(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		core := NewCore(Config{Workers: workers, MaxInFlight: 4})
		data := testData(64)
		cres, err := core.Compress(context.Background(), &CompressRequest{Codec: "bdi", Data: data})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		dres, err := core.Decompress(context.Background(), &DecompressRequest{Codec: "bdi", Blocks: cres.Blocks})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(dres.Data, data) {
			t.Fatalf("workers=%d: round trip mismatch", workers)
		}
	}
}

// TestForBlocksReportsLowestIndex pins deterministic error selection under
// concurrency.
func TestForBlocksReportsLowestIndex(t *testing.T) {
	core := NewCore(Config{Workers: 8, MaxInFlight: 4})
	err := core.forBlocks(context.Background(), 64, func(i int) error {
		if i%3 == 1 {
			return fmt.Errorf("block %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "block 1 failed" {
		t.Fatalf("got %v, want the lowest-index failure (block 1)", err)
	}
}
