// Package serving is the reusable serving core behind cmd/slcd, the
// streaming compression daemon: codec construction over the registry with a
// per-codec builder cache (trained e2mc tables resolved memory → resultstore
// → train, inside singleflight slots), block batch execution with bounded
// in-flight admission, per-request timeouts, graceful drain and
// Prometheus-style metrics. The experiment Runner is a thin client of the
// same builder cache, so an evaluation run and a long-running daemon share
// one table-training path (and one result store).
package serving

import (
	"fmt"
	"sync/atomic"

	"repro/internal/compress"
	"repro/internal/compress/e2mc"
	"repro/internal/flight"
	"repro/internal/gpu/device"
	"repro/internal/resultstore"
	"repro/internal/workloads"
)

// Store record kind of trained entropy tables (shared with the experiment
// runner's store layout; the key material below is unchanged from the
// pre-serving Runner, so existing stores keep hitting).
const kindTable = "table"

// TableCache resolves trained e2mc entropy tables by workload: memory hit →
// resultstore hit → train, inside a singleflight slot per workload, so any
// number of concurrent requests (serving traffic or evaluation cells) train
// a given table at most once per process — and, with a store attached, at
// most once ever.
type TableCache struct {
	// Store returns the result store consulted before training, or nil for
	// a memory-only cache. It is a func so a late-attached store (the
	// Runner's Store field is assigned after construction) is still seen.
	Store func() *resultstore.Store

	// Progress, when set, receives one line per slow-path operation
	// (training). Calls may come from any goroutine; the provider
	// serialises.
	Progress func(format string, args ...interface{})

	tables flight.Group[*e2mc.Table]

	requests atomic.Int64
	retrains atomic.Int64
	diskHits atomic.Int64
}

// progress logs through the cache's hook when one is set.
func (c *TableCache) progress(format string, args ...interface{}) {
	if c.Progress != nil {
		c.Progress(format, args...)
	}
}

// store returns the attached result store, if any.
func (c *TableCache) store() *resultstore.Store {
	if c.Store == nil {
		return nil
	}
	return c.Store()
}

// tableMaterial keys a workload's trained entropy table: the sampling
// scheme (every region sync) and the table construction parameters.
func tableMaterial(w workloads.Workload) resultstore.Material {
	return resultstore.Material{
		"workload":   workloads.Fingerprint(w),
		"sampling":   "region-sync-v1",
		"maxSymbols": e2mc.DefaultMaxSymbols,
		"maxCodeLen": e2mc.DefaultMaxCodeLen,
	}
}

// Table returns the workload's E2MC table, trained by sampling the device
// image at every region synchronisation — the online-sampling substitute.
// Concurrent calls for the same workload resolve in one singleflight slot.
func (c *TableCache) Table(w workloads.Workload) (*e2mc.Table, error) {
	c.requests.Add(1)
	name := w.Info().Name
	return c.tables.Do(name, func() (*e2mc.Table, error) {
		st := c.store()
		var key resultstore.Key
		usable := false
		if st != nil {
			var err error
			key, err = st.Key(kindTable, tableMaterial(w))
			if err != nil {
				c.progress("store: keying table failed: %v", err)
			} else {
				usable = true
			}
		}
		if usable {
			if payload, hit, err := st.GetBytes(key); err != nil {
				return nil, fmt.Errorf("table %s: store: %w", name, err)
			} else if hit {
				var tab e2mc.Table
				if uerr := tab.UnmarshalBinary(payload); uerr == nil {
					c.diskHits.Add(1)
					return &tab, nil
				}
				// Undecodable under the current wire format: recompute.
			}
		}
		c.progress("training table: %s", name)
		c.retrains.Add(1)
		dev := device.New()
		trainer := e2mc.NewTrainer()
		sync := func(reg device.Region) {
			reg.BlockAddrs(func(addr uint64) {
				block, err := dev.Block(addr)
				if err != nil {
					panic(err)
				}
				trainer.Sample(block)
			})
		}
		if _, err := w.Run(workloads.NewCtx(dev, nil, sync)); err != nil {
			return nil, fmt.Errorf("training %s: %w", name, err)
		}
		tab, err := trainer.Build(0, 0)
		if err != nil {
			return nil, fmt.Errorf("building table for %s: %w", name, err)
		}
		if usable {
			// Best-effort write-back: a full disk must not fail the train.
			if data, merr := tab.MarshalBinary(); merr != nil {
				c.progress("store: encoding table record failed: %v", merr)
			} else if perr := st.PutBytes(key, kindTable, "bin", data); perr != nil {
				c.progress("store: writing table record failed: %v", perr)
			}
		}
		return tab, nil
	})
}

// TableStats is a snapshot of the cache's traffic counters.
type TableStats struct {
	// Requests counts Table calls (memory hits included).
	Requests int64
	// Retrains counts slow-path table trainings — the number the serving
	// acceptance test pins at zero for a warm repeated request.
	Retrains int64
	// DiskHits counts tables served from the result store.
	DiskHits int64
}

// Stats returns the cache's traffic counters.
func (c *TableCache) Stats() TableStats {
	return TableStats{
		Requests: c.requests.Load(),
		Retrains: c.retrains.Load(),
		DiskHits: c.diskHits.Load(),
	}
}

// Codecs builds the (lossless, lossy) codec pair of a configuration from
// the registry, resolving any trained table through the cache. Identity
// codecs (the raw baseline) yield a nil pair; lossy codecs additionally
// build their lossless base for exact regions. This is the codec
// construction the experiment Runner delegates to.
func (c *TableCache) Codecs(w workloads.Workload, codec string, mag compress.MAG, thresholdBits int, errorBound float64) (lossless, lossy compress.Codec, err error) {
	info, ok := compress.Lookup(codec)
	if !ok {
		return nil, nil, compress.UnknownCodecError(codec)
	}
	if info.Identity {
		return nil, nil, nil
	}
	ctx := compress.BuildContext{MAG: mag, ThresholdBits: thresholdBits, ErrorBound: errorBound}
	if info.NeedsTable {
		tab, err := c.Table(w)
		if err != nil {
			return nil, nil, err
		}
		ctx.Table = tab
	}
	built, err := info.New(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("serving: building %q: %w", codec, err)
	}
	if !info.Lossy {
		return built, nil, nil
	}
	if info.Base == "" {
		return nil, nil, fmt.Errorf("serving: lossy codec %q registers no lossless base", codec)
	}
	base, err := compress.Build(info.Base, ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("serving: building base %q for %q: %w", info.Base, codec, err)
	}
	return base, built, nil
}
