// Package pipeline couples the device memory image to a compression
// configuration. Whenever a region is synchronised (after the host copy-in
// and after each kernel's stores), every block is pushed through the active
// codec: the block's burst count is recorded for the timing trace, and —
// when the SLC decision is lossy — the approximated bytes are written back
// into device memory, so later reads, later iterations and later
// recompressions observe them (the feedback loop of paper §V-A).
package pipeline

import (
	"fmt"
	"sync"

	"repro/internal/compress"
	"repro/internal/gpu/device"
)

// BlockInfo is the stored geometry of one block.
type BlockInfo struct {
	Bursts     uint8
	Compressed bool
}

// Stats accumulates per-compression statistics over all Sync calls; the
// distributions feed Figures 1 and 2.
type Stats struct {
	Blocks       int64 // block compressions performed
	LossyBlocks  int64
	Uncompressed int64 // blocks stored raw
	RawBits      int64 // Σ compressed bits, no MAG (raw ratio basis)
	EffBits      int64 // Σ burst-aligned bits (effective ratio basis)
	AboveMAG     []int64
}

// add merges another shard into s. All fields are sums (and AboveMAG a
// vector of sums), so the merged result is independent of shard order.
func (s *Stats) add(o Stats) {
	s.Blocks += o.Blocks
	s.LossyBlocks += o.LossyBlocks
	s.Uncompressed += o.Uncompressed
	s.RawBits += o.RawBits
	s.EffBits += o.EffBits
	for i, v := range o.AboveMAG {
		s.AboveMAG[i] += v
	}
}

// RawRatio returns the raw compression ratio over all compressions.
func (s Stats) RawRatio() float64 {
	if s.RawBits == 0 {
		return 1
	}
	return float64(s.Blocks*compress.BlockBits) / float64(s.RawBits)
}

// EffectiveRatio returns the effective (MAG-aligned) compression ratio.
func (s Stats) EffectiveRatio() float64 {
	if s.EffBits == 0 {
		return 1
	}
	return float64(s.Blocks*compress.BlockBits) / float64(s.EffBits)
}

// Pipeline is one compression configuration bound to a device.
type Pipeline struct {
	dev *device.Device
	mag compress.MAG
	// lossless serves exact regions; lossy (if set) serves
	// safe-to-approximate regions. Either may be nil: nil lossless means no
	// compression at all.
	lossless compress.Codec
	lossy    compress.Codec
	// lossyFactory, when installed, builds per-threshold codecs so each
	// region's own lossy threshold (the extended cudaMalloc argument,
	// paper §IV-C) is honoured.
	lossyFactory func(thresholdBits int) (compress.Codec, error)
	perThreshold map[int]compress.Codec
	blocks       map[uint64]BlockInfo
	stats        Stats
	scratch      []byte
	// workers is the Sync fan-out: how many goroutines compress the blocks
	// of one region. 1 means serial. addrbuf is the reused address batch and
	// shards the reused per-worker state, so the Sync steady state performs
	// no per-call allocation.
	workers int
	addrbuf []uint64
	shards  []syncShard
}

// New builds a pipeline. lossless may be nil (uncompressed baseline); lossy
// may be nil (lossless everywhere, the E2MC baseline).
func New(dev *device.Device, mag compress.MAG, lossless, lossy compress.Codec) (*Pipeline, error) {
	if !mag.Valid() {
		return nil, fmt.Errorf("pipeline: invalid MAG %d", mag)
	}
	return &Pipeline{
		dev:      dev,
		mag:      mag,
		lossless: lossless,
		lossy:    lossy,
		blocks:   make(map[uint64]BlockInfo),
		stats:    Stats{AboveMAG: make([]int64, int(mag)+1)},
		scratch:  make([]byte, compress.BlockSize),
		workers:  1,
	}, nil
}

// SetWorkers sets how many goroutines Sync uses to compress the blocks of a
// region. Values below 1 select serial execution. Blocks are independent
// (each owns its 128 bytes of device memory) and all statistics are sums, so
// results are identical to serial execution for any worker count; the codecs
// must be safe for concurrent Compress/Decompress (all codecs in this
// repository are).
func (p *Pipeline) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	p.workers = n
}

// SetLossyFactory installs per-threshold codec construction. With a factory
// installed, a safe-to-approximate region whose ThresholdBytes is non-zero
// gets a lossy codec honouring that threshold instead of the default one.
func (p *Pipeline) SetLossyFactory(factory func(thresholdBits int) (compress.Codec, error)) {
	p.lossyFactory = factory
	p.perThreshold = make(map[int]compress.Codec)
}

// lossyFor returns the lossy codec for one region.
func (p *Pipeline) lossyFor(r device.Region) compress.Codec {
	if p.lossyFactory == nil || r.ThresholdBytes <= 0 {
		return p.lossy
	}
	bits := r.ThresholdBytes * 8
	if c, ok := p.perThreshold[bits]; ok {
		return c
	}
	c, err := p.lossyFactory(bits)
	if err != nil {
		panic(fmt.Sprintf("pipeline: lossy codec for threshold %dB: %v", r.ThresholdBytes, err))
	}
	p.perThreshold[bits] = c
	return c
}

// Sync pushes every block of the region through the codec, updating burst
// bookkeeping and applying lossy mutations to device memory. The address
// loops are written out inline (rather than through Region.BlockAddrs) so
// the serial steady state allocates nothing per call.
func (p *Pipeline) Sync(r device.Region) {
	codec := p.lossless
	exact := true
	if r.SafeToApprox && p.lossy != nil {
		codec = p.lossyFor(r)
		exact = false
	}
	if codec == nil {
		// Uncompressed baseline: full bursts, nothing stored.
		for addr := r.Addr; addr < r.End(); addr += compress.BlockSize {
			p.blocks[addr] = BlockInfo{Bursts: uint8(p.mag.MaxBursts())}
		}
		return
	}
	if p.workers <= 1 {
		for addr := r.Addr; addr < r.End(); addr += compress.BlockSize {
			p.blocks[addr] = p.compressBlock(codec, exact, r, addr, p.scratch, &p.stats)
		}
		return
	}
	p.syncParallel(codec, exact, r)
}

// compressBlock pushes one block through the codec: it compresses, applies
// the lossy write-back to device memory, and accumulates st. Serial and
// parallel Sync share it so their per-block behaviour stays identical.
//
// Two fast paths avoid materialising the bitstream, which the sync step
// never needs: a compress.Syncer codec performs decision, size and in-place
// write-back in one call, and a lossless (exact) codec with SizeOnly reports
// its size directly — the fuzz harness pins CompressedBits == Compress().Bits
// for every non-lossy codec, so the accounting is identical to the slow path.
func (p *Pipeline) compressBlock(codec compress.Codec, exact bool, r device.Region, addr uint64, scratch []byte, st *Stats) BlockInfo {
	block, err := p.dev.Block(addr)
	if err != nil {
		panic(fmt.Sprintf("pipeline: sync %s: %v", r.Name, err))
	}
	var bits int
	var lossy bool
	if sc, ok := codec.(compress.Syncer); ok {
		bits, lossy = sc.SyncBlock(block)
	} else if so, ok := codec.(compress.SizeOnly); ok && exact {
		bits = so.CompressedBits(block)
	} else {
		enc := codec.Compress(block)
		bits, lossy = enc.Bits, enc.Lossy
		if enc.Lossy {
			if err := codec.Decompress(enc, scratch); err != nil {
				panic(fmt.Sprintf("pipeline: lossy round trip %s@%#x: %v", r.Name, addr, err))
			}
			copy(block, scratch)
		}
	}
	if lossy {
		st.LossyBlocks++
	}
	info := BlockInfo{
		Bursts:     uint8(p.mag.Bursts(bits)),
		Compressed: bits < compress.BlockBits,
	}
	st.Blocks++
	if !info.Compressed {
		st.Uncompressed++
	}
	st.RawBits += int64(bits)
	st.EffBits += int64(p.mag.EffectiveBits(bits))
	st.AboveMAG[p.mag.BytesAboveMAG(bits)]++
	return info
}

// syncEntry is one worker-produced block record, merged after the barrier.
type syncEntry struct {
	addr uint64
	info BlockInfo
}

// syncShard is the private state of one Sync worker: its own Stats (with its
// own AboveMAG histogram), block records and scratch buffer, merged
// deterministically once all workers finish. Shards persist on the Pipeline
// across Sync calls; reset clears the accumulators while keeping the backing
// storage, so a warm parallel Sync reuses every worker buffer.
type syncShard struct {
	stats   Stats
	entries []syncEntry
	scratch []byte
	panicV  interface{}
}

// reset prepares a shard for reuse under the given MAG histogram size.
func (sh *syncShard) reset(magBuckets int) {
	if cap(sh.stats.AboveMAG) < magBuckets {
		sh.stats.AboveMAG = make([]int64, magBuckets)
	}
	above := sh.stats.AboveMAG[:magBuckets]
	for i := range above {
		above[i] = 0
	}
	sh.stats = Stats{AboveMAG: above}
	sh.entries = sh.entries[:0]
	if sh.scratch == nil {
		sh.scratch = make([]byte, compress.BlockSize)
	}
	sh.panicV = nil
}

// syncParallel fans the region's blocks across the worker pool. Each worker
// owns a contiguous address range, a scratch buffer and a Stats shard; the
// merge after the barrier walks shards in index order, and since every
// statistic is a sum (and block addresses are distinct), the result is
// bitwise identical to serial execution.
func (p *Pipeline) syncParallel(codec compress.Codec, exact bool, r device.Region) {
	addrs := p.addrbuf[:0]
	for addr := r.Addr; addr < r.End(); addr += compress.BlockSize {
		addrs = append(addrs, addr)
	}
	p.addrbuf = addrs

	workers := p.workers
	if workers > len(addrs) {
		workers = len(addrs)
	}
	if workers == 0 {
		return
	}
	if cap(p.shards) < workers {
		p.shards = make([]syncShard, workers)
	}
	shards := p.shards[:workers]
	chunk := (len(addrs) + workers - 1) / workers
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		lo := wi * chunk
		hi := lo + chunk
		if hi > len(addrs) {
			hi = len(addrs)
		}
		if lo >= hi {
			continue
		}
		shards[wi].reset(int(p.mag) + 1)
		wg.Add(1)
		go func(sh *syncShard, span []uint64) {
			defer wg.Done()
			defer func() { sh.panicV = recover() }()
			for _, addr := range span {
				info := p.compressBlock(codec, exact, r, addr, sh.scratch, &sh.stats)
				sh.entries = append(sh.entries, syncEntry{addr, info})
			}
		}(&shards[wi], addrs[lo:hi])
	}
	wg.Wait()
	for i := range shards {
		if v := shards[i].panicV; v != nil {
			panic(v)
		}
	}
	for wi := 0; wi < workers; wi++ {
		lo := wi * chunk
		if lo >= len(addrs) {
			break
		}
		p.stats.add(shards[wi].stats)
		for _, e := range shards[wi].entries {
			p.blocks[e.addr] = e.info
		}
	}
}

// BurstsFor implements the trace recorder's lookup: burst count and
// compressed flag for a block, defaulting to a raw block when never synced.
func (p *Pipeline) BurstsFor(addr uint64) (int, bool) {
	if info, ok := p.blocks[addr]; ok {
		return int(info.Bursts), info.Compressed
	}
	return p.mag.MaxBursts(), false
}

// Stats returns the accumulated statistics.
func (p *Pipeline) Stats() Stats { return p.stats }

// MAG returns the pipeline's granularity.
func (p *Pipeline) MAG() compress.MAG { return p.mag }
