// Package pipeline couples the device memory image to a compression
// configuration. Whenever a region is synchronised (after the host copy-in
// and after each kernel's stores), every block is pushed through the active
// codec: the block's burst count is recorded for the timing trace, and —
// when the SLC decision is lossy — the approximated bytes are written back
// into device memory, so later reads, later iterations and later
// recompressions observe them (the feedback loop of paper §V-A).
package pipeline

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/gpu/device"
)

// BlockInfo is the stored geometry of one block.
type BlockInfo struct {
	Bursts     uint8
	Compressed bool
}

// Stats accumulates per-compression statistics over all Sync calls; the
// distributions feed Figures 1 and 2.
type Stats struct {
	Blocks       int64 // block compressions performed
	LossyBlocks  int64
	Uncompressed int64 // blocks stored raw
	RawBits      int64 // Σ compressed bits, no MAG (raw ratio basis)
	EffBits      int64 // Σ burst-aligned bits (effective ratio basis)
	AboveMAG     []int64
}

// RawRatio returns the raw compression ratio over all compressions.
func (s Stats) RawRatio() float64 {
	if s.RawBits == 0 {
		return 1
	}
	return float64(s.Blocks*compress.BlockBits) / float64(s.RawBits)
}

// EffectiveRatio returns the effective (MAG-aligned) compression ratio.
func (s Stats) EffectiveRatio() float64 {
	if s.EffBits == 0 {
		return 1
	}
	return float64(s.Blocks*compress.BlockBits) / float64(s.EffBits)
}

// Pipeline is one compression configuration bound to a device.
type Pipeline struct {
	dev *device.Device
	mag compress.MAG
	// lossless serves exact regions; lossy (if set) serves
	// safe-to-approximate regions. Either may be nil: nil lossless means no
	// compression at all.
	lossless compress.Codec
	lossy    compress.Codec
	// lossyFactory, when installed, builds per-threshold codecs so each
	// region's own lossy threshold (the extended cudaMalloc argument,
	// paper §IV-C) is honoured.
	lossyFactory func(thresholdBits int) (compress.Codec, error)
	perThreshold map[int]compress.Codec
	blocks       map[uint64]BlockInfo
	stats        Stats
	scratch      []byte
}

// New builds a pipeline. lossless may be nil (uncompressed baseline); lossy
// may be nil (lossless everywhere, the E2MC baseline).
func New(dev *device.Device, mag compress.MAG, lossless, lossy compress.Codec) (*Pipeline, error) {
	if !mag.Valid() {
		return nil, fmt.Errorf("pipeline: invalid MAG %d", mag)
	}
	return &Pipeline{
		dev:      dev,
		mag:      mag,
		lossless: lossless,
		lossy:    lossy,
		blocks:   make(map[uint64]BlockInfo),
		stats:    Stats{AboveMAG: make([]int64, int(mag)+1)},
		scratch:  make([]byte, compress.BlockSize),
	}, nil
}

// SetLossyFactory installs per-threshold codec construction. With a factory
// installed, a safe-to-approximate region whose ThresholdBytes is non-zero
// gets a lossy codec honouring that threshold instead of the default one.
func (p *Pipeline) SetLossyFactory(factory func(thresholdBits int) (compress.Codec, error)) {
	p.lossyFactory = factory
	p.perThreshold = make(map[int]compress.Codec)
}

// lossyFor returns the lossy codec for one region.
func (p *Pipeline) lossyFor(r device.Region) compress.Codec {
	if p.lossyFactory == nil || r.ThresholdBytes <= 0 {
		return p.lossy
	}
	bits := r.ThresholdBytes * 8
	if c, ok := p.perThreshold[bits]; ok {
		return c
	}
	c, err := p.lossyFactory(bits)
	if err != nil {
		panic(fmt.Sprintf("pipeline: lossy codec for threshold %dB: %v", r.ThresholdBytes, err))
	}
	p.perThreshold[bits] = c
	return c
}

// Sync pushes every block of the region through the codec, updating burst
// bookkeeping and applying lossy mutations to device memory.
func (p *Pipeline) Sync(r device.Region) {
	codec := p.lossless
	if r.SafeToApprox && p.lossy != nil {
		codec = p.lossyFor(r)
	}
	if codec == nil {
		// Uncompressed baseline: full bursts, nothing stored.
		r.BlockAddrs(func(addr uint64) {
			p.blocks[addr] = BlockInfo{Bursts: uint8(p.mag.MaxBursts())}
		})
		return
	}
	r.BlockAddrs(func(addr uint64) {
		block, err := p.dev.Block(addr)
		if err != nil {
			panic(fmt.Sprintf("pipeline: sync %s: %v", r.Name, err))
		}
		enc := codec.Compress(block)
		if enc.Lossy {
			if err := codec.Decompress(enc, p.scratch); err != nil {
				panic(fmt.Sprintf("pipeline: lossy round trip %s@%#x: %v", r.Name, addr, err))
			}
			copy(block, p.scratch)
			p.stats.LossyBlocks++
		}
		info := BlockInfo{
			Bursts:     uint8(p.mag.Bursts(enc.Bits)),
			Compressed: enc.Bits < compress.BlockBits,
		}
		p.blocks[addr] = info
		p.stats.Blocks++
		if !info.Compressed {
			p.stats.Uncompressed++
		}
		p.stats.RawBits += int64(enc.Bits)
		p.stats.EffBits += int64(p.mag.EffectiveBits(enc.Bits))
		p.stats.AboveMAG[p.mag.BytesAboveMAG(enc.Bits)]++
	})
}

// BurstsFor implements the trace recorder's lookup: burst count and
// compressed flag for a block, defaulting to a raw block when never synced.
func (p *Pipeline) BurstsFor(addr uint64) (int, bool) {
	if info, ok := p.blocks[addr]; ok {
		return int(info.Bursts), info.Compressed
	}
	return p.mag.MaxBursts(), false
}

// Stats returns the accumulated statistics.
func (p *Pipeline) Stats() Stats { return p.stats }

// MAG returns the pipeline's granularity.
func (p *Pipeline) MAG() compress.MAG { return p.mag }
