package pipeline

import (
	"bytes"
	"testing"

	"repro/internal/compress"
	"repro/internal/compress/e2mc"
	"repro/internal/gpu/device"
	"repro/internal/slc"
)

// compressOnly hides the Syncer and SizeOnly fast paths of a codec, forcing
// the pipeline through the materialising Compress/Decompress path. The
// embedded interface promotes only the three compress.Codec methods.
type compressOnly struct{ compress.Codec }

// newSyncFixture builds a device with one exact and one approximable region,
// both filled, plus a pipeline running SLC over E2MC.
func newSyncFixture(t *testing.T, slow bool) (*Pipeline, device.Region, device.Region) {
	t.Helper()
	dev := device.New()
	rex, _ := dev.Malloc("exact", 32*1024, false, 0)
	rap, _ := dev.Malloc("approx", 32*1024, true, 16)
	fill(t, dev, rex, 7)
	fill(t, dev, rap, 8)
	tab := trainTable(t, dev, rap)
	lossy, err := slc.New(tab, slc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var lossless compress.Codec = e2mc.New(tab)
	var lossyC compress.Codec = lossy
	if slow {
		lossless = compressOnly{lossless}
		lossyC = compressOnly{lossyC}
	}
	p, err := New(dev, compress.MAG32, lossless, lossyC)
	if err != nil {
		t.Fatal(err)
	}
	return p, rex, rap
}

// TestSyncFastPathsMatchCompressPath pins the Syncer/SizeOnly fast paths to
// the materialising path: same statistics, same burst geometry, same device
// bytes after the lossy write-back.
func TestSyncFastPathsMatchCompressPath(t *testing.T) {
	fast, fex, fap := newSyncFixture(t, false)
	slow, sex, sap := newSyncFixture(t, true)
	for round := 0; round < 3; round++ {
		fast.Sync(fex)
		fast.Sync(fap)
		slow.Sync(sex)
		slow.Sync(sap)
	}
	fs, ss := fast.Stats(), slow.Stats()
	if fs.Blocks != ss.Blocks || fs.LossyBlocks != ss.LossyBlocks ||
		fs.Uncompressed != ss.Uncompressed || fs.RawBits != ss.RawBits ||
		fs.EffBits != ss.EffBits {
		t.Errorf("stats diverge: fast %+v slow %+v", fs, ss)
	}
	for i := range fs.AboveMAG {
		if fs.AboveMAG[i] != ss.AboveMAG[i] {
			t.Errorf("AboveMAG[%d]: fast %d slow %d", i, fs.AboveMAG[i], ss.AboveMAG[i])
		}
	}
	for _, r := range []struct{ f, s device.Region }{{fex, sex}, {fap, sap}} {
		fb, _ := fast.dev.Bytes(r.f.Addr, r.f.Size)
		sb, _ := slow.dev.Bytes(r.s.Addr, r.s.Size)
		if !bytes.Equal(fb, sb) {
			t.Errorf("region %s: device bytes diverge after sync", r.f.Name)
		}
		for addr := r.f.Addr; addr < r.f.End(); addr += compress.BlockSize {
			fbur, fcomp := fast.BurstsFor(addr)
			sbur, scomp := slow.BurstsFor(addr)
			if fbur != sbur || fcomp != scomp {
				t.Errorf("block %#x: fast (%d,%v) slow (%d,%v)", addr, fbur, fcomp, sbur, scomp)
			}
		}
	}
}

// TestSyncSerialAllocFree pins the per-block serial Sync steady state to zero
// allocations, for both the lossless (SizeOnly) and the SLC (Syncer) region.
func TestSyncSerialAllocFree(t *testing.T) {
	p, rex, rap := newSyncFixture(t, false)
	// Warm up: first syncs size the block map and apply the initial lossy
	// write-back; afterwards re-syncing the (already approximated) image is
	// the steady state.
	for i := 0; i < 2; i++ {
		p.Sync(rex)
		p.Sync(rap)
	}
	for _, tc := range []struct {
		name string
		r    device.Region
	}{
		{"lossless region", rex},
		{"slc region", rap},
	} {
		allocs := testing.AllocsPerRun(10, func() { p.Sync(tc.r) })
		if allocs != 0 {
			blocks := tc.r.Size / compress.BlockSize
			t.Errorf("%s: Sync steady state allocates %.1f objects per call (%d blocks), want 0",
				tc.name, allocs, blocks)
		}
	}
}
