package pipeline

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/compress/e2mc"
	"repro/internal/gpu/device"
	"repro/internal/slc"
)

// fill writes float data with mixed precision — mostly tick-quantised values
// with occasional full-precision ones — so compressed sizes scatter around
// the burst boundaries, the regime SLC targets.
func fill(t *testing.T, dev *device.Device, r device.Region, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b, err := dev.Bytes(r.Addr, r.Size)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+4 <= len(b); i += 4 {
		var v float32
		if rng.Intn(5) == 0 {
			v = 2 + rng.Float32()*2 // full precision
		} else {
			v = 2 + float32(rng.Intn(512))/256 // tick quantised
		}
		binary.LittleEndian.PutUint32(b[i:], math.Float32bits(v))
	}
}

func trainTable(t *testing.T, dev *device.Device, r device.Region) *e2mc.Table {
	t.Helper()
	tr := e2mc.NewTrainer()
	r.BlockAddrs(func(addr uint64) {
		block, err := dev.Block(addr)
		if err != nil {
			t.Fatal(err)
		}
		tr.Sample(block)
	})
	tab, err := tr.Build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestUncompressedBaseline(t *testing.T) {
	dev := device.New()
	r, _ := dev.Malloc("x", 4096, true, 16)
	p, err := New(dev, compress.MAG32, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Sync(r)
	b, comp := p.BurstsFor(r.Addr)
	if b != 4 || comp {
		t.Errorf("uncompressed block: bursts=%d compressed=%v", b, comp)
	}
}

func TestUnknownBlockDefaultsRaw(t *testing.T) {
	dev := device.New()
	p, _ := New(dev, compress.MAG32, nil, nil)
	if b, comp := p.BurstsFor(0xDEAD00); b != 4 || comp {
		t.Errorf("unknown block: bursts=%d compressed=%v", b, comp)
	}
}

func TestLosslessSyncDoesNotMutate(t *testing.T) {
	dev := device.New()
	r, _ := dev.Malloc("x", 64*1024, true, 16)
	fill(t, dev, r, 1)
	before := make([]byte, r.Size)
	bs, _ := dev.Bytes(r.Addr, r.Size)
	copy(before, bs)

	tab := trainTable(t, dev, r)
	p, err := New(dev, compress.MAG32, e2mc.New(tab), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Sync(r)
	after, _ := dev.Bytes(r.Addr, r.Size)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("lossless sync mutated byte %d", i)
		}
	}
	if p.Stats().LossyBlocks != 0 {
		t.Errorf("lossless pipeline reported %d lossy blocks", p.Stats().LossyBlocks)
	}
	if got := p.Stats().Blocks; got != int64(r.Blocks()) {
		t.Errorf("synced %d blocks, want %d", got, r.Blocks())
	}
}

func TestSLCSyncMutatesOnlyApproxRegions(t *testing.T) {
	dev := device.New()
	ra, _ := dev.Malloc("approx", 64*1024, true, 16)
	re, _ := dev.Malloc("exact", 64*1024, false, 0)
	fill(t, dev, ra, 2)
	fill(t, dev, re, 3)
	tab := trainTable(t, dev, ra)

	lossy, err := slc.New(tab, slc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(dev, compress.MAG32, e2mc.New(tab), lossy)
	if err != nil {
		t.Fatal(err)
	}

	exactBefore := make([]byte, re.Size)
	eb, _ := dev.Bytes(re.Addr, re.Size)
	copy(exactBefore, eb)

	p.Sync(ra)
	p.Sync(re)

	eafter, _ := dev.Bytes(re.Addr, re.Size)
	for i := range exactBefore {
		if exactBefore[i] != eafter[i] {
			t.Fatalf("exact region mutated at byte %d", i)
		}
	}
	if p.Stats().LossyBlocks == 0 {
		t.Error("no lossy blocks on approximable quantised data; expected some")
	}
}

func TestBurstsReflectCompression(t *testing.T) {
	dev := device.New()
	r, _ := dev.Malloc("x", 64*1024, true, 16)
	fill(t, dev, r, 4)
	tab := trainTable(t, dev, r)
	p, _ := New(dev, compress.MAG32, e2mc.New(tab), nil)
	p.Sync(r)

	sawCompressed := false
	r.BlockAddrs(func(addr uint64) {
		b, comp := p.BurstsFor(addr)
		if b < 1 || b > 4 {
			t.Fatalf("bursts %d out of range", b)
		}
		if comp && b < 4 {
			sawCompressed = true
		}
	})
	if !sawCompressed {
		t.Error("no block compressed below 4 bursts")
	}
	st := p.Stats()
	if st.RawRatio() <= 1.0 {
		t.Errorf("raw ratio %.2f not > 1 on quantised data", st.RawRatio())
	}
	if st.EffectiveRatio() > st.RawRatio() {
		t.Errorf("effective ratio %.2f exceeds raw %.2f", st.EffectiveRatio(), st.RawRatio())
	}
}

func TestAboveMAGHistogram(t *testing.T) {
	dev := device.New()
	r, _ := dev.Malloc("x", 64*1024, true, 16)
	fill(t, dev, r, 5)
	tab := trainTable(t, dev, r)
	p, _ := New(dev, compress.MAG32, e2mc.New(tab), nil)
	p.Sync(r)
	st := p.Stats()
	var total int64
	for _, c := range st.AboveMAG {
		total += c
	}
	if total != st.Blocks {
		t.Errorf("histogram mass %d ≠ blocks %d", total, st.Blocks)
	}
	if len(st.AboveMAG) != 33 {
		t.Errorf("MAG32 histogram has %d bins, want 33", len(st.AboveMAG))
	}
}

func TestResyncUpdatesBursts(t *testing.T) {
	dev := device.New()
	r, _ := dev.Malloc("x", 4096, true, 16)
	fill(t, dev, r, 6)
	tab := trainTable(t, dev, r)
	p, _ := New(dev, compress.MAG32, e2mc.New(tab), nil)
	p.Sync(r)
	b1, _ := p.BurstsFor(r.Addr)

	// Overwrite with zeros: recompression must shrink the block.
	bs, _ := dev.Bytes(r.Addr, r.Size)
	for i := range bs {
		bs[i] = 0
	}
	p.Sync(r)
	b2, _ := p.BurstsFor(r.Addr)
	if b2 > b1 || b2 != 1 {
		t.Errorf("zeroed block bursts %d (was %d), want 1", b2, b1)
	}
}

// buildSLCPipeline constructs a device with one approximable region of
// quantised floats and an SLC pipeline over it.
func buildSLCPipeline(t *testing.T, seed int64) (*device.Device, device.Region, *Pipeline) {
	t.Helper()
	dev := device.New()
	r, _ := dev.Malloc("x", 256*1024, true, 16)
	fill(t, dev, r, seed)
	tab := trainTable(t, dev, r)
	lossy, err := slc.New(tab, slc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(dev, compress.MAG32, e2mc.New(tab), lossy)
	if err != nil {
		t.Fatal(err)
	}
	return dev, r, p
}

// TestParallelSyncMatchesSerial pins the contract of SetWorkers: any worker
// count produces bitwise-identical state — statistics, per-block geometry
// and the lossily mutated device image — including across repeated Syncs,
// where the §V-A write-back feedback loop makes later decisions depend on
// earlier mutations.
func TestParallelSyncMatchesSerial(t *testing.T) {
	devS, rS, ps := buildSLCPipeline(t, 21)
	for _, workers := range []int{2, 3, 8, 64} {
		devP, rP, pp := buildSLCPipeline(t, 21)
		pp.SetWorkers(workers)
		for round := 0; round < 3; round++ {
			if workers == 2 { // advance the serial reference once per round
				ps.Sync(rS)
			}
			pp.Sync(rP)
		}
		_ = devS
		if got, want := pp.Stats(), ps.Stats(); got.Blocks != want.Blocks ||
			got.LossyBlocks != want.LossyBlocks ||
			got.Uncompressed != want.Uncompressed ||
			got.RawBits != want.RawBits || got.EffBits != want.EffBits {
			t.Fatalf("workers=%d stats diverge: %+v vs serial %+v", workers, got, want)
		}
		for i, v := range pp.Stats().AboveMAG {
			if v != ps.Stats().AboveMAG[i] {
				t.Fatalf("workers=%d AboveMAG[%d] = %d, serial %d", workers, i, v, ps.Stats().AboveMAG[i])
			}
		}
		rS.BlockAddrs(func(addr uint64) {
			bs, cs := ps.BurstsFor(addr)
			bp, cp := pp.BurstsFor(addr)
			if bs != bp || cs != cp {
				t.Fatalf("workers=%d block %#x: parallel (%d,%v) vs serial (%d,%v)",
					workers, addr, bp, cp, bs, cs)
			}
		})
		ms, _ := devS.Bytes(rS.Addr, rS.Size)
		mp, _ := devP.Bytes(rP.Addr, rP.Size)
		for i := range ms {
			if ms[i] != mp[i] {
				t.Fatalf("workers=%d device memory diverges at byte %d", workers, i)
			}
		}
	}
}

// TestParallelSyncSmallRegion exercises the degenerate fan-outs: more
// workers than blocks, and a single-block region.
func TestParallelSyncSmallRegion(t *testing.T) {
	dev := device.New()
	r, _ := dev.Malloc("x", compress.BlockSize, true, 16)
	fill(t, dev, r, 9)
	tab := trainTable(t, dev, r)
	p, err := New(dev, compress.MAG32, e2mc.New(tab), nil)
	if err != nil {
		t.Fatal(err)
	}
	p.SetWorkers(16)
	p.Sync(r)
	if got := p.Stats().Blocks; got != 1 {
		t.Errorf("synced %d blocks, want 1", got)
	}
}

func TestInvalidMAG(t *testing.T) {
	if _, err := New(device.New(), 24, nil, nil); err == nil {
		t.Error("invalid MAG accepted")
	}
}

func TestPerRegionThresholds(t *testing.T) {
	dev := device.New()
	// Two approximable regions with different programmer thresholds: one
	// conservative (4 B) and one permissive (32 B).
	tight, _ := dev.Malloc("tight", 64*1024, true, 4)
	loose, _ := dev.Malloc("loose", 64*1024, true, 32)
	fill(t, dev, tight, 11)
	fill(t, dev, loose, 11) // identical data → decisions differ only by threshold

	tr := e2mc.NewTrainer()
	for _, r := range []device.Region{tight, loose} {
		r.BlockAddrs(func(addr uint64) {
			b, _ := dev.Block(addr)
			tr.Sample(b)
		})
	}
	tab, err := tr.Build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	mkLossy := func(bits int) (compress.Codec, error) {
		return slc.New(tab, slc.Config{MAG: compress.MAG32, ThresholdBits: bits, Variant: slc.OPT})
	}
	def, err := mkLossy(16 * 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(dev, compress.MAG32, e2mc.New(tab), def)
	if err != nil {
		t.Fatal(err)
	}
	p.SetLossyFactory(mkLossy)

	p.Sync(tight)
	lossyTight := p.Stats().LossyBlocks
	p.Sync(loose)
	lossyLoose := p.Stats().LossyBlocks - lossyTight

	if lossyTight >= lossyLoose {
		t.Errorf("tight threshold produced %d lossy blocks, loose %d; want tight < loose",
			lossyTight, lossyLoose)
	}
	if lossyLoose == 0 {
		t.Error("loose threshold produced no lossy blocks")
	}
}
