// Package cliio provides the error-checked output plumbing shared by the
// cmd binaries. A report silently truncated by a full disk used to exit 0
// (`-out` writes went through unchecked fmt.Fprintf); Writer remembers the
// first write error so the binary can fail loudly at the end of the run.
package cliio

import "io"

// Writer forwards writes to W and latches the first error. After a write
// fails, subsequent writes are dropped and return the same error, so a
// rendering path built on fmt.Fprintf (which discards errors) still leaves
// the failure observable via Err.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write implements io.Writer.
func (e *Writer) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

// Err returns the first write error, if any.
func (e *Writer) Err() error { return e.err }
