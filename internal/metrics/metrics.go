// Package metrics implements the application-specific error metrics of the
// paper's Table III: mean relative error (MRE) for numeric outputs,
// normalised root-mean-square error (NRMSE) for signal/image outputs, image
// diff (NRMSE over pixels), and miss rate for boolean outputs.
package metrics

import (
	"fmt"
	"math"
)

// Metric identifies an error metric.
type Metric int

const (
	// MRE is the mean relative error |approx−exact| / |exact|.
	MRE Metric = iota
	// NRMSE is RMS error normalised by the exact output's value range.
	NRMSE
	// ImageDiff is NRMSE over pixel intensities (the paper's "Image diff.").
	ImageDiff
	// MissRate is the fraction of boolean decisions that flipped.
	MissRate
)

// String implements fmt.Stringer using the paper's labels.
func (m Metric) String() string {
	switch m {
	case MRE:
		return "MRE"
	case NRMSE:
		return "NRMSE"
	case ImageDiff:
		return "Image diff."
	case MissRate:
		return "Miss rate"
	}
	return fmt.Sprintf("Metric(%d)", int(m))
}

// relEps guards the relative error of near-zero exact outputs, the standard
// practice in approximate-computing evaluations.
const relEps = 1e-6

// Eval computes the metric over paired outputs and returns the error as a
// fraction (multiply by 100 for the paper's percentages).
func Eval(m Metric, exact, approx []float64) (float64, error) {
	if len(exact) != len(approx) {
		return 0, fmt.Errorf("metrics: length mismatch %d vs %d", len(exact), len(approx))
	}
	if len(exact) == 0 {
		return 0, fmt.Errorf("metrics: empty outputs")
	}
	switch m {
	case MRE:
		return mre(exact, approx), nil
	case NRMSE, ImageDiff:
		return nrmse(exact, approx), nil
	case MissRate:
		return missRate(exact, approx), nil
	}
	return 0, fmt.Errorf("metrics: unknown metric %d", m)
}

// Per-element errors are capped at full scale (100% relative error; one
// value range for RMS terms), the AxBench convention: an approximate output
// that comes back NaN, infinite or wildly out of range counts as a
// completely wrong element rather than poisoning the aggregate.

func mre(exact, approx []float64) float64 {
	sum := 0.0
	for i := range exact {
		den := math.Abs(exact[i])
		if den < relEps {
			den = relEps
		}
		rel := math.Abs(approx[i]-exact[i]) / den
		if math.IsNaN(rel) || rel > 1 {
			rel = 1
		}
		sum += rel
	}
	return sum / float64(len(exact))
}

func nrmse(exact, approx []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range exact {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	rng := hi - lo
	if rng < relEps {
		rng = relEps
	}
	mse := 0.0
	for i := range exact {
		d := approx[i] - exact[i]
		if math.IsNaN(d) || math.Abs(d) > rng {
			d = rng // full-scale error
		}
		mse += d * d
	}
	mse /= float64(len(exact))
	return math.Sqrt(mse) / rng
}

func missRate(exact, approx []float64) float64 {
	miss := 0
	for i := range exact {
		if (exact[i] != 0) != (approx[i] != 0) {
			miss++
		}
	}
	return float64(miss) / float64(len(exact))
}
