package metrics

import (
	"math"
	"testing"
)

func TestIdenticalOutputsZeroError(t *testing.T) {
	x := []float64{1, 2, 3, -4, 0.5}
	for _, m := range []Metric{MRE, NRMSE, ImageDiff, MissRate} {
		got, err := Eval(m, x, x)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got != 0 {
			t.Errorf("%v on identical outputs = %v", m, got)
		}
	}
}

func TestMRE(t *testing.T) {
	exact := []float64{10, 20}
	approx := []float64{11, 18} // rel errors 0.1 and 0.1
	got, _ := Eval(MRE, exact, approx)
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MRE = %v, want 0.1", got)
	}
}

func TestMREZeroGuard(t *testing.T) {
	got, _ := Eval(MRE, []float64{0}, []float64{1e-7})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("MRE with zero exact = %v", got)
	}
}

func TestNRMSE(t *testing.T) {
	exact := []float64{0, 10}            // range 10
	approx := []float64{1, 9}            // errors ±1, RMS = 1
	got, _ := Eval(NRMSE, exact, approx) // 1/10
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("NRMSE = %v, want 0.1", got)
	}
}

func TestMissRate(t *testing.T) {
	exact := []float64{1, 0, 1, 0}
	approx := []float64{1, 1, 0, 0} // two flips
	got, _ := Eval(MissRate, exact, approx)
	if got != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", got)
	}
}

func TestEvalValidation(t *testing.T) {
	if _, err := Eval(MRE, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Eval(MRE, nil, nil); err == nil {
		t.Error("empty outputs accepted")
	}
	if _, err := Eval(Metric(99), []float64{1}, []float64{1}); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestMetricString(t *testing.T) {
	if MRE.String() != "MRE" || MissRate.String() != "Miss rate" {
		t.Error("metric labels wrong")
	}
	if ImageDiff.String() != "Image diff." || NRMSE.String() != "NRMSE" {
		t.Error("metric labels wrong")
	}
}
