// Package storeflag wires the shared -store / -store-clear command-line
// flags of the cmd binaries to a content-addressed result store attached to
// an experiments.Runner, so all three tools expose identical persistence
// behaviour.
package storeflag

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/resultstore"
)

// Flags holds the registered flag values.
type Flags struct {
	dir   *string
	clear *bool
}

// Register adds -store and -store-clear to the default flag set.
func Register() *Flags { return RegisterOn(flag.CommandLine) }

// RegisterOn adds -store and -store-clear to fs, for binaries built on
// their own flag.FlagSet (the testable `run(args, ...)` pattern).
func RegisterOn(fs *flag.FlagSet) *Flags {
	return &Flags{
		dir: fs.String("store", "",
			"persist memoised results in this directory (content-addressed; empty = off)"),
		clear: fs.Bool("store-clear", false,
			"empty the -store directory before running"),
	}
}

// Open opens the store named by -store (if any) and clears it when
// -store-clear was given. It returns nil when persistence is off.
func (f *Flags) Open(opts resultstore.Options) (*resultstore.Store, error) {
	if *f.dir == "" {
		if *f.clear {
			return nil, fmt.Errorf("-store-clear needs -store")
		}
		return nil, nil
	}
	s, err := resultstore.Open(*f.dir, opts)
	if err != nil {
		return nil, err
	}
	if *f.clear {
		if err := s.Clear(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Attach opens the store (see Open) and attaches it to the runner. It
// returns the store (nil when persistence is off) for stats reporting.
func (f *Flags) Attach(r *experiments.Runner) (*resultstore.Store, error) {
	s, err := f.Open(resultstore.Options{})
	if err != nil || s == nil {
		return nil, err
	}
	r.Store = s
	return s, nil
}
