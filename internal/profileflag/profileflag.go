// Package profileflag wires the shared -cpuprofile / -memprofile
// command-line flags of the cmd binaries to runtime/pprof, so every tool
// exposes the same profiling workflow (see the README's "Profiling"
// section):
//
//	slcbench -fig 2 -cpuprofile cpu.out
//	go tool pprof cpu.out
package profileflag

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the registered flag values and the open CPU-profile file.
type Flags struct {
	cpu     *string
	mem     *string
	cpuFile *os.File
}

// Register adds -cpuprofile and -memprofile to the default flag set.
func Register() *Flags { return RegisterOn(flag.CommandLine) }

// RegisterOn adds -cpuprofile and -memprofile to fs, for binaries built on
// their own flag.FlagSet (the testable `run(args, ...)` pattern).
func RegisterOn(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpu: fs.String("cpuprofile", "",
			"write a CPU profile to this file (view with `go tool pprof`)"),
		mem: fs.String("memprofile", "",
			"write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given. Callers must
// arrange for Stop to run before exit, or the profile is truncated.
func (f *Flags) Start() error {
	if *f.cpu == "" {
		return nil
	}
	file, err := os.Create(*f.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return err
	}
	f.cpuFile = file
	return nil
}

// Stop finishes the CPU profile (if one is running) and writes the heap
// profile named by -memprofile. The heap snapshot follows a forced GC so it
// reflects live objects, not garbage awaiting collection.
func (f *Flags) Stop() error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil {
			return err
		}
		f.cpuFile = nil
	}
	if *f.mem == "" {
		return nil
	}
	file, err := os.Create(*f.mem)
	if err != nil {
		return err
	}
	defer file.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(file)
}
