package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workloads"
)

const simBaselinePath = "testdata/bench_sim_baseline.json"

// TestSimBenchMeasure exercises the measurement harness on one workload: the
// replay loop must converge, the deterministic counts must be populated, and
// the derived rates must be consistent. (Timing magnitudes are machine-
// dependent and not asserted.)
func TestSimBenchMeasure(t *testing.T) {
	r := NewRunner()
	w := workloads.Registry()[0]
	b, err := MeasureSimBench(r, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Workload != w.Info().Name {
		t.Errorf("workload = %q, want %q", b.Workload, w.Info().Name)
	}
	if b.Events <= 0 || b.Accesses <= 0 || b.Warps <= 0 || b.Replays <= 0 {
		t.Errorf("counts not populated: %+v", b)
	}
	// Each access costs several events (issue, memory path, response).
	if b.Events < int64(b.Accesses) {
		t.Errorf("Events %d < Accesses %d: event counter undercounts", b.Events, b.Accesses)
	}
	if b.NsPerEvent <= 0 || b.EventsPerSec <= 0 || b.WallMs <= 0 {
		t.Errorf("rates not populated: %+v", b)
	}
}

// TestCompareSimBench pins the regression comparator: a >25% ns/event
// slowdown fails, noise inside the limit passes, a changed deterministic
// event count fails (the baseline must be regenerated), and workloads
// missing from either side are ignored.
func TestCompareSimBench(t *testing.T) {
	base := []SimBench{
		{Workload: "BP", Events: 1000, NsPerEvent: 100},
		{Workload: "BS", Events: 2000, NsPerEvent: 50},
		{Workload: "OLD", Events: 10, NsPerEvent: 10},
	}
	cur := []SimBench{
		{Workload: "BP", Events: 1000, NsPerEvent: 120},  // +20%: inside the limit
		{Workload: "BS", Events: 2000, NsPerEvent: 40},   // faster: fine
		{Workload: "NEW", Events: 5, NsPerEvent: 999999}, // not in baseline: ignored
	}
	if msgs := CompareSimBench(base, cur); len(msgs) != 0 {
		t.Errorf("expected clean comparison, got %v", msgs)
	}
	cur[0].NsPerEvent = 130 // +30%: over the 1.25x limit
	msgs := CompareSimBench(base, cur)
	if len(msgs) != 1 {
		t.Fatalf("expected 1 regression, got %v", msgs)
	}
	cur[1].Events = 2001 // event stream drifted without -update
	if msgs := CompareSimBench(base, cur); len(msgs) != 2 {
		t.Fatalf("expected 2 regressions, got %v", msgs)
	}
}

// TestSimBenchRegression is CI's benchmark-regression smoke step: measure
// every workload and compare ns/event against the committed baseline
// fixture. It is opt-in via SLC_SIMBENCH_REGRESSION=1 because wall-clock
// thresholds do not belong in the default (possibly loaded, possibly
// race-instrumented) test run. Regenerate the baseline on the reference
// machine with:
//
//	SLC_SIMBENCH_REGRESSION=1 go test ./internal/experiments -run SimBenchRegression -update
func TestSimBenchRegression(t *testing.T) {
	if os.Getenv("SLC_SIMBENCH_REGRESSION") == "" && !*update {
		t.Skip("set SLC_SIMBENCH_REGRESSION=1 to run the throughput regression check")
	}
	r := NewRunner()
	cur, err := CollectSimBenches(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(simBaselinePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(simBaselinePath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", simBaselinePath)
		return
	}
	data, err := os.ReadFile(simBaselinePath)
	if err != nil {
		t.Fatalf("no baseline fixture (regenerate with -update): %v", err)
	}
	var base []SimBench
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	for _, msg := range CompareSimBench(base, cur) {
		t.Errorf("regression: %s", msg)
	}
	for _, b := range cur {
		t.Logf("%-4s %8d events  %6.1f ns/event  %12.0f events/s",
			b.Workload, b.Events, b.NsPerEvent, b.EventsPerSec)
	}
}
