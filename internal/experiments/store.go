package experiments

import (
	"repro/internal/resultstore"
	"repro/internal/workloads"
)

// Disk persistence of memoised Runner computations. When Runner.Store is
// set, every singleflight slot resolves memory hit → disk hit → compute:
// the first request for a key consults the store before computing, and a
// computed value is written back so later processes (and CI runs sharing a
// cached store directory) skip the work entirely. Keys are content
// addresses over everything that determines the value — the workload's
// generated-input fingerprint, the full configuration, the derived
// simulator configuration (including Workers, per the store's
// "any knob in the key" rule) — plus the store's schema version and code
// fingerprint (resultstore.NewKey), so any change recomputes instead of
// serving stale records.

// Store record kinds. The trained-table kind and material moved to
// internal/serving with the builder cache (byte-identical key material, so
// existing stores keep hitting).
const (
	kindGolden = "golden"
	kindCell   = "cell"
	kindComp   = "comp"
)

// goldenMaterial keys a workload's exact outputs.
func goldenMaterial(w workloads.Workload) resultstore.Material {
	return resultstore.Material{"workload": workloads.Fingerprint(w)}
}

// cellMaterial keys one full evaluation cell: workload content, the
// complete Config and the derived simulator configuration the cell runs
// under (so MAG, threshold, codec name, latencies and worker counts each
// change the key).
func (r *Runner) cellMaterial(w workloads.Workload, cfg Config) resultstore.Material {
	sc := SimConfig(cfg)
	sc.Workers = r.SimWorkers
	return resultstore.Material{
		"workload": workloads.Fingerprint(w),
		"config":   cfg,
		"sim":      sc,
	}
}

// compMaterial keys a compression-only cell (no timing simulation).
func compMaterial(w workloads.Workload, cfg Config) resultstore.Material {
	return resultstore.Material{
		"workload": workloads.Fingerprint(w),
		"config":   cfg,
	}
}

// storeKey derives a key, reporting false when no store is attached (or the
// material fails to encode, which is a programming error surfaced via
// progress rather than a run failure).
func (r *Runner) storeKey(kind string, m resultstore.Material) (resultstore.Key, bool) {
	if r.Store == nil {
		return resultstore.Key{}, false
	}
	key, err := r.Store.Key(kind, m)
	if err != nil {
		r.progress("store: keying %s failed: %v", kind, err)
		return resultstore.Key{}, false
	}
	return key, true
}

// storePut writes a computed value back to the store, best-effort: a full
// disk or unwritable directory must not fail the run that just computed a
// perfectly good result.
func (r *Runner) storePut(put func() error, kind string) {
	if err := put(); err != nil {
		r.progress("store: writing %s record failed: %v", kind, err)
	}
}

// StoreStats returns the attached store's traffic counters, or nil when the
// runner computes everything in memory. slcbench surfaces it in -json
// output, which is how "a warm run performed zero recomputations" is
// observable.
func (r *Runner) StoreStats() *resultstore.Stats {
	if r.Store == nil {
		return nil
	}
	st := r.Store.Stats()
	return &st
}
