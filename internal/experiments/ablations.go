package experiments

import (
	"fmt"
	"strings"

	"repro/internal/compress"
	"repro/internal/gpu/sim"
	"repro/internal/slc"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Ablations exercises the design choices DESIGN.md calls out, beyond the
// paper's own figures: the lossy threshold, the TSLC-OPT extra tree nodes,
// the prediction policy and the metadata cache size.
type Ablations struct {
	// Threshold sweep (GM over all benchmarks at MAG 32B).
	Thresholds  []int // bytes
	GMSpeedup   []float64
	GMErrorPct  []float64
	GMBandwidth []float64

	// Extra-node ablation on DCT (PRED tree vs OPT tree, same prediction).
	ExtraNodesErrPct  [2]float64 // [without, with]
	ExtraNodesSpeedup [2]float64
	PredictionErrPct  [2]float64 // [SIMP zeros, PRED value-similarity] on NN
	MDCSlowdownTiny   float64    // 16-line MDC vs default, NN
	MDCMissesTiny     int
	MDCMissesDefault  int
}

// RunAblations executes the sweeps. It reuses the runner's memoised cells
// where possible; the threshold sweep covers all nine benchmarks.
func RunAblations(r *Runner) (Ablations, error) {
	a := Ablations{Thresholds: []int{4, 8, 16, 24, 32}}

	for _, tb := range a.Thresholds {
		var sp, er, bw []float64
		for _, w := range workloads.Registry() {
			base, err := r.Run(w, E2MCConfig(compress.MAG32))
			if err != nil {
				return Ablations{}, err
			}
			res, err := r.Run(w, TSLCConfig(slc.OPT, compress.MAG32, tb*8))
			if err != nil {
				return Ablations{}, err
			}
			sp = append(sp, base.Sim.TimeNs/res.Sim.TimeNs)
			er = append(er, res.ErrorFrac*100)
			bw = append(bw, float64(res.Sim.DramBytes)/float64(base.Sim.DramBytes))
		}
		a.GMSpeedup = append(a.GMSpeedup, stats.Geomean(sp))
		a.GMErrorPct = append(a.GMErrorPct, stats.Geomean(er))
		a.GMBandwidth = append(a.GMBandwidth, stats.Geomean(bw))
	}

	dct, err := workloads.ByName("DCT")
	if err != nil {
		return Ablations{}, err
	}
	base, err := r.Run(dct, E2MCConfig(compress.MAG32))
	if err != nil {
		return Ablations{}, err
	}
	pred, err := r.Run(dct, TSLCConfig(slc.PRED, compress.MAG32, DefaultThresholdBits))
	if err != nil {
		return Ablations{}, err
	}
	opt, err := r.Run(dct, TSLCConfig(slc.OPT, compress.MAG32, DefaultThresholdBits))
	if err != nil {
		return Ablations{}, err
	}
	a.ExtraNodesErrPct = [2]float64{pred.ErrorFrac * 100, opt.ErrorFrac * 100}
	a.ExtraNodesSpeedup = [2]float64{
		base.Sim.TimeNs / pred.Sim.TimeNs,
		base.Sim.TimeNs / opt.Sim.TimeNs,
	}

	nn, err := workloads.ByName("NN")
	if err != nil {
		return Ablations{}, err
	}
	simp, err := r.Run(nn, TSLCConfig(slc.SIMP, compress.MAG32, DefaultThresholdBits))
	if err != nil {
		return Ablations{}, err
	}
	predNN, err := r.Run(nn, TSLCConfig(slc.PRED, compress.MAG32, DefaultThresholdBits))
	if err != nil {
		return Ablations{}, err
	}
	a.PredictionErrPct = [2]float64{simp.ErrorFrac * 100, predNN.ErrorFrac * 100}

	cfg := TSLCConfig(slc.OPT, compress.MAG32, DefaultThresholdBits)
	full, err := RerunTiming(r, nn, cfg, nil)
	if err != nil {
		return Ablations{}, err
	}
	tiny, err := RerunTiming(r, nn, cfg, func(c *sim.Config) { c.MC.MDCLines = 16 })
	if err != nil {
		return Ablations{}, err
	}
	a.MDCSlowdownTiny = tiny.TimeNs / full.TimeNs
	a.MDCMissesTiny = tiny.MC.MDCMisses
	a.MDCMissesDefault = full.MC.MDCMisses
	return a, nil
}

// String renders the ablation study.
func (a Ablations) String() string {
	var b strings.Builder
	b.WriteString("Ablations\n")
	b.WriteString("---------\n")
	b.WriteString("Lossy threshold sweep (TSLC-OPT, MAG 32B, GM over 9 benchmarks):\n")
	fmt.Fprintf(&b, "  %-10s %10s %10s %12s\n", "threshold", "speedup", "error[%]", "bandwidth")
	for i, tb := range a.Thresholds {
		fmt.Fprintf(&b, "  %8dB %10.3f %10.3f %12.3f\n",
			tb, a.GMSpeedup[i], a.GMErrorPct[i], a.GMBandwidth[i])
	}
	fmt.Fprintf(&b, "\nTSLC-OPT extra tree nodes (DCT): error %.3f%% → %.3f%%, speedup %.3f → %.3f\n",
		a.ExtraNodesErrPct[0], a.ExtraNodesErrPct[1],
		a.ExtraNodesSpeedup[0], a.ExtraNodesSpeedup[1])
	fmt.Fprintf(&b, "Prediction policy (NN): zeros %.2f%% error → value-similarity %.2f%%\n",
		a.PredictionErrPct[0], a.PredictionErrPct[1])
	fmt.Fprintf(&b, "MDC sized 16 lines (NN): %.3f× slowdown, %d misses (default: %d)\n",
		a.MDCSlowdownTiny, a.MDCMissesTiny, a.MDCMissesDefault)
	return b.String()
}
