package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/compress"
	"repro/internal/gpu/sim"
	"repro/internal/slc"
	"repro/internal/workloads"
)

// The full evaluation matrix takes minutes; these tests exercise the runner
// and harness logic on single cells and assert the directional properties
// the paper's figures rest on. `go test -short` skips the heavier ones.

func tpWorkload(t *testing.T) workloads.Workload {
	t.Helper()
	w, err := workloads.ByName("TP")
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunnerMemoises(t *testing.T) {
	if testing.Short() {
		t.Skip("runner integration in -short mode")
	}
	r := NewRunner()
	runs := 0
	r.Progress = func(s string) {
		if strings.HasPrefix(s, "run:") {
			runs++
		}
	}
	w := tpWorkload(t)
	cfg := E2MCConfig(compress.MAG32)
	if _, err := r.Run(w, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(w, cfg); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Errorf("executed %d runs, want 1 (memoised)", runs)
	}
}

func TestGoldenHasZeroError(t *testing.T) {
	if testing.Short() {
		t.Skip("runner integration in -short mode")
	}
	r := NewRunner()
	w := tpWorkload(t)
	res, err := r.Run(w, BaselineConfig("raw", compress.MAG32))
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorFrac != 0 {
		t.Errorf("uncompressed run has error %v", res.ErrorFrac)
	}
}

func TestLosslessRunsHaveZeroError(t *testing.T) {
	if testing.Short() {
		t.Skip("runner integration in -short mode")
	}
	r := NewRunner()
	w := tpWorkload(t)
	for _, cfg := range []Config{
		BaselineConfig("bdi", compress.MAG32),
		E2MCConfig(compress.MAG32),
	} {
		res, err := r.Run(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.ErrorFrac != 0 {
			t.Errorf("%s: lossless run has error %v", cfg.Name, res.ErrorFrac)
		}
	}
}

func TestTSLCDirectionalProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("runner integration in -short mode")
	}
	r := NewRunner()
	w := tpWorkload(t)
	base, err := r.Run(w, E2MCConfig(compress.MAG32))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := r.Run(w, TSLCConfig(slc.OPT, compress.MAG32, DefaultThresholdBits))
	if err != nil {
		t.Fatal(err)
	}
	if opt.Sim.DramBytes >= base.Sim.DramBytes {
		t.Errorf("TSLC traffic %d ≥ E2MC %d", opt.Sim.DramBytes, base.Sim.DramBytes)
	}
	if opt.Sim.TimeNs >= base.Sim.TimeNs {
		t.Errorf("TSLC time %.0f ≥ E2MC %.0f", opt.Sim.TimeNs, base.Sim.TimeNs)
	}
	if opt.ErrorFrac <= 0 || opt.ErrorFrac > 0.10 {
		t.Errorf("TSLC error %.4f outside (0, 10%%]", opt.ErrorFrac)
	}
	if opt.Comp.EffectiveRatio() <= base.Comp.EffectiveRatio() {
		t.Errorf("TSLC effective CR %.2f not above E2MC %.2f",
			opt.Comp.EffectiveRatio(), base.Comp.EffectiveRatio())
	}
	if opt.Comp.LossyBlocks == 0 {
		t.Error("TSLC produced no lossy blocks")
	}
	// Conservation: the DRAM can only move bursts the trace requested (the
	// L2 filters; writebacks reuse the write accesses' burst counts) plus
	// metadata fetches.
	for _, res := range []RunResult{base, opt} {
		limit := res.Trace.Bursts + res.Sim.MC.MetaBursts
		if res.Sim.DramBursts > limit {
			t.Errorf("%s: DRAM moved %d bursts > trace+metadata %d",
				res.Config.Name, res.Sim.DramBursts, limit)
		}
	}
}

func TestSimConfigPerCodec(t *testing.T) {
	e := SimConfig(E2MCConfig(compress.MAG32))
	if e.MC.CompressCycles != 46 || e.MC.DecompressCycles != 20 {
		t.Errorf("E2MC latencies %d/%d", e.MC.CompressCycles, e.MC.DecompressCycles)
	}
	s := SimConfig(TSLCConfig(slc.OPT, compress.MAG32, 128))
	if s.MC.CompressCycles != 60 || s.MC.DecompressCycles != 20 {
		t.Errorf("TSLC latencies %d/%d", s.MC.CompressCycles, s.MC.DecompressCycles)
	}
	raw := SimConfig(BaselineConfig("raw", compress.MAG32))
	if raw.MC.CompressCycles != 0 || raw.MC.DecompressCycles != 0 {
		t.Errorf("raw latencies %d/%d", raw.MC.CompressCycles, raw.MC.DecompressCycles)
	}
	// MAG sensitivity keeps aggregate peak bandwidth constant.
	for _, mag := range []compress.MAG{compress.MAG16, compress.MAG32, compress.MAG64} {
		sc := SimConfig(E2MCConfig(mag))
		agg := float64(sc.MC.Controllers*sc.MC.ChannelsPerMC) * sc.MC.Dram.PeakBandwidthGBs(int(mag))
		if agg < 190 || agg > 195 {
			t.Errorf("MAG %s: peak bandwidth %.1f GB/s, want ≈192.4", mag, agg)
		}
	}
}

// TestRunAllMatchesSerial pins the RunAll contract: fanning cells across a
// worker pool yields results identical to serial Run calls, in input order.
func TestRunAllMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runner integration in -short mode")
	}
	w := tpWorkload(t)
	cells := []Cell{
		{w, E2MCConfig(compress.MAG32)},
		{w, TSLCConfig(slc.OPT, compress.MAG32, DefaultThresholdBits)},
		{w, TSLCConfig(slc.SIMP, compress.MAG32, DefaultThresholdBits)},
		{w, BaselineConfig("bdi", compress.MAG32)},
		{w, BaselineConfig("raw", compress.MAG32)},
		{w, E2MCConfig(compress.MAG32)}, // duplicate cell: memoised, not re-run
	}

	serial := NewRunner()
	want := make([]RunResult, len(cells))
	for i, c := range cells {
		res, err := serial.Run(c.Workload, c.Config)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	par := NewRunner()
	runs := 0
	par.Progress = func(s string) {
		if strings.HasPrefix(s, "run:") {
			runs++
		}
	}
	got, err := par.RunAll(cells, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cells) {
		t.Fatalf("RunAll returned %d results for %d cells", len(got), len(cells))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("cell %d (%s): parallel result differs from serial\nparallel: %+v\nserial:   %+v",
				i, cells[i].Config.Name, got[i], want[i])
		}
	}
	if runs != len(cells)-1 {
		t.Errorf("executed %d runs, want %d (duplicate cell must be memoised)", runs, len(cells)-1)
	}
}

// TestRunAllParallelSyncMatchesSerial layers both levels of parallelism:
// cell fan-out plus in-pipeline block fan-out must still reproduce the
// serial results bitwise.
func TestRunAllParallelSyncMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runner integration in -short mode")
	}
	w := tpWorkload(t)
	cells := []Cell{
		{w, E2MCConfig(compress.MAG32)},
		{w, TSLCConfig(slc.OPT, compress.MAG32, DefaultThresholdBits)},
	}
	serial := NewRunner()
	par := NewRunner()
	par.SyncWorkers = 4
	got, err := par.RunAll(cells, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		want, err := serial.Run(c.Workload, c.Config)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("cell %d (%s): parallel-sync result differs from serial", i, c.Config.Name)
		}
	}
}

// TestRunAllReportsCellErrors checks that a bad cell surfaces in the joined
// error while good cells still produce results.
func TestRunAllReportsCellErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("runner integration in -short mode")
	}
	w := tpWorkload(t)
	cells := []Cell{
		{w, Config{Name: "BOGUS@32B", Codec: "bogus", MAG: compress.MAG32}},
		{w, BaselineConfig("raw", compress.MAG32)},
	}
	r := NewRunner()
	got, err := r.RunAll(cells, 2)
	if err == nil {
		t.Fatal("RunAll with an unknown codec returned no error")
	}
	if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error does not name the bad codec: %v", err)
	}
	if got[1].Workload == "" {
		t.Error("good cell produced no result alongside the failing one")
	}
}

func TestNamedConfig(t *testing.T) {
	cfg, err := NamedConfig("tslc-opt", compress.MAG32, 16*8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "TSLC-OPT@32B/t16B" || cfg.Codec != "tslc-opt" || cfg.ThresholdBits != 128 {
		t.Errorf("NamedConfig lossy = %+v", cfg)
	}
	cfg, err = NamedConfig("bdi", compress.MAG64, 16*8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "BDI@64B" || cfg.ThresholdBits != 0 {
		t.Errorf("NamedConfig lossless = %+v", cfg)
	}
	if _, err := NamedConfig("nope", compress.MAG32, 0, 0); err == nil {
		t.Error("NamedConfig accepted an unknown codec")
	}
	cfg, err = NamedConfig("sz-lorenzo", compress.MAG32, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "SZ-LORENZO@32B/eb1e-03" || cfg.ErrorBound != DefaultErrorBound || cfg.ThresholdBits != 0 {
		t.Errorf("NamedConfig bounded default = %+v", cfg)
	}
	cfg, err = NamedConfig("sz-linear", compress.MAG32, 0, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "SZ-LINEAR@32B/eb1e-05" || cfg.ErrorBound != 1e-5 {
		t.Errorf("NamedConfig bounded explicit = %+v", cfg)
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := NamedConfig("sz-lorenzo", compress.MAG32, 0, bad); err == nil {
			t.Errorf("NamedConfig accepted bound %v", bad)
		}
	}
	if BoundedConfig("sz-lorenzo", compress.MAG32, 0) != cfgMust(t, "sz-lorenzo", 0) {
		t.Error("BoundedConfig(0) differs from NamedConfig default")
	}
}

// cfgMust is NamedConfig for bounded codecs at 32 B MAG, failing the test on
// error.
func cfgMust(t *testing.T, codec string, bound float64) Config {
	t.Helper()
	cfg, err := NamedConfig(codec, compress.MAG32, 0, bound)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestConfigNames(t *testing.T) {
	if got := E2MCConfig(compress.MAG32).Name; got != "E2MC@32B" {
		t.Errorf("name %q", got)
	}
	if got := TSLCConfig(slc.OPT, compress.MAG64, 256).Name; got != "TSLC-OPT@64B/t32B" {
		t.Errorf("name %q", got)
	}
}

func TestTablesRender(t *testing.T) {
	t2 := TableII(sim.DefaultConfig())
	for _, want := range []string{"16", "822", "GDDR5", "192.4", "768 KB"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q:\n%s", want, t2)
		}
	}
	t3 := TableIII()
	for _, want := range []string{"JM", "SRAD2", "Miss rate", "#AR"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table III missing %q", want)
		}
	}
	t1 := TableI()
	if !strings.Contains(t1, "Compressor") || !strings.Contains(t1, "GTX580") {
		t.Error("Table I rendering incomplete")
	}
}

func TestFigure1SingleCodec(t *testing.T) {
	if testing.Short() {
		t.Skip("compression sweep in -short mode")
	}
	r := NewRunner()
	w := tpWorkload(t)
	st, err := r.CompressionOnly(w, BaselineConfig("bdi", compress.MAG32))
	if err != nil {
		t.Fatal(err)
	}
	if st.RawRatio() < st.EffectiveRatio() {
		t.Errorf("raw %.2f < effective %.2f", st.RawRatio(), st.EffectiveRatio())
	}
}

func TestVariantsApproximateSimilarBlockCounts(t *testing.T) {
	// Paper §V-A: the three TSLC variants show only slight speedup
	// variation "because all of them roughly approximate the same number of
	// blocks by the same amount" — the decision logic is shared; only
	// TSLC-OPT's extra nodes shift a few block decisions.
	if testing.Short() {
		t.Skip("runner integration in -short mode")
	}
	r := NewRunner()
	w := tpWorkload(t)
	var counts []int64
	for _, v := range []slc.Variant{slc.SIMP, slc.PRED, slc.OPT} {
		res, err := r.Run(w, TSLCConfig(v, compress.MAG32, DefaultThresholdBits))
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, res.Comp.LossyBlocks)
	}
	// Only *roughly* the same: the paper itself notes that decompressed
	// blocks differ between schemes, so "their further compressibility and
	// the blocks which depend on them may differ" — SIMP's zero-fill feeds
	// back into later syncs. Assert the counts stay within 15%.
	lo, hi := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if float64(hi-lo) > 0.15*float64(hi) {
		t.Errorf("lossy block counts diverge >15%%: SIMP %d, PRED %d, OPT %d",
			counts[0], counts[1], counts[2])
	}
}
