// Package experiments reproduces every table and figure of the paper's
// evaluation. The Runner executes one (workload × configuration) cell of the
// evaluation matrix — golden run, online-sampling table training, compressed
// run with error measurement, timing simulation and energy accounting — and
// memoises results so figures sharing runs (7, 8) do not recompute them.
//
// The Runner is safe for concurrent use: memoisation is singleflight-style
// (concurrent requests for the same golden run, entropy table or result
// compute once while the rest wait), and RunAll fans an evaluation matrix
// across a worker pool with results identical to serial execution.
//
// Beyond the paper's figures, the package defines named subsets of the
// evaluation matrix (RegisterMatrix/MatrixCells, the `slcbench -matrix`
// registry) and the Trajectory type — the `slcbench -json` schema CI
// records on every push, pinned byte-for-byte by the golden fixture under
// testdata/.
package experiments

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"

	"repro/internal/compress"
	_ "repro/internal/compress/all" // register every codec
	"repro/internal/compress/e2mc"
	"repro/internal/compress/sz"
	"repro/internal/flight"
	"repro/internal/gpu/device"
	"repro/internal/gpu/sim"
	"repro/internal/gpu/trace"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/resultstore"
	"repro/internal/serving"
	"repro/internal/slc"
	"repro/internal/workloads"
)

// Config is one compression configuration, identified by the codec's
// registry name (see compress.Names for the available set).
type Config struct {
	// Name is the display name used in figures and memoisation keys, e.g.
	// "E2MC@32B" or "TSLC-OPT@32B/t16B".
	Name string
	// Codec is the registry name of the technique, e.g. "e2mc", "bdi",
	// "tslc-opt". "raw" selects the uncompressed baseline.
	Codec string
	// MAG is the memory access granularity of the cell.
	MAG compress.MAG
	// ThresholdBits is the lossy threshold (lossy codecs only).
	ThresholdBits int
	// ErrorBound is the absolute error bound (error-bounded codecs only).
	ErrorBound float64
}

// NamedConfig builds a configuration from a codec registry name, validating
// the name against the registered set. thresholdBits applies to lossy
// codecs only and errorBound to error-bounded codecs only; a non-positive
// threshold selects the paper's default and a zero bound the codec's
// default, so the display name always matches the parameters the codec
// actually runs at.
func NamedConfig(codec string, mag compress.MAG, thresholdBits int, errorBound float64) (Config, error) {
	codec = strings.ToLower(codec)
	info, ok := compress.Lookup(codec)
	if !ok {
		return Config{}, compress.UnknownCodecError(codec)
	}
	if !mag.Valid() {
		// Validate here, not deep inside pipeline construction: by then a
		// tool may already have trained an entropy table for nothing.
		return Config{}, fmt.Errorf("experiments: invalid MAG %d (want a power of two dividing %d)", mag, compress.BlockSize)
	}
	cfg := Config{Codec: codec, MAG: mag}
	switch {
	case info.LossyBounded:
		if errorBound == 0 {
			errorBound = DefaultErrorBound
		}
		if math.IsNaN(errorBound) || math.IsInf(errorBound, 0) || errorBound < 0 {
			return Config{}, fmt.Errorf("experiments: error bound must be positive and finite, got %v", errorBound)
		}
		cfg.ErrorBound = errorBound
		cfg.Name = fmt.Sprintf("%s@%s/eb%.0e", strings.ToUpper(codec), mag, errorBound)
	case info.Lossy:
		if thresholdBits <= 0 {
			thresholdBits = DefaultThresholdBits
		}
		cfg.ThresholdBits = thresholdBits
		cfg.Name = fmt.Sprintf("%s@%s/t%dB", strings.ToUpper(codec), mag, thresholdBits/8)
	default:
		cfg.Name = fmt.Sprintf("%s@%s", strings.ToUpper(codec), mag)
	}
	return cfg, nil
}

// E2MCConfig returns the lossless baseline at the given MAG.
func E2MCConfig(mag compress.MAG) Config {
	return Config{Name: fmt.Sprintf("E2MC@%s", mag), Codec: "e2mc", MAG: mag}
}

// TSLCConfig returns an SLC configuration.
func TSLCConfig(v slc.Variant, mag compress.MAG, thresholdBits int) Config {
	return Config{
		Name:          fmt.Sprintf("%s@%s/t%dB", v, mag, thresholdBits/8),
		Codec:         slc.RegistryName(v),
		MAG:           mag,
		ThresholdBits: thresholdBits,
	}
}

// BaselineConfig returns one of the Figure 1 lossless codecs (or the raw
// baseline) by registry name.
func BaselineConfig(codec string, mag compress.MAG) Config {
	return Config{Name: fmt.Sprintf("%s@%s", strings.ToUpper(codec), mag), Codec: codec, MAG: mag}
}

// DefaultErrorBound is the absolute error bound error-bounded cells run at
// when none is given — the sz family's own default.
const DefaultErrorBound = sz.DefaultBound

// BoundedConfig returns an error-bounded codec configuration. A zero bound
// selects DefaultErrorBound.
func BoundedConfig(codec string, mag compress.MAG, errorBound float64) Config {
	if errorBound == 0 {
		errorBound = DefaultErrorBound
	}
	return Config{
		Name:       fmt.Sprintf("%s@%s/eb%.0e", strings.ToUpper(codec), mag, errorBound),
		Codec:      codec,
		MAG:        mag,
		ErrorBound: errorBound,
	}
}

// RunResult is everything measured for one workload × configuration.
type RunResult struct {
	Workload  string
	Config    Config
	ErrorFrac float64 // application error (fraction, not %)
	Sim       sim.Result
	Energy    power.Breakdown
	Comp      pipeline.Stats
	Trace     trace.Stats
}

// cellKey is the memoisation key of one evaluation cell; Run,
// CompressionOnly (with a "|comp" suffix) and EvaluationCells' dedup all
// derive from it.
func cellKey(workload string, cfg Config) string { return workload + "|" + cfg.Name }

// Runner executes and memoises evaluation cells. The zero value is not
// usable; call NewRunner.
type Runner struct {
	golden  flight.Group[[]float64]
	tables  serving.TableCache
	results flight.Group[RunResult]

	// Store, when non-nil, persists memoised computations to disk,
	// content-addressed by workload, configuration and code fingerprint
	// (see store.go). Each singleflight slot then resolves memory hit →
	// disk hit → compute; a populated store makes a repeated invocation
	// recompute nothing and return bitwise-identical results.
	Store *resultstore.Store

	// SyncWorkers, when > 1, parallelises block compression inside each
	// run's pipeline (see pipeline.SetWorkers). Results are identical to
	// serial execution.
	SyncWorkers int

	// SimWorkers, when > 1, shards each timing simulation across that many
	// goroutines (one event lane per DRAM channel plus the SM/L2
	// coordinator; see sim.Config.Workers). Results are bitwise-identical
	// to the serial engine, so memoised cells are unaffected.
	SimWorkers int

	progressMu sync.Mutex
	// Progress, when set, receives one line per executed (non-memoised)
	// run. It may be called from multiple goroutines; calls are serialised.
	Progress func(string)
}

// NewRunner returns an empty runner.
func NewRunner() *Runner {
	r := &Runner{}
	// The runner is a thin client of the serving tier's builder cache: table
	// training and codec construction live in internal/serving, shared with
	// the slcd daemon. Store is read through a closure so assigning
	// Runner.Store after construction (the storeflag pattern) is seen.
	r.tables.Store = func() *resultstore.Store { return r.Store }
	r.tables.Progress = r.progress
	return r
}

func (r *Runner) progress(format string, args ...interface{}) {
	r.progressMu.Lock()
	defer r.progressMu.Unlock()
	if r.Progress != nil {
		r.Progress(fmt.Sprintf(format, args...))
	}
}

// Golden returns the exact (uncompressed) outputs of a workload.
func (r *Runner) Golden(w workloads.Workload) ([]float64, error) {
	name := w.Info().Name
	return r.golden.Do(name, func() ([]float64, error) {
		key, usable := r.storeKey(kindGolden, goldenMaterial(w))
		if usable {
			var out []float64
			if hit, err := r.Store.GetGob(key, &out); err != nil {
				return nil, fmt.Errorf("golden %s: store: %w", name, err)
			} else if hit {
				return out, nil
			}
		}
		r.progress("golden run: %s", name)
		ctx := workloads.NewCtx(device.New(), nil, nil)
		out, err := w.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("golden %s: %w", name, err)
		}
		if usable {
			r.storePut(func() error { return r.Store.PutGob(key, kindGolden, out) }, kindGolden)
		}
		return out, nil
	})
}

// Table returns the workload's E2MC table, trained by sampling the device
// image at every region synchronisation — the online-sampling substitute.
// The work happens in the shared serving.TableCache: memory hit → store hit
// → train, in a singleflight slot per workload.
func (r *Runner) Table(w workloads.Workload) (*e2mc.Table, error) {
	return r.tables.Table(w)
}

// TableStats returns the builder cache's traffic counters (requests,
// retrains, disk hits).
func (r *Runner) TableStats() serving.TableStats { return r.tables.Stats() }

// codecs builds the lossless and lossy codecs of a configuration from the
// registry. Identity codecs (the raw baseline) yield a nil pair; lossy
// codecs additionally build their lossless base for exact regions.
func (r *Runner) codecs(w workloads.Workload, cfg Config) (lossless, lossy compress.Codec, err error) {
	return r.tables.Codecs(w, cfg.Codec, cfg.MAG, cfg.ThresholdBits, cfg.ErrorBound)
}

// SimConfig derives the simulator configuration for a compression
// configuration: the MAG sets the per-burst bytes (bus occupancy scales so
// aggregate peak bandwidth stays at Table II's 192.4 GB/s), and the codec's
// registration sets the (de)compression latencies.
func SimConfig(cfg Config) sim.Config {
	sc := sim.DefaultConfig()
	sc.MAG = cfg.MAG
	sc.MC.Dram.BurstCycles = int(cfg.MAG) / 16
	if info, ok := compress.Lookup(cfg.Codec); ok {
		sc.MC.CompressCycles = info.CompressCycles
		sc.MC.DecompressCycles = info.DecompressCycles
	}
	return sc
}

// newPipeline builds the pipeline of one cell, applying the runner's sync
// parallelism.
func (r *Runner) newPipeline(dev *device.Device, cfg Config, lossless, lossy compress.Codec) (*pipeline.Pipeline, error) {
	pl, err := pipeline.New(dev, cfg.MAG, lossless, lossy)
	if err != nil {
		return nil, err
	}
	pl.SetWorkers(r.SyncWorkers)
	return pl, nil
}

// Run executes one evaluation cell (memoised; concurrent calls for the same
// cell compute once).
func (r *Runner) Run(w workloads.Workload, cfg Config) (RunResult, error) {
	info := w.Info()
	key := cellKey(info.Name, cfg)
	return r.results.Do(key, func() (RunResult, error) {
		// Disk hit short-circuits everything, including the golden run and
		// table training the cell would otherwise request.
		dkey, usable := r.storeKey(kindCell, r.cellMaterial(w, cfg))
		if usable {
			var cached RunResult
			if hit, err := r.Store.GetJSON(dkey, &cached); err != nil {
				return RunResult{}, fmt.Errorf("%s × %s: store: %w", info.Name, cfg.Name, err)
			} else if hit {
				return cached, nil
			}
		}
		golden, err := r.Golden(w)
		if err != nil {
			return RunResult{}, err
		}
		lossless, lossy, err := r.codecs(w, cfg)
		if err != nil {
			return RunResult{}, err
		}
		r.progress("run: %s × %s", info.Name, cfg.Name)

		dev := device.New()
		pl, err := r.newPipeline(dev, cfg, lossless, lossy)
		if err != nil {
			return RunResult{}, err
		}
		rec := trace.NewRecorder(pl.BurstsFor)
		out, err := w.Run(workloads.NewCtx(dev, rec, pl.Sync))
		if err != nil {
			return RunResult{}, fmt.Errorf("%s × %s: %w", info.Name, cfg.Name, err)
		}
		errFrac, err := metrics.Eval(info.Metric, golden, out)
		if err != nil {
			return RunResult{}, err
		}
		tr := rec.Trace()
		sc := SimConfig(cfg)
		sc.Workers = r.SimWorkers
		simRes, err := sim.Run(tr, sc)
		if err != nil {
			return RunResult{}, err
		}
		energy, err := power.Compute(simRes, power.Default())
		if err != nil {
			return RunResult{}, err
		}
		res := RunResult{
			Workload:  info.Name,
			Config:    cfg,
			ErrorFrac: errFrac,
			Sim:       simRes,
			Energy:    energy,
			Comp:      pl.Stats(),
			Trace:     tr.Stats(cfg.MAG),
		}
		if usable {
			r.storePut(func() error { return r.Store.PutJSON(dkey, kindCell, res) }, kindCell)
		}
		return res, nil
	})
}

// CompressionOnly runs the workload under a configuration without the timing
// simulation — enough for Figures 1 and 2.
func (r *Runner) CompressionOnly(w workloads.Workload, cfg Config) (pipeline.Stats, error) {
	info := w.Info()
	key := cellKey(info.Name, cfg) + "|comp"
	res, err := r.results.Do(key, func() (RunResult, error) {
		dkey, usable := r.storeKey(kindComp, compMaterial(w, cfg))
		if usable {
			var cached RunResult
			if hit, err := r.Store.GetJSON(dkey, &cached); err != nil {
				return RunResult{}, fmt.Errorf("%s × %s: store: %w", info.Name, cfg.Name, err)
			} else if hit {
				return cached, nil
			}
		}
		lossless, lossy, err := r.codecs(w, cfg)
		if err != nil {
			return RunResult{}, err
		}
		r.progress("compress: %s × %s", info.Name, cfg.Name)
		dev := device.New()
		pl, err := r.newPipeline(dev, cfg, lossless, lossy)
		if err != nil {
			return RunResult{}, err
		}
		if _, err := w.Run(workloads.NewCtx(dev, nil, pl.Sync)); err != nil {
			return RunResult{}, fmt.Errorf("%s × %s: %w", info.Name, cfg.Name, err)
		}
		out := RunResult{Workload: info.Name, Config: cfg, Comp: pl.Stats()}
		if usable {
			r.storePut(func() error { return r.Store.PutJSON(dkey, kindComp, out) }, kindComp)
		}
		return out, nil
	})
	return res.Comp, err
}

// Cell is one entry of an evaluation matrix: a workload under a
// configuration.
type Cell struct {
	Workload workloads.Workload
	Config   Config
}

// Workers resolves a worker-count knob: non-positive values (the cmd
// binaries' "-parallel 0") select one worker per core. RunAll, Runner
// SyncWorkers consumers and the cmd/ flags all share this policy.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// RunAll executes the cells across a worker pool and returns their results
// in input order. workers ≤ 0 selects GOMAXPROCS. Memoisation makes every
// result identical to what serial Run calls would produce; cells sharing a
// golden run or entropy table compute it once. All failing cells contribute
// to the joined error; successful cells still return results.
func (r *Runner) RunAll(cells []Cell, workers int) ([]RunResult, error) {
	results := make([]RunResult, len(cells))
	errs := make([]error, len(cells))
	r.forEachCell(workers, func(i int) error {
		res, err := r.Run(cells[i].Workload, cells[i].Config)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	}, cells, errs)
	return results, errors.Join(errs...)
}

// CompressAll executes compression-only cells (the Figure 1/2 sweep) across
// a worker pool, warming the CompressionOnly memo. workers ≤ 0 selects
// GOMAXPROCS.
func (r *Runner) CompressAll(cells []Cell, workers int) error {
	errs := make([]error, len(cells))
	r.forEachCell(workers, func(i int) error {
		_, err := r.CompressionOnly(cells[i].Workload, cells[i].Config)
		return err
	}, cells, errs)
	return errors.Join(errs...)
}

// forEachCell fans cell indices across a worker pool. A cell that fails —
// or panics, e.g. a codec bug tripping the pipeline's round-trip invariant —
// records into errs[i] rather than killing the process, so the other cells'
// results survive; serial callers of Run still see panics directly.
func (r *Runner) forEachCell(workers int, fn func(int) error, cells []Cell, errs []error) {
	workers = Workers(workers)
	if workers > len(cells) {
		workers = len(cells)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() {
						if v := recover(); v != nil {
							errs[i] = fmt.Errorf("cell %d (%s × %s): panic: %v",
								i, cells[i].Workload.Info().Name, cells[i].Config.Name, v)
						}
					}()
					if err := fn(i); err != nil {
						errs[i] = fmt.Errorf("cell %d (%s × %s): %w",
							i, cells[i].Workload.Info().Name, cells[i].Config.Name, err)
					}
				}()
			}
		}()
	}
	for i := range cells {
		next <- i
	}
	close(next)
	wg.Wait()
}

// CellsForFigure returns the cells one figure renders — full-run cells to
// warm with RunAll and compression-only cells to warm with CompressAll.
// Keep this in sync when adding a figure, so `slcbench -fig N -parallel`
// keeps covering it. Unknown figures return nothing.
func CellsForFigure(fig int) (full, comp []Cell) {
	switch fig {
	case 1, 2:
		comp = CompressionCells(compress.MAG32)
	case 7, 8:
		full = Fig7Cells()
	case 9:
		full = Fig9Cells()
	}
	return full, comp
}

// CompressionCells returns the compression-only cells of Figures 1 and 2:
// every workload under each Figure 1 codec at the given MAG (Figure 2 reads
// the E2MC cells). Warm them with CompressAll.
func CompressionCells(mag compress.MAG) []Cell {
	var cells []Cell
	for _, w := range workloads.Registry() {
		for _, c := range Fig1Codecs {
			cells = append(cells, Cell{w, BaselineConfig(c.Codec, mag)})
		}
	}
	return cells
}

// Fig7Cells returns the full-run cells behind Figures 7 and 8: every
// workload × (the E2MC baseline and the three TSLC variants) at 32 B MAG
// with the default threshold. Prefetching these with RunAll warms the
// runner's memo, so a subsequent Figure7/Figure8 renders from cache.
func Fig7Cells() []Cell {
	var cells []Cell
	for _, w := range workloads.Registry() {
		cells = append(cells, Cell{w, E2MCConfig(compress.MAG32)})
		for _, v := range Fig7Variants {
			cells = append(cells, Cell{w, TSLCConfig(v, compress.MAG32, DefaultThresholdBits)})
		}
	}
	return cells
}

// Fig9Cells returns the MAG-sensitivity cells of Figure 9: E2MC and
// TSLC-OPT at 16, 32 and 64 B MAG for every workload.
func Fig9Cells() []Cell {
	var cells []Cell
	for _, w := range workloads.Registry() {
		for _, mag := range []compress.MAG{compress.MAG16, compress.MAG32, compress.MAG64} {
			cells = append(cells, Cell{w, E2MCConfig(mag)})
			cells = append(cells, Cell{w, TSLCConfig(slc.OPT, mag, mag.Bits()/2)})
		}
	}
	return cells
}

// AblationCells returns the cells RunAblations executes: the threshold
// sweep over every workload plus the PRED/SIMP comparison cells.
func AblationCells() []Cell {
	var cells []Cell
	for _, w := range workloads.Registry() {
		cells = append(cells, Cell{w, E2MCConfig(compress.MAG32)})
		for _, tb := range []int{4, 8, 16, 24, 32} {
			cells = append(cells, Cell{w, TSLCConfig(slc.OPT, compress.MAG32, tb*8)})
		}
	}
	// The extra-node ablation needs PRED on DCT; the prediction-policy
	// ablation needs SIMP and PRED on NN (OPT@t16B is in the sweep above).
	if dct, err := workloads.ByName("DCT"); err == nil {
		cells = append(cells, Cell{dct, TSLCConfig(slc.PRED, compress.MAG32, DefaultThresholdBits)})
	}
	if nn, err := workloads.ByName("NN"); err == nil {
		cells = append(cells, Cell{nn, TSLCConfig(slc.SIMP, compress.MAG32, DefaultThresholdBits)})
		cells = append(cells, Cell{nn, TSLCConfig(slc.PRED, compress.MAG32, DefaultThresholdBits)})
	}
	return cells
}

// EvaluationCells returns the union of every full-run cell the report
// executes (Figures 7, 8, 9 and the ablations), deduplicated by cell key.
func EvaluationCells() []Cell {
	var cells []Cell
	seen := make(map[string]bool)
	for _, c := range append(append(Fig7Cells(), Fig9Cells()...), AblationCells()...) {
		key := cellKey(c.Workload.Info().Name, c.Config)
		if seen[key] {
			continue
		}
		seen[key] = true
		cells = append(cells, c)
	}
	return cells
}

// RunnerCodecs exposes the runner's codec construction (including table
// training) to external tools such as slctrace.
func RunnerCodecs(r *Runner, w workloads.Workload, cfg Config) (lossless, lossy compress.Codec, err error) {
	return r.codecs(w, cfg)
}

// RerunTiming re-simulates a previously executed configuration with a
// modified simulator configuration; used by calibration experiments and
// ablations.
func RerunTiming(r *Runner, w workloads.Workload, cfg Config, mod func(*sim.Config)) (sim.Result, error) {
	lossless, lossy, err := r.codecs(w, cfg)
	if err != nil {
		return sim.Result{}, err
	}
	dev := device.New()
	pl, err := r.newPipeline(dev, cfg, lossless, lossy)
	if err != nil {
		return sim.Result{}, err
	}
	rec := trace.NewRecorder(pl.BurstsFor)
	if _, err := w.Run(workloads.NewCtx(dev, rec, pl.Sync)); err != nil {
		return sim.Result{}, err
	}
	sc := SimConfig(cfg)
	sc.Workers = r.SimWorkers
	if mod != nil {
		mod(&sc)
	}
	return sim.Run(rec.Trace(), sc)
}
