// Package experiments reproduces every table and figure of the paper's
// evaluation. The Runner executes one (workload × configuration) cell of the
// evaluation matrix — golden run, online-sampling table training, compressed
// run with error measurement, timing simulation and energy accounting — and
// memoises results so figures sharing runs (7, 8) do not recompute them.
package experiments

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/compress/bdi"
	"repro/internal/compress/bpc"
	"repro/internal/compress/cpack"
	"repro/internal/compress/e2mc"
	"repro/internal/compress/fpc"
	"repro/internal/compress/hycomp"
	"repro/internal/gpu/device"
	"repro/internal/gpu/sim"
	"repro/internal/gpu/trace"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/slc"
	"repro/internal/workloads"
)

// Kind selects the compression technique of a configuration.
type Kind int

// The techniques of the evaluation. KindBPC extends the paper's Figure 1:
// §II-A argues qualitatively that bit-plane compression suffers from MAG
// like the measured baselines; including it makes the claim quantitative.
const (
	KindUncompressed Kind = iota
	KindBDI
	KindFPC
	KindCPACK
	KindE2MC
	KindTSLC
	KindBPC
	KindHyComp
)

// Config is one compression configuration.
type Config struct {
	Name          string
	Kind          Kind
	MAG           compress.MAG
	Variant       slc.Variant // TSLC only
	ThresholdBits int         // TSLC only
}

// E2MCConfig returns the lossless baseline at the given MAG.
func E2MCConfig(mag compress.MAG) Config {
	return Config{Name: fmt.Sprintf("E2MC@%s", mag), Kind: KindE2MC, MAG: mag}
}

// TSLCConfig returns an SLC configuration.
func TSLCConfig(v slc.Variant, mag compress.MAG, thresholdBits int) Config {
	return Config{
		Name:          fmt.Sprintf("%s@%s/t%dB", v, mag, thresholdBits/8),
		Kind:          KindTSLC,
		MAG:           mag,
		Variant:       v,
		ThresholdBits: thresholdBits,
	}
}

// BaselineConfig returns one of the Figure 1 lossless codecs.
func BaselineConfig(k Kind, mag compress.MAG) Config {
	names := map[Kind]string{
		KindUncompressed: "RAW", KindBDI: "BDI", KindFPC: "FPC",
		KindCPACK: "CPACK", KindE2MC: "E2MC", KindBPC: "BPC",
		KindHyComp: "HYCOMP",
	}
	return Config{Name: fmt.Sprintf("%s@%s", names[k], mag), Kind: k, MAG: mag}
}

// RunResult is everything measured for one workload × configuration.
type RunResult struct {
	Workload  string
	Config    Config
	ErrorFrac float64 // application error (fraction, not %)
	Sim       sim.Result
	Energy    power.Breakdown
	Comp      pipeline.Stats
	Trace     trace.Stats
}

// Runner executes and memoises evaluation cells.
type Runner struct {
	golden  map[string][]float64
	tables  map[string]*e2mc.Table
	results map[string]RunResult
	// Progress, when set, receives one line per executed (non-memoised)
	// run.
	Progress func(string)
}

// NewRunner returns an empty runner.
func NewRunner() *Runner {
	return &Runner{
		golden:  make(map[string][]float64),
		tables:  make(map[string]*e2mc.Table),
		results: make(map[string]RunResult),
	}
}

func (r *Runner) progress(format string, args ...interface{}) {
	if r.Progress != nil {
		r.Progress(fmt.Sprintf(format, args...))
	}
}

// Golden returns the exact (uncompressed) outputs of a workload.
func (r *Runner) Golden(w workloads.Workload) ([]float64, error) {
	name := w.Info().Name
	if out, ok := r.golden[name]; ok {
		return out, nil
	}
	r.progress("golden run: %s", name)
	ctx := workloads.NewCtx(device.New(), nil, nil)
	out, err := w.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("golden %s: %w", name, err)
	}
	r.golden[name] = out
	return out, nil
}

// Table returns the workload's E2MC table, trained by sampling the device
// image at every region synchronisation — the online-sampling substitute.
func (r *Runner) Table(w workloads.Workload) (*e2mc.Table, error) {
	name := w.Info().Name
	if tab, ok := r.tables[name]; ok {
		return tab, nil
	}
	r.progress("training table: %s", name)
	dev := device.New()
	trainer := e2mc.NewTrainer()
	sync := func(reg device.Region) {
		reg.BlockAddrs(func(addr uint64) {
			block, err := dev.Block(addr)
			if err != nil {
				panic(err)
			}
			trainer.Sample(block)
		})
	}
	if _, err := w.Run(workloads.NewCtx(dev, nil, sync)); err != nil {
		return nil, fmt.Errorf("training %s: %w", name, err)
	}
	tab, err := trainer.Build(0, 0)
	if err != nil {
		return nil, fmt.Errorf("building table for %s: %w", name, err)
	}
	r.tables[name] = tab
	return tab, nil
}

// codecs builds the lossless and lossy codecs of a configuration.
func (r *Runner) codecs(w workloads.Workload, cfg Config) (lossless, lossy compress.Codec, err error) {
	switch cfg.Kind {
	case KindUncompressed:
		return nil, nil, nil
	case KindBDI:
		return bdi.Codec{}, nil, nil
	case KindFPC:
		return fpc.Codec{}, nil, nil
	case KindCPACK:
		return cpack.Codec{}, nil, nil
	case KindBPC:
		return bpc.Codec{}, nil, nil
	case KindHyComp:
		tab, err := r.Table(w)
		if err != nil {
			return nil, nil, err
		}
		return hycomp.New(tab), nil, nil
	case KindE2MC, KindTSLC:
		tab, err := r.Table(w)
		if err != nil {
			return nil, nil, err
		}
		lossless = e2mc.New(tab)
		if cfg.Kind == KindTSLC {
			lossy, err = slc.New(tab, slc.Config{
				MAG:           cfg.MAG,
				ThresholdBits: cfg.ThresholdBits,
				Variant:       cfg.Variant,
			})
			if err != nil {
				return nil, nil, err
			}
		}
		return lossless, lossy, nil
	}
	return nil, nil, fmt.Errorf("experiments: unknown kind %d", cfg.Kind)
}

// SimConfig derives the simulator configuration for a compression
// configuration: the MAG sets the per-burst bytes (bus occupancy scales so
// aggregate peak bandwidth stays at Table II's 192.4 GB/s), and the codec
// sets the (de)compression latencies.
func SimConfig(cfg Config) sim.Config {
	sc := sim.DefaultConfig()
	sc.MAG = cfg.MAG
	sc.MC.Dram.BurstCycles = int(cfg.MAG) / 16
	switch cfg.Kind {
	case KindUncompressed:
		sc.MC.CompressCycles, sc.MC.DecompressCycles = 0, 0
	case KindBDI:
		sc.MC.CompressCycles, sc.MC.DecompressCycles = 2, 1
	case KindFPC:
		sc.MC.CompressCycles, sc.MC.DecompressCycles = 8, 5
	case KindCPACK:
		sc.MC.CompressCycles, sc.MC.DecompressCycles = 8, 8
	case KindBPC:
		sc.MC.CompressCycles, sc.MC.DecompressCycles = 12, 10
	case KindHyComp:
		sc.MC.CompressCycles, sc.MC.DecompressCycles = e2mc.CompressCycles+4, e2mc.DecompressCycles
	case KindE2MC:
		sc.MC.CompressCycles, sc.MC.DecompressCycles = e2mc.CompressCycles, e2mc.DecompressCycles
	case KindTSLC:
		sc.MC.CompressCycles, sc.MC.DecompressCycles = slc.CompressCycles, slc.DecompressCycles
	}
	return sc
}

// Run executes one evaluation cell (memoised).
func (r *Runner) Run(w workloads.Workload, cfg Config) (RunResult, error) {
	info := w.Info()
	key := info.Name + "|" + cfg.Name
	if res, ok := r.results[key]; ok {
		return res, nil
	}
	golden, err := r.Golden(w)
	if err != nil {
		return RunResult{}, err
	}
	lossless, lossy, err := r.codecs(w, cfg)
	if err != nil {
		return RunResult{}, err
	}
	r.progress("run: %s × %s", info.Name, cfg.Name)

	dev := device.New()
	pl, err := pipeline.New(dev, cfg.MAG, lossless, lossy)
	if err != nil {
		return RunResult{}, err
	}
	rec := trace.NewRecorder(pl.BurstsFor)
	out, err := w.Run(workloads.NewCtx(dev, rec, pl.Sync))
	if err != nil {
		return RunResult{}, fmt.Errorf("%s × %s: %w", info.Name, cfg.Name, err)
	}
	errFrac, err := metrics.Eval(info.Metric, golden, out)
	if err != nil {
		return RunResult{}, err
	}
	tr := rec.Trace()
	simRes, err := sim.Run(tr, SimConfig(cfg))
	if err != nil {
		return RunResult{}, err
	}
	energy, err := power.Compute(simRes, power.Default())
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{
		Workload:  info.Name,
		Config:    cfg,
		ErrorFrac: errFrac,
		Sim:       simRes,
		Energy:    energy,
		Comp:      pl.Stats(),
		Trace:     tr.Stats(cfg.MAG),
	}
	r.results[key] = res
	return res, nil
}

// CompressionOnly runs the workload under a configuration without the timing
// simulation — enough for Figures 1 and 2.
func (r *Runner) CompressionOnly(w workloads.Workload, cfg Config) (pipeline.Stats, error) {
	info := w.Info()
	key := info.Name + "|" + cfg.Name + "|comp"
	if res, ok := r.results[key]; ok {
		return res.Comp, nil
	}
	lossless, lossy, err := r.codecs(w, cfg)
	if err != nil {
		return pipeline.Stats{}, err
	}
	r.progress("compress: %s × %s", info.Name, cfg.Name)
	dev := device.New()
	pl, err := pipeline.New(dev, cfg.MAG, lossless, lossy)
	if err != nil {
		return pipeline.Stats{}, err
	}
	if _, err := w.Run(workloads.NewCtx(dev, nil, pl.Sync)); err != nil {
		return pipeline.Stats{}, fmt.Errorf("%s × %s: %w", info.Name, cfg.Name, err)
	}
	r.results[key] = RunResult{Workload: info.Name, Config: cfg, Comp: pl.Stats()}
	return pl.Stats(), nil
}

// RunnerCodecs exposes the runner's codec construction (including table
// training) to external tools such as slctrace.
func RunnerCodecs(r *Runner, w workloads.Workload, cfg Config) (lossless, lossy compress.Codec, err error) {
	return r.codecs(w, cfg)
}

// RerunTiming re-simulates a previously executed configuration with a
// modified simulator configuration; used by calibration experiments and
// ablations.
func RerunTiming(r *Runner, w workloads.Workload, cfg Config, mod func(*sim.Config)) (sim.Result, error) {
	lossless, lossy, err := r.codecs(w, cfg)
	if err != nil {
		return sim.Result{}, err
	}
	dev := device.New()
	pl, err := pipeline.New(dev, cfg.MAG, lossless, lossy)
	if err != nil {
		return sim.Result{}, err
	}
	rec := trace.NewRecorder(pl.BurstsFor)
	if _, err := w.Run(workloads.NewCtx(dev, rec, pl.Sync)); err != nil {
		return sim.Result{}, err
	}
	sc := SimConfig(cfg)
	if mod != nil {
		mod(&sc)
	}
	return sim.Run(rec.Trace(), sc)
}
