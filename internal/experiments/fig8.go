package experiments

import (
	"fmt"
	"strings"

	"repro/internal/compress"
	"repro/internal/slc"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig8 reproduces Figure 8: off-chip bandwidth, energy and energy-delay
// product of the TSLC variants normalised to E2MC. It reuses the Figure 7
// runs (the runner memoises them).
type Fig8 struct {
	Benchmarks []string
	Bandwidth  map[slc.Variant][]float64
	Energy     map[slc.Variant][]float64
	EDP        map[slc.Variant][]float64
	GMBw       map[slc.Variant]float64
	GMEnergy   map[slc.Variant]float64
	GMEDP      map[slc.Variant]float64
}

// Figure8 computes the normalised metrics.
func Figure8(r *Runner) (Fig8, error) {
	f := Fig8{
		Bandwidth: map[slc.Variant][]float64{},
		Energy:    map[slc.Variant][]float64{},
		EDP:       map[slc.Variant][]float64{},
		GMBw:      map[slc.Variant]float64{},
		GMEnergy:  map[slc.Variant]float64{},
		GMEDP:     map[slc.Variant]float64{},
	}
	for _, w := range workloads.Registry() {
		base, err := r.Run(w, E2MCConfig(compress.MAG32))
		if err != nil {
			return Fig8{}, err
		}
		f.Benchmarks = append(f.Benchmarks, w.Info().Name)
		for _, v := range Fig7Variants {
			res, err := r.Run(w, TSLCConfig(v, compress.MAG32, DefaultThresholdBits))
			if err != nil {
				return Fig8{}, err
			}
			// DramBytes is data traffic only (metadata bursts are split
			// into DramMetaBursts), so this ratio is the saved payload
			// bandwidth; MDC metadata overhead shows up in time and energy.
			f.Bandwidth[v] = append(f.Bandwidth[v],
				float64(res.Sim.DramBytes)/float64(base.Sim.DramBytes))
			f.Energy[v] = append(f.Energy[v],
				res.Energy.TotalMJ()/base.Energy.TotalMJ())
			f.EDP[v] = append(f.EDP[v],
				res.Energy.EDP(res.Sim.TimeNs)/base.Energy.EDP(base.Sim.TimeNs))
		}
	}
	for _, v := range Fig7Variants {
		f.GMBw[v] = stats.Geomean(f.Bandwidth[v])
		f.GMEnergy[v] = stats.Geomean(f.Energy[v])
		f.GMEDP[v] = stats.Geomean(f.EDP[v])
	}
	return f, nil
}

// String renders both panels.
func (f Fig8) String() string {
	var b strings.Builder
	b.WriteString("Figure 8a: normalised off-chip bandwidth (vs E2MC)\n")
	fmt.Fprintf(&b, "%-7s", "")
	for _, v := range Fig7Variants {
		fmt.Fprintf(&b, " %10s", v)
	}
	b.WriteByte('\n')
	for i, name := range f.Benchmarks {
		fmt.Fprintf(&b, "%-7s", name)
		for _, v := range Fig7Variants {
			fmt.Fprintf(&b, " %10.3f", f.Bandwidth[v][i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-7s", "GM")
	for _, v := range Fig7Variants {
		fmt.Fprintf(&b, " %10.3f", f.GMBw[v])
	}
	b.WriteString("\n(paper: ≈0.86 for all three variants)\n")

	b.WriteString("\nFigure 8b: normalised energy and EDP (vs E2MC)\n")
	fmt.Fprintf(&b, "%-7s", "")
	for _, v := range Fig7Variants {
		fmt.Fprintf(&b, " %8s-E %8s-EDP", shortVariant(v), shortVariant(v))
	}
	b.WriteByte('\n')
	for i, name := range f.Benchmarks {
		fmt.Fprintf(&b, "%-7s", name)
		for _, v := range Fig7Variants {
			fmt.Fprintf(&b, " %10.3f %12.3f", f.Energy[v][i], f.EDP[v][i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-7s", "GM")
	for _, v := range Fig7Variants {
		fmt.Fprintf(&b, " %10.3f %12.3f", f.GMEnergy[v], f.GMEDP[v])
	}
	b.WriteString("\n(paper GM: energy ≈0.917, EDP ≈0.825)\n")
	return b.String()
}

func shortVariant(v slc.Variant) string {
	switch v {
	case slc.SIMP:
		return "SIMP"
	case slc.PRED:
		return "PRED"
	case slc.OPT:
		return "OPT"
	}
	return v.String()
}
