package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/compress"
	"repro/internal/gpu/device"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// The float-workloads subset is the acceptance surface for the sz family:
// on the smooth HPC field at the default bound (1e-3) every sz cell must
// beat every lossless comparator on raw compression ratio, and every value
// a bounded pipeline writes back must be within the bound. These tests pin
// both ends.

// floatCompCells resolves the float-workloads subset's compression cells.
func floatCompCells(t *testing.T) []Cell {
	t.Helper()
	_, comp, err := MatrixCells("float-workloads")
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) == 0 {
		t.Fatal("float-workloads subset has no compression cells")
	}
	return comp
}

func TestFloatWorkloadsMatrixShape(t *testing.T) {
	full, comp, err := MatrixCells("float-workloads")
	if err != nil {
		t.Fatal(err)
	}
	// Three float fields × (2 bounded + 3 lossless comparators), plus the
	// HPC-S bound sweep at 1e-2 and 1e-4.
	if want := 3*(len(BoundedCodecNames)+len(FloatComparatorNames)) + 2; len(comp) != want {
		t.Errorf("comp cells = %d, want %d", len(comp), want)
	}
	if len(full) != 1 || full[0].Workload.Info().Name != "HPC-S" {
		t.Errorf("full cells = %+v, want one timed HPC-S cell", full)
	}
	for _, c := range comp {
		info, ok := compress.Lookup(c.Config.Codec)
		if !ok {
			t.Fatalf("cell %s × %s: unknown codec", c.Workload.Info().Name, c.Config.Name)
		}
		if info.LossyBounded && c.Config.ErrorBound <= 0 {
			t.Errorf("bounded cell %s has no error bound", c.Config.Name)
		}
		if !info.LossyBounded && c.Config.ErrorBound != 0 {
			t.Errorf("lossless cell %s carries an error bound", c.Config.Name)
		}
	}
}

// TestSZBeatsLosslessOnSmoothField is the ISSUE acceptance criterion: at a
// bound of 1e-3 (the default) on the smooth HPC field, the worst sz raw
// compression ratio exceeds the best lossless one.
func TestSZBeatsLosslessOnSmoothField(t *testing.T) {
	if testing.Short() {
		t.Skip("float-workloads matrix run in -short mode")
	}
	r := NewRunner()
	minSZ, maxLossless := math.Inf(1), math.Inf(-1)
	var szName, losslessName string
	for _, c := range floatCompCells(t) {
		if c.Workload.Info().Name != "HPC-S" {
			continue
		}
		info, _ := compress.Lookup(c.Config.Codec)
		if info.LossyBounded && c.Config.ErrorBound < DefaultErrorBound {
			continue // the 1e-4 sweep point is below the criterion's bound
		}
		st, err := r.CompressionOnly(c.Workload, c.Config)
		if err != nil {
			t.Fatalf("%s: %v", c.Config.Name, err)
		}
		ratio := st.RawRatio()
		t.Logf("%-28s raw CR %.3f", c.Config.Name, ratio)
		if info.LossyBounded {
			if ratio < minSZ {
				minSZ, szName = ratio, c.Config.Name
			}
		} else if ratio > maxLossless {
			maxLossless, losslessName = ratio, c.Config.Name
		}
	}
	if math.IsInf(minSZ, 1) || math.IsInf(maxLossless, -1) {
		t.Fatal("float-workloads subset is missing sz or lossless HPC-S cells")
	}
	if minSZ <= maxLossless {
		t.Errorf("worst sz cell %s (CR %.3f) does not beat best lossless cell %s (CR %.3f)",
			szName, minSZ, losslessName, maxLossless)
	}
}

// TestBoundedPipelineCompliance pushes a smooth float field through a full
// sz pipeline (lossless base + bounded lossy codec, as the runner builds it)
// and checks the value the device holds after Sync against the bound, for
// every element. Non-finite passthrough must be bit-exact.
func TestBoundedPipelineCompliance(t *testing.T) {
	const bound = 1e-3
	for _, codec := range BoundedCodecNames {
		t.Run(codec, func(t *testing.T) {
			ctx := compress.BuildContext{MAG: compress.MAG32, ErrorBound: bound}
			info, ok := compress.Lookup(codec)
			if !ok || !info.LossyBounded {
				t.Fatalf("codec %q is not a registered bounded codec", codec)
			}
			lossy, err := compress.Build(codec, ctx)
			if err != nil {
				t.Fatal(err)
			}
			lossless, err := compress.Build(info.Base, ctx)
			if err != nil {
				t.Fatal(err)
			}
			dev := device.New()
			pl, err := pipeline.New(dev, compress.MAG32, lossless, lossy)
			if err != nil {
				t.Fatal(err)
			}
			const n = 1 << 14
			reg, err := dev.Malloc("field", n*4, true, 0)
			if err != nil {
				t.Fatal(err)
			}
			orig := workloads.SmoothField(n, 4242)
			orig[7] = float32(math.NaN())
			orig[100] = float32(math.Inf(1))
			if err := dev.CopyFloats32(reg, orig); err != nil {
				t.Fatal(err)
			}
			pl.Sync(reg)
			got, err := dev.ReadFloats32(reg, n)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				o, g := orig[i], got[i]
				exact := math.Float32bits(o) == math.Float32bits(g)
				if math.IsNaN(float64(o)) || math.IsInf(float64(o), 0) {
					if !exact {
						t.Fatalf("lane %d: non-finite %x not bit-exact (got %x)",
							i, math.Float32bits(o), math.Float32bits(g))
					}
					continue
				}
				if diff := math.Abs(float64(g) - float64(o)); diff > bound {
					t.Fatalf("lane %d: |%g − %g| = %g exceeds bound %g", i, g, o, diff, bound)
				}
			}
			if st := pl.Stats(); st.Blocks == 0 {
				t.Error("pipeline recorded no blocks")
			}
		})
	}
}

// TestFloatWorkloadsConfigNames pins the cell-name scheme the trajectory
// JSON exposes, so downstream tooling can rely on it.
func TestFloatWorkloadsConfigNames(t *testing.T) {
	for _, c := range floatCompCells(t) {
		name := c.Config.Name
		info, _ := compress.Lookup(c.Config.Codec)
		if info.LossyBounded {
			if !strings.Contains(name, "/eb1e-") {
				t.Errorf("bounded cell name %q lacks an /eb bound suffix", name)
			}
		} else if strings.Contains(name, "/eb") {
			t.Errorf("lossless cell name %q carries an /eb bound suffix", name)
		}
	}
}
