package experiments

import (
	"fmt"
	"time"

	"repro/internal/compress"
	"repro/internal/gpu/device"
	"repro/internal/gpu/sim"
	"repro/internal/gpu/trace"
	"repro/internal/workloads"
)

// Simulator throughput benchmarking: how fast does the discrete-event timing
// core replay the traces the workloads actually produce? Every matrix cell
// pays one full simulation, so events/s here is the wall-time floor of the
// whole evaluation. Each workload's trace is recorded under the paper's
// E2MC configuration (compressed traffic exercises the MDC, metadata fetches
// and the decompression path) and replayed repeatedly through one
// sim.Simulator; CI tracks the resulting ns/event per push via `slcbench
// -simbench` and fails the regression smoke test when it degrades more than
// SimBenchRegressionLimit against the committed baseline fixture.

// simBenchWindow is the per-workload measurement window. A fixed wall-clock
// budget keeps the measurement stable across trace sizes without letting
// slcbench runtime blow up.
const simBenchWindow = 120 * time.Millisecond

// SimBenchRegressionLimit is the tolerated ns/event ratio (measured over
// baseline) before the CI regression smoke step fails: 1.25 = a 25%
// slowdown.
const SimBenchRegressionLimit = 1.25

// SimBench is the measured simulator throughput for one workload's trace,
// recorded in the bench trajectory's Sim section when `slcbench -simbench`
// is given. Timings are machine-dependent; the Events/Accesses/Warps counts
// are deterministic.
type SimBench struct {
	Workload     string
	Config       string // compression configuration the trace was recorded under
	Workers      int    // event-lane workers (1 = serial engine)
	Replays      int    // replays measured inside the window
	Events       int64  // engine events per replay
	Accesses     int    // trace accesses per replay
	Warps        int
	WallMs       float64 // mean wall time of one replay, milliseconds
	NsPerEvent   float64
	EventsPerSec float64
}

// simBenchTrace records the workload's trace under the given configuration,
// exactly as a Runner cell would (same pipeline, same burst geometry).
func simBenchTrace(r *Runner, w workloads.Workload, cfg Config) (*trace.Trace, sim.Config, error) {
	lossless, lossy, err := r.codecs(w, cfg)
	if err != nil {
		return nil, sim.Config{}, err
	}
	dev := device.New()
	pl, err := r.newPipeline(dev, cfg, lossless, lossy)
	if err != nil {
		return nil, sim.Config{}, err
	}
	rec := trace.NewRecorder(pl.BurstsFor)
	if _, err := w.Run(workloads.NewCtx(dev, rec, pl.Sync)); err != nil {
		return nil, sim.Config{}, fmt.Errorf("simbench %s: %w", w.Info().Name, err)
	}
	return rec.Trace(), SimConfig(cfg), nil
}

// MeasureSimBench replays one workload's E2MC trace through a single
// Simulator until the measurement window fills and reports the throughput.
// Every replay's Result must be bitwise-identical to the first — a replay
// that diverges (state leaking across replays) is an error, not a timing.
func MeasureSimBench(r *Runner, w workloads.Workload, workers int) (SimBench, error) {
	name := w.Info().Name
	cfg := E2MCConfig(compress.MAG32)
	tr, sc, err := simBenchTrace(r, w, cfg)
	if err != nil {
		return SimBench{}, err
	}
	sc.Workers = workers
	s, err := sim.New(sc)
	if err != nil {
		return SimBench{}, err
	}
	want, err := s.Replay(tr) // warm pools and caches; pin the expected Result
	if err != nil {
		return SimBench{}, fmt.Errorf("simbench %s: %w", name, err)
	}
	b := SimBench{
		Workload: name,
		Config:   cfg.Name,
		Workers:  workers,
		Events:   s.Events(),
	}
	ts := tr.Stats(cfg.MAG)
	b.Accesses = ts.Accesses
	b.Warps = ts.Warps

	var elapsed time.Duration
	for elapsed < simBenchWindow {
		start := time.Now() //slclint:allow determinism wall-clock throughput timing; replay output is compared bitwise below
		got, rerr := s.Replay(tr)
		elapsed += time.Since(start) //slclint:allow determinism wall-clock throughput timing, not simulated state
		if rerr != nil {
			return b, fmt.Errorf("simbench %s: %w", name, rerr)
		}
		if got != want {
			return b, fmt.Errorf("simbench %s: replay diverged from first run:\nfirst:  %+v\nreplay: %+v", name, want, got)
		}
		b.Replays++
	}
	b.WallMs = float64(elapsed.Nanoseconds()) / float64(b.Replays) / 1e6
	if b.Events > 0 {
		b.NsPerEvent = float64(elapsed.Nanoseconds()) / float64(int64(b.Replays)*b.Events)
		b.EventsPerSec = 1e9 / b.NsPerEvent
	}
	return b, nil
}

// CollectSimBenches measures simulator throughput for every registered
// workload — the Figure-2 set, the same traces the paper figures replay.
func CollectSimBenches(r *Runner, workers int) ([]SimBench, error) {
	if workers < 1 {
		workers = 1
	}
	var out []SimBench
	for _, w := range workloads.Registry() {
		b, err := MeasureSimBench(r, w, workers)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// CompareSimBench checks current throughput against a committed baseline and
// returns one message per regression: a workload whose ns/event grew beyond
// SimBenchRegressionLimit, or a deterministic count (events, accesses) that
// changed without the baseline being regenerated. Workloads present on only
// one side are ignored — adding a workload must not fail the smoke step.
func CompareSimBench(baseline, current []SimBench) []string {
	base := make(map[string]SimBench, len(baseline))
	for _, b := range baseline {
		base[b.Workload] = b
	}
	var regressions []string
	for _, c := range current {
		b, ok := base[c.Workload]
		if !ok {
			continue
		}
		if b.NsPerEvent > 0 && c.NsPerEvent > b.NsPerEvent*SimBenchRegressionLimit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.1f ns/event vs baseline %.1f (%.2fx > %.2fx limit)",
				c.Workload, c.NsPerEvent, b.NsPerEvent, c.NsPerEvent/b.NsPerEvent, SimBenchRegressionLimit))
		}
		if b.Events != c.Events {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d events per replay vs baseline %d (event stream changed; regenerate the baseline with -update)",
				c.Workload, c.Events, b.Events))
		}
	}
	return regressions
}
