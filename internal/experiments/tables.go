package experiments

import (
	"fmt"
	"strings"

	"repro/internal/gpu/sim"
	"repro/internal/hw"
	"repro/internal/workloads"
)

// TableI renders the hardware cost table from the analytical model.
func TableI() string {
	return hw.Model().String() + "\n"
}

// TableII renders the baseline simulator configuration in the paper's
// layout.
func TableII(cfg sim.Config) string {
	var b strings.Builder
	b.WriteString("Table II: baseline simulator configuration\n")
	type kv struct{ l, r string }
	rows := []kv{
		{fmt.Sprintf("#SMs               %d", cfg.SMs),
			fmt.Sprintf("L1 $ size/SM       %d KB", cfg.L1PerSMKB)},
		{fmt.Sprintf("SM freq (MHz)      %.0f", cfg.SMClockMHz),
			fmt.Sprintf("L2 $ size          %d KB", cfg.L2.SizeBytes>>10)},
		{fmt.Sprintf("Max #Threads/SM    %d", cfg.MaxWarpsPerSM*32),
			fmt.Sprintf("#Registers/SM      %d K", cfg.RegistersPerSM>>10)},
		{fmt.Sprintf("Max CTA size       %d", cfg.MaxCTASize),
			fmt.Sprintf("Shared memory/SM   %d KB", cfg.SharedMemKB)},
		{"Memory type        GDDR5",
			fmt.Sprintf("# Memory controllers %d", cfg.MC.Controllers)},
		{fmt.Sprintf("Memory clock       %.0f MHz", cfg.MC.Dram.MemClockMHz),
			fmt.Sprintf("Memory bandwidth   %.1f GB/s",
				float64(cfg.MC.Controllers*cfg.MC.ChannelsPerMC)*cfg.MC.Dram.PeakBandwidthGBs(int(cfg.MAG)))},
		{"Bus width          32-bit", "Burst length       8"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-38s %s\n", r.l, r.r)
	}
	return b.String()
}

// TableIII renders the benchmark suite table.
func TableIII() string {
	var b strings.Builder
	b.WriteString("Table III: benchmarks used for experimental evaluation\n")
	fmt.Fprintf(&b, "  %-6s %-28s %-18s %-12s %s\n", "Name", "Short Description", "Input", "Error Metric", "#AR")
	for _, w := range workloads.Registry() {
		in := w.Info()
		fmt.Fprintf(&b, "  %-6s %-28s %-18s %-12s %d\n", in.Name, in.Short, in.Input, in.Metric, in.AR)
	}
	b.WriteString("  (paper inputs: JM 400K pairs, BS 4M options, FWT 8M elems, NN 20M records,\n" +
		"   SRAD 1024²; scaled here per DESIGN.md — compression is per-128B-block)\n")
	return b.String()
}
