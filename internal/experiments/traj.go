package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/pipeline"
	"repro/internal/resultstore"
)

// The bench trajectory is the machine-readable form of an evaluation: every
// executed cell with its full measurement, in cell order. `slcbench -json`
// emits it, CI records it as an artefact, and the golden regression test
// pins its byte encoding (testdata/bench_golden.json) so schema drift and
// nondeterminism are caught at test time rather than in downstream plots.

// CompressionResult is one compression-only cell of a trajectory.
type CompressionResult struct {
	Workload string
	Config   Config
	Comp     pipeline.Stats
}

// Trajectory is the `slcbench -json` schema. Store, present only when a
// result store is attached, carries the hit/miss counters that make "a warm
// run recomputed nothing" observable; Decode (under `slcbench -decodebench`)
// carries wall-clock decode timings and Sim (under `slcbench -simbench`)
// simulator throughput. All three are deliberately separate from the result
// sections, which must be bitwise-identical between cold and warm runs (and
// across machines).
type Trajectory struct {
	// Schema is the result-store schema version the trajectory was produced
	// under; downstream plots use it to detect encoding drift.
	Schema      int
	Target      string
	Results     []RunResult         `json:",omitempty"`
	Compression []CompressionResult `json:",omitempty"`
	Decode      []DecodeBench       `json:",omitempty"`
	Sim         []SimBench          `json:",omitempty"`
	Store       *resultstore.Stats  `json:",omitempty"`
}

// CollectTrajectory reads the given cells through the runner (memoised —
// warmed cells are not re-executed) and assembles the trajectory, including
// the runner's store counters when a store is attached.
func CollectTrajectory(r *Runner, target string, full, comp []Cell) (*Trajectory, error) {
	t := &Trajectory{Schema: resultstore.SchemaVersion, Target: target}
	for _, c := range full {
		res, err := r.Run(c.Workload, c.Config)
		if err != nil {
			return nil, fmt.Errorf("trajectory %s: %w", target, err)
		}
		t.Results = append(t.Results, res)
	}
	for _, c := range comp {
		st, err := r.CompressionOnly(c.Workload, c.Config)
		if err != nil {
			return nil, fmt.Errorf("trajectory %s: %w", target, err)
		}
		t.Compression = append(t.Compression, CompressionResult{
			Workload: c.Workload.Info().Name,
			Config:   c.Config,
			Comp:     st,
		})
	}
	t.Store = r.StoreStats()
	return t, nil
}

// WriteJSON writes the trajectory in its canonical indented encoding.
func (t *Trajectory) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
