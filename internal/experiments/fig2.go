package experiments

import (
	"fmt"
	"strings"

	"repro/internal/compress"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig2 reproduces Figure 2: the distribution of E2MC-compressed blocks at
// MAG — what percentage of each benchmark's blocks land how many bytes above
// a multiple of the granularity. The 0 B bin holds exact multiples (and
// blocks under one MAG); the MAG-byte bin holds uncompressed blocks.
type Fig2 struct {
	MAG        compress.MAG
	Benchmarks []string
	// Pct[i][x] is benchmark i's percentage of blocks at x bytes above a
	// multiple of MAG.
	Pct  [][]float64
	Heat *stats.Heatmap
}

// Figure2 runs the compression-only sweep with E2MC.
func Figure2(r *Runner, mag compress.MAG) (Fig2, error) {
	f := Fig2{MAG: mag, Heat: stats.NewHeatmap(int(mag), 20)}
	for _, w := range workloads.Registry() {
		st, err := r.CompressionOnly(w, E2MCConfig(mag))
		if err != nil {
			return Fig2{}, err
		}
		pct := make([]float64, int(mag)+1)
		for x, cnt := range st.AboveMAG {
			if st.Blocks > 0 {
				pct[x] = 100 * float64(cnt) / float64(st.Blocks)
			}
			f.Heat.Add(x, pct[x])
		}
		f.Benchmarks = append(f.Benchmarks, w.Info().Name)
		f.Pct = append(f.Pct, pct)
	}
	return f, nil
}

// FracAboveMultiple returns the fraction of blocks (averaged over
// benchmarks) that are NOT at an exact multiple of MAG and not uncompressed
// — the blocks SLC can recover.
func (f Fig2) FracAboveMultiple() float64 {
	total := 0.0
	for _, pct := range f.Pct {
		for x := 1; x < len(pct)-1; x++ {
			total += pct[x]
		}
	}
	return total / float64(len(f.Pct)) / 100
}

// String renders per-benchmark distributions and the aggregate heat map.
func (f Fig2) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: distribution of compressed blocks at MAG %s (E2MC)\n", f.MAG)
	fmt.Fprintf(&b, "%-7s %6s %35s %6s\n", "", "0B", "1..31B (percent per 4B bin)", "32B")
	for i, name := range f.Benchmarks {
		pct := f.Pct[i]
		fmt.Fprintf(&b, "%-7s %5.1f%% ", name, pct[0])
		for x := 1; x < len(pct)-1; x += 4 {
			sum := 0.0
			for k := x; k < x+4 && k < len(pct)-1; k++ {
				sum += pct[k]
			}
			fmt.Fprintf(&b, " %4.1f", sum)
		}
		fmt.Fprintf(&b, " %5.1f%%\n", pct[len(pct)-1])
	}
	fmt.Fprintf(&b, "\nHeat map (samples per [bytes-above-MAG × %%-of-blocks] cell):\n")
	b.WriteString(f.Heat.Render())
	fmt.Fprintf(&b, "blocks recoverable by SLC (above a multiple, compressed): %.0f%%\n",
		f.FracAboveMultiple()*100)
	return b.String()
}
