package experiments

import (
	"fmt"
	"strings"

	"repro/internal/compress"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig1Codecs are the four lossless techniques of Figure 1, in plot order,
// plus BPC and HyComp — the §II-A techniques the paper argues
// (qualitatively) suffer from MAG as well; this reproduction measures them.
// (SC² is Huffman-based like E2MC, so the E2MC column stands in for it.)
var Fig1Codecs = []struct {
	Label string
	Codec string // registry name
}{
	{"BDI", "bdi"},
	{"FPC", "fpc"},
	{"CPACK", "cpack"},
	{"E2MC", "e2mc"},
	{"BPC", "bpc"},
	{"HYCOMP", "hycomp"},
}

// Fig1Row holds one benchmark's raw and effective compression ratios per
// codec.
type Fig1Row struct {
	Benchmark string
	Raw       map[string]float64
	Eff       map[string]float64
}

// Fig1 reproduces Figure 1: raw vs effective compression ratio of BDI, FPC,
// C-PACK and E2MC at 32 B MAG, with the geometric-mean column.
type Fig1 struct {
	MAG  compress.MAG
	Rows []Fig1Row
	GM   Fig1Row
}

// Figure1 runs the compression-only sweep.
func Figure1(r *Runner, mag compress.MAG) (Fig1, error) {
	f := Fig1{MAG: mag, GM: Fig1Row{Benchmark: "GM", Raw: map[string]float64{}, Eff: map[string]float64{}}}
	rawCols := map[string][]float64{}
	effCols := map[string][]float64{}
	for _, w := range workloads.Registry() {
		row := Fig1Row{Benchmark: w.Info().Name, Raw: map[string]float64{}, Eff: map[string]float64{}}
		for _, c := range Fig1Codecs {
			st, err := r.CompressionOnly(w, BaselineConfig(c.Codec, mag))
			if err != nil {
				return Fig1{}, err
			}
			row.Raw[c.Label] = st.RawRatio()
			row.Eff[c.Label] = st.EffectiveRatio()
			rawCols[c.Label] = append(rawCols[c.Label], st.RawRatio())
			effCols[c.Label] = append(effCols[c.Label], st.EffectiveRatio())
		}
		f.Rows = append(f.Rows, row)
	}
	for _, c := range Fig1Codecs {
		f.GM.Raw[c.Label] = stats.Geomean(rawCols[c.Label])
		f.GM.Eff[c.Label] = stats.Geomean(effCols[c.Label])
	}
	return f, nil
}

// GapPct returns how far the effective GM sits below the raw GM for a codec,
// in percent (the paper reports 22/19/18/23% for BDI/FPC/C-PACK/E2MC).
func (f Fig1) GapPct(codec string) float64 {
	raw := f.GM.Raw[codec]
	if raw == 0 {
		return 0
	}
	return (1 - f.GM.Eff[codec]/raw) * 100
}

// String renders the figure as a table.
func (f Fig1) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: raw and effective compression ratio (MAG %s)\n", f.MAG)
	fmt.Fprintf(&b, "%-6s", "")
	for _, c := range Fig1Codecs {
		fmt.Fprintf(&b, " %7s-Raw %7s-Eff", c.Label, c.Label)
	}
	b.WriteByte('\n')
	all := append(append([]Fig1Row{}, f.Rows...), f.GM)
	for _, row := range all {
		fmt.Fprintf(&b, "%-6s", row.Benchmark)
		for _, c := range Fig1Codecs {
			fmt.Fprintf(&b, " %11.2f %11.2f", row.Raw[c.Label], row.Eff[c.Label])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "effective below raw (GM):")
	for _, c := range Fig1Codecs {
		fmt.Fprintf(&b, "  %s %.0f%%", c.Label, f.GapPct(c.Label))
	}
	fmt.Fprintf(&b, "\n(paper: BDI 22%%, FPC 19%%, C-PACK 18%%, E2MC 23%%)\n")
	return b.String()
}
