package experiments

import (
	"fmt"
	"time"

	"repro/internal/compress"
	"repro/internal/compress/e2mc"
	"repro/internal/gpu/device"
	"repro/internal/workloads"
)

// Decode benchmarking: how fast does the entropy decoder run on the blocks a
// workload actually produces? The corpus is sampled from the device image at
// the same points the online-sampling trainer sees (every region sync), the
// table is the workload's own trained table, and three decoders run over the
// identical encoded streams: the LUT fast path, the retained bit-by-bit
// reference, and the gap-array parallel decoder. CI tracks the resulting
// ns/block per push via `slcbench -decodebench` (see the trajectory schema).

// DefaultDecodeCorpusBlocks caps the sampled corpus; a few thousand blocks
// keep the measurement stable without dominating slcbench runtime.
const DefaultDecodeCorpusBlocks = 4096

// DecodeItem is one encoded block of a decode corpus: the concatenated way
// payloads with their byte offsets, plus the sideband gap array.
type DecodeItem struct {
	Payload []byte
	Starts  [e2mc.PDWs]int
	Gaps    e2mc.GapArray
}

// DecodeCorpus is the decode-benchmark input for one workload.
type DecodeCorpus struct {
	Workload string
	Table    *e2mc.Table
	Items    []DecodeItem
}

// BuildDecodeCorpus samples up to maxBlocks compressible blocks from the
// workload's region syncs and entropy-codes them with the workload's trained
// table. Incompressible blocks are excluded — the decoder never sees them
// (they are stored raw). maxBlocks ≤ 0 selects the default cap.
func BuildDecodeCorpus(r *Runner, w workloads.Workload, maxBlocks int) (*DecodeCorpus, error) {
	if maxBlocks <= 0 {
		maxBlocks = DefaultDecodeCorpusBlocks
	}
	name := w.Info().Name
	tab, err := r.Table(w)
	if err != nil {
		return nil, err
	}
	codec := e2mc.New(tab)

	// Sample raw blocks at every sync, mirroring the trainer's visibility.
	// The stride spreads the cap across large regions instead of saturating
	// it on the first one.
	var blocks [][]byte
	dev := device.New()
	sync := func(reg device.Region) {
		if len(blocks) >= maxBlocks {
			return
		}
		stride := uint64(compress.BlockSize)
		if n := int(reg.Size) / compress.BlockSize; n > maxBlocks/4 {
			stride *= uint64(n / (maxBlocks / 4))
		}
		for addr := reg.Addr; addr < reg.End() && len(blocks) < maxBlocks; addr += stride {
			block, berr := dev.Block(addr)
			if berr != nil {
				panic(berr)
			}
			if codec.CompressedBits(block) >= compress.BlockBits {
				continue
			}
			blocks = append(blocks, append([]byte(nil), block...))
		}
	}
	if _, err := w.Run(workloads.NewCtx(dev, nil, sync)); err != nil {
		return nil, fmt.Errorf("decode corpus %s: %w", name, err)
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("decode corpus %s: no compressible blocks sampled", name)
	}

	c := &DecodeCorpus{Workload: name, Table: tab}
	for _, block := range blocks {
		syms := compress.Symbols(block)
		ways, _, gaps := tab.EncodeWays(syms, 0, 0)
		var it DecodeItem
		it.Gaps = gaps
		for wy := 0; wy < e2mc.PDWs; wy++ {
			it.Starts[wy] = len(it.Payload)
			it.Payload = append(it.Payload, ways[wy]...)
		}
		c.Items = append(c.Items, it)
	}
	return c, nil
}

// DecodeBench is the measured decode performance for one workload, recorded
// in the bench trajectory when `slcbench -decodebench` is given. All times
// are nanoseconds per 128-byte block; Speedup is reference over LUT.
type DecodeBench struct {
	Workload      string
	Blocks        int
	LUTNsPerBlock float64
	RefNsPerBlock float64
	ParNsPerBlock float64
	Speedup       float64
}

// timeNsPerBlock drives fn over the corpus repeatedly until the measurement
// window fills, returning the mean decode time per block.
func timeNsPerBlock(items []DecodeItem, fn func(*DecodeItem) error) (float64, error) {
	for i := range items { // warm caches and surface errors once
		if err := fn(&items[i]); err != nil {
			return 0, err
		}
	}
	const window = 30 * time.Millisecond
	var elapsed time.Duration
	blocks := 0
	for elapsed < window {
		start := time.Now() //slclint:allow determinism wall-clock decode timing; decoded bytes are verified separately
		for i := range items {
			if err := fn(&items[i]); err != nil {
				return 0, err
			}
		}
		elapsed += time.Since(start) //slclint:allow determinism wall-clock decode timing, not simulated state
		blocks += len(items)
	}
	return float64(elapsed.Nanoseconds()) / float64(blocks), nil
}

// MeasureDecode times the three decoders over one corpus.
func MeasureDecode(c *DecodeCorpus) (DecodeBench, error) {
	b := DecodeBench{Workload: c.Workload, Blocks: len(c.Items)}
	tab := c.Table
	var err error
	if b.LUTNsPerBlock, err = timeNsPerBlock(c.Items, func(it *DecodeItem) error {
		_, derr := tab.DecodeWays(it.Payload, it.Starts, 0, 0)
		return derr
	}); err != nil {
		return b, fmt.Errorf("decode bench %s: LUT: %w", c.Workload, err)
	}
	if b.RefNsPerBlock, err = timeNsPerBlock(c.Items, func(it *DecodeItem) error {
		_, derr := tab.DecodeWaysRef(it.Payload, it.Starts, 0, 0)
		return derr
	}); err != nil {
		return b, fmt.Errorf("decode bench %s: reference: %w", c.Workload, err)
	}
	if b.ParNsPerBlock, err = timeNsPerBlock(c.Items, func(it *DecodeItem) error {
		_, derr := tab.DecodeWaysParallel(it.Payload, it.Starts, 0, 0, &it.Gaps)
		return derr
	}); err != nil {
		return b, fmt.Errorf("decode bench %s: parallel: %w", c.Workload, err)
	}
	if b.LUTNsPerBlock > 0 {
		b.Speedup = b.RefNsPerBlock / b.LUTNsPerBlock
	}
	return b, nil
}

// CollectDecodeBenches measures decode performance for every registered
// workload — the Figure-2 set.
func CollectDecodeBenches(r *Runner, maxBlocks int) ([]DecodeBench, error) {
	var out []DecodeBench
	for _, w := range workloads.Registry() {
		c, err := BuildDecodeCorpus(r, w, maxBlocks)
		if err != nil {
			return nil, err
		}
		b, err := MeasureDecode(c)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
