package experiments

import (
	"fmt"
	"io"

	"repro/internal/compress"
	"repro/internal/gpu/sim"
)

// Report runs the full evaluation — every table and figure — and writes the
// rendered results. It is what `slcbench -all` and EXPERIMENTS.md use.
func Report(w io.Writer, r *Runner) error {
	fmt.Fprintln(w, "SLC reproduction: all tables and figures")
	fmt.Fprintln(w, "========================================")
	fmt.Fprintln(w)

	fmt.Fprint(w, TableII(sim.DefaultConfig()))
	fmt.Fprintln(w)
	fmt.Fprint(w, TableIII())
	fmt.Fprintln(w)
	fmt.Fprint(w, TableI())
	fmt.Fprintln(w)

	f1, err := Figure1(r, compress.MAG32)
	if err != nil {
		return fmt.Errorf("figure 1: %w", err)
	}
	fmt.Fprint(w, f1)
	fmt.Fprintln(w)

	f2, err := Figure2(r, compress.MAG32)
	if err != nil {
		return fmt.Errorf("figure 2: %w", err)
	}
	fmt.Fprint(w, f2)
	fmt.Fprintln(w)

	f7, err := Figure7(r)
	if err != nil {
		return fmt.Errorf("figure 7: %w", err)
	}
	fmt.Fprint(w, f7)
	fmt.Fprintln(w)

	f8, err := Figure8(r)
	if err != nil {
		return fmt.Errorf("figure 8: %w", err)
	}
	fmt.Fprint(w, f8)
	fmt.Fprintln(w)

	f9, err := Figure9(r)
	if err != nil {
		return fmt.Errorf("figure 9: %w", err)
	}
	fmt.Fprint(w, f9)
	fmt.Fprintln(w)

	ab, err := RunAblations(r)
	if err != nil {
		return fmt.Errorf("ablations: %w", err)
	}
	fmt.Fprint(w, ab)
	return nil
}
