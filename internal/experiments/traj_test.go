package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenCells is the tiny workload matrix the trajectory fixture pins: the
// `smoke` matrix subset, i.e. exactly the cells CI records on every push
// with `slcbench -matrix smoke -json` — one workload under the raw
// baseline, the lossless baseline and the paper's main configuration, plus
// compression-only cells covering the post-paper codec families.
func goldenCells(t *testing.T) (full, comp []Cell) {
	full, comp, err := MatrixCells("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 || len(comp) == 0 {
		t.Fatalf("smoke matrix resolved to %d full and %d compression cells", len(full), len(comp))
	}
	return full, comp
}

// TestTrajectoryGolden pins the `slcbench -json` encoding byte-for-byte:
// the Result schema, the JSON field set and the determinism of a fresh run
// all feed the committed fixture. Regenerate deliberately with
//
//	go test ./internal/experiments/ -run TrajectoryGolden -update
//
// after an intentional schema or measurement change.
func TestTrajectoryGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runner integration in -short mode")
	}
	full, comp := goldenCells(t)
	r := NewRunner()
	traj, err := CollectTrajectory(r, "matrix:smoke", full, comp)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := traj.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "bench_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o666); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trajectory diverged from %s (%d vs %d bytes); if the schema "+
			"or measurement changed intentionally, regenerate with -update",
			path, buf.Len(), len(want))
	}
}
