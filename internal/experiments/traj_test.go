package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/compress"
	"repro/internal/slc"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenCells is the tiny workload matrix the trajectory fixture pins: one
// workload under the raw baseline, the lossless baseline and the paper's
// main configuration, plus one compression-only cell.
func goldenCells(t *testing.T) (full, comp []Cell) {
	w := tpWorkload(t)
	full = []Cell{
		{w, BaselineConfig("raw", compress.MAG32)},
		{w, E2MCConfig(compress.MAG32)},
		{w, TSLCConfig(slc.OPT, compress.MAG32, DefaultThresholdBits)},
	}
	comp = []Cell{{w, BaselineConfig("bdi", compress.MAG32)}}
	return full, comp
}

// TestTrajectoryGolden pins the `slcbench -json` encoding byte-for-byte:
// the Result schema, the JSON field set and the determinism of a fresh run
// all feed the committed fixture. Regenerate deliberately with
//
//	go test ./internal/experiments/ -run TrajectoryGolden -update
//
// after an intentional schema or measurement change.
func TestTrajectoryGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runner integration in -short mode")
	}
	full, comp := goldenCells(t)
	r := NewRunner()
	traj, err := CollectTrajectory(r, "golden", full, comp)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := traj.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "bench_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o666); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trajectory diverged from %s (%d vs %d bytes); if the schema "+
			"or measurement changed intentionally, regenerate with -update",
			path, buf.Len(), len(want))
	}
}
