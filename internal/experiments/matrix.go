package experiments

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/compress"
	"repro/internal/slc"
	"repro/internal/workloads"
)

// This file is the matrix-subset registry: a named subset of the evaluation
// matrix is a function producing full-run and compression-only cells, so CI
// and ad-hoc invocations can record a well-chosen slice of the trajectory
// (`slcbench -matrix <name> -json`) without paying for the full sweep. Like
// the codec registry, subsets self-register by name and everything above —
// the cmd binaries, the golden trajectory fixture — selects them by name.

// Matrix is one named cell subset of the evaluation matrix.
type Matrix struct {
	// Name is the registry name, lowercase, used by `slcbench -matrix`.
	Name string

	// Desc is a one-line description shown by `slcbench -list-matrix`.
	Desc string

	// Cells produces the subset: full cells run the complete measurement
	// (timing, energy, error) through Runner.Run; comp cells run the
	// compression-only pipeline through Runner.CompressionOnly. The
	// function is called per use, so subsets defined against the codec or
	// workload registries always reflect the current registered set.
	Cells func() (full, comp []Cell)
}

var matrices = struct {
	sync.RWMutex
	m map[string]Matrix
}{m: make(map[string]Matrix)}

// RegisterMatrix adds a named cell subset. Like compress.Register it panics
// on a duplicate or invalid registration: subsets are wired at init time and
// a bad registration should fail at program start.
func RegisterMatrix(m Matrix) {
	if m.Name == "" {
		panic("experiments: RegisterMatrix with empty name")
	}
	if m.Cells == nil {
		panic(fmt.Sprintf("experiments: RegisterMatrix(%q) with nil Cells", m.Name))
	}
	matrices.Lock()
	defer matrices.Unlock()
	if _, dup := matrices.m[m.Name]; dup {
		panic(fmt.Sprintf("experiments: RegisterMatrix(%q) called twice", m.Name))
	}
	matrices.m[m.Name] = m
}

// LookupMatrix returns the registration for a subset name.
func LookupMatrix(name string) (Matrix, bool) {
	matrices.RLock()
	defer matrices.RUnlock()
	m, ok := matrices.m[name]
	return m, ok
}

// MatrixNames returns all registered subset names, sorted.
func MatrixNames() []string {
	matrices.RLock()
	defer matrices.RUnlock()
	names := make([]string, 0, len(matrices.m))
	for name := range matrices.m { //slclint:allow determinism collected names are sorted before return
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MatrixCells resolves a subset name to its cells, with an error naming the
// available set when the name is unknown.
func MatrixCells(name string) (full, comp []Cell, err error) {
	m, ok := LookupMatrix(name)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown matrix subset %q (available: %v)", name, MatrixNames())
	}
	full, comp = m.Cells()
	return full, comp, nil
}

// workloadByName scans the workload registries (paper and float); a missing
// name yields no cells rather than an error, so subsets stay total functions.
func workloadByName(name string) (workloads.Workload, bool) {
	for _, w := range workloads.All() {
		if w.Info().Name == name {
			return w, true
		}
	}
	return nil, false
}

// WithErrorBound returns a copy of cells with every error-bounded cell's
// configuration rebuilt at the given bound; bound 0 keeps each cell's own.
// Lossless and threshold-lossy cells pass through untouched, so the helper
// can be applied to any subset (slcbench's -bound flag applies it to the
// selected matrix).
func WithErrorBound(cells []Cell, bound float64) ([]Cell, error) {
	if bound == 0 {
		return cells, nil
	}
	out := make([]Cell, len(cells))
	for i, c := range cells {
		out[i] = c
		info, ok := compress.Lookup(c.Config.Codec)
		if !ok || !info.LossyBounded {
			continue
		}
		cfg, err := NamedConfig(c.Config.Codec, c.Config.MAG, c.Config.ThresholdBits, bound)
		if err != nil {
			return nil, err
		}
		out[i].Config = cfg
	}
	return out, nil
}

// NewCodecNames are the codec families added after the paper's original
// evaluation set; the new-codecs subset and the README codec table track
// them.
var NewCodecNames = []string{"lz4b", "zcd"}

// BoundedCodecNames are the error-bounded scientific-float codec families
// (the sz predictors); the float-workloads subset and the README codec table
// track them.
var BoundedCodecNames = []string{"sz-lorenzo", "sz-linear"}

// FloatComparatorNames are the lossless codecs the float-workloads subset
// runs beside the sz family: the float-specialised fpc, the entropy coder
// and the byte-oriented lz4b.
var FloatComparatorNames = []string{"fpc", "e2mc", "lz4b"}

func init() {
	RegisterMatrix(Matrix{
		Name: "fig2",
		Desc: "the Figure 1/2 compression-only sweep at 32 B MAG (the full cached CI path)",
		Cells: func() (full, comp []Cell) {
			return nil, CompressionCells(compress.MAG32)
		},
	})
	RegisterMatrix(Matrix{
		Name: "lossless-only",
		Desc: "every registered lossless codec (traits-driven, so new registrations join automatically) × every workload, compression only",
		Cells: func() (full, comp []Cell) {
			for _, w := range workloads.Registry() {
				for _, name := range compress.Names() {
					info, ok := compress.Lookup(name)
					if !ok || info.Lossy || info.Identity {
						continue
					}
					comp = append(comp, Cell{w, BaselineConfig(name, compress.MAG32)})
				}
			}
			return nil, comp
		},
	})
	RegisterMatrix(Matrix{
		Name: "new-codecs",
		Desc: "the post-paper codec families (lz4b, zcd): compression over every workload plus a timed TP cell each",
		Cells: func() (full, comp []Cell) {
			for _, w := range workloads.Registry() {
				for _, name := range NewCodecNames {
					comp = append(comp, Cell{w, BaselineConfig(name, compress.MAG32)})
				}
			}
			if tp, ok := workloadByName("TP"); ok {
				for _, name := range NewCodecNames {
					full = append(full, Cell{tp, BaselineConfig(name, compress.MAG32)})
				}
			}
			return full, comp
		},
	})
	RegisterMatrix(Matrix{
		Name: "float-workloads",
		Desc: "the HPC float fields under the sz error-bounded family at the default bound vs lossless comparators, a bound sweep on HPC-S and one timed HPC-S cell",
		Cells: func() (full, comp []Cell) {
			for _, w := range workloads.FloatRegistry() {
				for _, name := range BoundedCodecNames {
					comp = append(comp, Cell{w, BoundedConfig(name, compress.MAG32, 0)})
				}
				for _, name := range FloatComparatorNames {
					comp = append(comp, Cell{w, BaselineConfig(name, compress.MAG32)})
				}
			}
			if s, ok := workloadByName("HPC-S"); ok {
				for _, bound := range []float64{1e-2, 1e-4} {
					comp = append(comp, Cell{s, BoundedConfig("sz-lorenzo", compress.MAG32, bound)})
				}
				full = append(full, Cell{s, BoundedConfig("sz-lorenzo", compress.MAG32, 0)})
			}
			return full, comp
		},
	})
	RegisterMatrix(Matrix{
		Name: "smoke",
		Desc: "CI's every-push subset: TP under raw/E2MC/TSLC-OPT (timed) and BDI/LZ4B/ZCD (compression only)",
		Cells: func() (full, comp []Cell) {
			tp, ok := workloadByName("TP")
			if !ok {
				return nil, nil
			}
			full = []Cell{
				{tp, BaselineConfig("raw", compress.MAG32)},
				{tp, E2MCConfig(compress.MAG32)},
				{tp, TSLCConfig(slc.OPT, compress.MAG32, DefaultThresholdBits)},
			}
			for _, name := range append([]string{"bdi"}, NewCodecNames...) {
				comp = append(comp, Cell{tp, BaselineConfig(name, compress.MAG32)})
			}
			return full, comp
		},
	})
}
