package experiments

import (
	"fmt"
	"strings"

	"repro/internal/compress"
	"repro/internal/slc"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig9MAGs are the granularities of the sensitivity study.
var Fig9MAGs = []compress.MAG{compress.MAG16, compress.MAG32, compress.MAG64}

// Fig9 reproduces Figure 9 and the §V-C compression-ratio numbers: TSLC-OPT
// speedup and error at 16/32/64 B MAG (lossy threshold = MAG/2), plus
// E2MC's raw and effective compression ratios per MAG.
type Fig9 struct {
	Benchmarks []string
	Speedup    map[compress.MAG][]float64
	ErrorPct   map[compress.MAG][]float64
	GMSpeedup  map[compress.MAG]float64
	// EffCRGM is E2MC's effective compression ratio GM per MAG (paper:
	// 1.41 / 1.31 / 1.16); RawCRGM is MAG-independent (paper: 1.54).
	EffCRGM map[compress.MAG]float64
	RawCRGM float64
}

// Figure9 runs TSLC-OPT against E2MC at each granularity.
func Figure9(r *Runner) (Fig9, error) {
	f := Fig9{
		Speedup:   map[compress.MAG][]float64{},
		ErrorPct:  map[compress.MAG][]float64{},
		GMSpeedup: map[compress.MAG]float64{},
		EffCRGM:   map[compress.MAG]float64{},
	}
	var rawCRs []float64
	for _, mag := range Fig9MAGs {
		var effCRs []float64
		for _, w := range workloads.Registry() {
			base, err := r.Run(w, E2MCConfig(mag))
			if err != nil {
				return Fig9{}, err
			}
			res, err := r.Run(w, TSLCConfig(slc.OPT, mag, mag.Bits()/2))
			if err != nil {
				return Fig9{}, err
			}
			f.Speedup[mag] = append(f.Speedup[mag], base.Sim.TimeNs/res.Sim.TimeNs)
			f.ErrorPct[mag] = append(f.ErrorPct[mag], res.ErrorFrac*100)
			effCRs = append(effCRs, base.Comp.EffectiveRatio())
			if mag == compress.MAG32 {
				rawCRs = append(rawCRs, base.Comp.RawRatio())
			}
		}
		f.EffCRGM[mag] = stats.Geomean(effCRs)
		f.GMSpeedup[mag] = stats.Geomean(f.Speedup[mag])
	}
	for _, w := range workloads.Registry() {
		f.Benchmarks = append(f.Benchmarks, w.Info().Name)
	}
	f.RawCRGM = stats.Geomean(rawCRs)
	return f, nil
}

// String renders both panels and the §V-C ratios.
func (f Fig9) String() string {
	var b strings.Builder
	b.WriteString("Figure 9a: TSLC-OPT speedup vs E2MC at MAG 16/32/64B (threshold = MAG/2)\n")
	fmt.Fprintf(&b, "%-7s %10s %10s %10s\n", "", "MAG16B", "MAG32B", "MAG64B")
	for i, name := range f.Benchmarks {
		fmt.Fprintf(&b, "%-7s", name)
		for _, mag := range Fig9MAGs {
			fmt.Fprintf(&b, " %10.3f", f.Speedup[mag][i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-7s", "GM")
	for _, mag := range Fig9MAGs {
		fmt.Fprintf(&b, " %10.3f", f.GMSpeedup[mag])
	}
	b.WriteString("\n(paper GM: 1.05 / 1.097 / 1.09; NN +35%, SRAD1 +27%, TP +21% at 64B)\n")

	b.WriteString("\nFigure 9b: application error [%]\n")
	fmt.Fprintf(&b, "%-7s %10s %10s %10s\n", "", "MAG16B", "MAG32B", "MAG64B")
	for i, name := range f.Benchmarks {
		fmt.Fprintf(&b, "%-7s", name)
		for _, mag := range Fig9MAGs {
			fmt.Fprintf(&b, " %10.4f", f.ErrorPct[mag][i])
		}
		b.WriteByte('\n')
	}
	b.WriteString("(paper: higher variation at 64B, e.g. NN 5.2%)\n")

	b.WriteString("\n§V-C: E2MC compression ratios across MAGs\n")
	fmt.Fprintf(&b, "  raw CR GM: %.2f (paper 1.54, MAG-independent)\n", f.RawCRGM)
	for _, mag := range Fig9MAGs {
		fmt.Fprintf(&b, "  effective CR GM at %s: %.2f\n", mag, f.EffCRGM[mag])
	}
	b.WriteString("  (paper: 1.41 / 1.31 / 1.16 at 16/32/64B)\n")
	return b.String()
}
