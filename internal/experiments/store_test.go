package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/compress"
	"repro/internal/resultstore"
	"repro/internal/slc"
	"repro/internal/workloads"
)

func openStore(t *testing.T, dir string) *resultstore.Store {
	t.Helper()
	s, err := resultstore.Open(dir, resultstore.Options{Fingerprint: "test-fp"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// computeCount wires a Runner's Progress to count every non-memoised
// computation (golden runs, table training, full and compression-only
// cells).
func computeCount(r *Runner) *int {
	n := new(int)
	var mu sync.Mutex
	r.Progress = func(s string) {
		for _, p := range []string{"golden run:", "training table:", "run:", "compress:"} {
			if strings.HasPrefix(s, p) {
				mu.Lock()
				*n++
				mu.Unlock()
				return
			}
		}
	}
	return n
}

// TestStoreWarmRunRecomputesNothing is the acceptance property of the
// result store: after a cold run populates the directory, a fresh Runner
// over the same matrix performs zero golden/table/cell computations and
// returns bitwise-identical results.
func TestStoreWarmRunRecomputesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("runner integration in -short mode")
	}
	dir := t.TempDir()
	w := tpWorkload(t)
	cells := []Cell{
		{w, BaselineConfig("raw", compress.MAG32)},
		{w, E2MCConfig(compress.MAG32)},
		{w, TSLCConfig(slc.OPT, compress.MAG32, DefaultThresholdBits)},
	}
	compCell := Cell{w, BaselineConfig("bdi", compress.MAG32)}

	cold := NewRunner()
	cold.Store = openStore(t, dir)
	coldN := computeCount(cold)
	coldRes, err := cold.RunAll(cells, 2)
	if err != nil {
		t.Fatal(err)
	}
	coldComp, err := cold.CompressionOnly(compCell.Workload, compCell.Config)
	if err != nil {
		t.Fatal(err)
	}
	if *coldN == 0 {
		t.Fatal("cold run computed nothing; store test is vacuous")
	}

	warm := NewRunner()
	warm.Store = openStore(t, dir)
	warmN := computeCount(warm)
	warmRes, err := warm.RunAll(cells, 2)
	if err != nil {
		t.Fatal(err)
	}
	warmComp, err := warm.CompressionOnly(compCell.Workload, compCell.Config)
	if err != nil {
		t.Fatal(err)
	}
	if *warmN != 0 {
		t.Errorf("warm run recomputed %d times, want 0", *warmN)
	}
	if !reflect.DeepEqual(warmRes, coldRes) {
		t.Error("warm results differ from cold results")
	}
	if !reflect.DeepEqual(warmComp, coldComp) {
		t.Error("warm compression-only result differs from cold")
	}
	st := warm.StoreStats()
	if st == nil || st.Hits != int64(len(cells)+1) || st.Misses != 0 {
		t.Errorf("warm store stats = %+v, want %d hits and 0 misses", st, len(cells)+1)
	}
}

// TestStoreCorruptionRecomputes truncates every record of a populated
// store; a warm runner must detect the damage, recompute, and still return
// the original results.
func TestStoreCorruptionRecomputes(t *testing.T) {
	if testing.Short() {
		t.Skip("runner integration in -short mode")
	}
	dir := t.TempDir()
	w := tpWorkload(t)
	cfg := E2MCConfig(compress.MAG32)

	cold := NewRunner()
	cold.Store = openStore(t, dir)
	want, err := cold.Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var truncated int
	filepath.Walk(filepath.Join(dir, "objects"), func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() {
			return nil
		}
		if werr := os.Truncate(path, fi.Size()/2); werr != nil {
			t.Fatal(werr)
		}
		truncated++
		return nil
	})
	if truncated == 0 {
		t.Fatal("cold run left no store records to corrupt")
	}

	warm := NewRunner()
	warm.Store = openStore(t, dir)
	n := computeCount(warm)
	got, err := warm.Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *n == 0 {
		t.Error("truncated records were trusted: warm run computed nothing")
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("recomputed result differs from original")
	}
	if st := warm.StoreStats(); st.BadRecords == 0 {
		t.Errorf("store stats report no bad records after truncation: %+v", st)
	}
}

// TestStoreKeySensitivity pins the cell addressing: every knob that changes
// what a cell measures must change its key, and assembling the same cell
// twice must not.
func TestStoreKeySensitivity(t *testing.T) {
	w, err := workloads.ByName("TP")
	if err != nil {
		t.Fatal(err)
	}
	nn, err := workloads.ByName("NN")
	if err != nil {
		t.Fatal(err)
	}
	base := NewRunner()
	key := func(r *Runner, w workloads.Workload, cfg Config) resultstore.Key {
		t.Helper()
		k, err := resultstore.NewKey("fp", kindCell, r.cellMaterial(w, cfg))
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	cfg := TSLCConfig(slc.OPT, compress.MAG32, DefaultThresholdBits)
	k0 := key(base, w, cfg)
	if again := key(base, w, cfg); again != k0 {
		t.Error("same cell keyed twice hashes differently")
	}

	simw := NewRunner()
	simw.SimWorkers = 8
	variants := map[string]resultstore.Key{
		"MAG":         key(base, w, TSLCConfig(slc.OPT, compress.MAG64, DefaultThresholdBits)),
		"threshold":   key(base, w, TSLCConfig(slc.OPT, compress.MAG32, 2*DefaultThresholdBits)),
		"codec":       key(base, w, TSLCConfig(slc.PRED, compress.MAG32, DefaultThresholdBits)),
		"workload":    key(base, nn, cfg),
		"sim workers": key(simw, w, cfg),
	}
	seen := map[resultstore.Key]string{k0: "base"}
	for name, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("changing %s does not change the cell key (collides with %s)", name, prev)
		}
		seen[k] = name
	}
}

// TestStoreSharedByConcurrentRunners races two store-backed Runners (as two
// slcbench processes would) over one directory under -race: no corruption,
// and a subsequent warm runner sees a fully valid store.
func TestStoreSharedByConcurrentRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("runner integration in -short mode")
	}
	dir := t.TempDir()
	w := tpWorkload(t)
	cells := []Cell{
		{w, BaselineConfig("raw", compress.MAG32)},
		{w, E2MCConfig(compress.MAG32)},
	}

	serial := NewRunner()
	want := make([]RunResult, len(cells))
	for i, c := range cells {
		res, err := serial.Run(c.Workload, c.Config)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	var wg sync.WaitGroup
	results := make([][]RunResult, 2)
	errs := make([]error, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := NewRunner()
			r.Store = openStore(t, dir)
			results[i], errs[i] = r.RunAll(cells, 2)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Errorf("concurrent runner %d diverged from serial results", i)
		}
	}

	warm := NewRunner()
	warm.Store = openStore(t, dir)
	n := computeCount(warm)
	got, err := warm.RunAll(cells, 2)
	if err != nil {
		t.Fatal(err)
	}
	if *n != 0 {
		t.Errorf("store left by racing runners caused %d recomputations", *n)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("warm results after concurrent population differ from serial")
	}
}
