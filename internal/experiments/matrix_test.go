package experiments

import (
	"strings"
	"testing"

	"repro/internal/compress"
)

// TestMatrixRegistryResolves pins the built-in subset names and asserts
// every registered subset resolves to cells whose codec names are valid
// registry names — a subset referring to an unregistered codec would
// otherwise only fail when someone runs it.
func TestMatrixRegistryResolves(t *testing.T) {
	want := []string{"fig2", "lossless-only", "new-codecs", "smoke"}
	got := MatrixNames()
	if len(got) < len(want) {
		t.Fatalf("MatrixNames() = %v, want at least %v", got, want)
	}
	for _, name := range want {
		if _, ok := LookupMatrix(name); !ok {
			t.Errorf("built-in matrix subset %q not registered (have %v)", name, got)
		}
	}
	for _, name := range got {
		full, comp, err := MatrixCells(name)
		if err != nil {
			t.Fatalf("MatrixCells(%q): %v", name, err)
		}
		if len(full)+len(comp) == 0 {
			t.Errorf("matrix subset %q resolves to no cells", name)
		}
		for _, c := range append(append([]Cell{}, full...), comp...) {
			if _, ok := compress.Lookup(c.Config.Codec); !ok {
				t.Errorf("matrix subset %q cell %s × %s names unregistered codec %q",
					name, c.Workload.Info().Name, c.Config.Name, c.Config.Codec)
			}
			if c.Workload == nil {
				t.Errorf("matrix subset %q has a cell with a nil workload", name)
			}
		}
	}
}

// TestMatrixUnknownName asserts the error for a bad -matrix value names the
// available set, matching the codec registry's behaviour.
func TestMatrixUnknownName(t *testing.T) {
	_, _, err := MatrixCells("no-such-subset")
	if err == nil {
		t.Fatal("MatrixCells(no-such-subset) succeeded")
	}
	if !strings.Contains(err.Error(), "smoke") {
		t.Errorf("error %q does not list the available subsets", err)
	}
}

// TestMatrixSmokeCoversNewCodecs asserts CI's every-push subset exercises
// the post-paper codec families, so a bench.json trajectory exists for them
// from the commit that introduced them onward.
func TestMatrixSmokeCoversNewCodecs(t *testing.T) {
	_, comp, err := MatrixCells("smoke")
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[string]bool)
	for _, c := range comp {
		covered[c.Config.Codec] = true
	}
	for _, name := range NewCodecNames {
		if !covered[name] {
			t.Errorf("smoke subset does not cover new codec %q", name)
		}
	}
}

// TestRegisterMatrixValidates asserts the registration panics the same way
// compress.Register does: subsets are wired at init time and a bad
// registration should fail at program start, not at first use.
func TestRegisterMatrixValidates(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { RegisterMatrix(Matrix{Cells: func() ([]Cell, []Cell) { return nil, nil }}) })
	mustPanic("nil Cells", func() { RegisterMatrix(Matrix{Name: "broken"}) })
	mustPanic("duplicate", func() {
		RegisterMatrix(Matrix{Name: "smoke", Cells: func() ([]Cell, []Cell) { return nil, nil }})
	})
}
