package experiments

import (
	"fmt"
	"strings"

	"repro/internal/compress"
	"repro/internal/slc"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Fig7Variants are the three TSLC schemes of the main evaluation.
var Fig7Variants = []slc.Variant{slc.SIMP, slc.PRED, slc.OPT}

// DefaultThresholdBits is the paper's main lossy threshold (16 B).
const DefaultThresholdBits = 16 * 8

// Fig7 reproduces Figure 7: speedup and application error of TSLC-SIMP,
// TSLC-PRED and TSLC-OPT normalised to E2MC, at 32 B MAG with a 16 B lossy
// threshold.
type Fig7 struct {
	Benchmarks []string
	Speedup    map[slc.Variant][]float64
	ErrorPct   map[slc.Variant][]float64
	GMSpeedup  map[slc.Variant]float64
	// GMErrorPctOPT is the geometric mean of the per-benchmark errors for
	// TSLC-OPT (the paper reports 0.99% as the GM of per-benchmark MRE).
	GMErrorPctOPT float64
}

// Figure7 runs the full pipeline for the baseline and the three variants.
func Figure7(r *Runner) (Fig7, error) {
	f := Fig7{
		Speedup:   map[slc.Variant][]float64{},
		ErrorPct:  map[slc.Variant][]float64{},
		GMSpeedup: map[slc.Variant]float64{},
	}
	for _, w := range workloads.Registry() {
		base, err := r.Run(w, E2MCConfig(compress.MAG32))
		if err != nil {
			return Fig7{}, err
		}
		f.Benchmarks = append(f.Benchmarks, w.Info().Name)
		for _, v := range Fig7Variants {
			res, err := r.Run(w, TSLCConfig(v, compress.MAG32, DefaultThresholdBits))
			if err != nil {
				return Fig7{}, err
			}
			f.Speedup[v] = append(f.Speedup[v], base.Sim.TimeNs/res.Sim.TimeNs)
			f.ErrorPct[v] = append(f.ErrorPct[v], res.ErrorFrac*100)
		}
	}
	for _, v := range Fig7Variants {
		f.GMSpeedup[v] = stats.Geomean(f.Speedup[v])
	}
	f.GMErrorPctOPT = stats.Geomean(f.ErrorPct[slc.OPT])
	return f, nil
}

// String renders both panels of the figure.
func (f Fig7) String() string {
	var b strings.Builder
	b.WriteString("Figure 7a: speedup normalised to E2MC (MAG 32B, threshold 16B)\n")
	fmt.Fprintf(&b, "%-7s", "")
	for _, v := range Fig7Variants {
		fmt.Fprintf(&b, " %10s", v)
	}
	b.WriteByte('\n')
	for i, name := range f.Benchmarks {
		fmt.Fprintf(&b, "%-7s", name)
		for _, v := range Fig7Variants {
			fmt.Fprintf(&b, " %10.3f", f.Speedup[v][i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-7s", "GM")
	for _, v := range Fig7Variants {
		fmt.Fprintf(&b, " %10.3f", f.GMSpeedup[v])
	}
	b.WriteString("\n(paper GM: 1.090 / 1.098 / 1.097; max ≈1.17 DCT, min ≈1.05 FWT, BP)\n")

	b.WriteString("\nFigure 7b: application error [%]\n")
	fmt.Fprintf(&b, "%-7s", "")
	for _, v := range Fig7Variants {
		fmt.Fprintf(&b, " %10s", v)
	}
	b.WriteByte('\n')
	for i, name := range f.Benchmarks {
		fmt.Fprintf(&b, "%-7s", name)
		for _, v := range Fig7Variants {
			fmt.Fprintf(&b, " %10.4f", f.ErrorPct[v][i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "GM error (TSLC-OPT): %.2f%%  (paper: 0.99%%; <3%% except JM 7.3%%, BS 4.4%%)\n",
		f.GMErrorPctOPT)
	return b.String()
}
