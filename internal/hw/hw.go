// Package hw is the RTL-synthesis substitute: an analytical gate-count model
// of the TSLC hardware of Figure 5 (adder tree, comparator stage, priority
// encoders, selector) and the decompressor-side prediction logic. It
// regenerates Table I — frequency, area and power of the SLC compressor and
// decompressor at 32 nm — and the paper's GTX580 overhead percentages.
//
// The paper synthesised Verilog with Synopsys Design Compiler; here each
// structure is counted in NAND2-equivalent gates and converted with 32 nm
// standard-cell constants. Absolute parity with a commercial flow is not
// expected; the model lands in the same order of magnitude and preserves the
// paper's conclusion (the overhead is negligible).
package hw

import (
	"fmt"
	"math"

	"repro/internal/compress"
)

// Tech holds 32 nm standard-cell constants.
type Tech struct {
	NAND2AreaUM2  float64 // µm² per NAND2-equivalent
	FO4DelayPS    float64 // FO4 inverter delay
	GateEnergyFJ  float64 // switching energy per gate-cycle, activity folded
	GateLeakageNW float64 // leakage per gate
	RouteMargin   float64 // wire/clocking slowdown factor on logic depth
}

// Tech32nm returns typical 32 nm values.
func Tech32nm() Tech {
	return Tech{
		NAND2AreaUM2:  0.70,
		FO4DelayPS:    14,
		GateEnergyFJ:  0.085,
		GateLeakageNW: 4,
		RouteMargin:   2.0,
	}
}

// GTX580 reference figures for the overhead percentages.
const (
	GTX580AreaMM2 = 520.0
	GTX580TDPW    = 244.0
)

// Block is one counted hardware structure.
type Block struct {
	Name  string
	Gates int
}

// Unit is a synthesised unit: its gate inventory and derived figures.
type Unit struct {
	Name     string
	Blocks   []Block
	FreqGHz  float64
	AreaMM2  float64
	PowerMW  float64
	DepthFO4 int // critical-path logic depth per pipeline stage
}

// Gates sums the inventory.
func (u Unit) Gates() int {
	n := 0
	for _, b := range u.Blocks {
		n += b.Gates
	}
	return n
}

// gatesPerAdderBit is the NAND2-equivalent cost of one adder bit
// (sum + carry logic).
const gatesPerAdderBit = 12

// gatesPerCompareBit is the cost of one magnitude-comparator bit.
const gatesPerCompareBit = 6

// adderTreeGates counts the Figure 5 tree: pairwise adders over the 64
// per-symbol code lengths, plus the TSLC-OPT extra nodes (8 six-symbol and
// 4 twelve-symbol sums).
func adderTreeGates(maxSymbolBits int) (gates int, widestBits int) {
	width := bitsFor(maxSymbolBits) // leaf code-length width
	n := compress.SymbolsPerBlock / 2
	for level := 1; n >= 1; level++ {
		width++ // sums double per level
		gates += n * width * gatesPerAdderBit
		widestBits = width
		n /= 2
	}
	// TSLC-OPT extra nodes: 8 adders at the 4-symbol width, 4 at the
	// 8-symbol width.
	gates += 8 * (bitsFor(maxSymbolBits) + 3) * gatesPerAdderBit
	gates += 4 * (bitsFor(maxSymbolBits) + 4) * gatesPerAdderBit
	return gates, widestBits
}

// bitsFor returns the bit width holding values up to max.
func bitsFor(max int) int {
	return int(math.Ceil(math.Log2(float64(max + 1))))
}

// comparatorGates counts the parallel ≥ comparisons of every node sum
// against the extra bits, at each level's sum width.
func comparatorGates(maxSymbolBits int) int {
	width := bitsFor(maxSymbolBits)
	gates := 0
	for n := compress.SymbolsPerBlock; n >= 1; n /= 2 {
		gates += n * width * gatesPerCompareBit
		width++
	}
	// OPT extra nodes compare at the mid-level widths.
	gates += 12 * (bitsFor(maxSymbolBits) + 4) * gatesPerCompareBit
	return gates
}

// priorityEncoderGates counts one encoder per tree level plus the final
// lowest-level selector.
func priorityEncoderGates() int {
	gates := 0
	for n := compress.SymbolsPerBlock; n >= 1; n /= 2 {
		gates += 5 * n // ~5 gates per input of a priority encoder
	}
	gates += 8 * 40 // level mux + start-symbol shift logic
	return gates
}

// Compressor models the TSLC additions to the E2MC compressor for the given
// maximum per-symbol code length (escape length + 16 raw bits).
func Compressor(maxSymbolBits int, t Tech) Unit {
	tree, widest := adderTreeGates(maxSymbolBits)
	blocks := []Block{
		{"adder tree (incl. OPT nodes)", tree},
		{"comparator stage", comparatorGates(maxSymbolBits)},
		{"priority encoders + selector", priorityEncoderGates()},
		{"pipeline registers", 60 * 8}, // ~60 flops × 8 gates
		{"code-length fetch control", 350},
	}
	u := Unit{Name: "TSLC compressor", Blocks: blocks}
	// Pipeline stage critical path: one widest adder (ripple ≈ 2 FO4 per
	// bit) — the comparator stage is shallower.
	u.DepthFO4 = 2*widest + 6
	finish(&u, t, 1.0)
	return u
}

// Decompressor models the TSLC additions to the E2MC decompressor: the
// predicted-value index generation and span masking (§III-E).
func Decompressor(t Tech) Unit {
	blocks := []Block{
		{"span decode (ss+len compare)", 64 * 4},
		{"predicted-symbol index mux", 64 * 2},
		{"control", 120},
	}
	u := Unit{Name: "TSLC decompressor", Blocks: blocks}
	// The decompressor integrates into E2MC's slower decode clock domain;
	// its path is a 64-way mux plus compare.
	u.DepthFO4 = 30
	finish(&u, t, 0.56) // lower switching activity: runs only on lossy blocks
	return u
}

// finish derives frequency, area and power from the inventory.
func finish(u *Unit, t Tech, activity float64) {
	gates := float64(u.Gates())
	u.AreaMM2 = gates * t.NAND2AreaUM2 * 1e-6
	periodPS := float64(u.DepthFO4) * t.FO4DelayPS * t.RouteMargin
	u.FreqGHz = 1e3 / periodPS
	dynMW := gates * t.GateEnergyFJ * activity * u.FreqGHz * 1e-3 // fJ×GHz = µW
	leakMW := gates * t.GateLeakageNW * 1e-6
	u.PowerMW = dynMW + leakMW
}

// E2MCCompressorAreaMM2 estimates the E2MC compressor the TSLC logic
// extends (§III-H compares against it). The dominant structures: the
// 1024-entry × ~26-bit code table replicated/banked so 64 symbols can be
// looked up per block (8× banking), the online-sampling unit that counts
// symbol frequencies and rebuilds the table (counter SRAM + sorting
// network, estimated as an area constant), and the barrel shifters packing
// four parallel decoding ways. SRAM density at 32 nm ≈ 0.16 µm²/bit plus
// periphery. This is a coarse estimate — the point is the ratio's order of
// magnitude, not parity with the paper's Synopsys run.
func E2MCCompressorAreaMM2(t Tech) float64 {
	const (
		tableBits     = 1024 * 26
		banking       = 8 // parallel code lookups per cycle
		sramUM2PerBit = 0.16
		sramPeriphery = 1.6
		samplerMM2    = 0.045    // frequency counters + table-construction unit
		packGates     = 4 * 2600 // four way-packers (barrel shifter + control)
		lookupGates   = 6400     // symbol match/index logic
	)
	sram := float64(tableBits) * banking * sramUM2PerBit * sramPeriphery * 1e-6
	logic := float64(packGates+lookupGates) * t.NAND2AreaUM2 * 1e-6
	return sram + samplerMM2 + logic
}

// TableI bundles the two units and the GTX580 percentages.
type TableI struct {
	Comp, Decomp Unit
	AreaPct      float64 // of GTX580 die
	PowerPct     float64 // of GTX580 TDP
	// TSLCOfE2MCPct is the TSLC compressor area as a share of the E2MC
	// compressor it extends (paper §III-H: 5.6%).
	TSLCOfE2MCPct float64
}

// Model computes Table I for the default E2MC configuration (15-bit codes +
// 16 raw escape bits).
func Model() TableI {
	t := Tech32nm()
	c := Compressor(31, t)
	d := Decompressor(t)
	return TableI{
		Comp:          c,
		Decomp:        d,
		AreaPct:       (c.AreaMM2 + d.AreaMM2) / GTX580AreaMM2 * 100,
		PowerPct:      (c.PowerMW + d.PowerMW) / 1e3 / GTX580TDPW * 100,
		TSLCOfE2MCPct: c.AreaMM2 / E2MCCompressorAreaMM2(t) * 100,
	}
}

// String renders the table.
func (t TableI) String() string {
	return fmt.Sprintf(
		"Table I: frequency, area, and power of SLC (32 nm analytical model)\n"+
			"                 Freq (GHz)  Area (mm2)  Power (mW)\n"+
			"  Compressor      %8.2f    %8.5f    %8.3f\n"+
			"  Decompressor    %8.2f    %8.5f    %8.3f\n"+
			"  GTX580 overhead: area %.4f%%  power %.4f%%\n"+
			"  TSLC adds %.1f%% of the E2MC compressor area (paper §III-H: 5.6%%)\n"+
			"  (paper: 1.43 GHz / 0.00830 mm2 / 1.620 mW; 0.80 GHz / 0.00030 mm2 / 0.210 mW;\n"+
			"   0.0015%% area, 0.0008%% power)",
		t.Comp.FreqGHz, t.Comp.AreaMM2, t.Comp.PowerMW,
		t.Decomp.FreqGHz, t.Decomp.AreaMM2, t.Decomp.PowerMW,
		t.AreaPct, t.PowerPct, t.TSLCOfE2MCPct)
}
