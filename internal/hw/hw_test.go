package hw

import (
	"strings"
	"testing"
)

func TestModelOrderOfMagnitude(t *testing.T) {
	m := Model()
	// The paper's Table I: compressor 1.43 GHz / 0.0083 mm² / 1.62 mW.
	// The analytical model must land in the same order of magnitude.
	if m.Comp.AreaMM2 < 0.002 || m.Comp.AreaMM2 > 0.03 {
		t.Errorf("compressor area %.5f mm² outside [0.002, 0.03]", m.Comp.AreaMM2)
	}
	if m.Comp.FreqGHz < 0.7 || m.Comp.FreqGHz > 3.0 {
		t.Errorf("compressor frequency %.2f GHz outside [0.7, 3.0]", m.Comp.FreqGHz)
	}
	if m.Comp.PowerMW < 0.3 || m.Comp.PowerMW > 8 {
		t.Errorf("compressor power %.3f mW outside [0.3, 8]", m.Comp.PowerMW)
	}
	// Decompressor is tiny: ≤ a tenth of the compressor in area.
	if m.Decomp.AreaMM2 > m.Comp.AreaMM2/5 {
		t.Errorf("decompressor area %.5f not ≪ compressor %.5f", m.Decomp.AreaMM2, m.Comp.AreaMM2)
	}
}

func TestOverheadNegligible(t *testing.T) {
	m := Model()
	// Paper: 0.0015% area, 0.0008% power of GTX580. Ours must stay below
	// a hundredth of a percent too.
	if m.AreaPct > 0.01 {
		t.Errorf("area overhead %.5f%% not negligible", m.AreaPct)
	}
	if m.PowerPct > 0.01 {
		t.Errorf("power overhead %.5f%% not negligible", m.PowerPct)
	}
}

func TestGateInventoryPositive(t *testing.T) {
	m := Model()
	for _, u := range []Unit{m.Comp, m.Decomp} {
		if u.Gates() <= 0 {
			t.Errorf("%s has no gates", u.Name)
		}
		for _, b := range u.Blocks {
			if b.Gates <= 0 {
				t.Errorf("%s block %q has %d gates", u.Name, b.Name, b.Gates)
			}
		}
	}
}

func TestAdderTreeDominates(t *testing.T) {
	// The Figure 5 structure is adder-dominated; the tree must be the
	// largest single block.
	m := Model()
	var tree, max int
	for _, b := range m.Comp.Blocks {
		if strings.HasPrefix(b.Name, "adder tree") {
			tree = b.Gates
		}
		if b.Gates > max {
			max = b.Gates
		}
	}
	if tree != max {
		t.Errorf("adder tree (%d gates) is not the largest block (max %d)", tree, max)
	}
}

func TestStringMentionsPaperNumbers(t *testing.T) {
	s := Model().String()
	for _, want := range []string{"1.43", "0.00830", "1.620", "Compressor", "Decompressor"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I rendering missing %q", want)
		}
	}
}

func TestBitsFor(t *testing.T) {
	for _, tt := range []struct{ in, want int }{{1, 1}, {3, 2}, {31, 5}, {32, 6}, {63, 6}} {
		if got := bitsFor(tt.in); got != tt.want {
			t.Errorf("bitsFor(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestTSLCIsSmallFractionOfE2MC(t *testing.T) {
	m := Model()
	// Paper §III-H: TSLC adds only 5.6% of E2MC's area. Our coarse model
	// must land in the same small-fraction regime (single-digit percent,
	// give or take).
	if m.TSLCOfE2MCPct <= 0 || m.TSLCOfE2MCPct > 15 {
		t.Errorf("TSLC/E2MC area = %.1f%%, want a small fraction (paper 5.6%%)", m.TSLCOfE2MCPct)
	}
	if e := E2MCCompressorAreaMM2(Tech32nm()); e < 0.05 || e > 0.5 {
		t.Errorf("E2MC compressor area %.4f mm² implausible (paper implies ≈0.148)", e)
	}
}
