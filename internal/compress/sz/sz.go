// Package sz implements an error-bounded lossy codec family for scientific
// float data, after the SZ/cuSZ line (Tao et al., IPDPS 2017; Tian et al.,
// PACT 2020): predict each value from its reconstructed predecessors,
// quantize the prediction residual against a user-supplied absolute error
// bound, and entropy-code the quantization codes with a static canonical
// Huffman codebook. Two predictors are provided — Lorenzo (previous value)
// and 1-D linear extrapolation — registered as "sz-lorenzo" and "sz-linear".
//
// The contract differs from the TSLC family: instead of a bounded span of
// approximated symbols, every reconstructed value satisfies
// |reconstructed − original| ≤ bound. The encoder enforces this
// structurally: each lane's reconstruction is computed during encoding with
// exactly the arithmetic the decoder uses, and any lane whose reconstruction
// would miss the bound (or whose value is non-finite — NaN and ±Inf pass
// through bit-exact) is stored as a 32-bit literal instead.
package sz

import (
	"fmt"
	"math"

	"repro/internal/compress"
	"repro/internal/compress/e2mc"
)

// DefaultBound is the absolute error bound used when BuildContext.ErrorBound
// is zero. 1e-3 is the loosest bound of the property-test sweep and a common
// operating point in the SZ literature's absolute-bound mode.
const DefaultBound = 1e-3

const (
	// maskBits is the per-block header: one bit per 32-bit lane, set when
	// the lane is stored as a literal rather than a quantization code.
	maskBits = compress.WordsPerBlock

	// literalBits is the cost of a literal lane: the raw IEEE-754 word.
	literalBits = 32

	// numCodes is the quantization-code alphabet size: zigzagged residual
	// codes in [-128, 127] map to [0, 255]. Residuals outside the range
	// fall back to a literal.
	numCodes = 256
	maxQuant = 127
	minQuant = -128

	// codebookMaxLen caps codeword length. 14 bits keeps the decode LUT at
	// 16K entries and still prices the rarest codes well under the 32-bit
	// literal fallback.
	codebookMaxLen = 14
)

// Predictor selects the prediction function applied to the reconstructed
// value chain.
type Predictor int

const (
	// Lorenzo predicts each value as its reconstructed predecessor — the
	// 1-D Lorenzo predictor of SZ.
	Lorenzo Predictor = iota

	// Linear predicts by 1-D linear extrapolation from the two previous
	// reconstructed values (2·prev − prev2).
	Linear
)

func (p Predictor) String() string {
	if p == Linear {
		return "linear"
	}
	return "lorenzo"
}

// codebook is the static entropy code over the 256 zigzag quantization
// codes, built once at package init from a geometric prior: code u is
// expected roughly twice as often as code u+1, which matches the sharply
// peaked residual histograms of smooth fields and degrades gracefully on
// turbulent ones. Halving weights give the near-zero codes 1–3 bit
// codewords while the package-merge length limit prices the whole tail at
// codebookMaxLen bits.
var codebook = e2mc.MustCodebook(geometricWeights(), codebookMaxLen)

func geometricWeights() []uint64 {
	w := make([]uint64, numCodes)
	for u := range w {
		shift := u
		if shift > 62 {
			shift = 62
		}
		w[u] = 1 << uint(62-shift)
	}
	return w
}

// Codec is one sz variant: a predictor bound to an absolute error bound.
type Codec struct {
	pred  Predictor
	bound float64
	step  float64 // quantization step: 2·bound
}

// New builds an sz codec. A zero bound selects DefaultBound; negative,
// NaN or infinite bounds are rejected.
func New(pred Predictor, bound float64) (*Codec, error) {
	if bound == 0 {
		bound = DefaultBound
	}
	if math.IsNaN(bound) || math.IsInf(bound, 0) || bound < 0 {
		return nil, fmt.Errorf("sz: error bound must be positive and finite, got %v", bound)
	}
	return &Codec{pred: pred, bound: bound, step: 2 * bound}, nil
}

// Bound returns the codec's absolute error bound.
func (c *Codec) Bound() float64 { return c.bound }

// Name implements Codec.
func (c *Codec) Name() string {
	if c.pred == Linear {
		return "SZ-LINEAR"
	}
	return "SZ-LORENZO"
}

// chain is the reconstructed-value history the predictor reads. Encoder and
// decoder advance identical chains through identical helpers, so the
// encoder's bound verification sees exactly the values the decoder will
// reconstruct.
type chain struct {
	prev, prev2 float64
}

func (ch *chain) reset() { ch.prev, ch.prev2 = 0, 0 }

func (ch *chain) predict(pred Predictor) float64 {
	if pred == Linear {
		// 2·prev is exact in binary floating point; the subtraction is one
		// rounded operation on both encode and decode paths.
		return 2*ch.prev - ch.prev2
	}
	return ch.prev
}

func (ch *chain) push(v float64) { ch.prev2, ch.prev = ch.prev, v }

// reconstruct dequantizes one residual against a prediction. The explicit
// float64 conversions pin the rounding points so the compiler cannot fuse
// the multiply-add: encoder and decoder must agree bit-for-bit.
func reconstruct(pred float64, q int32, step float64) float32 {
	return float32(pred + float64(float64(q)*step))
}

func zigzag(q int32) int   { return int(uint32(q<<1) ^ uint32(q>>31)) }
func unzigzag(u int) int32 { return int32(uint32(u)>>1) ^ -int32(uint32(u)&1) }

func isFinite32(v float32) bool {
	f := float64(v)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// analyze runs the shared encode pass over one block: for each 32-bit lane
// it decides literal vs quantization code, records the zigzag code and the
// word the decoder will reconstruct, and totals the encoded bits. It is the
// single source of truth for Compress, CompressedBits and SyncBlock, and it
// allocates nothing — SyncBlock keeps the pipeline's steady state
// allocation-free.
//
//slclint:allocfree
func (c *Codec) analyze(block []byte, codes *[compress.WordsPerBlock]uint16, recon *[compress.WordsPerBlock]uint32) (bits int, mask uint32, lossy bool) {
	bits = maskBits
	words := compress.Words(block)
	var ch chain
	for i := 0; i < compress.WordsPerBlock; i++ {
		w := words[i]
		v := math.Float32frombits(w)
		if rw, q, ok := c.quantizeLane(&ch, v); ok {
			codes[i] = uint16(zigzag(q))
			recon[i] = rw
			bits += codebook.Bits(int(codes[i]))
			if rw != w {
				lossy = true
			}
			continue
		}
		// Literal lane: stored bit-exact. Non-finite values reset the chain
		// so a NaN does not poison every following prediction.
		mask |= 1 << uint(i)
		recon[i] = w
		bits += literalBits
		if isFinite32(v) {
			ch.push(float64(v))
		} else {
			ch.reset()
		}
	}
	return bits, mask, lossy
}

// quantizeLane attempts to encode one value as a quantization code against
// the chain's prediction. On success it advances the chain with the
// reconstructed value and returns the reconstructed word; on failure the
// chain is untouched and the caller stores a literal.
func (c *Codec) quantizeLane(ch *chain, v float32) (rw uint32, q int32, ok bool) {
	if !isFinite32(v) {
		return 0, 0, false
	}
	pred := ch.predict(c.pred)
	delta := float64(v) - pred
	qf := math.Round(delta / c.step)
	if math.IsNaN(qf) || qf < minQuant || qf > maxQuant {
		return 0, 0, false
	}
	q = int32(qf)
	r := reconstruct(pred, q, c.step)
	if !isFinite32(r) || math.Abs(float64(r)-float64(v)) > c.bound {
		return 0, 0, false
	}
	ch.push(float64(r))
	return math.Float32bits(r), q, true
}

// Compress implements Codec. The payload is the 32-bit literal mask followed
// by the lanes in order: a raw 32-bit word for literal lanes, a codebook
// codeword otherwise. Blocks whose encoding would reach BlockBits are stored
// raw (Bits == BlockBits, payload is the block) and are never lossy.
func (c *Codec) Compress(block []byte) compress.Encoded {
	if err := compress.CheckBlock(block); err != nil {
		panic(err)
	}
	var codes [compress.WordsPerBlock]uint16
	var recon [compress.WordsPerBlock]uint32
	bits, mask, lossy := c.analyze(block, &codes, &recon)
	if bits >= compress.BlockBits {
		p := make([]byte, compress.BlockSize)
		copy(p, block)
		return compress.Encoded{Bits: compress.BlockBits, Payload: p}
	}
	w := compress.NewBitWriter(bits)
	w.WriteBits(uint64(mask), maskBits)
	words := compress.Words(block)
	for i := 0; i < compress.WordsPerBlock; i++ {
		if mask&(1<<uint(i)) != 0 {
			w.WriteBits(uint64(words[i]), literalBits)
		} else {
			codebook.Encode(w, int(codes[i]))
		}
	}
	return compress.Encoded{Bits: w.Len(), Payload: w.Bytes(), Lossy: lossy}
}

// CompressedBits implements SizeOnly.
func (c *Codec) CompressedBits(block []byte) int {
	if err := compress.CheckBlock(block); err != nil {
		panic(err)
	}
	var codes [compress.WordsPerBlock]uint16
	var recon [compress.WordsPerBlock]uint32
	bits, _, _ := c.analyze(block, &codes, &recon)
	if bits >= compress.BlockBits {
		return compress.BlockBits
	}
	return bits
}

// SyncBlock implements Syncer: size the block and apply the lossy
// reconstruction in place, with no bitstream. Raw-fallback blocks are left
// untouched.
func (c *Codec) SyncBlock(block []byte) (int, bool) {
	if err := compress.CheckBlock(block); err != nil {
		panic(err)
	}
	var codes [compress.WordsPerBlock]uint16
	var recon [compress.WordsPerBlock]uint32
	bits, _, lossy := c.analyze(block, &codes, &recon)
	if bits >= compress.BlockBits {
		return compress.BlockBits, false
	}
	if lossy {
		compress.PutWords(block, recon)
	}
	return bits, lossy
}

// Decompress implements Codec, reconstructing through the same chain and
// reconstruct helper the encoder verified against.
func (c *Codec) Decompress(enc compress.Encoded, dst []byte) error {
	if len(dst) < compress.BlockSize {
		return fmt.Errorf("sz: dst must hold %d bytes, got %d", compress.BlockSize, len(dst))
	}
	if enc.Bits >= compress.BlockBits {
		if len(enc.Payload) < compress.BlockSize {
			return fmt.Errorf("sz: raw payload must be %d bytes, got %d", compress.BlockSize, len(enc.Payload))
		}
		copy(dst, enc.Payload[:compress.BlockSize])
		return nil
	}
	r := compress.NewBitReader(enc.Payload)
	mask := uint32(r.PeekBits(maskBits))
	r.SkipBits(maskBits)
	var words [compress.WordsPerBlock]uint32
	var ch chain
	for i := 0; i < compress.WordsPerBlock; i++ {
		if mask&(1<<uint(i)) != 0 {
			w := uint32(r.PeekBits(literalBits))
			r.SkipBits(literalBits)
			words[i] = w
			if v := math.Float32frombits(w); isFinite32(v) {
				ch.push(float64(v))
			} else {
				ch.reset()
			}
			continue
		}
		u, ok := codebook.Decode(r)
		if !ok {
			return fmt.Errorf("sz: invalid codeword in lane %d", i)
		}
		rec := reconstruct(ch.predict(c.pred), unzigzag(u), c.step)
		words[i] = math.Float32bits(rec)
		ch.push(float64(rec))
	}
	if r.Overrun() {
		return fmt.Errorf("sz: truncated payload (%d bits)", enc.Bits)
	}
	compress.PutWords(dst, words)
	return nil
}
