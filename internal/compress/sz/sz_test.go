package sz_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/compress"
	_ "repro/internal/compress/fpc" // the lossless comparator
	"repro/internal/compress/sz"
	"repro/internal/workloads"
)

// floatFields names the three HPC float generators the property tests sweep.
var floatFields = []struct {
	name string
	gen  func(n int, seed uint64) []float32
}{
	{"smooth", workloads.SmoothField},
	{"turbulent", workloads.TurbulentField},
	{"sparse", workloads.SparseField},
}

// blocksOf packs a float field into 128-byte blocks (discarding any ragged
// tail, which the generators' power-of-two sizes never produce).
func blocksOf(vals []float32) [][]byte {
	per := compress.BlockSize / 4
	n := len(vals) / per
	blocks := make([][]byte, n)
	for b := 0; b < n; b++ {
		var w [compress.WordsPerBlock]uint32
		for i := range w {
			w[i] = math.Float32bits(vals[b*per+i])
		}
		blk := make([]byte, compress.BlockSize)
		compress.PutWords(blk, w)
		blocks[b] = blk
	}
	return blocks
}

func maxLaneErr(t *testing.T, block, dst []byte) float64 {
	t.Helper()
	wa, wb := compress.Words(block), compress.Words(dst)
	worst := 0.0
	for i := range wa {
		va := float64(math.Float32frombits(wa[i]))
		if math.IsNaN(va) || math.IsInf(va, 0) {
			if wa[i] != wb[i] {
				t.Fatalf("non-finite lane %d not bit-exact: %08x -> %08x", i, wa[i], wb[i])
			}
			continue
		}
		if d := math.Abs(float64(math.Float32frombits(wb[i])) - va); d > worst {
			worst = d
		}
	}
	return worst
}

// TestBoundSweepProperties is the decade sweep of ISSUE 10: for every
// generator × predictor × bound in 1e-1…1e-6, (1) every reconstructed value
// is within the bound, (2) total compressed bits grow monotonically as the
// bound tightens, and (3) encoding is deterministic (two encodes
// byte-identical).
func TestBoundSweepProperties(t *testing.T) {
	const n = 16 << 10
	bounds := []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6}
	for _, field := range floatFields {
		blocks := blocksOf(field.gen(n, 4242))
		for _, pred := range []sz.Predictor{sz.Lorenzo, sz.Linear} {
			prevBits := -1
			prevBound := 0.0
			for _, bound := range bounds {
				c, err := sz.New(pred, bound)
				if err != nil {
					t.Fatal(err)
				}
				total := 0
				dst := make([]byte, compress.BlockSize)
				for bi, block := range blocks {
					enc := c.Compress(block)
					enc2 := c.Compress(block)
					if enc2.Bits != enc.Bits || !bytes.Equal(enc2.Payload, enc.Payload) {
						t.Fatalf("%s/%s bound %g block %d: non-deterministic encode",
							field.name, pred, bound, bi)
					}
					if err := c.Decompress(enc, dst); err != nil {
						t.Fatalf("%s/%s bound %g block %d: decompress: %v",
							field.name, pred, bound, bi, err)
					}
					if worst := maxLaneErr(t, block, dst); worst > bound {
						t.Fatalf("%s/%s bound %g block %d: reconstruction off by %g",
							field.name, pred, bound, bi, worst)
					}
					total += enc.Bits
				}
				if prevBits >= 0 && total < prevBits {
					t.Fatalf("%s/%s: compressed size shrank from %d bits at bound %g to %d at tighter bound %g",
						field.name, pred, prevBits, prevBound, total, bound)
				}
				prevBits, prevBound = total, bound
			}
		}
	}
}

// TestSmoothFieldBeatsLosslessRatio pins the headline behaviour: at the
// default 1e-3 bound the sz codecs compress the smooth field better than
// the strongest lossless word codec in the registry (FPC, sz's own exact
// base).
func TestSmoothFieldBeatsLosslessRatio(t *testing.T) {
	const n = 16 << 10
	blocks := blocksOf(workloads.SmoothField(n, 4242))
	szBits, fpcBits := 0, 0
	c, err := sz.New(sz.Lorenzo, 0)
	if err != nil {
		t.Fatal(err)
	}
	fpc, err := compress.Build("fpc", compress.BuildContext{})
	if err != nil {
		t.Fatal(err)
	}
	for _, block := range blocks {
		szBits += c.Compress(block).Bits
		fpcBits += fpc.Compress(block).Bits
	}
	if szBits >= fpcBits {
		t.Fatalf("sz-lorenzo used %d bits on the smooth field, fpc used %d — the bounded codec should win",
			szBits, fpcBits)
	}
}

// TestRawFallbackBoundary pins the inclusive 1024-bit boundary: a block of
// NaN lanes encodes as 32 literals, which exceeds BlockBits with the mask
// header, so it must be stored raw, never lossy, and round-trip bit-exact.
func TestRawFallbackBoundary(t *testing.T) {
	var words [compress.WordsPerBlock]uint32
	for i := range words {
		words[i] = 0x7FC00000 | uint32(i) // distinct NaN payloads
	}
	block := make([]byte, compress.BlockSize)
	compress.PutWords(block, words)
	for _, pred := range []sz.Predictor{sz.Lorenzo, sz.Linear} {
		c, err := sz.New(pred, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		enc := c.Compress(block)
		if enc.Bits != compress.BlockBits || enc.Lossy {
			t.Fatalf("%s: all-literal block got (%d bits, lossy=%v), want raw (%d, false)",
				pred, enc.Bits, enc.Lossy, compress.BlockBits)
		}
		dst := make([]byte, compress.BlockSize)
		if err := c.Decompress(enc, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, block) {
			t.Fatalf("%s: raw fallback round trip mismatch", pred)
		}
		if got := c.CompressedBits(block); got != compress.BlockBits {
			t.Fatalf("%s: CompressedBits %d, want %d", pred, got, compress.BlockBits)
		}
		bits, lossy := c.SyncBlock(block)
		if bits != compress.BlockBits || lossy {
			t.Fatalf("%s: SyncBlock (%d, %v) on raw-fallback block", pred, bits, lossy)
		}
	}
}

// TestDecompressRejectsCorruptPayload covers the decoder's error paths:
// truncated payloads and short raw payloads must error, never panic.
func TestDecompressRejectsCorruptPayload(t *testing.T) {
	c, err := sz.New(sz.Lorenzo, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	blocks := blocksOf(workloads.SmoothField(1024, 7))
	enc := c.Compress(blocks[0])
	if enc.Bits >= compress.BlockBits {
		t.Fatalf("smooth block unexpectedly stored raw")
	}
	dst := make([]byte, compress.BlockSize)
	trunc := compress.Encoded{Bits: enc.Bits, Payload: enc.Payload[:1], Lossy: enc.Lossy}
	if err := c.Decompress(trunc, dst); err == nil {
		t.Error("truncated payload decompressed without error")
	}
	raw := compress.Encoded{Bits: compress.BlockBits, Payload: enc.Payload}
	if err := c.Decompress(raw, dst); err == nil {
		t.Error("short raw payload decompressed without error")
	}
	if err := c.Decompress(enc, make([]byte, 16)); err == nil {
		t.Error("short dst accepted")
	}
}

// TestNewRejectsInvalidBounds pins bound validation and the default.
func TestNewRejectsInvalidBounds(t *testing.T) {
	for _, bad := range []float64{-1e-3, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := sz.New(sz.Lorenzo, bad); err == nil {
			t.Errorf("New accepted bound %v", bad)
		}
	}
	c, err := sz.New(sz.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Bound() != sz.DefaultBound {
		t.Errorf("zero bound resolved to %g, want DefaultBound %g", c.Bound(), sz.DefaultBound)
	}
	if c.Name() != "SZ-LINEAR" {
		t.Errorf("Name() = %q", c.Name())
	}
}
