package sz

import "repro/internal/compress"

func init() {
	for _, p := range []Predictor{Lorenzo, Linear} {
		p := p
		compress.Register("sz-"+p.String(), compress.Info{
			New: func(ctx compress.BuildContext) (compress.Codec, error) {
				return New(p, ctx.ErrorBound)
			},
			Lossy:        true,
			LossyBounded: true,
			// Exact regions fall back to FPC: like sz it targets float
			// data, and it is table-free, so the bounded pair builds
			// without a trained entropy table.
			Base: "fpc",
			// Predict → quantize → static-codebook encode is a short
			// per-word pipeline; decode replays the same chain. The
			// latencies bracket FPC's pattern pipeline (8/5) from above to
			// account for the dependent reconstruction chain.
			CompressCycles:   12,
			DecompressCycles: 9,
		})
	}
}
