package compress_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/compress"
	_ "repro/internal/compress/all"
	"repro/internal/compress/e2mc"
	"repro/internal/slc"
)

// registryTable trains an E2MC table on the same mixed corpus the codecs are
// tested against, for the factories that need one.
func registryTable(t testing.TB) *e2mc.Table {
	t.Helper()
	tr := e2mc.NewTrainer()
	for _, b := range testBlocks(512) {
		tr.Sample(b)
	}
	tab, err := tr.Build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// testBlocks builds a mixed corpus: tick-quantised floats, small integers,
// pointer-like values, zeros and raw noise.
func testBlocks(n int) [][]byte {
	rng := rand.New(rand.NewSource(7))
	blocks := make([][]byte, n)
	for i := range blocks {
		b := make([]byte, compress.BlockSize)
		switch i % 5 {
		case 0:
			for j := 0; j < 32; j++ {
				v := 2 + float32(rng.Intn(512))/256
				binary.LittleEndian.PutUint32(b[j*4:], math.Float32bits(v))
			}
		case 1:
			for j := 0; j < 32; j++ {
				binary.LittleEndian.PutUint32(b[j*4:], uint32(rng.Intn(4096)))
			}
		case 2:
			base := rng.Uint64()
			for j := 0; j < 16; j++ {
				binary.LittleEndian.PutUint64(b[j*8:], base+uint64(rng.Intn(256)))
			}
		case 3:
			// zeros
		case 4:
			rng.Read(b)
		}
		blocks[i] = b
	}
	return blocks
}

// TestRegistryComplete pins the registered codec set: the seven techniques
// of the paper's evaluation (the three TSLC variants sharing the slc
// package), the raw baseline, and the post-paper families added through
// the registry (lz4b, zcd, and the error-bounded sz pair). A new codec
// package extends this by a Register call.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"bdi", "bpc", "cpack", "e2mc", "fpc", "hycomp", "lz4b",
		"raw", "sz-linear", "sz-lorenzo",
		"tslc-opt", "tslc-pred", "tslc-simp", "zcd",
	}
	got := compress.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("Names()[%d] = %q, want %q (full set %v)", i, got[i], name, got)
		}
	}
}

// TestRegistryRoundTrip builds every registered codec through its factory
// and round-trips the corpus: lossless codecs must reproduce every block
// exactly; lossy codecs (the TSLC variants) must decompress without error
// and stay within the SLC bound of at most MaxApproxSymbols approximated
// 16-bit symbols per block.
func TestRegistryRoundTrip(t *testing.T) {
	tab := registryTable(t)
	blocks := testBlocks(256)
	for _, name := range compress.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			info, ok := compress.Lookup(name)
			if !ok {
				t.Fatalf("Lookup(%q) failed for a name Names() returned", name)
			}
			ctx := compress.BuildContext{MAG: compress.MAG32, ThresholdBits: 16 * 8}
			if info.NeedsTable {
				ctx.Table = tab
			}
			c, err := info.New(ctx)
			if err != nil {
				t.Fatalf("factory: %v", err)
			}
			if c.Name() == "" {
				t.Error("codec has empty display name")
			}
			dst := make([]byte, compress.BlockSize)
			for i, block := range blocks {
				enc := c.Compress(block)
				if enc.Bits <= 0 || enc.Bits > compress.BlockBits {
					t.Fatalf("block %d: compressed size %d bits out of (0, %d]",
						i, enc.Bits, compress.BlockBits)
				}
				if enc.Lossy && !info.Lossy {
					t.Fatalf("block %d: lossless codec produced a lossy encoding", i)
				}
				if err := c.Decompress(enc, dst); err != nil {
					t.Fatalf("block %d: decompress: %v", i, err)
				}
				if !enc.Lossy {
					if !bytes.Equal(dst, block) {
						t.Fatalf("block %d: lossless round trip mismatch", i)
					}
					continue
				}
				if info.LossyBounded {
					// Error-bounded contract: every reconstructed float32
					// within the codec's bound of the original.
					bounded, ok := c.(interface{ Bound() float64 })
					if !ok {
						t.Fatalf("LossyBounded codec %s exposes no Bound()", c.Name())
					}
					if diff := maxFloatDiff(block, dst); diff > bounded.Bound() {
						t.Fatalf("block %d: bounded-lossy encoding off by %g, bound is %g",
							i, diff, bounded.Bound())
					}
					continue
				}
				if diff := symbolDiffs(block, dst); diff > slc.MaxApproxSymbols {
					t.Fatalf("block %d: lossy encoding changed %d symbols, bound is %d",
						i, diff, slc.MaxApproxSymbols)
				}
			}
		})
	}
}

// maxFloatDiff returns the largest |a−b| over the blocks' float32 lanes.
// Non-finite lanes must pass through bit-exact and count as an infinite
// difference when they do not.
func maxFloatDiff(a, b []byte) float64 {
	wa, wb := compress.Words(a), compress.Words(b)
	max := 0.0
	for i := range wa {
		va, vb := math.Float32frombits(wa[i]), math.Float32frombits(wb[i])
		if math.IsNaN(float64(va)) || math.IsInf(float64(va), 0) {
			if wa[i] != wb[i] {
				return math.Inf(1)
			}
			continue
		}
		if d := math.Abs(float64(vb) - float64(va)); d > max {
			max = d
		}
	}
	return max
}

// symbolDiffs counts differing 16-bit symbols between two blocks.
func symbolDiffs(a, b []byte) int {
	sa, sb := compress.Symbols(a), compress.Symbols(b)
	n := 0
	for i := range sa {
		if sa[i] != sb[i] {
			n++
		}
	}
	return n
}

// TestRegistryBuildErrors exercises the error paths: unknown names list the
// available set, and table-needing codecs refuse to build without one.
func TestRegistryBuildErrors(t *testing.T) {
	if _, err := compress.Build("no-such-codec", compress.BuildContext{}); err == nil {
		t.Error("Build of unknown codec succeeded")
	} else if !bytes.Contains([]byte(err.Error()), []byte("e2mc")) {
		t.Errorf("unknown-codec error does not list the available set: %v", err)
	}
	for _, name := range []string{"e2mc", "hycomp", "tslc-opt"} {
		if _, err := compress.Build(name, compress.BuildContext{MAG: compress.MAG32}); err == nil {
			t.Errorf("%s built without a trained table", name)
		}
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := compress.Build("sz-lorenzo", compress.BuildContext{ErrorBound: bad}); err == nil {
			t.Errorf("sz-lorenzo built with invalid bound %v", bad)
		}
	}
}

// TestRegistryTraits pins the trait wiring the runner depends on.
func TestRegistryTraits(t *testing.T) {
	raw, _ := compress.Lookup("raw")
	if !raw.Identity || raw.Lossy || raw.NeedsTable {
		t.Errorf("raw traits wrong: %+v", raw)
	}
	for _, name := range []string{"tslc-simp", "tslc-pred", "tslc-opt"} {
		info, ok := compress.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if !info.Lossy || info.Base != "e2mc" || !info.NeedsTable {
			t.Errorf("%s traits wrong: %+v", name, info)
		}
	}
	e, _ := compress.Lookup("e2mc")
	if e.CompressCycles != e2mc.CompressCycles || e.DecompressCycles != e2mc.DecompressCycles {
		t.Errorf("e2mc latency traits %d/%d", e.CompressCycles, e.DecompressCycles)
	}
	for _, name := range []string{"sz-lorenzo", "sz-linear"} {
		info, ok := compress.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if !info.Lossy || !info.LossyBounded || info.Base != "fpc" || info.NeedsTable {
			t.Errorf("%s traits wrong: %+v", name, info)
		}
	}
}
