package cpack

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
)

func roundTrip(t *testing.T, block []byte) compress.Encoded {
	t.Helper()
	var c Codec
	enc := c.Compress(block)
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(dst, block) {
		t.Fatalf("round trip mismatch\n got %x\nwant %x", dst, block)
	}
	return enc
}

func TestZeroBlock(t *testing.T) {
	block := make([]byte, compress.BlockSize)
	enc := roundTrip(t, block)
	if enc.Bits != 32*2 {
		t.Errorf("zero block = %d bits, want 64", enc.Bits)
	}
}

func TestFullDictionaryMatches(t *testing.T) {
	// Repeating one non-zero word: first occurrence is xxxx (34 bits), the
	// other 31 are mmmm (6 bits each).
	block := make([]byte, compress.BlockSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(block[i*4:], 0xCAFED00D)
	}
	enc := roundTrip(t, block)
	if want := 34 + 31*6; enc.Bits != want {
		t.Errorf("bits = %d, want %d", enc.Bits, want)
	}
}

func TestPartialMatches(t *testing.T) {
	// Words sharing upper halfword/3 bytes exercise mmxx and mmmx.
	block := make([]byte, compress.BlockSize)
	base := uint32(0xABCD1200)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(block[i*4:], base|uint32(i))
	}
	enc := roundTrip(t, block)
	if enc.Bits >= compress.BlockBits {
		t.Errorf("partial-match data did not compress: %d bits", enc.Bits)
	}
}

func TestZZZXPattern(t *testing.T) {
	block := make([]byte, compress.BlockSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(block[i*4:], uint32(i+1)) // low byte only
	}
	enc := roundTrip(t, block)
	if want := 32 * 12; enc.Bits != want {
		t.Errorf("bits = %d, want %d", enc.Bits, want)
	}
}

func TestDictionaryFIFOWrap(t *testing.T) {
	// More than 16 distinct uncompressible words force FIFO replacement;
	// later repeats of early words must still round trip (they will have
	// been evicted, so they re-encode as xxxx).
	block := make([]byte, compress.BlockSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(block[i*4:], 0x80000000|uint32(i*0x01010101))
	}
	roundTrip(t, block)
}

func TestIncompressibleFallsBackToRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	block := make([]byte, compress.BlockSize)
	rng.Read(block)
	enc := roundTrip(t, block)
	if enc.Bits > compress.BlockBits {
		t.Errorf("bits = %d exceeds block size", enc.Bits)
	}
}

func TestCompressedBitsMatchesCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var c Codec
	for trial := 0; trial < 300; trial++ {
		block := make([]byte, compress.BlockSize)
		switch trial % 3 {
		case 0:
			rng.Read(block)
		case 1:
			base := rng.Uint32() &^ 0xFFFF
			for i := 0; i < 32; i++ {
				binary.LittleEndian.PutUint32(block[i*4:], base|uint32(rng.Intn(1<<16)))
			}
		case 2:
			for i := 0; i < 32; i++ {
				binary.LittleEndian.PutUint32(block[i*4:], math.Float32bits(rng.Float32()*10))
			}
		}
		if got, want := c.CompressedBits(block), c.Compress(block).Bits; got != want {
			t.Fatalf("trial %d: CompressedBits = %d, Compress.Bits = %d", trial, got, want)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	var c Codec
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		block := make([]byte, compress.BlockSize)
		for i := 0; i < 32; i++ {
			var v uint32
			switch rng.Intn(6) {
			case 0:
				v = 0
			case 1:
				v = uint32(rng.Intn(256))
			case 2:
				v = rng.Uint32() &^ 0xFFFF
			case 3:
				v = rng.Uint32() &^ 0xFF
			case 4:
				v = rng.Uint32()
			case 5:
				v = 0xAAAA0000 | uint32(rng.Intn(1<<16))
			}
			binary.LittleEndian.PutUint32(block[i*4:], v)
		}
		enc := c.Compress(block)
		dst := make([]byte, compress.BlockSize)
		if err := c.Decompress(enc, dst); err != nil {
			return false
		}
		return bytes.Equal(dst, block)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecompressBadIndex(t *testing.T) {
	var c Codec
	// mmmm with an index into an empty dictionary must error, not panic.
	w := compress.NewBitWriter(64)
	w.WriteBits(codeMMMM, 2)
	w.WriteBits(5, 4)
	enc := compress.Encoded{Bits: w.Len(), Payload: w.Bytes()}
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err == nil {
		t.Error("expected dictionary index error")
	}
}
