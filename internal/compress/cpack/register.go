package cpack

import "repro/internal/compress"

func init() {
	compress.Register("cpack", compress.Info{
		New: func(compress.BuildContext) (compress.Codec, error) { return Codec{}, nil },
		// C-PACK's dictionary pipeline is symmetric: 8 cycles each way.
		CompressCycles:   8,
		DecompressCycles: 8,
	})
}
