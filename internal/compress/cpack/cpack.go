// Package cpack implements C-PACK (Chen et al., IEEE TVLSI 2010), a
// dictionary-based cache/memory compression algorithm and one of the four
// lossless baselines of the SLC paper's Figure 1.
//
// Each 32-bit word is encoded against a 16-entry FIFO dictionary using the
// pattern set of the original paper: zzzz (zero word), xxxx (uncompressed),
// mmmm (full dictionary match), mmxx (upper-halfword match), zzzx (three
// zero bytes + literal byte), and mmmx (three-byte match). Words that do not
// fully match are pushed into the dictionary; compressor and decompressor
// rebuild identical dictionary state.
package cpack

import (
	"fmt"

	"repro/internal/compress"
)

const dictEntries = 16

// Pattern codes and widths (code + index/literal payload), from the C-PACK
// paper's Table I.
const (
	codeZZZZ = 0b00   // 2 bits
	codeXXXX = 0b01   // 2 + 32
	codeMMMM = 0b10   // 2 + 4
	codeMMXX = 0b1100 // 4 + 4 + 16
	codeZZZX = 0b1101 // 4 + 8
	codeMMMX = 0b1110 // 4 + 4 + 8
)

// Codec is the C-PACK compressor/decompressor. The zero value is ready to
// use; each Compress/Decompress call starts from an empty dictionary, as the
// hardware resets per block.
type Codec struct{}

// Name implements compress.Codec.
func (Codec) Name() string { return "CPACK" }

type dict struct {
	entries [dictEntries]uint32
	n       int // number of valid entries
	next    int // FIFO replacement cursor
}

func (d *dict) push(w uint32) {
	d.entries[d.next] = w
	d.next = (d.next + 1) % dictEntries
	if d.n < dictEntries {
		d.n++
	}
}

// match looks for the best dictionary match for w. kind is 4 (full), 3
// (upper three bytes), 2 (upper halfword) or 0 (none).
func (d *dict) match(w uint32) (idx, kind int) {
	bestKind := 0
	bestIdx := 0
	for i := 0; i < d.n; i++ {
		e := d.entries[i]
		switch {
		case e == w:
			return i, 4 // full match wins immediately
		case e&0xFFFFFF00 == w&0xFFFFFF00 && bestKind < 3:
			bestKind, bestIdx = 3, i
		case e&0xFFFF0000 == w&0xFFFF0000 && bestKind < 2:
			bestKind, bestIdx = 2, i
		}
	}
	return bestIdx, bestKind
}

// encodeWord appends the encoding of one word and updates the dictionary.
// When w is nil only the size is accounted.
func encodeWord(word uint32, d *dict, w *compress.BitWriter) int {
	if word == 0 {
		if w != nil {
			w.WriteBits(codeZZZZ, 2)
		}
		return 2
	}
	if word&0xFFFFFF00 == 0 {
		if w != nil {
			w.WriteBits(codeZZZX, 4)
			w.WriteBits(uint64(word&0xFF), 8)
		}
		return 12
	}
	idx, kind := d.match(word)
	switch kind {
	case 4:
		if w != nil {
			w.WriteBits(codeMMMM, 2)
			w.WriteBits(uint64(idx), 4)
		}
		return 6
	case 3:
		if w != nil {
			w.WriteBits(codeMMMX, 4)
			w.WriteBits(uint64(idx), 4)
			w.WriteBits(uint64(word&0xFF), 8)
		}
		d.push(word)
		return 16
	case 2:
		if w != nil {
			w.WriteBits(codeMMXX, 4)
			w.WriteBits(uint64(idx), 4)
			w.WriteBits(uint64(word&0xFFFF), 16)
		}
		d.push(word)
		return 24
	default:
		if w != nil {
			w.WriteBits(codeXXXX, 2)
			w.WriteBits(uint64(word), 32)
		}
		d.push(word)
		return 34
	}
}

// CompressedBits implements compress.SizeOnly.
func (Codec) CompressedBits(block []byte) int {
	words := compress.Words(block)
	var d dict
	bits := 0
	for _, word := range words {
		bits += encodeWord(word, &d, nil)
	}
	if bits > compress.BlockBits {
		bits = compress.BlockBits
	}
	return bits
}

// Compress implements compress.Codec.
func (c Codec) Compress(block []byte) compress.Encoded {
	if err := compress.CheckBlock(block); err != nil {
		panic(err)
	}
	words := compress.Words(block)
	var d dict
	w := compress.NewBitWriter(compress.BlockBits)
	for _, word := range words {
		encodeWord(word, &d, w)
	}
	// Inclusive boundary: Decompress reads any BlockBits-sized encoding as
	// a raw payload, so an exactly 1024-bit stream must be stored raw.
	if w.Len() >= compress.BlockBits {
		p := make([]byte, compress.BlockSize)
		copy(p, block)
		return compress.Encoded{Bits: compress.BlockBits, Payload: p}
	}
	return compress.Encoded{Bits: w.Len(), Payload: w.Bytes()}
}

// Decompress implements compress.Codec.
func (c Codec) Decompress(e compress.Encoded, dst []byte) error {
	if len(dst) < compress.BlockSize {
		return fmt.Errorf("cpack: dst too small (%d bytes)", len(dst))
	}
	if e.Bits >= compress.BlockBits {
		if len(e.Payload) < compress.BlockSize {
			return fmt.Errorf("cpack: raw payload too short")
		}
		copy(dst, e.Payload[:compress.BlockSize])
		return nil
	}
	r := compress.NewBitReader(e.Payload)
	var d dict
	var words [compress.WordsPerBlock]uint32
	for i := range words {
		c2, err := r.ReadBits(2)
		if err != nil {
			return fmt.Errorf("cpack: code at word %d: %w", i, err)
		}
		switch c2 {
		case codeZZZZ:
			words[i] = 0
		case codeXXXX:
			v, err := r.ReadBits(32)
			if err != nil {
				return fmt.Errorf("cpack: literal at word %d: %w", i, err)
			}
			words[i] = uint32(v)
			d.push(words[i])
		case codeMMMM:
			idx, err := r.ReadBits(4)
			if err != nil {
				return fmt.Errorf("cpack: index at word %d: %w", i, err)
			}
			if int(idx) >= d.n {
				return fmt.Errorf("cpack: dictionary index %d out of range (%d entries)", idx, d.n)
			}
			words[i] = d.entries[idx]
		case 0b11: // extended 4-bit code
			b2, err := r.ReadBits(2)
			if err != nil {
				return fmt.Errorf("cpack: extended code at word %d: %w", i, err)
			}
			switch code := c2<<2 | b2; code {
			case codeMMXX:
				idx, err := r.ReadBits(4)
				if err != nil {
					return fmt.Errorf("cpack: mmxx index: %w", err)
				}
				lo, err := r.ReadBits(16)
				if err != nil {
					return fmt.Errorf("cpack: mmxx literal: %w", err)
				}
				if int(idx) >= d.n {
					return fmt.Errorf("cpack: dictionary index %d out of range", idx)
				}
				words[i] = d.entries[idx]&0xFFFF0000 | uint32(lo)
				d.push(words[i])
			case codeZZZX:
				b, err := r.ReadBits(8)
				if err != nil {
					return fmt.Errorf("cpack: zzzx literal: %w", err)
				}
				words[i] = uint32(b)
			case codeMMMX:
				idx, err := r.ReadBits(4)
				if err != nil {
					return fmt.Errorf("cpack: mmmx index: %w", err)
				}
				b, err := r.ReadBits(8)
				if err != nil {
					return fmt.Errorf("cpack: mmmx literal: %w", err)
				}
				if int(idx) >= d.n {
					return fmt.Errorf("cpack: dictionary index %d out of range", idx)
				}
				words[i] = d.entries[idx]&0xFFFFFF00 | uint32(b)
				d.push(words[i])
			default:
				return fmt.Errorf("cpack: unknown code %04b", code)
			}
		}
	}
	compress.PutWords(dst, words)
	return nil
}
