package bdi

import "repro/internal/compress"

func init() {
	compress.Register("bdi", compress.Info{
		New: func(compress.BuildContext) (compress.Codec, error) { return Codec{}, nil },
		// Paper §V-B baseline latencies: BDI compresses in 2 cycles and
		// decompresses in 1.
		CompressCycles:   2,
		DecompressCycles: 1,
	})
}
