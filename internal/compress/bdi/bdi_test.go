package bdi

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
)

func roundTrip(t *testing.T, block []byte) compress.Encoded {
	t.Helper()
	var c Codec
	enc := c.Compress(block)
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(dst, block) {
		t.Fatalf("round trip mismatch (encoding %s)", EncodingName(block))
	}
	return enc
}

func TestZeroBlock(t *testing.T) {
	block := make([]byte, compress.BlockSize)
	enc := roundTrip(t, block)
	if enc.Bits != 4 {
		t.Errorf("zero block bits = %d, want 4", enc.Bits)
	}
	if EncodingName(block) != "zeros" {
		t.Errorf("encoding = %s", EncodingName(block))
	}
}

func TestRepeatedBlock(t *testing.T) {
	block := make([]byte, compress.BlockSize)
	for i := 0; i < compress.BlockSize; i += 8 {
		binary.LittleEndian.PutUint64(block[i:], 0xCAFEBABE12345678)
	}
	enc := roundTrip(t, block)
	if enc.Bits != 68 {
		t.Errorf("repeated block bits = %d, want 68", enc.Bits)
	}
}

func TestBase8Delta1(t *testing.T) {
	// Pointer-like data: a large 64-bit base plus small offsets.
	block := make([]byte, compress.BlockSize)
	base := uint64(0x7FFF_0000_1000_0000)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint64(block[i*8:], base+uint64(i*3))
	}
	enc := roundTrip(t, block)
	// selector(4) + base(64) + mask(16) + 16 deltas × 8 = 212 bits
	if enc.Bits != 212 {
		t.Errorf("bits = %d, want 212", enc.Bits)
	}
	if EncodingName(block) != "base8-delta1" {
		t.Errorf("encoding = %s", EncodingName(block))
	}
}

func TestBase4Delta1WithImmediates(t *testing.T) {
	// 32-bit values clustered around a base, with small immediates mixed in
	// that only the zero base covers.
	block := make([]byte, compress.BlockSize)
	base := uint32(0x10203040)
	for i := 0; i < 32; i++ {
		v := base + uint32(i)
		if i%4 == 0 {
			v = uint32(i) // immediate
		}
		binary.LittleEndian.PutUint32(block[i*4:], v)
	}
	enc := roundTrip(t, block)
	// selector(4) + base(32) + mask(32) + 32 deltas × 8 = 324 bits
	if enc.Bits != 324 {
		t.Errorf("bits = %d, want 324", enc.Bits)
	}
}

func TestNegativeDeltas(t *testing.T) {
	block := make([]byte, compress.BlockSize)
	base := uint32(0x40000000)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(block[i*4:], base-uint32(i*2)) // below base
	}
	roundTrip(t, block)
}

func TestWrapAroundDelta(t *testing.T) {
	// Differences that wrap modulo 2^32 must still round trip.
	block := make([]byte, compress.BlockSize)
	vals := []uint32{0xFFFFFFFE, 0xFFFFFFFF, 0, 1, 2}
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(block[i*4:], vals[i%len(vals)])
	}
	roundTrip(t, block)
}

func TestIncompressibleBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	block := make([]byte, compress.BlockSize)
	rng.Read(block)
	enc := roundTrip(t, block)
	if enc.Bits != compress.BlockBits {
		t.Errorf("random block compressed to %d bits; expected uncompressed", enc.Bits)
	}
}

func TestCompressedBitsMatchesCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var c Codec
	for trial := 0; trial < 200; trial++ {
		block := structuredBlock(rng)
		if got, want := c.CompressedBits(block), c.Compress(block).Bits; got != want {
			t.Fatalf("CompressedBits = %d, Compress.Bits = %d", got, want)
		}
	}
}

// structuredBlock produces blocks with varied compressibility profiles.
func structuredBlock(rng *rand.Rand) []byte {
	block := make([]byte, compress.BlockSize)
	switch rng.Intn(6) {
	case 0: // zeros
	case 1: // small ints
		for i := 0; i < 32; i++ {
			binary.LittleEndian.PutUint32(block[i*4:], uint32(rng.Intn(256)))
		}
	case 2: // clustered floats
		base := rng.Float32() * 100
		for i := 0; i < 32; i++ {
			binary.LittleEndian.PutUint32(block[i*4:], math.Float32bits(base+rng.Float32()))
		}
	case 3: // pointers
		base := uint64(rng.Int63())
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint64(block[i*8:], base+uint64(rng.Intn(128)))
		}
	case 4: // random
		rng.Read(block)
	case 5: // repeated
		v := uint64(rng.Int63())
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint64(block[i*8:], v)
		}
	}
	return block
}

func TestQuickRoundTrip(t *testing.T) {
	var c Codec
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		block := structuredBlock(rng)
		enc := c.Compress(block)
		if enc.Bits < 4 || enc.Bits > compress.BlockBits {
			return false
		}
		dst := make([]byte, compress.BlockSize)
		if err := c.Decompress(enc, dst); err != nil {
			return false
		}
		return bytes.Equal(dst, block)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecompressCorruptHeader(t *testing.T) {
	var c Codec
	bad := compress.Encoded{Bits: 4, Payload: []byte{0xF0}} // encoding 15 is undefined
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(bad, dst); err == nil {
		t.Error("expected error for unknown encoding")
	}
}

func TestDecompressTruncatedPayload(t *testing.T) {
	var c Codec
	block := make([]byte, compress.BlockSize)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint64(block[i*8:], 0x1000+uint64(i))
	}
	enc := c.Compress(block)
	enc.Payload = enc.Payload[:len(enc.Payload)/2]
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err == nil {
		t.Error("expected error for truncated payload")
	}
}
