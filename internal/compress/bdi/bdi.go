// Package bdi implements Base-Delta-Immediate compression (Pekhimenko et
// al., PACT 2012), one of the four lossless baselines whose effective
// compression ratio the SLC paper shows to suffer from memory access
// granularity (Figure 1).
//
// BDI represents a block as one arbitrary base plus one implicit zero base;
// every k-byte element is stored as a small delta from whichever base covers
// it, with a per-element mask bit selecting the base. Eight encodings are
// tried (zeros, repeated value, and six base/delta geometries) and the
// smallest that covers the block wins.
package bdi

import (
	"encoding/binary"
	"fmt"

	"repro/internal/compress"
)

// encoding identifies one BDI geometry.
type encoding uint8

const (
	encUncompressed encoding = iota
	encZeros                 // all-zero block
	encRep8                  // repeated 8-byte value
	encB8D1                  // 8-byte base, 1-byte deltas
	encB8D2                  // 8-byte base, 2-byte deltas
	encB8D4                  // 8-byte base, 4-byte deltas
	encB4D1                  // 4-byte base, 1-byte deltas
	encB4D2                  // 4-byte base, 2-byte deltas
	encB2D1                  // 2-byte base, 1-byte deltas
	numEncodings
)

const headerBits = 4 // encoding selector stored with the block

// geometry describes the base/delta split of one encoding.
type geometry struct {
	base  int // base size in bytes
	delta int // delta size in bytes
}

var geometries = map[encoding]geometry{
	encB8D1: {8, 1},
	encB8D2: {8, 2},
	encB8D4: {8, 4},
	encB4D1: {4, 1},
	encB4D2: {4, 2},
	encB2D1: {2, 1},
}

var encodingNames = map[encoding]string{
	encUncompressed: "uncompressed",
	encZeros:        "zeros",
	encRep8:         "rep8",
	encB8D1:         "base8-delta1",
	encB8D2:         "base8-delta2",
	encB8D4:         "base8-delta4",
	encB4D1:         "base4-delta1",
	encB4D2:         "base4-delta2",
	encB2D1:         "base2-delta1",
}

// Codec is the BDI compressor/decompressor. The zero value is ready to use.
type Codec struct{}

// Name implements compress.Codec.
func (Codec) Name() string { return "BDI" }

// compressedBits returns the total encoded size of a geometry for one block:
// selector + base + per-element mask + per-element delta.
func (g geometry) compressedBits() int {
	n := compress.BlockSize / g.base
	return headerBits + g.base*8 + n + n*g.delta*8
}

// fits reports whether v, interpreted as a signed two's-complement value,
// fits in `bytes` bytes.
func fits(v uint64, bytes int) bool {
	s := int64(v)
	lim := int64(1) << uint(bytes*8-1)
	return s >= -lim && s < lim
}

// elements splits the block into n unsigned values of size bytes.
func elements(block []byte, size int) []uint64 {
	n := compress.BlockSize / size
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		switch size {
		case 2:
			out[i] = uint64(binary.LittleEndian.Uint16(block[i*2:]))
		case 4:
			out[i] = uint64(binary.LittleEndian.Uint32(block[i*4:]))
		case 8:
			out[i] = binary.LittleEndian.Uint64(block[i*8:])
		default:
			panic("bdi: bad element size")
		}
	}
	return out
}

// signExtend interprets the low `bytes` bytes of v as signed and widens to 64
// bits.
func signExtend(v uint64, bytes int) uint64 {
	shift := uint(64 - bytes*8)
	return uint64(int64(v<<shift) >> shift)
}

// tryGeometry attempts one base/delta encoding. It returns the chosen base
// and per-element (useZeroBase, delta) assignments, or ok=false if some
// element fits neither base. Differences are taken modulo the element width,
// matching a hardware subtractor of that width.
func tryGeometry(block []byte, g geometry) (base uint64, mask []bool, deltas []uint64, ok bool) {
	elems := elements(block, g.base)
	mask = make([]bool, len(elems))
	deltas = make([]uint64, len(elems))
	elemMask := ^uint64(0) >> uint(64-g.base*8)
	haveBase := false
	for i, e := range elems {
		if es := signExtend(e, g.base); fits(es, g.delta) {
			mask[i] = true // covered by the implicit zero base
			deltas[i] = es
			continue
		}
		if !haveBase {
			base = e // first value not covered by zero becomes the base
			haveBase = true
		}
		d := signExtend((e-base)&elemMask, g.base)
		if !fits(d, g.delta) {
			return 0, nil, nil, false
		}
		deltas[i] = d
	}
	return base, mask, deltas, true
}

// analyze picks the smallest encoding that covers the block.
func analyze(block []byte) (encoding, int) {
	words := compress.Words(block)
	allZero := true
	for _, w := range words {
		if w != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return encZeros, headerBits
	}

	first := binary.LittleEndian.Uint64(block)
	rep := true
	for i := 8; i < compress.BlockSize; i += 8 {
		if binary.LittleEndian.Uint64(block[i:]) != first {
			rep = false
			break
		}
	}
	best, bestBits := encUncompressed, compress.BlockBits
	if rep {
		best, bestBits = encRep8, headerBits+64
	}
	for enc, g := range geometries {
		bits := g.compressedBits()
		if bits >= bestBits {
			continue
		}
		if _, _, _, ok := tryGeometry(block, g); ok {
			best, bestBits = enc, bits
		}
	}
	return best, bestBits
}

// CompressedBits implements compress.SizeOnly.
func (Codec) CompressedBits(block []byte) int {
	_, bits := analyze(block)
	return bits
}

// Compress implements compress.Codec.
func (c Codec) Compress(block []byte) compress.Encoded {
	if err := compress.CheckBlock(block); err != nil {
		panic(err)
	}
	enc, bits := analyze(block)
	w := compress.NewBitWriter(bits)
	w.WriteBits(uint64(enc), headerBits)
	switch enc {
	case encUncompressed:
		for _, b := range block {
			w.WriteBits(uint64(b), 8)
		}
		return compress.Encoded{Bits: compress.BlockBits, Payload: w.Bytes()}
	case encZeros:
		// selector only
	case encRep8:
		w.WriteBits(binary.LittleEndian.Uint64(block), 64)
	default:
		g := geometries[enc]
		base, mask, deltas, ok := tryGeometry(block, g)
		if !ok {
			panic("bdi: analyze/compress disagreement")
		}
		w.WriteBits(base, g.base*8)
		for _, m := range mask {
			w.WriteBool(m)
		}
		for _, d := range deltas {
			w.WriteBits(d, g.delta*8)
		}
	}
	if w.Len() != bits {
		panic(fmt.Sprintf("bdi: emitted %d bits, expected %d", w.Len(), bits))
	}
	return compress.Encoded{Bits: bits, Payload: w.Bytes()}
}

// Decompress implements compress.Codec.
func (c Codec) Decompress(e compress.Encoded, dst []byte) error {
	if len(dst) < compress.BlockSize {
		return fmt.Errorf("bdi: dst too small (%d bytes)", len(dst))
	}
	r := compress.NewBitReader(e.Payload)
	sel, err := r.ReadBits(headerBits)
	if err != nil {
		return fmt.Errorf("bdi: reading selector: %w", err)
	}
	enc := encoding(sel)
	switch enc {
	case encUncompressed:
		for i := 0; i < compress.BlockSize; i++ {
			v, err := r.ReadBits(8)
			if err != nil {
				return fmt.Errorf("bdi: raw byte %d: %w", i, err)
			}
			dst[i] = byte(v)
		}
		return nil
	case encZeros:
		for i := 0; i < compress.BlockSize; i++ {
			dst[i] = 0
		}
		return nil
	case encRep8:
		v, err := r.ReadBits(64)
		if err != nil {
			return fmt.Errorf("bdi: rep value: %w", err)
		}
		for i := 0; i < compress.BlockSize; i += 8 {
			binary.LittleEndian.PutUint64(dst[i:], v)
		}
		return nil
	}
	g, ok := geometries[enc]
	if !ok {
		return fmt.Errorf("bdi: unknown encoding %d", enc)
	}
	base, err := r.ReadBits(g.base * 8)
	if err != nil {
		return fmt.Errorf("bdi: base: %w", err)
	}
	n := compress.BlockSize / g.base
	mask := make([]bool, n)
	for i := range mask {
		mask[i], err = r.ReadBool()
		if err != nil {
			return fmt.Errorf("bdi: mask bit %d: %w", i, err)
		}
	}
	for i := 0; i < n; i++ {
		d, err := r.ReadBits(g.delta * 8)
		if err != nil {
			return fmt.Errorf("bdi: delta %d: %w", i, err)
		}
		d = signExtend(d, g.delta)
		var v uint64
		if mask[i] {
			v = d // zero base
		} else {
			v = base + d
		}
		switch g.base {
		case 2:
			binary.LittleEndian.PutUint16(dst[i*2:], uint16(v))
		case 4:
			binary.LittleEndian.PutUint32(dst[i*4:], uint32(v))
		case 8:
			binary.LittleEndian.PutUint64(dst[i*8:], v)
		}
	}
	return nil
}

// EncodingName reports the human-readable name of the encoding chosen for a
// block; useful for diagnostics and tests.
func EncodingName(block []byte) string {
	enc, _ := analyze(block)
	return encodingNames[enc]
}
