// Package compress defines the common model shared by all memory compression
// techniques in this repository: the 128-byte memory block, the memory access
// granularity (MAG) arithmetic that separates raw from effective compression
// ratio, and the Codec interface implemented by BDI, FPC, C-PACK, E2MC and
// BPC.
//
// Terminology follows the SLC paper (Lal et al., DATE 2019):
//
//   - A block is the unit of compression, 128 bytes in current GPUs.
//   - MAG is the amount of data transferred by a single DRAM read or write
//     command (bus width × burst length / 8); 32 B for GDDR5.
//   - The raw compression ratio ignores MAG; the effective compression ratio
//     scales the compressed size up to the next multiple of MAG, because a
//     partial burst cannot be fetched.
package compress

import (
	"encoding/binary"
	"fmt"
)

const (
	// BlockSize is the size of a compression block in bytes. GPUs compress
	// and fetch memory at 128-byte granularity (one coalesced warp access
	// of 32 threads × 4 bytes).
	BlockSize = 128

	// BlockBits is the size of an uncompressed block in bits.
	BlockBits = BlockSize * 8

	// SymbolSize is the size of an E2MC/SLC symbol in bytes. The paper uses
	// 16-bit symbols, the best-performing configuration of E2MC.
	SymbolSize = 2

	// SymbolsPerBlock is the number of 16-bit symbols in one block (64).
	SymbolsPerBlock = BlockSize / SymbolSize

	// WordsPerBlock is the number of 32-bit words in one block (32); BDI,
	// FPC, C-PACK and BPC operate on 32-bit words.
	WordsPerBlock = BlockSize / 4
)

// Encoded is the result of compressing one block.
//
// Bits is the compressed size in bits including any per-block header the
// technique requires; it is the quantity the paper calls "comp size".
// Payload is the technique-specific bitstream needed to reconstruct the
// block. Lossy reports whether the encoding discarded information (only SLC
// produces lossy encodings).
type Encoded struct {
	Bits    int
	Payload []byte
	Lossy   bool
}

// Bytes returns the compressed size rounded up to whole bytes.
func (e Encoded) Bytes() int { return (e.Bits + 7) / 8 }

// Codec compresses and decompresses fixed-size memory blocks.
//
// Compress must accept exactly BlockSize bytes. Decompress must reconstruct
// the original block exactly for lossless codecs; dst must have room for
// BlockSize bytes.
type Codec interface {
	Name() string
	Compress(block []byte) Encoded
	Decompress(enc Encoded, dst []byte) error
}

// SizeOnly is implemented by codecs that can report the compressed size of a
// block cheaply, without materialising the bitstream. SLC uses this fast path
// to choose a compression mode before compressing (paper §III-C).
type SizeOnly interface {
	CompressedBits(block []byte) int
}

// Syncer is implemented by codecs that can run the pipeline's per-block sync
// step — compress, and apply any lossy write-back into block in place —
// without materialising a bitstream. It must be equivalent to
// Compress followed (when Lossy) by Decompress copied over block: the same
// bits, the same lossy flag, the same final block contents. The pipeline
// prefers it because it keeps the per-block steady state allocation-free.
type Syncer interface {
	SyncBlock(block []byte) (bits int, lossy bool)
}

// CheckBlock validates that b is exactly one block long.
func CheckBlock(b []byte) error {
	if len(b) != BlockSize {
		return fmt.Errorf("compress: block must be %d bytes, got %d", BlockSize, len(b))
	}
	return nil
}

// Words unpacks a block into its 32 little-endian 32-bit words.
func Words(block []byte) [WordsPerBlock]uint32 {
	var w [WordsPerBlock]uint32
	for i := range w {
		w[i] = binary.LittleEndian.Uint32(block[i*4:])
	}
	return w
}

// PutWords packs 32 little-endian 32-bit words into dst.
func PutWords(dst []byte, w [WordsPerBlock]uint32) {
	for i, v := range w {
		binary.LittleEndian.PutUint32(dst[i*4:], v)
	}
}

// Symbols unpacks a block into its 64 little-endian 16-bit symbols.
func Symbols(block []byte) [SymbolsPerBlock]uint16 {
	var s [SymbolsPerBlock]uint16
	for i := range s {
		s[i] = binary.LittleEndian.Uint16(block[i*2:])
	}
	return s
}

// PutSymbols packs 64 little-endian 16-bit symbols into dst.
func PutSymbols(dst []byte, s [SymbolsPerBlock]uint16) {
	for i, v := range s {
		binary.LittleEndian.PutUint16(dst[i*2:], v)
	}
}

// Raw is the identity codec: blocks are stored uncompressed. It anchors the
// no-compression baseline in the simulator and experiments.
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "RAW" }

// Compress implements Codec; the encoded size is always a full block.
func (Raw) Compress(block []byte) Encoded {
	p := make([]byte, BlockSize)
	copy(p, block)
	return Encoded{Bits: BlockBits, Payload: p}
}

// CompressedBits implements SizeOnly.
func (Raw) CompressedBits([]byte) int { return BlockBits }

// SyncBlock implements Syncer; the identity codec never mutates the block.
func (Raw) SyncBlock([]byte) (int, bool) { return BlockBits, false }

// Decompress implements Codec.
func (Raw) Decompress(enc Encoded, dst []byte) error {
	if len(enc.Payload) != BlockSize {
		return fmt.Errorf("compress: raw payload must be %d bytes, got %d", BlockSize, len(enc.Payload))
	}
	copy(dst, enc.Payload)
	return nil
}
