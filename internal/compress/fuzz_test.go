package compress_test

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"

	"repro/internal/compress"
	_ "repro/internal/compress/all" // register every codec
	"repro/internal/compress/e2mc"
	"repro/internal/slc"
)

// Native fuzz targets for every registered codec: any 128-byte block must
// round-trip exactly through a lossless codec, and a lossy codec may only
// perturb a bounded contiguous symbol span (the TSLC invariant). The
// targets are grouped into families so CI can give each family its own
// coverage-guided budget; TestFuzzFamiliesCoverRegistry pins the grouping
// to compress.Names(), so registering a new codec fails the suite until it
// is assigned to a family.

var fuzzFamilies = map[string][]string{
	// 32-bit-word codecs plus the byte/sector dedup pair (lz4b's window
	// matcher and zcd's sector classifier share the word family's seeds:
	// the 1024-bit boundary sweep and the zero/repeat blocks are exactly
	// their interesting inputs).
	"word":    {"bdi", "bpc", "cpack", "fpc", "lz4b", "zcd"},
	"entropy": {"e2mc", "hycomp", "raw"},              // table-driven + identity
	"slc":     {"tslc-simp", "tslc-pred", "tslc-opt"}, // lossy TSLC variants
}

func TestFuzzFamiliesCoverRegistry(t *testing.T) {
	var covered []string
	for fam, names := range fuzzFamilies {
		for _, n := range names {
			if _, ok := compress.Lookup(n); !ok {
				t.Errorf("fuzz family %q lists unregistered codec %q", fam, n)
			}
			covered = append(covered, n)
		}
	}
	sort.Strings(covered)
	registered := compress.Names()
	if len(covered) != len(registered) {
		t.Fatalf("fuzz families cover %d codecs, registry has %d: %v vs %v\n"+
			"assign every new codec to a family in fuzzFamilies",
			len(covered), len(registered), covered, registered)
	}
	for i, n := range registered {
		if covered[i] != n {
			t.Errorf("registered codec %q is not covered by any fuzz family", n)
		}
	}
}

// fuzzBlock normalises arbitrary fuzz input to exactly one block: truncate
// long inputs, tile short ones (so tiny seeds still explore all 128 bytes).
func fuzzBlock(data []byte) []byte {
	block := make([]byte, compress.BlockSize)
	if len(data) == 0 {
		return block
	}
	for i := range block {
		block[i] = data[i%len(data)]
	}
	return block
}

// buildCodec constructs one registered codec for a block. Table-driven
// codecs train on the block itself (any valid table must round-trip); lossy
// codecs run at the paper's default threshold.
func buildCodec(tb testing.TB, name string, block []byte) compress.Codec {
	tb.Helper()
	info, ok := compress.Lookup(name)
	if !ok {
		tb.Fatalf("codec %q not registered", name)
	}
	ctx := compress.BuildContext{MAG: compress.MAG32}
	if info.NeedsTable {
		tr := e2mc.NewTrainer()
		tr.Sample(block)
		tab, err := tr.Build(0, 0)
		if err != nil {
			tb.Fatalf("%s: training on fuzz block: %v", name, err)
		}
		ctx.Table = tab
	}
	c, err := info.New(ctx)
	if err != nil {
		tb.Fatalf("%s: build: %v", name, err)
	}
	return c
}

// checkRoundTrip compresses and decompresses one block through one codec
// and asserts the family's round-trip contract.
func checkRoundTrip(t *testing.T, name string, block []byte) {
	t.Helper()
	c := buildCodec(t, name, block)
	enc := c.Compress(block)
	if enc.Bits <= 0 || enc.Bits > compress.BlockBits {
		t.Fatalf("%s: compressed size %d bits outside (0, %d]", name, enc.Bits, compress.BlockBits)
	}
	if len(enc.Payload) < enc.Bytes() {
		t.Fatalf("%s: payload %d bytes shorter than encoded size %d bytes", name, len(enc.Payload), enc.Bytes())
	}
	if so, ok := c.(compress.SizeOnly); ok && !enc.Lossy {
		if got := so.CompressedBits(block); got != enc.Bits {
			t.Fatalf("%s: CompressedBits %d != Compress %d", name, got, enc.Bits)
		}
	}
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err != nil {
		t.Fatalf("%s: decompress own output: %v", name, err)
	}
	if !enc.Lossy {
		if !bytes.Equal(dst, block) {
			t.Fatalf("%s: lossless round trip corrupted block\n in: %x\nout: %x", name, block, dst)
		}
		return
	}
	// Lossy: only a bounded contiguous span of 16-bit symbols may change.
	in, out := compress.Symbols(block), compress.Symbols(dst)
	first, last, diffs := -1, -1, 0
	for i := range in {
		if in[i] != out[i] {
			if first < 0 {
				first = i
			}
			last = i
			diffs++
		}
	}
	if diffs == 0 {
		return
	}
	if diffs > slc.MaxApproxSymbols || last-first+1 > slc.MaxApproxSymbols {
		t.Fatalf("%s: lossy output differs in %d symbols over span [%d,%d], max %d",
			name, diffs, first, last, slc.MaxApproxSymbols)
	}
	// The decision that produced a lossy encoding must have respected the
	// threshold and landed on the burst budget.
	if sc, ok := c.(*slc.Codec); ok {
		d := sc.Decide(block)
		if d.Mode == slc.ModeLossy {
			if d.ExtraBits <= 0 || d.ExtraBits > sc.Config().ThresholdBits {
				t.Fatalf("%s: lossy decision with ExtraBits %d outside (0, %d]",
					name, d.ExtraBits, sc.Config().ThresholdBits)
			}
			if d.StoredBits > d.BudgetBits {
				t.Fatalf("%s: lossy stored %d bits above budget %d", name, d.StoredBits, d.BudgetBits)
			}
		}
	}
}

// addSeeds seeds a fuzz corpus with the structured blocks that have caught
// real bugs: the all-zero and all-ones blocks, ramps, and — from the PR 2
// FPC/C-PACK bugfix — mixes of incompressible and compressible words that
// sweep the stored size across the exactly-1024-bit boundary (a stream of
// exactly BlockBits must be stored raw, because Decompress reads any
// full-size encoding as a raw payload).
func addSeeds(f *testing.F) {
	zero := make([]byte, compress.BlockSize)
	f.Add(zero)
	ones := bytes.Repeat([]byte{0xFF}, compress.BlockSize)
	f.Add(ones)
	ramp := make([]byte, compress.BlockSize)
	for i := range ramp {
		ramp[i] = byte(i)
	}
	f.Add(ramp)
	// k high-entropy words followed by zeros, for k sweeping the block: the
	// per-word costs walk the compressed size through the 1024-bit boundary
	// for the word codecs, and give the entropy codecs skewed tables with a
	// heavy escape tail.
	for _, k := range []int{1, 8, 16, 24, 28, 29, 30, 31, 32} {
		var words [compress.WordsPerBlock]uint32
		x := uint32(0x2545F491)
		for i := 0; i < k; i++ {
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			words[i] = x
		}
		block := make([]byte, compress.BlockSize)
		compress.PutWords(block, words)
		f.Add(block)
	}
	// One seed per zcd sector shape at 32 B MAG — zero, repeated word,
	// literal, repeated word — which is also an lz4b stream mixing long
	// overlapping matches with an incompressible span.
	mixed := make([]byte, compress.BlockSize)
	for i := 32; i < 64; i += 4 {
		binary.LittleEndian.PutUint32(mixed[i:], 0x40490FDB)
	}
	x := uint32(0x9E3779B9)
	for i := 64; i < 96; i += 4 {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		binary.LittleEndian.PutUint32(mixed[i:], x)
	}
	for i := 96; i < 128; i += 4 {
		binary.LittleEndian.PutUint32(mixed[i:], 0x40490FDB)
	}
	f.Add(mixed)
}

// fuzzFamily runs one family's codecs over a normalised fuzz input.
func fuzzFamily(f *testing.F, family string) {
	addSeeds(f)
	names := fuzzFamilies[family]
	f.Fuzz(func(t *testing.T, data []byte) {
		block := fuzzBlock(data)
		for _, name := range names {
			checkRoundTrip(t, name, block)
		}
	})
}

func FuzzRoundTripWord(f *testing.F)    { fuzzFamily(f, "word") }
func FuzzRoundTripEntropy(f *testing.F) { fuzzFamily(f, "entropy") }
func FuzzRoundTripSLC(f *testing.F)     { fuzzFamily(f, "slc") }
