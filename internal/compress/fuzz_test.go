package compress_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"sort"
	"testing"

	"repro/internal/compress"
	_ "repro/internal/compress/all" // register every codec
	"repro/internal/compress/e2mc"
	"repro/internal/slc"
)

// Native fuzz targets for every registered codec: any 128-byte block must
// round-trip exactly through a lossless codec, and a lossy codec may only
// perturb a bounded contiguous symbol span (the TSLC invariant). The
// targets are grouped into families so CI can give each family its own
// coverage-guided budget; TestFuzzFamiliesCoverRegistry pins the grouping
// to compress.Names(), so registering a new codec fails the suite until it
// is assigned to a family.

var fuzzFamilies = map[string][]string{
	// 32-bit-word codecs plus the byte/sector dedup pair (lz4b's window
	// matcher and zcd's sector classifier share the word family's seeds:
	// the 1024-bit boundary sweep and the zero/repeat blocks are exactly
	// their interesting inputs).
	"word":    {"bdi", "bpc", "cpack", "fpc", "lz4b", "zcd"},
	"entropy": {"e2mc", "hycomp", "raw"},              // table-driven + identity
	"slc":     {"tslc-simp", "tslc-pred", "tslc-opt"}, // lossy TSLC variants
	"bounded": {"sz-lorenzo", "sz-linear"},            // error-bounded float codecs
}

func TestFuzzFamiliesCoverRegistry(t *testing.T) {
	var covered []string
	for fam, names := range fuzzFamilies {
		for _, n := range names {
			if _, ok := compress.Lookup(n); !ok {
				t.Errorf("fuzz family %q lists unregistered codec %q", fam, n)
			}
			covered = append(covered, n)
		}
	}
	sort.Strings(covered)
	registered := compress.Names()
	if len(covered) != len(registered) {
		t.Fatalf("fuzz families cover %d codecs, registry has %d: %v vs %v\n"+
			"assign every new codec to a family in fuzzFamilies",
			len(covered), len(registered), covered, registered)
	}
	for i, n := range registered {
		if covered[i] != n {
			t.Errorf("registered codec %q is not covered by any fuzz family", n)
		}
	}
}

// fuzzBlock normalises arbitrary fuzz input to exactly one block: truncate
// long inputs, tile short ones (so tiny seeds still explore all 128 bytes).
func fuzzBlock(data []byte) []byte {
	block := make([]byte, compress.BlockSize)
	if len(data) == 0 {
		return block
	}
	for i := range block {
		block[i] = data[i%len(data)]
	}
	return block
}

// buildCodec constructs one registered codec for a block. Table-driven
// codecs train on the block itself (any valid table must round-trip); lossy
// codecs run at the paper's default threshold.
func buildCodec(tb testing.TB, name string, block []byte) compress.Codec {
	tb.Helper()
	info, ok := compress.Lookup(name)
	if !ok {
		tb.Fatalf("codec %q not registered", name)
	}
	ctx := compress.BuildContext{MAG: compress.MAG32}
	if info.NeedsTable {
		tr := e2mc.NewTrainer()
		tr.Sample(block)
		tab, err := tr.Build(0, 0)
		if err != nil {
			tb.Fatalf("%s: training on fuzz block: %v", name, err)
		}
		ctx.Table = tab
	}
	c, err := info.New(ctx)
	if err != nil {
		tb.Fatalf("%s: build: %v", name, err)
	}
	return c
}

// checkRoundTrip compresses and decompresses one block through one codec
// and asserts the family's round-trip contract.
func checkRoundTrip(t *testing.T, name string, block []byte) {
	t.Helper()
	c := buildCodec(t, name, block)
	enc := c.Compress(block)
	if enc.Bits <= 0 || enc.Bits > compress.BlockBits {
		t.Fatalf("%s: compressed size %d bits outside (0, %d]", name, enc.Bits, compress.BlockBits)
	}
	if len(enc.Payload) < enc.Bytes() {
		t.Fatalf("%s: payload %d bytes shorter than encoded size %d bytes", name, len(enc.Payload), enc.Bytes())
	}
	if so, ok := c.(compress.SizeOnly); ok && !enc.Lossy {
		if got := so.CompressedBits(block); got != enc.Bits {
			t.Fatalf("%s: CompressedBits %d != Compress %d", name, got, enc.Bits)
		}
	}
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err != nil {
		t.Fatalf("%s: decompress own output: %v", name, err)
	}
	if !enc.Lossy {
		if !bytes.Equal(dst, block) {
			t.Fatalf("%s: lossless round trip corrupted block\n in: %x\nout: %x", name, block, dst)
		}
		return
	}
	// Lossy: only a bounded contiguous span of 16-bit symbols may change.
	in, out := compress.Symbols(block), compress.Symbols(dst)
	first, last, diffs := -1, -1, 0
	for i := range in {
		if in[i] != out[i] {
			if first < 0 {
				first = i
			}
			last = i
			diffs++
		}
	}
	if diffs == 0 {
		return
	}
	if diffs > slc.MaxApproxSymbols || last-first+1 > slc.MaxApproxSymbols {
		t.Fatalf("%s: lossy output differs in %d symbols over span [%d,%d], max %d",
			name, diffs, first, last, slc.MaxApproxSymbols)
	}
	// The decision that produced a lossy encoding must have respected the
	// threshold and landed on the burst budget.
	if sc, ok := c.(*slc.Codec); ok {
		d := sc.Decide(block)
		if d.Mode == slc.ModeLossy {
			if d.ExtraBits <= 0 || d.ExtraBits > sc.Config().ThresholdBits {
				t.Fatalf("%s: lossy decision with ExtraBits %d outside (0, %d]",
					name, d.ExtraBits, sc.Config().ThresholdBits)
			}
			if d.StoredBits > d.BudgetBits {
				t.Fatalf("%s: lossy stored %d bits above budget %d", name, d.StoredBits, d.BudgetBits)
			}
		}
	}
}

// addSeeds seeds a fuzz corpus with the structured blocks that have caught
// real bugs: the all-zero and all-ones blocks, ramps, and — from the PR 2
// FPC/C-PACK bugfix — mixes of incompressible and compressible words that
// sweep the stored size across the exactly-1024-bit boundary (a stream of
// exactly BlockBits must be stored raw, because Decompress reads any
// full-size encoding as a raw payload).
func addSeeds(f *testing.F) {
	zero := make([]byte, compress.BlockSize)
	f.Add(zero)
	ones := bytes.Repeat([]byte{0xFF}, compress.BlockSize)
	f.Add(ones)
	ramp := make([]byte, compress.BlockSize)
	for i := range ramp {
		ramp[i] = byte(i)
	}
	f.Add(ramp)
	// k high-entropy words followed by zeros, for k sweeping the block: the
	// per-word costs walk the compressed size through the 1024-bit boundary
	// for the word codecs, and give the entropy codecs skewed tables with a
	// heavy escape tail.
	for _, k := range []int{1, 8, 16, 24, 28, 29, 30, 31, 32} {
		var words [compress.WordsPerBlock]uint32
		x := uint32(0x2545F491)
		for i := 0; i < k; i++ {
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			words[i] = x
		}
		block := make([]byte, compress.BlockSize)
		compress.PutWords(block, words)
		f.Add(block)
	}
	// One seed per zcd sector shape at 32 B MAG — zero, repeated word,
	// literal, repeated word — which is also an lz4b stream mixing long
	// overlapping matches with an incompressible span.
	mixed := make([]byte, compress.BlockSize)
	for i := 32; i < 64; i += 4 {
		binary.LittleEndian.PutUint32(mixed[i:], 0x40490FDB)
	}
	x := uint32(0x9E3779B9)
	for i := 64; i < 96; i += 4 {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		binary.LittleEndian.PutUint32(mixed[i:], x)
	}
	for i := 96; i < 128; i += 4 {
		binary.LittleEndian.PutUint32(mixed[i:], 0x40490FDB)
	}
	f.Add(mixed)
}

// fuzzFamily runs one family's codecs over a normalised fuzz input.
func fuzzFamily(f *testing.F, family string) {
	addSeeds(f)
	names := fuzzFamilies[family]
	f.Fuzz(func(t *testing.T, data []byte) {
		block := fuzzBlock(data)
		for _, name := range names {
			checkRoundTrip(t, name, block)
		}
	})
}

func FuzzRoundTripWord(f *testing.F)    { fuzzFamily(f, "word") }
func FuzzRoundTripEntropy(f *testing.F) { fuzzFamily(f, "entropy") }
func FuzzRoundTripSLC(f *testing.F)     { fuzzFamily(f, "slc") }

// checkBoundedRoundTrip asserts the error-bounded contract on one codec at
// one bound: every reconstructed float32 within the bound, non-finite lanes
// bit-exact, sizes exact (SizeOnly agrees whether or not the encoding is
// lossy), encoding deterministic, and the Syncer fast path equivalent to
// Compress followed by Decompress.
func checkBoundedRoundTrip(t *testing.T, name string, bound float64, block []byte) {
	t.Helper()
	info, ok := compress.Lookup(name)
	if !ok {
		t.Fatalf("codec %q not registered", name)
	}
	if !info.LossyBounded {
		t.Fatalf("codec %q is in the bounded family without the LossyBounded trait", name)
	}
	c, err := info.New(compress.BuildContext{MAG: compress.MAG32, ErrorBound: bound})
	if err != nil {
		t.Fatalf("%s: build at bound %g: %v", name, bound, err)
	}
	enc := c.Compress(block)
	if enc.Bits <= 0 || enc.Bits > compress.BlockBits {
		t.Fatalf("%s: compressed size %d bits outside (0, %d]", name, enc.Bits, compress.BlockBits)
	}
	if len(enc.Payload) < enc.Bytes() {
		t.Fatalf("%s: payload %d bytes shorter than encoded size %d bytes", name, len(enc.Payload), enc.Bytes())
	}
	if got := c.(compress.SizeOnly).CompressedBits(block); got != enc.Bits {
		t.Fatalf("%s: CompressedBits %d != Compress %d", name, got, enc.Bits)
	}
	enc2 := c.Compress(block)
	if enc2.Bits != enc.Bits || enc2.Lossy != enc.Lossy || !bytes.Equal(enc2.Payload, enc.Payload) {
		t.Fatalf("%s: two encodes of the same block differ", name)
	}
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err != nil {
		t.Fatalf("%s: decompress own output: %v", name, err)
	}
	if !enc.Lossy && !bytes.Equal(dst, block) {
		t.Fatalf("%s: non-lossy encoding does not round-trip exactly", name)
	}
	if diff := maxFloatDiff(block, dst); diff > bound {
		t.Fatalf("%s: reconstruction off by %g at bound %g\n in: %x\nout: %x",
			name, diff, bound, block, dst)
	}
	synced := make([]byte, compress.BlockSize)
	copy(synced, block)
	bits, lossy := c.(compress.Syncer).SyncBlock(synced)
	if bits != enc.Bits || lossy != enc.Lossy {
		t.Fatalf("%s: SyncBlock (%d, %v) disagrees with Compress (%d, %v)",
			name, bits, lossy, enc.Bits, enc.Lossy)
	}
	if lossy && !bytes.Equal(synced, dst) {
		t.Fatalf("%s: SyncBlock write-back differs from Decompress output", name)
	}
	if !lossy && !bytes.Equal(synced, block) {
		t.Fatalf("%s: non-lossy SyncBlock mutated the block", name)
	}
}

// addBoundedSeeds extends the shared corpus with float-specific blocks: the
// IEEE-754 special values that must pass through bit-exact (NaN, ±Inf,
// denormals), smooth float ramps that quantize everywhere, and mixes of
// unpredictable and smooth lanes that walk the encoded size toward the
// inclusive 1024-bit raw-fallback boundary.
func addBoundedSeeds(f *testing.F) {
	addSeeds(f)
	var specials [compress.WordsPerBlock]uint32
	patterns := []uint32{
		0x7FC00000,          // quiet NaN
		0x7F800000,          // +Inf
		0xFF800000,          // −Inf
		0x00000001,          // smallest denormal
		0x807FFFFF,          // largest negative denormal
		0x7F7FFFFF,          // MaxFloat32
		math.Float32bits(0), // ±0 pair with the next entry
		0x80000000,
	}
	for i := range specials {
		specials[i] = patterns[i%len(patterns)]
	}
	block := make([]byte, compress.BlockSize)
	compress.PutWords(block, specials)
	f.Add(append([]byte(nil), block...))
	// Smooth ramp: tiny deltas, the all-quantized best case.
	var ramp [compress.WordsPerBlock]uint32
	for i := range ramp {
		ramp[i] = math.Float32bits(1 + float32(i)*1e-4)
	}
	compress.PutWords(block, ramp)
	f.Add(append([]byte(nil), block...))
	// k unpredictable magnitudes then a smooth tail: sweeps the literal
	// count through the raw-fallback boundary.
	for _, k := range []int{28, 29, 30, 31, 32} {
		var words [compress.WordsPerBlock]uint32
		x := uint32(0x2545F491)
		for i := range words {
			if i < k {
				x ^= x << 13
				x ^= x >> 17
				x ^= x << 5
				words[i] = math.Float32bits(float32(int32(x)) * 1e8)
			} else {
				words[i] = math.Float32bits(float32(i))
			}
		}
		compress.PutWords(block, words)
		f.Add(append([]byte(nil), block...))
	}
}

// FuzzBoundedRoundTrip drives the error-bounded family across three decades
// of bounds per input.
func FuzzBoundedRoundTrip(f *testing.F) {
	addBoundedSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		block := fuzzBlock(data)
		for _, name := range fuzzFamilies["bounded"] {
			for _, bound := range []float64{1e-1, 1e-3, 1e-6} {
				checkBoundedRoundTrip(t, name, bound, block)
			}
		}
	})
}
