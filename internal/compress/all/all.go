// Package all registers every codec in the repository by importing each
// codec package for its Register side effect. Import it (blank) from any
// program or test that selects codecs by registry name; the experiments
// runner imports it, so the cmd/ binaries get the full set transitively.
package all

import (
	// Each import registers one or more codecs with internal/compress.
	_ "repro/internal/compress/bdi"
	_ "repro/internal/compress/bpc"
	_ "repro/internal/compress/cpack"
	_ "repro/internal/compress/e2mc"
	_ "repro/internal/compress/fpc"
	_ "repro/internal/compress/hycomp"
	_ "repro/internal/compress/lz4b"
	_ "repro/internal/compress/sz"
	_ "repro/internal/compress/zcd"
	_ "repro/internal/slc"
)
