package zcd

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/compress"
)

func codec(t *testing.T, mag compress.MAG) Codec {
	t.Helper()
	c, err := New(mag)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func roundTrip(t *testing.T, c Codec, block []byte) compress.Encoded {
	t.Helper()
	enc := c.Compress(block)
	if enc.Bits <= 0 || enc.Bits > compress.BlockBits {
		t.Fatalf("compressed size %d bits outside (0, %d]", enc.Bits, compress.BlockBits)
	}
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(dst, block) {
		t.Fatalf("round trip mismatch\n got %x\nwant %x", dst, block)
	}
	return enc
}

func TestNewValidatesMAG(t *testing.T) {
	for _, mag := range []compress.MAG{0, -32, 3, 256} {
		if _, err := New(mag); err == nil {
			t.Errorf("New(%d) accepted an invalid MAG", int(mag))
		}
	}
	if _, err := New(compress.MAG32); err != nil {
		t.Errorf("New(32): %v", err)
	}
}

func TestZeroBlockIsOneCodePerSector(t *testing.T) {
	for _, mag := range []compress.MAG{compress.MAG16, compress.MAG32, compress.MAG64} {
		c := codec(t, mag)
		block := make([]byte, compress.BlockSize)
		enc := roundTrip(t, c, block)
		want := mag.MaxBursts() * codeBits
		if enc.Bits != want {
			t.Errorf("MAG %s: zero block = %d bits, want %d", mag, enc.Bits, want)
		}
		// The headline property: an all-zero block always fits one burst.
		if got := mag.Bursts(enc.Bits); got != 1 {
			t.Errorf("MAG %s: zero block needs %d bursts, want 1", mag, got)
		}
	}
}

func TestRepeatedWordBlock(t *testing.T) {
	c := codec(t, compress.MAG32)
	block := make([]byte, compress.BlockSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(block[i*4:], 0x3F800000) // 1.0f everywhere
	}
	enc := roundTrip(t, c, block)
	want := compress.MAG32.MaxBursts() * (codeBits + 32)
	if enc.Bits != want {
		t.Errorf("repeated block = %d bits, want %d", enc.Bits, want)
	}
	if got := compress.MAG32.Bursts(enc.Bits); got != 1 {
		t.Errorf("repeated block needs %d bursts, want 1", got)
	}
}

func TestMixedSectors(t *testing.T) {
	// Sector 0 zero, sector 1 repeated, sectors 2-3 literal noise.
	c := codec(t, compress.MAG32)
	block := make([]byte, compress.BlockSize)
	for i := 32; i < 64; i += 4 {
		binary.LittleEndian.PutUint32(block[i:], 0xCAFEBABE)
	}
	rng := rand.New(rand.NewSource(5))
	rng.Read(block[64:])
	enc := roundTrip(t, c, block)
	want := codeBits + (codeBits + 32) + 2*(codeBits+compress.MAG32.Bits())
	if enc.Bits != want {
		t.Errorf("mixed block = %d bits, want %d", enc.Bits, want)
	}
}

func TestAllLiteralFallsBackToRaw(t *testing.T) {
	// Four literal sectors would cost BlockBits + 8 code bits: the raw
	// fallback must cap the size at exactly BlockBits.
	c := codec(t, compress.MAG32)
	block := make([]byte, compress.BlockSize)
	rng := rand.New(rand.NewSource(6))
	rng.Read(block)
	enc := roundTrip(t, c, block)
	if enc.Bits != compress.BlockBits {
		t.Errorf("incompressible block = %d bits, want %d (raw)", enc.Bits, compress.BlockBits)
	}
}

func TestCompressedBitsMatchesCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, mag := range []compress.MAG{compress.MAG16, compress.MAG32, compress.MAG64} {
		c := codec(t, mag)
		for trial := 0; trial < 200; trial++ {
			block := make([]byte, compress.BlockSize)
			// Random per-sector shape.
			for off := 0; off < len(block); off += int(mag) {
				switch rng.Intn(3) {
				case 0: // zero
				case 1:
					w := rng.Uint32()
					for i := off; i < off+int(mag); i += 4 {
						binary.LittleEndian.PutUint32(block[i:], w)
					}
				case 2:
					rng.Read(block[off : off+int(mag)])
				}
			}
			if got, want := c.CompressedBits(block), c.Compress(block).Bits; got != want {
				t.Fatalf("MAG %s trial %d: CompressedBits = %d, Compress.Bits = %d", mag, trial, got, want)
			}
			roundTrip(t, c, block)
		}
	}
}

func TestDecompressRejectsTruncatedStream(t *testing.T) {
	c := codec(t, compress.MAG32)
	w := compress.NewBitWriter(8)
	w.WriteBits(codeRep, codeBits) // repeated-word code with no word
	enc := compress.Encoded{Bits: w.Len(), Payload: w.Bytes()}
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err == nil {
		t.Error("expected exhausted-stream error")
	}
}

func TestDecompressRejectsUnknownCode(t *testing.T) {
	c := codec(t, compress.MAG32)
	w := compress.NewBitWriter(8)
	w.WriteBits(0b11, codeBits)
	enc := compress.Encoded{Bits: w.Len(), Payload: w.Bytes()}
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err == nil {
		t.Error("expected unknown-code error")
	}
}
