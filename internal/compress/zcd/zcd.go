// Package zcd implements zero-content dedup: a lossless codec that detects
// all-zero and single-repeated-value MAG sectors and collapses each to a
// 2-bit sector code (plus the one repeated 32-bit word where needed). The
// cuSZ+ line of work observes that zero and constant blocks dominate
// scientific data sets; zcd is the cheapest possible way to exploit that in
// a memory controller — a comparator tree per sector, no dictionary, no
// table, no entropy coding.
//
// The block is split into BlockSize/MAG sectors (the burst granularity the
// DRAM actually moves), and each sector contributes one code, MSB-first:
//
//	00          all-zero sector
//	01 w…       sector is one 32-bit word repeated (the word follows)
//	10 b…       literal sector (the MAG raw bytes follow)
//
// An all-zero 128-byte block therefore costs 2 bits per sector — 8 bits at
// 32 B MAG, always inside a single burst, so the simulator's metadata path
// (the MDC burst-count probe) is the only cost of fetching it; the
// registration's one-cycle latencies reflect that a zero/constant fill is a
// broadcast, not a decode pipeline. Blocks whose encoding would reach the
// uncompressed size are stored raw, like every other codec in the registry.
package zcd

import (
	"encoding/binary"
	"fmt"

	"repro/internal/compress"
)

// Sector codes, 2 bits each.
const (
	codeZero = 0b00
	codeRep  = 0b01
	codeLit  = 0b10
)

const codeBits = 2

// Codec is the zero-content-dedup compressor/decompressor for one MAG. Use
// New (or the registry) so the sector size is validated.
type Codec struct {
	mag compress.MAG
}

// New returns a codec splitting blocks into mag-sized sectors.
func New(mag compress.MAG) (Codec, error) {
	if !mag.Valid() {
		return Codec{}, fmt.Errorf("zcd: invalid MAG %d", int(mag))
	}
	if int(mag)%4 != 0 {
		return Codec{}, fmt.Errorf("zcd: MAG %d not a multiple of the 4-byte word", int(mag))
	}
	return Codec{mag: mag}, nil
}

// Name implements compress.Codec.
func (Codec) Name() string { return "ZCD" }

// MAG returns the sector granularity the codec runs at.
func (c Codec) MAG() compress.MAG { return c.mag }

// classify inspects one sector: all zero, one repeated 32-bit word, or
// literal content.
func classify(sector []byte) (code int, rep uint32) {
	w0 := binary.LittleEndian.Uint32(sector)
	uniform := true
	for off := 4; off < len(sector); off += 4 {
		if binary.LittleEndian.Uint32(sector[off:]) != w0 {
			uniform = false
			break
		}
	}
	if !uniform {
		return codeLit, 0
	}
	if w0 == 0 {
		return codeZero, 0
	}
	return codeRep, w0
}

// sectorBits returns the encoded size of one sector given its code.
func (c Codec) sectorBits(code int) int {
	switch code {
	case codeZero:
		return codeBits
	case codeRep:
		return codeBits + 32
	default:
		return codeBits + c.mag.Bits()
	}
}

// CompressedBits implements compress.SizeOnly.
func (c Codec) CompressedBits(block []byte) int {
	bits := 0
	for off := 0; off < len(block); off += int(c.mag) {
		code, _ := classify(block[off : off+int(c.mag)])
		bits += c.sectorBits(code)
	}
	if bits > compress.BlockBits {
		bits = compress.BlockBits
	}
	return bits
}

// Compress implements compress.Codec.
func (c Codec) Compress(block []byte) compress.Encoded {
	if err := compress.CheckBlock(block); err != nil {
		panic(err)
	}
	w := compress.NewBitWriter(compress.BlockBits)
	for off := 0; off < len(block); off += int(c.mag) {
		sector := block[off : off+int(c.mag)]
		code, rep := classify(sector)
		w.WriteBits(uint64(code), codeBits)
		switch code {
		case codeRep:
			w.WriteBits(uint64(rep), 32)
		case codeLit:
			for _, b := range sector {
				w.WriteBits(uint64(b), 8)
			}
		}
	}
	// Inclusive boundary: Decompress reads any BlockBits-sized encoding as
	// a raw payload, so an exactly 1024-bit stream must be stored raw. (All
	// literal sectors cost 2 bits over raw each, so this always fires for
	// blocks with no dedupable sector.)
	if w.Len() >= compress.BlockBits {
		p := make([]byte, compress.BlockSize)
		copy(p, block)
		return compress.Encoded{Bits: compress.BlockBits, Payload: p}
	}
	return compress.Encoded{Bits: w.Len(), Payload: w.Bytes()}
}

// Decompress implements compress.Codec.
func (c Codec) Decompress(e compress.Encoded, dst []byte) error {
	if len(dst) < compress.BlockSize {
		return fmt.Errorf("zcd: dst too small (%d bytes)", len(dst))
	}
	if e.Bits >= compress.BlockBits {
		if len(e.Payload) < compress.BlockSize {
			return fmt.Errorf("zcd: raw payload too short")
		}
		copy(dst, e.Payload[:compress.BlockSize])
		return nil
	}
	r := compress.NewBitReader(e.Payload)
	for off := 0; off < compress.BlockSize; off += int(c.mag) {
		sector := dst[off : off+int(c.mag)]
		code, err := r.ReadBits(codeBits)
		if err != nil {
			return fmt.Errorf("zcd: sector code at byte %d: %w", off, err)
		}
		switch code {
		case codeZero:
			for i := range sector {
				sector[i] = 0
			}
		case codeRep:
			w64, err := r.ReadBits(32)
			if err != nil {
				return fmt.Errorf("zcd: repeated word at byte %d: %w", off, err)
			}
			for i := 0; i < len(sector); i += 4 {
				binary.LittleEndian.PutUint32(sector[i:], uint32(w64))
			}
		case codeLit:
			for i := range sector {
				b, err := r.ReadBits(8)
				if err != nil {
					return fmt.Errorf("zcd: literal byte at %d: %w", off+i, err)
				}
				sector[i] = byte(b)
			}
		default:
			return fmt.Errorf("zcd: unknown sector code %02b at byte %d", code, off)
		}
	}
	return nil
}
