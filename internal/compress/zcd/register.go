package zcd

import "repro/internal/compress"

func init() {
	compress.Register("zcd", compress.Info{
		New: func(ctx compress.BuildContext) (compress.Codec, error) {
			mag := ctx.MAG
			if mag == 0 {
				mag = compress.MAG32
			}
			return New(mag)
		},
		// A dedupable sector is recognised by a comparator tree and
		// reconstructed by a broadcast fill: one cycle each way. The real
		// cost of a zcd block is the metadata path — the MDC probe that
		// learns the burst count — which the simulator already charges per
		// compressed access, so the codec latencies must not double-count
		// it.
		CompressCycles:   1,
		DecompressCycles: 1,
	})
}
