package e2mc

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/compress"
)

// buildPayload pastes encoded ways into a contiguous payload and returns the
// per-way byte offsets, mirroring what Compress and SLC's emit do.
func buildPayload(ways [PDWs][]byte) ([]byte, [PDWs]int) {
	var payload []byte
	var starts [PDWs]int
	for wy := 0; wy < PDWs; wy++ {
		starts[wy] = len(payload)
		payload = append(payload, ways[wy]...)
	}
	return payload, starts
}

// decodeTestTable trains a table whose alphabet mixes frequent symbols and
// escapes, so decode tests exercise both LUT entry kinds.
func decodeTestTable(t *testing.T) *Table {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	return trainOn(t, 300, func(i int) []byte {
		if i%4 == 0 {
			b := make([]byte, compress.BlockSize)
			rng.Read(b)
			return b
		}
		return smoothFloatBlock(rng)
	})
}

func TestDecodeWaysLUTMatchesReference(t *testing.T) {
	tab := decodeTestTable(t)
	if tab.lut == nil {
		t.Fatal("default table should have a decode LUT")
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		block := smoothFloatBlock(rng)
		if trial%3 == 0 {
			rng.Read(block)
		}
		syms := compress.Symbols(block)
		skipStart, skipLen := 0, 0
		if trial%2 == 1 {
			skipLen = 1 + rng.Intn(MaxApproxSpanForTest())
			skipStart = rng.Intn(compress.SymbolsPerBlock - skipLen)
		}
		ways, _, _ := tab.EncodeWays(syms, skipStart, skipLen)
		payload, starts := buildPayload(ways)
		ref, refErr := tab.DecodeWaysRef(payload, starts, skipStart, skipLen)
		lut, lutErr := tab.DecodeWays(payload, starts, skipStart, skipLen)
		if (refErr == nil) != (lutErr == nil) {
			t.Fatalf("trial %d: refErr=%v lutErr=%v", trial, refErr, lutErr)
		}
		if refErr == nil && ref != lut {
			t.Fatalf("trial %d: LUT decode diverges from reference", trial)
		}
	}
}

// MaxApproxSpanForTest bounds the random skip spans the decode tests use to
// SLC's 16-symbol maximum.
func MaxApproxSpanForTest() int { return 16 }

func TestDecodeWaysParallelMatchesSerial(t *testing.T) {
	tab := decodeTestTable(t)
	rng := rand.New(rand.NewSource(43))
	for _, gapK := range []int{4, 8, 16} {
		if err := tab.SetGapK(gapK); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 100; trial++ {
			block := smoothFloatBlock(rng)
			if trial%3 == 0 {
				rng.Read(block)
			}
			syms := compress.Symbols(block)
			ways, _, gaps := tab.EncodeWays(syms, 0, 0)
			payload, starts := buildPayload(ways)
			serial, err := tab.DecodeWays(payload, starts, 0, 0)
			if err != nil {
				t.Fatalf("gapK %d trial %d: serial: %v", gapK, trial, err)
			}
			par, err := tab.DecodeWaysParallel(payload, starts, 0, 0, &gaps)
			if err != nil {
				t.Fatalf("gapK %d trial %d: parallel: %v", gapK, trial, err)
			}
			if par != serial {
				t.Fatalf("gapK %d trial %d: parallel decode diverges from serial", gapK, trial)
			}
		}
	}
	if err := tab.SetGapK(DefaultGapK); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressParallelMatchesDecompress(t *testing.T) {
	tab := decodeTestTable(t)
	c := New(tab)
	rng := rand.New(rand.NewSource(44))
	serial := make([]byte, compress.BlockSize)
	par := make([]byte, compress.BlockSize)
	for trial := 0; trial < 200; trial++ {
		block := smoothFloatBlock(rng)
		if trial%5 == 0 {
			rng.Read(block) // exercises the raw-stored path too
		}
		enc, gaps := c.CompressWithGaps(block)
		if err := c.Decompress(enc, serial); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := c.DecompressParallel(enc, &gaps, par); err != nil {
			t.Fatalf("trial %d: parallel: %v", trial, err)
		}
		if !bytes.Equal(par, serial) {
			t.Fatalf("trial %d: parallel decompress diverges", trial)
		}
		if !bytes.Equal(serial, block) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestDecodeWaysRejectsBadWayStart(t *testing.T) {
	tab := decodeTestTable(t)
	payload := make([]byte, 16)
	for _, starts := range [][PDWs]int{
		{0, 4, 8, 17}, // beyond payload
		{-1, 0, 0, 0}, // negative
	} {
		if _, err := tab.DecodeWays(payload, starts, 0, 0); err == nil {
			t.Errorf("starts %v: LUT decode accepted bad way start", starts)
		}
		if _, err := tab.DecodeWaysRef(payload, starts, 0, 0); err == nil {
			t.Errorf("starts %v: reference decode accepted bad way start", starts)
		}
		if _, err := tab.DecodeWaysParallel(payload, starts, 0, 0, &GapArray{}); err == nil {
			t.Errorf("starts %v: parallel decode accepted bad way start", starts)
		}
	}
}

func TestDecodeWaysAllocFree(t *testing.T) {
	tab := decodeTestTable(t)
	rng := rand.New(rand.NewSource(45))
	syms := compress.Symbols(smoothFloatBlock(rng))
	ways, _, _ := tab.EncodeWays(syms, 0, 0)
	payload, starts := buildPayload(ways)
	if _, err := tab.DecodeWays(payload, starts, 0, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := tab.DecodeWays(payload, starts, 0, 0); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Table.DecodeWays steady state allocates %.1f objects per block, want 0", allocs)
	}
}

// FuzzDecodeLUT cross-checks the LUT decoder against the retained bit-by-bit
// reference on arbitrary payloads: both must agree on error versus success,
// and on the decoded symbols when both succeed; neither may panic or read
// outside the payload. When the reference succeeds, the decoded symbols are
// re-encoded to obtain an honest gap array and the parallel decoder must
// reproduce the serial result exactly; with fuzzer-controlled (possibly
// corrupt) gap offsets the parallel decoder must still never panic.
func FuzzDecodeLUT(f *testing.F) {
	rng := rand.New(rand.NewSource(46))
	tr := NewTrainer()
	for i := 0; i < 300; i++ {
		if i%4 == 0 {
			b := make([]byte, compress.BlockSize)
			rng.Read(b)
			tr.Sample(b)
			continue
		}
		tr.Sample(smoothFloatBlock(rng))
	}
	tab, err := tr.Build(0, 0)
	if err != nil {
		f.Fatal(err)
	}
	if tab.lut == nil {
		f.Fatal("fuzz table should have a decode LUT")
	}

	// Seed with valid encodings so the fuzzer starts from decodable streams.
	for i := 0; i < 4; i++ {
		syms := compress.Symbols(smoothFloatBlock(rng))
		ways, _, _ := tab.EncodeWays(syms, 0, 0)
		payload, starts := buildPayload(ways)
		f.Add(payload, byte(starts[0]), byte(starts[1]), byte(starts[2]), byte(starts[3]), byte(0), byte(0))
	}
	f.Add([]byte{}, byte(0), byte(0), byte(0), byte(0), byte(3), byte(9))
	f.Add([]byte{0xff, 0x00, 0xa5}, byte(0), byte(1), byte(2), byte(3), byte(60), byte(16))

	f.Fuzz(func(t *testing.T, payload []byte, s0, s1, s2, s3, ss, sl byte) {
		starts := [PDWs]int{int(s0), int(s1), int(s2), int(s3)}
		skipLen := int(sl) % (MaxApproxSpanForTest() + 1)
		skipStart := 0
		if skipLen > 0 {
			skipStart = int(ss) % (compress.SymbolsPerBlock - skipLen + 1)
		}

		ref, refErr := tab.DecodeWaysRef(payload, starts, skipStart, skipLen)
		lut, lutErr := tab.DecodeWays(payload, starts, skipStart, skipLen)
		if (refErr == nil) != (lutErr == nil) {
			t.Fatalf("decoders disagree on validity: refErr=%v lutErr=%v", refErr, lutErr)
		}
		if refErr != nil {
			// Malformed stream: both errored, neither panicked. Run the
			// parallel decoder with fuzzer-derived gaps purely for its
			// no-panic/no-overread guarantee.
			var gaps GapArray
			for i := range gaps {
				if i < len(payload) {
					gaps[i] = uint16(payload[i]) << uint(i%8)
				}
			}
			_, _ = tab.DecodeWaysParallel(payload, starts, skipStart, skipLen, &gaps)
			return
		}
		if lut != ref {
			t.Fatal("LUT decode diverges from reference on valid stream")
		}

		// Honest gap array: re-encode the decoded symbols and require the
		// parallel decode to be bitwise-identical to the serial result.
		ways, _, gaps := tab.EncodeWays(ref, skipStart, skipLen)
		payload2, starts2 := buildPayload(ways)
		serial, err := tab.DecodeWays(payload2, starts2, skipStart, skipLen)
		if err != nil {
			t.Fatalf("re-encoded stream failed serial decode: %v", err)
		}
		par, err := tab.DecodeWaysParallel(payload2, starts2, skipStart, skipLen, &gaps)
		if err != nil {
			t.Fatalf("re-encoded stream failed parallel decode: %v", err)
		}
		if par != serial {
			t.Fatal("parallel decode diverges from serial on honest gap array")
		}
	})
}
