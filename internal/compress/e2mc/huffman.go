package e2mc

import (
	"fmt"
	"sort"
)

// lengthLimitedCodeLengths computes optimal prefix-code lengths for the given
// weights with no code longer than maxLen bits, using the boundary
// package-merge algorithm (Larmore & Hirschberg, 1990). It returns one length
// per weight; weights of zero are treated as one.
//
// E2MC bounds its codeword length so that per-symbol costs stay small enough
// for the compressed-size adder (and, in SLC, for the TSLC tree sums); the
// paper's configuration fits every per-symbol cost in a few bits.
func lengthLimitedCodeLengths(weights []uint64, maxLen int) ([]uint8, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("e2mc: no symbols")
	}
	if n == 1 {
		return []uint8{1}, nil
	}
	if maxLen < 1 || n > 1<<uint(maxLen) {
		return nil, fmt.Errorf("e2mc: %d symbols do not fit in %d-bit codes", n, maxLen)
	}

	type node struct {
		weight uint64
		item   int32 // leaf index, or -1 for a package
		a, b   *node
	}

	// Leaves sorted by weight ascending (stable on index for determinism).
	leaves := make([]*node, n)
	for i := range leaves {
		w := weights[i]
		if w == 0 {
			w = 1
		}
		leaves[i] = &node{weight: w, item: int32(i)}
	}
	sort.SliceStable(leaves, func(i, j int) bool { return leaves[i].weight < leaves[j].weight })

	// lists[l] is the merged list at level l; level 0 is the deepest
	// (longest codes). Build maxLen levels.
	prev := leaves
	for level := 1; level < maxLen; level++ {
		var packages []*node
		for i := 0; i+1 < len(prev); i += 2 {
			packages = append(packages, &node{
				weight: prev[i].weight + prev[i+1].weight,
				item:   -1,
				a:      prev[i],
				b:      prev[i+1],
			})
		}
		// Merge leaves and packages by weight.
		merged := make([]*node, 0, n+len(packages))
		li, pi := 0, 0
		for li < n || pi < len(packages) {
			if pi >= len(packages) || (li < n && leaves[li].weight <= packages[pi].weight) {
				merged = append(merged, leaves[li])
				li++
			} else {
				merged = append(merged, packages[pi])
				pi++
			}
		}
		prev = merged
	}

	// The optimal solution takes the first 2n-2 entries of the final list;
	// each leaf's code length is its number of occurrences. Packages nest at
	// most maxLen deep, so an explicit stack bounds the walk without
	// recursion.
	lengths := make([]uint8, n)
	stack := make([]*node, 0, maxLen+2)
	for _, top := range prev[:2*n-2] {
		stack = append(stack[:0], top)
		for len(stack) > 0 {
			nd := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if nd.item >= 0 {
				lengths[nd.item]++
				continue
			}
			stack = append(stack, nd.b, nd.a)
		}
	}
	for i, l := range lengths {
		if l == 0 || int(l) > maxLen {
			return nil, fmt.Errorf("e2mc: package-merge produced length %d for symbol %d", l, i)
		}
	}
	return lengths, nil
}

// canonical holds a canonical Huffman code: deterministic codeword assignment
// from code lengths alone, enabling compact decode tables.
type canonical struct {
	maxLen    int
	codes     []uint32 // per item
	lens      []uint8  // per item
	count     []int    // count[l] = number of codes of length l
	firstCode []uint32 // canonical first code value per length
	firstIdx  []int    // index into ordered[] of the first code of length l
	ordered   []int32  // items in canonical order
}

// newCanonical assigns canonical codewords given per-item lengths.
func newCanonical(lens []uint8, maxLen int) (*canonical, error) {
	c := &canonical{
		maxLen:    maxLen,
		lens:      lens,
		codes:     make([]uint32, len(lens)),
		count:     make([]int, maxLen+1),
		firstCode: make([]uint32, maxLen+2),
		firstIdx:  make([]int, maxLen+2),
		ordered:   make([]int32, 0, len(lens)),
	}
	for _, l := range lens {
		c.count[l]++
	}
	// Kraft check.
	kraft := uint64(0)
	for l := 1; l <= maxLen; l++ {
		kraft += uint64(c.count[l]) << uint(maxLen-l)
	}
	if kraft > 1<<uint(maxLen) {
		return nil, fmt.Errorf("e2mc: code lengths violate Kraft inequality (%d > %d)", kraft, uint64(1)<<uint(maxLen))
	}
	// Canonical order: by (length, item index).
	type li struct {
		item int32
		len  uint8
	}
	items := make([]li, len(lens))
	for i, l := range lens {
		items[i] = li{int32(i), l}
	}
	sort.SliceStable(items, func(a, b int) bool {
		if items[a].len != items[b].len {
			return items[a].len < items[b].len
		}
		return items[a].item < items[b].item
	})
	code := uint32(0)
	prevLen := uint8(0)
	for _, it := range items {
		if it.len > prevLen {
			code <<= uint(it.len - prevLen)
			prevLen = it.len
		}
		c.codes[it.item] = code
		c.ordered = append(c.ordered, it.item)
		code++
	}
	// first code / first index per length.
	code = 0
	idx := 0
	for l := 1; l <= maxLen; l++ {
		code <<= 1
		c.firstCode[l] = code
		c.firstIdx[l] = idx
		code += uint32(c.count[l])
		idx += c.count[l]
	}
	return c, nil
}

// decode reads one canonical codeword from r and returns the item, walking
// the stream one bit at a time through the interface-typed reader. This is
// the retained reference decoder: the LUT fast path (table.go) must stay
// bitwise-equivalent to it, which the FuzzDecodeLUT target cross-checks.
func (c *canonical) decode(r interface{ ReadBits(int) (uint64, error) }) (int32, error) {
	code := uint32(0)
	for l := 1; l <= c.maxLen; l++ {
		b, err := r.ReadBits(1)
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint32(b)
		if c.count[l] > 0 && code-c.firstCode[l] < uint32(c.count[l]) {
			return c.ordered[c.firstIdx[l]+int(code-c.firstCode[l])], nil
		}
	}
	return 0, fmt.Errorf("e2mc: invalid codeword")
}
