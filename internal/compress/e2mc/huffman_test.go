package e2mc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
)

func TestLengthLimitedBasic(t *testing.T) {
	weights := []uint64{100, 50, 25, 12, 6, 3, 2, 1}
	lens, err := lengthLimitedCodeLengths(weights, 15)
	if err != nil {
		t.Fatal(err)
	}
	// Unlimited Huffman over this distribution gives lengths 1..7,7; with a
	// generous limit the result must match.
	want := []uint8{1, 2, 3, 4, 5, 6, 7, 7}
	for i := range want {
		if lens[i] != want[i] {
			t.Errorf("lens[%d] = %d, want %d (all %v)", i, lens[i], want[i], lens)
			break
		}
	}
}

func TestLengthLimitedRespectLimit(t *testing.T) {
	// A steep distribution that unconstrained Huffman would code deeper
	// than 4 bits.
	weights := []uint64{1000, 500, 100, 20, 5, 2, 1, 1, 1, 1}
	lens, err := lengthLimitedCodeLengths(weights, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range lens {
		if l < 1 || l > 4 {
			t.Errorf("lens[%d] = %d outside [1,4]", i, l)
		}
	}
	assertKraft(t, lens, 4)
}

func TestLengthLimitedTooManySymbols(t *testing.T) {
	weights := make([]uint64, 20)
	if _, err := lengthLimitedCodeLengths(weights, 4); err == nil {
		t.Error("20 symbols cannot fit in 4-bit codes; expected error")
	}
}

func TestLengthLimitedSingleSymbol(t *testing.T) {
	lens, err := lengthLimitedCodeLengths([]uint64{42}, 15)
	if err != nil || len(lens) != 1 || lens[0] != 1 {
		t.Errorf("single symbol: lens=%v err=%v", lens, err)
	}
}

func assertKraft(t *testing.T, lens []uint8, maxLen int) {
	t.Helper()
	sum := uint64(0)
	for _, l := range lens {
		if l == 0 || int(l) > maxLen {
			t.Fatalf("invalid length %d", l)
		}
		sum += uint64(1) << uint(maxLen-int(l))
	}
	if sum > 1<<uint(maxLen) {
		t.Fatalf("Kraft violated: %d > %d", sum, uint64(1)<<uint(maxLen))
	}
}

func TestLengthLimitedKraftProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, limRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 2
		lim := int(limRaw)%8 + 8 // 8..15
		weights := make([]uint64, n)
		for i := range weights {
			weights[i] = uint64(rng.Intn(10000))
		}
		lens, err := lengthLimitedCodeLengths(weights, lim)
		if err != nil {
			return false
		}
		sum := uint64(0)
		for _, l := range lens {
			if l == 0 || int(l) > lim {
				return false
			}
			sum += uint64(1) << uint(lim-int(l))
		}
		return sum <= 1<<uint(lim)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLengthLimitedMonotone(t *testing.T) {
	// Higher weight must never get a longer code than a lower weight.
	rng := rand.New(rand.NewSource(11))
	weights := make([]uint64, 64)
	for i := range weights {
		weights[i] = uint64(rng.Intn(100000) + 1)
	}
	lens, err := lengthLimitedCodeLengths(weights, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range weights {
		for j := range weights {
			if weights[i] > weights[j] && lens[i] > lens[j] {
				t.Fatalf("weight %d (len %d) > weight %d (len %d) but longer code",
					weights[i], lens[i], weights[j], lens[j])
			}
		}
	}
}

func TestCanonicalDecodeRoundTrip(t *testing.T) {
	weights := []uint64{50, 30, 10, 5, 3, 1, 1}
	lens, err := lengthLimitedCodeLengths(weights, 10)
	if err != nil {
		t.Fatal(err)
	}
	c, err := newCanonical(lens, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Encode a sequence of items and decode it back.
	rng := rand.New(rand.NewSource(12))
	seq := make([]int32, 500)
	w := compress.NewBitWriter(4096)
	for i := range seq {
		seq[i] = int32(rng.Intn(len(weights)))
		w.WriteBits(uint64(c.codes[seq[i]]), int(c.lens[seq[i]]))
	}
	r := compress.NewBitReader(w.Bytes())
	for i, want := range seq {
		got, err := c.decode(r)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("decode %d: got item %d, want %d", i, got, want)
		}
	}
}

func TestCanonicalPrefixFree(t *testing.T) {
	weights := []uint64{100, 60, 30, 20, 10, 5, 2, 1, 1, 1, 1}
	lens, err := lengthLimitedCodeLengths(weights, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := newCanonical(lens, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lens {
		for j := range lens {
			if i == j {
				continue
			}
			li, lj := int(lens[i]), int(lens[j])
			if li > lj {
				continue
			}
			// code i must not be a prefix of code j.
			if c.codes[j]>>uint(lj-li) == c.codes[i] {
				t.Fatalf("code %d (%0*b) is a prefix of code %d (%0*b)",
					i, li, c.codes[i], j, lj, c.codes[j])
			}
		}
	}
}

func TestCanonicalRejectsKraftViolation(t *testing.T) {
	// Three codes of length 1 cannot coexist.
	if _, err := newCanonical([]uint8{1, 1, 1}, 4); err == nil {
		t.Error("expected Kraft violation error")
	}
}

// BenchmarkTableBuild measures full table construction from trained
// statistics: boundary package-merge code lengths (the iterative tree walk),
// canonical code assignment, and the decode-LUT fill.
func BenchmarkTableBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(51))
	tr := NewTrainer()
	for i := 0; i < 400; i++ {
		if i%4 == 0 {
			blk := make([]byte, compress.BlockSize)
			rng.Read(blk)
			tr.Sample(blk)
			continue
		}
		tr.Sample(smoothFloatBlock(rng))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Build(0, 0); err != nil {
			b.Fatal(err)
		}
	}
}
