package e2mc

import (
	"reflect"
	"testing"

	"repro/internal/compress"
)

// trainTestTable builds a table over a deterministic mix of skewed and raw
// symbols, so both frequent entries and escapes are exercised.
func trainTestTable(t *testing.T) *Table {
	t.Helper()
	tr := NewTrainer()
	block := make([]byte, compress.BlockSize)
	for b := 0; b < 64; b++ {
		for i := 0; i < compress.SymbolsPerBlock; i++ {
			// Heavy skew toward a few symbols plus a tail of rare ones.
			v := uint16(i % 7)
			if (b+i)%13 == 0 {
				v = uint16(b*251 + i*17)
			}
			block[2*i] = byte(v)
			block[2*i+1] = byte(v >> 8)
		}
		tr.Sample(block)
	}
	tab, err := tr.Build(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestTableMarshalRoundTrip(t *testing.T) {
	tab := trainTestTable(t)
	data, err := tab.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, tab) {
		t.Error("unmarshalled table differs from the original")
	}
	for sym := 0; sym < 1<<16; sym++ {
		if got.SymbolBits(uint16(sym)) != tab.SymbolBits(uint16(sym)) {
			t.Fatalf("SymbolBits(%d) differs after round trip", sym)
		}
	}
	// A re-marshal must be byte-identical (the store's warm-run guarantee).
	again, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, data) {
		t.Error("re-marshalled table bytes differ")
	}
}

func TestTableUnmarshalRejectsCorruption(t *testing.T) {
	tab := trainTestTable(t)
	data, err := tab.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// mutate returns a copy of the valid record with one byte replaced.
	mutate := func(i int, b byte) []byte {
		c := append([]byte(nil), data...)
		c[i] = b
		return c
	}
	cases := map[string][]byte{
		"empty":       {},
		"short":       data[:4],
		"truncated":   data[:len(data)-3],
		"trailing":    append(append([]byte(nil), data...), 0),
		"bad version": mutate(0, 99),
		// maxLen bounds: 0 and 255 both reject (an unbounded maxLen would
		// size the decode LUT, so the bound is a memory-safety check, not
		// cosmetics — these bytes arrive over the network via slcd).
		"zero maxlen":      mutate(1, 0),
		"oversized maxlen": mutate(1, 255),
		// gapK must be one of the supported decode granularities {4, 8, 16}.
		"bad gapK":  mutate(2, 3),
		"zero gapK": mutate(2, 0),
		// Declared entry count inconsistent with the payload length.
		"huge n": mutate(3, 0xff),
	}
	// Kraft violation: all code lengths 1.
	bad := append([]byte(nil), data...)
	for i := 6 + 2*tab.Entries(); i < len(bad); i++ {
		bad[i] = 1
	}
	cases["kraft violation"] = bad
	// Duplicate symbol: entry 1 repeats entry 0's symbol.
	dup := append([]byte(nil), data...)
	copy(dup[9:11], dup[7:9])
	cases["duplicate symbol"] = dup
	for name, c := range cases {
		var got Table
		if err := got.UnmarshalBinary(c); err == nil {
			t.Errorf("%s: UnmarshalBinary accepted corrupt record", name)
		}
	}
}

// FuzzTableUnmarshal hammers UnmarshalBinary with arbitrary bytes: it must
// never panic or allocate absurdly — table records become network-reachable
// through slcd's result store path — and any input it does accept must
// describe a usable, re-marshallable table.
func FuzzTableUnmarshal(f *testing.F) {
	tr := NewTrainer()
	block := make([]byte, compress.BlockSize)
	for b := 0; b < 64; b++ {
		for i := 0; i < compress.SymbolsPerBlock; i++ {
			v := uint16(i % 7)
			if (b+i)%13 == 0 {
				v = uint16(b*251 + i*17)
			}
			block[2*i] = byte(v)
			block[2*i+1] = byte(v >> 8)
		}
		tr.Sample(block)
	}
	if tab, err := tr.Build(64, 0); err == nil {
		if data, err := tab.MarshalBinary(); err == nil {
			f.Add(data)
			// Seed near-miss corruptions of a valid record.
			for i := 0; i < len(data) && i < 16; i++ {
				c := append([]byte(nil), data...)
				c[i] ^= 0xff
				f.Add(c)
			}
			f.Add(data[:len(data)-1])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{2, 15, 4, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tab Table
		if err := tab.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted: the table must be usable and round-trip stably.
		for sym := 0; sym < 256; sym++ {
			tab.SymbolBits(uint16(sym))
		}
		out, err := tab.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted record does not re-marshal: %v", err)
		}
		var again Table
		if err := again.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-marshalled record rejected: %v", err)
		}
	})
}
