package e2mc

import (
	"reflect"
	"testing"

	"repro/internal/compress"
)

// trainTestTable builds a table over a deterministic mix of skewed and raw
// symbols, so both frequent entries and escapes are exercised.
func trainTestTable(t *testing.T) *Table {
	t.Helper()
	tr := NewTrainer()
	block := make([]byte, compress.BlockSize)
	for b := 0; b < 64; b++ {
		for i := 0; i < compress.SymbolsPerBlock; i++ {
			// Heavy skew toward a few symbols plus a tail of rare ones.
			v := uint16(i % 7)
			if (b+i)%13 == 0 {
				v = uint16(b*251 + i*17)
			}
			block[2*i] = byte(v)
			block[2*i+1] = byte(v >> 8)
		}
		tr.Sample(block)
	}
	tab, err := tr.Build(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestTableMarshalRoundTrip(t *testing.T) {
	tab := trainTestTable(t)
	data, err := tab.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, tab) {
		t.Error("unmarshalled table differs from the original")
	}
	for sym := 0; sym < 1<<16; sym++ {
		if got.SymbolBits(uint16(sym)) != tab.SymbolBits(uint16(sym)) {
			t.Fatalf("SymbolBits(%d) differs after round trip", sym)
		}
	}
	// A re-marshal must be byte-identical (the store's warm-run guarantee).
	again, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, data) {
		t.Error("re-marshalled table bytes differ")
	}
}

func TestTableUnmarshalRejectsCorruption(t *testing.T) {
	tab := trainTestTable(t)
	data, err := tab.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"short":       data[:4],
		"truncated":   data[:len(data)-3],
		"bad version": append([]byte{99}, data[1:]...),
		"bad maxlen":  append([]byte{data[0], 0}, data[2:]...),
	}
	// Kraft violation: all code lengths 1.
	bad := append([]byte(nil), data...)
	for i := 6 + 2*tab.Entries(); i < len(bad); i++ {
		bad[i] = 1
	}
	cases["kraft violation"] = bad
	for name, c := range cases {
		var got Table
		if err := got.UnmarshalBinary(c); err == nil {
			t.Errorf("%s: UnmarshalBinary accepted corrupt record", name)
		}
	}
}
