package e2mc

import (
	"fmt"

	"repro/internal/compress"
)

func init() {
	compress.Register("e2mc", compress.Info{
		New: func(ctx compress.BuildContext) (compress.Codec, error) {
			tab, ok := ctx.Table.(*Table)
			if !ok || tab == nil {
				return nil, fmt.Errorf("e2mc: build context carries no trained table (got %T)", ctx.Table)
			}
			return New(tab), nil
		},
		NeedsTable:       true,
		CompressCycles:   CompressCycles,
		DecompressCycles: DecompressCycles,
	})
}
