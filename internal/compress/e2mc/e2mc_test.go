package e2mc

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/compress"
)

// trainOn builds a table from n blocks produced by gen.
func trainOn(t *testing.T, n int, gen func(i int) []byte) *Table {
	t.Helper()
	tr := NewTrainer()
	for i := 0; i < n; i++ {
		tr.Sample(gen(i))
	}
	tab, err := tr.Build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// smoothFloatBlock mimics the float data GPU workloads stream: values close
// to each other so high 16-bit symbols repeat heavily.
func smoothFloatBlock(rng *rand.Rand) []byte {
	block := make([]byte, compress.BlockSize)
	base := rng.Float32() * 4
	for i := 0; i < 32; i++ {
		v := base + rng.Float32()*0.01
		binary.LittleEndian.PutUint32(block[i*4:], math.Float32bits(v))
	}
	return block
}

func TestCodecRoundTripTrainedData(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	blocks := make([][]byte, 300)
	for i := range blocks {
		blocks[i] = smoothFloatBlock(rng)
	}
	tab := trainOn(t, len(blocks), func(i int) []byte { return blocks[i] })
	c := New(tab)
	dst := make([]byte, compress.BlockSize)
	for i, b := range blocks {
		enc := c.Compress(b)
		if err := c.Decompress(enc, dst); err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if !bytes.Equal(dst, b) {
			t.Fatalf("block %d: round trip mismatch", i)
		}
	}
}

func TestCodecCompressesTrainedData(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	blocks := make([][]byte, 500)
	for i := range blocks {
		blocks[i] = smoothFloatBlock(rng)
	}
	tab := trainOn(t, len(blocks), func(i int) []byte { return blocks[i] })
	c := New(tab)
	var total int
	for _, b := range blocks {
		total += c.Compress(b).Bits
	}
	avg := float64(total) / float64(len(blocks))
	// Smooth floats have repetitive upper symbols but noisy mantissa lower
	// symbols; E2MC lands around 1.1–1.5× on such data.
	if avg >= compress.BlockBits {
		t.Errorf("trained data did not compress: avg %.0f bits", avg)
	}
}

func TestCodecCompressesQuantizedData(t *testing.T) {
	// Quantized values (small alphabet in both symbol halves) must compress
	// strongly.
	rng := rand.New(rand.NewSource(27))
	gen := func() []byte {
		b := make([]byte, compress.BlockSize)
		base := float32(1.0)
		for i := 0; i < 32; i++ {
			q := base + float32(rng.Intn(16))/16
			binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(q))
		}
		return b
	}
	blocks := make([][]byte, 500)
	for i := range blocks {
		blocks[i] = gen()
	}
	tab := trainOn(t, len(blocks), func(i int) []byte { return blocks[i] })
	c := New(tab)
	var total int
	for _, b := range blocks {
		total += c.Compress(b).Bits
	}
	avg := float64(total) / float64(len(blocks))
	if avg > 0.5*compress.BlockBits {
		t.Errorf("weak compression on quantized floats: avg %.0f bits (%.2fx)",
			avg, compress.BlockBits/avg)
	}
}

func TestCodecRoundTripUntrainedData(t *testing.T) {
	// Data unlike the training set must still round trip via escapes or raw
	// fallback.
	tab := trainOn(t, 200, func(i int) []byte {
		rng := rand.New(rand.NewSource(int64(i)))
		return smoothFloatBlock(rng)
	})
	c := New(tab)
	rng := rand.New(rand.NewSource(99))
	dst := make([]byte, compress.BlockSize)
	for trial := 0; trial < 100; trial++ {
		block := make([]byte, compress.BlockSize)
		rng.Read(block)
		enc := c.Compress(block)
		if enc.Bits > compress.BlockBits {
			t.Fatalf("bits %d exceeds block", enc.Bits)
		}
		if err := c.Decompress(enc, dst); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(dst, block) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestCompressedBitsMatchesCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	blocks := make([][]byte, 300)
	for i := range blocks {
		if i%3 == 0 {
			blocks[i] = make([]byte, compress.BlockSize)
			rng.Read(blocks[i])
		} else {
			blocks[i] = smoothFloatBlock(rng)
		}
	}
	tab := trainOn(t, len(blocks), func(i int) []byte { return blocks[i] })
	c := New(tab)
	for i, b := range blocks {
		if got, want := c.CompressedBits(b), c.Compress(b).Bits; got != want {
			t.Fatalf("block %d: CompressedBits=%d Compress=%d", i, got, want)
		}
	}
}

func TestEncodeDecodeWaysWithSkip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	blocks := make([][]byte, 200)
	for i := range blocks {
		blocks[i] = smoothFloatBlock(rng)
	}
	tab := trainOn(t, len(blocks), func(i int) []byte { return blocks[i] })

	syms := compress.Symbols(blocks[0])
	for _, span := range []struct{ start, n int }{
		{0, 4}, {12, 8}, {16, 16}, {30, 6}, {60, 4}, {5, 0},
	} {
		ways, wayBits, _ := tab.EncodeWays(syms, span.start, span.n)
		// Paste ways into a contiguous payload, record offsets.
		var payload []byte
		var starts [PDWs]int
		for wy := 0; wy < PDWs; wy++ {
			starts[wy] = len(payload)
			payload = append(payload, ways[wy]...)
			if wayBits[wy] > len(ways[wy])*8 {
				t.Fatalf("way %d bits %d exceed payload", wy, wayBits[wy])
			}
		}
		got, err := tab.DecodeWays(payload, starts, span.start, span.n)
		if err != nil {
			t.Fatalf("span %+v: %v", span, err)
		}
		for i := range syms {
			inSkip := i >= span.start && i < span.start+span.n
			switch {
			case inSkip && got[i] != 0:
				t.Fatalf("span %+v: skipped symbol %d decoded to %x", span, i, got[i])
			case !inSkip && got[i] != syms[i]:
				t.Fatalf("span %+v: symbol %d = %x, want %x", span, i, got[i], syms[i])
			}
		}
	}
}

func TestSkipShrinksEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	blocks := make([][]byte, 100)
	for i := range blocks {
		blocks[i] = smoothFloatBlock(rng)
	}
	tab := trainOn(t, len(blocks), func(i int) []byte { return blocks[i] })
	syms := compress.Symbols(blocks[1])

	_, fullBits, _ := tab.EncodeWays(syms, 0, 0)
	_, skipBits, _ := tab.EncodeWays(syms, 16, 16) // drop all of way 1
	if skipBits[1] != 0 {
		t.Errorf("way 1 should be empty after skipping its span, got %d bits", skipBits[1])
	}
	for wy := 0; wy < PDWs; wy++ {
		if wy != 1 && skipBits[wy] != fullBits[wy] {
			t.Errorf("way %d changed: %d → %d bits", wy, fullBits[wy], skipBits[wy])
		}
	}
}

func TestSymbolBitsEscapeCost(t *testing.T) {
	tab := trainOn(t, 100, func(i int) []byte {
		b := make([]byte, compress.BlockSize)
		for j := 0; j < 64; j++ {
			binary.LittleEndian.PutUint16(b[j*2:], uint16(j%4)) // tiny alphabet
		}
		return b
	})
	for s := uint16(0); s < 4; s++ {
		if got := tab.SymbolBits(s); got > 8 {
			t.Errorf("frequent symbol %d costs %d bits", s, got)
		}
	}
	// A symbol never seen must cost escape + 16 raw bits.
	if got := tab.SymbolBits(0xBEEF); got < escapeRawBits+1 {
		t.Errorf("escaped symbol costs %d bits, want ≥ %d", got, escapeRawBits+1)
	}
	if got, max := tab.SymbolBits(0xBEEF), tab.MaxSymbolBits(); got > max {
		t.Errorf("escape cost %d exceeds MaxSymbolBits %d", got, max)
	}
}

func TestTrainerBuildTableSizeBound(t *testing.T) {
	tr := NewTrainer()
	rng := rand.New(rand.NewSource(25))
	for i := 0; i < 2000; i++ {
		b := make([]byte, compress.BlockSize)
		rng.Read(b)
		tr.Sample(b)
	}
	tab, err := tr.Build(256, 12)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Entries() > 255 {
		t.Errorf("table holds %d symbols, want ≤ 255", tab.Entries())
	}
	assertKraft(t, tab.codeLengths(), 12)
}

func TestHeaderBitsAccounted(t *testing.T) {
	// A highly compressible block must include the 24-bit header in Bits.
	tab := trainOn(t, 100, func(i int) []byte { return make([]byte, compress.BlockSize) })
	c := New(tab)
	zero := make([]byte, compress.BlockSize)
	enc := c.Compress(zero)
	// 64 symbols of (likely) 1 bit each = 16 bits per way → 2 bytes per way
	// = 8 payload bytes + 3 header bytes = 88 bits.
	if enc.Bits < HeaderBits+PDWs*8 {
		t.Errorf("bits = %d, too small to include header", enc.Bits)
	}
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, zero) {
		t.Error("round trip mismatch")
	}
}

func TestDecompressTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	tab := trainOn(t, 100, func(i int) []byte { return smoothFloatBlock(rng) })
	c := New(tab)
	enc := c.Compress(smoothFloatBlock(rng))
	if enc.Bits >= compress.BlockBits {
		t.Skip("block did not compress")
	}
	enc.Payload = enc.Payload[:2]
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err == nil {
		t.Error("expected error for truncated payload")
	}
}

func TestDecompressGarbageNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	tab := trainOn(t, 200, func(i int) []byte { return smoothFloatBlock(rand.New(rand.NewSource(int64(i)))) })
	c := New(tab)
	dst := make([]byte, compress.BlockSize)
	for i := 0; i < 300; i++ {
		n := rng.Intn(96) + 3
		payload := make([]byte, n)
		rng.Read(payload)
		// Must never panic; errors are fine.
		_ = c.Decompress(compress.Encoded{Bits: n * 8, Payload: payload}, dst)
	}
}

func TestWaysAreByteAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tab := trainOn(t, 200, func(i int) []byte { return smoothFloatBlock(rng) })
	syms := compress.Symbols(smoothFloatBlock(rng))
	ways, wayBits, _ := tab.EncodeWays(syms, 0, 0)
	for wy := 0; wy < PDWs; wy++ {
		if len(ways[wy])*8 < wayBits[wy] {
			t.Fatalf("way %d: payload %d bits < declared %d", wy, len(ways[wy])*8, wayBits[wy])
		}
		if len(ways[wy])*8-wayBits[wy] >= 8 {
			t.Fatalf("way %d: padding %d bits ≥ one byte", wy, len(ways[wy])*8-wayBits[wy])
		}
	}
}

func TestCompressDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	tab := trainOn(t, 100, func(i int) []byte { return smoothFloatBlock(rng) })
	c := New(tab)
	block := smoothFloatBlock(rng)
	orig := make([]byte, len(block))
	copy(orig, block)
	c.Compress(block)
	if !bytes.Equal(orig, block) {
		t.Error("Compress mutated its input")
	}
}
