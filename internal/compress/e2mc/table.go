// Package e2mc implements E2MC (Lal et al., IPDPS 2017), the entropy-
// encoding based memory compression technique for GPUs that the SLC paper
// uses as its lossless baseline and extends: length-limited canonical
// Huffman codes over 16-bit symbols, a small frequent-symbol table with
// escape coding for the rest, four parallel decoding ways with header
// pointers, and an online-sampling training phase. SC² (Arelakis et al.,
// ISCA 2014) is the CPU-side sibling of the same design; the paper treats
// the two as equivalent for the MAG analysis.
package e2mc

import (
	"fmt"
	"sort"

	"repro/internal/compress"
)

// Default table parameters. E2MC keeps the most probable symbols in a small
// hardware table and escape-codes the rest; bounding the codeword length
// keeps the per-symbol cost (and the TSLC adder widths) small.
const (
	DefaultMaxSymbols = 1024 // frequent-symbol table entries, incl. escape
	DefaultMaxCodeLen = 15   // bits; escape cost ≤ 15+16 = 31 bits
	escapeRawBits     = 16   // raw symbol bits following an escape code
)

// LUT decode parameters. The decode lookup table maps every possible
// maxLen-bit window to the (symbol, code length) pair of the codeword that
// prefixes it, so the hot loop is peek/lookup/skip with no per-bit work. A
// lut entry packs sym<<16 | escapeFlag | codeLen; entry 0 (code length 0)
// marks a bit pattern no codeword prefixes.
const (
	lutMaxLen  = 16     // largest maxLen we build a LUT for (64K entries)
	lutLenMask = 0x7f   // code length bits of a lut entry
	lutEscape  = 1 << 7 // set when the codeword is the escape code
	lutSymbol  = 16     // shift of the decoded symbol value
)

// Gap-array parameters. EncodeWays records the bit offset of every gapK-th
// symbol boundary inside each way as a sideband checkpoint, so a parallel
// decoder can start mid-way without first decoding the preceding symbols.
// The checkpoints live beside the payload — they model index metadata the
// memory controller keeps per block and are not counted in compressed bits.
const (
	DefaultGapK   = 4                             // symbols per gap segment
	MaxGapsPerWay = SymbolsPerWay/DefaultGapK - 1 // checkpoints per way at the finest K
)

// GapArray holds the per-way decode checkpoints of one block: entry
// w*MaxGapsPerWay+j is the bit offset (within way w's payload) where in-way
// symbol (j+1)*gapK begins. With gapK > DefaultGapK only the first
// SymbolsPerWay/gapK-1 entries per way are meaningful. A way encodes at most
// 16 symbols of ≤ 31 bits, so offsets fit in uint16 with room to spare.
type GapArray [PDWs * MaxGapsPerWay]uint16

// Trainer accumulates 16-bit symbol statistics from sampled blocks, standing
// in for E2MC's online sampling phase (the paper samples 20 M instructions).
type Trainer struct {
	freq  []uint64 // indexed by symbol value
	total uint64
}

// NewTrainer returns an empty trainer.
func NewTrainer() *Trainer {
	return &Trainer{freq: make([]uint64, 1<<16)}
}

// Sample accumulates the 64 symbols of one block.
func (t *Trainer) Sample(block []byte) {
	for _, s := range compress.Symbols(block) {
		t.freq[s]++
		t.total++
	}
}

// SampleCount returns the number of symbols sampled so far.
func (t *Trainer) SampleCount() uint64 { return t.total }

// Build constructs the Huffman table from the sampled statistics. maxSymbols
// (including the escape entry) and maxLen bound the table size and codeword
// length; zero values select the defaults.
func (t *Trainer) Build(maxSymbols, maxLen int) (*Table, error) {
	if maxSymbols == 0 {
		maxSymbols = DefaultMaxSymbols
	}
	if maxLen == 0 {
		maxLen = DefaultMaxCodeLen
	}
	if maxSymbols < 2 {
		return nil, fmt.Errorf("e2mc: need at least 2 table entries, got %d", maxSymbols)
	}

	// Rank symbols by frequency; keep the top maxSymbols-1.
	type sf struct {
		sym  uint16
		freq uint64
	}
	var ranked []sf
	for s, f := range t.freq {
		if f > 0 {
			ranked = append(ranked, sf{uint16(s), f})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].freq != ranked[j].freq {
			return ranked[i].freq > ranked[j].freq
		}
		return ranked[i].sym < ranked[j].sym
	})
	keep := maxSymbols - 1
	if keep > len(ranked) {
		keep = len(ranked)
	}
	var escWeight uint64
	for _, r := range ranked[keep:] {
		escWeight += r.freq
	}
	if escWeight == 0 {
		escWeight = 1 // escape must remain encodable
	}

	// Item indices: 0..keep-1 are frequent symbols, item keep is escape.
	weights := make([]uint64, keep+1)
	syms := make([]uint16, keep)
	for i := 0; i < keep; i++ {
		weights[i] = ranked[i].freq
		syms[i] = ranked[i].sym
	}
	weights[keep] = escWeight

	lens, err := lengthLimitedCodeLengths(weights, maxLen)
	if err != nil {
		return nil, err
	}
	canon, err := newCanonical(lens, maxLen)
	if err != nil {
		return nil, err
	}

	tab := &Table{
		maxLen:  maxLen,
		canon:   canon,
		syms:    syms,
		escItem: int32(keep),
		lenOf:   make([]uint8, 1<<16),
		itemOf:  make([]int32, 1<<16),
		gapK:    DefaultGapK,
	}
	for i := range tab.itemOf {
		tab.itemOf[i] = -1
	}
	for i, s := range syms {
		tab.itemOf[s] = int32(i)
		tab.lenOf[s] = lens[i]
	}
	tab.escLen = lens[keep]
	tab.buildLUT()
	return tab, nil
}

// Table is a trained E2MC entropy-coding table: canonical length-limited
// Huffman codes for the frequent symbols plus an escape code for the rest.
type Table struct {
	maxLen  int
	canon   *canonical
	syms    []uint16 // item index → symbol value
	escItem int32
	escLen  uint8
	lenOf   []uint8  // symbol value → code length (0 if escaped)
	itemOf  []int32  // symbol value → item index (-1 if escaped)
	lut     []uint32 // 1<<maxLen decode entries; nil when maxLen > lutMaxLen
	gapK    int      // symbols per gap segment (4, 8 or 16)
}

// buildLUT fills the decode lookup table: for each codeword, every maxLen-bit
// window it prefixes maps to its packed (symbol, length) entry. Tables with
// maxLen beyond lutMaxLen keep lut nil and decode through the bit-by-bit
// reference path.
func (t *Table) buildLUT() {
	if t.maxLen > lutMaxLen {
		t.lut = nil
		return
	}
	lut := make([]uint32, 1<<uint(t.maxLen))
	for item, l := range t.canon.lens {
		if l == 0 {
			continue
		}
		var entry uint32
		if int32(item) == t.escItem {
			entry = lutEscape | uint32(l)
		} else {
			entry = uint32(t.syms[item])<<lutSymbol | uint32(l)
		}
		shift := uint(t.maxLen) - uint(l)
		base := t.canon.codes[item] << shift
		for i := uint32(0); i < 1<<shift; i++ {
			lut[base|i] = entry
		}
	}
	t.lut = lut
}

// GapK returns the gap-array checkpoint interval in symbols.
func (t *Table) GapK() int { return t.gapK }

// SetGapK changes the checkpoint interval. Coarser intervals shrink the
// sideband at the cost of less decode parallelism; the interval must divide
// a way evenly and not exceed MaxGapsPerWay checkpoints.
func (t *Table) SetGapK(k int) error {
	switch k {
	case 4, 8, 16:
		t.gapK = k
		return nil
	}
	return fmt.Errorf("e2mc: gap interval %d not one of 4, 8, 16", k)
}

// SymbolBits returns the encoded cost of one symbol in bits: its codeword
// length, or the escape length plus 16 raw bits. This is the per-symbol code
// length the TSLC adder tree sums.
func (t *Table) SymbolBits(sym uint16) int {
	if it := t.itemOf[sym]; it >= 0 {
		return int(t.lenOf[sym])
	}
	return int(t.escLen) + escapeRawBits
}

// MaxSymbolBits returns the largest possible per-symbol cost.
func (t *Table) MaxSymbolBits() int { return t.maxLen + escapeRawBits }

// Entries returns the number of frequent symbols in the table (excluding the
// escape entry).
func (t *Table) Entries() int { return len(t.syms) }

// encodeSymbol appends one symbol's codeword (or escape + raw bits).
func (t *Table) encodeSymbol(w *compress.BitWriter, sym uint16) {
	if it := t.itemOf[sym]; it >= 0 {
		w.WriteBits(uint64(t.canon.codes[it]), int(t.lenOf[sym]))
		return
	}
	w.WriteBits(uint64(t.canon.codes[t.escItem]), int(t.escLen))
	w.WriteBits(uint64(sym), escapeRawBits)
}

// decodeSymbol reads one symbol through the bit-by-bit reference path.
func (t *Table) decodeSymbol(r *compress.BitReader) (uint16, error) {
	item, err := t.canon.decode(r)
	if err != nil {
		return 0, err
	}
	if item == t.escItem {
		raw, err := r.ReadBits(escapeRawBits)
		if err != nil {
			return 0, err
		}
		return uint16(raw), nil
	}
	return t.syms[item], nil
}

// codeLengths exposes the per-item lengths for tests (Kraft checks).
func (t *Table) codeLengths() []uint8 { return t.canon.lens }
