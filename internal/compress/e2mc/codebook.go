package e2mc

import (
	"fmt"

	"repro/internal/compress"
)

// Codebook is a static canonical Huffman code over a small fixed alphabet,
// built once from explicit weights rather than trained per workload. It
// reuses the package-merge length limiter and the canonical assignment that
// back the trained Table, plus the same LUT decode fast path, for codecs
// whose symbol distribution is known a priori — the sz quantization codes
// are the first client. Unlike Table there is no escape code: every item in
// [0, n) has a codeword.
type Codebook struct {
	maxLen int
	canon  *canonical
	lut    []uint32 // 1<<maxLen entries packing item<<lutSymbol | length
}

// NewCodebook builds a canonical code for len(weights) items with no
// codeword longer than maxLen bits. Weights express relative expected
// frequency; zero weights are treated as one, so every item stays
// decodable. maxLen is capped at lutMaxLen so the decode LUT always exists.
func NewCodebook(weights []uint64, maxLen int) (*Codebook, error) {
	if maxLen < 1 || maxLen > lutMaxLen {
		return nil, fmt.Errorf("e2mc: codebook maxLen %d out of [1, %d]", maxLen, lutMaxLen)
	}
	lens, err := lengthLimitedCodeLengths(weights, maxLen)
	if err != nil {
		return nil, err
	}
	canon, err := newCanonical(lens, maxLen)
	if err != nil {
		return nil, err
	}
	cb := &Codebook{maxLen: maxLen, canon: canon}
	lut := make([]uint32, 1<<uint(maxLen))
	for item, l := range canon.lens {
		entry := uint32(item)<<lutSymbol | uint32(l)
		shift := uint(maxLen) - uint(l)
		base := canon.codes[item] << shift
		for i := uint32(0); i < 1<<shift; i++ {
			lut[base|i] = entry
		}
	}
	cb.lut = lut
	return cb, nil
}

// MustCodebook is NewCodebook for package-level construction of codebooks
// with known-good parameters; it panics on error.
func MustCodebook(weights []uint64, maxLen int) *Codebook {
	cb, err := NewCodebook(weights, maxLen)
	if err != nil {
		panic(err)
	}
	return cb
}

// Bits returns the codeword length of item in bits.
func (cb *Codebook) Bits(item int) int { return int(cb.canon.lens[item]) }

// MaxBits returns the longest codeword length in the book.
func (cb *Codebook) MaxBits() int { return cb.maxLen }

// Encode appends item's codeword to the bit stream.
func (cb *Codebook) Encode(w *compress.BitWriter, item int) {
	w.WriteBits(uint64(cb.canon.codes[item]), int(cb.canon.lens[item]))
}

// Decode reads one codeword from r and returns its item. It uses the
// unchecked peek/skip fast path: a truncated stream decodes to arbitrary
// items and must be caught by the caller's single r.Overrun() check after
// the decode run, matching the Table decode idiom. ok is false only for a
// window that is no codeword's prefix, which cannot happen for a complete
// (Kraft-tight) book but guards incomplete ones.
func (cb *Codebook) Decode(r *compress.BitReader) (item int, ok bool) {
	entry := cb.lut[r.PeekBits(cb.maxLen)]
	l := entry & lutLenMask
	if l == 0 {
		return 0, false
	}
	r.SkipBits(int(l))
	return int(entry >> lutSymbol), true
}
