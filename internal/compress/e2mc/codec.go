package e2mc

import (
	"fmt"
	"sync"

	"repro/internal/compress"
)

// Latency of the E2MC pipeline in memory-controller cycles (paper §IV-A):
// 46 cycles to compress and 20 to decompress one block.
const (
	CompressCycles   = 46
	DecompressCycles = 20
)

// PDWs is the number of parallel decoding ways. The block's 64 symbols are
// split into 4 independently decodable groups of 16 so the decompressor can
// decode 4 symbols per cycle; the paper uses 4 PDWs as E2MC's best
// configuration.
const PDWs = 4

// SymbolsPerWay is the number of symbols each way encodes.
const SymbolsPerWay = compress.SymbolsPerBlock / PDWs

// HeaderBits is the E2MC per-block header: 3 parallel decoding pointers of 7
// bits (2^7 = 128-byte block), padded to a whole byte so ways stay
// byte-aligned. Uncompressed blocks carry no header.
const HeaderBits = 24

const pdpBits = 7

// Codec is the E2MC compressor/decompressor around a trained Table.
type Codec struct {
	tab *Table
}

// New returns a codec using the given trained table.
func New(tab *Table) *Codec { return &Codec{tab: tab} }

// Table returns the codec's entropy table (SLC shares it).
func (c *Codec) Table() *Table { return c.tab }

// Name implements compress.Codec.
func (c *Codec) Name() string { return "E2MC" }

// waySpan returns the symbol index range [lo, hi) of one way.
func waySpan(way int) (int, int) {
	return way * SymbolsPerWay, (way + 1) * SymbolsPerWay
}

// EncodeWays entropy-codes the block's symbols into PDWs byte-aligned
// bitstreams, omitting symbols in [skipStart, skipStart+skipLen) — the span
// SLC truncates (skipLen 0 encodes everything). It returns the way payloads,
// their sizes in bits before byte padding, and the gap-array checkpoints: the
// bit offset within each way at every gapK-th in-way symbol boundary
// (counting skipped symbols, whose offset simply does not advance).
func (t *Table) EncodeWays(syms [compress.SymbolsPerBlock]uint16, skipStart, skipLen int) (ways [PDWs][]byte, wayBits [PDWs]int, gaps GapArray) {
	gapK := t.gapK
	if gapK == 0 {
		gapK = DefaultGapK
	}
	for wy := 0; wy < PDWs; wy++ {
		lo, hi := waySpan(wy)
		w := compress.NewBitWriter(SymbolsPerWay * 8)
		for i := lo; i < hi; i++ {
			if j := i - lo; j > 0 && j%gapK == 0 {
				gaps[wy*MaxGapsPerWay+j/gapK-1] = uint16(w.Len())
			}
			if i >= skipStart && i < skipStart+skipLen {
				continue
			}
			t.encodeSymbol(w, syms[i])
		}
		wayBits[wy] = w.Len()
		w.AlignByte()
		ways[wy] = w.Bytes()
	}
	return ways, wayBits, gaps
}

// decodeSpan LUT-decodes the symbols with absolute index [lo, hi) from r
// (already positioned at the first of them), skipping the SLC truncation
// span. The hot loop peeks a maxLen-bit window, looks the codeword up, and
// skips its length — no interface dispatch and no per-symbol error check:
// reads past the end of the stream yield zero bits, and the single Overrun
// check afterwards errors exactly when the bit-by-bit reference decoder
// would (a symbol that consumed a fabricated bit pushes the position past
// the end, and the position never moves back).
//
//slclint:allocfree
func (t *Table) decodeSpan(r *compress.BitReader, lo, hi, skipStart, skipLen int, syms *[compress.SymbolsPerBlock]uint16) error {
	maxLen := t.maxLen
	lut := t.lut
	for i := lo; i < hi; i++ {
		if i >= skipStart && i < skipStart+skipLen {
			continue
		}
		e := lut[r.PeekBits(maxLen)]
		n := int(e & lutLenMask)
		if n == 0 {
			return fmt.Errorf("e2mc: symbol %d: invalid codeword", i) //slclint:allow allocfree cold error path, never hit by the alloc pin
		}
		r.SkipBits(n)
		if e&lutEscape != 0 {
			syms[i] = uint16(r.PeekBits(escapeRawBits))
			r.SkipBits(escapeRawBits)
		} else {
			syms[i] = uint16(e >> lutSymbol)
		}
	}
	if r.Overrun() {
		return fmt.Errorf("e2mc: symbols [%d, %d): bitstream exhausted", lo, hi) //slclint:allow allocfree cold error path, never hit by the alloc pin
	}
	return nil
}

// DecodeWays reverses EncodeWays through the LUT fast path (falling back to
// the reference decoder for tables too long-coded for a LUT). wayStart holds
// the absolute byte offset of each way within payload; symbols inside the
// skip span are left as zero for the caller (SLC) to fill by prediction.
//
//slclint:allocfree
func (t *Table) DecodeWays(payload []byte, wayStart [PDWs]int, skipStart, skipLen int) ([compress.SymbolsPerBlock]uint16, error) {
	if t.lut == nil {
		return t.DecodeWaysRef(payload, wayStart, skipStart, skipLen)
	}
	var syms [compress.SymbolsPerBlock]uint16
	var r compress.BitReader
	for wy := 0; wy < PDWs; wy++ {
		if wayStart[wy] < 0 || wayStart[wy] > len(payload) {
			return syms, fmt.Errorf("e2mc: way %d starts at byte %d outside payload (%d bytes)", wy, wayStart[wy], len(payload)) //slclint:allow allocfree cold error path, never hit by the alloc pin
		}
		r.Reset(payload[wayStart[wy]:])
		lo, hi := waySpan(wy)
		if err := t.decodeSpan(&r, lo, hi, skipStart, skipLen, &syms); err != nil {
			return syms, fmt.Errorf("e2mc: way %d: %w", wy, err) //slclint:allow allocfree cold error path, never hit by the alloc pin
		}
	}
	return syms, nil
}

// DecodeWaysRef is the retained bit-by-bit reference decoder. The LUT and
// gap-array paths must produce bitwise-identical output (and must error
// whenever it errors); FuzzDecodeLUT cross-checks all three.
func (t *Table) DecodeWaysRef(payload []byte, wayStart [PDWs]int, skipStart, skipLen int) ([compress.SymbolsPerBlock]uint16, error) {
	var syms [compress.SymbolsPerBlock]uint16
	for wy := 0; wy < PDWs; wy++ {
		if wayStart[wy] < 0 || wayStart[wy] > len(payload) {
			return syms, fmt.Errorf("e2mc: way %d starts at byte %d outside payload (%d bytes)", wy, wayStart[wy], len(payload))
		}
		r := compress.NewBitReader(payload[wayStart[wy]:])
		lo, hi := waySpan(wy)
		for i := lo; i < hi; i++ {
			if i >= skipStart && i < skipStart+skipLen {
				continue
			}
			s, err := t.decodeSymbol(r)
			if err != nil {
				return syms, fmt.Errorf("e2mc: way %d symbol %d: %w", wy, i, err)
			}
			syms[i] = s
		}
	}
	return syms, nil
}

// DecodeWaysParallel decodes one block's ways concurrently: the gap array
// splits each way into segments of gapK symbols, and every (way, segment)
// chunk decodes on its own goroutine into a disjoint index range of the
// shared output. Output and errors are merged deterministically in chunk
// order, so the result — values and error — is bitwise-identical to the
// serial DecodeWays.
func (t *Table) DecodeWaysParallel(payload []byte, wayStart [PDWs]int, skipStart, skipLen int, gaps *GapArray) ([compress.SymbolsPerBlock]uint16, error) {
	var syms [compress.SymbolsPerBlock]uint16
	if t.lut == nil {
		return t.DecodeWaysRef(payload, wayStart, skipStart, skipLen)
	}
	gapK := t.gapK
	if gapK == 0 {
		gapK = DefaultGapK
	}
	segs := SymbolsPerWay / gapK
	for wy := 0; wy < PDWs; wy++ {
		if wayStart[wy] < 0 || wayStart[wy] > len(payload) {
			return syms, fmt.Errorf("e2mc: way %d starts at byte %d outside payload (%d bytes)", wy, wayStart[wy], len(payload))
		}
	}
	var errs [PDWs * SymbolsPerWay / DefaultGapK]error
	var wg sync.WaitGroup
	for wy := 0; wy < PDWs; wy++ {
		way := payload[wayStart[wy]:]
		lo, _ := waySpan(wy)
		for s := 0; s < segs; s++ {
			wg.Add(1)
			go func(wy, s int) {
				defer wg.Done()
				var r compress.BitReader
				r.Reset(way)
				if s > 0 {
					r.SkipBits(int(gaps[wy*MaxGapsPerWay+s-1]))
				}
				err := t.decodeSpan(&r, lo+s*gapK, lo+(s+1)*gapK, skipStart, skipLen, &syms)
				if err != nil {
					errs[wy*segs+s] = fmt.Errorf("e2mc: way %d: %w", wy, err)
				}
			}(wy, s)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return syms, err
		}
	}
	return syms, nil
}

// payloadBytes returns the byte size of the encoded ways after the header.
func payloadBytes(wayBits [PDWs]int) int {
	n := 0
	for _, b := range wayBits {
		n += (b + 7) / 8
	}
	return n
}

// CompressedBits implements compress.SizeOnly: header plus byte-padded ways,
// capped at the uncompressed size. This mirrors the hardware fast path that
// sums the per-symbol code lengths before compressing (paper §III-C).
func (c *Codec) CompressedBits(block []byte) int {
	syms := compress.Symbols(block)
	var wayBits [PDWs]int
	for wy := 0; wy < PDWs; wy++ {
		lo, hi := waySpan(wy)
		for i := lo; i < hi; i++ {
			wayBits[wy] += c.tab.SymbolBits(syms[i])
		}
	}
	bits := HeaderBits + payloadBytes(wayBits)*8
	if bits >= compress.BlockBits {
		return compress.BlockBits
	}
	return bits
}

// Compress implements compress.Codec. Blocks that do not compress below the
// uncompressed size are stored raw with no header.
func (c *Codec) Compress(block []byte) compress.Encoded {
	e, _ := c.CompressWithGaps(block)
	return e
}

// CompressWithGaps compresses the block and also returns the sideband gap
// array for DecompressParallel. The gap array is index metadata beside the
// payload; it is never counted in Encoded.Bits, so compression figures are
// unchanged. Raw-stored blocks return a zero gap array.
func (c *Codec) CompressWithGaps(block []byte) (compress.Encoded, GapArray) {
	if err := compress.CheckBlock(block); err != nil {
		panic(err)
	}
	syms := compress.Symbols(block)
	ways, wayBits, gaps := c.tab.EncodeWays(syms, 0, 0)
	total := HeaderBits/8 + payloadBytes(wayBits)
	if total*8 >= compress.BlockBits {
		p := make([]byte, compress.BlockSize)
		copy(p, block)
		return compress.Encoded{Bits: compress.BlockBits, Payload: p}, GapArray{}
	}
	w := compress.NewBitWriter(total * 8)
	off := HeaderBits / 8
	var starts [PDWs]int
	for wy := 0; wy < PDWs; wy++ {
		starts[wy] = off
		off += len(ways[wy])
	}
	for wy := 1; wy < PDWs; wy++ {
		w.WriteBits(uint64(starts[wy]), pdpBits)
	}
	w.AlignByte()
	buf := w.Bytes()
	for wy := 0; wy < PDWs; wy++ {
		buf = append(buf, ways[wy]...)
	}
	return compress.Encoded{Bits: total * 8, Payload: buf}, gaps
}

// parseHeader reads the parallel decoding pointers of a compressed block.
// raw reports a block stored uncompressed (no header to parse).
func parseHeader(e compress.Encoded) (starts [PDWs]int, raw bool, err error) {
	if e.Bits >= compress.BlockBits {
		return starts, true, nil
	}
	r := compress.NewBitReader(e.Payload)
	starts[0] = HeaderBits / 8
	for wy := 1; wy < PDWs; wy++ {
		v, rerr := r.ReadBits(pdpBits)
		if rerr != nil {
			return starts, false, fmt.Errorf("e2mc: header: %w", rerr)
		}
		starts[wy] = int(v)
	}
	return starts, false, nil
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(e compress.Encoded, dst []byte) error {
	if len(dst) < compress.BlockSize {
		return fmt.Errorf("e2mc: dst too small (%d bytes)", len(dst))
	}
	starts, raw, err := parseHeader(e)
	if err != nil {
		return err
	}
	if raw {
		if len(e.Payload) < compress.BlockSize {
			return fmt.Errorf("e2mc: raw payload too short")
		}
		copy(dst, e.Payload[:compress.BlockSize])
		return nil
	}
	syms, err := c.tab.DecodeWays(e.Payload, starts, 0, 0)
	if err != nil {
		return err
	}
	compress.PutSymbols(dst, syms)
	return nil
}

// DecompressParallel decompresses a block produced by CompressWithGaps,
// fanning the gap-array chunks across goroutines. The output is
// bitwise-identical to Decompress on the same block.
func (c *Codec) DecompressParallel(e compress.Encoded, gaps *GapArray, dst []byte) error {
	if len(dst) < compress.BlockSize {
		return fmt.Errorf("e2mc: dst too small (%d bytes)", len(dst))
	}
	starts, raw, err := parseHeader(e)
	if err != nil {
		return err
	}
	if raw {
		if len(e.Payload) < compress.BlockSize {
			return fmt.Errorf("e2mc: raw payload too short")
		}
		copy(dst, e.Payload[:compress.BlockSize])
		return nil
	}
	syms, err := c.tab.DecodeWaysParallel(e.Payload, starts, 0, 0, gaps)
	if err != nil {
		return err
	}
	compress.PutSymbols(dst, syms)
	return nil
}
