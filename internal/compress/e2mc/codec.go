package e2mc

import (
	"fmt"

	"repro/internal/compress"
)

// Latency of the E2MC pipeline in memory-controller cycles (paper §IV-A):
// 46 cycles to compress and 20 to decompress one block.
const (
	CompressCycles   = 46
	DecompressCycles = 20
)

// PDWs is the number of parallel decoding ways. The block's 64 symbols are
// split into 4 independently decodable groups of 16 so the decompressor can
// decode 4 symbols per cycle; the paper uses 4 PDWs as E2MC's best
// configuration.
const PDWs = 4

// SymbolsPerWay is the number of symbols each way encodes.
const SymbolsPerWay = compress.SymbolsPerBlock / PDWs

// HeaderBits is the E2MC per-block header: 3 parallel decoding pointers of 7
// bits (2^7 = 128-byte block), padded to a whole byte so ways stay
// byte-aligned. Uncompressed blocks carry no header.
const HeaderBits = 24

const pdpBits = 7

// Codec is the E2MC compressor/decompressor around a trained Table.
type Codec struct {
	tab *Table
}

// New returns a codec using the given trained table.
func New(tab *Table) *Codec { return &Codec{tab: tab} }

// Table returns the codec's entropy table (SLC shares it).
func (c *Codec) Table() *Table { return c.tab }

// Name implements compress.Codec.
func (c *Codec) Name() string { return "E2MC" }

// waySpan returns the symbol index range [lo, hi) of one way.
func waySpan(way int) (int, int) {
	return way * SymbolsPerWay, (way + 1) * SymbolsPerWay
}

// EncodeWays entropy-codes the block's symbols into PDWs byte-aligned
// bitstreams, omitting symbols in [skipStart, skipStart+skipLen) — the span
// SLC truncates (skipLen 0 encodes everything). It returns the way payloads
// and their sizes in bits before byte padding.
func (t *Table) EncodeWays(syms [compress.SymbolsPerBlock]uint16, skipStart, skipLen int) (ways [PDWs][]byte, wayBits [PDWs]int) {
	for wy := 0; wy < PDWs; wy++ {
		lo, hi := waySpan(wy)
		w := compress.NewBitWriter(SymbolsPerWay * 8)
		for i := lo; i < hi; i++ {
			if i >= skipStart && i < skipStart+skipLen {
				continue
			}
			t.encodeSymbol(w, syms[i])
		}
		wayBits[wy] = w.Len()
		w.AlignByte()
		ways[wy] = w.Bytes()
	}
	return ways, wayBits
}

// DecodeWays reverses EncodeWays. wayStart holds the absolute byte offset of
// each way within payload; symbols inside the skip span are left as zero for
// the caller (SLC) to fill by prediction.
func (t *Table) DecodeWays(payload []byte, wayStart [PDWs]int, skipStart, skipLen int) ([compress.SymbolsPerBlock]uint16, error) {
	var syms [compress.SymbolsPerBlock]uint16
	for wy := 0; wy < PDWs; wy++ {
		if wayStart[wy] > len(payload) {
			return syms, fmt.Errorf("e2mc: way %d starts at byte %d beyond payload (%d bytes)", wy, wayStart[wy], len(payload))
		}
		r := compress.NewBitReader(payload[wayStart[wy]:])
		lo, hi := waySpan(wy)
		for i := lo; i < hi; i++ {
			if i >= skipStart && i < skipStart+skipLen {
				continue
			}
			s, err := t.decodeSymbol(r)
			if err != nil {
				return syms, fmt.Errorf("e2mc: way %d symbol %d: %w", wy, i, err)
			}
			syms[i] = s
		}
	}
	return syms, nil
}

// payloadBytes returns the byte size of the encoded ways after the header.
func payloadBytes(wayBits [PDWs]int) int {
	n := 0
	for _, b := range wayBits {
		n += (b + 7) / 8
	}
	return n
}

// CompressedBits implements compress.SizeOnly: header plus byte-padded ways,
// capped at the uncompressed size. This mirrors the hardware fast path that
// sums the per-symbol code lengths before compressing (paper §III-C).
func (c *Codec) CompressedBits(block []byte) int {
	syms := compress.Symbols(block)
	var wayBits [PDWs]int
	for wy := 0; wy < PDWs; wy++ {
		lo, hi := waySpan(wy)
		for i := lo; i < hi; i++ {
			wayBits[wy] += c.tab.SymbolBits(syms[i])
		}
	}
	bits := HeaderBits + payloadBytes(wayBits)*8
	if bits >= compress.BlockBits {
		return compress.BlockBits
	}
	return bits
}

// Compress implements compress.Codec. Blocks that do not compress below the
// uncompressed size are stored raw with no header.
func (c *Codec) Compress(block []byte) compress.Encoded {
	if err := compress.CheckBlock(block); err != nil {
		panic(err)
	}
	syms := compress.Symbols(block)
	ways, wayBits := c.tab.EncodeWays(syms, 0, 0)
	total := HeaderBits/8 + payloadBytes(wayBits)
	if total*8 >= compress.BlockBits {
		p := make([]byte, compress.BlockSize)
		copy(p, block)
		return compress.Encoded{Bits: compress.BlockBits, Payload: p}
	}
	w := compress.NewBitWriter(total * 8)
	off := HeaderBits / 8
	var starts [PDWs]int
	for wy := 0; wy < PDWs; wy++ {
		starts[wy] = off
		off += len(ways[wy])
	}
	for wy := 1; wy < PDWs; wy++ {
		w.WriteBits(uint64(starts[wy]), pdpBits)
	}
	w.AlignByte()
	buf := w.Bytes()
	for wy := 0; wy < PDWs; wy++ {
		buf = append(buf, ways[wy]...)
	}
	return compress.Encoded{Bits: total * 8, Payload: buf}
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(e compress.Encoded, dst []byte) error {
	if len(dst) < compress.BlockSize {
		return fmt.Errorf("e2mc: dst too small (%d bytes)", len(dst))
	}
	if e.Bits >= compress.BlockBits {
		if len(e.Payload) < compress.BlockSize {
			return fmt.Errorf("e2mc: raw payload too short")
		}
		copy(dst, e.Payload[:compress.BlockSize])
		return nil
	}
	r := compress.NewBitReader(e.Payload)
	var starts [PDWs]int
	starts[0] = HeaderBits / 8
	for wy := 1; wy < PDWs; wy++ {
		v, err := r.ReadBits(pdpBits)
		if err != nil {
			return fmt.Errorf("e2mc: header: %w", err)
		}
		starts[wy] = int(v)
	}
	syms, err := c.tab.DecodeWays(e.Payload, starts, 0, 0)
	if err != nil {
		return err
	}
	compress.PutSymbols(dst, syms)
	return nil
}
