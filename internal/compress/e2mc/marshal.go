package e2mc

import (
	"encoding/binary"
	"fmt"
)

// Binary serialisation of trained tables, so the experiment result store can
// persist them across runs. A table is fully determined by (maxLen, the
// gap-array interval, the frequent symbols in item order, the per-item code
// lengths including the escape entry): canonical codeword assignment and the
// decode acceleration arrays — including the decode LUT — are rebuilt
// deterministically, so an unmarshalled table encodes and decodes
// bitwise-identically to the original.

// tableWireVersion tags the serialised layout; bump on any change. Version 2
// added the gap-array interval byte after maxLen and tightened code-length
// validation; version-1 records are rejected, which the experiment runner
// treats as "recompute the table".
const tableWireVersion = 2

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *Table) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 8+2*len(t.syms)+len(t.canon.lens))
	buf = append(buf, tableWireVersion, byte(t.maxLen), byte(t.gapK))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.syms)))
	for _, s := range t.syms {
		buf = binary.LittleEndian.AppendUint16(buf, s)
	}
	if len(t.canon.lens) != len(t.syms)+1 {
		return nil, fmt.Errorf("e2mc: table has %d code lengths for %d symbols", len(t.canon.lens), len(t.syms))
	}
	buf = append(buf, t.canon.lens...)
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, rebuilding the
// canonical code, the lookup arrays, and the decode LUT from the serialised
// lengths.
func (t *Table) UnmarshalBinary(data []byte) error {
	if len(data) < 7 {
		return fmt.Errorf("e2mc: table record too short (%d bytes)", len(data))
	}
	if data[0] != tableWireVersion {
		return fmt.Errorf("e2mc: table record version %d, want %d", data[0], tableWireVersion)
	}
	maxLen := int(data[1])
	if maxLen < 1 || maxLen > 32 {
		return fmt.Errorf("e2mc: table record maxLen %d out of range", maxLen)
	}
	gapK := int(data[2])
	switch gapK {
	case 4, 8, 16:
	default:
		return fmt.Errorf("e2mc: table record gap interval %d not one of 4, 8, 16", gapK)
	}
	n := int(binary.LittleEndian.Uint32(data[3:]))
	if n < 1 || n > 1<<16 {
		return fmt.Errorf("e2mc: table record with %d symbols", n)
	}
	want := 7 + 2*n + n + 1
	if len(data) != want {
		return fmt.Errorf("e2mc: table record is %d bytes, want %d for %d symbols", len(data), want, n)
	}
	syms := make([]uint16, n)
	for i := range syms {
		syms[i] = binary.LittleEndian.Uint16(data[7+2*i:])
	}
	lens := make([]uint8, n+1)
	copy(lens, data[7+2*n:])
	for i, l := range lens {
		// A zero length would silently corrupt canonical codeword
		// assignment downstream, so reject it here with the range check.
		if l < 1 || int(l) > maxLen {
			return fmt.Errorf("e2mc: table record code length %d for item %d out of [1, %d]", l, i, maxLen)
		}
	}

	seen := make(map[uint16]bool, n)
	for _, s := range syms {
		if seen[s] {
			return fmt.Errorf("e2mc: table record repeats symbol %d", s)
		}
		seen[s] = true
	}
	canon, err := newCanonical(lens, maxLen)
	if err != nil {
		return err
	}
	*t = Table{
		maxLen:  maxLen,
		canon:   canon,
		syms:    syms,
		escItem: int32(n),
		escLen:  lens[n],
		lenOf:   make([]uint8, 1<<16),
		itemOf:  make([]int32, 1<<16),
		gapK:    gapK,
	}
	for i := range t.itemOf {
		t.itemOf[i] = -1
	}
	for i, s := range syms {
		t.itemOf[s] = int32(i)
		t.lenOf[s] = lens[i]
	}
	t.buildLUT()
	return nil
}
