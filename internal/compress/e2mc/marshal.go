package e2mc

import (
	"encoding/binary"
	"fmt"
)

// Binary serialisation of trained tables, so the experiment result store can
// persist them across runs. A table is fully determined by (maxLen, the
// frequent symbols in item order, the per-item code lengths including the
// escape entry): canonical codeword assignment and the decode acceleration
// arrays are rebuilt deterministically, so an unmarshalled table encodes and
// decodes bitwise-identically to the original.

// tableWireVersion tags the serialised layout; bump on any change.
const tableWireVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *Table) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 8+2*len(t.syms)+len(t.canon.lens))
	buf = append(buf, tableWireVersion, byte(t.maxLen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.syms)))
	for _, s := range t.syms {
		buf = binary.LittleEndian.AppendUint16(buf, s)
	}
	if len(t.canon.lens) != len(t.syms)+1 {
		return nil, fmt.Errorf("e2mc: table has %d code lengths for %d symbols", len(t.canon.lens), len(t.syms))
	}
	buf = append(buf, t.canon.lens...)
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, rebuilding the
// canonical code and lookup arrays from the serialised lengths.
func (t *Table) UnmarshalBinary(data []byte) error {
	if len(data) < 6 {
		return fmt.Errorf("e2mc: table record too short (%d bytes)", len(data))
	}
	if data[0] != tableWireVersion {
		return fmt.Errorf("e2mc: table record version %d, want %d", data[0], tableWireVersion)
	}
	maxLen := int(data[1])
	if maxLen < 1 || maxLen > 32 {
		return fmt.Errorf("e2mc: table record maxLen %d out of range", maxLen)
	}
	n := int(binary.LittleEndian.Uint32(data[2:]))
	if n < 1 || n > 1<<16 {
		return fmt.Errorf("e2mc: table record with %d symbols", n)
	}
	want := 6 + 2*n + n + 1
	if len(data) != want {
		return fmt.Errorf("e2mc: table record is %d bytes, want %d for %d symbols", len(data), want, n)
	}
	syms := make([]uint16, n)
	for i := range syms {
		syms[i] = binary.LittleEndian.Uint16(data[6+2*i:])
	}
	lens := make([]uint8, n+1)
	copy(lens, data[6+2*n:])

	seen := make(map[uint16]bool, n)
	for _, s := range syms {
		if seen[s] {
			return fmt.Errorf("e2mc: table record repeats symbol %d", s)
		}
		seen[s] = true
	}
	canon, err := newCanonical(lens, maxLen)
	if err != nil {
		return err
	}
	*t = Table{
		maxLen:  maxLen,
		canon:   canon,
		syms:    syms,
		escItem: int32(n),
		escLen:  lens[n],
		lenOf:   make([]uint8, 1<<16),
		itemOf:  make([]int32, 1<<16),
	}
	for i := range t.itemOf {
		t.itemOf[i] = -1
	}
	for i, s := range syms {
		t.itemOf[s] = int32(i)
		t.lenOf[s] = lens[i]
	}
	return nil
}
