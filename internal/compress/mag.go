package compress

import "fmt"

// MAG is a memory access granularity in bytes: the amount of data one DRAM
// read or write command moves (bus width × burst length / 8). GDDR5/5X/6 with
// a 32-bit bus and burst length 8 has a MAG of 32 B.
type MAG int

// Standard granularities studied in the paper (§V-C).
const (
	MAG16 MAG = 16
	MAG32 MAG = 32 // GDDR5 default, used throughout the paper
	MAG64 MAG = 64
)

// Valid reports whether m is a positive power of two that divides BlockSize.
func (m MAG) Valid() bool {
	return m > 0 && m&(m-1) == 0 && BlockSize%int(m) == 0
}

// Bits returns the granularity in bits.
func (m MAG) Bits() int { return int(m) * 8 }

// MaxBursts returns the number of bursts in an uncompressed block.
func (m MAG) MaxBursts() int { return BlockSize / int(m) }

// Bursts returns the number of bursts needed to fetch a compressed block of
// the given size in bits. The result is clamped to [1, MaxBursts]: a block
// can never be fetched with less than one burst, and an incompressible block
// needs exactly the uncompressed burst count.
func (m MAG) Bursts(bits int) int {
	if bits <= 0 {
		return 1
	}
	n := (bits + m.Bits() - 1) / m.Bits()
	if n < 1 {
		n = 1
	}
	if max := m.MaxBursts(); n > max {
		n = max
	}
	return n
}

// EffectiveBits scales a compressed size up to the bits actually transferred:
// the nearest multiple of the granularity (paper §I).
func (m MAG) EffectiveBits(bits int) int { return m.Bursts(bits) * m.Bits() }

// EffectiveBytes is EffectiveBits in bytes.
func (m MAG) EffectiveBytes(bits int) int { return m.Bursts(bits) * int(m) }

// BytesAboveMAG returns how many bytes the compressed size lies above the
// next-lower multiple of the granularity — the x-axis of the paper's Figure 2
// heat map. A compressed size that is an exact multiple of MAG (or below one
// MAG) returns 0; an uncompressed block returns int(m) by the paper's
// convention (the "32B" bin holds uncompressed blocks).
func (m MAG) BytesAboveMAG(bits int) int {
	if bits >= BlockBits {
		return int(m)
	}
	bytes := (bits + 7) / 8
	if bytes <= int(m) {
		return 0 // blocks under one MAG are folded into the 0 B origin
	}
	return bytes % int(m)
}

// BitBudget returns the SLC bit budget for a losslessly compressed size: the
// greatest multiple of MAG that is ≤ compBits, clamped to [1 MAG, BlockBits]
// (paper §III-C). Blocks under one MAG keep a 1-MAG budget; incompressible
// blocks get the full block.
func (m MAG) BitBudget(compBits int) int {
	if compBits >= BlockBits {
		return BlockBits
	}
	if compBits <= m.Bits() {
		return m.Bits()
	}
	return (compBits / m.Bits()) * m.Bits()
}

// String implements fmt.Stringer.
func (m MAG) String() string { return fmt.Sprintf("%dB", int(m)) }

// RawRatio is the raw compression ratio of a compressed size in bits,
// computed without considering MAG.
func RawRatio(bits int) float64 {
	if bits <= 0 {
		return float64(BlockBits)
	}
	return float64(BlockBits) / float64(bits)
}

// EffectiveRatio is the effective compression ratio: the raw ratio after
// scaling the compressed size up to a whole number of bursts.
func EffectiveRatio(bits int, m MAG) float64 {
	return float64(BlockBits) / float64(m.EffectiveBits(bits))
}
