package compress_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compress"
	_ "repro/internal/compress/all" // register every codec
)

// TestReadmeCodecTable pins the README's codec-family table to the registry:
// one row per compress.Names() entry, with the Type and Table columns
// matching the registration traits. Registering a codec without adding a
// table row — or documenting a codec that does not exist — fails here, so
// the docs cannot drift from the code.
func TestReadmeCodecTable(t *testing.T) {
	rows := readmeCodecRows(t)

	registered := compress.Names()
	for _, name := range registered {
		row, ok := rows[name]
		if !ok {
			t.Errorf("codec %q is registered but has no row in the README codec table", name)
			continue
		}
		info, _ := compress.Lookup(name)
		wantType := "lossless"
		switch {
		case info.Identity:
			wantType = "identity"
		case info.LossyBounded:
			wantType = "lossy-bounded"
		case info.Lossy:
			wantType = "lossy"
		}
		if row.typ != wantType {
			t.Errorf("README row for %q says Type %q, registration traits say %q", name, row.typ, wantType)
		}
		wantTable := "–"
		if info.NeedsTable {
			wantTable = "yes"
		}
		if row.table != wantTable {
			t.Errorf("README row for %q says Table %q, registration traits say %q", name, row.table, wantTable)
		}
		if strings.TrimSpace(row.source) == "" {
			t.Errorf("README row for %q has an empty Source column", name)
		}
	}
	for name := range rows {
		if _, ok := compress.Lookup(name); !ok {
			t.Errorf("README codec table documents %q, which is not a registered codec", name)
		}
	}
}

type codecRow struct {
	typ, table, source string
}

// readmeCodecRows parses the README table between the codec-table markers
// into registry-name → row.
func readmeCodecRows(t *testing.T) map[string]codecRow {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatalf("reading README: %v", err)
	}
	const begin, end = "<!-- codec-table:begin -->", "<!-- codec-table:end -->"
	text := string(data)
	i := strings.Index(text, begin)
	j := strings.Index(text, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README is missing the %s / %s markers around the codec table", begin, end)
	}
	rows := make(map[string]codecRow)
	for _, line := range strings.Split(text[i+len(begin):j], "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			continue
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		if len(cells) != 4 {
			t.Fatalf("codec table row has %d columns, want 4: %q", len(cells), line)
		}
		name := strings.TrimSpace(cells[0])
		if !strings.HasPrefix(name, "`") { // header and separator rows
			continue
		}
		name = strings.Trim(name, "`")
		if _, dup := rows[name]; dup {
			t.Errorf("README codec table has two rows for %q", name)
		}
		rows[name] = codecRow{
			typ:    strings.TrimSpace(cells[1]),
			table:  strings.TrimSpace(cells[2]),
			source: strings.TrimSpace(cells[3]),
		}
	}
	if len(rows) == 0 {
		t.Fatal("README codec table has no codec rows")
	}
	return rows
}

// TestReadmeArchitectureLink asserts docs/ARCHITECTURE.md exists and the
// README links to it (acceptance criterion of the documentation pass).
func TestReadmeArchitectureLink(t *testing.T) {
	if _, err := os.Stat(filepath.Join("..", "..", "docs", "ARCHITECTURE.md")); err != nil {
		t.Fatalf("docs/ARCHITECTURE.md: %v", err)
	}
	data, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "docs/ARCHITECTURE.md") {
		t.Error("README does not link docs/ARCHITECTURE.md")
	}
}
