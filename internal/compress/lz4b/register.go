package lz4b

import "repro/internal/compress"

func init() {
	compress.Register("lz4b", compress.Info{
		New: func(compress.BuildContext) (compress.Codec, error) { return Codec{}, nil },
		// Hash-chain matching is the serial part of the pipeline: one probe
		// round per block position dominates compression; decompression is a
		// straight token replay, comparable to C-PACK's dictionary rebuild.
		CompressCycles:   10,
		DecompressCycles: 6,
	})
}
