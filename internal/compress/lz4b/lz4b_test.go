package lz4b

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
)

func roundTrip(t *testing.T, block []byte) compress.Encoded {
	t.Helper()
	var c Codec
	enc := c.Compress(block)
	if enc.Bits <= 0 || enc.Bits > compress.BlockBits {
		t.Fatalf("compressed size %d bits outside (0, %d]", enc.Bits, compress.BlockBits)
	}
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(dst, block) {
		t.Fatalf("round trip mismatch\n got %x\nwant %x", dst, block)
	}
	return enc
}

func TestZeroBlock(t *testing.T) {
	// All zeros: one literal run seeds the window, then overlapping matches
	// (offset 1) replicate it. The whole block must fit in a handful of
	// tokens, far under one 32 B burst.
	block := make([]byte, compress.BlockSize)
	enc := roundTrip(t, block)
	if enc.Bits >= compress.MAG32.Bits() {
		t.Errorf("zero block = %d bits, want < %d (one burst)", enc.Bits, compress.MAG32.Bits())
	}
}

func TestRepeatedPattern(t *testing.T) {
	// A repeating 4-byte pattern compresses to literals + long matches.
	block := make([]byte, compress.BlockSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(block[i*4:], 0xDEADBEEF)
	}
	enc := roundTrip(t, block)
	if enc.Bits >= compress.BlockBits/4 {
		t.Errorf("repeated pattern = %d bits, want < %d", enc.Bits, compress.BlockBits/4)
	}
}

func TestIncompressibleFallsBackToRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	block := make([]byte, compress.BlockSize)
	rng.Read(block)
	enc := roundTrip(t, block)
	// Pure noise has no byte-pair repeats to speak of: the literal token
	// overhead pushes the stream past BlockBits and the raw fallback kicks
	// in at exactly BlockBits.
	if enc.Bits != compress.BlockBits {
		t.Logf("noise block compressed to %d bits (fallback not taken)", enc.Bits)
	}
}

func TestOverlappingMatchReplicates(t *testing.T) {
	// One byte then 127 copies: the decoder must handle offset-1 matches
	// that overlap their own output.
	block := bytes.Repeat([]byte{0x5A}, compress.BlockSize)
	enc := roundTrip(t, block)
	if enc.Bits >= compress.MAG32.Bits() {
		t.Errorf("run block = %d bits, want < one burst", enc.Bits)
	}
}

func TestCompressedBitsMatchesCompress(t *testing.T) {
	var c Codec
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 400; trial++ {
		block := make([]byte, compress.BlockSize)
		switch trial % 4 {
		case 0:
			rng.Read(block)
		case 1:
			pat := []byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
			for i := range block {
				block[i] = pat[i%len(pat)]
			}
		case 2:
			for i := 0; i < 32; i++ {
				binary.LittleEndian.PutUint32(block[i*4:], uint32(rng.Intn(4096)))
			}
		case 3:
			rng.Read(block[:16]) // noisy head, zero tail
		}
		if got, want := c.CompressedBits(block), c.Compress(block).Bits; got != want {
			t.Fatalf("trial %d: CompressedBits = %d, Compress.Bits = %d", trial, got, want)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	var c Codec
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		block := make([]byte, compress.BlockSize)
		// Mixed structure: runs, copies of earlier spans, and noise — the
		// shapes that exercise every token path.
		for pos := 0; pos < len(block); {
			switch rng.Intn(3) {
			case 0:
				n := 1 + rng.Intn(16)
				b := byte(rng.Intn(256))
				for i := 0; i < n && pos < len(block); i++ {
					block[pos] = b
					pos++
				}
			case 1:
				if pos > 0 {
					src := rng.Intn(pos)
					n := 1 + rng.Intn(24)
					for i := 0; i < n && pos < len(block); i++ {
						block[pos] = block[src+i%(pos-src)]
						pos++
					}
				} else {
					block[pos] = byte(rng.Intn(256))
					pos++
				}
			case 2:
				block[pos] = byte(rng.Intn(256))
				pos++
			}
		}
		enc := c.Compress(block)
		dst := make([]byte, compress.BlockSize)
		if err := c.Decompress(enc, dst); err != nil {
			return false
		}
		return bytes.Equal(dst, block)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecompressRejectsBadOffset(t *testing.T) {
	var c Codec
	// A match token at output position 0 has nothing to copy from.
	w := compress.NewBitWriter(16)
	w.WriteBits(1, 1)          // match
	w.WriteBits(0, offsetBits) // offset 1
	w.WriteBits(0, lenBits)    // length MinMatch
	enc := compress.Encoded{Bits: w.Len(), Payload: w.Bytes()}
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err == nil {
		t.Error("expected offset error")
	}
}

func TestDecompressRejectsTruncatedStream(t *testing.T) {
	var c Codec
	// A literal token promising more bytes than the payload holds.
	w := compress.NewBitWriter(16)
	w.WriteBits(0, 1)
	w.WriteBits(31, litLenBits) // 32 literals, none present
	enc := compress.Encoded{Bits: w.Len(), Payload: w.Bytes()}
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err == nil {
		t.Error("expected exhausted-stream error")
	}
}
