// Package lz4b implements a byte-pair/window LZ-style lossless codec over
// one 128-byte block, in the spirit of LZ4's literal/match token stream but
// scaled down to the memory-compression setting: the window is the block
// itself, match candidates are found through a byte-pair hash chain, and the
// output is a real bitstream bounded by the uncompressed block size (a block
// whose token stream would reach 1024 bits is stored raw, exactly like the
// FPC and C-PACK fallbacks).
//
// The token grammar, MSB-first:
//
//	0 lllll  b…           literal run: 5-bit length-1 (1..32 bytes), then
//	                      the raw bytes
//	1 ooooooo lllll       match: 7-bit offset-1 back into the already
//	                      decoded output (1..128), 5-bit length-MinMatch
//	                      (MinMatch..MinMatch+31 bytes)
//
// Matches may overlap their own output (offset < length), which gives the
// codec an RLE mode for free; decompression copies byte by byte, so the
// compressor and decompressor agree on overlapping semantics. Decoding stops
// when 128 output bytes have been reconstructed, so no explicit terminator
// is spent.
//
// FZ-GPU and other GPU compression pipelines motivate the family: a cheap
// dictionary-free match stage catches the repeated byte patterns that the
// word-pattern codecs (FPC, BDI) classify away and the entropy codecs pay a
// table for. See PAPERS.md.
package lz4b

import (
	"fmt"

	"repro/internal/compress"
)

const (
	// MinMatch is the shortest encodable match in bytes. A 2-byte match
	// costs 13 token bits against at most 22 literal bits, but breaking a
	// literal run to take one costs more than it saves on real data; 3 is
	// the classic LZ4 floor and measures best here too.
	MinMatch = 3

	// MaxMatch is the longest encodable match (MinMatch + 2^5 - 1).
	MaxMatch = MinMatch + 31

	// maxLiteralRun is the longest literal run one token carries.
	maxLiteralRun = 32

	offsetBits = 7 // block positions fit in 7 bits (128 bytes)
	lenBits    = 5
	litLenBits = 5
)

// Codec is the LZ4B compressor/decompressor. The zero value is ready to use;
// all state lives per call, as the hardware resets per block.
type Codec struct{}

// Name implements compress.Codec.
func (Codec) Name() string { return "LZ4B" }

// pairHash maps a byte pair to a hash-chain head slot, mixing both bytes so
// the 256 chains spread real pairs rather than keying on one byte. A
// colliding candidate costs only a failed probe — findMatch byte-compares
// every candidate — so the hash affects probe count, never output.
func pairHash(a, b byte) int { return (int(a)*131 ^ int(b)) & (pairTableSize - 1) }

const pairTableSize = 1 << 8 // 256 chain heads: cheap, collisions only cost probes

// findMatch returns the longest match for block[pos:] starting strictly
// before pos, using the byte-pair chains in head/prev. A returned length of
// zero means no match of at least MinMatch exists. Ties prefer the most
// recent (smallest-offset) candidate, which the chain order yields for free.
func findMatch(block []byte, pos int, head []int, prev []int) (matchPos, matchLen int) {
	if pos+MinMatch > len(block) {
		return 0, 0
	}
	limit := len(block) - pos
	if limit > MaxMatch {
		limit = MaxMatch
	}
	for cand := head[pairHash(block[pos], block[pos+1])]; cand >= 0; cand = prev[cand] {
		if cand >= pos {
			continue // a slot written for this very position
		}
		n := 0
		for n < limit && block[cand+n] == block[pos+n] {
			n++
		}
		if n > matchLen {
			matchPos, matchLen = cand, n
			if n == limit {
				break
			}
		}
	}
	if matchLen < MinMatch {
		return 0, 0
	}
	return matchPos, matchLen
}

// encode runs the greedy parse once. With w == nil only the size is
// accounted; otherwise the token stream is emitted. Both paths share the
// parse, so CompressedBits always agrees with Compress.
func encode(block []byte, w *compress.BitWriter) int {
	// Chain state stays off the heap: both sizes are compile-time constants
	// and encode runs once per block on the Sync hot path.
	var head [pairTableSize]int
	for i := range head {
		head[i] = -1
	}
	var prevBuf [compress.BlockSize]int
	prev := prevBuf[:len(block)]
	insert := func(pos int) {
		if pos+1 >= len(block) {
			return
		}
		h := pairHash(block[pos], block[pos+1])
		prev[pos] = head[h]
		head[h] = pos
	}

	bits := 0
	flushLiterals := func(start, end int) {
		for start < end {
			n := end - start
			if n > maxLiteralRun {
				n = maxLiteralRun
			}
			bits += 1 + litLenBits + 8*n
			if w != nil {
				w.WriteBits(0, 1)
				w.WriteBits(uint64(n-1), litLenBits)
				for _, b := range block[start : start+n] {
					w.WriteBits(uint64(b), 8)
				}
			}
			start += n
		}
	}

	litStart := 0
	pos := 0
	for pos < len(block) {
		mpos, mlen := findMatch(block, pos, head[:], prev)
		if mlen == 0 {
			insert(pos)
			pos++
			continue
		}
		flushLiterals(litStart, pos)
		bits += 1 + offsetBits + lenBits
		if w != nil {
			w.WriteBits(1, 1)
			w.WriteBits(uint64(pos-mpos-1), offsetBits)
			w.WriteBits(uint64(mlen-MinMatch), lenBits)
		}
		for i := 0; i < mlen; i++ {
			insert(pos + i)
		}
		pos += mlen
		litStart = pos
	}
	flushLiterals(litStart, len(block))
	return bits
}

// CompressedBits implements compress.SizeOnly.
func (Codec) CompressedBits(block []byte) int {
	bits := encode(block, nil)
	if bits > compress.BlockBits {
		bits = compress.BlockBits
	}
	return bits
}

// Compress implements compress.Codec.
func (c Codec) Compress(block []byte) compress.Encoded {
	if err := compress.CheckBlock(block); err != nil {
		panic(err)
	}
	w := compress.NewBitWriter(compress.BlockBits)
	bits := encode(block, w)
	// Inclusive boundary: Decompress reads any BlockBits-sized encoding as
	// a raw payload, so an exactly 1024-bit token stream must be stored raw.
	if bits >= compress.BlockBits {
		p := make([]byte, compress.BlockSize)
		copy(p, block)
		return compress.Encoded{Bits: compress.BlockBits, Payload: p}
	}
	return compress.Encoded{Bits: bits, Payload: w.Bytes()}
}

// Decompress implements compress.Codec.
func (c Codec) Decompress(e compress.Encoded, dst []byte) error {
	if len(dst) < compress.BlockSize {
		return fmt.Errorf("lz4b: dst too small (%d bytes)", len(dst))
	}
	if e.Bits >= compress.BlockBits {
		if len(e.Payload) < compress.BlockSize {
			return fmt.Errorf("lz4b: raw payload too short")
		}
		copy(dst, e.Payload[:compress.BlockSize])
		return nil
	}
	r := compress.NewBitReader(e.Payload)
	out := 0
	for out < compress.BlockSize {
		isMatch, err := r.ReadBool()
		if err != nil {
			return fmt.Errorf("lz4b: token flag at byte %d: %w", out, err)
		}
		if !isMatch {
			n64, err := r.ReadBits(litLenBits)
			if err != nil {
				return fmt.Errorf("lz4b: literal length at byte %d: %w", out, err)
			}
			n := int(n64) + 1
			if out+n > compress.BlockSize {
				return fmt.Errorf("lz4b: literal run of %d overflows block at byte %d", n, out)
			}
			for i := 0; i < n; i++ {
				b, err := r.ReadBits(8)
				if err != nil {
					return fmt.Errorf("lz4b: literal byte: %w", err)
				}
				dst[out] = byte(b)
				out++
			}
			continue
		}
		off64, err := r.ReadBits(offsetBits)
		if err != nil {
			return fmt.Errorf("lz4b: match offset at byte %d: %w", out, err)
		}
		len64, err := r.ReadBits(lenBits)
		if err != nil {
			return fmt.Errorf("lz4b: match length at byte %d: %w", out, err)
		}
		off := int(off64) + 1
		n := int(len64) + MinMatch
		if off > out {
			return fmt.Errorf("lz4b: match offset %d reaches before output at byte %d", off, out)
		}
		if out+n > compress.BlockSize {
			return fmt.Errorf("lz4b: match of %d overflows block at byte %d", n, out)
		}
		// Byte-by-byte so overlapping matches replicate, as in every LZ.
		for i := 0; i < n; i++ {
			dst[out] = dst[out-off]
			out++
		}
	}
	return nil
}
