// Package bpc implements Bit-Plane Compression (Kim et al., ISCA 2016). The
// SLC paper argues qualitatively (§II-A) that BPC suffers from memory access
// granularity like the four measured baselines, because its run-length and
// frequent-pattern encodings exploit the same redundancy as FPC and C-PACK;
// this implementation makes that claim quantitative (see the Figure 1
// extension in the report).
//
// BPC transforms a block before encoding: the 32 words are delta-encoded
// against their predecessor (DBP), the 31 deltas are transposed into 33
// bit-planes (each plane holds one bit position across all deltas), and
// adjacent planes are XORed (DBX). The transformed planes are then
// run-length / pattern encoded. The transform turns value locality into long
// zero runs, which the plane encoder captures.
package bpc

import (
	"fmt"

	"repro/internal/compress"
)

// Codec is the BPC compressor/decompressor. The zero value is ready to use.
type Codec struct{}

// Name implements compress.Codec.
func (Codec) Name() string { return "BPC" }

const (
	words  = compress.WordsPerBlock // 32
	deltas = words - 1              // 31 deltas
	planes = 33                     // 32 delta bits + sign plane
)

// transform produces the base word and the DBX planes.
func transform(w [words]uint32) (base uint32, dbx [planes]uint64) {
	base = w[0]
	// Sign-extended 33-bit deltas.
	var d [deltas]int64
	for i := 0; i < deltas; i++ {
		d[i] = int64(int32(w[i+1])) - int64(int32(w[i]))
	}
	// DBP: bit-plane transpose. Plane p (0..32) collects bit p of every
	// delta; plane 32 is the sign plane.
	var dbp [planes]uint64
	for p := 0; p < planes; p++ {
		var row uint64
		for i := 0; i < deltas; i++ {
			row |= (uint64(d[i]>>uint(p)) & 1) << uint(i)
		}
		dbp[p] = row
	}
	// DBX: XOR adjacent planes (plane 32 kept as-is as the reference).
	dbx[planes-1] = dbp[planes-1]
	for p := planes - 2; p >= 0; p-- {
		dbx[p] = dbp[p] ^ dbp[p+1]
	}
	return base, dbx
}

// inverse reverses transform.
func inverse(base uint32, dbx [planes]uint64) [words]uint32 {
	var dbp [planes]uint64
	dbp[planes-1] = dbx[planes-1]
	for p := planes - 2; p >= 0; p-- {
		dbp[p] = dbx[p] ^ dbp[p+1]
	}
	var d [deltas]int64
	for i := 0; i < deltas; i++ {
		var v uint64
		for p := 0; p < planes; p++ {
			v |= (dbp[p] >> uint(i) & 1) << uint(p)
		}
		// Sign-extend from 33 bits.
		d[i] = int64(v<<31) >> 31
	}
	var w [words]uint32
	w[0] = base
	for i := 0; i < deltas; i++ {
		w[i+1] = uint32(int64(int32(w[i])) + d[i])
	}
	return w
}

// Plane codes, after the BPC paper's Table: a zero plane is 1 bit; runs of
// zero planes use a 5-bit length; all-ones planes and planes with one or two
// set bits have short codes; anything else is raw.
const (
	// code prefixes (written MSB first)
	cZeroRun = 0b01 // 2 + 5 bits: run of 2..33 zero planes
	cZero    = 0b1  // 1 bit: single zero plane
	cAllOnes = 0b00000
	cOneBit  = 0b00001 // 5 + 5 bits: exactly one bit set (index)
	cTwoBits = 0b00010 // 5 + 10 bits: consecutive two bits set? kept simple: two indices
	cRaw     = 0b00011 // 5 + 31 bits raw plane
)

// encodePlane writes one plane (or a zero-run) and returns how many planes
// it consumed.
func encodePlanes(w *compress.BitWriter, dbx []uint64, i int) int {
	p := dbx[i]
	if p == 0 {
		run := 1
		for i+run < len(dbx) && dbx[i+run] == 0 && run < 33 {
			run++
		}
		if run >= 2 {
			w.WriteBits(cZeroRun, 2)
			w.WriteBits(uint64(run-2), 5)
			return run
		}
		w.WriteBits(cZero, 1)
		return 1
	}
	mask := uint64(1)<<deltas - 1
	switch {
	case p == mask:
		w.WriteBits(cAllOnes, 5)
	case popcount(p) == 1:
		w.WriteBits(cOneBit, 5)
		w.WriteBits(uint64(trailing(p)), 5)
	case popcount(p) == 2:
		w.WriteBits(cTwoBits, 5)
		first := trailing(p)
		w.WriteBits(uint64(first), 5)
		w.WriteBits(uint64(trailing(p&^(1<<uint(first)))), 5)
	default:
		w.WriteBits(cRaw, 5)
		w.WriteBits(p, deltas)
	}
	return 1
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

func trailing(v uint64) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

// CompressedBits implements compress.SizeOnly.
func (c Codec) CompressedBits(block []byte) int {
	return c.Compress(block).Bits
}

// Compress implements compress.Codec.
func (c Codec) Compress(block []byte) compress.Encoded {
	if err := compress.CheckBlock(block); err != nil {
		panic(err)
	}
	base, dbx := transform(compress.Words(block))
	w := compress.NewBitWriter(compress.BlockBits)
	w.WriteBits(uint64(base), 32)
	for i := 0; i < planes; {
		i += encodePlanes(w, dbx[:], i)
	}
	if w.Len() >= compress.BlockBits {
		p := make([]byte, compress.BlockSize)
		copy(p, block)
		return compress.Encoded{Bits: compress.BlockBits, Payload: p}
	}
	return compress.Encoded{Bits: w.Len(), Payload: w.Bytes()}
}

// Decompress implements compress.Codec.
func (c Codec) Decompress(e compress.Encoded, dst []byte) error {
	if len(dst) < compress.BlockSize {
		return fmt.Errorf("bpc: dst too small (%d bytes)", len(dst))
	}
	if e.Bits >= compress.BlockBits {
		if len(e.Payload) < compress.BlockSize {
			return fmt.Errorf("bpc: raw payload too short")
		}
		copy(dst, e.Payload[:compress.BlockSize])
		return nil
	}
	r := compress.NewBitReader(e.Payload)
	baseV, err := r.ReadBits(32)
	if err != nil {
		return fmt.Errorf("bpc: base: %w", err)
	}
	var dbx [planes]uint64
	for i := 0; i < planes; {
		n, err := decodePlane(r, dbx[:], i)
		if err != nil {
			return fmt.Errorf("bpc: plane %d: %w", i, err)
		}
		i += n
	}
	words := inverse(uint32(baseV), dbx)
	compress.PutWords(dst, words)
	return nil
}

// decodePlane reads one plane record into dbx[i:]; returns planes consumed.
func decodePlane(r *compress.BitReader, dbx []uint64, i int) (int, error) {
	b, err := r.ReadBits(1)
	if err != nil {
		return 0, err
	}
	if b == 1 { // single zero plane
		dbx[i] = 0
		return 1, nil
	}
	b2, err := r.ReadBits(1)
	if err != nil {
		return 0, err
	}
	if b2 == 1 { // 01: zero run
		run, err := r.ReadBits(5)
		if err != nil {
			return 0, err
		}
		n := int(run) + 2
		if i+n > len(dbx) {
			return 0, fmt.Errorf("zero run of %d overflows planes", n)
		}
		for k := 0; k < n; k++ {
			dbx[i+k] = 0
		}
		return n, nil
	}
	// 00xxx: 5-bit code; two bits consumed, read three more.
	rest, err := r.ReadBits(3)
	if err != nil {
		return 0, err
	}
	mask := uint64(1)<<deltas - 1
	switch code := rest; code {
	case cAllOnes & 0b111:
		dbx[i] = mask
	case cOneBit & 0b111:
		idx, err := r.ReadBits(5)
		if err != nil {
			return 0, err
		}
		if idx >= deltas {
			return 0, fmt.Errorf("bit index %d out of range", idx)
		}
		dbx[i] = 1 << idx
	case cTwoBits & 0b111:
		a, err := r.ReadBits(5)
		if err != nil {
			return 0, err
		}
		b, err := r.ReadBits(5)
		if err != nil {
			return 0, err
		}
		if a >= deltas || b >= deltas || a == b {
			return 0, fmt.Errorf("bit indices %d,%d invalid", a, b)
		}
		dbx[i] = 1<<a | 1<<b
	case cRaw & 0b111:
		v, err := r.ReadBits(deltas)
		if err != nil {
			return 0, err
		}
		dbx[i] = v
	default:
		return 0, fmt.Errorf("unknown plane code %03b", code)
	}
	return 1, nil
}
