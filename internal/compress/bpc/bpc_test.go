package bpc

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
)

func roundTrip(t *testing.T, block []byte) compress.Encoded {
	t.Helper()
	var c Codec
	enc := c.Compress(block)
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(dst, block) {
		t.Fatalf("round trip mismatch\n got %x\nwant %x", dst, block)
	}
	return enc
}

func TestTransformInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var w [words]uint32
		for i := range w {
			w[i] = rng.Uint32()
		}
		base, dbx := transform(w)
		back := inverse(base, dbx)
		if back != w {
			t.Fatalf("transform/inverse mismatch at trial %d", trial)
		}
	}
}

func TestZeroBlock(t *testing.T) {
	block := make([]byte, compress.BlockSize)
	enc := roundTrip(t, block)
	// base (32) + one zero-run record covering all 33 planes (2+5).
	if enc.Bits != 32+7 {
		t.Errorf("zero block = %d bits, want 39", enc.Bits)
	}
}

func TestLinearRamp(t *testing.T) {
	// Arithmetic sequences have constant deltas → all DBX planes zero
	// except around the sign/low planes: BPC's sweet spot.
	block := make([]byte, compress.BlockSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(block[i*4:], uint32(1000+7*i))
	}
	enc := roundTrip(t, block)
	if enc.Bits > 120 {
		t.Errorf("ramp compressed to %d bits; BPC should crush constant deltas", enc.Bits)
	}
}

func TestSmallIntegers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	block := make([]byte, compress.BlockSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(block[i*4:], uint32(rng.Intn(64)))
	}
	enc := roundTrip(t, block)
	if enc.Bits >= compress.BlockBits/2 {
		t.Errorf("small ints = %d bits, want < half block", enc.Bits)
	}
}

func TestFloatData(t *testing.T) {
	block := make([]byte, compress.BlockSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(block[i*4:], math.Float32bits(1.5+float32(i)*0.125))
	}
	roundTrip(t, block)
}

func TestRandomFallsBackToRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	block := make([]byte, compress.BlockSize)
	rng.Read(block)
	enc := roundTrip(t, block)
	if enc.Bits != compress.BlockBits {
		t.Errorf("random block = %d bits, want raw fallback", enc.Bits)
	}
}

func TestCompressedBitsMatchesCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var c Codec
	for trial := 0; trial < 200; trial++ {
		block := make([]byte, compress.BlockSize)
		switch trial % 3 {
		case 0:
			for i := 0; i < 32; i++ {
				binary.LittleEndian.PutUint32(block[i*4:], uint32(trial*100+i*3))
			}
		case 1:
			for i := 0; i < 32; i++ {
				binary.LittleEndian.PutUint32(block[i*4:], uint32(rng.Intn(1<<16)))
			}
		case 2:
			rng.Read(block)
		}
		if got, want := c.CompressedBits(block), c.Compress(block).Bits; got != want {
			t.Fatalf("trial %d: CompressedBits=%d Compress=%d", trial, got, want)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	var c Codec
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		block := make([]byte, compress.BlockSize)
		switch rng.Intn(4) {
		case 0: // ramps with noise
			step := uint32(rng.Intn(1000))
			v := rng.Uint32()
			for i := 0; i < 32; i++ {
				binary.LittleEndian.PutUint32(block[i*4:], v)
				v += step + uint32(rng.Intn(3))
			}
		case 1: // sparse
			for i := 0; i < 32; i += 3 {
				binary.LittleEndian.PutUint32(block[i*4:], rng.Uint32())
			}
		case 2: // floats
			for i := 0; i < 32; i++ {
				binary.LittleEndian.PutUint32(block[i*4:], math.Float32bits(rng.Float32()*100))
			}
		case 3:
			rng.Read(block)
		}
		enc := c.Compress(block)
		dst := make([]byte, compress.BlockSize)
		if err := c.Decompress(enc, dst); err != nil {
			return false
		}
		return bytes.Equal(dst, block)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestDecompressTruncated(t *testing.T) {
	var c Codec
	block := make([]byte, compress.BlockSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(block[i*4:], uint32(i*17))
	}
	enc := c.Compress(block)
	enc.Payload = enc.Payload[:3]
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err == nil {
		t.Error("expected error for truncated payload")
	}
}
