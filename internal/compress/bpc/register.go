package bpc

import "repro/internal/compress"

func init() {
	compress.Register("bpc", compress.Info{
		New: func(compress.BuildContext) (compress.Codec, error) { return Codec{}, nil },
		// The DBP/DBX transform plus plane encoding is the deepest of the
		// word-based pipelines: 12 cycles to compress, 10 to decompress.
		CompressCycles:   12,
		DecompressCycles: 10,
	})
}
