package compress

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMAGValid(t *testing.T) {
	for _, m := range []MAG{MAG16, MAG32, MAG64, 8, 128} {
		if !m.Valid() {
			t.Errorf("MAG %d should be valid", m)
		}
	}
	for _, m := range []MAG{0, -32, 24, 48, 256} {
		if m.Valid() {
			t.Errorf("MAG %d should be invalid", m)
		}
	}
}

func TestMAGBursts(t *testing.T) {
	tests := []struct {
		m    MAG
		bits int
		want int
	}{
		{MAG32, 0, 1},
		{MAG32, 1, 1},
		{MAG32, 256, 1},  // exactly 32 B
		{MAG32, 257, 2},  // one bit over one burst
		{MAG32, 288, 2},  // 36 B → 64 B (paper's example)
		{MAG32, 512, 2},  // 64 B
		{MAG32, 1024, 4}, // full block
		{MAG32, 2048, 4}, // clamped
		{MAG16, 129, 2},  // 16.1 B → 32 B
		{MAG16, 1024, 8}, // full block
		{MAG64, 511, 1},  // under 64 B
		{MAG64, 513, 2},  // just over
		{MAG64, 1024, 2}, // full block
	}
	for _, tt := range tests {
		if got := tt.m.Bursts(tt.bits); got != tt.want {
			t.Errorf("MAG %v Bursts(%d) = %d, want %d", tt.m, tt.bits, got, tt.want)
		}
	}
}

func TestMAGEffectiveRatioPaperExample(t *testing.T) {
	// Paper §I: "for a compressed size of 36B, we fetch 64B. Thus, a
	// compression ratio that seems close to 4× (3.6×) is actually only 2×."
	bits := 36 * 8
	if got := RawRatio(bits); got < 3.5 || got > 3.6 {
		t.Errorf("raw ratio of 36B = %.3f, want ≈3.56", got)
	}
	if got := EffectiveRatio(bits, MAG32); got != 2.0 {
		t.Errorf("effective ratio of 36B at MAG 32B = %.3f, want 2.0", got)
	}
}

func TestMAGBytesAboveMAG(t *testing.T) {
	tests := []struct {
		m    MAG
		bits int
		want int
	}{
		{MAG32, 36 * 8, 4}, // 4 bytes above 32
		{MAG32, 64 * 8, 0}, // exact multiple
		{MAG32, 20 * 8, 0}, // under one MAG folds into origin
		{MAG32, 1024, 32},  // uncompressed bin
		{MAG32, 97 * 8, 1}, // 1 byte above 96
		{MAG64, 70 * 8, 6}, // 6 above 64
	}
	for _, tt := range tests {
		if got := tt.m.BytesAboveMAG(tt.bits); got != tt.want {
			t.Errorf("MAG %v BytesAboveMAG(%d bits) = %d, want %d", tt.m, tt.bits, got, tt.want)
		}
	}
}

func TestMAGBitBudget(t *testing.T) {
	tests := []struct {
		m    MAG
		bits int
		want int
	}{
		{MAG32, 300, 256},   // 37.5 B → 32 B budget
		{MAG32, 100, 256},   // under one MAG → one MAG
		{MAG32, 256, 256},   // exact
		{MAG32, 600, 512},   // 75 B → 64 B
		{MAG32, 1024, 1024}, // incompressible
		{MAG32, 1100, 1024},
		{MAG64, 600, 512},
		{MAG16, 300, 256}, // 37.5 B → 32 B = 2×16B
	}
	for _, tt := range tests {
		if got := tt.m.BitBudget(tt.bits); got != tt.want {
			t.Errorf("MAG %v BitBudget(%d) = %d, want %d", tt.m, tt.bits, got, tt.want)
		}
	}
}

func TestMAGBudgetInvariants(t *testing.T) {
	// Property: for any compressed size, the budget is a multiple of MAG,
	// within [MAG, BlockBits], and ≤ max(compBits, MAG.Bits()).
	f := func(bits uint16, pick uint8) bool {
		m := []MAG{MAG16, MAG32, MAG64}[int(pick)%3]
		b := m.BitBudget(int(bits))
		if b%m.Bits() != 0 || b < m.Bits() || b > BlockBits {
			return false
		}
		if int(bits) >= m.Bits() && int(bits) < BlockBits && b > int(bits) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := NewBitWriter(128)
	w.WriteBits(0b101, 3)
	w.WriteBool(true)
	w.WriteBits(0xDEADBEEF, 32)
	w.WriteBits(0, 7)
	w.WriteBits(0x3FFF, 14)
	r := NewBitReader(w.Bytes())
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Errorf("first field = %b", v)
	}
	if b, _ := r.ReadBool(); !b {
		t.Error("bool bit lost")
	}
	if v, _ := r.ReadBits(32); v != 0xDEADBEEF {
		t.Errorf("word = %x", v)
	}
	if v, _ := r.ReadBits(7); v != 0 {
		t.Errorf("zeros = %b", v)
	}
	if v, _ := r.ReadBits(14); v != 0x3FFF {
		t.Errorf("tail = %x", v)
	}
	if r.Remaining() >= 8 {
		t.Errorf("unexpected %d bits remaining", r.Remaining())
	}
}

func TestBitIOQuickRoundTrip(t *testing.T) {
	f := func(vals []uint64, widths []uint8) bool {
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		w := NewBitWriter(64 * n)
		ws := make([]int, n)
		for i := 0; i < n; i++ {
			ws[i] = int(widths[i])%64 + 1
			w.WriteBits(vals[i], ws[i])
		}
		r := NewBitReader(w.Bytes())
		for i := 0; i < n; i++ {
			v, err := r.ReadBits(ws[i])
			if err != nil {
				return false
			}
			mask := ^uint64(0)
			if ws[i] < 64 {
				mask = 1<<uint(ws[i]) - 1
			}
			if v != vals[i]&mask {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(9); err == nil {
		t.Error("expected error reading past end of stream")
	}
	if _, err := r.ReadBits(8); err != nil {
		t.Errorf("8-bit read should succeed: %v", err)
	}
	if _, err := r.ReadBits(1); err == nil {
		t.Error("expected error after stream consumed")
	}
}

func TestBitWriterAlign(t *testing.T) {
	w := NewBitWriter(16)
	w.WriteBits(1, 3)
	if pad := w.AlignByte(); pad != 5 {
		t.Errorf("pad = %d, want 5", pad)
	}
	if w.Len() != 8 {
		t.Errorf("len = %d, want 8", w.Len())
	}
	if pad := w.AlignByte(); pad != 0 {
		t.Errorf("aligned writer padded %d more bits", pad)
	}
}

func TestRawCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	block := make([]byte, BlockSize)
	rng.Read(block)
	var c Raw
	enc := c.Compress(block)
	if enc.Bits != BlockBits {
		t.Errorf("raw bits = %d", enc.Bits)
	}
	dst := make([]byte, BlockSize)
	if err := c.Decompress(enc, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, block) {
		t.Error("raw round trip mismatch")
	}
}

func TestWordsSymbolsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	block := make([]byte, BlockSize)
	rng.Read(block)

	var back [BlockSize]byte
	PutWords(back[:], Words(block))
	if !bytes.Equal(back[:], block) {
		t.Error("Words/PutWords round trip mismatch")
	}
	PutSymbols(back[:], Symbols(block))
	if !bytes.Equal(back[:], block) {
		t.Error("Symbols/PutSymbols round trip mismatch")
	}
}

func TestCheckBlock(t *testing.T) {
	if err := CheckBlock(make([]byte, BlockSize)); err != nil {
		t.Errorf("valid block rejected: %v", err)
	}
	if err := CheckBlock(make([]byte, 64)); err == nil {
		t.Error("short block accepted")
	}
}
