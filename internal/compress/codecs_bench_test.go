package compress_test

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/compress/bdi"
	"repro/internal/compress/cpack"
	"repro/internal/compress/e2mc"
	"repro/internal/compress/fpc"
)

// benchBlocks builds a mixed corpus: tick-quantised floats, small integers,
// pointer-like values and raw noise — the block population a GPU memory
// controller sees.
func benchBlocks(n int) [][]byte {
	rng := rand.New(rand.NewSource(99))
	blocks := make([][]byte, n)
	for i := range blocks {
		b := make([]byte, compress.BlockSize)
		switch i % 4 {
		case 0:
			for j := 0; j < 32; j++ {
				v := 2 + float32(rng.Intn(512))/256
				binary.LittleEndian.PutUint32(b[j*4:], math.Float32bits(v))
			}
		case 1:
			for j := 0; j < 32; j++ {
				binary.LittleEndian.PutUint32(b[j*4:], uint32(rng.Intn(4096)))
			}
		case 2:
			base := rng.Uint64()
			for j := 0; j < 16; j++ {
				binary.LittleEndian.PutUint64(b[j*8:], base+uint64(rng.Intn(256)))
			}
		case 3:
			rng.Read(b)
		}
		blocks[i] = b
	}
	return blocks
}

func benchCodec(b *testing.B, c compress.Codec) {
	blocks := benchBlocks(256)
	dst := make([]byte, compress.BlockSize)
	b.Run("Compress", func(b *testing.B) {
		b.SetBytes(compress.BlockSize)
		for i := 0; i < b.N; i++ {
			c.Compress(blocks[i%len(blocks)])
		}
	})
	b.Run("RoundTrip", func(b *testing.B) {
		b.SetBytes(compress.BlockSize)
		for i := 0; i < b.N; i++ {
			enc := c.Compress(blocks[i%len(blocks)])
			if err := c.Decompress(enc, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBDI(b *testing.B)   { benchCodec(b, bdi.Codec{}) }
func BenchmarkFPC(b *testing.B)   { benchCodec(b, fpc.Codec{}) }
func BenchmarkCPACK(b *testing.B) { benchCodec(b, cpack.Codec{}) }

func BenchmarkE2MC(b *testing.B) {
	tr := e2mc.NewTrainer()
	for _, blk := range benchBlocks(512) {
		tr.Sample(blk)
	}
	tab, err := tr.Build(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchCodec(b, e2mc.New(tab))
}
