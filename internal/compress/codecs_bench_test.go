package compress_test

import (
	"encoding/binary"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/compress"
	"repro/internal/compress/bdi"
	"repro/internal/compress/cpack"
	"repro/internal/compress/e2mc"
	"repro/internal/compress/fpc"
	"repro/internal/gpu/device"
	"repro/internal/pipeline"
	"repro/internal/slc"
)

// benchBlocks builds a mixed corpus: tick-quantised floats, small integers,
// pointer-like values and raw noise — the block population a GPU memory
// controller sees.
func benchBlocks(n int) [][]byte {
	rng := rand.New(rand.NewSource(99))
	blocks := make([][]byte, n)
	for i := range blocks {
		b := make([]byte, compress.BlockSize)
		switch i % 4 {
		case 0:
			for j := 0; j < 32; j++ {
				v := 2 + float32(rng.Intn(512))/256
				binary.LittleEndian.PutUint32(b[j*4:], math.Float32bits(v))
			}
		case 1:
			for j := 0; j < 32; j++ {
				binary.LittleEndian.PutUint32(b[j*4:], uint32(rng.Intn(4096)))
			}
		case 2:
			base := rng.Uint64()
			for j := 0; j < 16; j++ {
				binary.LittleEndian.PutUint64(b[j*8:], base+uint64(rng.Intn(256)))
			}
		case 3:
			rng.Read(b)
		}
		blocks[i] = b
	}
	return blocks
}

func benchCodec(b *testing.B, c compress.Codec) {
	blocks := benchBlocks(256)
	dst := make([]byte, compress.BlockSize)
	b.Run("Compress", func(b *testing.B) {
		b.SetBytes(compress.BlockSize)
		for i := 0; i < b.N; i++ {
			c.Compress(blocks[i%len(blocks)])
		}
	})
	b.Run("RoundTrip", func(b *testing.B) {
		b.SetBytes(compress.BlockSize)
		for i := 0; i < b.N; i++ {
			enc := c.Compress(blocks[i%len(blocks)])
			if err := c.Decompress(enc, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBDI(b *testing.B)   { benchCodec(b, bdi.Codec{}) }
func BenchmarkFPC(b *testing.B)   { benchCodec(b, fpc.Codec{}) }
func BenchmarkCPACK(b *testing.B) { benchCodec(b, cpack.Codec{}) }

func BenchmarkE2MC(b *testing.B) {
	tr := e2mc.NewTrainer()
	for _, blk := range benchBlocks(512) {
		tr.Sample(blk)
	}
	tab, err := tr.Build(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchCodec(b, e2mc.New(tab))
}

// benchSync measures pipeline.Sync — the hot path of every evaluation cell —
// over a 4 MiB approximable region under the full SLC stack (E2MC lossless
// plus TSLC-OPT lossy with write-back), at the given worker count. Compare
// BenchmarkSyncSerial to BenchmarkSyncParallel for the block-fan-out
// speedup.
func benchSync(b *testing.B, workers int) {
	const regionSize = 4 << 20
	dev := device.New()
	r, err := dev.Malloc("bench", regionSize, true, 16)
	if err != nil {
		b.Fatal(err)
	}
	blocks := benchBlocks(512)
	mem, err := dev.Bytes(r.Addr, r.Size)
	if err != nil {
		b.Fatal(err)
	}
	for off := 0; off < len(mem); off += compress.BlockSize {
		copy(mem[off:], blocks[(off/compress.BlockSize)%len(blocks)])
	}
	tr := e2mc.NewTrainer()
	for _, blk := range blocks {
		tr.Sample(blk)
	}
	tab, err := tr.Build(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	lossy, err := slc.New(tab, slc.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	p, err := pipeline.New(dev, compress.MAG32, e2mc.New(tab), lossy)
	if err != nil {
		b.Fatal(err)
	}
	p.SetWorkers(workers)
	b.SetBytes(regionSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Sync(r)
	}
}

func BenchmarkSyncSerial(b *testing.B)   { benchSync(b, 1) }
func BenchmarkSyncParallel(b *testing.B) { benchSync(b, runtime.GOMAXPROCS(0)) }
