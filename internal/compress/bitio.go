package compress

import (
	"encoding/binary"
	"fmt"
)

// BitWriter assembles a bitstream most-significant-bit first. All codecs in
// this repository produce real bitstreams — compressed sizes are measured on
// the emitted bits, never estimated.
type BitWriter struct {
	buf  []byte
	nbit int // number of valid bits in buf
}

// NewBitWriter returns a writer with capacity for sizeHint bits.
func NewBitWriter(sizeHint int) *BitWriter {
	return &BitWriter{buf: make([]byte, 0, (sizeHint+7)/8)}
}

// WriteBits appends the n least-significant bits of v, MSB first. n must be
// in [0, 64].
func (w *BitWriter) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("compress: WriteBits width %d out of range", n))
	}
	for i := n - 1; i >= 0; i-- {
		bit := byte(v>>uint(i)) & 1
		if w.nbit&7 == 0 {
			w.buf = append(w.buf, 0)
		}
		if bit != 0 {
			w.buf[w.nbit>>3] |= 0x80 >> uint(w.nbit&7)
		}
		w.nbit++
	}
}

// WriteBool appends a single bit.
func (w *BitWriter) WriteBool(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// AlignByte pads with zero bits to the next byte boundary and returns the
// number of padding bits added.
func (w *BitWriter) AlignByte() int {
	pad := (8 - w.nbit&7) & 7
	if pad > 0 {
		w.WriteBits(0, pad)
	}
	return pad
}

// Len returns the number of bits written.
func (w *BitWriter) Len() int { return w.nbit }

// Bytes returns the assembled bitstream; trailing bits of the final byte are
// zero.
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitReader consumes a bitstream produced by BitWriter. Beyond the checked
// ReadBits API it exposes an unchecked peek/skip fast path (PeekBits,
// SkipBits, Overrun) for table-driven entropy decoders: peek a fixed window,
// look the codeword up, consume its length, and batch the bounds check to
// one Overrun call per decoded run instead of one error check per symbol.
type BitReader struct {
	buf []byte
	pos int // bit position; may run past the end (see SkipBits/Overrun)
}

// NewBitReader returns a reader over buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// Reset repoints the reader at buf and rewinds it to bit 0. It allows a
// stack-allocated BitReader value to be reused across payloads without going
// through NewBitReader's pointer (and potential heap allocation).
func (r *BitReader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
}

// peekWindowBits is the widest PeekBits window: load64 byte-aligns the
// position first, so up to 7 of the 64 loaded bits are consumed by the
// intra-byte shift.
const peekWindowBits = 57

// load64 returns 64 bits starting at the current position, MSB-aligned, with
// zeros past the end of the stream. At least peekWindowBits of them are real
// stream bits (or padding zeros); the tail path assembles the final bytes
// individually so no read ever touches memory outside buf.
func (r *BitReader) load64() uint64 {
	i := r.pos >> 3
	if i+8 <= len(r.buf) {
		return binary.BigEndian.Uint64(r.buf[i:]) << uint(r.pos&7)
	}
	var v uint64
	for j := 0; j < 8; j++ {
		v <<= 8
		if i+j >= 0 && i+j < len(r.buf) {
			v |= uint64(r.buf[i+j])
		}
	}
	return v << uint(r.pos&7)
}

// PeekBits returns the next n bits MSB first without consuming them, for n in
// [0, 57]. Bits past the end of the stream read as zero; combine with
// Overrun to detect truncated streams after a decode run. n outside the
// supported window panics — it is a programming error, not a data error.
func (r *BitReader) PeekBits(n int) uint64 {
	if n < 0 || n > peekWindowBits {
		panic(fmt.Sprintf("compress: PeekBits width %d out of [0, %d]", n, peekWindowBits))
	}
	return r.load64() >> (64 - uint(n)) // n == 0 shifts by 64, which Go defines as 0
}

// SkipBits advances the position by n bits with no bounds check: the
// position may legally pass the end of the stream (further PeekBits return
// zeros) so a decode loop can defer its error handling to one Overrun check.
func (r *BitReader) SkipBits(n int) { r.pos += n }

// Overrun reports whether the position has passed the end of the stream —
// i.e. whether any skipped-over bit was fabricated zero padding rather than
// stream data.
func (r *BitReader) Overrun() bool { return r.pos > len(r.buf)*8 }

// ReadBits reads the next n bits MSB first. n must be in [0, 64].
func (r *BitReader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("compress: ReadBits width %d out of range", n)
	}
	if r.pos+n > len(r.buf)*8 || r.pos > len(r.buf)*8 {
		return 0, fmt.Errorf("compress: bitstream exhausted at bit %d (want %d more)", r.pos, n)
	}
	if n <= peekWindowBits {
		v := r.load64() >> (64 - uint(n))
		r.pos += n
		return v, nil
	}
	hi := r.load64() >> 32
	r.pos += 32
	rest := n - 32
	lo := r.load64() >> (64 - uint(rest))
	r.pos += rest
	return hi<<uint(rest) | lo, nil
}

// ReadBool reads a single bit.
func (r *BitReader) ReadBool() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// Pos returns the current bit position.
func (r *BitReader) Pos() int { return r.pos }

// Seek moves the read position to the absolute bit offset pos.
func (r *BitReader) Seek(pos int) error {
	if pos < 0 || pos > len(r.buf)*8 {
		return fmt.Errorf("compress: seek to bit %d outside stream of %d bits", pos, len(r.buf)*8)
	}
	r.pos = pos
	return nil
}

// Remaining returns the number of unread bits.
func (r *BitReader) Remaining() int { return len(r.buf)*8 - r.pos }
