package compress

import "fmt"

// BitWriter assembles a bitstream most-significant-bit first. All codecs in
// this repository produce real bitstreams — compressed sizes are measured on
// the emitted bits, never estimated.
type BitWriter struct {
	buf  []byte
	nbit int // number of valid bits in buf
}

// NewBitWriter returns a writer with capacity for sizeHint bits.
func NewBitWriter(sizeHint int) *BitWriter {
	return &BitWriter{buf: make([]byte, 0, (sizeHint+7)/8)}
}

// WriteBits appends the n least-significant bits of v, MSB first. n must be
// in [0, 64].
func (w *BitWriter) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("compress: WriteBits width %d out of range", n))
	}
	for i := n - 1; i >= 0; i-- {
		bit := byte(v>>uint(i)) & 1
		if w.nbit&7 == 0 {
			w.buf = append(w.buf, 0)
		}
		if bit != 0 {
			w.buf[w.nbit>>3] |= 0x80 >> uint(w.nbit&7)
		}
		w.nbit++
	}
}

// WriteBool appends a single bit.
func (w *BitWriter) WriteBool(b bool) {
	if b {
		w.WriteBits(1, 1)
	} else {
		w.WriteBits(0, 1)
	}
}

// AlignByte pads with zero bits to the next byte boundary and returns the
// number of padding bits added.
func (w *BitWriter) AlignByte() int {
	pad := (8 - w.nbit&7) & 7
	if pad > 0 {
		w.WriteBits(0, pad)
	}
	return pad
}

// Len returns the number of bits written.
func (w *BitWriter) Len() int { return w.nbit }

// Bytes returns the assembled bitstream; trailing bits of the final byte are
// zero.
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitReader consumes a bitstream produced by BitWriter.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader returns a reader over buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBits reads the next n bits MSB first. n must be in [0, 64].
func (r *BitReader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("compress: ReadBits width %d out of range", n)
	}
	if r.pos+n > len(r.buf)*8 {
		return 0, fmt.Errorf("compress: bitstream exhausted at bit %d (want %d more)", r.pos, n)
	}
	var v uint64
	for i := 0; i < n; i++ {
		b := r.buf[r.pos>>3] >> uint(7-r.pos&7) & 1
		v = v<<1 | uint64(b)
		r.pos++
	}
	return v, nil
}

// ReadBool reads a single bit.
func (r *BitReader) ReadBool() (bool, error) {
	v, err := r.ReadBits(1)
	return v == 1, err
}

// Pos returns the current bit position.
func (r *BitReader) Pos() int { return r.pos }

// Seek moves the read position to the absolute bit offset pos.
func (r *BitReader) Seek(pos int) error {
	if pos < 0 || pos > len(r.buf)*8 {
		return fmt.Errorf("compress: seek to bit %d outside stream of %d bits", pos, len(r.buf)*8)
	}
	r.pos = pos
	return nil
}

// Remaining returns the number of unread bits.
func (r *BitReader) Remaining() int { return len(r.buf)*8 - r.pos }
