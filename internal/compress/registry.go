package compress

import (
	"fmt"
	"sort"
	"sync"
)

// This file is the codec registry: every compression technique registers
// itself under a stable lowercase name (from an init function in its own
// package), and everything above the codec layer — the experiment runner,
// the pipeline, the cmd/ binaries — selects codecs by name. Adding a new
// technique is a new package with a Register call; no central switch needs
// to grow.

// BuildContext carries the inputs a codec factory may need. Fields that a
// codec does not use are ignored; fields it requires are validated by the
// factory (a codec with NeedsTable set is never built without a table by
// the runner, but direct callers get a descriptive error).
type BuildContext struct {
	// MAG is the memory access granularity the codec will run at. Lossy
	// codecs need it for the bit-budget decision; lossless codecs ignore it.
	MAG MAG

	// Table is the workload-trained entropy table (an *e2mc.Table) for
	// codecs whose Info.NeedsTable is set; nil otherwise. It is typed as any
	// because the e2mc package imports this one — the registry stays at the
	// bottom of the dependency graph and factories assert the concrete type.
	Table any

	// ThresholdBits is the lossy threshold in bits (the largest number of
	// extra bits a lossy codec may approximate away, paper §III-B). Zero
	// selects the codec's default; lossless codecs ignore it.
	ThresholdBits int

	// ErrorBound is the absolute error bound for error-bounded lossy codecs
	// (Info.LossyBounded): every value the codec reconstructs must satisfy
	// |reconstructed − original| ≤ ErrorBound. Zero selects the codec's
	// default bound; codecs without the trait ignore it.
	ErrorBound float64
}

// Factory builds one codec instance from a build context.
type Factory func(ctx BuildContext) (Codec, error)

// Info describes one registered codec: its factory plus the traits the
// runner and simulator need to wire it into an evaluation cell.
type Info struct {
	// New builds the codec.
	New Factory

	// NeedsTable marks codecs that require a workload-trained entropy table
	// in BuildContext.Table (E2MC, HyComp's entropy path, SLC).
	NeedsTable bool

	// Lossy marks codecs whose Compress may discard information. A lossy
	// codec serves only safe-to-approximate regions; exact regions fall back
	// to the codec named by Base.
	Lossy bool

	// LossyBounded marks lossy codecs that honour an absolute error bound
	// (BuildContext.ErrorBound): every reconstructed value is within the
	// bound of the original, rather than the TSLC contract of a bounded
	// approximated symbol span. Implies Lossy.
	LossyBounded bool

	// Base is the registry name of the lossless codec that serves exact
	// regions when this codec is lossy ("e2mc" for the TSLC variants).
	Base string

	// Identity marks the no-compression baseline: blocks are stored raw and
	// the pipeline skips compression entirely.
	Identity bool

	// CompressCycles and DecompressCycles are the codec's memory-controller
	// pipeline latencies (paper §IV-A), consumed by the timing simulator.
	CompressCycles   int
	DecompressCycles int
}

var registry = struct {
	sync.RWMutex
	m map[string]Info
}{m: make(map[string]Info)}

// Register adds a codec under a unique lowercase name. It is called from
// codec package init functions and panics on a duplicate or invalid
// registration, as a registration bug should fail at program start.
func Register(name string, info Info) {
	if name == "" {
		panic("compress: Register with empty name")
	}
	if info.New == nil {
		panic(fmt.Sprintf("compress: Register(%q) with nil factory", name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("compress: Register(%q) called twice", name))
	}
	registry.m[name] = info
}

// Lookup returns the registration for a codec name.
func Lookup(name string) (Info, bool) {
	registry.RLock()
	defer registry.RUnlock()
	info, ok := registry.m[name]
	return info, ok
}

// Names returns all registered codec names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Build looks a codec up and constructs it, with a descriptive error naming
// the available set when the name is unknown.
func Build(name string, ctx BuildContext) (Codec, error) {
	info, ok := Lookup(name)
	if !ok {
		return nil, UnknownCodecError(name)
	}
	if info.NeedsTable && ctx.Table == nil {
		return nil, fmt.Errorf("compress: codec %q needs a trained entropy table", name)
	}
	return info.New(ctx)
}

// UnknownCodecError returns the error for an unregistered codec name,
// listing what is available.
func UnknownCodecError(name string) error {
	names := Names()
	return fmt.Errorf("compress: unknown codec %q (available: %v)", name, names)
}

func init() {
	Register("raw", Info{
		New:      func(BuildContext) (Codec, error) { return Raw{}, nil },
		Identity: true,
	})
}
