package hycomp

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
	"repro/internal/compress/e2mc"
)

func testCodec(t testing.TB) *Codec {
	t.Helper()
	tr := e2mc.NewTrainer()
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 400; i++ {
		tr.Sample(floatBlock(rng))
	}
	tab, err := tr.Build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return New(tab)
}

func floatBlock(rng *rand.Rand) []byte {
	b := make([]byte, compress.BlockSize)
	for i := 0; i < 32; i++ {
		v := 2 + float32(rng.Intn(512))/256
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
	}
	return b
}

func pointerBlock(rng *rand.Rand) []byte {
	b := make([]byte, compress.BlockSize)
	base := uint64(0x7F3A_0000_0000) | uint64(rng.Intn(1<<16))<<16
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint64(b[i*8:], base+uint64(rng.Intn(4096)))
	}
	return b
}

func intBlock(rng *rand.Rand) []byte {
	b := make([]byte, compress.BlockSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(rng.Intn(1<<14))<<uint(rng.Intn(18)))
	}
	return b
}

func TestClassify(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := classify(floatBlock(rng)); got != tagEntropy {
		t.Errorf("float block classified %d, want entropy", got)
	}
	if got := classify(pointerBlock(rng)); got != tagBDI {
		t.Errorf("pointer block classified %d, want BDI", got)
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	c := testCodec(t)
	rng := rand.New(rand.NewSource(2))
	dst := make([]byte, compress.BlockSize)
	gens := []func(*rand.Rand) []byte{floatBlock, pointerBlock, intBlock}
	for trial := 0; trial < 300; trial++ {
		block := gens[trial%len(gens)](rng)
		enc := c.Compress(block)
		if enc.Bits > compress.BlockBits {
			t.Fatalf("bits %d exceed block", enc.Bits)
		}
		if err := c.Decompress(enc, dst); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(dst, block) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestHybridBeatsWorstConstituent(t *testing.T) {
	// On pointer blocks HyComp must do clearly better than pure FPC/entropy
	// would be forced to — the selection is the point.
	c := testCodec(t)
	rng := rand.New(rand.NewSource(3))
	var total int
	n := 100
	for i := 0; i < n; i++ {
		total += c.Compress(pointerBlock(rng)).Bits
	}
	if avg := total / n; avg > compress.BlockBits/2 {
		t.Errorf("pointer blocks average %d bits; BDI path should halve them", avg)
	}
}

func TestCompressedBitsMatchesCompress(t *testing.T) {
	c := testCodec(t)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		block := floatBlock(rng)
		if got, want := c.CompressedBits(block), c.Compress(block).Bits; got != want {
			t.Fatalf("CompressedBits=%d Compress=%d", got, want)
		}
	}
}

func TestRandomDataFallsBackRaw(t *testing.T) {
	c := testCodec(t)
	rng := rand.New(rand.NewSource(5))
	block := make([]byte, compress.BlockSize)
	rng.Read(block)
	enc := c.Compress(block)
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, block) {
		t.Error("raw fallback round trip mismatch")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	c := testCodec(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var block []byte
		switch rng.Intn(4) {
		case 0:
			block = floatBlock(rng)
		case 1:
			block = pointerBlock(rng)
		case 2:
			block = intBlock(rng)
		case 3:
			block = make([]byte, compress.BlockSize)
			rng.Read(block)
		}
		enc := c.Compress(block)
		dst := make([]byte, compress.BlockSize)
		if err := c.Decompress(enc, dst); err != nil {
			return false
		}
		return bytes.Equal(dst, block)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecompressGarbageNoPanic(t *testing.T) {
	c := testCodec(t)
	rng := rand.New(rand.NewSource(6))
	dst := make([]byte, compress.BlockSize)
	for i := 0; i < 200; i++ {
		n := rng.Intn(64) + 1
		p := make([]byte, n)
		rng.Read(p)
		_ = c.Decompress(compress.Encoded{Bits: n * 8, Payload: p}, dst)
	}
}
