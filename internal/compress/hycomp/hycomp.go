// Package hycomp implements a HyComp-style hybrid compressor (Arelakis et
// al., MICRO 2015): it predicts each block's dominant data type from cheap
// bit-pattern heuristics and dispatches to the method that suits it —
// entropy coding for floating-point data (standing in for FP-H/SC², both
// Huffman-based like E2MC), base-delta for pointer-like data, and
// significance-based FPC for integers. The SLC paper argues (§II-A) that
// HyComp inherits the MAG problem from its constituent methods; this
// implementation lets the Figure 1 extension measure that.
package hycomp

import (
	"encoding/binary"
	"fmt"

	"repro/internal/compress"
	"repro/internal/compress/bdi"
	"repro/internal/compress/e2mc"
	"repro/internal/compress/fpc"
)

// method tags stored in the 2-bit block header.
const (
	tagEntropy = 0 // floats → Huffman (FP-H/SC² stand-in)
	tagBDI     = 1 // pointers → base-delta
	tagFPC     = 2 // integers → significance-based
	tagRaw     = 3
)

const headerBits = 2

// Codec is the hybrid compressor. It needs the trained entropy table for
// its floating-point path.
type Codec struct {
	ent *e2mc.Codec
	bdi bdi.Codec
	fpc fpc.Codec
}

// New returns a hybrid codec around a trained table.
func New(tab *e2mc.Table) *Codec {
	return &Codec{ent: e2mc.New(tab)}
}

// Name implements compress.Codec.
func (c *Codec) Name() string { return "HYCOMP" }

// classify predicts the block's dominant type with HyComp-style heuristics:
// pointers share their top bytes as 64-bit elements, floats from one array
// share sign+exponent bytes, everything else is treated as integer data.
func classify(block []byte) int {
	// Pointer heuristic: 64-bit elements whose top 4 bytes cluster on a
	// non-zero base.
	top := map[uint32]struct{}{}
	allZeroTop := true
	for i := 0; i < compress.BlockSize; i += 8 {
		t := uint32(binary.LittleEndian.Uint64(block[i:]) >> 32)
		top[t] = struct{}{}
		if t != 0 {
			allZeroTop = false
		}
	}
	if len(top) <= 2 && !allZeroTop {
		return tagBDI
	}
	// Float heuristic: few distinct sign+exponent bytes across the 32-bit
	// words.
	hi := map[byte]struct{}{}
	for _, w := range compress.Words(block) {
		hi[byte(w>>24)] = struct{}{}
	}
	if len(hi) <= 6 {
		return tagEntropy
	}
	return tagFPC
}

// CompressedBits implements compress.SizeOnly.
func (c *Codec) CompressedBits(block []byte) int {
	return c.Compress(block).Bits
}

// Compress implements compress.Codec: classify, dispatch, tag.
func (c *Codec) Compress(block []byte) compress.Encoded {
	if err := compress.CheckBlock(block); err != nil {
		panic(err)
	}
	tag := classify(block)
	var inner compress.Encoded
	switch tag {
	case tagBDI:
		inner = c.bdi.Compress(block)
	case tagFPC:
		inner = c.fpc.Compress(block)
	default:
		inner = c.ent.Compress(block)
	}
	// The stored header is byte-aligned (8 bits) so the inner payload stays
	// byte-aligned for re-decoding.
	if inner.Bits+8 >= compress.BlockBits {
		p := make([]byte, compress.BlockSize)
		copy(p, block)
		return compress.Encoded{Bits: compress.BlockBits, Payload: p}
	}
	w := compress.NewBitWriter(inner.Bits + headerBits)
	w.WriteBits(uint64(tag), headerBits)
	w.AlignByte() // keep the inner payload byte-aligned for re-decoding
	buf := append(w.Bytes(), inner.Payload...)
	return compress.Encoded{Bits: 8 + inner.Bits, Payload: buf}
}

// Decompress implements compress.Codec.
func (c *Codec) Decompress(e compress.Encoded, dst []byte) error {
	if len(dst) < compress.BlockSize {
		return fmt.Errorf("hycomp: dst too small (%d bytes)", len(dst))
	}
	if e.Bits >= compress.BlockBits {
		if len(e.Payload) < compress.BlockSize {
			return fmt.Errorf("hycomp: raw payload too short")
		}
		copy(dst, e.Payload[:compress.BlockSize])
		return nil
	}
	if len(e.Payload) < 1 {
		return fmt.Errorf("hycomp: missing header")
	}
	tag := int(e.Payload[0] >> 6)
	inner := compress.Encoded{Bits: e.Bits - 8, Payload: e.Payload[1:]}
	switch tag {
	case tagBDI:
		return c.bdi.Decompress(inner, dst)
	case tagFPC:
		return c.fpc.Decompress(inner, dst)
	case tagEntropy:
		return c.ent.Decompress(inner, dst)
	}
	return fmt.Errorf("hycomp: unknown method tag %d", tag)
}
