package hycomp

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/compress/e2mc"
)

func init() {
	compress.Register("hycomp", compress.Info{
		New: func(ctx compress.BuildContext) (compress.Codec, error) {
			tab, ok := ctx.Table.(*e2mc.Table)
			if !ok || tab == nil {
				return nil, fmt.Errorf("hycomp: build context carries no trained table (got %T)", ctx.Table)
			}
			return New(tab), nil
		},
		NeedsTable: true,
		// The type predictor adds 4 cycles in front of the entropy path;
		// decompression dispatches directly on the stored tag.
		CompressCycles:   e2mc.CompressCycles + 4,
		DecompressCycles: e2mc.DecompressCycles,
	})
}
