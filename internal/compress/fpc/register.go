package fpc

import "repro/internal/compress"

func init() {
	compress.Register("fpc", compress.Info{
		New: func(compress.BuildContext) (compress.Codec, error) { return Codec{}, nil },
		// FPC's serial pattern pipeline: 8 cycles to compress, 5 to
		// decompress (Alameldeen & Wood's five-stage decompressor).
		CompressCycles:   8,
		DecompressCycles: 5,
	})
}
