// Package fpc implements Frequent Pattern Compression (Alameldeen & Wood,
// UW-Madison TR 2004), a significance-based scheme that encodes each 32-bit
// word with a 3-bit prefix naming one of eight patterns. It is one of the
// four lossless baselines of the SLC paper's Figure 1.
package fpc

import (
	"fmt"

	"repro/internal/compress"
)

// pattern prefixes, 3 bits each.
const (
	pZeroRun   = 0 // run of 1..8 all-zero words; 3-bit run length follows
	pSE4       = 1 // 4-bit sign-extended
	pSE8       = 2 // 8-bit sign-extended
	pSE16      = 3 // 16-bit sign-extended
	pHalfPad   = 4 // halfword padded with a zero halfword (low 16 bits zero)
	pTwoHalfSE = 5 // two halfwords, each a sign-extended byte
	pRepBytes  = 6 // word of four repeated bytes
	pUncomp    = 7 // uncompressed 32-bit word
)

const prefixBits = 3

// Codec is the FPC compressor/decompressor. The zero value is ready to use.
type Codec struct{}

// Name implements compress.Codec.
func (Codec) Name() string { return "FPC" }

// classify returns the pattern for one word (ignoring zero runs, which the
// caller detects) and the payload width in bits.
func classify(w uint32) (pat int, payloadBits int, payload uint32) {
	s := int32(w)
	switch {
	case s >= -8 && s < 8:
		return pSE4, 4, w & 0xF
	case s >= -128 && s < 128:
		return pSE8, 8, w & 0xFF
	case s >= -32768 && s < 32768:
		return pSE16, 16, w & 0xFFFF
	case w&0xFFFF == 0:
		return pHalfPad, 16, w >> 16
	}
	lo, hi := int32(int16(w&0xFFFF)), int32(int16(w>>16))
	if lo >= -128 && lo < 128 && hi >= -128 && hi < 128 {
		return pTwoHalfSE, 16, (uint32(uint8(hi)) << 8) | uint32(uint8(lo))
	}
	b := w & 0xFF
	if w == b|b<<8|b<<16|b<<24 {
		return pRepBytes, 8, b
	}
	return pUncomp, 32, w
}

// CompressedBits implements compress.SizeOnly.
func (Codec) CompressedBits(block []byte) int {
	words := compress.Words(block)
	bits := 0
	for i := 0; i < len(words); {
		if words[i] == 0 {
			run := 1
			for i+run < len(words) && words[i+run] == 0 && run < 8 {
				run++
			}
			bits += prefixBits + 3
			i += run
			continue
		}
		_, pb, _ := classify(words[i])
		bits += prefixBits + pb
		i++
	}
	if bits > compress.BlockBits {
		bits = compress.BlockBits
	}
	return bits
}

// Compress implements compress.Codec.
func (c Codec) Compress(block []byte) compress.Encoded {
	if err := compress.CheckBlock(block); err != nil {
		panic(err)
	}
	words := compress.Words(block)
	w := compress.NewBitWriter(compress.BlockBits)
	for i := 0; i < len(words); {
		if words[i] == 0 {
			run := 1
			for i+run < len(words) && words[i+run] == 0 && run < 8 {
				run++
			}
			w.WriteBits(pZeroRun, prefixBits)
			w.WriteBits(uint64(run-1), 3)
			i += run
			continue
		}
		pat, pb, payload := classify(words[i])
		w.WriteBits(uint64(pat), prefixBits)
		w.WriteBits(uint64(payload), pb)
		i++
	}
	bits := w.Len()
	if bits >= compress.BlockBits {
		// Store uncompressed; the simulator treats a full-size block as raw.
		// The boundary must be inclusive: Decompress reads any
		// BlockBits-sized encoding as a raw payload, so an exactly
		// 1024-bit compressed stream cannot be stored as such.
		p := make([]byte, compress.BlockSize)
		copy(p, block)
		return compress.Encoded{Bits: compress.BlockBits, Payload: p}
	}
	return compress.Encoded{Bits: bits, Payload: w.Bytes()}
}

// Decompress implements compress.Codec.
func (c Codec) Decompress(e compress.Encoded, dst []byte) error {
	if len(dst) < compress.BlockSize {
		return fmt.Errorf("fpc: dst too small (%d bytes)", len(dst))
	}
	if e.Bits >= compress.BlockBits {
		if len(e.Payload) < compress.BlockSize {
			return fmt.Errorf("fpc: raw payload too short")
		}
		copy(dst, e.Payload[:compress.BlockSize])
		return nil
	}
	r := compress.NewBitReader(e.Payload)
	var words [compress.WordsPerBlock]uint32
	for i := 0; i < len(words); {
		pat, err := r.ReadBits(prefixBits)
		if err != nil {
			return fmt.Errorf("fpc: prefix at word %d: %w", i, err)
		}
		switch pat {
		case pZeroRun:
			run, err := r.ReadBits(3)
			if err != nil {
				return fmt.Errorf("fpc: run length: %w", err)
			}
			n := int(run) + 1
			if i+n > len(words) {
				return fmt.Errorf("fpc: zero run overflows block")
			}
			i += n
		case pSE4, pSE8, pSE16, pHalfPad, pTwoHalfSE, pRepBytes, pUncomp:
			width := map[uint64]int{pSE4: 4, pSE8: 8, pSE16: 16, pHalfPad: 16, pTwoHalfSE: 16, pRepBytes: 8, pUncomp: 32}[pat]
			v, err := r.ReadBits(width)
			if err != nil {
				return fmt.Errorf("fpc: payload at word %d: %w", i, err)
			}
			words[i] = expand(int(pat), uint32(v))
			i++
		default:
			return fmt.Errorf("fpc: unknown prefix %d", pat)
		}
	}
	compress.PutWords(dst, words)
	return nil
}

// expand reverses classify for one payload.
func expand(pat int, v uint32) uint32 {
	switch pat {
	case pSE4:
		return uint32(int32(v<<28) >> 28)
	case pSE8:
		return uint32(int32(v<<24) >> 24)
	case pSE16:
		return uint32(int32(v<<16) >> 16)
	case pHalfPad:
		return v << 16
	case pTwoHalfSE:
		lo := uint32(int32(int8(v&0xFF))) & 0xFFFF
		hi := uint32(int32(int8(v>>8))) & 0xFFFF
		return hi<<16 | lo
	case pRepBytes:
		return v | v<<8 | v<<16 | v<<24
	case pUncomp:
		return v
	}
	panic("fpc: bad pattern")
}
