package fpc

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
)

func roundTrip(t *testing.T, block []byte) compress.Encoded {
	t.Helper()
	var c Codec
	enc := c.Compress(block)
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(dst, block) {
		t.Fatalf("round trip mismatch")
	}
	return enc
}

func TestZeroBlock(t *testing.T) {
	block := make([]byte, compress.BlockSize)
	enc := roundTrip(t, block)
	// 32 zero words = 4 runs of 8, each prefix(3)+len(3) = 24 bits.
	if enc.Bits != 24 {
		t.Errorf("zero block = %d bits, want 24", enc.Bits)
	}
}

func TestSmallInts(t *testing.T) {
	block := make([]byte, compress.BlockSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(block[i*4:], uint32(i%8)) // 4-bit SE
	}
	enc := roundTrip(t, block)
	// Word 0 and 8 and 16 and 24 are zero singles (runs of 1): 4×6 bits;
	// remaining 28 words are SE4: 28×7 bits = 196. Total 220.
	if enc.Bits != 220 {
		t.Errorf("small ints = %d bits, want 220", enc.Bits)
	}
}

func TestPatternCoverage(t *testing.T) {
	words := []uint32{
		0,          // zero
		5,          // SE4
		0xFFFFFFFB, // -5, SE4
		100,        // SE8
		0xFFFFFF80, // -128, SE8
		30000,      // SE16
		0xFFFF8000, // -32768, SE16
		0xABCD0000, // half padded
		0x00FF00FE, // two halfwords SE bytes (255 is not a SE byte: check)
		0x7B7B7B7B, // repeated bytes
		0xDEADBEEF, // uncompressed
		0x0001FFFF, // two halfwords: 1 and -1
	}
	block := make([]byte, compress.BlockSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(block[i*4:], words[i%len(words)])
	}
	roundTrip(t, block)
}

func TestExpandInverseOfClassify(t *testing.T) {
	f := func(w uint32) bool {
		if w == 0 {
			return true // handled by run-length path
		}
		pat, bits, payload := classify(w)
		mask := uint32(1)<<uint(bits) - 1
		return expand(pat, payload&mask) == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFloatData(t *testing.T) {
	block := make([]byte, compress.BlockSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(block[i*4:], math.Float32bits(1.5+float32(i)*0.25))
	}
	enc := roundTrip(t, block)
	if enc.Bits > compress.BlockBits {
		t.Errorf("bits = %d exceeds block", enc.Bits)
	}
}

func TestIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	block := make([]byte, compress.BlockSize)
	rng.Read(block)
	enc := roundTrip(t, block)
	// Random words are mostly uncompressed (35 bits each); Compress caps at
	// the block size and stores raw.
	if enc.Bits != compress.BlockBits {
		t.Errorf("random block = %d bits, want raw fallback", enc.Bits)
	}
}

func TestCompressedBitsMatchesCompress(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var c Codec
	for trial := 0; trial < 300; trial++ {
		block := make([]byte, compress.BlockSize)
		switch trial % 4 {
		case 0:
			rng.Read(block)
		case 1: // sparse
			for i := 0; i < 32; i += 4 {
				binary.LittleEndian.PutUint32(block[i*4:], uint32(rng.Intn(1<<16)))
			}
		case 2: // small values
			for i := 0; i < 32; i++ {
				binary.LittleEndian.PutUint32(block[i*4:], uint32(rng.Intn(256)))
			}
		case 3: // floats
			for i := 0; i < 32; i++ {
				binary.LittleEndian.PutUint32(block[i*4:], math.Float32bits(rng.Float32()))
			}
		}
		if got, want := c.CompressedBits(block), c.Compress(block).Bits; got != want {
			t.Fatalf("trial %d: CompressedBits = %d, Compress.Bits = %d", trial, got, want)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	var c Codec
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		block := make([]byte, compress.BlockSize)
		// Mix compressible and incompressible words.
		for i := 0; i < 32; i++ {
			var v uint32
			switch rng.Intn(5) {
			case 0:
				v = 0
			case 1:
				v = uint32(rng.Intn(16)) - 8
			case 2:
				v = uint32(rng.Intn(1 << 16))
			case 3:
				v = rng.Uint32() << 16
			case 4:
				v = rng.Uint32()
			}
			binary.LittleEndian.PutUint32(block[i*4:], v)
		}
		enc := c.Compress(block)
		dst := make([]byte, compress.BlockSize)
		if err := c.Decompress(enc, dst); err != nil {
			return false
		}
		return bytes.Equal(dst, block)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecompressTruncated(t *testing.T) {
	var c Codec
	block := make([]byte, compress.BlockSize)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(block[i*4:], 0x12345678)
	}
	enc := c.Compress(block)
	enc.Payload = enc.Payload[:1]
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err == nil {
		t.Error("expected error for truncated payload")
	}
}
