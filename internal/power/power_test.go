package power

import (
	"testing"

	"repro/internal/gpu/cache"
	"repro/internal/gpu/mc"
	"repro/internal/gpu/sim"
)

func sampleResult() sim.Result {
	return sim.Result{
		TimeNs:       1_300_000, // 1.3 ms
		Instructions: 4_000_000,
		DramBursts:   2_000_000,
		Activations:  300_000,
		L2:           cache.Stats{Hits: 400_000, Misses: 600_000},
		MC:           mc.Stats{Compresses: 100_000, Decompresses: 500_000},
	}
}

func TestComponentsPositive(t *testing.T) {
	b, err := Compute(sampleResult(), Default())
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"static": b.StaticMJ, "core": b.CoreMJ, "l2": b.L2MJ,
		"dram": b.DramMJ, "codec": b.CodecMJ,
	} {
		if v < 0 {
			t.Errorf("%s energy negative: %v", name, v)
		}
	}
	if b.TotalMJ() <= 0 {
		t.Error("total energy not positive")
	}
}

func TestCalibratedShares(t *testing.T) {
	// The Figure 8b normalisations depend on the component shares: static
	// around half, DRAM around a third for a memory-bound kernel.
	b, _ := Compute(sampleResult(), Default())
	tot := b.TotalMJ()
	static := b.StaticMJ / tot
	dram := b.DramMJ / tot
	if static < 0.35 || static > 0.65 {
		t.Errorf("static share %.2f outside [0.35, 0.65]", static)
	}
	if dram < 0.2 || dram > 0.45 {
		t.Errorf("dram share %.2f outside [0.2, 0.45]", dram)
	}
	if b.CodecMJ > 0.001*tot {
		t.Errorf("codec energy share %.5f not negligible", b.CodecMJ/tot)
	}
}

func TestEnergyScalesWithTraffic(t *testing.T) {
	r1 := sampleResult()
	r2 := sampleResult()
	r2.DramBursts = r1.DramBursts * 86 / 100 // −14% traffic
	r2.TimeNs = r1.TimeNs * 91 / 100         // −9% time
	b1, _ := Compute(r1, Default())
	b2, _ := Compute(r2, Default())
	red := 1 - b2.TotalMJ()/b1.TotalMJ()
	// Paper Figure 8b: ≈8.3% energy reduction for this traffic/time delta.
	if red < 0.04 || red > 0.14 {
		t.Errorf("energy reduction %.3f outside [0.04, 0.14]", red)
	}
	edpRed := 1 - b2.EDP(r2.TimeNs)/b1.EDP(r1.TimeNs)
	// EDP reduction ≈ 17.5% in the paper.
	if edpRed < 0.10 || edpRed > 0.25 {
		t.Errorf("EDP reduction %.3f outside [0.10, 0.25]", edpRed)
	}
}

func TestNegativeTimeRejected(t *testing.T) {
	r := sampleResult()
	r.TimeNs = -1
	if _, err := Compute(r, Default()); err == nil {
		t.Error("negative time accepted")
	}
}
