// Package power is the GPUSimPow substitute: it converts the timing
// simulator's event counts into energy and energy-delay product. The
// component constants are calibrated so that the energy shares of a
// memory-bound kernel on a Fermi-class GPU match what GPUSimPow reports —
// static/constant power around half, DRAM around a third, core dynamic the
// rest — because only the shares (not absolute joules) determine the
// normalised energy and EDP the paper plots in Figure 8b.
package power

import (
	"fmt"

	"repro/internal/gpu/sim"
)

// Params are the energy model constants.
type Params struct {
	// StaticWatts is chip-level static + constant background power (clock
	// trees, leakage, fans folded in).
	StaticWatts float64
	// InstrNJ is core dynamic energy per issued instruction slot.
	InstrNJ float64
	// L2NJ is energy per L2 access.
	L2NJ float64
	// BurstNJ is DRAM + IO energy per 32-byte burst, including background
	// and refresh amortisation.
	BurstNJ float64
	// ActivateNJ is energy per DRAM row activation.
	ActivateNJ float64
	// CompressNJ / DecompressNJ are per-block codec energies, derived from
	// the Table I power figures (1.62 mW × 46 cycles, 0.21 mW × 20 cycles
	// at ~1 GHz — fractions of a nanojoule).
	CompressNJ   float64
	DecompressNJ float64
}

// Default returns the calibrated Fermi-class constants.
func Default() Params {
	return Params{
		StaticWatts:  60,
		InstrNJ:      8,
		L2NJ:         2,
		BurstNJ:      25,
		ActivateNJ:   5,
		CompressNJ:   0.075, // 1.62 mW × 46 ns
		DecompressNJ: 0.005, // 0.21 mW × 20 ns
	}
}

// Breakdown is the energy split of one simulation, in millijoules.
type Breakdown struct {
	StaticMJ float64
	CoreMJ   float64
	L2MJ     float64
	DramMJ   float64
	CodecMJ  float64
}

// TotalMJ sums the components.
func (b Breakdown) TotalMJ() float64 {
	return b.StaticMJ + b.CoreMJ + b.L2MJ + b.DramMJ + b.CodecMJ
}

// EDP returns the energy-delay product in millijoule-milliseconds.
func (b Breakdown) EDP(timeNs float64) float64 {
	return b.TotalMJ() * timeNs / 1e6
}

// Compute converts event counts into an energy breakdown.
func Compute(res sim.Result, p Params) (Breakdown, error) {
	if res.TimeNs < 0 {
		return Breakdown{}, fmt.Errorf("power: negative time %f", res.TimeNs)
	}
	const nj = 1e-6 // nanojoule in millijoules
	return Breakdown{
		StaticMJ: p.StaticWatts * res.TimeNs * 1e-9 * 1e3,
		CoreMJ:   float64(res.Instructions) * p.InstrNJ * nj,
		L2MJ:     float64(res.L2.Hits+res.L2.Misses) * p.L2NJ * nj,
		DramMJ: float64(res.DramBursts)*p.BurstNJ*nj +
			float64(res.Activations)*p.ActivateNJ*nj,
		CodecMJ: float64(res.MC.Compresses)*p.CompressNJ*nj +
			float64(res.MC.Decompresses)*p.DecompressNJ*nj,
	}, nil
}
