package slc

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
	"repro/internal/compress/e2mc"
)

// testTable trains an E2MC table on float-like blocks so that typical blocks
// land a few bits above a burst boundary — the regime SLC targets.
func testTable(t testing.TB) *e2mc.Table {
	t.Helper()
	tr := e2mc.NewTrainer()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 600; i++ {
		tr.Sample(floatBlock(rng))
	}
	tab, err := tr.Build(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func floatBlock(rng *rand.Rand) []byte {
	b := make([]byte, compress.BlockSize)
	base := rng.Float32() * 8
	for i := 0; i < 32; i++ {
		v := base + float32(rng.Intn(64))/64
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
	}
	return b
}

func newCodec(t testing.TB, tab *e2mc.Table, v Variant) *Codec {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Variant = v
	c, err := New(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	tab := testTable(t)
	if _, err := New(tab, Config{MAG: 24, ThresholdBits: 128, Variant: OPT}); err == nil {
		t.Error("invalid MAG accepted")
	}
	if _, err := New(tab, Config{MAG: compress.MAG32, ThresholdBits: -1, Variant: OPT}); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := New(tab, Config{MAG: compress.MAG32, ThresholdBits: 128, Variant: Variant(9)}); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestDecisionBudgetArithmetic(t *testing.T) {
	tab := testTable(t)
	c := newCodec(t, tab, OPT)
	rng := rand.New(rand.NewSource(50))
	sawLossy := false
	for i := 0; i < 2000; i++ {
		block := floatBlock(rng)
		d := c.Decide(block)
		switch d.Mode {
		case ModeUncompressed:
			if d.StoredBits != compress.BlockBits {
				t.Fatalf("uncompressed stored %d bits", d.StoredBits)
			}
		case ModeLossless:
			if d.StoredBits != d.CompBits {
				t.Fatalf("lossless stored %d ≠ comp %d", d.StoredBits, d.CompBits)
			}
			if d.ExtraBits > 0 && d.ExtraBits <= c.cfg.ThresholdBits {
				// Lossless despite qualifying extra bits is only legal if no
				// tree node could cover them.
				if d.Node.Count != 0 {
					t.Fatalf("qualifying block stayed lossless with node %+v", d.Node)
				}
			}
		case ModeLossy:
			sawLossy = true
			if d.ExtraBits <= 0 || d.ExtraBits > c.cfg.ThresholdBits {
				t.Fatalf("lossy with extra %d (threshold %d)", d.ExtraBits, c.cfg.ThresholdBits)
			}
			if d.StoredBits > d.BudgetBits {
				t.Fatalf("lossy stored %d exceeds budget %d", d.StoredBits, d.BudgetBits)
			}
			if d.Node.Count < 1 || d.Node.Count > MaxApproxSymbols {
				t.Fatalf("approximated %d symbols", d.Node.Count)
			}
			// Lossy must save at least one burst versus lossless.
			m := c.cfg.MAG
			if m.Bursts(d.StoredBits) >= m.Bursts(d.CompBits) {
				t.Fatalf("lossy saved no burst: %d vs %d bits", d.StoredBits, d.CompBits)
			}
		}
	}
	if !sawLossy {
		t.Error("test data never triggered the lossy mode; table/training mismatch")
	}
}

func TestLosslessRoundTrip(t *testing.T) {
	tab := testTable(t)
	c := newCodec(t, tab, OPT)
	rng := rand.New(rand.NewSource(51))
	dst := make([]byte, compress.BlockSize)
	n := 0
	for i := 0; i < 500 && n < 100; i++ {
		block := floatBlock(rng)
		if c.Decide(block).Mode == ModeLossy {
			continue
		}
		n++
		enc := c.Compress(block)
		if enc.Lossy {
			t.Fatal("encoded lossy despite lossless decision")
		}
		if err := c.Decompress(enc, dst); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, block) {
			t.Fatal("lossless round trip mismatch")
		}
	}
	if n == 0 {
		t.Error("no lossless blocks exercised")
	}
}

func TestLossyDamageConfinedToSpan(t *testing.T) {
	tab := testTable(t)
	for _, v := range []Variant{SIMP, PRED, OPT} {
		c := newCodec(t, tab, v)
		rng := rand.New(rand.NewSource(52))
		dst := make([]byte, compress.BlockSize)
		n := 0
		for i := 0; i < 3000 && n < 200; i++ {
			block := floatBlock(rng)
			d := c.Decide(block)
			if d.Mode != ModeLossy {
				continue
			}
			n++
			enc := c.Compress(block)
			if !enc.Lossy {
				t.Fatalf("%v: encoded lossless despite lossy decision", v)
			}
			if err := c.Decompress(enc, dst); err != nil {
				t.Fatal(err)
			}
			lo, hi := d.Node.Start*2, (d.Node.Start+d.Node.Count)*2
			if !bytes.Equal(dst[:lo], block[:lo]) || !bytes.Equal(dst[hi:], block[hi:]) {
				t.Fatalf("%v: damage outside approximated span [%d,%d)", v, lo, hi)
			}
		}
		if n == 0 {
			t.Errorf("%v: no lossy blocks exercised", v)
		}
	}
}

func TestSIMPFillsZeros(t *testing.T) {
	tab := testTable(t)
	c := newCodec(t, tab, SIMP)
	rng := rand.New(rand.NewSource(53))
	dst := make([]byte, compress.BlockSize)
	for i := 0; i < 3000; i++ {
		block := floatBlock(rng)
		d := c.Decide(block)
		if d.Mode != ModeLossy {
			continue
		}
		enc := c.Compress(block)
		if err := c.Decompress(enc, dst); err != nil {
			t.Fatal(err)
		}
		syms := compress.Symbols(dst)
		for j := d.Node.Start; j < d.Node.Start+d.Node.Count; j++ {
			if syms[j] != 0 {
				t.Fatalf("SIMP symbol %d = %x, want 0", j, syms[j])
			}
		}
		return
	}
	t.Error("no lossy block exercised")
}

func TestPREDFillsFirstNonTruncated(t *testing.T) {
	tab := testTable(t)
	c := newCodec(t, tab, PRED)
	rng := rand.New(rand.NewSource(54))
	dst := make([]byte, compress.BlockSize)
	n := 0
	for i := 0; i < 5000 && n < 50; i++ {
		block := floatBlock(rng)
		d := c.Decide(block)
		if d.Mode != ModeLossy {
			continue
		}
		n++
		enc := c.Compress(block)
		if err := c.Decompress(enc, dst); err != nil {
			t.Fatal(err)
		}
		syms := compress.Symbols(dst)
		// Stride-aware prediction: each truncated symbol takes the nearest
		// non-truncated symbol at the same offset modulo 4.
		lo, hi := d.Node.Start, d.Node.Start+d.Node.Count
		wantFor := func(i int) uint16 {
			for j := i - 4; j >= 0; j -= 4 {
				if j < lo {
					return syms[j]
				}
			}
			for j := i + 4; j < compress.SymbolsPerBlock; j += 4 {
				if j >= hi {
					return syms[j]
				}
			}
			for j := i % 2; j < compress.SymbolsPerBlock; j += 2 {
				if j < lo || j >= hi {
					return syms[j]
				}
			}
			return 0
		}
		for j := lo; j < hi; j++ {
			if syms[j] != wantFor(j) {
				t.Fatalf("PRED symbol %d = %x, want predicted %x", j, syms[j], wantFor(j))
			}
		}
	}
	if n == 0 {
		t.Error("no lossy blocks exercised")
	}
}

func TestThresholdZeroNeverLossy(t *testing.T) {
	tab := testTable(t)
	cfg := DefaultConfig()
	cfg.ThresholdBits = 0
	c, err := New(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 1000; i++ {
		if d := c.Decide(floatBlock(rng)); d.Mode == ModeLossy {
			t.Fatal("lossy mode with zero threshold")
		}
	}
}

func TestLargerThresholdMoreLossy(t *testing.T) {
	tab := testTable(t)
	count := func(thresholdBits int) int {
		cfg := DefaultConfig()
		cfg.ThresholdBits = thresholdBits
		c, err := New(tab, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(56))
		n := 0
		for i := 0; i < 2000; i++ {
			if c.Decide(floatBlock(rng)).Mode == ModeLossy {
				n++
			}
		}
		return n
	}
	n4, n16, n32 := count(4*8), count(16*8), count(32*8)
	if !(n4 <= n16 && n16 <= n32) {
		t.Errorf("lossy counts not monotone in threshold: %d, %d, %d", n4, n16, n32)
	}
	if n32 == 0 {
		t.Error("32B threshold produced no lossy blocks")
	}
}

func TestIncompressibleStoredRaw(t *testing.T) {
	tab := testTable(t)
	c := newCodec(t, tab, OPT)
	rng := rand.New(rand.NewSource(57))
	block := make([]byte, compress.BlockSize)
	rng.Read(block)
	d := c.Decide(block)
	if d.Mode != ModeUncompressed {
		t.Fatalf("random block mode = %v", d.Mode)
	}
	enc := c.Compress(block)
	if enc.Bits != compress.BlockBits || enc.Lossy {
		t.Fatalf("raw block: bits=%d lossy=%v", enc.Bits, enc.Lossy)
	}
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, block) {
		t.Error("raw round trip mismatch")
	}
}

func TestQuickPipelineInvariants(t *testing.T) {
	tab := testTable(t)
	codecs := map[Variant]*Codec{
		SIMP: newCodec(t, tab, SIMP),
		PRED: newCodec(t, tab, PRED),
		OPT:  newCodec(t, tab, OPT),
	}
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		v := []Variant{SIMP, PRED, OPT}[int(pick)%3]
		c := codecs[v]
		block := floatBlock(rng)
		d := c.Decide(block)
		enc := c.Compress(block)
		if enc.Bits != d.StoredBits {
			return false
		}
		dst := make([]byte, compress.BlockSize)
		if err := c.Decompress(enc, dst); err != nil {
			return false
		}
		if d.Mode != ModeLossy {
			return bytes.Equal(dst, block)
		}
		lo, hi := d.Node.Start*2, (d.Node.Start+d.Node.Count)*2
		return bytes.Equal(dst[:lo], block[:lo]) && bytes.Equal(dst[hi:], block[hi:]) &&
			enc.Bits <= d.BudgetBits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestDecompressRejectsBadSpan(t *testing.T) {
	tab := testTable(t)
	c := newCodec(t, tab, OPT)
	// Handcraft a header with ss+len beyond 64 symbols.
	w := compress.NewBitWriter(64)
	w.WriteBool(true)       // lossy
	w.WriteBits(60, ssBits) // ss = 60
	w.WriteBits(15, lenBits)
	for i := 0; i < 3; i++ {
		w.WriteBits(4, pdpBits)
	}
	w.AlignByte()
	enc := compress.Encoded{Bits: 64, Payload: append(w.Bytes(), make([]byte, 4)...)}
	dst := make([]byte, compress.BlockSize)
	if err := c.Decompress(enc, dst); err == nil {
		t.Error("expected span range error (60+16 > 64)")
	}
}

func TestVariantString(t *testing.T) {
	for v, want := range map[Variant]string{SIMP: "TSLC-SIMP", PRED: "TSLC-PRED", OPT: "TSLC-OPT"} {
		if v.String() != want {
			t.Errorf("Variant %d = %q", v, v.String())
		}
	}
	for m, want := range map[Mode]string{ModeUncompressed: "uncompressed", ModeLossless: "lossless", ModeLossy: "lossy"} {
		if m.String() != want {
			t.Errorf("Mode %d = %q", m, m.String())
		}
	}
}

func TestDecisionStatsAccumulate(t *testing.T) {
	tab := testTable(t)
	c := newCodec(t, tab, OPT)
	rng := rand.New(rand.NewSource(70))
	n := 2000
	for i := 0; i < n; i++ {
		c.Compress(floatBlock(rng))
	}
	st := c.Stats()
	if st.Lossless+st.Lossy+st.Uncompressed != int64(n) {
		t.Fatalf("decision counts %+v do not sum to %d", st, n)
	}
	if st.Lossy == 0 {
		t.Fatal("no lossy decisions recorded")
	}
	// §III-G: the 4-bit len field suffices because at most 16 symbols are
	// approximated.
	if st.MaxApprox > MaxApproxSymbols {
		t.Fatalf("max approximated symbols %d exceeds header capacity %d",
			st.MaxApprox, MaxApproxSymbols)
	}
	if avg := float64(st.ApproxSyms) / float64(st.Lossy); avg < 1 || avg > 16 {
		t.Fatalf("avg approximated symbols %.1f implausible", avg)
	}
}
