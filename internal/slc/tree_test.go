package slc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compress"
)

func uniformCosts(c int) *[compress.SymbolsPerBlock]int {
	var costs [compress.SymbolsPerBlock]int
	for i := range costs {
		costs[i] = c
	}
	return &costs
}

func TestTreeRootSum(t *testing.T) {
	costs := uniformCosts(8)
	tree := NewTree(costs, false)
	if got := tree.PayloadBits(); got != 64*8 {
		t.Errorf("root sum = %d, want 512", got)
	}
}

func TestTreeLevelSums(t *testing.T) {
	var costs [compress.SymbolsPerBlock]int
	for i := range costs {
		costs[i] = i
	}
	tree := NewTree(&costs, false)
	if got := tree.NodeSums(1)[0]; got != 0+1 {
		t.Errorf("level1[0] = %d, want 1", got)
	}
	if got := tree.NodeSums(2)[3]; got != 12+13+14+15 {
		t.Errorf("level2[3] = %d, want 54", got)
	}
	if got := tree.NodeSums(6)[0]; got != 64*63/2 {
		t.Errorf("root = %d, want 2016", got)
	}
}

func TestSelectFewestSymbols(t *testing.T) {
	// Uniform cost 8: need 20 cannot be covered by 1 or 2 symbols (8, 16)
	// but a 4-symbol node (32) covers it.
	tree := NewTree(uniformCosts(8), false)
	node, ok := tree.Select(20, MaxApproxSymbols)
	if !ok {
		t.Fatal("no node selected")
	}
	if node.Count != 4 || node.Start != 0 || node.Sum != 32 {
		t.Errorf("node = %+v, want 4 symbols at 0 with sum 32", node)
	}
}

func TestSelectPriorityEncoderFirstHit(t *testing.T) {
	// Level 0: only symbol 37 has a large cost; the first level-0 hit is 37.
	costs := uniformCosts(2)
	costs[37] = 30
	tree := NewTree(costs, false)
	node, ok := tree.Select(25, MaxApproxSymbols)
	if !ok || node.Count != 1 || node.Start != 37 {
		t.Errorf("node = %+v ok=%v, want single symbol 37", node, ok)
	}
}

func TestSelectRespectsMaxSymbols(t *testing.T) {
	// Uniform cost 1: need 40 requires ≥ 40 symbols, beyond the 16-symbol cap.
	tree := NewTree(uniformCosts(1), false)
	if _, ok := tree.Select(40, MaxApproxSymbols); ok {
		t.Error("selected a node beyond the symbol cap")
	}
	// With cost 4, 16 symbols sum to 64 ≥ 40.
	tree = NewTree(uniformCosts(4), false)
	node, ok := tree.Select(40, MaxApproxSymbols)
	if !ok || node.Count != 16 {
		t.Errorf("node = %+v ok=%v, want a 16-symbol node", node, ok)
	}
}

func TestOptExtraNodesReduceOvershoot(t *testing.T) {
	// Uniform cost 8 and need 33: plain TSLC jumps from 4-symbol sums (32,
	// miss) to 8-symbol sums (64, overshoot). The OPT 6-symbol node (48)
	// covers it with less approximation.
	plain := NewTree(uniformCosts(8), false)
	n1, ok := plain.Select(33, MaxApproxSymbols)
	if !ok || n1.Count != 8 {
		t.Fatalf("plain tree: node = %+v ok=%v, want 8 symbols", n1, ok)
	}
	opt := NewTree(uniformCosts(8), true)
	n2, ok := opt.Select(33, MaxApproxSymbols)
	if !ok || n2.Count != 6 {
		t.Fatalf("opt tree: node = %+v ok=%v, want 6 symbols", n2, ok)
	}
	if n2.Sum < 33 {
		t.Errorf("opt node sum %d below need", n2.Sum)
	}
}

func TestOptExtraNodeCounts(t *testing.T) {
	// Paper §III-F: 8 extra nodes at the 16-node level, 4 at the 8-node level.
	tree := NewTree(uniformCosts(1), true)
	var six, twelve int
	for _, n := range tree.ExtraNodes() {
		switch n.Count {
		case 6:
			six++
		case 12:
			twelve++
		default:
			t.Errorf("unexpected extra node count %d", n.Count)
		}
	}
	if six != 8 || twelve != 4 {
		t.Errorf("extra nodes = %d six-symbol + %d twelve-symbol, want 8 + 4", six, twelve)
	}
}

func TestExtraNodeSumsMatchSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var costs [compress.SymbolsPerBlock]int
	for i := range costs {
		costs[i] = rng.Intn(30) + 1
	}
	tree := NewTree(&costs, true)
	for _, n := range tree.ExtraNodes() {
		sum := 0
		for i := n.Start; i < n.Start+n.Count; i++ {
			sum += costs[i]
		}
		if sum != n.Sum {
			t.Errorf("extra node %+v: span sums to %d", n, sum)
		}
	}
}

func TestSelectInvariants(t *testing.T) {
	f := func(seed int64, needRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		var costs [compress.SymbolsPerBlock]int
		for i := range costs {
			costs[i] = rng.Intn(31) + 1
		}
		need := int(needRaw)%256 + 1
		for _, opt := range []bool{false, true} {
			tree := NewTree(&costs, opt)
			node, ok := tree.Select(need, MaxApproxSymbols)
			if !ok {
				continue
			}
			if node.Sum < need || node.Count > MaxApproxSymbols {
				return false
			}
			if node.Start < 0 || node.Start+node.Count > compress.SymbolsPerBlock {
				return false
			}
			// Node must not straddle a 16-symbol way.
			if node.Start/16 != (node.Start+node.Count-1)/16 {
				return false
			}
			// Sum must equal the span.
			sum := 0
			for i := node.Start; i < node.Start+node.Count; i++ {
				sum += costs[i]
			}
			if sum != node.Sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
