// Package slc implements Selective Lossy Compression (SLC), the contribution
// of Lal, Lucas & Juurlink (DATE 2019): a memory-access-granularity aware
// compression mode selector layered on the E2MC entropy codec.
//
// When lossless compression yields a size only a few bits above a multiple of
// the memory access granularity (MAG), a whole extra burst would be fetched
// for those bits. SLC instead approximates just enough symbols — selected by
// a parallel adder tree (TSLC) — to pull the compressed size down to the
// burst boundary, trading a small, bounded accuracy loss for one fewer burst.
package slc

import (
	"fmt"
	"sync"

	"repro/internal/compress"
	"repro/internal/compress/e2mc"
)

// Variant selects one of the three TSLC schemes evaluated in the paper (§V).
type Variant int

const (
	// SIMP truncates the selected symbols and decodes them as zeros.
	SIMP Variant = iota
	// PRED truncates and predicts the truncated symbols from the first
	// non-truncated symbol of the block (value-similarity prediction, §III-E).
	PRED
	// OPT is PRED plus extra adder-tree nodes at the middle levels to
	// reduce unneeded approximation (§III-F).
	OPT
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case SIMP:
		return "TSLC-SIMP"
	case PRED:
		return "TSLC-PRED"
	case OPT:
		return "TSLC-OPT"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Latency of the TSLC pipeline in memory-controller cycles (paper §IV-A):
// fetching all code lengths takes ~12 cycles, summing and selecting 2 more,
// on top of E2MC's 46-cycle compression; decompression matches E2MC.
const (
	CompressCycles   = 60
	DecompressCycles = e2mc.DecompressCycles
)

// MaxApproxSymbols bounds the approximated span; the paper observes at most
// 16 approximated symbols, which is also all the 4-bit header len field can
// express.
const MaxApproxSymbols = 16

// HeaderBits is the SLC per-block header (Figure 6): mode m (1) + start
// symbol ss (6) + length len (4) + 3 parallel decoding pointers × 7 = 32
// bits. Uncompressed blocks carry no header.
const HeaderBits = 32

const (
	ssBits  = 6
	lenBits = 4
	pdpBits = 7
)

// Config parameterises the SLC mode decision.
type Config struct {
	// MAG is the memory access granularity (default 32 B).
	MAG compress.MAG
	// ThresholdBits is the lossy threshold: the largest number of extra
	// bits the user allows to be approximated away (paper default 16 B).
	ThresholdBits int
	// Variant selects TSLC-SIMP, TSLC-PRED or TSLC-OPT.
	Variant Variant
}

// DefaultConfig is the configuration of the paper's main evaluation:
// TSLC-OPT with a 16-byte threshold at 32-byte MAG.
func DefaultConfig() Config {
	return Config{MAG: compress.MAG32, ThresholdBits: 16 * 8, Variant: OPT}
}

// Mode is the outcome of the SLC decision for one block.
type Mode int

const (
	// ModeUncompressed stores the block raw: lossless compression did not
	// beat the uncompressed size.
	ModeUncompressed Mode = iota
	// ModeLossless stores the E2MC-compressed block.
	ModeLossless
	// ModeLossy truncates a selected symbol span to reach the bit budget.
	ModeLossy
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeUncompressed:
		return "uncompressed"
	case ModeLossless:
		return "lossless"
	case ModeLossy:
		return "lossy"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Decision records the mode choice for one block; experiments use it to
// study the distribution of compressed blocks at MAG.
type Decision struct {
	Mode       Mode
	CompBits   int // lossless compressed size incl. header and way padding
	BudgetBits int // greatest multiple of MAG ≤ CompBits (clamped)
	ExtraBits  int // CompBits − BudgetBits
	StoredBits int // size actually stored after the decision
	Node       Node
}

// DecisionStats accumulates mode-decision statistics across a codec's
// lifetime; the paper's §III-G sizing of the header len field rests on the
// observation that at most 16 symbols are ever approximated.
type DecisionStats struct {
	Lossless     int64
	Lossy        int64
	Uncompressed int64
	ApproxSyms   int64 // total symbols approximated
	MaxApprox    int   // largest single-block approximation
}

// Codec applies SLC on top of a trained E2MC table. It implements
// compress.Codec; Compress is lossy whenever the decision selects ModeLossy.
// Compress and Decompress are safe for concurrent use (the parallel pipeline
// fans blocks of one region across goroutines sharing one codec): the table
// is read-only and the decision statistics are guarded.
type Codec struct {
	tab     *e2mc.Table
	cfg     Config
	statsMu sync.Mutex
	stats   DecisionStats
}

// New returns an SLC codec. The table must come from e2mc.Trainer; cfg.MAG
// must be valid.
func New(tab *e2mc.Table, cfg Config) (*Codec, error) {
	if !cfg.MAG.Valid() {
		return nil, fmt.Errorf("slc: invalid MAG %d", cfg.MAG)
	}
	if cfg.ThresholdBits < 0 || cfg.ThresholdBits > compress.BlockBits {
		return nil, fmt.Errorf("slc: threshold %d bits out of range", cfg.ThresholdBits)
	}
	if cfg.Variant < SIMP || cfg.Variant > OPT {
		return nil, fmt.Errorf("slc: unknown variant %d", cfg.Variant)
	}
	return &Codec{tab: tab, cfg: cfg}, nil
}

// Name implements compress.Codec.
func (c *Codec) Name() string { return c.cfg.Variant.String() }

// Config returns the codec's configuration.
func (c *Codec) Config() Config { return c.cfg }

// sizeBits converts per-way payload bits into the stored block size:
// header + byte-padded ways.
func sizeBits(wayBits [e2mc.PDWs]int) int {
	n := HeaderBits / 8
	for _, b := range wayBits {
		n += (b + 7) / 8
	}
	return n * 8
}

// wayOf returns the parallel decoding way containing the span, which by
// construction of the tree nodes never straddles a way boundary.
func wayOf(start, count int) int {
	w := start / e2mc.SymbolsPerWay
	if (start+count-1)/e2mc.SymbolsPerWay != w {
		panic(fmt.Sprintf("slc: span [%d,%d) straddles ways", start, start+count))
	}
	return w
}

// Stats returns the accumulated decision statistics (updated by Compress,
// not by Decide).
func (c *Codec) Stats() DecisionStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

// Decide runs the SLC mode decision for one block without compressing it.
func (c *Codec) Decide(block []byte) Decision {
	syms := compress.Symbols(block)
	return c.decide(&syms)
}

// record accumulates one Compress decision.
func (c *Codec) record(d Decision) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	switch d.Mode {
	case ModeUncompressed:
		c.stats.Uncompressed++
	case ModeLossless:
		c.stats.Lossless++
	case ModeLossy:
		c.stats.Lossy++
		c.stats.ApproxSyms += int64(d.Node.Count)
		if d.Node.Count > c.stats.MaxApprox {
			c.stats.MaxApprox = d.Node.Count
		}
	}
}

func (c *Codec) decide(syms *[compress.SymbolsPerBlock]uint16) Decision {
	var costs [compress.SymbolsPerBlock]int
	var wayBits [e2mc.PDWs]int
	for i, s := range syms {
		costs[i] = c.tab.SymbolBits(s)
		wayBits[i/e2mc.SymbolsPerWay] += costs[i]
	}
	compBits := sizeBits(wayBits)
	if compBits >= compress.BlockBits {
		return Decision{Mode: ModeUncompressed, CompBits: compress.BlockBits,
			BudgetBits: compress.BlockBits, StoredBits: compress.BlockBits}
	}
	d := Decision{
		CompBits:   compBits,
		BudgetBits: c.cfg.MAG.BitBudget(compBits),
	}
	d.ExtraBits = compBits - d.BudgetBits
	if d.ExtraBits <= 0 || d.ExtraBits > c.cfg.ThresholdBits {
		d.Mode = ModeLossless
		d.StoredBits = compBits
		return d
	}
	// Lossy candidate: select the sub-block to approximate. The tree lives
	// on the stack — decide runs once per synced block.
	var tree Tree
	tree.Reset(&costs, c.cfg.Variant == OPT)
	need := d.ExtraBits
	for iter := 0; iter < 8; iter++ {
		node, ok := tree.Select(need, MaxApproxSymbols)
		if !ok {
			break
		}
		lossy := wayBits
		lossy[wayOf(node.Start, node.Count)] -= node.Sum
		stored := sizeBits(lossy)
		if stored <= d.BudgetBits {
			d.Mode = ModeLossy
			d.StoredBits = stored
			d.Node = node
			return d
		}
		// Way byte-padding absorbed part of the removed bits; ask for a
		// larger sum and retry (at most +7 bits per iteration).
		inc := stored - d.BudgetBits
		if inc < 1 {
			inc = 1
		}
		need = node.Sum + inc
	}
	d.Mode = ModeLossless
	d.StoredBits = compBits
	return d
}

// Compress implements compress.Codec, applying the SLC decision.
func (c *Codec) Compress(block []byte) compress.Encoded {
	if err := compress.CheckBlock(block); err != nil {
		panic(err)
	}
	syms := compress.Symbols(block)
	d := c.decide(&syms)
	c.record(d)
	switch d.Mode {
	case ModeUncompressed:
		p := make([]byte, compress.BlockSize)
		copy(p, block)
		return compress.Encoded{Bits: compress.BlockBits, Payload: p}
	case ModeLossless:
		return c.emit(&syms, 0, 0, d)
	default:
		return c.emit(&syms, d.Node.Start, d.Node.Count, d)
	}
}

// SyncBlock implements compress.Syncer: the decision runs as in Compress and
// a lossy approximation is written straight back into block, but no bitstream
// is materialised. This is equivalent to Compress followed by Decompress
// copied over block: non-truncated symbols round-trip exactly through the
// entropy coder (emit panics if the emitted size ever disagrees with the
// decision), so reconstructing the truncated span from the original symbols
// yields the same bytes as reconstructing it from the decoded ones.
//
//slclint:allocfree
func (c *Codec) SyncBlock(block []byte) (int, bool) {
	if err := compress.CheckBlock(block); err != nil {
		panic(err)
	}
	syms := compress.Symbols(block)
	d := c.decide(&syms)
	c.record(d)
	if d.Mode != ModeLossy {
		return d.StoredBits, false
	}
	fillApproximated(&syms, d.Node.Start, d.Node.Count, c.cfg.Variant)
	compress.PutSymbols(block, syms)
	return d.StoredBits, true
}

// emit encodes the block with the given skip span and builds the header.
func (c *Codec) emit(syms *[compress.SymbolsPerBlock]uint16, skipStart, skipLen int, d Decision) compress.Encoded {
	ways, _, _ := c.tab.EncodeWays(*syms, skipStart, skipLen)
	w := compress.NewBitWriter(d.StoredBits)
	w.WriteBool(skipLen > 0) // m
	if skipLen > 0 {
		w.WriteBits(uint64(skipStart), ssBits)
		w.WriteBits(uint64(skipLen-1), lenBits)
	} else {
		w.WriteBits(0, ssBits+lenBits)
	}
	off := HeaderBits / 8
	var starts [e2mc.PDWs]int
	for wy := 0; wy < e2mc.PDWs; wy++ {
		starts[wy] = off
		off += len(ways[wy])
	}
	for wy := 1; wy < e2mc.PDWs; wy++ {
		w.WriteBits(uint64(starts[wy]), pdpBits)
	}
	w.AlignByte()
	buf := w.Bytes()
	for wy := 0; wy < e2mc.PDWs; wy++ {
		buf = append(buf, ways[wy]...)
	}
	bits := len(buf) * 8
	if bits != d.StoredBits {
		panic(fmt.Sprintf("slc: emitted %d bits, decision predicted %d", bits, d.StoredBits))
	}
	return compress.Encoded{Bits: bits, Payload: buf, Lossy: skipLen > 0}
}

// Decompress implements compress.Codec. Truncated symbols are reconstructed
// per the codec's variant: zeros for TSLC-SIMP, value-similarity prediction
// for TSLC-PRED and TSLC-OPT.
func (c *Codec) Decompress(e compress.Encoded, dst []byte) error {
	if len(dst) < compress.BlockSize {
		return fmt.Errorf("slc: dst too small (%d bytes)", len(dst))
	}
	if e.Bits >= compress.BlockBits {
		if len(e.Payload) < compress.BlockSize {
			return fmt.Errorf("slc: raw payload too short")
		}
		copy(dst, e.Payload[:compress.BlockSize])
		return nil
	}
	r := compress.NewBitReader(e.Payload)
	lossy, err := r.ReadBool()
	if err != nil {
		return fmt.Errorf("slc: header: %w", err)
	}
	ssv, err := r.ReadBits(ssBits)
	if err != nil {
		return fmt.Errorf("slc: header ss: %w", err)
	}
	lenv, err := r.ReadBits(lenBits)
	if err != nil {
		return fmt.Errorf("slc: header len: %w", err)
	}
	var starts [e2mc.PDWs]int
	starts[0] = HeaderBits / 8
	for wy := 1; wy < e2mc.PDWs; wy++ {
		v, err := r.ReadBits(pdpBits)
		if err != nil {
			return fmt.Errorf("slc: header pdp: %w", err)
		}
		starts[wy] = int(v)
	}
	skipStart, skipLen := 0, 0
	if lossy {
		skipStart, skipLen = int(ssv), int(lenv)+1
		if skipStart+skipLen > compress.SymbolsPerBlock {
			return fmt.Errorf("slc: approximated span [%d,%d) out of range", skipStart, skipStart+skipLen)
		}
	}
	syms, err := c.tab.DecodeWays(e.Payload, starts, skipStart, skipLen)
	if err != nil {
		return err
	}
	if lossy {
		fillApproximated(&syms, skipStart, skipLen, c.cfg.Variant)
	}
	compress.PutSymbols(dst, syms)
	return nil
}

// fillApproximated reconstructs the truncated span per the variant.
func fillApproximated(syms *[compress.SymbolsPerBlock]uint16, start, n int, v Variant) {
	for i := start; i < start+n; i++ {
		if v == SIMP {
			syms[i] = 0
		} else {
			syms[i] = predictValue(syms, start, n, i)
		}
	}
}

// predictValue implements the paper's value-similarity prediction (§III-E).
// The similarity the paper cites is between adjacent threads' 32-bit values;
// a 32-bit value spans two 16-bit symbols and adjacent threads' values in a
// coalesced record pair sit four symbols apart. A truncated symbol therefore
// takes the nearest non-truncated symbol at the same offset modulo 4 — the
// same half of the nearest neighbouring value — falling back to the first
// same-parity symbol of the block. (The paper's literal "first non-truncated
// symbol" would predict exponent-carrying high halves from mantissa low
// halves, corrupting float magnitudes, which cannot be what a <1%-error
// scheme does; see DESIGN.md.)
func predictValue(syms *[compress.SymbolsPerBlock]uint16, start, n, i int) uint16 {
	for j := i - 4; j >= 0; j -= 4 {
		if j < start { // before the contiguous truncated span
			return syms[j]
		}
	}
	for j := i + 4; j < compress.SymbolsPerBlock; j += 4 {
		if j >= start+n {
			return syms[j]
		}
	}
	for j := i % 2; j < compress.SymbolsPerBlock; j += 2 {
		if j < start || j >= start+n {
			return syms[j]
		}
	}
	return 0
}
