package slc

// The TSLC selection tree (paper Figure 5). A parallel adder tree sums the 64
// per-symbol code lengths pairwise; the root is the block's payload size.
// When the lossy mode is selected, every intermediate sum is compared against
// the extra bits in parallel; per level a priority encoder picks the first
// sub-block whose sum covers the extra bits, and the lowest level with a hit
// wins, because that level approximates the fewest symbols.

import "repro/internal/compress"

// Node is one adder-tree node: an aligned span of symbols and the summed
// code length of that span.
type Node struct {
	Start int // first symbol index
	Count int // number of symbols covered
	Sum   int // total code length in bits
	Level int // tree level (0 = individual code lengths)
}

// Number of tree levels for 64 symbols: level 0 (leaves) .. level 6 (root).
const treeLevels = 7

// treeSums is the total node count over all levels (64+32+...+1).
const treeSums = 2*compress.SymbolsPerBlock - 1

// maxExtraNodes bounds the TSLC-OPT intermediate nodes (8 + 4).
const maxExtraNodes = 12

// Tree is the TSLC adder tree over one block's symbol costs. All backing
// storage is fixed-size, so a `var tree Tree` on the stack plus Reset builds
// the tree with no heap allocation — the mode decision runs once per synced
// block, on the pipeline's hot path.
type Tree struct {
	sums   [treeSums]int       // all levels, packed level 0 first
	extra  [maxExtraNodes]Node // TSLC-OPT intermediate nodes
	nextra int
}

// levelSpan returns the offset and length of one level inside sums.
func levelSpan(l int) (off, n int) {
	n = compress.SymbolsPerBlock >> uint(l)
	return 2*compress.SymbolsPerBlock - 2*n, n
}

// NewTree builds the adder tree on the heap; Reset on a stack value is the
// allocation-free equivalent the compression hot path uses.
func NewTree(costs *[compress.SymbolsPerBlock]int, opt bool) *Tree {
	t := new(Tree)
	t.Reset(costs, opt)
	return t
}

// Reset rebuilds the tree in place from per-symbol costs. With opt, the
// TSLC-OPT extra nodes are added: the paper adds 8 nodes at the 16-node
// level and 4 at the 8-node level to break the 2× jumps between sums
// (§III-F); we realise them as intermediate spans of 6 and 12 symbols.
func (t *Tree) Reset(costs *[compress.SymbolsPerBlock]int, opt bool) {
	copy(t.sums[:compress.SymbolsPerBlock], costs[:])
	for l := 1; l < treeLevels; l++ {
		po, pn := levelSpan(l - 1)
		co, _ := levelSpan(l)
		for i := 0; i < pn/2; i++ {
			t.sums[co+i] = t.sums[po+2*i] + t.sums[po+2*i+1]
		}
	}
	t.nextra = 0
	if opt {
		o2, _ := levelSpan(2) // 4-symbol sums
		o1, _ := levelSpan(1) // 2-symbol sums
		o3, _ := levelSpan(3) // 8-symbol sums
		// 8 extra 6-symbol nodes between the 4- and 8-symbol levels
		// (one per pair of adjacent 4-symbol nodes)...
		for i := 0; i < 8; i++ {
			t.extra[t.nextra] = Node{
				Start: i * 8,
				Count: 6,
				Sum:   t.sums[o2+2*i] + t.sums[o1+4*i+2],
				Level: 2,
			}
			t.nextra++
		}
		// ...and 4 extra 12-symbol nodes between the 8- and 16-symbol levels.
		for i := 0; i < 4; i++ {
			t.extra[t.nextra] = Node{
				Start: i * 16,
				Count: 12,
				Sum:   t.sums[o3+2*i] + t.sums[o2+4*i+2],
				Level: 3,
			}
			t.nextra++
		}
	}
}

// PayloadBits returns the root sum: the total payload size the hardware uses
// as comp size (before header and way padding).
func (t *Tree) PayloadBits() int { return t.sums[treeSums-1] }

// Select returns the sub-block to approximate: among all nodes with
// Sum ≥ need and Count ≤ maxSyms, the one covering the fewest symbols
// (lowest level), breaking ties on the lowest start index — the behaviour of
// the per-level priority encoders plus the lowest-level mux of Figure 5.
// ok is false when no node qualifies.
func (t *Tree) Select(need, maxSyms int) (Node, bool) {
	best := Node{Count: 1 << 30}
	found := false
	consider := func(n Node) {
		if n.Sum < need || n.Count > maxSyms {
			return
		}
		if !found || n.Count < best.Count || (n.Count == best.Count && n.Start < best.Start) {
			best = n
			found = true
		}
	}
	for l := 0; l < treeLevels; l++ {
		count := 1 << uint(l)
		if count > maxSyms {
			break
		}
		off, n := levelSpan(l)
		for i := 0; i < n; i++ {
			if sum := t.sums[off+i]; sum >= need {
				// Priority encoder: only the first hit per level matters.
				consider(Node{Start: i * count, Count: count, Sum: sum, Level: l})
				break
			}
		}
	}
	for i := 0; i < t.nextra; i++ {
		consider(t.extra[i])
	}
	return best, found
}

// NodeSums exposes the sums of one level for tests and the hardware model.
func (t *Tree) NodeSums(level int) []int {
	off, n := levelSpan(level)
	return t.sums[off : off+n]
}

// ExtraNodes exposes the TSLC-OPT nodes for tests and the hardware model.
func (t *Tree) ExtraNodes() []Node { return t.extra[:t.nextra] }
