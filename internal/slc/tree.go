package slc

// The TSLC selection tree (paper Figure 5). A parallel adder tree sums the 64
// per-symbol code lengths pairwise; the root is the block's payload size.
// When the lossy mode is selected, every intermediate sum is compared against
// the extra bits in parallel; per level a priority encoder picks the first
// sub-block whose sum covers the extra bits, and the lowest level with a hit
// wins, because that level approximates the fewest symbols.

import "repro/internal/compress"

// Node is one adder-tree node: an aligned span of symbols and the summed
// code length of that span.
type Node struct {
	Start int // first symbol index
	Count int // number of symbols covered
	Sum   int // total code length in bits
	Level int // tree level (0 = individual code lengths)
}

// Tree is the TSLC adder tree over one block's symbol costs.
type Tree struct {
	levels [][]int // levels[l][i] = sum of symbols [i·2^l, (i+1)·2^l)
	extra  []Node  // TSLC-OPT intermediate nodes
}

// Number of tree levels for 64 symbols: level 0 (leaves) .. level 6 (root).
const treeLevels = 7

// NewTree builds the adder tree from per-symbol costs. With opt, the
// TSLC-OPT extra nodes are added: the paper adds 8 nodes at the 16-node
// level and 4 at the 8-node level to break the 2× jumps between sums
// (§III-F); we realise them as intermediate spans of 6 and 12 symbols.
func NewTree(costs *[compress.SymbolsPerBlock]int, opt bool) *Tree {
	t := &Tree{levels: make([][]int, treeLevels)}
	leaf := make([]int, compress.SymbolsPerBlock)
	copy(leaf, costs[:])
	t.levels[0] = leaf
	for l := 1; l < treeLevels; l++ {
		prev := t.levels[l-1]
		cur := make([]int, len(prev)/2)
		for i := range cur {
			cur[i] = prev[2*i] + prev[2*i+1]
		}
		t.levels[l] = cur
	}
	if opt {
		// 8 extra 6-symbol nodes between the 4- and 8-symbol levels
		// (one per pair of adjacent 4-symbol nodes)...
		for i := 0; i < 8; i++ {
			start := i * 8
			t.extra = append(t.extra, Node{
				Start: start,
				Count: 6,
				Sum:   t.levels[2][2*i] + t.levels[1][4*i+2],
				Level: 2,
			})
		}
		// ...and 4 extra 12-symbol nodes between the 8- and 16-symbol levels.
		for i := 0; i < 4; i++ {
			start := i * 16
			t.extra = append(t.extra, Node{
				Start: start,
				Count: 12,
				Sum:   t.levels[3][2*i] + t.levels[2][4*i+2],
				Level: 3,
			})
		}
	}
	return t
}

// PayloadBits returns the root sum: the total payload size the hardware uses
// as comp size (before header and way padding).
func (t *Tree) PayloadBits() int { return t.levels[treeLevels-1][0] }

// Select returns the sub-block to approximate: among all nodes with
// Sum ≥ need and Count ≤ maxSyms, the one covering the fewest symbols
// (lowest level), breaking ties on the lowest start index — the behaviour of
// the per-level priority encoders plus the lowest-level mux of Figure 5.
// ok is false when no node qualifies.
func (t *Tree) Select(need, maxSyms int) (Node, bool) {
	best := Node{Count: 1 << 30}
	found := false
	consider := func(n Node) {
		if n.Sum < need || n.Count > maxSyms {
			return
		}
		if !found || n.Count < best.Count || (n.Count == best.Count && n.Start < best.Start) {
			best = n
			found = true
		}
	}
	for l := 0; l < treeLevels; l++ {
		count := 1 << uint(l)
		if count > maxSyms {
			break
		}
		for i, sum := range t.levels[l] {
			if sum >= need {
				// Priority encoder: only the first hit per level matters.
				consider(Node{Start: i * count, Count: count, Sum: sum, Level: l})
				break
			}
		}
	}
	for _, n := range t.extra {
		consider(n)
	}
	return best, found
}

// NodeSums exposes the sums of one level for tests and the hardware model.
func (t *Tree) NodeSums(level int) []int { return t.levels[level] }

// ExtraNodes exposes the TSLC-OPT nodes for tests and the hardware model.
func (t *Tree) ExtraNodes() []Node { return t.extra }
