package slc

import (
	"fmt"
	"strings"

	"repro/internal/compress"
	"repro/internal/compress/e2mc"
)

// RegistryName returns the registry name of a TSLC variant ("tslc-opt" for
// OPT): the lowercase form of the variant's display name.
func RegistryName(v Variant) string { return strings.ToLower(v.String()) }

func init() {
	for _, v := range []Variant{SIMP, PRED, OPT} {
		v := v
		compress.Register(RegistryName(v), compress.Info{
			New: func(ctx compress.BuildContext) (compress.Codec, error) {
				tab, ok := ctx.Table.(*e2mc.Table)
				if !ok || tab == nil {
					return nil, fmt.Errorf("slc: build context carries no trained table (got %T)", ctx.Table)
				}
				cfg := Config{MAG: ctx.MAG, ThresholdBits: ctx.ThresholdBits, Variant: v}
				if cfg.MAG == 0 {
					cfg.MAG = compress.MAG32
				}
				if cfg.ThresholdBits == 0 {
					cfg.ThresholdBits = DefaultConfig().ThresholdBits
				}
				return New(tab, cfg)
			},
			NeedsTable:       true,
			Lossy:            true,
			Base:             "e2mc",
			CompressCycles:   CompressCycles,
			DecompressCycles: DecompressCycles,
		})
	}
}
