package slc_test

import (
	"encoding/binary"
	"fmt"

	"repro/internal/compress"
	"repro/internal/compress/e2mc"
	"repro/internal/slc"
)

// Example demonstrates the SLC decision on a block whose lossless size sits
// a few bytes above a burst boundary — the case the paper's technique
// converts into a saved burst.
func Example() {
	// Train the entropy table on a deterministic corpus: 16-bit symbols
	// drawn from a small alphabet with an occasional outlier.
	trainer := e2mc.NewTrainer()
	block := make([]byte, compress.BlockSize)
	seed := uint32(1)
	fill := func(b []byte, outliers int) {
		seed = 1
		for i := 0; i < compress.SymbolsPerBlock; i++ {
			seed = seed*1664525 + 1013904223
			sym := uint16(seed % 37)
			if i < outliers {
				sym = uint16(seed >> 13) // rare symbol → escape coded
			}
			binary.LittleEndian.PutUint16(b[i*2:], sym)
		}
	}
	for t := 0; t < 200; t++ {
		fill(block, 3)
		trainer.Sample(block)
	}
	table, err := trainer.Build(0, 0)
	if err != nil {
		panic(err)
	}

	codec, err := slc.New(table, slc.DefaultConfig())
	if err != nil {
		panic(err)
	}
	// Sweep the outlier count until a block lands a few bits above a burst
	// boundary — the regime SLC converts into a saved burst.
	for outliers := 0; outliers <= 32; outliers++ {
		fill(block, outliers)
		if codec.Decide(block).Mode == slc.ModeLossy {
			break
		}
	}
	d := codec.Decide(block)
	enc := codec.Compress(block)
	fmt.Printf("mode: %s\n", d.Mode)
	fmt.Printf("lossless would need %d bursts; stored needs %d\n",
		compress.MAG32.Bursts(d.CompBits), compress.MAG32.Bursts(enc.Bits))
	// Output:
	// mode: lossy
	// lossless would need 3 bursts; stored needs 2
}
