package slc

import (
	"math/rand"
	"testing"

	"repro/internal/compress"
)

// These tests pin the compressed-block header layout of Figure 6: 1-bit mode
// m, 6-bit start symbol ss, 4-bit length len (count−1), and three 7-bit
// parallel decoding pointers — 32 bits, followed by byte-aligned ways.

func readHeader(t *testing.T, payload []byte) (m bool, ss, length int, pdp [3]int) {
	t.Helper()
	r := compress.NewBitReader(payload)
	mv, err := r.ReadBits(1)
	if err != nil {
		t.Fatal(err)
	}
	ssv, err := r.ReadBits(6)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := r.ReadBits(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pdp {
		v, err := r.ReadBits(7)
		if err != nil {
			t.Fatal(err)
		}
		pdp[i] = int(v)
	}
	return mv == 1, int(ssv), int(lv), pdp
}

func TestHeaderLayoutLossless(t *testing.T) {
	tab := testTable(t)
	c := newCodec(t, tab, OPT)
	rng := rand.New(rand.NewSource(60))
	for i := 0; i < 2000; i++ {
		block := floatBlock(rng)
		d := c.Decide(block)
		if d.Mode != ModeLossless {
			continue
		}
		enc := c.Compress(block)
		m, ss, l, pdp := readHeader(t, enc.Payload)
		if m {
			t.Fatal("lossless block has m=1")
		}
		if ss != 0 || l != 0 {
			t.Fatalf("lossless header carries ss=%d len=%d", ss, l)
		}
		// Pointers must be increasing byte offsets within the block.
		prev := HeaderBits / 8
		for _, p := range pdp {
			if p < prev || p >= compress.BlockSize {
				t.Fatalf("pdp %v not monotone within block", pdp)
			}
			prev = p
		}
		return
	}
	t.Fatal("no lossless block found")
}

func TestHeaderLayoutLossy(t *testing.T) {
	tab := testTable(t)
	c := newCodec(t, tab, OPT)
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 4000; i++ {
		block := floatBlock(rng)
		d := c.Decide(block)
		if d.Mode != ModeLossy {
			continue
		}
		enc := c.Compress(block)
		m, ss, l, _ := readHeader(t, enc.Payload)
		if !m {
			t.Fatal("lossy block has m=0")
		}
		if ss != d.Node.Start {
			t.Fatalf("header ss=%d, decision start=%d", ss, d.Node.Start)
		}
		if l+1 != d.Node.Count {
			t.Fatalf("header len=%d (count %d), decision count=%d", l, l+1, d.Node.Count)
		}
		return
	}
	t.Fatal("no lossy block found")
}

func TestHeaderIs32Bits(t *testing.T) {
	if HeaderBits != 32 {
		t.Fatalf("HeaderBits = %d; Figure 6 specifies 1+6+4+3×7 = 32", HeaderBits)
	}
	if got := 1 + ssBits + lenBits + 3*pdpBits; got != 32 {
		t.Fatalf("field widths sum to %d", got)
	}
}

func TestMaxApproxFitsLenField(t *testing.T) {
	// The 4-bit len field encodes count−1, so at most 16 symbols.
	if MaxApproxSymbols != 1<<lenBits {
		t.Fatalf("MaxApproxSymbols %d ≠ 2^len bits %d", MaxApproxSymbols, 1<<lenBits)
	}
}

func TestDecompressGarbagePayloadNoPanic(t *testing.T) {
	tab := testTable(t)
	c := newCodec(t, tab, OPT)
	rng := rand.New(rand.NewSource(62))
	dst := make([]byte, compress.BlockSize)
	for i := 0; i < 300; i++ {
		n := rng.Intn(64) + 4
		payload := make([]byte, n)
		rng.Read(payload)
		enc := compress.Encoded{Bits: n * 8, Payload: payload}
		// Must return an error or garbage — never panic.
		_ = c.Decompress(enc, dst)
	}
}
