package dram

import (
	"math"
	"testing"

	"repro/internal/gpu/events"
)

func newChan(t *testing.T, cfg Config) (*Channel, *events.Queue) {
	t.Helper()
	q := &events.Queue{}
	ch, err := NewChannel(cfg, q)
	if err != nil {
		t.Fatal(err)
	}
	return ch, q
}

func TestPeakBandwidthMatchesTableII(t *testing.T) {
	cfg := DefaultConfig()
	// 12 × 32-bit channels at 1002 MHz command clock, 32 B per 2-cycle
	// burst ⇒ 192.4 GB/s aggregate (paper Table II).
	agg := 12 * cfg.PeakBandwidthGBs(32)
	if math.Abs(agg-192.4) > 0.5 {
		t.Errorf("aggregate peak bandwidth = %.1f GB/s, want ≈192.4", agg)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	ch, q := newChan(t, DefaultConfig())
	var t1, t2 float64
	ch.Enqueue(0, 4, func(tt float64) { t1 = tt })
	q.Run()
	ch.Enqueue(128, 4, func(tt float64) { t2 = tt }) // same row
	q.Run()
	if d2 := t2 - t1; d2 >= t1 {
		t.Errorf("row hit (%.1f ns) not faster than cold access (%.1f ns)", d2, t1)
	}
	st := ch.Stats()
	if st.RowHits != 1 || st.Activations != 1 {
		t.Errorf("stats %+v, want 1 row hit + 1 activation", st)
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	// A(row0), B(row1 same bank), C(row0) arriving together: FR-FCFS serves
	// A, C (hits after A opens row0), then B — one row hit, two misses.
	ch, q := newChan(t, DefaultConfig())
	rowStride := uint64(DefaultConfig().RowBytes * DefaultConfig().Banks)
	var order []string
	mk := func(name string) func(float64) {
		return func(float64) { order = append(order, name) }
	}
	ch.Enqueue(0, 2, mk("A"))
	ch.Enqueue(rowStride, 2, mk("B"))
	ch.Enqueue(64, 2, mk("C"))
	q.Run()
	if len(order) != 3 || order[0] != "A" || order[1] != "C" || order[2] != "B" {
		t.Errorf("service order = %v, want [A C B]", order)
	}
	st := ch.Stats()
	if st.RowHits != 1 || st.RowMisses != 2 {
		t.Errorf("stats %+v, want 1 hit / 2 misses", st)
	}
}

func TestAgingCapsReordering(t *testing.T) {
	// With a tiny aging window the old row-1 request must not starve
	// behind a long row-0 hit stream.
	cfg := DefaultConfig()
	cfg.AgingNs = 30
	ch, q := newChan(t, cfg)
	rowStride := uint64(cfg.RowBytes * cfg.Banks)
	var bPos int
	var served int
	ch.Enqueue(0, 4, func(float64) { served++ })
	ch.Enqueue(rowStride, 4, func(float64) { served++; bPos = served })
	for i := 2; i < 40; i++ {
		ch.Enqueue(uint64(i%16)*128, 4, func(float64) { served++ })
	}
	q.Run()
	if bPos > 20 {
		t.Errorf("aged request served %dth of 40; aging cap broken", bPos)
	}
}

func TestBurstCountScalesBusTime(t *testing.T) {
	// Open-loop row-hit streams: steady-state difference is bus occupancy,
	// so 4-burst requests take ≈4× the channel time of 1-burst requests.
	var t1, t4 float64
	for _, tc := range []struct {
		bursts int
		out    *float64
	}{{1, &t1}, {4, &t4}} {
		ch, q := newChan(t, DefaultConfig())
		for i := 0; i < 1000; i++ {
			ch.Enqueue(0, tc.bursts, nil)
		}
		out := tc.out
		ch.Enqueue(0, tc.bursts, func(tt float64) { *out = tt })
		q.Run()
	}
	r := t4 / t1
	if r < 3.0 || r > 4.5 {
		t.Errorf("4-burst stream took %.2f× the 1-burst stream, want ≈4", r)
	}
}

func TestThroughputApproachesPeak(t *testing.T) {
	// An open-loop row-hit stream must approach peak bandwidth.
	ch, q := newChan(t, DefaultConfig())
	n := 10000
	var end float64
	for i := 0; i < n; i++ {
		ch.Enqueue(uint64(i%4)*128, 4, func(tt float64) { end = tt })
	}
	q.Run()
	bytes := float64(n * 4 * 32)
	gbps := bytes / end
	peak := DefaultConfig().PeakBandwidthGBs(32)
	if gbps < 0.9*peak {
		t.Errorf("sustained %.1f GB/s < 90%% of peak %.1f GB/s", gbps, peak)
	}
}

func TestStreamAcrossBanksApproachesPeak(t *testing.T) {
	// A linear stream (rows opened once, many hits per row) must also come
	// close to peak — the pattern coalesced GPU kernels produce.
	ch, q := newChan(t, DefaultConfig())
	n := 8192
	var end float64
	for i := 0; i < n; i++ {
		ch.Enqueue(uint64(i)*128, 4, func(tt float64) { end = tt })
	}
	q.Run()
	gbps := float64(n*4*32) / end
	peak := DefaultConfig().PeakBandwidthGBs(32)
	if gbps < 0.8*peak {
		t.Errorf("streaming %.1f GB/s < 80%% of peak %.1f GB/s (row hits %d, misses %d)",
			gbps, peak, ch.Stats().RowHits, ch.Stats().RowMisses)
	}
}

func TestStatsBurstConservation(t *testing.T) {
	ch, q := newChan(t, DefaultConfig())
	total := 0
	for i := 0; i < 500; i++ {
		b := i%4 + 1
		total += b
		ch.Enqueue(uint64(i*128), b, nil)
	}
	q.Run()
	st := ch.Stats()
	if st.Bursts != total {
		t.Errorf("bursts %d ≠ issued %d", st.Bursts, total)
	}
	if st.Requests != 500 {
		t.Errorf("requests %d ≠ 500", st.Requests)
	}
	if st.RowHits+st.RowMisses != st.Requests {
		t.Errorf("hits %d + misses %d ≠ requests %d", st.RowHits, st.RowMisses, st.Requests)
	}
}

func TestCompletionMonotoneOnBus(t *testing.T) {
	// Completions of requests served back-to-back must be strictly
	// increasing (shared data bus).
	ch, q := newChan(t, DefaultConfig())
	var times []float64
	for i := 0; i < 100; i++ {
		ch.Enqueue(uint64(i)*128, 2, func(tt float64) { times = append(times, tt) })
	}
	q.Run()
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("completion %d (%.2f) not after %d (%.2f)", i, times[i], i-1, times[i-1])
		}
	}
}

func TestValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.Banks = 0
	if _, err := NewChannel(bad, &events.Queue{}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewChannel(DefaultConfig(), nil); err == nil {
		t.Error("nil queue accepted")
	}
}

func TestAllRequestsCompleteUnderRandomLoad(t *testing.T) {
	// Starvation freedom: whatever the bank/row mix, every request's done
	// callback fires exactly once and completions respect arrival bounds.
	cfg := DefaultConfig()
	ch, q := newChan(t, cfg)
	const n = 5000
	seed := uint64(12345)
	next := func() uint64 { seed ^= seed << 13; seed ^= seed >> 7; seed ^= seed << 17; return seed }
	done := 0
	for i := 0; i < n; i++ {
		addr := (next() % (1 << 24)) &^ 127
		bursts := int(next()%4) + 1
		ch.Enqueue(addr, bursts, func(tt float64) {
			if tt <= 0 {
				t.Errorf("non-positive completion %f", tt)
			}
			done++
		})
	}
	q.Run()
	if done != n {
		t.Fatalf("%d of %d requests completed", done, n)
	}
	if st := ch.Stats(); st.Requests != n {
		t.Fatalf("stats saw %d requests", st.Requests)
	}
}

func TestMetaBurstsAccountedSeparately(t *testing.T) {
	ch, q := newChan(t, DefaultConfig())
	ch.Enqueue(0, 4, nil)
	ch.EnqueueMeta(1<<40, 1, nil)
	ch.Enqueue(128, 2, nil)
	q.Run()
	st := ch.Stats()
	if st.Bursts != 7 {
		t.Errorf("total bursts = %d, want 7", st.Bursts)
	}
	if st.MetaBursts != 1 {
		t.Errorf("meta bursts = %d, want 1", st.MetaBursts)
	}
}

// TestQueuesReleaseServedRequests is the regression test for queue memory
// retention: after a full drain the intrusive lists must be empty, every
// arena slot must be back on the freelist, and no slot may retain a closure
// reference — otherwise served requests (and their captured state) stay
// reachable for the whole trace.
func TestQueuesReleaseServedRequests(t *testing.T) {
	cfg := DefaultConfig()
	ch, q := newChan(t, cfg)
	served := 0
	// Several waves over many rows and banks, drained to completion.
	for wave := 0; wave < 8; wave++ {
		for i := 0; i < 4096; i++ {
			addr := uint64(wave*4096+i) * 128
			ch.Enqueue(addr, i%4+1, func(float64) { served++ })
		}
		q.Run()
	}
	if served != 8*4096 {
		t.Fatalf("served %d of %d", served, 8*4096)
	}
	if len(ch.byRow) != 0 {
		t.Errorf("byRow retains %d row keys after full drain", len(ch.byRow))
	}
	for b, lst := range ch.byBank {
		if lst.head != nilIdx || lst.tail != nilIdx {
			t.Errorf("byBank[%d] retains entries (head %d tail %d)", b, lst.head, lst.tail)
		}
	}
	if ch.fifoHead != nilIdx || ch.fifoTail != nilIdx {
		t.Errorf("fifo retains entries (head %d tail %d)", ch.fifoHead, ch.fifoTail)
	}
	if len(ch.free) != len(ch.reqs) {
		t.Errorf("freelist holds %d of %d arena slots after full drain",
			len(ch.free), len(ch.reqs))
	}
	for i := range ch.reqs {
		if ch.reqs[i].done != nil {
			t.Errorf("arena slot %d still holds a completion closure", i)
			break
		}
	}
	// The arena grows to the peak backlog of one wave, never the total.
	if len(ch.reqs) > 4096 {
		t.Errorf("arena grew to %d slots; peak backlog per wave is 4096", len(ch.reqs))
	}
}

// TestResetReplaysIdentically drains a request stream, resets the channel,
// replays the identical stream, and requires identical statistics — the
// reuse contract the alloc-free simulator depends on.
func TestResetReplaysIdentically(t *testing.T) {
	cfg := DefaultConfig()
	ch, q := newChan(t, cfg)
	run := func() Stats {
		for i := 0; i < 512; i++ {
			addr := uint64(i*37) * 160
			ch.Enqueue(addr, i%4+1, nil)
			if i%16 == 0 {
				ch.EnqueueMeta(1<<40+uint64(i)*32, 1, nil)
			}
		}
		q.Run()
		return ch.Stats()
	}
	first := run()
	ch.Reset()
	q.Reset()
	second := run()
	if first != second {
		t.Fatalf("replay after Reset diverged:\nfirst  %+v\nsecond %+v", first, second)
	}
	if first.Requests == 0 {
		t.Fatal("no requests served")
	}
}
