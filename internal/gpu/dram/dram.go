// Package dram models one GDDR5 channel: a 32-bit data bus with burst
// length 8 (32 bytes per burst command — the MAG), banks with open-row
// policy, and an FR-FCFS scheduler (row hits first, oldest first, with an
// aging cap) — the standard GPU memory-controller policy that lets streaming
// warps saturate the data bus. Compression pays off here: a block fetched in
// fewer bursts occupies the bus for fewer cycles, which is what raises
// effective bandwidth on memory-bound workloads.
package dram

import (
	"fmt"

	"repro/internal/gpu/events"
)

// Config holds the channel timing parameters. Cycles are command-clock
// cycles (1002 MHz in the paper's GTX580 configuration, Table II).
type Config struct {
	MemClockMHz float64
	Banks       int
	RowBytes    int
	TRCD        int // activate → column command
	TRP         int // precharge
	TCAS        int // column access strobe (read latency)
	TCCD        int // column-to-column command spacing (CAS pipelining)
	BurstCycles int // data-bus cycles per burst (BL8 on DDR: 4 beats/cycle ⇒ 2)
	// AgingNs caps FR-FCFS reordering: a request older than this is served
	// before any younger row hit.
	AgingNs float64
}

// DefaultConfig returns GDDR5 timings for the paper's setup: 1002 MHz
// command clock, 16 banks, 2 KB rows, CL/tRCD/tRP of 15 cycles, 2-cycle
// bursts.
func DefaultConfig() Config {
	return Config{
		MemClockMHz: 1002,
		Banks:       16,
		RowBytes:    2048,
		TRCD:        15,
		TRP:         15,
		TCAS:        15,
		TCCD:        2,
		BurstCycles: 2,
		AgingNs:     600,
	}
}

// CycleNs returns the command-clock period in nanoseconds.
func (c Config) CycleNs() float64 { return 1e3 / c.MemClockMHz }

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.MemClockMHz <= 0 || c.Banks <= 0 || c.RowBytes <= 0 || c.BurstCycles <= 0 {
		return fmt.Errorf("dram: non-positive parameter in %+v", c)
	}
	if c.TRCD < 0 || c.TRP < 0 || c.TCAS < 0 || c.AgingNs < 0 {
		return fmt.Errorf("dram: negative timing in %+v", c)
	}
	return nil
}

// PeakBandwidthGBs returns the channel's peak data bandwidth in GB/s given
// the MAG (bytes per burst).
func (c Config) PeakBandwidthGBs(magBytes int) float64 {
	return float64(magBytes) / (float64(c.BurstCycles) * c.CycleNs()) // B/ns == GB/s
}

// Stats counts channel events. Bursts is every burst command on the data
// bus; MetaBursts is the subset spent fetching compression metadata (MDC
// miss fills), so data traffic is Bursts - MetaBursts.
type Stats struct {
	Requests    int
	Bursts      int
	MetaBursts  int
	RowHits     int
	RowMisses   int
	Activations int
	BusBusyNs   float64
}

type bank struct {
	open      bool
	row       uint64
	casFreeNs float64 // earliest next column command (tCCD pipelining)
	dataEndNs float64 // last data beat of the bank's in-flight transfer
}

type request struct {
	addr    uint64
	bursts  int
	arrival float64
	seq     int64
	done    func(completionNs float64)
	served  bool
	meta    bool
	bank    int
	row     uint64
}

// Channel is one GDDR5 channel draining an FR-FCFS queue on its event
// scheduler — the shared queue in standalone use, or the channel's own lane
// in the sharded simulator. All channel state is local to that scheduler.
type Channel struct {
	cfg      Config
	cycleNs  float64
	q        events.Scheduler
	banks    []bank
	busFree  float64
	byRow    map[uint64][]*request
	byBank   [][]*request
	fifo     []*request
	fifoHead int
	seq      int64
	draining bool
	stats    Stats
}

// NewChannel builds a channel on the given event scheduler.
func NewChannel(cfg Config, q events.Scheduler) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if q == nil {
		return nil, fmt.Errorf("dram: nil event queue")
	}
	return &Channel{
		cfg:     cfg,
		cycleNs: cfg.CycleNs(),
		q:       q,
		banks:   make([]bank, cfg.Banks),
		byRow:   make(map[uint64][]*request),
		byBank:  make([][]*request, cfg.Banks),
	}, nil
}

// Enqueue submits a request at the current simulation time; done (may be
// nil for posted writes) is invoked at its completion time.
func (ch *Channel) Enqueue(addr uint64, bursts int, done func(completionNs float64)) {
	ch.enqueue(addr, bursts, false, done)
}

// EnqueueMeta submits a compression-metadata fetch. It is scheduled exactly
// like a data request but accounted under Stats.MetaBursts, so data and
// metadata traffic can be reported separately.
func (ch *Channel) EnqueueMeta(addr uint64, bursts int, done func(completionNs float64)) {
	ch.enqueue(addr, bursts, true, done)
}

func (ch *Channel) enqueue(addr uint64, bursts int, meta bool, done func(completionNs float64)) {
	if bursts < 1 {
		bursts = 1
	}
	ch.seq++
	r := &request{
		addr:    addr,
		bursts:  bursts,
		arrival: ch.q.Now(),
		seq:     ch.seq,
		done:    done,
		meta:    meta,
		bank:    int((addr / uint64(ch.cfg.RowBytes)) % uint64(ch.cfg.Banks)),
	}
	r.row = addr / uint64(ch.cfg.RowBytes) / uint64(ch.cfg.Banks)
	key := ch.rowKey(r.bank, r.row)
	ch.byRow[key] = append(ch.byRow[key], r)
	ch.byBank[r.bank] = append(ch.byBank[r.bank], r)
	ch.fifo = append(ch.fifo, r)
	if !ch.draining {
		ch.draining = true
		ch.q.At(ch.q.Now(), ch.drain)
	}
}

func (ch *Channel) rowKey(bank int, row uint64) uint64 {
	return row*uint64(ch.cfg.Banks) + uint64(bank)
}

// trimServed pops served requests off the head of a queue list, nil-ing the
// vacated slots so the backing array stops retaining them. Advancing with a
// bare lst[1:] would keep every served *request reachable from the array
// head for as long as the list lives — unbounded memory on long traces.
func trimServed(lst []*request) []*request {
	for len(lst) > 0 && lst[0].served {
		lst[0] = nil
		lst = lst[1:]
	}
	return lst
}

// oldest returns the oldest pending request, compacting lazily.
func (ch *Channel) oldest() *request {
	for ch.fifoHead < len(ch.fifo) && ch.fifo[ch.fifoHead].served {
		ch.fifo[ch.fifoHead] = nil
		ch.fifoHead++
	}
	if ch.fifoHead >= len(ch.fifo) {
		ch.fifo = ch.fifo[:0]
		ch.fifoHead = 0
		return nil
	}
	if ch.fifoHead > 8192 {
		n := copy(ch.fifo, ch.fifo[ch.fifoHead:])
		for i := n; i < len(ch.fifo); i++ {
			ch.fifo[i] = nil
		}
		ch.fifo = ch.fifo[:n]
		ch.fifoHead = 0
	}
	return ch.fifo[ch.fifoHead]
}

// peekRow returns the oldest pending request for a bank's open row.
func (ch *Channel) peekRow(bankIdx int) *request {
	b := &ch.banks[bankIdx]
	if !b.open {
		return nil
	}
	key := ch.rowKey(bankIdx, b.row)
	lst := trimServed(ch.byRow[key])
	if len(lst) == 0 {
		delete(ch.byRow, key)
		return nil
	}
	ch.byRow[key] = lst
	return lst[0]
}

// peekBank returns the oldest pending request for a bank.
func (ch *Channel) peekBank(bankIdx int) *request {
	lst := trimServed(ch.byBank[bankIdx])
	ch.byBank[bankIdx] = lst
	if len(lst) == 0 {
		return nil
	}
	return lst[0]
}

// estStart estimates when a request's data could start on the bus, the
// readiness criterion the scheduler minimises.
func (ch *Channel) estStart(r *request) float64 {
	now := ch.q.Now()
	b := &ch.banks[r.bank]
	var cas float64
	if b.open && b.row == r.row {
		cas = now
		if b.casFreeNs > cas {
			cas = b.casFreeNs
		}
	} else {
		actStart := now
		if b.dataEndNs > actStart {
			actStart = b.dataEndNs
		}
		pre := 0
		if b.open {
			pre = ch.cfg.TRP
		}
		cas = actStart + float64(pre+ch.cfg.TRCD)*ch.cycleNs
	}
	start := cas + float64(ch.cfg.TCAS)*ch.cycleNs
	if ch.busFree > start {
		start = ch.busFree
	}
	return start
}

// pick implements readiness-aware FR-FCFS: among each bank's best candidate
// (oldest open-row hit, else oldest for the bank), choose the one whose data
// can reach the bus soonest — row hits naturally win, and an activation on
// an idle bank can fill a bus gap. The globally oldest request overrides
// once it has aged out.
func (ch *Channel) pick() *request {
	old := ch.oldest()
	if old == nil {
		return nil
	}
	if ch.q.Now()-old.arrival > ch.cfg.AgingNs {
		return old
	}
	var best *request
	var bestStart float64
	for b := range ch.banks {
		cand := ch.peekRow(b)
		if cand == nil {
			cand = ch.peekBank(b)
		}
		if cand == nil {
			continue
		}
		est := ch.estStart(cand)
		if best == nil || est < bestStart || (est == bestStart && cand.seq < best.seq) {
			best = cand
			bestStart = est
		}
	}
	if best != nil {
		return best
	}
	return old
}

// drain serves one request and reschedules itself while work remains.
func (ch *Channel) drain() {
	r := ch.pick()
	if r == nil {
		ch.draining = false
		return
	}
	r.served = true
	now := ch.q.Now()
	b := &ch.banks[r.bank]

	var cas float64
	if b.open && b.row == r.row {
		cas = now
		if b.casFreeNs > cas {
			cas = b.casFreeNs
		}
		ch.stats.RowHits++
	} else {
		actStart := now
		if b.dataEndNs > actStart { // drain in-flight data before precharge
			actStart = b.dataEndNs
		}
		pre := 0
		if b.open {
			pre = ch.cfg.TRP
		}
		cas = actStart + float64(pre+ch.cfg.TRCD)*ch.cycleNs
		ch.stats.RowMisses++
		ch.stats.Activations++
	}
	dataReady := cas + float64(ch.cfg.TCAS)*ch.cycleNs
	busStart := dataReady
	if ch.busFree > busStart {
		busStart = ch.busFree
	}
	busTime := float64(r.bursts*ch.cfg.BurstCycles) * ch.cycleNs
	busEnd := busStart + busTime

	ch.busFree = busEnd
	effCas := busStart - float64(ch.cfg.TCAS)*ch.cycleNs
	if effCas < cas {
		effCas = cas
	}
	b.casFreeNs = effCas + float64(ch.cfg.TCCD)*ch.cycleNs
	b.dataEndNs = busEnd
	b.open = true
	b.row = r.row

	ch.stats.Requests++
	ch.stats.Bursts += r.bursts
	if r.meta {
		ch.stats.MetaBursts += r.bursts
	}
	ch.stats.BusBusyNs += busTime

	// Eagerly drop the served request from its queue lists (every pick
	// returns the head unserved entry of its row and bank lists), deleting
	// the row key once drained — so queue-internal memory tracks the live
	// backlog instead of the whole trace history.
	key := ch.rowKey(r.bank, r.row)
	if lst := trimServed(ch.byRow[key]); len(lst) == 0 {
		delete(ch.byRow, key)
	} else {
		ch.byRow[key] = lst
	}
	ch.byBank[r.bank] = trimServed(ch.byBank[r.bank])

	if r.done != nil {
		done := r.done
		ch.q.At(busEnd, func() { done(busEnd) })
	}
	// Pace the command stream a bounded lookahead ahead of the data bus:
	// the next command may issue tCCD after this one, but no earlier than
	// one bank-preparation time before the bus frees — keeping scheduling
	// decisions fresh while letting activations overlap data transfer.
	prepNs := float64(ch.cfg.TRP+ch.cfg.TRCD+ch.cfg.TCAS) * ch.cycleNs
	next := now + float64(ch.cfg.TCCD)*ch.cycleNs
	if t := busEnd - prepNs; t > next {
		next = t
	}
	ch.q.At(next, ch.drain)
}

// Stats returns the channel's counters.
func (ch *Channel) Stats() Stats { return ch.stats }
