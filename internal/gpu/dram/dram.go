// Package dram models one GDDR5 channel: a 32-bit data bus with burst
// length 8 (32 bytes per burst command — the MAG), banks with open-row
// policy, and an FR-FCFS scheduler (row hits first, oldest first, with an
// aging cap) — the standard GPU memory-controller policy that lets streaming
// warps saturate the data bus. Compression pays off here: a block fetched in
// fewer bursts occupies the bus for fewer cycles, which is what raises
// effective bandwidth on memory-bound workloads.
//
// Requests are pooled value records in a channel-local arena, threaded onto
// per-row and per-bank intrusive lists (int32 indices, not pointers) plus an
// arrival FIFO. The arena and lists are owned by the channel's event lane,
// so they need no locking, and once the arena has grown to the backlog's
// peak the channel enqueues and serves requests without allocating.
package dram

import (
	"fmt"

	"repro/internal/gpu/events"
)

// Config holds the channel timing parameters. Cycles are command-clock
// cycles (1002 MHz in the paper's GTX580 configuration, Table II).
type Config struct {
	MemClockMHz float64
	Banks       int
	RowBytes    int
	TRCD        int // activate → column command
	TRP         int // precharge
	TCAS        int // column access strobe (read latency)
	TCCD        int // column-to-column command spacing (CAS pipelining)
	BurstCycles int // data-bus cycles per burst (BL8 on DDR: 4 beats/cycle ⇒ 2)
	// AgingNs caps FR-FCFS reordering: a request older than this is served
	// before any younger row hit.
	AgingNs float64
}

// DefaultConfig returns GDDR5 timings for the paper's setup: 1002 MHz
// command clock, 16 banks, 2 KB rows, CL/tRCD/tRP of 15 cycles, 2-cycle
// bursts.
func DefaultConfig() Config {
	return Config{
		MemClockMHz: 1002,
		Banks:       16,
		RowBytes:    2048,
		TRCD:        15,
		TRP:         15,
		TCAS:        15,
		TCCD:        2,
		BurstCycles: 2,
		AgingNs:     600,
	}
}

// CycleNs returns the command-clock period in nanoseconds.
func (c Config) CycleNs() float64 { return 1e3 / c.MemClockMHz }

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.MemClockMHz <= 0 || c.Banks <= 0 || c.RowBytes <= 0 || c.BurstCycles <= 0 {
		return fmt.Errorf("dram: non-positive parameter in %+v", c)
	}
	if c.TRCD < 0 || c.TRP < 0 || c.TCAS < 0 || c.AgingNs < 0 {
		return fmt.Errorf("dram: negative timing in %+v", c)
	}
	return nil
}

// PeakBandwidthGBs returns the channel's peak data bandwidth in GB/s given
// the MAG (bytes per burst).
func (c Config) PeakBandwidthGBs(magBytes int) float64 {
	return float64(magBytes) / (float64(c.BurstCycles) * c.CycleNs()) // B/ns == GB/s
}

// Stats counts channel events. Bursts is every burst command on the data
// bus; MetaBursts is the subset spent fetching compression metadata (MDC
// miss fills), so data traffic is Bursts - MetaBursts.
type Stats struct {
	Requests    int
	Bursts      int
	MetaBursts  int
	RowHits     int
	RowMisses   int
	Activations int
	BusBusyNs   float64
}

type bank struct {
	open      bool
	row       uint64
	casFreeNs float64 // earliest next column command (tCCD pipelining)
	dataEndNs float64 // last data beat of the bank's in-flight transfer
}

// nilIdx terminates intrusive lists.
const nilIdx = int32(-1)

// request is one pooled queue entry. Completion is either a closure (done,
// the reference path) or a typed event (doneEv, dispatched through the
// channel's Completer at the bus-end time); doneEv.Kind == KindNone means no
// typed completion. The next/prev fields thread the request onto its row
// list and bank list (doubly linked, unlinked eagerly when served) and the
// arrival FIFO (singly linked, drained lazily from the head).
//
//slclint:pooled
type request struct {
	addr               uint64
	row                uint64
	arrival            float64
	seq                int64
	done               func(completionNs float64)
	doneEv             events.Event
	nextRow, prevRow   int32
	nextBank, prevBank int32
	nextFifo           int32
	bank               int32
	bursts             int32
	served             bool
	meta               bool
}

// list is an intrusive list head (indices into the channel's arena).
type list struct {
	head, tail int32
}

// Channel is one GDDR5 channel draining an FR-FCFS queue on its event
// scheduler — the shared queue in standalone use, or the channel's own lane
// in the sharded simulator. All channel state is local to that scheduler.
type Channel struct {
	cfg     Config
	cycleNs float64
	q       events.Scheduler
	drainFn func() // pre-bound ch.drain for the closure path
	// Typed mode (EnableEvents): drain self-schedules drainEv through qe;
	// request completions are the enqueuer's own typed events, dispatched to
	// whatever handler their Kind has on the channel's scheduler.
	qe      events.EventScheduler
	drainEv events.Event

	banks    []bank
	busFree  float64
	reqs     []request // arena; intrusive lists index into it
	free     []int32   // vacated arena slots
	byRow    map[uint64]list
	byBank   []list // fixed at Config.Banks entries, reused across kernels
	fifoHead int32
	fifoTail int32
	seq      int64
	draining bool
	stats    Stats
}

// NewChannel builds a channel on the given event scheduler. The per-bank
// queue heads are sized from cfg once and reused for the channel's lifetime.
func NewChannel(cfg Config, q events.Scheduler) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if q == nil {
		return nil, fmt.Errorf("dram: nil event queue")
	}
	ch := &Channel{
		cfg:     cfg,
		cycleNs: cfg.CycleNs(),
		q:       q,
		banks:   make([]bank, cfg.Banks),
		byRow:   make(map[uint64]list),
		byBank:  make([]list, cfg.Banks),
	}
	ch.drainFn = ch.drain
	ch.clearLists()
	return ch, nil
}

// EnableEvents switches the channel to typed-event mode: drain scheduling
// uses drainEv on qe, whose handler for drainEv.Kind must route the event
// back to DrainStep.
func (ch *Channel) EnableEvents(qe events.EventScheduler, drainEv events.Event) {
	ch.qe = qe
	ch.drainEv = drainEv
}

// Reset empties the channel for a fresh replay: queues, banks, bus and
// statistics return to their initial state while the arena, freelist, bank
// list heads and row map keep their capacity, so replaying an identical
// request stream allocates nothing.
func (ch *Channel) Reset() {
	for i := range ch.banks {
		ch.banks[i] = bank{}
	}
	ch.busFree = 0
	ch.reqs = ch.reqs[:0]
	ch.free = ch.free[:0]
	clear(ch.byRow)
	ch.clearLists()
	ch.seq = 0
	ch.draining = false
	ch.stats = Stats{}
}

func (ch *Channel) clearLists() {
	for i := range ch.byBank {
		ch.byBank[i] = list{head: nilIdx, tail: nilIdx}
	}
	ch.fifoHead, ch.fifoTail = nilIdx, nilIdx
}

func (ch *Channel) now() float64 { return ch.q.Now() }

// alloc takes an arena slot from the freelist, growing the arena only when
// the live backlog exceeds every previous peak.
func (ch *Channel) alloc() int32 {
	if n := len(ch.free); n > 0 {
		idx := ch.free[n-1]
		ch.free = ch.free[:n-1]
		return idx
	}
	ch.reqs = append(ch.reqs, request{})
	return int32(len(ch.reqs) - 1)
}

// release returns a slot whose request has left every list. Zeroing drops
// the closure reference so the arena never retains a completed callback.
func (ch *Channel) release(idx int32) {
	ch.reqs[idx] = request{}
	ch.free = append(ch.free, idx)
}

// Enqueue submits a request at the current simulation time; done (may be
// nil for posted writes) is invoked at its completion time.
func (ch *Channel) Enqueue(addr uint64, bursts int, done func(completionNs float64)) {
	ch.enqueue(addr, bursts, false, done, events.Event{})
}

// EnqueueMeta submits a compression-metadata fetch. It is scheduled exactly
// like a data request but accounted under Stats.MetaBursts, so data and
// metadata traffic can be reported separately.
func (ch *Channel) EnqueueMeta(addr uint64, bursts int, done func(completionNs float64)) {
	ch.enqueue(addr, bursts, true, done, events.Event{})
}

// EnqueueEvent submits a request whose completion is the typed event doneEv,
// dispatched through the channel's Completer at the bus-end time (Kind
// KindNone = posted, no completion). meta selects metadata accounting.
func (ch *Channel) EnqueueEvent(addr uint64, bursts int, meta bool, doneEv events.Event) {
	ch.enqueue(addr, bursts, meta, nil, doneEv)
}

func (ch *Channel) enqueue(addr uint64, bursts int, meta bool, done func(float64), doneEv events.Event) {
	if bursts < 1 {
		bursts = 1
	}
	ch.seq++
	idx := ch.alloc()
	r := &ch.reqs[idx]
	*r = request{
		addr:     addr,
		arrival:  ch.now(),
		seq:      ch.seq,
		done:     done,
		doneEv:   doneEv,
		nextRow:  nilIdx,
		prevRow:  nilIdx,
		nextBank: nilIdx,
		prevBank: nilIdx,
		nextFifo: nilIdx,
		bank:     int32((addr / uint64(ch.cfg.RowBytes)) % uint64(ch.cfg.Banks)),
		bursts:   int32(bursts),
		meta:     meta,
	}
	r.row = addr / uint64(ch.cfg.RowBytes) / uint64(ch.cfg.Banks)

	key := ch.rowKey(r.bank, r.row)
	if l, ok := ch.byRow[key]; ok {
		ch.reqs[l.tail].nextRow = idx
		r.prevRow = l.tail
		l.tail = idx
		ch.byRow[key] = l
	} else {
		ch.byRow[key] = list{head: idx, tail: idx}
	}
	bl := &ch.byBank[r.bank]
	if bl.head == nilIdx {
		bl.head, bl.tail = idx, idx
	} else {
		ch.reqs[bl.tail].nextBank = idx
		r.prevBank = bl.tail
		bl.tail = idx
	}
	if ch.fifoHead == nilIdx {
		ch.fifoHead, ch.fifoTail = idx, idx
	} else {
		ch.reqs[ch.fifoTail].nextFifo = idx
		ch.fifoTail = idx
	}

	if !ch.draining {
		ch.draining = true
		if ch.qe != nil {
			ch.qe.AtEvent(ch.now(), ch.drainEv)
		} else {
			ch.q.At(ch.now(), ch.drainFn)
		}
	}
}

func (ch *Channel) rowKey(bank int32, row uint64) uint64 {
	return row*uint64(ch.cfg.Banks) + uint64(bank)
}

// unlink removes a served request from its row and bank lists. Every pick
// returns the head unserved entry of both lists, but a row hit can serve a
// request from the middle of its bank list (an older request for another
// row is still ahead of it), which is why the lists are doubly linked.
func (ch *Channel) unlink(idx int32) {
	r := &ch.reqs[idx]
	key := ch.rowKey(r.bank, r.row)
	l := ch.byRow[key]
	if r.prevRow != nilIdx {
		ch.reqs[r.prevRow].nextRow = r.nextRow
	} else {
		l.head = r.nextRow
	}
	if r.nextRow != nilIdx {
		ch.reqs[r.nextRow].prevRow = r.prevRow
	} else {
		l.tail = r.prevRow
	}
	if l.head == nilIdx {
		delete(ch.byRow, key)
	} else {
		ch.byRow[key] = l
	}
	bl := &ch.byBank[r.bank]
	if r.prevBank != nilIdx {
		ch.reqs[r.prevBank].nextBank = r.nextBank
	} else {
		bl.head = r.nextBank
	}
	if r.nextBank != nilIdx {
		ch.reqs[r.nextBank].prevBank = r.prevBank
	} else {
		bl.tail = r.prevBank
	}
	r.nextRow, r.prevRow, r.nextBank, r.prevBank = nilIdx, nilIdx, nilIdx, nilIdx
}

// oldest returns the oldest pending request index, freeing served requests
// off the FIFO head as it passes them — the point where a request has left
// its last list and its arena slot is recycled.
func (ch *Channel) oldest() int32 {
	for ch.fifoHead != nilIdx && ch.reqs[ch.fifoHead].served {
		idx := ch.fifoHead
		ch.fifoHead = ch.reqs[idx].nextFifo
		ch.release(idx)
	}
	if ch.fifoHead == nilIdx {
		ch.fifoTail = nilIdx
	}
	return ch.fifoHead
}

// peekRow returns the oldest pending request for a bank's open row, or
// nilIdx. Served requests are unlinked eagerly, so list heads are pending.
func (ch *Channel) peekRow(bankIdx int) int32 {
	b := &ch.banks[bankIdx]
	if !b.open {
		return nilIdx
	}
	l, ok := ch.byRow[ch.rowKey(int32(bankIdx), b.row)]
	if !ok {
		return nilIdx
	}
	return l.head
}

// peekBank returns the oldest pending request for a bank, or nilIdx.
func (ch *Channel) peekBank(bankIdx int) int32 {
	return ch.byBank[bankIdx].head
}

// estStart estimates when a request's data could start on the bus, the
// readiness criterion the scheduler minimises.
func (ch *Channel) estStart(r *request) float64 {
	now := ch.now()
	b := &ch.banks[r.bank]
	var cas float64
	if b.open && b.row == r.row {
		cas = now
		if b.casFreeNs > cas {
			cas = b.casFreeNs
		}
	} else {
		actStart := now
		if b.dataEndNs > actStart {
			actStart = b.dataEndNs
		}
		pre := 0
		if b.open {
			pre = ch.cfg.TRP
		}
		cas = actStart + float64(pre+ch.cfg.TRCD)*ch.cycleNs
	}
	start := cas + float64(ch.cfg.TCAS)*ch.cycleNs
	if ch.busFree > start {
		start = ch.busFree
	}
	return start
}

// pick implements readiness-aware FR-FCFS: among each bank's best candidate
// (oldest open-row hit, else oldest for the bank), choose the one whose data
// can reach the bus soonest — row hits naturally win, and an activation on
// an idle bank can fill a bus gap. The globally oldest request overrides
// once it has aged out.
func (ch *Channel) pick() int32 {
	old := ch.oldest()
	if old == nilIdx {
		return nilIdx
	}
	if ch.now()-ch.reqs[old].arrival > ch.cfg.AgingNs {
		return old
	}
	best := nilIdx
	var bestStart float64
	for b := range ch.banks {
		cand := ch.peekRow(b)
		if cand == nilIdx {
			cand = ch.peekBank(b)
		}
		if cand == nilIdx {
			continue
		}
		est := ch.estStart(&ch.reqs[cand])
		if best == nilIdx || est < bestStart ||
			(est == bestStart && ch.reqs[cand].seq < ch.reqs[best].seq) {
			best = cand
			bestStart = est
		}
	}
	if best != nilIdx {
		return best
	}
	return old
}

// DrainStep runs one drain step. It is the typed-mode entry point: the
// KindDram handler on the channel's lane routes the drain event here.
func (ch *Channel) DrainStep() { ch.drain() }

// drain serves one request and reschedules itself while work remains.
func (ch *Channel) drain() {
	idx := ch.pick()
	if idx == nilIdx {
		ch.draining = false
		return
	}
	r := &ch.reqs[idx]
	r.served = true
	now := ch.now()
	b := &ch.banks[r.bank]

	var cas float64
	if b.open && b.row == r.row {
		cas = now
		if b.casFreeNs > cas {
			cas = b.casFreeNs
		}
		ch.stats.RowHits++
	} else {
		actStart := now
		if b.dataEndNs > actStart { // drain in-flight data before precharge
			actStart = b.dataEndNs
		}
		pre := 0
		if b.open {
			pre = ch.cfg.TRP
		}
		cas = actStart + float64(pre+ch.cfg.TRCD)*ch.cycleNs
		ch.stats.RowMisses++
		ch.stats.Activations++
	}
	dataReady := cas + float64(ch.cfg.TCAS)*ch.cycleNs
	busStart := dataReady
	if ch.busFree > busStart {
		busStart = ch.busFree
	}
	busTime := float64(int(r.bursts)*ch.cfg.BurstCycles) * ch.cycleNs
	busEnd := busStart + busTime

	ch.busFree = busEnd
	effCas := busStart - float64(ch.cfg.TCAS)*ch.cycleNs
	if effCas < cas {
		effCas = cas
	}
	b.casFreeNs = effCas + float64(ch.cfg.TCCD)*ch.cycleNs
	b.dataEndNs = busEnd
	b.open = true
	b.row = r.row

	ch.stats.Requests++
	ch.stats.Bursts += int(r.bursts)
	if r.meta {
		ch.stats.MetaBursts += int(r.bursts)
	}
	ch.stats.BusBusyNs += busTime

	// Eagerly drop the served request from its row and bank lists, so the
	// scheduler's peeks always see pending heads; the FIFO recycles the
	// arena slot when its head passes the request.
	ch.unlink(idx)

	if r.done != nil {
		done := r.done
		ch.q.At(busEnd, func() { done(busEnd) })
	} else if r.doneEv.Kind != events.KindNone {
		ch.qe.AtEvent(busEnd, r.doneEv)
	}
	// Pace the command stream a bounded lookahead ahead of the data bus:
	// the next command may issue tCCD after this one, but no earlier than
	// one bank-preparation time before the bus frees — keeping scheduling
	// decisions fresh while letting activations overlap data transfer.
	prepNs := float64(ch.cfg.TRP+ch.cfg.TRCD+ch.cfg.TCAS) * ch.cycleNs
	next := now + float64(ch.cfg.TCCD)*ch.cycleNs
	if t := busEnd - prepNs; t > next {
		next = t
	}
	if ch.qe != nil {
		ch.qe.AtEvent(next, ch.drainEv)
	} else {
		ch.q.At(next, ch.drainFn)
	}
}

// Stats returns the channel's counters.
func (ch *Channel) Stats() Stats { return ch.stats }
