// Package cache models the GPU's shared L2 cache: set-associative,
// write-back, LRU. The SLC system integrates compression below the L2 (paper
// Figure 3), so the L2 filters which accesses reach the memory controllers;
// its hit/miss behaviour is identical across compression configurations.
package cache

import "fmt"

// Config describes a cache geometry.
type Config struct {
	SizeBytes int
	LineBytes int
	Ways      int
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / c.LineBytes / c.Ways }

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by line×ways", c.SizeBytes)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Result reports the outcome of one access.
type Result struct {
	Hit bool
	// WritebackAddr is the address of a dirty line evicted by the fill;
	// valid only when HasWriteback is set.
	WritebackAddr uint64
	HasWriteback  bool
}

// Stats counts cache events.
type Stats struct {
	Hits       int
	Misses     int
	Writebacks int
}

// Cache is a set-associative write-back cache with true-LRU replacement.
// Write misses allocate without fetching (write-validate), the common GPU L2
// policy for streaming stores; read misses allocate on fill.
type Cache struct {
	cfg   Config
	sets  [][]line
	clock uint64
	stats Stats
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := make([][]line, cfg.Sets())
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets}, nil
}

// Access performs one block access and returns hit/miss plus any writeback
// triggered by the fill.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.clock++
	lineAddr := addr / uint64(c.cfg.LineBytes)
	setIdx := lineAddr % uint64(len(c.sets))
	tag := lineAddr / uint64(len(c.sets))
	set := c.sets[setIdx]

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = c.clock
			if write {
				set[i].dirty = true
			}
			c.stats.Hits++
			return Result{Hit: true}
		}
	}
	c.stats.Misses++

	// Miss: pick victim (invalid first, else LRU).
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	var res Result
	if set[victim].valid && set[victim].dirty {
		evictLine := set[victim].tag*uint64(len(c.sets)) + setIdx
		res.WritebackAddr = evictLine * uint64(c.cfg.LineBytes)
		res.HasWriteback = true
		c.stats.Writebacks++
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, used: c.clock}
	return res
}

// Invalidate drops the line containing addr without a writeback — the
// behaviour of a write-through L1 receiving a store to a cached global.
func (c *Cache) Invalidate(addr uint64) {
	lineAddr := addr / uint64(c.cfg.LineBytes)
	setIdx := lineAddr % uint64(len(c.sets))
	tag := lineAddr / uint64(len(c.sets))
	set := c.sets[setIdx]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i] = line{}
			return
		}
	}
}

// Reset invalidates every line and zeroes the counters and LRU clock in
// place — a cold cache without reallocating the sets (the simulator resets
// caches at replay and kernel boundaries on its alloc-free path).
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.clock = 0
	c.stats = Stats{}
}

// Stats returns the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }
