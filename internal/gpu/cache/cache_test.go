package cache

import (
	"math/rand"
	"testing"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{SizeBytes: 768 << 10, LineBytes: 128, Ways: 16}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{SizeBytes: 1000, LineBytes: 128, Ways: 16}).Validate(); err == nil {
		t.Error("indivisible size accepted")
	}
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config accepted")
	}
}

func TestHitAfterFill(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 4096, LineBytes: 128, Ways: 2})
	if r := c.Access(0x1000, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Error("second access missed")
	}
	if r := c.Access(0x1040, false); !r.Hit {
		t.Error("same-line offset missed")
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, line 128, sets = 4096/128/2 = 16. Addresses with the same set
	// index differ by 16*128 = 2048.
	c := mustNew(t, Config{SizeBytes: 4096, LineBytes: 128, Ways: 2})
	a, b, d := uint64(0), uint64(2048), uint64(4096)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU
	c.Access(d, false) // evicts b (LRU)
	if r := c.Access(a, false); !r.Hit {
		t.Error("a was evicted; LRU broken")
	}
	if r := c.Access(b, false); r.Hit {
		t.Error("b survived; LRU broken")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 4096, LineBytes: 128, Ways: 2})
	a, b, d := uint64(0), uint64(2048), uint64(4096)
	c.Access(a, true) // dirty
	c.Access(b, false)
	c.Access(d, false) // evicts a → writeback
	foundWB := false
	// a must have produced a writeback on one of the fills.
	if s := c.Stats(); s.Writebacks == 1 {
		foundWB = true
	}
	if !foundWB {
		t.Errorf("expected exactly one writeback, stats %+v", c.Stats())
	}
}

func TestWritebackAddrReconstruction(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 4096, LineBytes: 128, Ways: 1})
	addr := uint64(5 * 128) // set 5
	c.Access(addr, true)
	conflict := addr + 4096/1 // same set, different tag (16 sets × 128 B × 1 way)
	r := c.Access(conflict, false)
	if !r.HasWriteback {
		t.Fatal("conflict fill did not evict dirty line")
	}
	if r.WritebackAddr != addr {
		t.Errorf("writeback addr = %#x, want %#x", r.WritebackAddr, addr)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 4096, LineBytes: 128, Ways: 1})
	c.Access(0, false)
	r := c.Access(4096, false) // evicts clean line
	if r.HasWriteback {
		t.Error("clean eviction produced writeback")
	}
}

func TestStatsConservation(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 8192, LineBytes: 128, Ways: 4})
	rng := rand.New(rand.NewSource(5))
	n := 10000
	for i := 0; i < n; i++ {
		c.Access(uint64(rng.Intn(64*1024))&^127, rng.Intn(3) == 0)
	}
	s := c.Stats()
	if s.Hits+s.Misses != n {
		t.Errorf("hits %d + misses %d ≠ accesses %d", s.Hits, s.Misses, n)
	}
	if s.Writebacks > s.Misses {
		t.Errorf("more writebacks (%d) than misses (%d)", s.Writebacks, s.Misses)
	}
}

func TestWorkingSetFits(t *testing.T) {
	// A working set smaller than the cache must converge to all hits.
	c := mustNew(t, Config{SizeBytes: 64 << 10, LineBytes: 128, Ways: 8})
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 32<<10; a += 128 {
			c.Access(a, false)
		}
	}
	s := c.Stats()
	wantMisses := 256 // one per line on the first pass
	if s.Misses != wantMisses {
		t.Errorf("misses = %d, want %d (working set fits)", s.Misses, wantMisses)
	}
}
