package mc

import (
	"testing"

	"repro/internal/gpu/events"
)

func newSys(t *testing.T) (*System, *events.Queue) {
	t.Helper()
	q := &events.Queue{}
	s, err := New(DefaultConfig(), q)
	if err != nil {
		t.Fatal(err)
	}
	return s, q
}

// readAt runs a single read to completion and returns its completion time.
func readAt(s *System, q *events.Queue, addr uint64, bursts int, compressed bool) float64 {
	var done float64
	s.Read(addr, bursts, compressed, func(t float64) { done = t })
	q.Run()
	return done
}

func TestChannelCount(t *testing.T) {
	s, _ := newSys(t)
	if s.Channels() != 12 {
		t.Errorf("channels = %d, want 12 (6 MCs × 2)", s.Channels())
	}
}

func TestRouteInterleaving(t *testing.T) {
	s, _ := newSys(t)
	ch0, _ := s.route(0)
	ch1, _ := s.route(256)
	ch2, _ := s.route(512)
	if ch0 == ch1 || ch1 == ch2 {
		t.Errorf("adjacent 256B chunks map to same channel: %d %d %d", ch0, ch1, ch2)
	}
	chA, _ := s.route(300)
	chB, _ := s.route(400)
	if chA != chB {
		t.Errorf("same chunk split across channels %d and %d", chA, chB)
	}
}

func TestLocalAddrRowLocality(t *testing.T) {
	s, _ := newSys(t)
	// Consecutive chunks on one channel (3072 B apart globally) must be
	// adjacent in the channel's local space.
	l0 := s.localAddr(0)
	l1 := s.localAddr(3072)
	if l1-l0 != 256 {
		t.Errorf("local stride = %d, want 256", l1-l0)
	}
}

func TestCompressedReadPaysDecompression(t *testing.T) {
	sPlain, qPlain := newSys(t)
	sComp, qComp := newSys(t)
	tPlain := readAt(sPlain, qPlain, 4096, 4, false)
	tComp := readAt(sComp, qComp, 4096, 4, true)
	if tComp <= tPlain {
		t.Errorf("compressed read (%v) not slower than raw (%v) despite MDC+decompression", tComp, tPlain)
	}
}

func TestFewerBurstsFinishSooner(t *testing.T) {
	// Open-loop streams to one channel: 1-burst traffic drains faster.
	s1, q1 := newSys(t)
	s4, q4 := newSys(t)
	var t1, t4 float64
	for i := 0; i < 200; i++ {
		s1.Read(0, 1, true, func(tt float64) { t1 = tt })
		s4.Read(0, 4, true, func(tt float64) { t4 = tt })
	}
	q1.Run()
	q4.Run()
	if t1 >= t4 {
		t.Errorf("1-burst stream (%v) not faster than 4-burst stream (%v)", t1, t4)
	}
}

func TestMDCMissFetchesMetadata(t *testing.T) {
	s, q := newSys(t)
	readAt(s, q, 0, 4, true)
	st := s.Stats()
	if st.MDCMisses != 1 || st.MetaBursts != 1 {
		t.Errorf("first compressed read: stats %+v, want 1 MDC miss + 1 meta burst", st)
	}
	// A second read in the same 16 KB metadata window AND on the same
	// controller hits. Channel interleaving is 256 B across 12 channels, so
	// addr 3072 returns to channel 0.
	readAt(s, q, 3072, 4, true)
	st = s.Stats()
	if st.MDCHits != 1 {
		t.Errorf("second read should hit MDC: %+v", st)
	}
}

func TestUncompressedSkipsMDC(t *testing.T) {
	s, q := newSys(t)
	readAt(s, q, 0, 4, false)
	s.Write(4096, 4, false)
	q.Run()
	st := s.Stats()
	if st.MDCHits+st.MDCMisses != 0 {
		t.Errorf("raw accesses probed the MDC: %+v", st)
	}
	if st.Decompresses+st.Compresses != 0 {
		t.Errorf("raw accesses used the codec: %+v", st)
	}
}

func TestWriteCountsCompression(t *testing.T) {
	s, q := newSys(t)
	s.Write(0, 2, true)
	q.Run()
	if st := s.Stats(); st.Compresses != 1 {
		t.Errorf("compressed write not counted: %+v", st)
	}
}

func TestDramStatsAggregation(t *testing.T) {
	s, q := newSys(t)
	totalBursts := 0
	for i := 0; i < 100; i++ {
		b := i%4 + 1
		totalBursts += b
		s.Read(uint64(i)*256, b, false, func(float64) {})
	}
	q.Run()
	ds := s.DramStats()
	if ds.Bursts != totalBursts {
		t.Errorf("aggregated bursts %d ≠ issued %d", ds.Bursts, totalBursts)
	}
}

func TestPeakBandwidth(t *testing.T) {
	s, _ := newSys(t)
	if got := s.PeakBandwidthGBs(32); got < 190 || got > 195 {
		t.Errorf("peak bandwidth = %.1f GB/s, want ≈192.4", got)
	}
}

func TestValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.Controllers = 0
	if _, err := New(bad, &events.Queue{}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("nil queue accepted")
	}
}
