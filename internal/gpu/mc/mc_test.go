package mc

import (
	"math"
	"testing"

	"repro/internal/gpu/events"
)

func newSys(t *testing.T) (*System, *events.Engine) {
	t.Helper()
	s, eng, err := NewSingle(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s, eng
}

// readAt runs a single read to completion and returns its completion time.
func readAt(s *System, eng *events.Engine, addr uint64, bursts int, compressed bool) float64 {
	var done float64
	s.Read(addr, bursts, compressed, func() { done = s.coord.Now() })
	eng.Run(1)
	return done
}

func TestChannelCount(t *testing.T) {
	s, _ := newSys(t)
	if s.Channels() != 12 {
		t.Errorf("channels = %d, want 12 (6 MCs × 2)", s.Channels())
	}
}

func TestRouteInterleaving(t *testing.T) {
	s, _ := newSys(t)
	ch0, _ := s.route(0)
	ch1, _ := s.route(256)
	ch2, _ := s.route(512)
	if ch0 == ch1 || ch1 == ch2 {
		t.Errorf("adjacent 256B chunks map to same channel: %d %d %d", ch0, ch1, ch2)
	}
	chA, _ := s.route(300)
	chB, _ := s.route(400)
	if chA != chB {
		t.Errorf("same chunk split across channels %d and %d", chA, chB)
	}
}

func TestLocalAddrRowLocality(t *testing.T) {
	s, _ := newSys(t)
	// Consecutive chunks on one channel (3072 B apart globally) must be
	// adjacent in the channel's local space.
	l0 := s.localAddr(0)
	l1 := s.localAddr(3072)
	if l1-l0 != 256 {
		t.Errorf("local stride = %d, want 256", l1-l0)
	}
}

func TestCompressedReadPaysDecompression(t *testing.T) {
	sPlain, qPlain := newSys(t)
	sComp, qComp := newSys(t)
	tPlain := readAt(sPlain, qPlain, 4096, 4, false)
	tComp := readAt(sComp, qComp, 4096, 4, true)
	if tComp <= tPlain {
		t.Errorf("compressed read (%v) not slower than raw (%v) despite MDC+decompression", tComp, tPlain)
	}
}

func TestFewerBurstsFinishSooner(t *testing.T) {
	// Open-loop streams to one channel: 1-burst traffic drains faster.
	s1, q1 := newSys(t)
	s4, q4 := newSys(t)
	var t1, t4 float64
	for i := 0; i < 200; i++ {
		s1.Read(0, 1, true, func() { t1 = s1.coord.Now() })
		s4.Read(0, 4, true, func() { t4 = s4.coord.Now() })
	}
	q1.Run(1)
	q4.Run(1)
	if t1 >= t4 {
		t.Errorf("1-burst stream (%v) not faster than 4-burst stream (%v)", t1, t4)
	}
}

func TestMDCMissFetchesMetadata(t *testing.T) {
	s, q := newSys(t)
	readAt(s, q, 0, 4, true)
	st := s.Stats()
	if st.MDCMisses != 1 || st.MetaBursts != 1 {
		t.Errorf("first compressed read: stats %+v, want 1 MDC miss + 1 meta burst", st)
	}
	// The metadata fetch must be visible as a metadata burst on the DRAM
	// side too, split from data traffic.
	if ds := s.DramStats(); ds.MetaBursts != 1 || ds.Bursts != 4+1 {
		t.Errorf("dram stats %+v, want 4 data + 1 meta burst", ds)
	}
	// A second read in the same 16 KB metadata window AND on the same
	// controller hits. Channel interleaving is 256 B across 12 channels, so
	// addr 3072 returns to channel 0.
	readAt(s, q, 3072, 4, true)
	st = s.Stats()
	if st.MDCHits != 1 {
		t.Errorf("second read should hit MDC: %+v", st)
	}
}

func TestUncompressedSkipsMDC(t *testing.T) {
	s, q := newSys(t)
	readAt(s, q, 0, 4, false)
	s.Write(4096, 4, false)
	q.Run(1)
	st := s.Stats()
	if st.MDCHits+st.MDCMisses != 0 {
		t.Errorf("raw accesses probed the MDC: %+v", st)
	}
	if st.Decompresses+st.Compresses != 0 {
		t.Errorf("raw accesses used the codec: %+v", st)
	}
}

func TestWriteCountsCompression(t *testing.T) {
	s, q := newSys(t)
	s.Write(0, 2, true)
	q.Run(1)
	if st := s.Stats(); st.Compresses != 1 {
		t.Errorf("compressed write not counted: %+v", st)
	}
}

func TestDramStatsAggregation(t *testing.T) {
	s, q := newSys(t)
	totalBursts := 0
	for i := 0; i < 100; i++ {
		b := i%4 + 1
		totalBursts += b
		s.Read(uint64(i)*256, b, false, func() {})
	}
	q.Run(1)
	ds := s.DramStats()
	if ds.Bursts != totalBursts {
		t.Errorf("aggregated bursts %d ≠ issued %d", ds.Bursts, totalBursts)
	}
	if ds.MetaBursts != 0 {
		t.Errorf("uncompressed reads produced %d meta bursts", ds.MetaBursts)
	}
}

func TestPathLatencyDelaysCompletion(t *testing.T) {
	// The same read on a system with a non-zero memory path must complete
	// exactly 2×path later (one hop out, one hop back).
	sFast, qFast := newSys(t)
	const path = 50.0
	eng := events.NewEngine(2, path)
	lanes := make([]*events.Lane, DefaultConfig().Channels())
	for i := range lanes {
		lanes[i] = eng.Lane(1)
	}
	sSlow, err := New(DefaultConfig(), eng.Lane(0), lanes, path)
	if err != nil {
		t.Fatal(err)
	}
	tFast := readAt(sFast, qFast, 4096, 4, false)
	var tSlow float64
	sSlow.Read(4096, 4, false, func() { tSlow = sSlow.coord.Now() })
	eng.Run(1)
	if got, want := tSlow-tFast, 2*path; math.Abs(got-want) > 1e-9 {
		t.Errorf("path latency added %g ns, want %g", got, want)
	}
}

func TestPeakBandwidth(t *testing.T) {
	s, _ := newSys(t)
	if got := s.PeakBandwidthGBs(32); got < 190 || got > 195 {
		t.Errorf("peak bandwidth = %.1f GB/s, want ≈192.4", got)
	}
}

func TestValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.Controllers = 0
	if _, _, err := NewSingle(bad); err == nil {
		t.Error("invalid config accepted")
	}
	eng := events.NewEngine(1, 0)
	if _, err := New(DefaultConfig(), nil, nil, 0); err == nil {
		t.Error("nil coordinator accepted")
	}
	if _, err := New(DefaultConfig(), eng.Lane(0), []*events.Lane{eng.Lane(0)}, 0); err == nil {
		t.Error("wrong lane count accepted")
	}
	if _, err := New(DefaultConfig(), eng.Lane(0), make([]*events.Lane, 12), -1); err == nil {
		t.Error("negative path latency accepted")
	}
}

// completionLog records typed completions dispatched on the coordinator:
// the (op, arg, time) stream a simulator front-end would consume.
type completionLog struct {
	ops   []uint8
	args  []uint32
	times []float64
}

func (c *completionLog) HandleEvent(now float64, ev events.Event) {
	c.ops = append(c.ops, ev.Op)
	c.args = append(c.args, ev.A)
	c.times = append(c.times, now)
}

// TestTypedMatchesClosure drives the same access stream through the typed
// (ReadEvent/WriteEvent) and closure (Read/Write) paths on two identical
// systems and requires identical controller and DRAM statistics plus the
// identical completion stream — times included. This is the equivalence
// contract the typed simulator rests on.
func TestTypedMatchesClosure(t *testing.T) {
	type access struct {
		addr       uint64
		bursts     int
		write      bool
		compressed bool
	}
	var accs []access
	for i := 0; i < 400; i++ {
		accs = append(accs, access{
			addr:       uint64(i*131) % 50000 * 128,
			bursts:     i%4 + 1,
			write:      i%5 == 0,
			compressed: i%3 != 0,
		})
	}

	// Typed run.
	st, engT := newSys(t)
	st.EnableEvents()
	var typed completionLog
	st.coord.SetHandler(events.KindTest, &typed)
	for i, a := range accs {
		if a.write {
			st.WriteEvent(a.addr, a.bursts, a.compressed)
		} else {
			st.ReadEvent(a.addr, a.bursts, a.compressed,
				events.Event{Kind: events.KindTest, Op: 7, A: uint32(i)})
		}
	}
	engT.Run(1)

	// Closure run.
	sc, engC := newSys(t)
	var closure completionLog
	for i, a := range accs {
		if a.write {
			sc.Write(a.addr, a.bursts, a.compressed)
		} else {
			sc.Read(a.addr, a.bursts, a.compressed, func() {
				closure.ops = append(closure.ops, 7)
				closure.args = append(closure.args, uint32(i))
				closure.times = append(closure.times, sc.coord.Now())
			})
		}
	}
	engC.Run(1)

	if st.Stats() != sc.Stats() {
		t.Errorf("controller stats diverge:\ntyped   %+v\nclosure %+v", st.Stats(), sc.Stats())
	}
	if st.DramStats() != sc.DramStats() {
		t.Errorf("dram stats diverge:\ntyped   %+v\nclosure %+v", st.DramStats(), sc.DramStats())
	}
	if len(typed.ops) != len(closure.ops) {
		t.Fatalf("completion counts diverge: typed %d, closure %d", len(typed.ops), len(closure.ops))
	}
	for i := range typed.ops {
		if typed.ops[i] != closure.ops[i] || typed.args[i] != closure.args[i] ||
			typed.times[i] != closure.times[i] {
			t.Fatalf("completion %d diverges: typed (op %d, arg %d, t %g), closure (op %d, arg %d, t %g)",
				i, typed.ops[i], typed.args[i], typed.times[i],
				closure.ops[i], closure.args[i], closure.times[i])
		}
	}
}

// TestSystemResetReplays drives a stream, resets, replays, and requires
// identical statistics — the reuse contract behind the alloc-free replay.
func TestSystemResetReplays(t *testing.T) {
	s, eng := newSys(t)
	s.EnableEvents()
	run := func() (Stats, [12]int) {
		for i := 0; i < 300; i++ {
			addr := uint64(i*257) % 40000 * 128
			if i%4 == 0 {
				s.WriteEvent(addr, i%3+1, i%2 == 0)
			} else {
				s.ReadEvent(addr, i%4+1, i%2 == 0, events.Event{Kind: events.KindTest, Op: 1})
			}
		}
		eng.Run(1)
		var reqs [12]int
		for i, ch := range s.channels {
			reqs[i] = ch.Stats().Requests
		}
		return s.Stats(), reqs
	}
	s.coord.SetHandler(events.KindTest, &completionLog{})
	first, firstReqs := run()
	s.Reset()
	eng.Reset()
	second, secondReqs := run()
	if first != second || firstReqs != secondReqs {
		t.Fatalf("replay after Reset diverged:\nfirst  %+v %v\nsecond %+v %v",
			first, firstReqs, second, secondReqs)
	}
	if first.Reads == 0 || first.Writes == 0 {
		t.Fatal("stream exercised no reads or writes")
	}
}
