// Package mc models the memory controllers of the SLC system (paper Figure
// 3): each controller integrates the compressor, decompressor and a metadata
// cache (MDC) holding the 2-bit burst count per block, so that only the
// required bursts are fetched for a compressed block. The GTX580
// configuration has 6 controllers, each driving two 32-bit GDDR5 channels
// (384-bit aggregate bus, 192.4 GB/s).
//
// The System runs on the sharded event engine: the controller front-end
// (routing and the MDC probes, which two channels of a controller share)
// executes on the coordinator lane, while each GDDR5 channel drains on its
// own lane. The two are decoupled by the memory-path latency PathNs, which
// is exactly the cross-lane message latency — the lookahead that lets the
// engine run channel lanes concurrently while replaying bitwise-identically
// to the serial engine. Per-channel statistics accumulate in lane-local
// shards and are merged only after the engine has drained.
package mc

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/gpu/dram"
	"repro/internal/gpu/events"
)

// Config describes the memory-controller subsystem.
type Config struct {
	Controllers   int // 6 on GTX580
	ChannelsPerMC int // 2 × 32-bit per 64-bit controller
	Dram          dram.Config
	// InterleaveBytes is the address-interleaving granularity across
	// channels.
	InterleaveBytes int
	// MDCLines is the number of metadata lines each controller caches; one
	// 32-byte line holds the 2-bit burst codes of 128 blocks (16 KB of
	// data). A miss costs one extra burst fetch. MDCWays sets the
	// associativity.
	MDCLines int
	MDCWays  int
	// DecompressCycles is added to every compressed read response and
	// CompressCycles to every compressed write (memory clock cycles).
	DecompressCycles int
	CompressCycles   int
}

// DefaultConfig returns the paper's configuration with E2MC latencies.
func DefaultConfig() Config {
	return Config{
		Controllers:      6,
		ChannelsPerMC:    2,
		Dram:             dram.DefaultConfig(),
		InterleaveBytes:  256,
		MDCLines:         4096, // 16 KB of metadata per MC, covering 64 MB
		MDCWays:          8,
		DecompressCycles: 20,
		CompressCycles:   46,
	}
}

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.Controllers <= 0 || c.ChannelsPerMC <= 0 || c.InterleaveBytes <= 0 {
		return fmt.Errorf("mc: non-positive parameter in %+v", c)
	}
	return c.Dram.Validate()
}

// Channels returns the configured channel count.
func (c Config) Channels() int { return c.Controllers * c.ChannelsPerMC }

// Stats counts controller events.
type Stats struct {
	Reads        int
	Writes       int
	MDCHits      int
	MDCMisses    int
	MetaBursts   int // extra bursts spent fetching metadata
	Decompresses int
	Compresses   int
}

// metaLine covers the 2-bit entries of 128 consecutive blocks.
const blocksPerMetaLine = 128

// mdcCache is a small set-associative LRU metadata cache per controller.
type mdcCache struct {
	ways  int
	sets  [][]mdcEntry
	clock uint64
}

type mdcEntry struct {
	tag   uint64
	valid bool
	used  uint64
}

func newMDC(lines, ways int) *mdcCache {
	if ways < 1 {
		ways = 1
	}
	nsets := lines / ways
	if nsets < 1 {
		nsets = 1
	}
	sets := make([][]mdcEntry, nsets)
	for i := range sets {
		sets[i] = make([]mdcEntry, ways)
	}
	return &mdcCache{ways: ways, sets: sets}
}

// reset invalidates every line, keeping the set arrays.
func (m *mdcCache) reset() {
	m.clock = 0
	for _, set := range m.sets {
		for i := range set {
			set[i] = mdcEntry{}
		}
	}
}

// lookup returns true on hit and installs the line on miss.
func (m *mdcCache) lookup(metaLine uint64) bool {
	m.clock++
	set := m.sets[metaLine%uint64(len(m.sets))]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == metaLine {
			set[i].used = m.clock
			return true
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].used < set[victim].used {
			victim = i
		}
	}
	set[victim] = mdcEntry{tag: metaLine, valid: true, used: m.clock}
	return false
}

// System is the full memory-controller subsystem on the sharded engine.
// Read and Write must be called from events on the coordinator lane (or
// before the engine runs); completion callbacks are delivered back onto the
// coordinator lane.
type System struct {
	cfg      Config
	coord    *events.Lane
	lanes    []*events.Lane // one per channel; entries may alias
	channels []*dram.Channel
	mdcs     []*mdcCache
	cycleNs  float64
	pathNs   float64
	// front holds the counters touched on the coordinator lane; laneStats
	// holds the per-channel counters touched on that channel's lane.
	front     Stats
	laneStats []Stats
	// metaBase is a fictitious address range for metadata fetches, placed
	// beyond the data space so metadata rows do not alias data rows.
	metaBase uint64
}

// New builds the subsystem with the front-end on coord and channel i's DRAM
// state on chanLanes[i] (len must equal cfg.Channels(); lanes may alias,
// e.g. all equal to coord for a single-lane setup). pathNs is the one-way
// latency between the L2/front-end and the channels, paid by every
// cross-lane message; it must be at least the owning engine's lookahead.
func New(cfg Config, coord *events.Lane, chanLanes []*events.Lane, pathNs float64) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if coord == nil {
		return nil, fmt.Errorf("mc: nil coordinator lane")
	}
	if len(chanLanes) != cfg.Channels() {
		return nil, fmt.Errorf("mc: %d channel lanes for %d channels", len(chanLanes), cfg.Channels())
	}
	if pathNs < 0 {
		return nil, fmt.Errorf("mc: negative path latency %g", pathNs)
	}
	s := &System{
		cfg:       cfg,
		coord:     coord,
		lanes:     chanLanes,
		channels:  make([]*dram.Channel, cfg.Channels()),
		mdcs:      make([]*mdcCache, cfg.Controllers),
		cycleNs:   cfg.Dram.CycleNs(),
		pathNs:    pathNs,
		laneStats: make([]Stats, cfg.Channels()),
		metaBase:  1 << 40,
	}
	for i := range s.channels {
		if chanLanes[i] == nil {
			return nil, fmt.Errorf("mc: nil lane for channel %d", i)
		}
		ch, err := dram.NewChannel(cfg.Dram, chanLanes[i])
		if err != nil {
			return nil, err
		}
		s.channels[i] = ch
	}
	for i := range s.mdcs {
		s.mdcs[i] = newMDC(cfg.MDCLines, cfg.MDCWays)
	}
	return s, nil
}

// NewSingle builds the subsystem on a single-lane engine — the standalone
// configuration unit tests and tools use. The returned engine's Run drains
// it; there is no cross-lane latency.
func NewSingle(cfg Config) (*System, *events.Engine, error) {
	eng := events.NewEngine(1, 0)
	lanes := make([]*events.Lane, cfg.Channels())
	for i := range lanes {
		lanes[i] = eng.Lane(0)
	}
	s, err := New(cfg, eng.Lane(0), lanes, 0)
	if err != nil {
		return nil, nil, err
	}
	return s, eng, nil
}

// Channels returns the number of channels.
func (s *System) Channels() int { return len(s.channels) }

// PathNs returns the front-end ↔ channel latency.
func (s *System) PathNs() float64 { return s.pathNs }

// route maps an address to its channel and controller.
func (s *System) route(addr uint64) (ch, ctrl int) {
	ch = int((addr / uint64(s.cfg.InterleaveBytes)) % uint64(len(s.channels)))
	return ch, ch / s.cfg.ChannelsPerMC
}

// localAddr converts a global address into the channel's own address space:
// the channel stores every len(channels)-th interleave chunk contiguously,
// so its 2 KB rows hold 2 KB of its own data. Without this translation a
// streaming access pattern would never reuse an open row.
func (s *System) localAddr(addr uint64) uint64 {
	il := uint64(s.cfg.InterleaveBytes)
	n := uint64(len(s.channels))
	return (addr/il/n)*il + addr%il
}

// probeMDC looks up the block's metadata line in its controller's MDC,
// counting the outcome. It runs on the coordinator lane, where the two
// channels of a controller can share the cache without synchronisation.
// It reports whether the line must be fetched from DRAM first.
func (s *System) probeMDC(addr uint64, ctrl int) (metaLine uint64, fetch bool) {
	metaLine = addr / (blocksPerMetaLine * compress.BlockSize)
	if s.mdcs[ctrl].lookup(metaLine) {
		s.front.MDCHits++
		return metaLine, false
	}
	s.front.MDCMisses++
	s.front.MetaBursts++
	return metaLine, true
}

// Read requests a block read; done is invoked on the coordinator lane at
// the completion time (bus transfer plus decompression and the return
// memory path). Compressed reads pay the MDC probe and decompression
// latency; an MDC miss fetches the metadata line from the channel first.
func (s *System) Read(addr uint64, bursts int, compressed bool, done func()) {
	s.front.Reads++
	ch, ctrl := s.route(addr)
	la := s.localAddr(addr)
	var metaLine uint64
	fetch := false
	decompNs := 0.0
	if compressed {
		metaLine, fetch = s.probeMDC(addr, ctrl)
		decompNs = float64(s.cfg.DecompressCycles) * s.cycleNs
	}
	lane := s.lanes[ch]
	s.coord.Send(lane, s.coord.Now()+s.pathNs, func() {
		issue := func() {
			s.channels[ch].Enqueue(la, bursts, func(busEnd float64) {
				if compressed {
					s.laneStats[ch].Decompresses++
				}
				lane.Send(s.coord, busEnd+decompNs+s.pathNs, done)
			})
		}
		if fetch {
			s.channels[ch].EnqueueMeta(s.metaBase+metaLine*32, 1, func(float64) { issue() })
		} else {
			issue()
		}
	})
}

// Write posts a block writeback; compression latency is paid before the bus
// transfer. Writes are posted: no completion callback.
func (s *System) Write(addr uint64, bursts int, compressed bool) {
	s.front.Writes++
	ch, ctrl := s.route(addr)
	la := s.localAddr(addr)
	lane := s.lanes[ch]
	now := s.coord.Now()
	if !compressed {
		s.coord.Send(lane, now+s.pathNs, func() {
			s.channels[ch].Enqueue(la, bursts, nil)
		})
		return
	}
	s.front.Compresses++
	lat := float64(s.cfg.CompressCycles) * s.cycleNs
	metaLine, fetch := s.probeMDC(addr, ctrl)
	if !fetch {
		s.coord.Send(lane, now+s.pathNs+lat, func() {
			s.channels[ch].Enqueue(la, bursts, nil)
		})
		return
	}
	s.coord.Send(lane, now+s.pathNs, func() {
		s.channels[ch].EnqueueMeta(s.metaBase+metaLine*32, 1, func(tm float64) {
			lane.At(tm+lat, func() {
				s.channels[ch].Enqueue(la, bursts, nil)
			})
		})
	})
}

// Typed-event opcodes (events.KindMC unless noted). The System is the one
// handler for KindMC and KindDram on every lane it touches, so opcodes
// alone select the action; ev.B always carries the channel index. Events on
// a channel lane carry the global address — localAddr and the metadata-line
// number are pure functions the handler recomputes, which keeps the record
// small.
const (
	opNone uint8 = iota
	// opDrain (KindDram, channel lane): run one DRAM drain step.
	opDrain
	// opRead (channel lane): enqueue a read, via a metadata fetch first when
	// flagFetch is set.
	opRead
	// opReadIssue (channel lane): metadata arrived, enqueue the data read.
	opReadIssue
	// opReadDone (channel lane): data left the bus; count the decompression
	// and forward the completion in Aux to the coordinator.
	opReadDone
	// opWriteData (channel lane): enqueue a posted write.
	opWriteData
	// opWriteMeta (channel lane): enqueue the metadata fetch for a
	// compressed write whose MDC probe missed.
	opWriteMeta
	// opWriteAfterMeta (channel lane): metadata arrived; enqueue the write
	// after the compression latency.
	opWriteAfterMeta
)

// Event argument packing: A = bursts | flags, B = channel index, Addr =
// global address, Aux = packed completion (reads only).
const (
	flagCompressed uint32 = 1 << 8
	flagFetch      uint32 = 1 << 9
	burstsMask     uint32 = 0xff
)

// EnableEvents registers the System as the typed-event handler for KindMC
// and KindDram on the coordinator and every channel lane, and switches the
// DRAM channels to typed drain scheduling. After this, ReadEvent/WriteEvent
// run the whole memory path without allocating; the closure Read/Write stay
// usable (the reference simulator replays through them on a System without
// EnableEvents).
func (s *System) EnableEvents() {
	s.coord.SetHandler(events.KindMC, s)
	for _, l := range s.lanes { // entries may alias; SetHandler is idempotent
		l.SetHandler(events.KindMC, s)
		l.SetHandler(events.KindDram, s)
	}
	for i, ch := range s.channels {
		ch.EnableEvents(s.lanes[i], events.Event{Kind: events.KindDram, Op: opDrain, B: uint32(i)})
	}
}

// Reset returns the System to its initial state — counters, MDC contents
// and channel queues — keeping every allocation, so a replay of the same
// access stream is allocation-free.
func (s *System) Reset() {
	s.front = Stats{}
	for i := range s.laneStats {
		s.laneStats[i] = Stats{}
	}
	for _, m := range s.mdcs {
		m.reset()
	}
	for _, ch := range s.channels {
		ch.Reset()
	}
}

// ReadEvent is the typed twin of Read: doneEv (Kind/Op/A only, see
// events.PackCompletion) is dispatched on the coordinator lane at the
// completion time. It schedules the identical event sequence as Read, so a
// typed simulator and its closure twin replay bitwise-identically.
func (s *System) ReadEvent(addr uint64, bursts int, compressed bool, doneEv events.Event) {
	s.front.Reads++
	ch, ctrl := s.route(addr)
	a := uint32(bursts) & burstsMask
	if compressed {
		_, fetch := s.probeMDC(addr, ctrl)
		a |= flagCompressed
		if fetch {
			a |= flagFetch
		}
	}
	s.coord.SendEvent(s.lanes[ch], s.coord.Now()+s.pathNs, events.Event{
		Addr: addr,
		Aux:  events.PackCompletion(doneEv),
		A:    a,
		B:    uint32(ch),
		Kind: events.KindMC,
		Op:   opRead,
	})
}

// WriteEvent is the typed twin of Write (posted, no completion).
func (s *System) WriteEvent(addr uint64, bursts int, compressed bool) {
	s.front.Writes++
	ch, ctrl := s.route(addr)
	now := s.coord.Now()
	ev := events.Event{
		Addr: addr,
		A:    uint32(bursts) & burstsMask,
		B:    uint32(ch),
		Kind: events.KindMC,
		Op:   opWriteData,
	}
	if !compressed {
		s.coord.SendEvent(s.lanes[ch], now+s.pathNs, ev)
		return
	}
	s.front.Compresses++
	lat := float64(s.cfg.CompressCycles) * s.cycleNs
	_, fetch := s.probeMDC(addr, ctrl)
	if !fetch {
		s.coord.SendEvent(s.lanes[ch], now+s.pathNs+lat, ev)
		return
	}
	ev.Op = opWriteMeta
	s.coord.SendEvent(s.lanes[ch], now+s.pathNs, ev)
}

// metaAddr returns the DRAM address of an address's metadata line.
func (s *System) metaAddr(addr uint64) uint64 {
	metaLine := addr / (blocksPerMetaLine * compress.BlockSize)
	return s.metaBase + metaLine*32
}

// HandleEvent dispatches the System's typed events. Each arm schedules
// exactly what the corresponding closure in Read/Write schedules, in the
// same order — the sequence-number parity that keeps typed and closure
// replays identical.
func (s *System) HandleEvent(now float64, ev events.Event) {
	ch := int(ev.B)
	switch ev.Op {
	case opDrain:
		s.channels[ch].DrainStep()
	case opRead:
		if ev.A&flagFetch != 0 {
			meta := ev
			meta.Op = opReadIssue
			s.channels[ch].EnqueueEvent(s.metaAddr(ev.Addr), 1, true, meta)
			return
		}
		s.issueRead(ev)
	case opReadIssue:
		s.issueRead(ev)
	case opReadDone:
		decompNs := 0.0
		if ev.A&flagCompressed != 0 {
			s.laneStats[ch].Decompresses++
			decompNs = float64(s.cfg.DecompressCycles) * s.cycleNs
		}
		lane := s.lanes[ch]
		lane.SendEvent(s.coord, now+decompNs+s.pathNs, events.UnpackCompletion(ev.Aux))
	case opWriteData:
		s.channels[ch].EnqueueEvent(s.localAddr(ev.Addr), int(ev.A&burstsMask), false, events.Event{})
	case opWriteMeta:
		after := ev
		after.Op = opWriteAfterMeta
		s.channels[ch].EnqueueEvent(s.metaAddr(ev.Addr), 1, true, after)
	case opWriteAfterMeta:
		lat := float64(s.cfg.CompressCycles) * s.cycleNs
		data := ev
		data.Op = opWriteData
		s.lanes[ch].AtEvent(now+lat, data)
	default:
		panic(fmt.Sprintf("mc: unknown event op %d", ev.Op))
	}
}

// issueRead enqueues the data read on the channel, completion opReadDone.
func (s *System) issueRead(ev events.Event) {
	done := ev
	done.Op = opReadDone
	s.channels[int(ev.B)].EnqueueEvent(s.localAddr(ev.Addr), int(ev.A&burstsMask), false, done)
}

// Stats returns the controller counters, merging the coordinator-side
// front-end counters with the per-channel lane shards. Call it only after
// the engine has drained.
func (s *System) Stats() Stats {
	agg := s.front
	for i := range s.laneStats {
		agg.Decompresses += s.laneStats[i].Decompresses
	}
	return agg
}

// DramStats aggregates all channels in index order.
func (s *System) DramStats() dram.Stats {
	var agg dram.Stats
	for _, ch := range s.channels {
		st := ch.Stats()
		agg.Requests += st.Requests
		agg.Bursts += st.Bursts
		agg.MetaBursts += st.MetaBursts
		agg.RowHits += st.RowHits
		agg.RowMisses += st.RowMisses
		agg.Activations += st.Activations
		agg.BusBusyNs += st.BusBusyNs
	}
	return agg
}

// PeakBandwidthGBs returns the aggregate peak bandwidth.
func (s *System) PeakBandwidthGBs(magBytes int) float64 {
	return float64(len(s.channels)) * s.cfg.Dram.PeakBandwidthGBs(magBytes)
}
