// Package mc models the memory controllers of the SLC system (paper Figure
// 3): each controller integrates the compressor, decompressor and a metadata
// cache (MDC) holding the 2-bit burst count per block, so that only the
// required bursts are fetched for a compressed block. The GTX580
// configuration has 6 controllers, each driving two 32-bit GDDR5 channels
// (384-bit aggregate bus, 192.4 GB/s).
package mc

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/gpu/dram"
	"repro/internal/gpu/events"
)

// Config describes the memory-controller subsystem.
type Config struct {
	Controllers   int // 6 on GTX580
	ChannelsPerMC int // 2 × 32-bit per 64-bit controller
	Dram          dram.Config
	// InterleaveBytes is the address-interleaving granularity across
	// channels.
	InterleaveBytes int
	// MDCLines is the number of metadata lines each controller caches; one
	// 32-byte line holds the 2-bit burst codes of 128 blocks (16 KB of
	// data). A miss costs one extra burst fetch. MDCWays sets the
	// associativity.
	MDCLines int
	MDCWays  int
	// DecompressCycles is added to every compressed read response and
	// CompressCycles to every compressed write (memory clock cycles).
	DecompressCycles int
	CompressCycles   int
}

// DefaultConfig returns the paper's configuration with E2MC latencies.
func DefaultConfig() Config {
	return Config{
		Controllers:      6,
		ChannelsPerMC:    2,
		Dram:             dram.DefaultConfig(),
		InterleaveBytes:  256,
		MDCLines:         4096, // 16 KB of metadata per MC, covering 64 MB
		MDCWays:          8,
		DecompressCycles: 20,
		CompressCycles:   46,
	}
}

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.Controllers <= 0 || c.ChannelsPerMC <= 0 || c.InterleaveBytes <= 0 {
		return fmt.Errorf("mc: non-positive parameter in %+v", c)
	}
	return c.Dram.Validate()
}

// Stats counts controller events.
type Stats struct {
	Reads        int
	Writes       int
	MDCHits      int
	MDCMisses    int
	MetaBursts   int // extra bursts spent fetching metadata
	Decompresses int
	Compresses   int
}

// metaLine covers the 2-bit entries of 128 consecutive blocks.
const blocksPerMetaLine = 128

// mdcCache is a small set-associative LRU metadata cache per controller.
type mdcCache struct {
	ways  int
	sets  [][]mdcEntry
	clock uint64
}

type mdcEntry struct {
	tag   uint64
	valid bool
	used  uint64
}

func newMDC(lines, ways int) *mdcCache {
	if ways < 1 {
		ways = 1
	}
	nsets := lines / ways
	if nsets < 1 {
		nsets = 1
	}
	sets := make([][]mdcEntry, nsets)
	for i := range sets {
		sets[i] = make([]mdcEntry, ways)
	}
	return &mdcCache{ways: ways, sets: sets}
}

// lookup returns true on hit and installs the line on miss.
func (m *mdcCache) lookup(metaLine uint64) bool {
	m.clock++
	set := m.sets[metaLine%uint64(len(m.sets))]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == metaLine {
			set[i].used = m.clock
			return true
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].used < set[victim].used {
			victim = i
		}
	}
	set[victim] = mdcEntry{tag: metaLine, valid: true, used: m.clock}
	return false
}

// System is the full memory-controller subsystem. All requests flow through
// the shared event engine; completions arrive via callbacks.
type System struct {
	cfg      Config
	q        *events.Queue
	channels []*dram.Channel
	mdcs     []*mdcCache
	cycleNs  float64
	stats    Stats
	// metaBase is a fictitious address range for metadata fetches, placed
	// beyond the data space so metadata rows do not alias data rows.
	metaBase uint64
}

// New builds the subsystem on the given event engine.
func New(cfg Config, q *events.Queue) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if q == nil {
		return nil, fmt.Errorf("mc: nil event queue")
	}
	n := cfg.Controllers * cfg.ChannelsPerMC
	s := &System{
		cfg:      cfg,
		q:        q,
		channels: make([]*dram.Channel, n),
		mdcs:     make([]*mdcCache, cfg.Controllers),
		cycleNs:  cfg.Dram.CycleNs(),
		metaBase: 1 << 40,
	}
	for i := range s.channels {
		ch, err := dram.NewChannel(cfg.Dram, q)
		if err != nil {
			return nil, err
		}
		s.channels[i] = ch
	}
	for i := range s.mdcs {
		s.mdcs[i] = newMDC(cfg.MDCLines, cfg.MDCWays)
	}
	return s, nil
}

// Channels returns the number of channels.
func (s *System) Channels() int { return len(s.channels) }

// route maps an address to its channel and controller.
func (s *System) route(addr uint64) (ch, ctrl int) {
	ch = int((addr / uint64(s.cfg.InterleaveBytes)) % uint64(len(s.channels)))
	return ch, ch / s.cfg.ChannelsPerMC
}

// localAddr converts a global address into the channel's own address space:
// the channel stores every len(channels)-th interleave chunk contiguously,
// so its 2 KB rows hold 2 KB of its own data. Without this translation a
// streaming access pattern would never reuse an open row.
func (s *System) localAddr(addr uint64) uint64 {
	il := uint64(s.cfg.InterleaveBytes)
	n := uint64(len(s.channels))
	return (addr/il/n)*il + addr%il
}

// withMetadata runs fn after the metadata lookup for a compressed access; on
// an MDC miss the metadata line is fetched from the controller's channel
// first.
func (s *System) withMetadata(addr uint64, ch, ctrl int, fn func()) {
	metaLine := addr / (blocksPerMetaLine * compress.BlockSize)
	if s.mdcs[ctrl].lookup(metaLine) {
		s.stats.MDCHits++
		fn()
		return
	}
	s.stats.MDCMisses++
	s.stats.MetaBursts++
	s.channels[ch].Enqueue(s.metaBase+metaLine*32, 1, func(float64) { fn() })
}

// Read requests a block read; done is invoked at the completion time.
// Compressed reads pay the MDC probe and decompression latency.
func (s *System) Read(addr uint64, bursts int, compressed bool, done func(completionNs float64)) {
	s.stats.Reads++
	ch, ctrl := s.route(addr)
	issue := func() {
		s.channels[ch].Enqueue(s.localAddr(addr), bursts, func(t float64) {
			if compressed {
				s.stats.Decompresses++
				t += float64(s.cfg.DecompressCycles) * s.cycleNs
			}
			done(t)
		})
	}
	if compressed {
		s.withMetadata(addr, ch, ctrl, issue)
		return
	}
	issue()
}

// Write posts a block writeback; compression latency is paid before the bus
// transfer. Writes are posted: no completion callback.
func (s *System) Write(addr uint64, bursts int, compressed bool) {
	s.stats.Writes++
	ch, ctrl := s.route(addr)
	issue := func() {
		s.channels[ch].Enqueue(s.localAddr(addr), bursts, nil)
	}
	if compressed {
		s.stats.Compresses++
		lat := float64(s.cfg.CompressCycles) * s.cycleNs
		s.withMetadata(addr, ch, ctrl, func() {
			s.q.At(s.q.Now()+lat, issue)
		})
		return
	}
	issue()
}

// Stats returns controller counters.
func (s *System) Stats() Stats { return s.stats }

// DramStats aggregates all channels.
func (s *System) DramStats() dram.Stats {
	var agg dram.Stats
	for _, ch := range s.channels {
		st := ch.Stats()
		agg.Requests += st.Requests
		agg.Bursts += st.Bursts
		agg.RowHits += st.RowHits
		agg.RowMisses += st.RowMisses
		agg.Activations += st.Activations
		agg.BusBusyNs += st.BusBusyNs
	}
	return agg
}

// PeakBandwidthGBs returns the aggregate peak bandwidth.
func (s *System) PeakBandwidthGBs(magBytes int) float64 {
	return float64(len(s.channels)) * s.cfg.Dram.PeakBandwidthGBs(magBytes)
}
