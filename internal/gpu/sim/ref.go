package sim

import (
	"fmt"

	"repro/internal/gpu/cache"
	"repro/internal/gpu/events"
	"repro/internal/gpu/mc"
	"repro/internal/gpu/trace"
)

// This file is the closure-based reference simulator: the model wired with
// func() events (events.Lane.At/Send) instead of typed records. It schedules
// the identical event sequence as the typed Simulator — both draw ordering
// sequence numbers from the same per-lane counters at the same call sites —
// so RunRef must produce a Result bitwise-equal to Replay's. The equivalence
// test pins that; the reference also documents the model in plain Go, with
// each continuation visible as a closure at its scheduling site.

type refSM struct {
	issueFreeNs float64
	pending     []*warpState
	resident    int
}

type refSimulator struct {
	cfg       Config
	smCycleNs float64
	eng       *events.Engine
	// q is the coordinator lane: every SM, L1, L2 and warp-scheduling event
	// runs here, so all simulator state below is lane-local to it.
	q         *events.Lane
	l1s       []*cache.Cache
	l2        *cache.Cache
	mem       *mc.System
	sms       []refSM
	lastWrite map[uint64]blockXfer
	remaining int
	endNs     float64
	res       Result
}

// RunRef replays a trace through the closure-based reference engine. It is
// retained as the semantic anchor for the typed Simulator: the two must
// return identical Results (see TestTypedMatchesRef).
func RunRef(tr *trace.Trace, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return Result{}, err
	}
	smCycleNs := 1e3 / cfg.SMClockMHz
	pathNs := float64(cfg.MemPathCycles) * smCycleNs
	nchan := cfg.MC.Channels()
	eng := events.NewEngine(1+nchan, pathNs)
	coord := eng.Lane(0)
	chanLanes := make([]*events.Lane, nchan)
	for i := range chanLanes {
		chanLanes[i] = eng.Lane(1 + i)
	}
	mem, err := mc.New(cfg.MC, coord, chanLanes, pathNs)
	if err != nil {
		return Result{}, err
	}
	st := &refSimulator{
		cfg:       cfg,
		smCycleNs: smCycleNs,
		eng:       eng,
		q:         coord,
		l2:        l2,
		mem:       mem,
		sms:       make([]refSM, cfg.SMs),
		lastWrite: make(map[uint64]blockXfer),
	}
	if cfg.L1.SizeBytes > 0 {
		st.l1s = make([]*cache.Cache, cfg.SMs)
		for i := range st.l1s {
			if st.l1s[i], err = cache.New(cfg.L1); err != nil {
				return Result{}, err
			}
		}
	}
	for i := range tr.Kernels {
		st.runKernel(&tr.Kernels[i])
	}
	st.res.TimeNs = st.endNs
	st.res.SMCycles = st.endNs / st.smCycleNs
	for _, l1 := range st.l1s {
		cs := l1.Stats()
		st.res.L1.Hits += cs.Hits
		st.res.L1.Misses += cs.Misses
	}
	st.res.L2 = st.l2.Stats()
	st.res.MC = st.mem.Stats()
	ds := st.mem.DramStats()
	st.res.DramBursts = ds.Bursts
	st.res.DramMetaBursts = ds.MetaBursts
	st.res.DramBytes = (ds.Bursts - ds.MetaBursts) * int(cfg.MAG)
	st.res.RowHits = ds.RowHits
	st.res.RowMisses = ds.RowMisses
	st.res.Activations = ds.Activations
	st.res.BusBusyNs = ds.BusBusyNs
	return st.res, nil
}

func (s *refSimulator) runKernel(k *trace.Kernel) {
	start := s.endNs
	// L1s are flushed at kernel boundaries, as on real GPUs.
	for i := range s.l1s {
		old := s.l1s[i].Stats()
		s.res.L1.Hits += old.Hits
		s.res.L1.Misses += old.Misses
		s.l1s[i].Reset()
	}
	// Write-back geometry is forgotten at kernel boundaries too: kernel
	// N+1's evictions of blocks last written by kernel N fall back to the
	// uncompressed MaxBursts transfer instead of replaying stale compressed
	// geometry across the barrier.
	clear(s.lastWrite)
	warps := make([]*warpState, 0, len(k.Warps))
	for i, accs := range k.Warps {
		if len(accs) == 0 {
			continue
		}
		warps = append(warps, &warpState{accs: accs, sm: i % s.cfg.SMs})
	}
	s.remaining = len(warps)
	s.res.Warps += len(warps)
	if s.remaining == 0 {
		return
	}
	for i := range s.sms {
		s.sms[i].pending = s.sms[i].pending[:0]
		s.sms[i].resident = 0
		if s.sms[i].issueFreeNs < start {
			s.sms[i].issueFreeNs = start
		}
	}
	for _, w := range warps {
		smv := &s.sms[w.sm]
		if smv.resident < s.cfg.MaxWarpsPerSM {
			smv.resident++
			w := w
			s.q.At(start, func() { s.tryIssueNext(w, s.q.Now()) })
		} else {
			smv.pending = append(smv.pending, w)
		}
	}
	s.eng.Run(s.cfg.Workers)
	if t := s.eng.Now(); t > s.endNs {
		s.endNs = t
	}
	if s.remaining != 0 {
		panic(fmt.Sprintf("sim: kernel %s drained with %d warps unfinished", k.Name, s.remaining))
	}
}

// tryIssueNext advances a warp: it issues the next access's compute segment
// unless the warp's load window is full or its stream is exhausted.
func (s *refSimulator) tryIssueNext(w *warpState, t float64) {
	if w.idx >= len(w.accs) {
		s.maybeFinish(w, t)
		return
	}
	if w.outstanding >= s.cfg.WarpMLP {
		w.stalled = true
		return
	}
	a := w.accs[w.idx]
	w.idx++
	smv := &s.sms[w.sm]
	startIssue := t
	if smv.issueFreeNs > startIssue {
		startIssue = smv.issueFreeNs
	}
	// The compute gap consumes issue bandwidth: 1 instruction per SM cycle
	// aggregated across the SM's warps.
	endIssue := startIssue + float64(a.Compute)*s.smCycleNs
	smv.issueFreeNs = endIssue
	s.res.Instructions += int64(a.Compute)
	s.q.At(endIssue, func() { s.issueAccess(w, a) })
}

// issueAccess performs the L1/L2/DRAM path of one access. Reads join the
// warp's load window (stall-on-use with WarpMLP outstanding loads); writes
// are posted and write through the L1. The memory controller pays the
// L2↔controller path latency on each cross-lane hop, so a DRAM read's
// response arrives pathNs + bus transfer (+ decompression) + pathNs later.
func (s *refSimulator) issueAccess(w *warpState, a trace.Access) {
	now := s.q.Now()
	s.res.Accesses++
	if s.l1s != nil {
		l1 := s.l1s[w.sm]
		if a.Write {
			l1.Invalidate(a.Addr)
		} else if r := l1.Access(a.Addr, false); r.Hit {
			w.outstanding++
			hitNs := float64(s.cfg.L1HitCycles) * s.smCycleNs
			s.q.At(now+hitNs, func() { s.respond(w) })
			s.q.At(now, func() { s.tryIssueNext(w, s.q.Now()) })
			return
		}
	}
	res := s.l2.Access(a.Addr, a.Write)
	if res.HasWriteback {
		wb, ok := s.lastWrite[res.WritebackAddr]
		if !ok {
			wb = blockXfer{bursts: s.cfg.MAG.MaxBursts(), compressed: false}
		}
		s.mem.Write(res.WritebackAddr, wb.bursts, wb.compressed)
	}
	if a.Write {
		// Record the block's compressed geometry for its eventual
		// writeback; stores are posted, the warp does not wait.
		s.lastWrite[a.Addr] = blockXfer{bursts: int(a.Bursts), compressed: a.Compressed}
		s.q.At(now, func() { s.tryIssueNext(w, s.q.Now()) })
		return
	}
	w.outstanding++
	hitNs := float64(s.cfg.L2HitCycles) * s.smCycleNs
	if res.Hit {
		s.q.At(now+hitNs, func() { s.respond(w) })
	} else {
		s.mem.Read(a.Addr, int(a.Bursts), a.Compressed, func() { s.respond(w) })
	}
	// Independent next instructions keep issuing behind the load.
	s.q.At(now, func() { s.tryIssueNext(w, s.q.Now()) })
}

// respond retires one outstanding load and unblocks the warp.
func (s *refSimulator) respond(w *warpState) {
	w.outstanding--
	if w.stalled {
		w.stalled = false
		s.tryIssueNext(w, s.q.Now())
		return
	}
	s.maybeFinish(w, s.q.Now())
}

// maybeFinish retires the warp once its stream and load window are drained.
func (s *refSimulator) maybeFinish(w *warpState, t float64) {
	if w.done || w.idx < len(w.accs) || w.outstanding > 0 {
		return
	}
	w.done = true
	s.finishWarp(w, t)
}

func (s *refSimulator) finishWarp(w *warpState, t float64) {
	smv := &s.sms[w.sm]
	smv.resident--
	if len(smv.pending) > 0 {
		next := smv.pending[0]
		smv.pending = smv.pending[1:]
		smv.resident++
		s.tryIssueNext(next, t)
	}
	s.remaining--
}
