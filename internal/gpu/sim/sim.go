// Package sim is the trace-driven GPU timing simulator that substitutes for
// gpgpu-sim in this reproduction. It replays per-warp memory access traces
// through an event-driven model of the GTX580-class configuration of the
// paper's Table II: 16 SMs whose warps hide memory latency, a shared
// write-back L2, and 6 memory controllers driving 12 × 32-bit GDDR5
// channels (FR-FCFS scheduled) with compression integrated in the
// controllers.
//
// The model captures what the paper's effect depends on — burst traffic
// versus channel bandwidth, latency hiding limits, and (de)compression
// latencies — while abstracting intra-SM pipelines into per-access issue
// gaps carried by the trace.
//
// The simulator is sharded across event lanes: the SM/L2/controller
// front-end runs on a coordinator lane and every GDDR5 channel on its own
// lane, exchanging messages that always carry at least the memory-path
// latency. That latency is the engine's lookahead, so Config.Workers > 1
// replays the lanes concurrently inside conservative time windows with
// results bitwise-identical to the serial engine (Workers ≤ 1).
//
// Simulator is the typed-event implementation: warp progress is driven by
// small value Event records (opTryIssue/opIssue/opRespond) dispatched
// through the lanes' handler tables, and all model state — engine, caches,
// memory system, warp and SM arrays — is built once in New and reset in
// place by Replay. After a warm-up replay the steady-state loop performs
// zero heap allocations (pinned by TestSimSteadyStateAllocFree). RunRef in
// ref.go is the closure-based twin that schedules the identical event
// sequence; the two must return bitwise-equal Results.
package sim

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/gpu/cache"
	"repro/internal/gpu/events"
	"repro/internal/gpu/mc"
	"repro/internal/gpu/trace"
)

// Config is the simulator configuration (paper Table II).
type Config struct {
	SMs           int
	SMClockMHz    float64
	MaxWarpsPerSM int // 1536 threads / 32
	// MAG is the memory access granularity: bytes moved per DRAM burst.
	MAG compress.MAG
	// L1 is the per-SM cache (Table II: 16 KB/SM). It caches global loads
	// and is write-through: stores invalidate and go to the L2.
	L1 cache.Config
	// L1HitCycles is the SM-cycle latency of an L1 hit.
	L1HitCycles int
	L2          cache.Config
	// L2HitCycles is the SM-cycle round trip for an L2 hit.
	L2HitCycles int
	// MemPathCycles is the one-way SM-cycle cost between L2 and the memory
	// controllers (interconnect + queuing), paid on each side of a miss.
	// It is also the sharded engine's lookahead: the minimum latency of
	// every cross-lane message.
	MemPathCycles int
	// WarpMLP is the per-warp memory-level parallelism: how many loads a
	// warp keeps in flight before stalling (scoreboarded stall-on-use).
	WarpMLP int
	MC      mc.Config
	// Workers is the number of goroutines draining the event lanes: ≤ 1
	// selects the serial engine, larger values the sharded engine. Results
	// are bitwise-identical either way.
	Workers int

	// Display-only fields of Table II (not modelled directly: the L1 is
	// absorbed into trace generation, registers and shared memory do not
	// affect a trace replay).
	L1PerSMKB      int
	MaxCTASize     int
	RegistersPerSM int
	SharedMemKB    int
}

// DefaultConfig returns the paper's baseline simulator configuration.
func DefaultConfig() Config {
	return Config{
		SMs:           16,
		SMClockMHz:    822,
		MaxWarpsPerSM: 48,
		MAG:           compress.MAG32,
		L1:            cache.Config{SizeBytes: 16 << 10, LineBytes: 128, Ways: 4},
		L1HitCycles:   30,
		L2:            cache.Config{SizeBytes: 768 << 10, LineBytes: 128, Ways: 16},
		L2HitCycles:   120,
		MemPathCycles: 60,
		WarpMLP:       8,
		MC:            mc.DefaultConfig(),

		L1PerSMKB:      16,
		MaxCTASize:     512,
		RegistersPerSM: 32 << 10,
		SharedMemKB:    48,
	}
}

// Result summarises one simulation.
type Result struct {
	TimeNs       float64
	SMCycles     float64
	Accesses     int
	Instructions int64
	L1           cache.Stats
	L2           cache.Stats
	MC           mc.Stats
	// DramBursts counts every burst command on the channels' data buses;
	// DramMetaBursts is the subset fetching compression metadata (MDC miss
	// fills). DramBytes is data traffic only: (DramBursts −
	// DramMetaBursts) × MAG.
	DramBursts     int
	DramMetaBursts int
	DramBytes      int
	RowHits        int
	RowMisses      int
	Activations    int
	BusBusyNs      float64
	Warps          int
}

type blockXfer struct {
	bursts     int
	compressed bool
}

type warpState struct {
	accs        []trace.Access
	idx         int
	sm          int
	outstanding int
	stalled     bool
	done        bool
}

type smState struct {
	issueFreeNs float64
	// pending holds warp indices waiting for residency; pendHead advances
	// instead of re-slicing so the backing array is reusable across kernels
	// and replays.
	pending  []int32
	pendHead int
	resident int
}

// Simulator front-end opcodes (events.KindSim). ev.A is the warp index into
// the current kernel's warp array; opIssue's ev.B is the access index.
const (
	opTryIssue uint8 = iota + 1
	opIssue
	opRespond
)

// Simulator replays traces under one fixed configuration. It is the
// long-lived face of the simulation core: the engine, caches, memory system
// and warp arrays are built by New and reset in place by Replay, so
// throughput tooling (`slcbench -simbench`, the Sim trajectory section) can
// replay the same trace repeatedly without allocating.
type Simulator struct {
	cfg       Config
	smCycleNs float64
	eng       *events.Engine
	// q is the coordinator lane: every SM, L1, L2 and warp-scheduling event
	// runs here, so all simulator state below is lane-local to it.
	q         *events.Lane
	l1s       []*cache.Cache
	l2        *cache.Cache
	mem       *mc.System
	sms       []smState
	warps     []warpState
	lastWrite map[uint64]blockXfer
	remaining int
	endNs     float64
	res       Result
	events    int64
}

// validate checks the front-end parameters (the cache and mc configurations
// validate themselves in their constructors).
func (c Config) validate() error {
	if c.SMs <= 0 || c.SMClockMHz <= 0 || c.MaxWarpsPerSM <= 0 || c.WarpMLP <= 0 {
		return fmt.Errorf("sim: bad SM configuration %+v", c)
	}
	if !c.MAG.Valid() {
		return fmt.Errorf("sim: invalid MAG %d", c.MAG)
	}
	if c.MemPathCycles < 0 {
		return fmt.Errorf("sim: negative MemPathCycles %d", c.MemPathCycles)
	}
	return nil
}

// New validates the configuration and builds a Simulator for it.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, err
	}
	smCycleNs := 1e3 / cfg.SMClockMHz
	pathNs := float64(cfg.MemPathCycles) * smCycleNs
	// One lane for the coordinator plus one per GDDR5 channel; the memory
	// path is the minimum cross-lane latency and therefore the lookahead.
	nchan := cfg.MC.Channels()
	eng := events.NewEngine(1+nchan, pathNs)
	coord := eng.Lane(0)
	chanLanes := make([]*events.Lane, nchan)
	for i := range chanLanes {
		chanLanes[i] = eng.Lane(1 + i)
	}
	mem, err := mc.New(cfg.MC, coord, chanLanes, pathNs)
	if err != nil {
		return nil, err
	}
	mem.EnableEvents()
	s := &Simulator{
		cfg:       cfg,
		smCycleNs: smCycleNs,
		eng:       eng,
		q:         coord,
		l2:        l2,
		mem:       mem,
		sms:       make([]smState, cfg.SMs),
		lastWrite: make(map[uint64]blockXfer),
	}
	coord.SetHandler(events.KindSim, s)
	if cfg.L1.SizeBytes > 0 {
		s.l1s = make([]*cache.Cache, cfg.SMs)
		for i := range s.l1s {
			if s.l1s[i], err = cache.New(cfg.L1); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// Events returns the number of discrete events the engine executed during
// the last Replay — the denominator of the ns/event throughput metric.
func (s *Simulator) Events() int64 { return s.events }

// Run replays a trace and returns timing and event counts.
func Run(tr *trace.Trace, cfg Config) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Replay(tr)
}

// Replay replays one trace from a cold start and returns timing and event
// counts. Replaying the same trace twice yields bitwise-identical Results;
// after the first replay has grown the event pools and queue arenas to the
// trace's high-water marks, further replays do not touch the heap.
func (s *Simulator) Replay(tr *trace.Trace) (Result, error) {
	s.reset()
	for i := range tr.Kernels {
		s.runKernel(&tr.Kernels[i])
	}
	s.res.TimeNs = s.endNs
	s.res.SMCycles = s.endNs / s.smCycleNs
	for _, l1 := range s.l1s {
		cs := l1.Stats()
		s.res.L1.Hits += cs.Hits
		s.res.L1.Misses += cs.Misses
	}
	s.res.L2 = s.l2.Stats()
	s.res.MC = s.mem.Stats()
	ds := s.mem.DramStats()
	s.res.DramBursts = ds.Bursts
	s.res.DramMetaBursts = ds.MetaBursts
	s.res.DramBytes = (ds.Bursts - ds.MetaBursts) * int(s.cfg.MAG)
	s.res.RowHits = ds.RowHits
	s.res.RowMisses = ds.RowMisses
	s.res.Activations = ds.Activations
	s.res.BusBusyNs = ds.BusBusyNs
	s.events = s.eng.Executed()
	return s.res, nil
}

// reset rewinds every component to its cold-start state in place.
func (s *Simulator) reset() {
	s.eng.Reset()
	s.mem.Reset()
	s.l2.Reset()
	for _, l1 := range s.l1s {
		l1.Reset()
	}
	for i := range s.sms {
		s.sms[i] = smState{pending: s.sms[i].pending[:0]}
	}
	s.warps = s.warps[:0]
	clear(s.lastWrite)
	s.remaining = 0
	s.endNs = 0
	s.res = Result{}
	s.events = 0
}

// HandleEvent dispatches the front-end's typed events on the coordinator.
func (s *Simulator) HandleEvent(now float64, ev events.Event) {
	switch ev.Op {
	case opTryIssue:
		s.tryIssueNext(int32(ev.A), now)
	case opIssue:
		w := &s.warps[ev.A]
		s.issueAccess(int32(ev.A), w.accs[ev.B], now)
	case opRespond:
		s.respond(int32(ev.A), now)
	default:
		panic(fmt.Sprintf("sim: unknown event op %d", ev.Op))
	}
}

func (s *Simulator) runKernel(k *trace.Kernel) {
	start := s.endNs
	// L1s are flushed at kernel boundaries, as on real GPUs.
	for i := range s.l1s {
		old := s.l1s[i].Stats()
		s.res.L1.Hits += old.Hits
		s.res.L1.Misses += old.Misses
		s.l1s[i].Reset()
	}
	// Write-back geometry is forgotten at kernel boundaries too: kernel
	// N+1's evictions of blocks last written by kernel N fall back to the
	// uncompressed MaxBursts transfer instead of replaying stale compressed
	// geometry across the barrier.
	clear(s.lastWrite)
	s.warps = s.warps[:0]
	for i, accs := range k.Warps {
		if len(accs) == 0 {
			continue
		}
		s.warps = append(s.warps, warpState{accs: accs, sm: i % s.cfg.SMs})
	}
	s.remaining = len(s.warps)
	s.res.Warps += len(s.warps)
	if s.remaining == 0 {
		return
	}
	for i := range s.sms {
		s.sms[i].pending = s.sms[i].pending[:0]
		s.sms[i].pendHead = 0
		s.sms[i].resident = 0
		if s.sms[i].issueFreeNs < start {
			s.sms[i].issueFreeNs = start
		}
	}
	for wi := range s.warps {
		smv := &s.sms[s.warps[wi].sm]
		if smv.resident < s.cfg.MaxWarpsPerSM {
			smv.resident++
			s.q.AtEvent(start, events.Event{Kind: events.KindSim, Op: opTryIssue, A: uint32(wi)})
		} else {
			smv.pending = append(smv.pending, int32(wi))
		}
	}
	s.eng.Run(s.cfg.Workers)
	if t := s.eng.Now(); t > s.endNs {
		s.endNs = t
	}
	if s.remaining != 0 {
		panic(fmt.Sprintf("sim: kernel %s drained with %d warps unfinished", k.Name, s.remaining))
	}
}

// tryIssueNext advances a warp: it issues the next access's compute segment
// unless the warp's load window is full or its stream is exhausted.
func (s *Simulator) tryIssueNext(wi int32, t float64) {
	w := &s.warps[wi]
	if w.idx >= len(w.accs) {
		s.maybeFinish(wi, t)
		return
	}
	if w.outstanding >= s.cfg.WarpMLP {
		w.stalled = true
		return
	}
	ai := w.idx
	a := &w.accs[ai]
	w.idx++
	smv := &s.sms[w.sm]
	startIssue := t
	if smv.issueFreeNs > startIssue {
		startIssue = smv.issueFreeNs
	}
	// The compute gap consumes issue bandwidth: 1 instruction per SM cycle
	// aggregated across the SM's warps.
	endIssue := startIssue + float64(a.Compute)*s.smCycleNs
	smv.issueFreeNs = endIssue
	s.res.Instructions += int64(a.Compute)
	s.q.AtEvent(endIssue, events.Event{Kind: events.KindSim, Op: opIssue, A: uint32(wi), B: uint32(ai)})
}

// issueAccess performs the L1/L2/DRAM path of one access. Reads join the
// warp's load window (stall-on-use with WarpMLP outstanding loads); writes
// are posted and write through the L1. The memory controller pays the
// L2↔controller path latency on each cross-lane hop, so a DRAM read's
// response arrives pathNs + bus transfer (+ decompression) + pathNs later.
func (s *Simulator) issueAccess(wi int32, a trace.Access, now float64) {
	w := &s.warps[wi]
	s.res.Accesses++
	respondEv := events.Event{Kind: events.KindSim, Op: opRespond, A: uint32(wi)}
	tryEv := events.Event{Kind: events.KindSim, Op: opTryIssue, A: uint32(wi)}
	if s.l1s != nil {
		l1 := s.l1s[w.sm]
		if a.Write {
			l1.Invalidate(a.Addr)
		} else if r := l1.Access(a.Addr, false); r.Hit {
			w.outstanding++
			hitNs := float64(s.cfg.L1HitCycles) * s.smCycleNs
			s.q.AtEvent(now+hitNs, respondEv)
			s.q.AtEvent(now, tryEv)
			return
		}
	}
	res := s.l2.Access(a.Addr, a.Write)
	if res.HasWriteback {
		wb, ok := s.lastWrite[res.WritebackAddr]
		if !ok {
			wb = blockXfer{bursts: s.cfg.MAG.MaxBursts(), compressed: false}
		}
		s.mem.WriteEvent(res.WritebackAddr, wb.bursts, wb.compressed)
	}
	if a.Write {
		// Record the block's compressed geometry for its eventual
		// writeback; stores are posted, the warp does not wait.
		s.lastWrite[a.Addr] = blockXfer{bursts: int(a.Bursts), compressed: a.Compressed}
		s.q.AtEvent(now, tryEv)
		return
	}
	w.outstanding++
	hitNs := float64(s.cfg.L2HitCycles) * s.smCycleNs
	if res.Hit {
		s.q.AtEvent(now+hitNs, respondEv)
	} else {
		s.mem.ReadEvent(a.Addr, int(a.Bursts), a.Compressed, respondEv)
	}
	// Independent next instructions keep issuing behind the load.
	s.q.AtEvent(now, tryEv)
}

// respond retires one outstanding load and unblocks the warp.
func (s *Simulator) respond(wi int32, now float64) {
	w := &s.warps[wi]
	w.outstanding--
	if w.stalled {
		w.stalled = false
		s.tryIssueNext(wi, now)
		return
	}
	s.maybeFinish(wi, now)
}

// maybeFinish retires the warp once its stream and load window are drained.
func (s *Simulator) maybeFinish(wi int32, t float64) {
	w := &s.warps[wi]
	if w.done || w.idx < len(w.accs) || w.outstanding > 0 {
		return
	}
	w.done = true
	smv := &s.sms[w.sm]
	smv.resident--
	if smv.pendHead < len(smv.pending) {
		next := smv.pending[smv.pendHead]
		smv.pendHead++
		smv.resident++
		s.tryIssueNext(next, t)
	}
	s.remaining--
}
