package sim

import (
	"testing"

	"repro/internal/gpu/trace"
)

// streamTrace builds a bandwidth-bound trace: warps stream distinct blocks
// with a small compute gap. Each warp covers a contiguous block run and
// warps are numbered in address order — the CTA-style decomposition real
// grid launches produce, which keeps the resident window coherent.
func streamTrace(warps, accessesPerWarp, bursts, compute int) *trace.Trace {
	k := trace.Kernel{Name: "stream", Warps: make([][]trace.Access, warps)}
	for w := 0; w < warps; w++ {
		for i := 0; i < accessesPerWarp; i++ {
			k.Warps[w] = append(k.Warps[w], trace.Access{
				Addr:       uint64(w*accessesPerWarp+i) * 128,
				Bursts:     uint8(bursts),
				Compressed: bursts < 4,
				Compute:    uint16(compute),
			})
		}
	}
	return &trace.Trace{Kernels: []trace.Kernel{k}}
}

func run(t *testing.T, tr *trace.Trace) Result {
	t.Helper()
	res, err := Run(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEmptyTrace(t *testing.T) {
	res := run(t, &trace.Trace{})
	if res.TimeNs != 0 || res.Accesses != 0 {
		t.Errorf("empty trace: %+v", res)
	}
}

func TestAllAccessesProcessed(t *testing.T) {
	tr := streamTrace(64, 50, 4, 10)
	res := run(t, tr)
	if res.Accesses != 64*50 {
		t.Errorf("processed %d accesses, want %d", res.Accesses, 64*50)
	}
	if res.TimeNs <= 0 {
		t.Error("time not positive")
	}
	if res.Warps != 64 {
		t.Errorf("warps = %d", res.Warps)
	}
}

func TestDeterminism(t *testing.T) {
	tr := streamTrace(128, 100, 3, 8)
	r1 := run(t, tr)
	r2 := run(t, tr)
	if r1 != r2 {
		t.Errorf("simulation not deterministic:\n%+v\n%+v", r1, r2)
	}
}

func TestFewerBurstsFaster(t *testing.T) {
	// Bandwidth-bound: enough warps and accesses to saturate channels.
	slow := run(t, streamTrace(512, 200, 4, 4))
	fast := run(t, streamTrace(512, 200, 2, 4))
	if fast.TimeNs >= slow.TimeNs {
		t.Errorf("2-burst trace (%.0f ns) not faster than 4-burst (%.0f ns)",
			fast.TimeNs, slow.TimeNs)
	}
	// Halving bursts must save meaningfully on a bandwidth-bound stream;
	// the gain sits below the 2× bus-time ratio because the lighter run
	// shifts partly into the latency-bound regime (MDC probes and
	// decompression latency stop being hidden).
	if sp := slow.TimeNs / fast.TimeNs; sp < 1.05 {
		t.Errorf("speedup from halved bursts = %.3f, want ≥ 1.05", sp)
	}
	faster := run(t, streamTrace(512, 200, 1, 4))
	if faster.TimeNs >= fast.TimeNs {
		t.Errorf("1-burst trace (%.0f ns) not faster than 2-burst (%.0f ns)",
			faster.TimeNs, fast.TimeNs)
	}
	if sp := slow.TimeNs / faster.TimeNs; sp < 1.2 {
		t.Errorf("speedup from quartered bursts = %.3f, want ≥ 1.2", sp)
	}
}

func TestBurstConservation(t *testing.T) {
	tr := streamTrace(64, 100, 3, 4)
	res := run(t, tr)
	// Every access misses (distinct blocks), reads only, no writebacks:
	// DRAM bursts = accesses × 3 + metadata bursts.
	want := 64*100*3 + res.MC.MetaBursts
	if res.DramBursts != want {
		t.Errorf("dram bursts = %d, want %d", res.DramBursts, want)
	}
	// Metadata fetches are split out: the controller's count and the DRAM
	// channels' count must agree, and DramBytes is data traffic only.
	if res.DramMetaBursts != res.MC.MetaBursts {
		t.Errorf("dram meta bursts = %d, MC counted %d", res.DramMetaBursts, res.MC.MetaBursts)
	}
	if res.DramBytes != (res.DramBursts-res.DramMetaBursts)*32 {
		t.Errorf("bytes = %d, want data bursts×32", res.DramBytes)
	}
}

func TestL2FiltersRepeats(t *testing.T) {
	// All warps hammer the same small set of blocks: after cold misses,
	// everything hits in L2 and DRAM traffic stays near zero.
	k := trace.Kernel{Name: "hot", Warps: make([][]trace.Access, 32)}
	for w := 0; w < 32; w++ {
		for i := 0; i < 100; i++ {
			k.Warps[w] = append(k.Warps[w], trace.Access{
				Addr:    uint64(i%16) * 128,
				Bursts:  4,
				Compute: 2,
			})
		}
	}
	res := run(t, &trace.Trace{Kernels: []trace.Kernel{k}})
	if res.L2.Misses > 16 {
		t.Errorf("L2 misses = %d, want ≤ 16 (working set)", res.L2.Misses)
	}
	// The hot set is absorbed by the cache hierarchy: L1 + L2 hits cover
	// everything but the cold fills.
	if hits := res.L1.Hits + res.L2.Hits; hits < 3000 {
		t.Errorf("L1+L2 hits = %d, want ≈ 3184", hits)
	}
}

func TestL1FiltersL2(t *testing.T) {
	// Each warp re-reads its own block several times: the per-SM L1 must
	// absorb the repeats, so the L2 sees roughly one access per block.
	k := trace.Kernel{Name: "reuse", Warps: make([][]trace.Access, 16)}
	for w := 0; w < 16; w++ {
		for rep := 0; rep < 10; rep++ {
			k.Warps[w] = append(k.Warps[w], trace.Access{
				Addr:    uint64(w) * 128,
				Bursts:  4,
				Compute: 2,
			})
		}
	}
	res := run(t, &trace.Trace{Kernels: []trace.Kernel{k}})
	if res.L1.Hits < 16*8 {
		t.Errorf("L1 hits = %d, want ≥ %d", res.L1.Hits, 16*8)
	}
	if total := res.L2.Hits + res.L2.Misses; total > 32 {
		t.Errorf("L2 saw %d accesses despite L1 filtering, want ≤ 32", total)
	}

	// With the L1 disabled, all repeats reach the L2.
	cfg := DefaultConfig()
	cfg.L1.SizeBytes = 0
	noL1, err := Run(&trace.Trace{Kernels: []trace.Kernel{k}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if total := noL1.L2.Hits + noL1.L2.Misses; total != 160 {
		t.Errorf("without L1, L2 saw %d accesses, want 160", total)
	}
}

func TestWriteInvalidatesL1(t *testing.T) {
	// read → write → read of one block: the second read must miss L1
	// (write-through invalidate) and hit L2.
	k := trace.Kernel{Name: "winv", Warps: [][]trace.Access{{
		{Addr: 0, Bursts: 4, Compute: 1},
		{Addr: 0, Write: true, Bursts: 4, Compute: 1},
		{Addr: 0, Bursts: 4, Compute: 1},
	}}}
	res := run(t, &trace.Trace{Kernels: []trace.Kernel{k}})
	if res.L1.Hits != 0 {
		t.Errorf("L1 hits = %d, want 0 (invalidated)", res.L1.Hits)
	}
	if res.L2.Hits != 2 {
		t.Errorf("L2 hits = %d, want 2 (write + re-read)", res.L2.Hits)
	}
}

func TestLatencyHiding(t *testing.T) {
	// One warp serialises memory latency; many warps overlap it. Per-warp
	// work is identical, so 64 warps should take much less than 64× the
	// one-warp time.
	one := run(t, streamTrace(1, 100, 4, 4))
	many := run(t, streamTrace(64, 100, 4, 4))
	if many.TimeNs > 20*one.TimeNs {
		t.Errorf("64 warps took %.0f ns vs %.0f ns for 1; latency hiding broken",
			many.TimeNs, one.TimeNs)
	}
}

func TestKernelBarrier(t *testing.T) {
	k1 := streamTrace(32, 50, 4, 4).Kernels[0]
	tr := &trace.Trace{Kernels: []trace.Kernel{k1, k1}}
	double := run(t, tr)
	single := run(t, &trace.Trace{Kernels: []trace.Kernel{k1}})
	// The second kernel re-hits L2 (same addresses), so it is faster, but
	// time must strictly grow.
	if double.TimeNs <= single.TimeNs {
		t.Errorf("two kernels (%.0f ns) not slower than one (%.0f ns)",
			double.TimeNs, single.TimeNs)
	}
}

func TestWritebacksCarryWriteBursts(t *testing.T) {
	// Write a large footprint (forcing dirty evictions), then check DRAM
	// write traffic uses the written burst counts.
	warps := 64
	blocks := 16384 // 2 MB footprint ≫ 768 KB L2
	k := trace.Kernel{Name: "wr", Warps: make([][]trace.Access, warps)}
	for w := 0; w < warps; w++ {
		for i := w; i < blocks; i += warps {
			k.Warps[w] = append(k.Warps[w], trace.Access{
				Addr:       uint64(i) * 128,
				Write:      true,
				Bursts:     2,
				Compressed: true,
				Compute:    1,
			})
		}
	}
	res := run(t, &trace.Trace{Kernels: []trace.Kernel{k}})
	if res.L2.Writebacks == 0 {
		t.Fatal("no writebacks despite 2 MB dirty footprint")
	}
	if res.MC.Writes != res.L2.Writebacks {
		t.Errorf("MC writes %d ≠ L2 writebacks %d", res.MC.Writes, res.L2.Writebacks)
	}
	// All writebacks are of 2-burst compressed blocks.
	wantBursts := res.L2.Writebacks*2 + res.MC.MetaBursts
	if res.DramBursts != wantBursts {
		t.Errorf("dram bursts = %d, want %d", res.DramBursts, wantBursts)
	}
}

func TestComputeBoundInsensitiveToBursts(t *testing.T) {
	// With huge compute gaps the kernel is compute-bound: burst count must
	// barely matter.
	heavy4 := run(t, streamTrace(256, 40, 4, 400))
	heavy1 := run(t, streamTrace(256, 40, 1, 400))
	ratio := heavy4.TimeNs / heavy1.TimeNs
	if ratio > 1.1 {
		t.Errorf("compute-bound trace sped up %.2f× from fewer bursts; should be ≈1", ratio)
	}
}

func TestInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SMs = 0
	if _, err := Run(&trace.Trace{}, cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestL1FlushedBetweenKernels(t *testing.T) {
	// Kernel 2 re-reads kernel 1's block: the L1 is flushed at the kernel
	// boundary, so the re-read misses L1 but hits L2.
	k := trace.Kernel{Name: "k", Warps: [][]trace.Access{{
		{Addr: 0, Bursts: 4, Compute: 1},
		{Addr: 0, Bursts: 4, Compute: 1}, // L1 hit within the kernel
	}}}
	tr := &trace.Trace{Kernels: []trace.Kernel{k, k}}
	res := run(t, tr)
	if res.L1.Hits != 2 {
		t.Errorf("L1 hits = %d, want 2 (one per kernel)", res.L1.Hits)
	}
	if res.L2.Hits != 1 {
		t.Errorf("L2 hits = %d, want 1 (kernel 2's cold L1 miss)", res.L2.Hits)
	}
	if res.L2.Misses != 1 {
		t.Errorf("L2 misses = %d, want 1 (kernel 1's cold fill)", res.L2.Misses)
	}
}

// mixedTrace exercises every cross-lane interaction at once: streaming
// reads, L2 hits, compressed and uncompressed writes with dirty evictions,
// and a second kernel re-touching the first kernel's footprint.
func mixedTrace() *trace.Trace {
	k1 := trace.Kernel{Name: "mix", Warps: make([][]trace.Access, 96)}
	for w := 0; w < 96; w++ {
		for i := 0; i < 60; i++ {
			addr := uint64(w*60+i) * 128
			a := trace.Access{Addr: addr, Bursts: uint8(i%4 + 1), Compute: uint16(i % 7)}
			a.Compressed = a.Bursts < 4
			if i%5 == 0 {
				a.Write = true
			}
			if i%11 == 0 {
				a.Addr = uint64(w) * 128 // hot block: L1/L2 hits
			}
			k1.Warps[w] = append(k1.Warps[w], a)
		}
	}
	k2 := streamTrace(64, 40, 2, 3).Kernels[0]
	return &trace.Trace{Kernels: []trace.Kernel{k1, k2}}
}

// TestShardedMatchesSerial is the determinism bar of the sharded engine:
// the same trace replayed with 2, 4 and 12 workers must produce a Result
// bitwise-identical to the serial engine (Workers = 1). Run under -race in
// CI, this doubles as the data-race check on the lane partitioning.
func TestShardedMatchesSerial(t *testing.T) {
	traces := map[string]*trace.Trace{
		"stream":    streamTrace(128, 80, 3, 4),
		"bandwidth": streamTrace(512, 60, 4, 2),
		"mixed":     mixedTrace(),
	}
	for name, tr := range traces {
		cfg := DefaultConfig()
		cfg.Workers = 1
		want, err := Run(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 12} {
			cfg.Workers = workers
			got, err := Run(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s: %d workers diverge from serial:\nserial:  %+v\nsharded: %+v",
					name, workers, want, got)
			}
		}
	}
}

// TestLastWriteClearedBetweenKernels: kernel 1 writes a block with a
// 1-burst compressed geometry; kernel 2 streams a large read footprint that
// evicts it from the L2. The writeback must not replay kernel 1's stale
// geometry across the kernel barrier — it transfers as a full uncompressed
// block.
func TestLastWriteClearedBetweenKernels(t *testing.T) {
	const blocks = 2 * 6144 // 2× the 768 KB L2 (6144 lines of 128 B)
	k1 := trace.Kernel{Name: "write", Warps: [][]trace.Access{{
		{Addr: 0, Write: true, Bursts: 1, Compressed: true, Compute: 1},
	}}}
	k2 := trace.Kernel{Name: "evict", Warps: make([][]trace.Access, 64)}
	for w := 0; w < 64; w++ {
		for i := w; i < blocks; i += 64 {
			k2.Warps[w] = append(k2.Warps[w], trace.Access{
				Addr: uint64(1+i) * 128, Bursts: 4, Compute: 1,
			})
		}
	}
	res := run(t, &trace.Trace{Kernels: []trace.Kernel{k1, k2}})
	if res.L2.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1 (the stale dirty block)", res.L2.Writebacks)
	}
	// All of kernel 2's reads are uncompressed misses (4 bursts each); the
	// lone writeback must transfer MaxBursts = 4, not the stale 1.
	want := blocks*4 + 4
	if got := res.DramBursts - res.DramMetaBursts; got != want {
		t.Errorf("data bursts = %d, want %d (stale write geometry leaked across kernels?)", got, want)
	}
}

func benchTrace() *trace.Trace {
	return streamTrace(1024, 200, 4, 4)
}

func benchSim(b *testing.B, workers int) {
	tr := benchTrace()
	cfg := DefaultConfig()
	cfg.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimSerial and BenchmarkSimSharded12 compare the serial engine to
// twelve workers over the 13 lanes (coordinator + 12 channels) on a
// bandwidth-bound trace.
func BenchmarkSimSerial(b *testing.B)    { benchSim(b, 1) }
func BenchmarkSimSharded4(b *testing.B)  { benchSim(b, 4) }
func BenchmarkSimSharded12(b *testing.B) { benchSim(b, 12) }

// TestTypedMatchesRef pins the typed Simulator to the closure-based
// reference engine (ref.go): both schedule the identical event sequence, so
// every trace must produce a bitwise-equal Result, serial and sharded.
func TestTypedMatchesRef(t *testing.T) {
	traces := map[string]*trace.Trace{
		"stream": streamTrace(128, 80, 3, 4),
		"mixed":  mixedTrace(),
	}
	for name, tr := range traces {
		for _, workers := range []int{1, 4} {
			cfg := DefaultConfig()
			cfg.Workers = workers
			want, err := RunRef(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s (workers %d): typed diverges from reference:\nref:   %+v\ntyped: %+v",
					name, workers, want, got)
			}
		}
	}
}

// TestSimSteadyStateAllocFree pins the tentpole property: once a warm-up
// replay has grown the event pools, queue arenas and DRAM arenas to the
// trace's high-water marks, a serial replay performs zero heap allocations.
func TestSimSteadyStateAllocFree(t *testing.T) {
	tr := mixedTrace()
	cfg := DefaultConfig()
	cfg.Workers = 1 // the parallel engine's worker goroutines allocate
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up replays grow every pool and arena to the trace's high-water
	// marks; several are needed because Go maps finish an in-progress grow
	// incrementally across later operations.
	want, err := s.Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := s.Replay(tr); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(3, func() {
		got, err := s.Replay(tr)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("replay diverged:\nwarm: %+v\ngot:  %+v", want, got)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state replay allocates %.1f times per run, want 0", allocs)
	}
}
