//go:build eventsdebug

package events

import "fmt"

// eventsdebug: released pool records are filled with a poison pattern.
// acquire verifies the poison is intact — a mismatch means some component
// wrote to an event record after releasing it (use-after-release) — and
// dispatch verifies the record is not poisoned — a hit means a released
// record reached the heap (double-release or index corruption). The checks
// cost a few comparisons per event, so they live behind a build tag; CI runs
// the events and sim tests with -tags eventsdebug -race.
const (
	poisonKind uint8  = 0xEE
	poisonWord uint64 = 0xDEADBEEFDEADBEEF
)

var poisonRec = rec{ev: Event{
	Addr: poisonWord,
	Aux:  poisonWord,
	A:    0xEEEEEEEE,
	B:    0xEEEEEEEE,
	Kind: poisonKind,
	Op:   poisonKind,
}}

func checkAcquire(r *rec) {
	if r.fn != nil || r.ev != poisonRec.ev {
		panic(fmt.Sprintf("events: pooled record written after release: %+v", r.ev))
	}
}

func checkDispatch(r *rec) {
	if r.ev == poisonRec.ev {
		panic("events: dispatching a released (poisoned) record")
	}
}
