package events

import "testing"

func TestOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.At(3, func() { got = append(got, 3) })
	q.At(1, func() { got = append(got, 1) })
	q.At(2, func() { got = append(got, 2) })
	q.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if q.Now() != 3 {
		t.Errorf("Now = %v", q.Now())
	}
}

func TestTieBreakInsertionOrder(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(5, func() { got = append(got, i) })
	}
	q.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken at %d: %v", i, got)
		}
	}
}

func TestPastTimesClamp(t *testing.T) {
	var q Queue
	var when float64 = -1
	q.At(10, func() {
		q.At(5, func() { when = q.Now() }) // in the past → clamps to now
	})
	q.Run()
	if when != 10 {
		t.Errorf("past event ran at %v, want 10", when)
	}
}

func TestNestedScheduling(t *testing.T) {
	var q Queue
	n := 0
	var step func()
	step = func() {
		n++
		if n < 100 {
			q.At(q.Now()+1, step)
		}
	}
	q.At(0, step)
	q.Run()
	if n != 100 || q.Now() != 99 {
		t.Errorf("n=%d now=%v", n, q.Now())
	}
	if q.Pending() != 0 {
		t.Errorf("pending = %d", q.Pending())
	}
}
