// Package events is the deterministic discrete-event machinery shared by the
// timing simulator and the memory system.
//
// Two engines live here. Queue is the original single-threaded time-ordered
// queue with insertion-order tie-breaking, still used by components running
// standalone (the dram unit tests). Engine is the sharded engine: a set of
// Lanes, each a self-contained event queue that owns one component's state
// (one DRAM channel, or the SM/L2 front-end), exchanging timestamped
// cross-lane messages. Events are ordered by a (time, source lane, source
// sequence) key that is independent of how execution is scheduled, so the
// serial path (one worker draining all lanes in global key order) and the
// parallel path (conservative time windows bounded by the minimum cross-lane
// latency) replay identically, event for event.
package events

import (
	"container/heap"
	"fmt"
	"math"
	"sync"
)

// Scheduler is the face a lane (or the legacy Queue) presents to the
// components running on it: local time and local scheduling.
type Scheduler interface {
	// Now returns the current simulation time in nanoseconds.
	Now() float64
	// At schedules fn at time t on this scheduler; times before Now are
	// clamped to Now.
	At(t float64, fn func())
}

type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Queue is a discrete-event queue. The zero value is ready to use.
type Queue struct {
	h        eventHeap
	now      float64
	seq      int64
	executed int64
}

// Now returns the current simulation time in nanoseconds.
func (q *Queue) Now() float64 { return q.now }

// Executed returns the number of events the queue has dispatched.
func (q *Queue) Executed() int64 { return q.executed }

// At schedules fn at time t; times before Now are clamped to Now.
func (q *Queue) At(t float64, fn func()) {
	if t < q.now {
		t = q.now
	}
	q.seq++
	heap.Push(&q.h, &event{t: t, seq: q.seq, fn: fn})
}

// Run drains the queue, advancing Now event by event.
func (q *Queue) Run() {
	for q.h.Len() > 0 {
		e := heap.Pop(&q.h).(*event)
		q.now = e.t
		q.executed++
		e.fn()
	}
}

// Pending returns the number of scheduled events.
func (q *Queue) Pending() int { return q.h.Len() }

// laneEvent is one scheduled event on a lane. Ordering is by (t, src, seq):
// src is the scheduling lane and seq its per-lane scheduling counter, so the
// key depends only on the model's deterministic behaviour, never on how the
// engine interleaved lanes in real time.
type laneEvent struct {
	t   float64
	src int32
	seq int64
	fn  func()
}

func laneLess(a, b laneEvent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

type laneHeap []laneEvent

func (h laneHeap) Len() int            { return len(h) }
func (h laneHeap) Less(i, j int) bool  { return laneLess(h[i], h[j]) }
func (h laneHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *laneHeap) Push(x interface{}) { *h = append(*h, x.(laneEvent)) }
func (h *laneHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1].fn = nil
	*h = old[:n-1]
	return e
}

type outMsg struct {
	target *Lane
	ev     laneEvent
}

// Lane is one event shard of an Engine. A lane owns the state of the
// component running on it; its events execute strictly in key order on a
// single goroutine at a time, so lane-local state needs no locking. Lanes
// interact only through Send.
type Lane struct {
	id       int32
	eng      *Engine
	h        laneHeap
	now      float64
	genSeq   int64
	executed int64
	outbox   []outMsg
}

// ID returns the lane's index within its engine.
func (l *Lane) ID() int { return int(l.id) }

// Now returns the lane's local simulation time.
func (l *Lane) Now() float64 { return l.now }

// At schedules fn on this lane; times before Now are clamped to Now. It may
// be called only from the lane's own events, or between Engine.Run calls.
func (l *Lane) At(t float64, fn func()) {
	if t < l.now {
		t = l.now
	}
	l.genSeq++
	heap.Push(&l.h, laneEvent{t: t, src: l.id, seq: l.genSeq, fn: fn})
}

// Send schedules fn on the target lane at time t, from an event executing on
// this lane. Cross-lane sends must respect the engine's lookahead: t must be
// at least the sending lane's Now plus the lookahead, which is what lets the
// parallel engine run lanes concurrently inside a time window without ever
// delivering a message into a lane's past. Sending to the own lane is a
// plain At with no latency constraint.
func (l *Lane) Send(to *Lane, t float64, fn func()) {
	if to == l {
		l.At(t, fn)
		return
	}
	if t < l.now+l.eng.lookahead {
		panic(fmt.Sprintf("events: lookahead violation: lane %d at %g sends to lane %d at %g (lookahead %g)",
			l.id, l.now, to.id, t, l.eng.lookahead))
	}
	l.genSeq++
	ev := laneEvent{t: t, src: l.id, seq: l.genSeq, fn: fn}
	if l.eng.parallel {
		l.outbox = append(l.outbox, outMsg{target: to, ev: ev})
		return
	}
	heap.Push(&to.h, ev)
}

// head returns the lane's earliest pending event time, or +Inf.
func (l *Lane) headTime() float64 {
	if len(l.h) == 0 {
		return math.Inf(1)
	}
	return l.h[0].t
}

// runWindow executes the lane's events with time strictly below horizon.
// Locally scheduled events that land inside the window are executed too;
// cross-lane sends are buffered in the outbox for delivery at the barrier.
func (l *Lane) runWindow(horizon float64) {
	for len(l.h) > 0 && l.h[0].t < horizon {
		ev := heap.Pop(&l.h).(laneEvent)
		l.now = ev.t
		l.executed++
		ev.fn()
	}
}

// Engine is a set of lanes sharing a simulated clock. Run(1) drains the
// lanes serially in global key order — the reference serial engine. Run(n)
// for n > 1 drains them in conservative time windows: all lanes holding an
// event inside [T, T+lookahead) execute concurrently, where T is the global
// minimum pending time; the lookahead (the minimum cross-lane message
// latency, enforced by Send) guarantees no message generated inside the
// window can land inside it, so the two modes replay bitwise-identically.
type Engine struct {
	lanes     []*Lane
	lookahead float64
	parallel  bool
}

// NewEngine builds an engine with n lanes. lookahead is the minimum latency
// every cross-lane Send must carry; it must be positive for parallel runs
// (Run falls back to serial otherwise).
func NewEngine(n int, lookahead float64) *Engine {
	e := &Engine{lanes: make([]*Lane, n), lookahead: lookahead}
	for i := range e.lanes {
		e.lanes[i] = &Lane{id: int32(i), eng: e}
	}
	return e
}

// Lanes returns the number of lanes.
func (e *Engine) Lanes() int { return len(e.lanes) }

// Lane returns lane i.
func (e *Engine) Lane(i int) *Lane { return e.lanes[i] }

// Lookahead returns the minimum cross-lane message latency.
func (e *Engine) Lookahead() float64 { return e.lookahead }

// Now returns the engine's global time: the maximum lane-local time.
func (e *Engine) Now() float64 {
	var t float64
	for _, l := range e.lanes {
		if l.now > t {
			t = l.now
		}
	}
	return t
}

// Pending returns the total number of scheduled events across lanes.
func (e *Engine) Pending() int {
	n := 0
	for _, l := range e.lanes {
		n += len(l.h)
	}
	return n
}

// Executed returns the total number of events dispatched across lanes since
// the engine was built. It is deterministic — the serial and parallel modes
// execute the identical event sequence — but must only be read between Run
// calls.
func (e *Engine) Executed() int64 {
	var n int64
	for _, l := range e.lanes {
		n += l.executed
	}
	return n
}

// Run drains every lane. workers ≤ 1 (or a non-positive lookahead) selects
// the serial engine; larger values fan the window's active lanes across that
// many goroutines. The executed event sequence — and therefore every
// lane-local state and statistic — is identical in both modes.
func (e *Engine) Run(workers int) {
	if workers <= 1 || e.lookahead <= 0 || len(e.lanes) == 1 {
		e.runSerial()
		return
	}
	e.runParallel(workers)
}

// runSerial executes events one at a time in global (t, src, seq) order.
func (e *Engine) runSerial() {
	for {
		var best *Lane
		for _, l := range e.lanes {
			if len(l.h) == 0 {
				continue
			}
			if best == nil || laneLess(l.h[0], best.h[0]) {
				best = l
			}
		}
		if best == nil {
			return
		}
		ev := heap.Pop(&best.h).(laneEvent)
		best.now = ev.t
		best.executed++
		ev.fn()
	}
}

type laneTask struct {
	lane    *Lane
	horizon float64
}

// runParallel executes conservative time windows on a persistent worker
// pool. Each window: find the global minimum pending time T, let every lane
// with events below T+lookahead drain that range concurrently, then deliver
// the buffered cross-lane messages (all provably at or beyond the horizon)
// and repeat.
func (e *Engine) runParallel(workers int) {
	e.parallel = true
	defer func() { e.parallel = false }()

	if workers > len(e.lanes) {
		workers = len(e.lanes)
	}
	tasks := make(chan laneTask)
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		go func() {
			for tk := range tasks {
				tk.lane.runWindow(tk.horizon)
				wg.Done()
			}
		}()
	}
	defer close(tasks)

	active := make([]*Lane, 0, len(e.lanes))
	for {
		T := math.Inf(1)
		for _, l := range e.lanes {
			if t := l.headTime(); t < T {
				T = t
			}
		}
		if math.IsInf(T, 1) {
			return
		}
		horizon := T + e.lookahead
		active = active[:0]
		for _, l := range e.lanes {
			if l.headTime() < horizon {
				active = append(active, l)
			}
		}
		// Fan all but the first active lane to the pool and run the first
		// (lane 0, the coordinator, when it is active — typically the
		// heaviest) inline on this goroutine.
		for _, l := range active[1:] {
			wg.Add(1)
			tasks <- laneTask{lane: l, horizon: horizon}
		}
		active[0].runWindow(horizon)
		wg.Wait()

		for _, l := range e.lanes {
			for _, m := range l.outbox {
				if m.ev.t < horizon {
					panic(fmt.Sprintf("events: message from lane %d to lane %d at %g lands inside window ending %g",
						l.id, m.target.id, m.ev.t, horizon))
				}
				heap.Push(&m.target.h, m.ev)
			}
			for i := range l.outbox {
				l.outbox[i] = outMsg{}
			}
			l.outbox = l.outbox[:0]
		}
	}
}
