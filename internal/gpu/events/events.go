// Package events is the deterministic discrete-event machinery shared by the
// timing simulator and the memory system.
//
// Two engines live here. Queue is the original single-threaded time-ordered
// queue with insertion-order tie-breaking, still used by components running
// standalone (the dram unit tests). Engine is the sharded engine: a set of
// Lanes, each a self-contained event queue that owns one component's state
// (one DRAM channel, or the SM/L2 front-end), exchanging timestamped
// cross-lane messages. Events are ordered by a (time, source lane, source
// sequence) key that is independent of how execution is scheduled, so the
// serial path (one worker draining all lanes in global key order) and the
// parallel path (conservative time windows bounded by the minimum cross-lane
// latency) replay identically, event for event.
//
// Scheduling has two forms sharing one pool and one ordering key:
//
//   - The typed form (AtEvent/SendEvent) carries a small value Event record
//     dispatched to the Handler registered for its Kind — the steady-state
//     path, which performs no heap allocation once the per-lane pools have
//     warmed up.
//   - The closure form (At/Send) carries a func() — retained as the
//     reference implementation (the closure-based simulator replays through
//     it) and for tests.
//
// Both forms draw ordering sequence numbers from the same per-lane counter,
// so a model wired with typed events executes the identical event sequence
// as its closure twin. Event records live in per-lane pools with freelists;
// a lane's pool is touched only while that lane runs (single goroutine at a
// time), so the pools need no locking — the freelist ownership argument is
// the lane ownership argument. Heaps are hand-written 4-ary heaps over value
// records: no interface boxing, no per-push allocation.
package events

import (
	"fmt"
	"math"
	"sync"
)

// Event is one typed scheduled event: a component kind, a component-private
// opcode, and compact arguments. It is a small value record — scheduling one
// copies it into a pooled slot, never onto the heap.
//
// Field meaning is owned by the handling component; by convention Addr
// carries a (global) memory address, Aux a packed completion (see
// PackCompletion) and A/B small integers such as warp indices, burst counts
// or channel numbers.
type Event struct {
	Addr uint64
	Aux  uint64
	A, B uint32
	Kind uint8
	Op   uint8
}

// Component kinds. A lane dispatches a typed event to the Handler registered
// for the event's Kind, so independent components (the simulator front-end,
// the memory-controller, a DRAM channel) can share a lane without seeing
// each other's events.
const (
	// KindNone marks "no event": a zero Event is never dispatched, which is
	// what lets an Event field double as an optional completion.
	KindNone uint8 = iota
	// KindSim is the simulator front-end (warp scheduling, L1/L2).
	KindSim
	// KindMC is the memory-controller system (front-end and channel sides).
	KindMC
	// KindDram is a DRAM channel's own drain scheduling.
	KindDram
	// KindTest is reserved for tests.
	KindTest
	numKinds
)

// Handler consumes typed events of one Kind on one scheduler. now is the
// event's dispatch time (the scheduler's Now).
type Handler interface {
	HandleEvent(now float64, ev Event)
}

// PackCompletion packs an event's (Kind, Op, A) triple into a uint64, so a
// completion event can ride inside another event's Aux field. Addr, Aux and
// B are not carried — completions are by convention identified by Kind/Op
// plus one small argument (a warp index, say).
func PackCompletion(ev Event) uint64 {
	return uint64(ev.Kind)<<40 | uint64(ev.Op)<<32 | uint64(ev.A)
}

// UnpackCompletion reverses PackCompletion.
func UnpackCompletion(aux uint64) Event {
	return Event{Kind: uint8(aux >> 40), Op: uint8(aux >> 32), A: uint32(aux)}
}

// Scheduler is the face a lane (or the legacy Queue) presents to the
// components running on it: local time and local scheduling.
type Scheduler interface {
	// Now returns the current simulation time in nanoseconds.
	Now() float64
	// At schedules fn at time t on this scheduler; times before Now are
	// clamped to Now.
	At(t float64, fn func())
}

// EventScheduler is a Scheduler that also accepts typed events. Both *Queue
// and *Lane implement it.
type EventScheduler interface {
	Scheduler
	// AtEvent schedules a typed event at time t (clamped to Now), to be
	// dispatched to the Handler registered for ev.Kind.
	AtEvent(t float64, ev Event)
	// SetHandler registers the Handler receiving events of the given kind.
	SetHandler(kind uint8, h Handler)
}

// rec is one pooled event record: either a typed event or a closure. Exactly
// one of ev/fn is meaningful (fn wins when non-nil).
//
//slclint:pooled
type rec struct {
	ev Event
	fn func()
}

// heapEnt is a heap entry: the ordering key plus the index of the record in
// the owning scheduler's pool. Keeping the key inline means heap sifting
// never touches the pool.
type heapEnt struct {
	t   float64
	seq int64
	src int32
	idx int32
}

func entLess(a, b heapEnt) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// heapPush / heapPop maintain a 4-ary min-heap over value entries. The wider
// node cuts sift-down depth in half versus a binary heap and the value
// records avoid container/heap's per-operation interface boxing. Heap shape
// does not affect dispatch order: keys are unique (per-source sequence
// numbers), so the pop order is the total (t, src, seq) order regardless of
// arity.
//
//slclint:allocfree
func heapPush(h []heapEnt, e heapEnt) []heapEnt {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

//slclint:allocfree
func heapPop(h []heapEnt) (heapEnt, []heapEnt) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entLess(h[j], h[best]) {
				best = j
			}
		}
		if !entLess(h[best], h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top, h
}

// pool is the record store shared by Queue and Lane: a slice arena plus a
// freelist of vacated slots. acquire/release are O(1) and allocation-free
// once the arena has grown to the schedule's peak depth.
type pool struct {
	recs []rec
	free []int32
}

//slclint:allocfree
func (p *pool) acquire() int32 {
	if n := len(p.free); n > 0 {
		idx := p.free[n-1]
		p.free = p.free[:n-1]
		checkAcquire(&p.recs[idx])
		return idx
	}
	p.recs = append(p.recs, rec{})
	return int32(len(p.recs) - 1)
}

// release vacates a slot. The zero-value store also drops the closure
// reference (or, under the eventsdebug build tag, writes a poison pattern
// that acquire verifies) — a record must never be observed after release.
//
//slclint:allocfree
func (p *pool) release(idx int32) {
	p.recs[idx] = poisonRec
	p.free = append(p.free, idx)
}

func (p *pool) reset() {
	p.recs = p.recs[:0]
	p.free = p.free[:0]
}

// Queue is a discrete-event queue. The zero value is ready to use.
type Queue struct {
	h        []heapEnt
	pool     pool
	handlers [numKinds]Handler
	now      float64
	seq      int64
	executed int64
}

// Now returns the current simulation time in nanoseconds.
func (q *Queue) Now() float64 { return q.now }

// Executed returns the number of events the queue has dispatched.
func (q *Queue) Executed() int64 { return q.executed }

// SetHandler registers the Handler receiving typed events of the given kind.
func (q *Queue) SetHandler(kind uint8, h Handler) { q.handlers[kind] = h }

// At schedules fn at time t; times before Now are clamped to Now.
func (q *Queue) At(t float64, fn func()) {
	idx := q.pool.acquire()
	q.pool.recs[idx] = rec{fn: fn}
	q.push(t, idx)
}

// AtEvent schedules a typed event at time t (clamped to Now).
//
//slclint:allocfree
func (q *Queue) AtEvent(t float64, ev Event) {
	idx := q.pool.acquire()
	q.pool.recs[idx] = rec{ev: ev}
	q.push(t, idx)
}

//slclint:allocfree
func (q *Queue) push(t float64, idx int32) {
	if t < q.now {
		t = q.now
	}
	q.seq++
	q.h = heapPush(q.h, heapEnt{t: t, seq: q.seq, idx: idx})
}

// Run drains the queue, advancing Now event by event.
//
//slclint:allocfree
func (q *Queue) Run() {
	for len(q.h) > 0 {
		var ent heapEnt
		ent, q.h = heapPop(q.h)
		r := q.pool.recs[ent.idx]
		q.pool.release(ent.idx)
		q.now = ent.t
		q.executed++
		if r.fn != nil {
			r.fn()
			continue
		}
		checkDispatch(&r)
		h := q.handlers[r.ev.Kind]
		if h == nil {
			panic(fmt.Sprintf("events: no handler for kind %d (op %d)", r.ev.Kind, r.ev.Op)) //slclint:allow allocfree cold panic on a wiring bug, unreachable in a correct model
		}
		h.HandleEvent(ent.t, r.ev)
	}
}

// Pending returns the number of scheduled events.
func (q *Queue) Pending() int { return len(q.h) }

// Reset rewinds the queue to time zero for a fresh run, keeping registered
// handlers and the heap/pool capacity so a replay allocates nothing.
func (q *Queue) Reset() {
	q.h = q.h[:0]
	q.pool.reset()
	q.now = 0
	q.seq = 0
	q.executed = 0
}

// outMsg is a cross-lane message buffered during a parallel window: the full
// ordering key plus the record by value (the record is copied between the
// lanes' pools at the barrier, never shared).
type outMsg struct {
	target *Lane
	t      float64
	seq    int64
	src    int32
	r      rec
}

// Lane is one event shard of an Engine. A lane owns the state of the
// component running on it; its events execute strictly in key order on a
// single goroutine at a time, so lane-local state — including the lane's
// event pool and freelist — needs no locking. Lanes interact only through
// Send/SendEvent.
type Lane struct {
	id       int32
	eng      *Engine
	h        []heapEnt
	pool     pool
	handlers [numKinds]Handler
	now      float64
	genSeq   int64
	executed int64
	outbox   []outMsg
}

// ID returns the lane's index within its engine.
func (l *Lane) ID() int { return int(l.id) }

// Now returns the lane's local simulation time.
func (l *Lane) Now() float64 { return l.now }

// SetHandler registers the Handler receiving typed events of the given kind
// dispatched on this lane. Handlers survive Engine.Reset.
func (l *Lane) SetHandler(kind uint8, h Handler) { l.handlers[kind] = h }

// At schedules fn on this lane; times before Now are clamped to Now. It may
// be called only from the lane's own events, or between Engine.Run calls.
func (l *Lane) At(t float64, fn func()) {
	idx := l.pool.acquire()
	l.pool.recs[idx] = rec{fn: fn}
	l.push(t, idx)
}

// AtEvent schedules a typed event on this lane; times before Now are clamped
// to Now. Same calling constraints as At.
//
//slclint:allocfree
func (l *Lane) AtEvent(t float64, ev Event) {
	idx := l.pool.acquire()
	l.pool.recs[idx] = rec{ev: ev}
	l.push(t, idx)
}

//slclint:allocfree
func (l *Lane) push(t float64, idx int32) {
	if t < l.now {
		t = l.now
	}
	l.genSeq++
	l.h = heapPush(l.h, heapEnt{t: t, seq: l.genSeq, src: l.id, idx: idx})
}

// checkSend validates a cross-lane send time against the engine's lookahead,
// which is what lets the parallel engine run lanes concurrently inside a
// time window without ever delivering a message into a lane's past.
func (l *Lane) checkSend(to *Lane, t float64) {
	if t < l.now+l.eng.lookahead {
		panic(fmt.Sprintf("events: lookahead violation: lane %d at %g sends to lane %d at %g (lookahead %g)",
			l.id, l.now, to.id, t, l.eng.lookahead))
	}
}

// deliver routes a keyed record to the target lane: buffered in the outbox
// during a parallel window, pushed straight into the target's pool and heap
// (safe: only one lane runs at a time) in serial mode.
//
//slclint:allocfree
func (l *Lane) deliver(to *Lane, t float64, r rec) {
	l.genSeq++
	if l.eng.parallel {
		l.outbox = append(l.outbox, outMsg{target: to, t: t, seq: l.genSeq, src: l.id, r: r})
		return
	}
	idx := to.pool.acquire()
	to.pool.recs[idx] = r
	to.h = heapPush(to.h, heapEnt{t: t, seq: l.genSeq, src: l.id, idx: idx})
}

// Send schedules fn on the target lane at time t, from an event executing on
// this lane. Cross-lane sends must respect the engine's lookahead: t must be
// at least the sending lane's Now plus the lookahead. Sending to the own
// lane is a plain At with no latency constraint.
func (l *Lane) Send(to *Lane, t float64, fn func()) {
	if to == l {
		l.At(t, fn)
		return
	}
	l.checkSend(to, t)
	l.deliver(to, t, rec{fn: fn})
}

// SendEvent schedules a typed event on the target lane at time t, under the
// same lookahead constraint as Send.
//
//slclint:allocfree
func (l *Lane) SendEvent(to *Lane, t float64, ev Event) {
	if to == l {
		l.AtEvent(t, ev)
		return
	}
	l.checkSend(to, t)
	l.deliver(to, t, rec{ev: ev})
}

// head returns the lane's earliest pending event time, or +Inf.
func (l *Lane) headTime() float64 {
	if len(l.h) == 0 {
		return math.Inf(1)
	}
	return l.h[0].t
}

// step pops and dispatches the lane's earliest event.
//
//slclint:allocfree
func (l *Lane) step() {
	var ent heapEnt
	ent, l.h = heapPop(l.h)
	r := l.pool.recs[ent.idx]
	l.pool.release(ent.idx)
	l.now = ent.t
	l.executed++
	if r.fn != nil {
		r.fn()
		return
	}
	checkDispatch(&r)
	h := l.handlers[r.ev.Kind]
	if h == nil {
		panic(fmt.Sprintf("events: lane %d: no handler for kind %d (op %d)", l.id, r.ev.Kind, r.ev.Op)) //slclint:allow allocfree cold panic on a wiring bug, unreachable in a correct model
	}
	h.HandleEvent(ent.t, r.ev)
}

// runWindow executes the lane's events with time strictly below horizon.
// Locally scheduled events that land inside the window are executed too;
// cross-lane sends are buffered in the outbox for delivery at the barrier.
//
//slclint:allocfree
func (l *Lane) runWindow(horizon float64) {
	for len(l.h) > 0 && l.h[0].t < horizon {
		l.step()
	}
}

// reset returns the lane to its pre-run state, keeping handlers and every
// backing array (heap, pool, freelist, outbox) so a subsequent replay of the
// same schedule allocates nothing.
func (l *Lane) reset() {
	l.h = l.h[:0]
	l.pool.reset()
	for i := range l.outbox {
		l.outbox[i] = outMsg{}
	}
	l.outbox = l.outbox[:0]
	l.now = 0
	l.genSeq = 0
	l.executed = 0
}

// Engine is a set of lanes sharing a simulated clock. Run(1) drains the
// lanes serially in global key order — the reference serial engine. Run(n)
// for n > 1 drains them in conservative time windows: all lanes holding an
// event inside [T, T+lookahead) execute concurrently, where T is the global
// minimum pending time; the lookahead (the minimum cross-lane message
// latency, enforced by Send) guarantees no message generated inside the
// window can land inside it, so the two modes replay bitwise-identically.
type Engine struct {
	lanes     []*Lane
	lookahead float64
	parallel  bool
}

// NewEngine builds an engine with n lanes. lookahead is the minimum latency
// every cross-lane Send must carry; it must be positive for parallel runs
// (Run falls back to serial otherwise).
func NewEngine(n int, lookahead float64) *Engine {
	e := &Engine{lanes: make([]*Lane, n), lookahead: lookahead}
	for i := range e.lanes {
		e.lanes[i] = &Lane{id: int32(i), eng: e}
	}
	return e
}

// Lanes returns the number of lanes.
func (e *Engine) Lanes() int { return len(e.lanes) }

// Lane returns lane i.
func (e *Engine) Lane(i int) *Lane { return e.lanes[i] }

// Lookahead returns the minimum cross-lane message latency.
func (e *Engine) Lookahead() float64 { return e.lookahead }

// Now returns the engine's global time: the maximum lane-local time.
func (e *Engine) Now() float64 {
	var t float64
	for _, l := range e.lanes {
		if l.now > t {
			t = l.now
		}
	}
	return t
}

// Pending returns the total number of scheduled events across lanes.
func (e *Engine) Pending() int {
	n := 0
	for _, l := range e.lanes {
		n += len(l.h)
	}
	return n
}

// Executed returns the total number of events dispatched across lanes since
// the engine was built or last Reset. It is deterministic — the serial and
// parallel modes execute the identical event sequence — but must only be
// read between Run calls.
func (e *Engine) Executed() int64 {
	var n int64
	for _, l := range e.lanes {
		n += l.executed
	}
	return n
}

// Reset rewinds the engine to time zero for a fresh replay: pending events
// are dropped, sequence and executed counters rewound, handlers and lane
// pool capacity kept. Replaying an identical schedule after Reset allocates
// nothing.
func (e *Engine) Reset() {
	for _, l := range e.lanes {
		l.reset()
	}
}

// Run drains every lane. workers ≤ 1 (or a non-positive lookahead) selects
// the serial engine; larger values fan the window's active lanes across that
// many goroutines. The executed event sequence — and therefore every
// lane-local state and statistic — is identical in both modes.
func (e *Engine) Run(workers int) {
	if workers <= 1 || e.lookahead <= 0 || len(e.lanes) == 1 {
		e.runSerial()
		return
	}
	e.runParallel(workers)
}

// runSerial executes events one at a time in global (t, src, seq) order.
func (e *Engine) runSerial() {
	for {
		var best *Lane
		for _, l := range e.lanes {
			if len(l.h) == 0 {
				continue
			}
			if best == nil || entLess(l.h[0], best.h[0]) {
				best = l
			}
		}
		if best == nil {
			return
		}
		best.step()
	}
}

type laneTask struct {
	lane    *Lane
	horizon float64
}

// runParallel executes conservative time windows on a persistent worker
// pool. Each window: find the global minimum pending time T, let every lane
// with events below T+lookahead drain that range concurrently, then deliver
// the buffered cross-lane messages (all provably at or beyond the horizon)
// and repeat.
func (e *Engine) runParallel(workers int) {
	e.parallel = true
	defer func() { e.parallel = false }()

	if workers > len(e.lanes) {
		workers = len(e.lanes)
	}
	tasks := make(chan laneTask)
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		go func() {
			for tk := range tasks {
				tk.lane.runWindow(tk.horizon)
				wg.Done()
			}
		}()
	}
	defer close(tasks)

	active := make([]*Lane, 0, len(e.lanes))
	for {
		T := math.Inf(1)
		for _, l := range e.lanes {
			if t := l.headTime(); t < T {
				T = t
			}
		}
		if math.IsInf(T, 1) {
			return
		}
		horizon := T + e.lookahead
		active = active[:0]
		for _, l := range e.lanes {
			if l.headTime() < horizon {
				active = append(active, l)
			}
		}
		// Fan all but the first active lane to the pool and run the first
		// (lane 0, the coordinator, when it is active — typically the
		// heaviest) inline on this goroutine.
		for _, l := range active[1:] {
			wg.Add(1)
			tasks <- laneTask{lane: l, horizon: horizon}
		}
		active[0].runWindow(horizon)
		wg.Wait()

		// Deliver buffered messages: the barrier is single-threaded, so
		// copying a record into the target lane's pool is race-free.
		for _, l := range e.lanes {
			for _, m := range l.outbox {
				if m.t < horizon {
					panic(fmt.Sprintf("events: message from lane %d to lane %d at %g lands inside window ending %g",
						l.id, m.target.id, m.t, horizon))
				}
				idx := m.target.pool.acquire()
				m.target.pool.recs[idx] = m.r
				m.target.h = heapPush(m.target.h, heapEnt{t: m.t, seq: m.seq, src: m.src, idx: idx})
			}
			for i := range l.outbox {
				l.outbox[i] = outMsg{}
			}
			l.outbox = l.outbox[:0]
		}
	}
}
