// Package events is the deterministic discrete-event engine shared by the
// timing simulator and the memory system: a time-ordered queue with
// insertion-order tie-breaking, so identical inputs replay identically.
package events

import "container/heap"

type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Queue is a discrete-event queue. The zero value is ready to use.
type Queue struct {
	h   eventHeap
	now float64
	seq int64
}

// Now returns the current simulation time in nanoseconds.
func (q *Queue) Now() float64 { return q.now }

// At schedules fn at time t; times before Now are clamped to Now.
func (q *Queue) At(t float64, fn func()) {
	if t < q.now {
		t = q.now
	}
	q.seq++
	heap.Push(&q.h, &event{t: t, seq: q.seq, fn: fn})
}

// Run drains the queue, advancing Now event by event.
func (q *Queue) Run() {
	for q.h.Len() > 0 {
		e := heap.Pop(&q.h).(*event)
		q.now = e.t
		e.fn()
	}
}

// Pending returns the number of scheduled events.
func (q *Queue) Pending() int { return q.h.Len() }
