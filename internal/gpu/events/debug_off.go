//go:build !eventsdebug

package events

// poisonRec is what release writes into a vacated pool slot: the zero
// record, which drops the closure reference so the pool never retains a
// dispatched closure. Under the eventsdebug build tag this becomes a poison
// pattern and the check hooks below verify it (see debug_on.go).
var poisonRec = rec{}

func checkAcquire(r *rec)  {}
func checkDispatch(r *rec) {}
