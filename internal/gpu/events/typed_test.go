package events

import (
	"testing"
)

// recording is a Handler appending every dispatched event.
type recording struct {
	ops   []uint8
	times []float64
}

func (r *recording) HandleEvent(now float64, ev Event) {
	r.ops = append(r.ops, ev.Op)
	r.times = append(r.times, now)
}

func TestTypedDispatchOrdering(t *testing.T) {
	var q Queue
	var rec recording
	q.SetHandler(KindTest, &rec)
	q.AtEvent(3, Event{Kind: KindTest, Op: 3})
	q.AtEvent(1, Event{Kind: KindTest, Op: 1})
	q.AtEvent(2, Event{Kind: KindTest, Op: 2})
	q.AtEvent(1, Event{Kind: KindTest, Op: 4}) // same time: insertion order
	q.Run()
	want := []uint8{1, 4, 2, 3}
	if len(rec.ops) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(rec.ops), len(want))
	}
	for i := range want {
		if rec.ops[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", rec.ops, want)
		}
	}
}

// TestTypedClosureSharedOrder checks that typed and closure events drawn
// from the same scheduler interleave by one shared sequence counter: a
// closure scheduled before a typed event at the same time runs first, and
// vice versa.
func TestTypedClosureSharedOrder(t *testing.T) {
	var q Queue
	var order []string
	q.SetHandler(KindTest, handlerFunc(func(now float64, ev Event) {
		order = append(order, "typed")
	}))
	q.At(5, func() { order = append(order, "fn1") })
	q.AtEvent(5, Event{Kind: KindTest})
	q.At(5, func() { order = append(order, "fn2") })
	q.Run()
	want := []string{"fn1", "typed", "fn2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

type handlerFunc func(now float64, ev Event)

func (f handlerFunc) HandleEvent(now float64, ev Event) { f(now, ev) }

func TestNoHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dispatching a kind with no handler did not panic")
		}
	}()
	var q Queue
	q.AtEvent(0, Event{Kind: KindTest})
	q.Run()
}

func TestPackCompletionRoundTrip(t *testing.T) {
	ev := Event{Kind: KindSim, Op: 7, A: 0xDEADBEEF}
	got := UnpackCompletion(PackCompletion(ev))
	if got != ev {
		t.Fatalf("round trip %+v, want %+v", got, ev)
	}
}

// stressHandler reschedules pseudo-randomly: each dispatched event fans out
// to 0–2 follow-ups on pseudo-random lanes until the lane's budget is
// spent. The budget is lane-local (handlers run concurrently in parallel
// mode) and each lane's dispatch sequence is deterministic, so the executed
// count must match on any worker count.
type stressHandler struct {
	eng    *Engine
	lane   *Lane
	budget int
}

func (h *stressHandler) HandleEvent(now float64, ev Event) {
	for fan := ev.A % 3; fan > 0 && h.budget > 0; fan-- {
		h.budget--
		next := Event{Kind: KindTest, Op: ev.Op + 1, A: ev.A*1664525 + 1013904223}
		target := h.eng.Lane(int(next.A>>8) % h.eng.Lanes())
		if target == h.lane {
			h.lane.AtEvent(now+float64(next.A%5), next)
		} else {
			h.lane.SendEvent(target, now+1+float64(next.A%5), next)
		}
	}
}

// TestEventPoolReuseStress hammers acquire/release across lanes, replay
// resets, and both engine modes. Under the eventsdebug build tag (CI runs
// this test with -tags eventsdebug -race) every release poisons the record
// and every acquire/dispatch verifies it, so a freelist double-release or a
// use-after-release anywhere in the machinery panics here.
func TestEventPoolReuseStress(t *testing.T) {
	const lanes = 5
	run := func(workers int) int64 {
		eng := NewEngine(lanes, 1)
		handlers := make([]*stressHandler, lanes)
		for i := 0; i < lanes; i++ {
			handlers[i] = &stressHandler{eng: eng, lane: eng.Lane(i)}
			eng.Lane(i).SetHandler(KindTest, handlers[i])
		}
		var total int64
		for replay := 0; replay < 3; replay++ {
			eng.Reset()
			for i := range handlers {
				handlers[i].budget = 4000
			}
			for i := 0; i < lanes; i++ {
				eng.Lane(i).AtEvent(float64(i%3), Event{Kind: KindTest, A: uint32(i)*2654435761 + 7})
			}
			eng.Run(workers)
			total += eng.Executed()
		}
		return total
	}
	serial := run(1)
	if serial < 3*lanes {
		t.Fatalf("stress executed only %d events", serial)
	}
	if par := run(3); par != serial {
		t.Fatalf("parallel stress executed %d events, serial %d", par, serial)
	}
}

// TestQueueResetReuses replays the same schedule through one Queue and
// requires the second run to dispatch identically after Reset.
func TestQueueResetReuses(t *testing.T) {
	var q Queue
	var rec recording
	q.SetHandler(KindTest, &rec)
	run := func() {
		for i := 0; i < 50; i++ {
			q.AtEvent(float64(i%7), Event{Kind: KindTest, Op: uint8(i)})
		}
		q.Run()
	}
	run()
	first := append([]uint8(nil), rec.ops...)
	rec.ops, rec.times = rec.ops[:0], rec.times[:0]
	q.Reset()
	run()
	if len(rec.ops) != len(first) {
		t.Fatalf("replay dispatched %d events, first run %d", len(rec.ops), len(first))
	}
	for i := range first {
		if rec.ops[i] != first[i] {
			t.Fatalf("replay order diverged at %d: %d vs %d", i, rec.ops[i], first[i])
		}
	}
}
