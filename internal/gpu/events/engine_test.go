package events

import (
	"fmt"
	"reflect"
	"testing"
)

// pingPong builds a deterministic multi-lane workload on an engine: lane 0
// broadcasts requests to every other lane with the minimum latency, each
// lane does local follow-up work and replies, and lane 0 chains the next
// round off the replies. Every lane appends (time, label) to its own log.
func pingPong(e *Engine, rounds int, logs [][]string) {
	coord := e.Lane(0)
	la := e.Lookahead()
	var round func(r int)
	round = func(r int) {
		if r >= rounds {
			return
		}
		logs[0] = append(logs[0], fmt.Sprintf("round %d @%g", r, coord.Now()))
		replies := 0
		for i := 1; i < e.Lanes(); i++ {
			l := e.Lane(i)
			i := i
			coord.Send(l, coord.Now()+la, func() {
				logs[i] = append(logs[i], fmt.Sprintf("req %d @%g", r, l.Now()))
				// Local follow-up inside the lane, below the lookahead.
				l.At(l.Now()+la/4, func() {
					logs[i] = append(logs[i], fmt.Sprintf("work %d @%g", r, l.Now()))
					l.Send(coord, l.Now()+la, func() {
						logs[0] = append(logs[0], fmt.Sprintf("reply %d/%d @%g", r, i, coord.Now()))
						replies++
						if replies == e.Lanes()-1 {
							coord.At(coord.Now(), func() { round(r + 1) })
						}
					})
				})
			})
		}
	}
	coord.At(0, func() { round(0) })
}

func runPingPong(lanes, workers, rounds int) [][]string {
	e := NewEngine(lanes, 10)
	logs := make([][]string, lanes)
	pingPong(e, rounds, logs)
	e.Run(workers)
	return logs
}

func TestEngineSerialParallelIdentical(t *testing.T) {
	for _, lanes := range []int{2, 4, 13} {
		want := runPingPong(lanes, 1, 20)
		for _, workers := range []int{2, 3, lanes} {
			got := runPingPong(lanes, workers, 20)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("lanes=%d workers=%d: logs diverge from serial\nserial:   %v\nparallel: %v",
					lanes, workers, want, got)
			}
		}
	}
}

func TestEngineKeyOrdering(t *testing.T) {
	// Ties at the same time resolve by (source lane, source sequence):
	// lane 0's sends run before lane 1's, and each source's in order.
	e := NewEngine(3, 1)
	var got []string
	target := e.Lane(2)
	for _, src := range []int{1, 0} { // schedule lane 1's first
		src := src
		l := e.Lane(src)
		l.At(0, func() {
			for k := 0; k < 3; k++ {
				k := k
				l.Send(target, 5, func() { got = append(got, fmt.Sprintf("%d.%d", src, k)) })
			}
		})
	}
	e.Run(1)
	want := []string{"0.0", "0.1", "0.2", "1.0", "1.1", "1.2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tie order = %v, want %v", got, want)
	}
}

func TestEngineLookaheadViolationPanics(t *testing.T) {
	e := NewEngine(2, 10)
	e.Lane(0).At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("short cross-lane send did not panic")
			}
		}()
		e.Lane(0).Send(e.Lane(1), 5, func() {})
	})
	e.Run(1)
}

func TestEngineSameLaneSendHasNoLatencyFloor(t *testing.T) {
	e := NewEngine(2, 10)
	ran := false
	e.Lane(0).At(0, func() {
		e.Lane(0).Send(e.Lane(0), 1, func() { ran = true })
	})
	e.Run(1)
	if !ran {
		t.Error("same-lane send did not run")
	}
}

func TestEngineReusableAcrossRuns(t *testing.T) {
	// Kernels run back to back: the engine must drain, accept new events at
	// later times, and drain again — in both modes.
	for _, workers := range []int{1, 4} {
		e := NewEngine(4, 10)
		perLane := make([]int, e.Lanes()) // lane-local counters: lanes must not share state
		seed := func(start float64) {
			e.Lane(0).At(start, func() {
				for i := 1; i < e.Lanes(); i++ {
					i := i
					e.Lane(0).Send(e.Lane(i), e.Lane(0).Now()+10, func() { perLane[i]++ })
				}
			})
		}
		seed(0)
		e.Run(workers)
		first := e.Now()
		seed(first)
		e.Run(workers)
		total := 0
		for _, n := range perLane {
			total += n
		}
		if total != 6 {
			t.Errorf("workers=%d: ran %d cross-lane events, want 6", workers, total)
		}
		if e.Now() <= first {
			t.Errorf("workers=%d: time did not advance across runs", workers)
		}
		if e.Pending() != 0 {
			t.Errorf("workers=%d: %d events left pending", workers, e.Pending())
		}
	}
}

func TestEngineClampsPastTimes(t *testing.T) {
	e := NewEngine(1, 0)
	var when float64 = -1
	e.Lane(0).At(10, func() {
		e.Lane(0).At(5, func() { when = e.Lane(0).Now() })
	})
	e.Run(1)
	if when != 10 {
		t.Errorf("past event ran at %v, want 10", when)
	}
}
