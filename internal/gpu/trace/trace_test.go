package trace

import (
	"testing"

	"repro/internal/compress"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(func(addr uint64) (int, bool) { return 2, true })
	r.BeginKernel("k1", 2)
	r.Access(0, 0x1000, false, 10)
	r.Access(0, 0x1084, true, 5) // truncated to block 0x1080
	r.Access(1, 0x2000, false, 0)
	tr := r.Trace()
	if len(tr.Kernels) != 1 {
		t.Fatalf("kernels = %d", len(tr.Kernels))
	}
	k := tr.Kernels[0]
	if len(k.Warps[0]) != 2 || len(k.Warps[1]) != 1 {
		t.Fatalf("warp access counts wrong: %d, %d", len(k.Warps[0]), len(k.Warps[1]))
	}
	a := k.Warps[0][1]
	if a.Addr != 0x1080 {
		t.Errorf("addr not block aligned: %#x", a.Addr)
	}
	if !a.Write || a.Bursts != 2 || !a.Compressed || a.Compute != 5 {
		t.Errorf("access fields lost: %+v", a)
	}
}

func TestRecorderClamping(t *testing.T) {
	r := NewRecorder(func(addr uint64) (int, bool) { return 0, false })
	r.BeginKernel("k", 1)
	r.Access(0, 0, false, -5)
	a := r.Trace().Kernels[0].Warps[0][0]
	if a.Bursts != 1 {
		t.Errorf("bursts clamped to %d, want 1", a.Bursts)
	}
	if a.Compute != 0 {
		t.Errorf("compute clamped to %d, want 0", a.Compute)
	}
}

func TestAccessBeforeKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on Access before BeginKernel")
		}
	}()
	NewRecorder(func(uint64) (int, bool) { return 1, false }).Access(0, 0, false, 0)
}

func TestStats(t *testing.T) {
	r := NewRecorder(func(addr uint64) (int, bool) { return 3, true })
	r.BeginKernel("a", 2)
	r.Access(0, 0, false, 7)
	r.Access(1, 128, true, 3)
	r.BeginKernel("b", 1)
	r.Access(0, 256, false, 1)
	s := r.Trace().Stats(compress.MAG32)
	if s.Kernels != 2 || s.Warps != 3 || s.Accesses != 3 {
		t.Errorf("counts wrong: %+v", s)
	}
	if s.Reads != 2 || s.Writes != 1 {
		t.Errorf("rw wrong: %+v", s)
	}
	if s.Bursts != 9 || s.Bytes != 9*32 {
		t.Errorf("volume wrong: %+v", s)
	}
	if s.Compute != 11 {
		t.Errorf("compute = %d, want 11", s.Compute)
	}
}
