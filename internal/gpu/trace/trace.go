// Package trace defines the memory access traces the timing simulator
// replays. Workloads emit per-warp, block-granular accesses (one coalesced
// 128-byte access per warp of 32 threads × 4 bytes); each access records the
// burst count in effect for its block under the active compression
// configuration, so the timing replay is independent of block data.
package trace

import "repro/internal/compress"

// Access is one coalesced warp access to a 128-byte block.
type Access struct {
	Addr       uint64 // block-aligned device address
	Write      bool
	Compressed bool   // block is stored compressed (decompression on fetch)
	Bursts     uint8  // DRAM bursts this block transfer needs (1..MaxBursts)
	Compute    uint16 // issue slots (SM cycles) of compute preceding this access
}

// Kernel is one kernel launch: a set of warps, each with an ordered access
// stream. Kernels execute back-to-back with a barrier in between, as
// successive CUDA kernel launches do.
type Kernel struct {
	Name  string
	Warps [][]Access
}

// Trace is the full execution: kernels in launch order.
type Trace struct {
	Kernels []Kernel
}

// Stats summarises a trace.
type Stats struct {
	Kernels  int
	Warps    int
	Accesses int
	Reads    int
	Writes   int
	Bursts   int
	Bytes    int
	Compute  int64
}

// Stats computes summary statistics with the given MAG (for byte volume).
func (t *Trace) Stats(mag compress.MAG) Stats {
	var s Stats
	s.Kernels = len(t.Kernels)
	for _, k := range t.Kernels {
		s.Warps += len(k.Warps)
		for _, w := range k.Warps {
			s.Accesses += len(w)
			for _, a := range w {
				if a.Write {
					s.Writes++
				} else {
					s.Reads++
				}
				s.Bursts += int(a.Bursts)
				s.Compute += int64(a.Compute)
			}
		}
	}
	s.Bytes = s.Bursts * int(mag)
	return s
}

// Recorder builds a trace as a workload runs. BurstsFor supplies the burst
// count and compressed flag per block under the active compression
// configuration; it must be set before any Access call.
type Recorder struct {
	BurstsFor func(addr uint64) (bursts int, compressed bool)
	trace     Trace
	cur       *Kernel
}

// NewRecorder returns a recorder using the given burst lookup.
func NewRecorder(burstsFor func(addr uint64) (int, bool)) *Recorder {
	return &Recorder{BurstsFor: burstsFor}
}

// BeginKernel starts a new kernel with the given warp count.
func (r *Recorder) BeginKernel(name string, warps int) {
	r.trace.Kernels = append(r.trace.Kernels, Kernel{
		Name:  name,
		Warps: make([][]Access, warps),
	})
	r.cur = &r.trace.Kernels[len(r.trace.Kernels)-1]
}

// Access appends one block access for a warp. addr is truncated to its block;
// compute is the issue-slot gap since the warp's previous access.
func (r *Recorder) Access(warp int, addr uint64, write bool, compute int) {
	if r.cur == nil {
		panic("trace: Access before BeginKernel")
	}
	blockAddr := addr &^ uint64(compress.BlockSize-1)
	b, comp := r.BurstsFor(blockAddr)
	if b < 1 {
		b = 1
	}
	if b > 255 {
		b = 255
	}
	if compute < 0 {
		compute = 0
	}
	if compute > 65535 {
		compute = 65535
	}
	r.cur.Warps[warp] = append(r.cur.Warps[warp], Access{
		Addr:       blockAddr,
		Write:      write,
		Compressed: comp,
		Bursts:     uint8(b),
		Compute:    uint16(compute),
	})
}

// Trace returns the recorded trace.
func (r *Recorder) Trace() *Trace { return &r.trace }
