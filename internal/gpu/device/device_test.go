package device

import (
	"testing"

	"repro/internal/compress"
)

func TestMallocAlignment(t *testing.T) {
	d := New()
	r, err := d.Malloc("a", 100, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Addr%compress.BlockSize != 0 {
		t.Errorf("region not block aligned: %#x", r.Addr)
	}
	if r.Size != compress.BlockSize {
		t.Errorf("size = %d, want rounded to %d", r.Size, compress.BlockSize)
	}
	r2, err := d.Malloc("b", 4096, true, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Addr < r.End() {
		t.Errorf("regions overlap: %#x < %#x", r2.Addr, r.End())
	}
	if !r2.SafeToApprox || r2.ThresholdBytes != 16 {
		t.Errorf("approx annotation lost: %+v", r2)
	}
}

func TestMallocRejectsBadSize(t *testing.T) {
	d := New()
	if _, err := d.Malloc("zero", 0, false, 0); err == nil {
		t.Error("zero-size allocation accepted")
	}
	if _, err := d.Malloc("neg", -8, false, 0); err == nil {
		t.Error("negative allocation accepted")
	}
}

func TestSafeToApproxClassification(t *testing.T) {
	d := New()
	exact, _ := d.Malloc("exact", 1024, false, 0)
	approx, _ := d.Malloc("approx", 1024, true, 16)
	if d.SafeToApprox(exact.Addr) {
		t.Error("exact region classified approximable")
	}
	if !d.SafeToApprox(approx.Addr + 512) {
		t.Error("approx region not classified approximable")
	}
	if d.SafeToApprox(approx.End() + 4096) {
		t.Error("unallocated address classified approximable")
	}
}

func TestFloatAccessors(t *testing.T) {
	d := New()
	r, _ := d.Malloc("f", 1024, false, 0)
	v := d.F32View(r)
	if v.Len() != 256 {
		t.Fatalf("len = %d", v.Len())
	}
	v.Set(7, 3.25)
	if got := v.At(7); got != 3.25 {
		t.Errorf("At(7) = %v", got)
	}
	if got := d.Float32(v.Addr(7)); got != 3.25 {
		t.Errorf("Float32(addr) = %v", got)
	}
}

func TestCopyAndReadFloats(t *testing.T) {
	d := New()
	r, _ := d.Malloc("x", 64*4, false, 0)
	in := make([]float32, 64)
	for i := range in {
		in[i] = float32(i) * 0.5
	}
	if err := d.CopyFloats32(r, in); err != nil {
		t.Fatal(err)
	}
	out, err := d.ReadFloats32(r, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], in[i])
		}
	}
	if err := d.CopyFloats32(r, make([]float32, 65)); err == nil {
		t.Error("oversized copy accepted")
	}
}

func TestBlockAliasing(t *testing.T) {
	d := New()
	r, _ := d.Malloc("blk", 256, false, 0)
	b, err := d.Block(r.Addr + 130) // inside second block
	if err != nil {
		t.Fatal(err)
	}
	b[0] = 0xAB
	got, _ := d.Bytes(r.Addr+compress.BlockSize, 1)
	if got[0] != 0xAB {
		t.Error("Block does not alias device memory")
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	d := New()
	r, _ := d.Malloc("only", 128, false, 0)
	if _, err := d.Bytes(r.End(), 1); err == nil {
		t.Error("read past end accepted")
	}
	if _, err := d.Bytes(0, 1); err == nil {
		t.Error("read at null page accepted")
	}
}

func TestRegionOf(t *testing.T) {
	d := New()
	a, _ := d.Malloc("a", 128, false, 0)
	b, _ := d.Malloc("b", 128, true, 8)
	if r, ok := d.RegionOf(a.Addr); !ok || r.Name != "a" {
		t.Errorf("RegionOf(a) = %+v, %v", r, ok)
	}
	if r, ok := d.RegionOf(b.Addr + 64); !ok || r.Name != "b" {
		t.Errorf("RegionOf(b+64) = %+v, %v", r, ok)
	}
	if _, ok := d.RegionOf(b.End()); ok {
		t.Error("RegionOf past end returned a region")
	}
}

func TestBlockAddrs(t *testing.T) {
	d := New()
	r, _ := d.Malloc("r", 3*compress.BlockSize, false, 0)
	var n int
	r.BlockAddrs(func(addr uint64) {
		if addr%compress.BlockSize != 0 {
			t.Errorf("unaligned block addr %#x", addr)
		}
		n++
	})
	if n != 3 {
		t.Errorf("visited %d blocks, want 3", n)
	}
	if r.Blocks() != 3 {
		t.Errorf("Blocks() = %d", r.Blocks())
	}
}

func TestMallocNeverOverlaps(t *testing.T) {
	d := New()
	type span struct{ lo, hi uint64 }
	var spans []span
	seed := uint64(9)
	next := func() uint64 { seed ^= seed << 13; seed ^= seed >> 7; seed ^= seed << 17; return seed }
	for i := 0; i < 200; i++ {
		size := int(next()%8192) + 1
		r, err := d.Malloc("r", size, next()%2 == 0, 16)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range spans {
			if r.Addr < s.hi && s.lo < r.End() {
				t.Fatalf("region [%#x,%#x) overlaps [%#x,%#x)", r.Addr, r.End(), s.lo, s.hi)
			}
		}
		spans = append(spans, span{r.Addr, r.End()})
	}
}
