// Package device models the GPU's global memory and the paper's programming
// model for safe approximation: an extended cudaMalloc that tags a memory
// region as safe-to-approximate with a per-region lossy threshold (§IV-C):
//
//	cudaMalloc(void** devPtr, size_t size, bool safeToApprox, size_t threshold)
//
// The simulator uses the region table to decide which loads may be served
// from lossily compressed blocks, exactly as the paper's modified gpgpu-sim
// uses the address and size returned by the extended cudaMalloc.
package device

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/compress"
)

// Region is one device allocation.
type Region struct {
	Name         string
	Addr         uint64
	Size         int
	SafeToApprox bool
	// ThresholdBytes is the per-region lossy threshold the programmer
	// passes to the extended cudaMalloc; 0 means use the global default.
	ThresholdBytes int
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Addr + uint64(r.Size) }

// Blocks returns the number of 128-byte blocks the region spans.
func (r Region) Blocks() int { return (r.Size + compress.BlockSize - 1) / compress.BlockSize }

// Device is a GPU with a flat global memory. All allocations are block
// aligned; memory is zero-initialised like cudaMalloc'd memory after
// cudaMemset.
type Device struct {
	mem     []byte
	regions []Region
	next    uint64
}

// baseAddr keeps address 0 unused so that 0 can mean "no address".
const baseAddr = uint64(compress.BlockSize)

// New returns an empty device.
func New() *Device {
	return &Device{next: baseAddr}
}

// Malloc allocates a block-aligned region, modelling the paper's extended
// cudaMalloc. thresholdBytes is only meaningful when safeToApprox is set.
func (d *Device) Malloc(name string, size int, safeToApprox bool, thresholdBytes int) (Region, error) {
	if size <= 0 {
		return Region{}, fmt.Errorf("device: allocation %q has size %d", name, size)
	}
	aligned := (size + compress.BlockSize - 1) / compress.BlockSize * compress.BlockSize
	r := Region{
		Name:           name,
		Addr:           d.next,
		Size:           aligned,
		SafeToApprox:   safeToApprox,
		ThresholdBytes: thresholdBytes,
	}
	d.next += uint64(aligned)
	need := int(d.next - baseAddr)
	if need > len(d.mem) {
		grown := make([]byte, need)
		copy(grown, d.mem)
		d.mem = grown
	}
	d.regions = append(d.regions, r)
	return r, nil
}

// Regions returns all allocations in address order.
func (d *Device) Regions() []Region { return d.regions }

// RegionOf returns the region containing addr.
func (d *Device) RegionOf(addr uint64) (Region, bool) {
	for _, r := range d.regions {
		if addr >= r.Addr && addr < r.End() {
			return r, true
		}
	}
	return Region{}, false
}

// SafeToApprox reports whether addr lies in a safe-to-approximate region —
// the load classification the paper derives from the extended cudaMalloc.
func (d *Device) SafeToApprox(addr uint64) bool {
	r, ok := d.RegionOf(addr)
	return ok && r.SafeToApprox
}

// Footprint returns the total allocated bytes.
func (d *Device) Footprint() int { return int(d.next - baseAddr) }

func (d *Device) index(addr uint64, n int) (int, error) {
	if addr < baseAddr || addr+uint64(n) > d.next {
		return 0, fmt.Errorf("device: access [%#x, %#x) outside allocated memory", addr, addr+uint64(n))
	}
	return int(addr - baseAddr), nil
}

// Block returns the 128-byte block containing addr, aliasing device memory.
func (d *Device) Block(addr uint64) ([]byte, error) {
	blockAddr := addr &^ uint64(compress.BlockSize-1)
	i, err := d.index(blockAddr, compress.BlockSize)
	if err != nil {
		return nil, err
	}
	return d.mem[i : i+compress.BlockSize], nil
}

// Bytes returns a slice aliasing device memory for [addr, addr+n).
func (d *Device) Bytes(addr uint64, n int) ([]byte, error) {
	i, err := d.index(addr, n)
	if err != nil {
		return nil, err
	}
	return d.mem[i : i+n], nil
}

// BlockAddrs calls fn with each block address of the region.
func (r Region) BlockAddrs(fn func(addr uint64)) {
	for a := r.Addr; a < r.End(); a += compress.BlockSize {
		fn(a)
	}
}

// Float32 reads a float32 at addr.
func (d *Device) Float32(addr uint64) float32 {
	i, err := d.index(addr, 4)
	if err != nil {
		panic(err)
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(d.mem[i:]))
}

// SetFloat32 writes a float32 at addr.
func (d *Device) SetFloat32(addr uint64, v float32) {
	i, err := d.index(addr, 4)
	if err != nil {
		panic(err)
	}
	binary.LittleEndian.PutUint32(d.mem[i:], math.Float32bits(v))
}

// Uint32 reads a uint32 at addr.
func (d *Device) Uint32(addr uint64) uint32 {
	i, err := d.index(addr, 4)
	if err != nil {
		panic(err)
	}
	return binary.LittleEndian.Uint32(d.mem[i:])
}

// SetUint32 writes a uint32 at addr.
func (d *Device) SetUint32(addr uint64, v uint32) {
	i, err := d.index(addr, 4)
	if err != nil {
		panic(err)
	}
	binary.LittleEndian.PutUint32(d.mem[i:], v)
}

// CopyFloats32 copies host values into the region (cudaMemcpyHostToDevice).
func (d *Device) CopyFloats32(r Region, vals []float32) error {
	if len(vals)*4 > r.Size {
		return fmt.Errorf("device: %d floats exceed region %q (%d bytes)", len(vals), r.Name, r.Size)
	}
	b, err := d.Bytes(r.Addr, len(vals)*4)
	if err != nil {
		return err
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
	}
	return nil
}

// ReadFloats32 copies the region's first n floats back to the host
// (cudaMemcpyDeviceToHost).
func (d *Device) ReadFloats32(r Region, n int) ([]float32, error) {
	if n*4 > r.Size {
		return nil, fmt.Errorf("device: %d floats exceed region %q", n, r.Name)
	}
	b, err := d.Bytes(r.Addr, n*4)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// F32 is a typed view over a region, the device-side array a kernel indexes.
type F32 struct {
	d *Device
	r Region
}

// F32View wraps a region as a float32 array.
func (d *Device) F32View(r Region) F32 { return F32{d: d, r: r} }

// Len returns the number of float32 elements.
func (v F32) Len() int { return v.r.Size / 4 }

// At returns element i.
func (v F32) At(i int) float32 { return v.d.Float32(v.r.Addr + uint64(i)*4) }

// Set writes element i.
func (v F32) Set(i int, x float32) { v.d.SetFloat32(v.r.Addr+uint64(i)*4, x) }

// Addr returns the device address of element i.
func (v F32) Addr(i int) uint64 { return v.r.Addr + uint64(i)*4 }

// Region returns the backing region.
func (v F32) Region() Region { return v.r }
