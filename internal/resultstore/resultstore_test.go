package resultstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTestStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Fingerprint == "" {
		opts.Fingerprint = "test-fp"
	}
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestKeyCanonicalisation pins the addressing contract: assembly order
// never matters, every field of the material matters, and so do the kind
// and the code fingerprint.
func TestKeyCanonicalisation(t *testing.T) {
	base := Material{
		"workload":  "tp-0123",
		"codec":     "tslc-opt",
		"mag":       32,
		"threshold": 128,
		"workers":   4,
	}
	permuted := Material{}
	for _, k := range []string{"workers", "threshold", "mag", "codec", "workload"} {
		permuted[k] = base[k]
	}
	k1, err := NewKey("fp", "cell", base)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := NewKey("fp", "cell", permuted)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("permuted-but-equal material hashes differ: %s vs %s", k1, k2)
	}

	change := func(field string, v any) Material {
		m := Material{}
		for k, val := range base {
			m[k] = val
		}
		m[field] = v
		return m
	}
	variants := map[string]Material{
		"mag":        change("mag", 64),
		"threshold":  change("threshold", 256),
		"workers":    change("workers", 1),
		"codec name": change("codec", "e2mc"),
		"workload":   change("workload", "nn-4567"),
		"extra knob": change("new-field", true),
	}
	seen := map[Key]string{k1: "base"}
	for name, m := range variants {
		k, err := NewKey("fp", "cell", m)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("changing %s collides with %s", name, prev)
		}
		seen[k] = name
	}
	// Kind and fingerprint (which carries the schema/code generation) are
	// part of the address too.
	if k, _ := NewKey("fp", "comp", base); k == k1 {
		t.Error("kind does not affect the key")
	}
	if k, _ := NewKey("fp2", "cell", base); k == k1 {
		t.Error("code fingerprint does not affect the key")
	}
	// Nested structures hash by content as well.
	type cfg struct{ A, B int }
	n1, _ := NewKey("fp", "cell", Material{"cfg": cfg{1, 2}})
	n2, _ := NewKey("fp", "cell", Material{"cfg": cfg{1, 3}})
	if n1 == n2 {
		t.Error("nested struct field change does not affect the key")
	}
}

func TestStoreRoundTripAndStats(t *testing.T) {
	s := openTestStore(t, Options{})
	key, err := s.Key("cell", Material{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		Name string
		Vals []float64
	}
	want := rec{"tp", []float64{1.5, -0.25, 3e-300}}

	var missed rec
	if ok, err := s.GetJSON(key, &missed); err != nil || ok {
		t.Fatalf("get before put: ok=%v err=%v", ok, err)
	}
	if err := s.PutJSON(key, "cell", want); err != nil {
		t.Fatal(err)
	}
	var got rec
	if ok, err := s.GetJSON(key, &got); err != nil || !ok {
		t.Fatalf("get after put: ok=%v err=%v", ok, err)
	} else if got.Name != want.Name || len(got.Vals) != 3 || got.Vals[2] != want.Vals[2] {
		t.Errorf("round trip mangled record: %+v", got)
	}

	gkey, _ := s.Key("golden", Material{"w": "tp"})
	golden := []float64{1, 2.5, -7}
	if err := s.PutGob(gkey, "golden", golden); err != nil {
		t.Fatal(err)
	}
	var gout []float64
	if ok, err := s.GetGob(gkey, &gout); err != nil || !ok {
		t.Fatalf("gob get: ok=%v err=%v", ok, err)
	}
	for i := range golden {
		if gout[i] != golden[i] {
			t.Errorf("gob round trip: %v != %v", gout, golden)
		}
	}

	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 2 || st.BadRecords != 0 {
		t.Errorf("stats = %+v, want 2 hits, 1 miss, 2 puts", st)
	}
}

// TestCorruptRecordsAreMissesNotTrusted flips, truncates and garbles record
// files; every form of damage must surface as a recomputable miss, never as
// decoded data.
func TestCorruptRecordsAreMissesNotTrusted(t *testing.T) {
	payload := []byte(`{"Name":"good"}`)
	corruptions := map[string]func([]byte) []byte{
		"payload bit flip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-2] ^= 0x40
			return c
		},
		"truncated payload": func(b []byte) []byte { return b[:len(b)-4] },
		"truncated header":  func(b []byte) []byte { return b[:8] },
		"no header line":    func([]byte) []byte { return []byte("not a record at all") },
		"empty file":        func([]byte) []byte { return nil },
		"wrong schema": func(b []byte) []byte {
			cur := []byte(fmt.Sprintf(`{"v":%d`, SchemaVersion))
			return bytes.Replace(b, cur, []byte(`{"v":9999`), 1)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s := openTestStore(t, Options{})
			key, _ := s.Key("cell", Material{"case": name})
			if err := s.PutBytes(key, "cell", "json", payload); err != nil {
				t.Fatal(err)
			}
			path := s.objectPath(key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o666); err != nil {
				t.Fatal(err)
			}
			var out struct{ Name string }
			ok, err := s.GetJSON(key, &out)
			if err != nil {
				t.Fatalf("corrupt record returned error instead of miss: %v", err)
			}
			if ok {
				t.Fatalf("corrupt record trusted: decoded %+v", out)
			}
			if st := s.Stats(); st.BadRecords != 1 {
				t.Errorf("BadRecords = %d, want 1", st.BadRecords)
			}
			if _, serr := os.Stat(path); !os.IsNotExist(serr) {
				t.Error("corrupt record file not deleted")
			}
			// The slot is rewritable and then readable again.
			if err := s.PutBytes(key, "cell", "json", payload); err != nil {
				t.Fatal(err)
			}
			if ok, err := s.GetJSON(key, &out); err != nil || !ok || out.Name != "good" {
				t.Fatalf("recompute-then-reread failed: ok=%v err=%v out=%+v", ok, err, out)
			}
		})
	}
}

// TestUndecodableJSONIsMiss covers schema drift: a valid record whose
// payload no longer decodes into the caller's type is a miss.
func TestUndecodableJSONIsMiss(t *testing.T) {
	s := openTestStore(t, Options{})
	key, _ := s.Key("cell", Material{})
	if err := s.PutBytes(key, "cell", "json", []byte(`{"Name": ["wrong","shape"]}`)); err != nil {
		t.Fatal(err)
	}
	var out struct{ Name string }
	if ok, err := s.GetJSON(key, &out); err != nil || ok {
		t.Fatalf("undecodable payload: ok=%v err=%v", ok, err)
	}
	// The counters must reflect that the caller will recompute: a decode
	// failure is a miss, never a hit (the warm-run acceptance check reads
	// exactly these numbers).
	if st := s.Stats(); st.Hits != 0 || st.Misses != 1 || st.BadRecords != 1 {
		t.Errorf("decode failure counted as hits=%d misses=%d bad=%d, want 0/1/1",
			st.Hits, st.Misses, st.BadRecords)
	}
}

func TestLRUGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fingerprint: "fp", MaxBytes: 600})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{'x'}, 100)
	var keys []Key
	for i := 0; i < 8; i++ {
		k, _ := s.Key("cell", Material{"i": i})
		keys = append(keys, k)
		if err := s.PutBytes(k, "cell", "bin", payload); err != nil {
			t.Fatal(err)
		}
	}
	// Records are ~180 bytes each; a 600-byte cap holds only the most
	// recent three. The early puts must be gone, the last must survive.
	var survivors int
	for _, k := range keys {
		if _, ok, err := s.GetBytes(k); err != nil {
			t.Fatal(err)
		} else if ok {
			survivors++
		}
	}
	if survivors == 0 || survivors >= 8 {
		t.Errorf("LRU GC kept %d of 8 records under a 600-byte cap", survivors)
	}
	if _, ok, _ := s.GetBytes(keys[len(keys)-1]); !ok {
		t.Error("most recent record was evicted")
	}
	if _, ok, _ := s.GetBytes(keys[0]); ok {
		t.Error("least recent record survived past the cap")
	}
}

func TestClear(t *testing.T) {
	s := openTestStore(t, Options{})
	k, _ := s.Key("cell", Material{})
	if err := s.PutBytes(k, "cell", "bin", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.GetBytes(k); err != nil || ok {
		t.Fatalf("record survived Clear: ok=%v err=%v", ok, err)
	}
	if err := s.PutBytes(k, "cell", "bin", []byte("data")); err != nil {
		t.Fatalf("store unusable after Clear: %v", err)
	}
}

// TestReconcileRebuildsIndex deletes the index out from under a store; a
// reopened store must adopt the orphaned objects and keep serving them.
func TestReconcileRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	k, _ := s1.Key("cell", Material{"i": 1})
	if err := s1.PutBytes(k, "cell", "bin", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, err := s2.GetBytes(k); err != nil || !ok || string(got) != "payload" {
		t.Fatalf("orphaned object lost after reindex: ok=%v err=%v", ok, err)
	}
}

// TestConcurrentStoresShareDirectory races two Store instances (standing in
// for two Runner processes) over one directory: mixed same-key and
// distinct-key traffic must never corrupt the index or a record. Run under
// -race in CI.
func TestConcurrentStoresShareDirectory(t *testing.T) {
	dir := t.TempDir()
	open := func() *Store {
		s, err := Open(dir, Options{Fingerprint: "fp"})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := open(), open()
	const keys = 12
	payloadFor := func(i int) []byte { return []byte(fmt.Sprintf("payload-%d", i)) }

	var wg sync.WaitGroup
	errs := make(chan error, 4*keys)
	for _, s := range []*Store{a, b} {
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(s *Store, g int) {
				defer wg.Done()
				for i := 0; i < keys; i++ {
					k, err := s.Key("cell", Material{"i": i})
					if err != nil {
						errs <- err
						return
					}
					if err := s.PutBytes(k, "cell", "bin", payloadFor(i)); err != nil {
						errs <- err
						return
					}
					got, ok, err := s.GetBytes(k)
					if err != nil {
						errs <- err
						return
					}
					if ok && !bytes.Equal(got, payloadFor(i)) {
						errs <- fmt.Errorf("key %d read back %q", i, got)
						return
					}
				}
			}(s, g)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Afterwards every record is present, valid, and a fresh store (fresh
	// index load) agrees.
	c := open()
	for i := 0; i < keys; i++ {
		k, _ := c.Key("cell", Material{"i": i})
		got, ok, err := c.GetBytes(k)
		if err != nil || !ok || !bytes.Equal(got, payloadFor(i)) {
			t.Fatalf("key %d after concurrent writes: ok=%v err=%v got=%q", i, ok, err, got)
		}
	}
	if st := c.Stats(); st.BadRecords != 0 {
		t.Errorf("concurrent writes produced %d bad records", st.BadRecords)
	}
}
