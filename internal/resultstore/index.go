package resultstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// The index drives the LRU size-capped GC. It is advisory: the objects
// directory is the source of truth, and reconcile rebuilds missing or stale
// entries from it on Open (a writer that crashed between the object rename
// and the index update loses nothing but an LRU timestamp). All index
// mutations — and GC's deletes — happen under the store's lock file, which
// serialises them across goroutines and processes sharing the directory.

// indexEntry describes one record for eviction purposes.
type indexEntry struct {
	Size int64  `json:"size"`
	Kind string `json:"kind,omitempty"`
	Used int64  `json:"used"` // unix nanoseconds of last hit or put
}

// indexFile is the persisted index.
type indexFile struct {
	V       int                   `json:"v"`
	Entries map[string]indexEntry `json:"entries"`
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.json") }
func (s *Store) lockPath() string  { return filepath.Join(s.dir, "lock") }

// lock acquires the store's advisory lock file, returning the unlock
// function. The lock is a create-exclusive file holding a unique owner
// token (pid-seq-nanos-host), retried with backoff. A lock whose holder is
// provably gone is stolen — by renaming it to a unique name first, so
// exactly one of any number of racing stealers wins, and a holder whose
// lock was stolen cannot later delete the thief's lock: unlock only removes
// the file while it still carries the owner's token. Staleness is decided
// two ways:
//
//   - PID liveness: the token names the holder's pid and host; if the host
//     matches and that pid no longer exists, the holder crashed and the
//     lock is stolen immediately — a killed process must not wedge (or even
//     10-second-stall) every subsequent run sharing the store.
//   - mtime: for cross-host stores, unreadable tokens, or pid reuse, a lock
//     untouched for lockStaleAfter is presumed abandoned.
const (
	lockStaleAfter = 10 * time.Second
	lockRetryEvery = 2 * time.Millisecond
	lockGiveUp     = 30 * time.Second
)

var lockSeq atomic.Int64

// lockToken renders the owner token: pid, per-process sequence, wall-clock
// nanoseconds and hostname, newline-terminated.
func lockToken() string {
	host, _ := os.Hostname()
	return fmt.Sprintf("%d-%d-%d-%s\n", os.Getpid(), lockSeq.Add(1), time.Now().UnixNano(), host)
}

// parseLockToken extracts the holder pid and host from a lock file's
// contents. ok is false for foreign or pre-takeover token formats (those
// fall back to the mtime rule).
func parseLockToken(token string) (pid int, host string, ok bool) {
	fields := strings.SplitN(strings.TrimSuffix(token, "\n"), "-", 4)
	if len(fields) != 4 {
		return 0, "", false
	}
	pid, err := strconv.Atoi(fields[0])
	if err != nil || pid <= 0 {
		return 0, "", false
	}
	return pid, fields[3], true
}

// pidAlive reports whether a process with the given pid exists. Signal 0
// performs the existence check without delivering anything; EPERM means the
// process exists but is not ours — still alive.
func pidAlive(pid int) bool {
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = proc.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}

// staleLock decides whether the lock at path is abandoned, returning the
// reason for the takeover log.
func staleLock(path string) (reason string, stale bool) {
	if token, err := os.ReadFile(path); err == nil {
		if pid, host, ok := parseLockToken(string(token)); ok {
			if self, herr := os.Hostname(); herr == nil && host == self && !pidAlive(pid) {
				return fmt.Sprintf("holder pid %d is dead", pid), true
			}
		}
	}
	if fi, err := os.Stat(path); err == nil && time.Since(fi.ModTime()) > lockStaleAfter {
		return fmt.Sprintf("untouched for %v", time.Since(fi.ModTime()).Round(time.Second)), true
	}
	return "", false
}

func (s *Store) lock() (func(), error) {
	path := s.lockPath()
	token := lockToken()
	deadline := time.Now().Add(lockGiveUp)
	for {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o666)
		if err == nil {
			io.WriteString(f, token)
			f.Close()
			unlock := func() {
				if cur, rerr := os.ReadFile(path); rerr == nil && string(cur) == token {
					os.Remove(path)
				}
			}
			return unlock, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("resultstore: acquiring lock: %w", err)
		}
		if reason, stale := staleLock(path); stale {
			// Abandoned lock: move it aside and retry the create. Rename is
			// atomic, so concurrent stealers cannot delete each other's
			// freshly created locks — the losers' renames just fail.
			aside := fmt.Sprintf("%s.stale-%d-%d", path, os.Getpid(), lockSeq.Add(1))
			if os.Rename(path, aside) == nil {
				os.Remove(aside)
				s.logf("stale lock %s taken over (%s)", path, reason)
			}
			continue
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("resultstore: lock %s held too long", path)
		}
		time.Sleep(lockRetryEvery)
	}
}

// loadIndex reads the index, tolerating a missing or corrupt file (an empty
// index; reconcile or subsequent puts rebuild it).
func (s *Store) loadIndex() *indexFile {
	idx := &indexFile{V: SchemaVersion, Entries: make(map[string]indexEntry)}
	data, err := os.ReadFile(s.indexPath())
	if err != nil {
		return idx
	}
	var onDisk indexFile
	if json.Unmarshal(data, &onDisk) != nil || onDisk.V != SchemaVersion || onDisk.Entries == nil {
		return idx
	}
	return &onDisk
}

// saveIndex writes the index atomically. Callers hold the lock.
func (s *Store) saveIndex(idx *indexFile) error {
	data, err := json.MarshalIndent(idx, "", " ")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	return atomicWrite(s.indexPath(), append(data, '\n'))
}

// updateIndex applies fn to the index under the lock and persists it.
func (s *Store) updateIndex(fn func(*indexFile)) error {
	unlock, err := s.lock()
	if err != nil {
		return err
	}
	defer unlock()
	idx := s.loadIndex()
	fn(idx)
	return s.saveIndex(idx)
}

// indexPut records a fresh object (folding in any pending LRU refreshes)
// and evicts past the size cap.
func (s *Store) indexPut(k Key, kind string, size int64) error {
	pending := s.drainTouches()
	return s.updateIndex(func(idx *indexFile) {
		s.applyTouches(idx, pending)
		idx.Entries[k.Hex()] = indexEntry{Size: size, Kind: kind, Used: time.Now().UnixNano()}
		s.evict(idx)
	})
}

// touchFlushBatch bounds how many pending LRU refreshes accumulate before
// they are forced to disk.
const touchFlushBatch = 64

// touch queues a record's LRU-timestamp refresh after a hit. Touches are
// batched — flushed under one lock on the next Put or every
// touchFlushBatch hits — so a warm (read-only) run is not serialised on
// one index rewrite per hit and typically leaves the store untouched.
// Unflushed touches at process exit only cost LRU accuracy; the index is
// advisory.
func (s *Store) touch(k Key) {
	s.touchMu.Lock()
	if s.touched == nil {
		s.touched = make(map[string]int64)
	}
	s.touched[k.Hex()] = time.Now().UnixNano()
	flush := len(s.touched) >= touchFlushBatch
	s.touchMu.Unlock()
	if flush {
		// Best-effort: an unlockable or unwritable index only degrades
		// eviction order.
		pending := s.drainTouches()
		_ = s.updateIndex(func(idx *indexFile) { s.applyTouches(idx, pending) })
	}
}

// drainTouches takes the pending refreshes.
func (s *Store) drainTouches() map[string]int64 {
	s.touchMu.Lock()
	pending := s.touched
	s.touched = nil
	s.touchMu.Unlock()
	return pending
}

// applyTouches folds drained refreshes into the index. Callers hold the
// lock.
func (s *Store) applyTouches(idx *indexFile, pending map[string]int64) {
	for hex, used := range pending {
		e, ok := idx.Entries[hex]
		if !ok {
			// Object exists but predates the index (crash, external copy):
			// adopt it.
			fi, err := os.Stat(filepath.Join(s.dir, "objects", hex[:2], hex))
			if err != nil {
				continue
			}
			e = indexEntry{Size: fi.Size()}
		}
		if used > e.Used {
			e.Used = used
		}
		idx.Entries[hex] = e
	}
}

// evict deletes least-recently-used objects until the total size fits the
// cap. Callers hold the lock.
func (s *Store) evict(idx *indexFile) {
	if s.maxBytes < 0 {
		return
	}
	var total int64
	for _, e := range idx.Entries {
		total += e.Size
	}
	if total <= s.maxBytes {
		return
	}
	type kv struct {
		hex string
		e   indexEntry
	}
	order := make([]kv, 0, len(idx.Entries))
	for h, e := range idx.Entries {
		order = append(order, kv{h, e})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].e.Used != order[j].e.Used {
			return order[i].e.Used < order[j].e.Used
		}
		return order[i].hex < order[j].hex
	})
	for _, it := range order {
		if total <= s.maxBytes {
			break
		}
		os.Remove(filepath.Join(s.dir, "objects", it.hex[:2], it.hex))
		total -= it.e.Size
		delete(idx.Entries, it.hex)
	}
}

// reconcile aligns the index with the objects directory on Open: entries
// whose object vanished are dropped, objects missing from the index are
// adopted with their mtime as the LRU timestamp, and the size cap is
// enforced.
func (s *Store) reconcile() error {
	return s.updateIndex(func(idx *indexFile) {
		onDisk := make(map[string]indexEntry)
		root := filepath.Join(s.dir, "objects")
		filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
			if err != nil || fi.IsDir() || len(fi.Name()) != 64 {
				return nil
			}
			e := indexEntry{Size: fi.Size(), Used: fi.ModTime().UnixNano()}
			if prev, ok := idx.Entries[fi.Name()]; ok {
				e.Kind = prev.Kind
				if prev.Used > e.Used {
					e.Used = prev.Used
				}
			}
			onDisk[fi.Name()] = e
			return nil
		})
		idx.Entries = onDisk
		s.evict(idx)
	})
}
