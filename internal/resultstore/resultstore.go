// Package resultstore is a disk-persisted, content-addressed cache for
// expensive experiment computations (golden runs, trained entropy tables,
// evaluation-cell results). Records are addressed by a SHA-256 key over a
// canonical encoding of everything that determines the value — workload
// fingerprint, configuration, simulator config, store schema version and a
// code fingerprint — so a populated store turns a repeated `slcbench`
// invocation into pure disk reads with bitwise-identical output.
//
// Layout of a store directory:
//
//	objects/ab/abcdef...        one record per key (header line + payload)
//	index.json                  key → {size, kind, last-used} (rebuildable)
//	lock                        advisory lock for index updates and GC
//
// Records carry a payload checksum; corrupt or truncated files are detected
// on read, deleted, and reported as misses so callers recompute instead of
// trusting bad data. Writes are atomic (temp file + rename), which makes
// concurrent writers of the same key safe: they produce identical bytes and
// the last rename wins. The index is advisory — it only drives the LRU
// size-capped GC and is reconciled with the objects directory on Open.
package resultstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// DefaultMaxBytes is the default LRU size cap of a store (1 GiB).
const DefaultMaxBytes = 1 << 30

// Options configures Open.
type Options struct {
	// Fingerprint binds every key to the code that computes the values; an
	// empty string selects Fingerprint().
	Fingerprint string

	// MaxBytes caps the total object size; the least-recently-used records
	// are evicted past it. Zero selects DefaultMaxBytes, negative disables
	// the cap.
	MaxBytes int64

	// Logf, when set, receives operational notices — most importantly
	// stale-lock takeovers (a crashed holder's advisory lock being stolen).
	// Calls may come from any goroutine; the provider serialises.
	Logf func(format string, args ...interface{})
}

// Store is a content-addressed result cache rooted at one directory. It is
// safe for concurrent use by multiple goroutines and multiple processes
// sharing the directory.
type Store struct {
	dir         string
	fingerprint string
	maxBytes    int64
	logf        func(format string, args ...interface{})

	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
	bad    atomic.Int64

	// touched batches pending LRU-timestamp refreshes (see touch in
	// index.go) so read hits do not rewrite the index one by one.
	touchMu sync.Mutex
	touched map[string]int64
}

// Stats counts store traffic since Open. BadRecords counts corrupt or
// truncated files detected (and deleted) on read; each also counts as a
// miss.
type Stats struct {
	Hits       int64
	Misses     int64
	Puts       int64
	BadRecords int64
}

// Open opens (creating if needed) the store rooted at dir and reconciles
// the index with the objects on disk.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultstore: empty store directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o777); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := &Store{
		dir:         dir,
		fingerprint: opts.Fingerprint,
		maxBytes:    opts.MaxBytes,
		logf:        opts.Logf,
	}
	if s.logf == nil {
		s.logf = func(string, ...interface{}) {}
	}
	if s.fingerprint == "" {
		s.fingerprint = Fingerprint()
	}
	if s.maxBytes == 0 {
		s.maxBytes = DefaultMaxBytes
	}
	if err := s.reconcile(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// CodeFingerprint returns the fingerprint mixed into this store's keys.
func (s *Store) CodeFingerprint() string { return s.fingerprint }

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		Puts:       s.puts.Load(),
		BadRecords: s.bad.Load(),
	}
}

// Key derives the content address of a record of the given kind under this
// store's fingerprint and schema version.
func (s *Store) Key(kind string, m Material) (Key, error) {
	return NewKey(s.fingerprint, kind, m)
}

// objectPath returns the on-disk path of a key's record.
func (s *Store) objectPath(k Key) string {
	h := k.Hex()
	return filepath.Join(s.dir, "objects", h[:2], h)
}

// recordHeader is the first line of every record file.
type recordHeader struct {
	V      int    `json:"v"`
	Kind   string `json:"kind"`
	Enc    string `json:"enc"` // payload encoding: "json", "gob", "bin"
	Len    int    `json:"len"`
	SHA256 string `json:"sha256"`
}

// GetBytes reads the raw payload of a record. A missing, corrupt or
// truncated record is a miss (corrupt files are deleted so the next Put
// rewrites them); ok reports whether a valid payload was found.
func (s *Store) GetBytes(k Key) (payload []byte, ok bool, err error) {
	payload, _, ok, err = s.get(k)
	if ok {
		s.hit(k)
	}
	return payload, ok, err
}

// get fetches and validates a record without counting a hit: the typed
// getters only count once their decode succeeds, so the hit/miss counters
// mean exactly "the caller did not recompute".
func (s *Store) get(k Key) ([]byte, recordHeader, bool, error) {
	data, err := os.ReadFile(s.objectPath(k))
	if err != nil {
		s.misses.Add(1)
		if os.IsNotExist(err) {
			return nil, recordHeader{}, false, nil
		}
		return nil, recordHeader{}, false, fmt.Errorf("resultstore: reading %s: %w", k, err)
	}
	payload, hdr, err := decodeRecord(data)
	if err != nil {
		// Corrupt or truncated: drop the file and report a miss; the caller
		// recomputes and Put rewrites a good record.
		s.bad.Add(1)
		s.misses.Add(1)
		os.Remove(s.objectPath(k))
		return nil, recordHeader{}, false, nil
	}
	return payload, hdr, true, nil
}

// hit records a successful, fully decoded read.
func (s *Store) hit(k Key) {
	s.hits.Add(1)
	s.touch(k)
}

// decodeFailed converts a checksum-valid but undecodable record (schema
// drift under the current types) into a miss: the file is dropped so the
// caller's recompute rewrites it.
func (s *Store) decodeFailed(k Key) {
	s.bad.Add(1)
	s.misses.Add(1)
	os.Remove(s.objectPath(k))
}

// decodeRecord splits and validates one record file.
func decodeRecord(data []byte) ([]byte, recordHeader, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, recordHeader{}, fmt.Errorf("resultstore: record has no header line")
	}
	var hdr recordHeader
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return nil, recordHeader{}, fmt.Errorf("resultstore: bad record header: %w", err)
	}
	if hdr.V != SchemaVersion {
		return nil, recordHeader{}, fmt.Errorf("resultstore: record schema v%d, want v%d", hdr.V, SchemaVersion)
	}
	payload := data[nl+1:]
	if len(payload) != hdr.Len {
		return nil, recordHeader{}, fmt.Errorf("resultstore: truncated record: %d payload bytes, header says %d", len(payload), hdr.Len)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != hdr.SHA256 {
		return nil, recordHeader{}, fmt.Errorf("resultstore: payload checksum mismatch")
	}
	return payload, hdr, nil
}

// PutBytes writes a record atomically and updates the index (evicting LRU
// records past the size cap). kind and enc label the record for inspection;
// they do not affect addressing — the key does.
func (s *Store) PutBytes(k Key, kind, enc string, payload []byte) error {
	hdr := recordHeader{
		V:      SchemaVersion,
		Kind:   kind,
		Enc:    enc,
		Len:    len(payload),
		SHA256: func() string { sum := sha256.Sum256(payload); return hex.EncodeToString(sum[:]) }(),
	}
	head, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	record := make([]byte, 0, len(head)+1+len(payload))
	record = append(record, head...)
	record = append(record, '\n')
	record = append(record, payload...)

	path := s.objectPath(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := atomicWrite(path, record); err != nil {
		return err
	}
	s.puts.Add(1)
	return s.indexPut(k, kind, int64(len(record)))
}

// atomicWrite writes data to path via a temp file + rename, so readers only
// ever observe complete records and concurrent writers of identical content
// are safe.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("resultstore: %w", err)
	}
	return nil
}

// GetJSON decodes a JSON record into v; ok reports a valid hit.
func (s *Store) GetJSON(k Key, v any) (ok bool, err error) {
	payload, _, ok, err := s.get(k)
	if err != nil || !ok {
		return false, err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		s.decodeFailed(k)
		return false, nil
	}
	s.hit(k)
	return true, nil
}

// PutJSON writes v as a JSON record.
func (s *Store) PutJSON(k Key, kind string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("resultstore: encoding %s record: %w", kind, err)
	}
	return s.PutBytes(k, kind, "json", payload)
}

// GetGob decodes a gob record into v (which must be a pointer); ok reports
// a valid hit. Gob preserves float64 values bitwise, which JSON formatting
// cannot guarantee for NaN/Inf, so golden outputs use it.
func (s *Store) GetGob(k Key, v any) (ok bool, err error) {
	payload, _, ok, err := s.get(k)
	if err != nil || !ok {
		return false, err
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		s.decodeFailed(k)
		return false, nil
	}
	s.hit(k)
	return true, nil
}

// PutGob writes v as a gob record.
func (s *Store) PutGob(k Key, kind string, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("resultstore: encoding %s record: %w", kind, err)
	}
	return s.PutBytes(k, kind, "gob", buf.Bytes())
}

// Clear removes every record and the index, leaving an empty, usable store.
func (s *Store) Clear() error {
	s.drainTouches() // pending LRU refreshes point at records about to go
	unlock, err := s.lock()
	if err != nil {
		return err
	}
	defer unlock()
	if err := os.RemoveAll(filepath.Join(s.dir, "objects")); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := os.Remove(s.indexPath()); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("resultstore: %w", err)
	}
	return os.MkdirAll(filepath.Join(s.dir, "objects"), 0o777)
}
