package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
)

// SchemaVersion is the store schema version, mixed into every key. Bump it
// whenever the record formats, the key material layout, or the semantics of
// any cached computation change: old records then address different keys and
// are recomputed (and eventually evicted by GC) instead of being trusted.
// Version 2: e2mc table records moved to wire format 2 (gap-array interval).
// Version 3: experiment cell key material gained the ErrorBound field (the
// sz error-bounded codec family).
const SchemaVersion = 3

// Key is the content address of one record: SHA-256 over a canonical
// encoding of the key material plus the store's schema version and code
// fingerprint.
type Key struct{ sum [sha256.Size]byte }

// Hex returns the lowercase hex form of the key (the on-disk object name).
func (k Key) Hex() string { return hex.EncodeToString(k.sum[:]) }

// String implements fmt.Stringer.
func (k Key) String() string { return k.Hex() }

// Material is the key material of one record: a flat map from field name to
// value. Values must be JSON-encodable; nested structs and maps are fine.
// The encoding is canonical — map keys are sorted, struct fields appear in
// declaration order — so two materials with equal contents hash equal no
// matter the order they were assembled in.
type Material map[string]any

// NewKey derives the content address for one record. kind namespaces the
// record type ("golden", "table", "cell", ...), fingerprint binds the key to
// the code that produced the value (see Fingerprint), and the schema version
// is always included.
func NewKey(fingerprint, kind string, m Material) (Key, error) {
	enc, err := canonicalJSON(m)
	if err != nil {
		return Key{}, fmt.Errorf("resultstore: encoding key material for %q: %w", kind, err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "slc-resultstore/v%d\x00%s\x00%s\x00", SchemaVersion, fingerprint, kind)
	h.Write(enc)
	var k Key
	h.Sum(k.sum[:0])
	return k, nil
}

// canonicalJSON encodes v deterministically: encoding/json sorts map keys
// and emits struct fields in declaration order, both stable for a given
// schema version. HTML escaping is irrelevant to hashing but kept default so
// the encoding matches what json.Marshal of the same value produces.
func canonicalJSON(v any) ([]byte, error) {
	return json.Marshal(v)
}

// Fingerprint derives the code fingerprint mixed into every key of a store
// opened without an explicit Options.Fingerprint. It digests the build
// information of the running binary: the main module version and checksum
// when stamped, the VCS revision and dirty flag when the binary was built
// from a checkout, and every dependency's version+sum. Binaries built from
// different code therefore address different keys.
//
// Test binaries and `go run` builds often carry no VCS stamp and a "(devel)"
// version; they fall back to a constant "dev" fingerprint. For those builds
// the schema version is the only code-level invalidation, so callers that
// need stronger guarantees (CI) should additionally key their cache on a
// source hash — see .github/workflows/ci.yml.
func Fingerprint() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var parts []string
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		parts = append(parts, "main="+bi.Main.Version+"+"+bi.Main.Sum)
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision", "vcs.modified":
			parts = append(parts, s.Key+"="+s.Value)
		}
	}
	for _, dep := range bi.Deps {
		parts = append(parts, "dep="+dep.Path+"@"+dep.Version+"+"+dep.Sum)
	}
	if len(parts) == 0 {
		return "dev"
	}
	sort.Strings(parts)
	sum := sha256.Sum256([]byte(strings.Join(parts, "\n")))
	return hex.EncodeToString(sum[:])[:16]
}
