package resultstore

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMain doubles as the lock-holder helper process: when the environment
// variable below names a store directory, the process acquires the store's
// advisory lock, reports readiness on stdout, and hangs until killed —
// simulating a crashed holder for TestStaleLockDeadHolderTakeover.
func TestMain(m *testing.M) {
	if dir := os.Getenv("RESULTSTORE_HOLD_LOCK_DIR"); dir != "" {
		holdLock(dir)
		return
	}
	os.Exit(m.Run())
}

// holdLock is the helper-process body: take the lock, say so, never let go.
func holdLock(dir string) {
	s := &Store{dir: dir, logf: func(string, ...interface{}) {}}
	if _, err := s.lock(); err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	fmt.Println("LOCKED")
	select {} // hang until SIGKILL
}

// startDeadLockHolder spawns the helper, waits for it to hold dir's lock,
// then SIGKILLs it — leaving a fresh-mtime lock file whose owner is gone.
func startDeadLockHolder(t *testing.T, dir string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "RESULTSTORE_HOLD_LOCK_DIR="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := out.Read(buf)
	if err != nil || !strings.HasPrefix(string(buf[:n]), "LOCKED") {
		cmd.Process.Kill()
		t.Fatalf("lock holder did not report LOCKED: %q, %v", buf[:n], err)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	if _, err := os.Stat(filepath.Join(dir, "lock")); err != nil {
		t.Fatalf("killed holder left no lock file: %v", err)
	}
}

// TestStaleLockDeadHolderTakeover is the crashed-lock-holder regression
// test: a SIGKILLed process leaves the advisory lock behind with a fresh
// mtime, and every subsequent store operation used to stall the full
// 10-second mtime-staleness window (per lock acquisition!) before stealing
// it. PID liveness must detect the dead holder and take the lock over
// immediately, logging the takeover.
func TestStaleLockDeadHolderTakeover(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o777); err != nil {
		t.Fatal(err)
	}
	startDeadLockHolder(t, dir)

	var logMu sync.Mutex
	var logged []string
	opts := Options{Logf: func(format string, args ...interface{}) {
		logMu.Lock()
		defer logMu.Unlock()
		logged = append(logged, fmt.Sprintf(format, args...))
	}}

	start := time.Now()
	s, err := Open(dir, opts) // Open reconciles, which needs the lock
	if err != nil {
		t.Fatalf("Open after dead holder: %v", err)
	}
	key, err := s.Key("kind", Material{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutBytes(key, "kind", "bin", []byte("payload")); err != nil {
		t.Fatalf("PutBytes after dead holder: %v", err)
	}
	// The mtime window alone is 10s per lock acquisition; PID liveness must
	// recover far faster than a single window.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("recovery from dead lock holder took %v, want well under the 10s mtime window", elapsed)
	}

	logMu.Lock()
	defer logMu.Unlock()
	found := false
	for _, line := range logged {
		if strings.Contains(line, "stale lock") && strings.Contains(line, "dead") {
			found = true
		}
	}
	if !found {
		t.Fatalf("takeover was not logged; log lines: %q", logged)
	}

	if _, hit, err := s.GetBytes(key); err != nil || !hit {
		t.Fatalf("record written after takeover not readable: hit=%v err=%v", hit, err)
	}
}

// TestStaleLockLiveHolderIsRespected pins the other side: a lock whose
// holder is alive (this process) and whose mtime is fresh must NOT be
// stolen.
func TestStaleLockLiveHolderIsRespected(t *testing.T) {
	dir := t.TempDir()
	s := &Store{dir: dir, logf: func(string, ...interface{}) {}}
	unlock, err := s.lock()
	if err != nil {
		t.Fatal(err)
	}
	defer unlock()
	if reason, stale := staleLock(s.lockPath()); stale {
		t.Fatalf("live holder's lock reported stale: %s", reason)
	}
}

// TestParseLockToken pins the token wire format, including rejection of
// malformed and legacy three-field tokens (those fall back to mtime).
func TestParseLockToken(t *testing.T) {
	host, _ := os.Hostname()
	pid, gotHost, ok := parseLockToken(fmt.Sprintf("%d-7-123456789-%s\n", os.Getpid(), host))
	if !ok || pid != os.Getpid() || gotHost != host {
		t.Fatalf("parseLockToken = (%d, %q, %v)", pid, gotHost, ok)
	}
	for _, bad := range []string{"", "\n", "1-2-3\n", "x-2-3-host\n", "-1-2-3-host\n", "0-2-3-host\n"} {
		if _, _, ok := parseLockToken(bad); ok {
			t.Errorf("parseLockToken(%q) accepted", bad)
		}
	}
}
