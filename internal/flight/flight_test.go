package flight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoComputesOnce(t *testing.T) {
	var g Group[int]
	var calls atomic.Int64
	const workers = 16
	var wg sync.WaitGroup
	results := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := g.Do("k", func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("worker %d got %d, want 42", i, v)
		}
	}
}

func TestDoMemoisesErrors(t *testing.T) {
	var g Group[int]
	var calls atomic.Int64
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		_, err := g.Do("k", func() (int, error) {
			calls.Add(1)
			return 0, boom
		})
		if err != boom {
			t.Fatalf("call %d: err = %v, want boom", i, err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
}

func TestDoDistinctKeys(t *testing.T) {
	var g Group[string]
	a, _ := g.Do("a", func() (string, error) { return "A", nil })
	b, _ := g.Do("b", func() (string, error) { return "B", nil })
	if a != "A" || b != "B" {
		t.Fatalf("got %q, %q", a, b)
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
}

// TestDoPanicReleasesWaiters pins the panic contract: a panicking fn must
// not leave concurrent or future requesters blocked, and the key resolves to
// an error afterwards.
func TestDoPanicReleasesWaiters(t *testing.T) {
	var g Group[int]
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		g.Do("k", func() (int, error) { panic("kaboom") })
	}()
	if _, err := g.Do("k", func() (int, error) { return 1, nil }); err == nil {
		t.Fatal("post-panic Do returned nil error")
	}
}

func TestCached(t *testing.T) {
	var g Group[int]
	if _, _, ok := g.Cached("k"); ok {
		t.Fatal("Cached reported an unrequested key")
	}
	g.Do("k", func() (int, error) { return 7, nil })
	v, err, ok := g.Cached("k")
	if !ok || err != nil || v != 7 {
		t.Fatalf("Cached = (%d, %v, %v), want (7, nil, true)", v, err, ok)
	}
}
