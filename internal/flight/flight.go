// Package flight provides keyed singleflight memoisation: concurrent
// requests for the same key compute the value exactly once while the rest
// wait, and the computed value (or error) is retained for every later
// request. It is the concurrency backbone shared by the experiment Runner's
// golden/table/result memos and the serving tier's builder caches.
package flight

import (
	"fmt"
	"sync"
)

// call is one singleflight slot: the first requester computes, concurrent
// requesters wait on done and read the shared value.
type call[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Group memoises keyed computations with singleflight semantics. The zero
// value is ready to use.
type Group[T any] struct {
	mu sync.Mutex
	m  map[string]*call[T]
}

// Do returns the memoised value for key, computing it with fn exactly once
// no matter how many goroutines ask concurrently.
func (g *Group[T]) Do(key string, fn func() (T, error)) (T, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call[T])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &call[T]{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()
	// done must close even if fn panics (the pipeline panics on corrupted
	// round trips): a recovered panic higher up must not leave waiters — or
	// any future requester of this key — blocked forever.
	defer close(c.done)
	defer func() {
		if r := recover(); r != nil {
			c.err = fmt.Errorf("flight: panic computing %s: %v", key, r)
			panic(r)
		}
	}()
	c.val, c.err = fn()
	return c.val, c.err
}

// Cached returns the completed value for key without computing anything:
// ok reports whether a computation for key has finished (with any outcome).
func (g *Group[T]) Cached(key string) (val T, err error, ok bool) {
	g.mu.Lock()
	c, present := g.m[key]
	g.mu.Unlock()
	if !present {
		return val, nil, false
	}
	select {
	case <-c.done:
		return c.val, c.err, true
	default:
		return val, nil, false
	}
}

// Len returns the number of keys ever requested (completed or in flight).
func (g *Group[T]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
