// Command slcsim runs one benchmark under one compression configuration and
// prints the full measurement: compression statistics, timing, traffic,
// energy and application error.
//
// Usage:
//
//	slcsim -bench NN -codec tslc-opt -mag 32 -threshold 16
//	slcsim -bench DCT -codec e2mc -parallel 0
//	slcsim -bench TP -codec lz4b
//	slcsim -list
//	slcsim -list-codecs
//
// The codec is selected by its registry name (compress.Names); an unknown
// name fails with the available set. That set includes the post-paper
// families registered through the same mechanism (lz4b, zcd — see the
// README's codec table); they need no special flags.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/compress"
	"repro/internal/experiments"
	"repro/internal/storeflag"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slcsim: ")
	var (
		bench     = flag.String("bench", "", "benchmark name (see -list)")
		codec     = flag.String("codec", "tslc-opt", "codec registry name (see -list-codecs)")
		magBytes  = flag.Int("mag", 32, "memory access granularity in bytes (16, 32, 64)")
		threshold = flag.Int("threshold", 16, "lossy threshold in bytes (lossy codecs only)")
		parallel  = flag.Int("parallel", 1, "worker goroutines for block compression (0 = all cores)")
		simw      = flag.Int("simworkers", 1, "worker goroutines for the sharded timing simulator (0 = all cores, 1 = serial engine); results are identical either way")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		listCodec = flag.Bool("list-codecs", false, "list registered codecs and exit")
		verbose   = flag.Bool("v", false, "log progress")
		store     = storeflag.Register()
	)
	flag.Parse()

	if *list {
		for _, w := range workloads.Registry() {
			in := w.Info()
			fmt.Printf("%-6s %-28s %-16s %s, %d approx regions\n",
				in.Name, in.Short, in.Input, in.Metric, in.AR)
		}
		return
	}
	if *listCodec {
		fmt.Println(strings.Join(compress.Names(), "\n"))
		return
	}
	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	w, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := experiments.NamedConfig(*codec, compress.MAG(*magBytes), *threshold*8)
	if err != nil {
		log.Fatal(err)
	}
	r := experiments.NewRunner()
	r.SyncWorkers = experiments.Workers(*parallel)
	r.SimWorkers = experiments.Workers(*simw)
	if *verbose {
		r.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  ..", s) }
	}
	if _, err := store.Attach(r); err != nil {
		log.Fatal(err)
	}
	res, err := r.Run(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	base, err := r.Run(w, experiments.E2MCConfig(cfg.MAG))
	if err != nil {
		log.Fatal(err)
	}
	print(res, base)
}

func print(res, base experiments.RunResult) {
	fmt.Printf("%s × %s\n", res.Workload, res.Config.Name)
	fmt.Printf("  compression: raw CR %.2f, effective CR %.2f, %d blocks (%d lossy, %d raw)\n",
		res.Comp.RawRatio(), res.Comp.EffectiveRatio(),
		res.Comp.Blocks, res.Comp.LossyBlocks, res.Comp.Uncompressed)
	fmt.Printf("  error: %.4f%%\n", res.ErrorFrac*100)
	fmt.Printf("  time: %.1f µs (%.0f SM cycles)\n", res.Sim.TimeNs/1e3, res.Sim.SMCycles)
	fmt.Printf("  traffic: %d bursts (%d metadata), %.2f MB data (row hits %d / misses %d)\n",
		res.Sim.DramBursts, res.Sim.DramMetaBursts,
		float64(res.Sim.DramBytes)/1e6, res.Sim.RowHits, res.Sim.RowMisses)
	fmt.Printf("  L2: %d hits, %d misses, %d writebacks; MDC: %d hits, %d misses\n",
		res.Sim.L2.Hits, res.Sim.L2.Misses, res.Sim.L2.Writebacks,
		res.Sim.MC.MDCHits, res.Sim.MC.MDCMisses)
	e := res.Energy
	fmt.Printf("  energy: %.3f mJ (static %.3f, core %.3f, L2 %.3f, DRAM %.3f, codec %.5f)\n",
		e.TotalMJ(), e.StaticMJ, e.CoreMJ, e.L2MJ, e.DramMJ, e.CodecMJ)
	if res.Config.Name != base.Config.Name {
		fmt.Printf("  vs %s: speedup %.3f, bandwidth %.3f, energy %.3f, EDP %.3f\n",
			base.Config.Name,
			base.Sim.TimeNs/res.Sim.TimeNs,
			float64(res.Sim.DramBytes)/float64(base.Sim.DramBytes),
			res.Energy.TotalMJ()/base.Energy.TotalMJ(),
			res.Energy.EDP(res.Sim.TimeNs)/base.Energy.EDP(base.Sim.TimeNs))
	}
}
