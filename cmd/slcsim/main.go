// Command slcsim runs one benchmark under one compression configuration and
// prints the full measurement: compression statistics, timing, traffic,
// energy and application error.
//
// Usage:
//
//	slcsim -bench NN -codec tslc-opt -mag 32 -threshold 16
//	slcsim -bench DCT -codec e2mc -parallel 0
//	slcsim -bench TP -codec lz4b
//	slcsim -list
//	slcsim -list-codecs
//
// The codec is selected by its registry name (compress.Names); an unknown
// name fails with the available set. That set includes the post-paper
// families registered through the same mechanism (lz4b, zcd — see the
// README's codec table); they need no special flags.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/compress"
	"repro/internal/experiments"
	"repro/internal/storeflag"
	"repro/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of slcsim: every bad selection — unknown bench,
// unknown codec, invalid MAG — reports the available set and exits non-zero
// before any expensive work starts.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slcsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench     = fs.String("bench", "", "benchmark name (see -list)")
		codec     = fs.String("codec", "tslc-opt", "codec registry name (see -list-codecs)")
		magBytes  = fs.Int("mag", 32, "memory access granularity in bytes (16, 32, 64)")
		threshold = fs.Int("threshold", 16, "lossy threshold in bytes (lossy codecs only)")
		bound     = fs.Float64("bound", 0, "absolute error bound (error-bounded codecs only; 0 = codec default)")
		parallel  = fs.Int("parallel", 1, "worker goroutines for block compression (0 = all cores)")
		simw      = fs.Int("simworkers", 1, "worker goroutines for the sharded timing simulator (0 = all cores, 1 = serial engine); results are identical either way")
		list      = fs.Bool("list", false, "list benchmarks and exit")
		listCodec = fs.Bool("list-codecs", false, "list registered codecs and exit")
		verbose   = fs.Bool("v", false, "log progress")
		store     = storeflag.RegisterOn(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if extra := fs.Args(); len(extra) > 0 {
		fmt.Fprintf(stderr, "slcsim: unexpected arguments: %v\n", extra)
		fs.Usage()
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "slcsim:", err)
		return 1
	}

	if *list {
		for _, w := range workloads.All() {
			in := w.Info()
			fmt.Fprintf(stdout, "%-6s %-28s %-16s %s, %d approx regions\n",
				in.Name, in.Short, in.Input, in.Metric, in.AR)
		}
		return 0
	}
	if *listCodec {
		fmt.Fprintln(stdout, strings.Join(compress.Names(), "\n"))
		return 0
	}
	if *bench == "" {
		fs.Usage()
		return 2
	}
	w, err := workloads.ByName(*bench)
	if err != nil {
		return fail(err)
	}
	cfg, err := experiments.NamedConfig(*codec, compress.MAG(*magBytes), *threshold*8, *bound)
	if err != nil {
		return fail(err)
	}
	r := experiments.NewRunner()
	r.SyncWorkers = experiments.Workers(*parallel)
	r.SimWorkers = experiments.Workers(*simw)
	if *verbose {
		r.Progress = func(s string) { fmt.Fprintln(stderr, "  ..", s) }
	}
	if _, err := store.Attach(r); err != nil {
		return fail(err)
	}
	res, err := r.Run(w, cfg)
	if err != nil {
		return fail(err)
	}
	base, err := r.Run(w, experiments.E2MCConfig(cfg.MAG))
	if err != nil {
		return fail(err)
	}
	printResult(stdout, res, base)
	return 0
}

func printResult(out io.Writer, res, base experiments.RunResult) {
	fmt.Fprintf(out, "%s × %s\n", res.Workload, res.Config.Name)
	fmt.Fprintf(out, "  compression: raw CR %.2f, effective CR %.2f, %d blocks (%d lossy, %d raw)\n",
		res.Comp.RawRatio(), res.Comp.EffectiveRatio(),
		res.Comp.Blocks, res.Comp.LossyBlocks, res.Comp.Uncompressed)
	fmt.Fprintf(out, "  error: %.4f%%\n", res.ErrorFrac*100)
	fmt.Fprintf(out, "  time: %.1f µs (%.0f SM cycles)\n", res.Sim.TimeNs/1e3, res.Sim.SMCycles)
	fmt.Fprintf(out, "  traffic: %d bursts (%d metadata), %.2f MB data (row hits %d / misses %d)\n",
		res.Sim.DramBursts, res.Sim.DramMetaBursts,
		float64(res.Sim.DramBytes)/1e6, res.Sim.RowHits, res.Sim.RowMisses)
	fmt.Fprintf(out, "  L2: %d hits, %d misses, %d writebacks; MDC: %d hits, %d misses\n",
		res.Sim.L2.Hits, res.Sim.L2.Misses, res.Sim.L2.Writebacks,
		res.Sim.MC.MDCHits, res.Sim.MC.MDCMisses)
	e := res.Energy
	fmt.Fprintf(out, "  energy: %.3f mJ (static %.3f, core %.3f, L2 %.3f, DRAM %.3f, codec %.5f)\n",
		e.TotalMJ(), e.StaticMJ, e.CoreMJ, e.L2MJ, e.DramMJ, e.CodecMJ)
	if res.Config.Name != base.Config.Name {
		fmt.Fprintf(out, "  vs %s: speedup %.3f, bandwidth %.3f, energy %.3f, EDP %.3f\n",
			base.Config.Name,
			base.Sim.TimeNs/res.Sim.TimeNs,
			float64(res.Sim.DramBytes)/float64(base.Sim.DramBytes),
			res.Energy.TotalMJ()/base.Energy.TotalMJ(),
			res.Energy.EDP(res.Sim.TimeNs)/base.Energy.EDP(base.Sim.TimeNs))
	}
}
