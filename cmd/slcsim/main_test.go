package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestListSucceeds(t *testing.T) {
	code, stdout, _ := runCLI("-list")
	if code != 0 || !strings.Contains(stdout, "SRAD1") {
		t.Fatalf("exit %d, stdout: %s", code, stdout)
	}
}

func TestListCodecsSucceeds(t *testing.T) {
	code, stdout, _ := runCLI("-list-codecs")
	if code != 0 || !strings.Contains(stdout, "e2mc") {
		t.Fatalf("exit %d, stdout: %s", code, stdout)
	}
}

func TestUnknownBenchExitsWithAvailableSet(t *testing.T) {
	code, _, stderr := runCLI("-bench", "no-such-bench")
	if code != 1 {
		t.Fatalf("unknown bench exited %d, want 1", code)
	}
	if !strings.Contains(stderr, "available") || !strings.Contains(stderr, "SRAD1") {
		t.Fatalf("stderr does not list the available benchmarks: %s", stderr)
	}
}

func TestUnknownCodecExitsWithAvailableSet(t *testing.T) {
	code, _, stderr := runCLI("-bench", "NN", "-codec", "no-such-codec")
	if code != 1 {
		t.Fatalf("unknown codec exited %d, want 1", code)
	}
	if !strings.Contains(stderr, "available") || !strings.Contains(stderr, "e2mc") {
		t.Fatalf("stderr does not list the available codecs: %s", stderr)
	}
}

// TestInvalidMAGFailsFast pins the validate-before-work ordering: an invalid
// MAG must be rejected by configuration validation, not discovered after
// entropy-table training.
func TestInvalidMAGFailsFast(t *testing.T) {
	code, _, stderr := runCLI("-bench", "NN", "-codec", "tslc-opt", "-mag", "7")
	if code != 1 {
		t.Fatalf("invalid MAG exited %d, want 1", code)
	}
	if !strings.Contains(stderr, "invalid MAG") {
		t.Fatalf("stderr does not report the invalid MAG: %s", stderr)
	}
	if strings.Contains(stderr, "training") {
		t.Fatalf("trained a table before rejecting the MAG: %s", stderr)
	}
}

func TestStrayArgumentsExitNonZero(t *testing.T) {
	if code, _, _ := runCLI("-list", "stray"); code != 2 {
		t.Fatalf("stray arguments exited %d, want 2", code)
	}
}

func TestBadFlagExitsNonZero(t *testing.T) {
	if code, _, _ := runCLI("-no-such-flag"); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestNoBenchExitsNonZero(t *testing.T) {
	if code, _, _ := runCLI(); code != 2 {
		t.Fatalf("missing -bench exited %d, want 2", code)
	}
}
