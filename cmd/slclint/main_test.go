package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestDriverRegistersExactSuite pins cmd/slclint's analyzer set to the suite
// exported by internal/analysis: an analyzer added to analysis.All() is
// picked up (and listed by -analyzers and -help) automatically, and the
// driver cannot silently drop or reorder one.
func TestDriverRegistersExactSuite(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers"}, &out, &errb); code != 0 {
		t.Fatalf("slclint -analyzers: exit %d, stderr %q", code, errb.String())
	}
	got := strings.Fields(out.String())
	want := analysis.All()
	if len(got) != len(want) {
		t.Fatalf("driver lists %d analyzers %v; internal/analysis exports %d", len(got), got, len(want))
	}
	seen := make(map[string]bool)
	for i, a := range want {
		if got[i] != a.Name {
			t.Errorf("analyzer %d: driver lists %q, suite exports %q", i, got[i], a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// TestRepoIsLintClean is the in-tree form of the CI lint gate: the module at
// HEAD must produce zero active findings (annotated exceptions are fine).
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("lints the whole module via go list -export")
	}
	findings, suppressed, err := Lint("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	for _, d := range findings {
		t.Errorf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	}
	// Every suppression must carry its reason into the machine-readable form.
	for _, d := range suppressed {
		if !d.Allowed || d.Reason == "" {
			t.Errorf("%s:%d: suppressed diagnostic without allow reason", d.File, d.Line)
		}
	}
}

// TestJSONDiagShape pins the -json wire format consumed by sweep tooling.
func TestJSONDiagShape(t *testing.T) {
	b, err := json.Marshal(jsonDiag{File: "f.go", Line: 3, Col: 7, Analyzer: "determinism", Message: "m", Allowed: true, Reason: "r"})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"f.go","line":3,"col":7,"analyzer":"determinism","message":"m","allowed":true,"reason":"r"}`
	if string(b) != want {
		t.Errorf("jsonDiag wire form drifted:\ngot  %s\nwant %s", b, want)
	}
}
