// Command slclint runs the repository's static-analysis suite — the
// determinism, poolsafety, allocfree and registry analyzers from
// internal/analysis — over the given package patterns and exits non-zero on
// any finding. It is the build-time twin of the runtime invariants CI
// already replays (bitwise-deterministic shard tests, eventsdebug poison
// checks, AllocsPerRun pins, the fuzz coverage guard): the moment a change
// reintroduces a flagged construct, the lint job fails, before any test has
// to hit the right input.
//
// Usage:
//
//	go run ./cmd/slclint [-json] [-vet] ./...
//
// Deliberate exceptions are annotated in source:
//
//	//slclint:allow <analyzer> <reason>
//
// on (or immediately above) the offending line. -json emits machine-readable
// diagnostics — including the suppressed ones with their reasons — for the
// sweep/trajectory tooling to track lint status per commit. -vet additionally
// shells out to `go vet` (the subset of upstream vet checks this offline
// multichecker cannot link against) and merges its exit status.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"io"
	"os"
	"os/exec"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the -json wire form of one diagnostic. Suppressed findings are
// included with their allow reason so trajectory tooling can watch the
// exception count, but they do not affect the exit status.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Allowed  bool   `json:"allowed,omitempty"`
	Reason   string `json:"reason,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics")
	vet := fs.Bool("vet", false, "also run `go vet` on the same patterns")
	list := fs.Bool("analyzers", false, "list registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: slclint [-json] [-vet] packages...\n\nAnalyzers:\n")
		for _, a := range Analyzers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range Analyzers() {
			fmt.Fprintln(stdout, a.Name)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	diags, allowed, err := Lint(".", patterns)
	if err != nil {
		fmt.Fprintln(stderr, "slclint:", err)
		return 2
	}

	exit := 0
	if *jsonOut {
		all := append(append([]jsonDiag{}, diags...), allowed...)
		sortDiags(all)
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "slclint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "slclint: %d finding(s)\n", len(diags))
		exit = 1
	}

	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			if exit == 0 {
				exit = 1
			}
		}
	}
	return exit
}

// Analyzers returns the suite this binary registers: exactly the analyzers
// exported by internal/analysis (a guard test pins the correspondence).
func Analyzers() []*analysis.Analyzer {
	return analysis.All()
}

// Lint loads patterns from dir and runs the full suite, returning active
// findings and allow-suppressed findings separately.
func Lint(dir string, patterns []string) (findings, suppressed []jsonDiag, err error) {
	prog, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}

	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }

	analyzers := Analyzers()
	for _, p := range prog.Packages {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(p.Path) {
				continue
			}
			pass := prog.NewPass(a, p, report)
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %v", a.Name, p.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finalize != nil {
			a.Finalize(prog, report)
		}
	}

	// Allow suppression: scan every analyzed file's comments once.
	var files []*ast.File
	for _, p := range prog.Packages {
		files = append(files, p.Files...)
		files = append(files, p.TestFiles...)
	}
	allows := analysis.CollectAllows(prog.Fset, files, analyzers)
	diags = append(diags, allows.Malformed...)

	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		jd := jsonDiag{File: pos.Filename, Line: pos.Line, Col: pos.Column, Analyzer: d.Analyzer, Message: d.Message}
		if a, ok := allows.Suppresses(d); ok {
			jd.Allowed, jd.Reason = true, a.Reason
			suppressed = append(suppressed, jd)
			continue
		}
		findings = append(findings, jd)
	}
	sortDiags(findings)
	sortDiags(suppressed)
	return findings, suppressed, nil
}

func sortDiags(ds []jsonDiag) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].File != ds[j].File {
			return ds[i].File < ds[j].File
		}
		if ds[i].Line != ds[j].Line {
			return ds[i].Line < ds[j].Line
		}
		if ds[i].Col != ds[j].Col {
			return ds[i].Col < ds[j].Col
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}
