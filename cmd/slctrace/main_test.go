package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestInvalidMAGFailsBeforeTraining pins the expensive regression: slctrace
// used to train the workload's entropy table (minutes for real corpora) and
// only then fail pipeline construction on an invalid MAG.
func TestInvalidMAGFailsBeforeTraining(t *testing.T) {
	code, _, stderr := runCLI("-bench", "NN", "-codec", "tslc-opt", "-mag", "7")
	if code != 1 {
		t.Fatalf("invalid MAG exited %d, want 1", code)
	}
	if !strings.Contains(stderr, "invalid MAG") {
		t.Fatalf("stderr does not report the invalid MAG: %s", stderr)
	}
	if strings.Contains(stderr, "training") || strings.Contains(stderr, "table") {
		t.Fatalf("did work before rejecting the MAG: %s", stderr)
	}
}

func TestUnknownBenchExitsWithAvailableSet(t *testing.T) {
	code, _, stderr := runCLI("-bench", "no-such-bench")
	if code != 1 {
		t.Fatalf("unknown bench exited %d, want 1", code)
	}
	if !strings.Contains(stderr, "available") {
		t.Fatalf("stderr does not list the available benchmarks: %s", stderr)
	}
}

func TestUnknownCodecExitsWithAvailableSet(t *testing.T) {
	code, _, stderr := runCLI("-bench", "NN", "-codec", "no-such-codec")
	if code != 1 {
		t.Fatalf("unknown codec exited %d, want 1", code)
	}
	if !strings.Contains(stderr, "available") {
		t.Fatalf("stderr does not list the available codecs: %s", stderr)
	}
}

func TestStrayArgumentsExitNonZero(t *testing.T) {
	if code, _, _ := runCLI("-bench", "NN", "stray"); code != 2 {
		t.Fatalf("stray arguments exited %d, want 2", code)
	}
}

func TestBadFlagExitsNonZero(t *testing.T) {
	if code, _, _ := runCLI("-no-such-flag"); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestNoBenchExitsNonZero(t *testing.T) {
	if code, _, _ := runCLI(); code != 2 {
		t.Fatalf("missing -bench exited %d, want 2", code)
	}
}
