// Command slctrace inspects the memory access trace and compressed-block
// size distribution of one benchmark under a compression configuration —
// the data behind the paper's Figure 2.
//
// Usage:
//
//	slctrace -bench SRAD1
//	slctrace -bench BS -mag 64
//	slctrace -bench NN -codec bdi -parallel 0
//	slctrace -bench TP -codec zcd
//	slctrace -bench DCT -sim -simworkers 0
//
// The codec is selected by its registry name and validated against
// compress.Names — including the post-paper families (lz4b, zcd); lossy
// codecs (tslc-*) trace their lossless base on exact regions as the runner
// does. -sim additionally replays the recorded trace
// through the timing simulator; -simworkers shards the replay across event
// lanes (results are identical to the serial engine).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/compress"
	"repro/internal/experiments"
	"repro/internal/gpu/device"
	"repro/internal/gpu/sim"
	"repro/internal/gpu/trace"
	"repro/internal/pipeline"
	"repro/internal/storeflag"
	"repro/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of slctrace. The whole configuration — bench,
// codec, MAG, threshold — is validated up front: an invalid MAG used to
// surface only at pipeline construction, after minutes of entropy-table
// training it then threw away.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slctrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench     = fs.String("bench", "", "benchmark name")
		codec     = fs.String("codec", "e2mc", "codec registry name")
		magBytes  = fs.Int("mag", 32, "memory access granularity in bytes")
		threshold = fs.Int("threshold", 16, "lossy threshold in bytes (lossy codecs only)")
		bound     = fs.Float64("bound", 0, "absolute error bound (error-bounded codecs only; 0 = codec default)")
		parallel  = fs.Int("parallel", 1, "worker goroutines for block compression (0 = all cores)")
		simulate  = fs.Bool("sim", false, "also replay the trace through the timing simulator")
		simw      = fs.Int("simworkers", 1, "worker goroutines for the sharded timing simulator (0 = all cores, 1 = serial engine)")
		store     = storeflag.RegisterOn(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if extra := fs.Args(); len(extra) > 0 {
		fmt.Fprintf(stderr, "slctrace: unexpected arguments: %v\n", extra)
		fs.Usage()
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "slctrace:", err)
		return 1
	}
	if *bench == "" {
		fs.Usage()
		return 2
	}
	w, err := workloads.ByName(*bench)
	if err != nil {
		return fail(err)
	}
	mag := compress.MAG(*magBytes)
	cfg, err := experiments.NamedConfig(*codec, mag, *threshold*8, *bound)
	if err != nil {
		return fail(err)
	}
	r := experiments.NewRunner()
	r.Progress = func(s string) { fmt.Fprintln(stderr, "  ..", s) }
	// The store serves slctrace's entropy-table training (tables are the
	// expensive part of building a tslc-* pipeline).
	if _, err := store.Attach(r); err != nil {
		return fail(err)
	}

	// Build the configured pipeline and record the trace.
	dev := device.New()
	lossless, lossy, err := experiments.RunnerCodecs(r, w, cfg)
	if err != nil {
		return fail(err)
	}
	pl, err := pipeline.New(dev, mag, lossless, lossy)
	if err != nil {
		return fail(err)
	}
	pl.SetWorkers(experiments.Workers(*parallel))
	rec := trace.NewRecorder(pl.BurstsFor)
	if _, err := w.Run(workloads.NewCtx(dev, rec, pl.Sync)); err != nil {
		return fail(err)
	}

	tr := rec.Trace()
	fmt.Fprintf(stdout, "%s trace (%s)\n", w.Info().Name, cfg.Name)
	for _, k := range tr.Kernels {
		var acc, rd, wr, bursts int
		for _, warp := range k.Warps {
			acc += len(warp)
			for _, a := range warp {
				if a.Write {
					wr++
				} else {
					rd++
				}
				bursts += int(a.Bursts)
			}
		}
		fmt.Fprintf(stdout, "  kernel %-22s warps %6d  accesses %8d (r %d / w %d)  bursts %9d\n",
			k.Name, len(k.Warps), acc, rd, wr, bursts)
	}
	st := tr.Stats(mag)
	fmt.Fprintf(stdout, "total: %d kernels, %d accesses, %d bursts, %.2f MB\n",
		st.Kernels, st.Accesses, st.Bursts, float64(st.Bytes)/1e6)

	cs := pl.Stats()
	fmt.Fprintf(stdout, "\ncompressed-block distribution (bytes above a multiple of MAG):\n")
	for x, cnt := range cs.AboveMAG {
		if cnt == 0 {
			continue
		}
		pct := 100 * float64(cnt) / float64(cs.Blocks)
		fmt.Fprintf(stdout, "  %2dB %7d blocks (%5.1f%%)\n", x, cnt, pct)
	}
	fmt.Fprintf(stdout, "raw CR %.2f, effective CR %.2f\n", cs.RawRatio(), cs.EffectiveRatio())

	if *simulate {
		sc := experiments.SimConfig(cfg)
		sc.Workers = experiments.Workers(*simw)
		res, err := sim.Run(tr, sc)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "\ntiming replay: %.1f µs, %d bursts (%d metadata), %.2f MB data\n",
			res.TimeNs/1e3, res.DramBursts, res.DramMetaBursts,
			float64(res.DramBytes)/1e6)
	}
	return 0
}
