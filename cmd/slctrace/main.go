// Command slctrace inspects the memory access trace and compressed-block
// size distribution of one benchmark under a compression configuration —
// the data behind the paper's Figure 2.
//
// Usage:
//
//	slctrace -bench SRAD1
//	slctrace -bench BS -mag 64
//	slctrace -bench NN -codec bdi -parallel 0
//	slctrace -bench TP -codec zcd
//	slctrace -bench DCT -sim -simworkers 0
//
// The codec is selected by its registry name and validated against
// compress.Names — including the post-paper families (lz4b, zcd); lossy
// codecs (tslc-*) trace their lossless base on exact regions as the runner
// does. -sim additionally replays the recorded trace
// through the timing simulator; -simworkers shards the replay across event
// lanes (results are identical to the serial engine).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/compress"
	"repro/internal/experiments"
	"repro/internal/gpu/device"
	"repro/internal/gpu/sim"
	"repro/internal/gpu/trace"
	"repro/internal/pipeline"
	"repro/internal/storeflag"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slctrace: ")
	var (
		bench     = flag.String("bench", "", "benchmark name")
		codec     = flag.String("codec", "e2mc", "codec registry name")
		magBytes  = flag.Int("mag", 32, "memory access granularity in bytes")
		threshold = flag.Int("threshold", 16, "lossy threshold in bytes (lossy codecs only)")
		parallel  = flag.Int("parallel", 1, "worker goroutines for block compression (0 = all cores)")
		simulate  = flag.Bool("sim", false, "also replay the trace through the timing simulator")
		simw      = flag.Int("simworkers", 1, "worker goroutines for the sharded timing simulator (0 = all cores, 1 = serial engine)")
		store     = storeflag.Register()
	)
	flag.Parse()
	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	w, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	mag := compress.MAG(*magBytes)
	cfg, err := experiments.NamedConfig(*codec, mag, *threshold*8)
	if err != nil {
		log.Fatal(err)
	}
	r := experiments.NewRunner()
	r.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  ..", s) }
	// The store serves slctrace's entropy-table training (tables are the
	// expensive part of building a tslc-* pipeline).
	if _, err := store.Attach(r); err != nil {
		log.Fatal(err)
	}

	// Build the configured pipeline and record the trace.
	dev := device.New()
	lossless, lossy, err := experiments.RunnerCodecs(r, w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := pipeline.New(dev, mag, lossless, lossy)
	if err != nil {
		log.Fatal(err)
	}
	pl.SetWorkers(experiments.Workers(*parallel))
	rec := trace.NewRecorder(pl.BurstsFor)
	if _, err := w.Run(workloads.NewCtx(dev, rec, pl.Sync)); err != nil {
		log.Fatal(err)
	}

	tr := rec.Trace()
	fmt.Printf("%s trace (%s)\n", w.Info().Name, cfg.Name)
	for _, k := range tr.Kernels {
		var acc, rd, wr, bursts int
		for _, warp := range k.Warps {
			acc += len(warp)
			for _, a := range warp {
				if a.Write {
					wr++
				} else {
					rd++
				}
				bursts += int(a.Bursts)
			}
		}
		fmt.Printf("  kernel %-22s warps %6d  accesses %8d (r %d / w %d)  bursts %9d\n",
			k.Name, len(k.Warps), acc, rd, wr, bursts)
	}
	st := tr.Stats(mag)
	fmt.Printf("total: %d kernels, %d accesses, %d bursts, %.2f MB\n",
		st.Kernels, st.Accesses, st.Bursts, float64(st.Bytes)/1e6)

	cs := pl.Stats()
	fmt.Printf("\ncompressed-block distribution (bytes above a multiple of MAG):\n")
	for x, cnt := range cs.AboveMAG {
		if cnt == 0 {
			continue
		}
		pct := 100 * float64(cnt) / float64(cs.Blocks)
		fmt.Printf("  %2dB %7d blocks (%5.1f%%)\n", x, cnt, pct)
	}
	fmt.Printf("raw CR %.2f, effective CR %.2f\n", cs.RawRatio(), cs.EffectiveRatio())

	if *simulate {
		sc := experiments.SimConfig(cfg)
		sc.Workers = experiments.Workers(*simw)
		res, err := sim.Run(tr, sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntiming replay: %.1f µs, %d bursts (%d metadata), %.2f MB data\n",
			res.TimeNs/1e3, res.DramBursts, res.DramMetaBursts,
			float64(res.DramBytes)/1e6)
	}
}
