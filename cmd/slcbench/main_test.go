package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes the binary body in-process.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestTableTargetSucceeds(t *testing.T) {
	code, stdout, stderr := runCLI("-table", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stdout == "" {
		t.Fatal("no table output")
	}
}

func TestUnknownFigureExitsNonZero(t *testing.T) {
	code, _, stderr := runCLI("-fig", "3")
	if code == 0 {
		t.Fatal("unknown figure exited 0")
	}
	if !strings.Contains(stderr, "unknown figure") || !strings.Contains(stderr, "1, 2, 7, 8, 9") {
		t.Fatalf("stderr does not name the available figures: %s", stderr)
	}
}

func TestUnknownTableExitsNonZero(t *testing.T) {
	code, _, stderr := runCLI("-table", "9")
	if code == 0 {
		t.Fatal("unknown table exited 0")
	}
	if !strings.Contains(stderr, "unknown table") || !strings.Contains(stderr, "1, 2, 3") {
		t.Fatalf("stderr does not name the available tables: %s", stderr)
	}
}

func TestUnknownMatrixExitsNonZero(t *testing.T) {
	code, _, stderr := runCLI("-matrix", "no-such-matrix")
	if code == 0 {
		t.Fatal("unknown matrix exited 0")
	}
	if !strings.Contains(stderr, "no-such-matrix") {
		t.Fatalf("stderr does not mention the bad matrix: %s", stderr)
	}
}

func TestStrayArgumentsExitNonZero(t *testing.T) {
	code, _, stderr := runCLI("-table", "1", "stray")
	if code != 2 {
		t.Fatalf("stray arguments exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "unexpected arguments") {
		t.Fatalf("stderr does not flag stray arguments: %s", stderr)
	}
}

func TestBadFlagExitsNonZero(t *testing.T) {
	if code, _, _ := runCLI("-no-such-flag"); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestNoTargetExitsNonZero(t *testing.T) {
	if code, _, _ := runCLI(); code != 2 {
		t.Fatalf("no target exited %d, want 2", code)
	}
}

func TestOutCreateFailureExitsNonZero(t *testing.T) {
	code, _, stderr := runCLI("-table", "1", "-out", filepath.Join(t.TempDir(), "missing", "report.txt"))
	if code == 0 {
		t.Fatalf("uncreatable -out exited 0, stderr: %s", stderr)
	}
}

// TestOutWriteFailureExitsNonZero is the swallowed-write-error regression:
// rendering to a full device used to exit 0 with a truncated (empty) report,
// because fmt.Fprintf errors were never checked.
func TestOutWriteFailureExitsNonZero(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	code, _, stderr := runCLI("-table", "1", "-out", "/dev/full")
	if code == 0 {
		t.Fatal("write failure to /dev/full exited 0")
	}
	if !strings.Contains(stderr, "output") {
		t.Fatalf("stderr does not report the output failure: %s", stderr)
	}
}

func TestListMatrixSucceeds(t *testing.T) {
	code, stdout, _ := runCLI("-list-matrix")
	if code != 0 || !strings.Contains(stdout, "smoke") {
		t.Fatalf("exit %d, stdout: %s", code, stdout)
	}
}
