// Command slcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	slcbench -all                 # everything (written to -out, default stdout)
//	slcbench -all -parallel 0     # same, fanned across all cores
//	slcbench -fig 7               # one figure (1, 2, 7, 8, 9)
//	slcbench -table 1             # one table (1, 2, 3)
//	slcbench -all -out report.txt -v
//
// -parallel N executes the evaluation matrix on N workers (0 = all cores)
// before rendering; the figures then read the memoised results, so the
// output is identical to a serial run.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/compress"
	"repro/internal/experiments"
	"repro/internal/gpu/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slcbench: ")
	var (
		all       = flag.Bool("all", false, "regenerate every table and figure")
		fig       = flag.Int("fig", 0, "regenerate one figure (1, 2, 7, 8, 9)")
		table     = flag.Int("table", 0, "regenerate one table (1, 2, 3)")
		ablations = flag.Bool("ablations", false, "run the ablation study")
		out       = flag.String("out", "", "write output to this file instead of stdout")
		parallel  = flag.Int("parallel", 1, "evaluation workers (0 = all cores, 1 = serial)")
		verbose   = flag.Bool("v", false, "log per-run progress to stderr")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	r := experiments.NewRunner()
	if *verbose {
		r.Progress = func(s string) { fmt.Fprintln(os.Stderr, "  ..", s) }
	}
	// Warm the runner's memo across a worker pool with exactly the cells
	// the selected target renders; the output below then reads memoised
	// results and is byte-identical to a serial run. (-table targets render
	// static configuration tables; there is nothing to parallelise.)
	if *parallel != 1 {
		var full []experiments.Cell
		var comp []experiments.Cell
		switch {
		case *all:
			full = experiments.EvaluationCells()
			comp = experiments.CompressionCells(compress.MAG32)
		case *ablations:
			full = experiments.AblationCells()
		case *fig != 0:
			full, comp = experiments.CellsForFigure(*fig)
		}
		if len(full) > 0 {
			if _, err := r.RunAll(full, *parallel); err != nil {
				log.Fatal(err)
			}
		}
		if len(comp) > 0 {
			if err := r.CompressAll(comp, *parallel); err != nil {
				log.Fatal(err)
			}
		}
	}

	switch {
	case *all:
		if err := experiments.Report(w, r); err != nil {
			log.Fatal(err)
		}
	case *ablations:
		ab, err := experiments.RunAblations(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprint(w, ab)
	case *table != 0:
		switch *table {
		case 1:
			fmt.Fprint(w, experiments.TableI())
		case 2:
			fmt.Fprint(w, experiments.TableII(sim.DefaultConfig()))
		case 3:
			fmt.Fprint(w, experiments.TableIII())
		default:
			log.Fatalf("unknown table %d (have 1, 2, 3)", *table)
		}
	case *fig != 0:
		if err := runFigure(w, r, *fig); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runFigure(w io.Writer, r *experiments.Runner, fig int) error {
	switch fig {
	case 1:
		f, err := experiments.Figure1(r, compress.MAG32)
		if err != nil {
			return err
		}
		fmt.Fprint(w, f)
	case 2:
		f, err := experiments.Figure2(r, compress.MAG32)
		if err != nil {
			return err
		}
		fmt.Fprint(w, f)
	case 7:
		f, err := experiments.Figure7(r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, f)
	case 8:
		f, err := experiments.Figure8(r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, f)
	case 9:
		f, err := experiments.Figure9(r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, f)
	default:
		return fmt.Errorf("unknown figure %d (have 1, 2, 7, 8, 9)", fig)
	}
	return nil
}
