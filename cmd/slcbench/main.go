// Command slcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	slcbench -all                 # everything (written to -out, default stdout)
//	slcbench -all -parallel 0     # same, fanned across all cores
//	slcbench -fig 7               # one figure (1, 2, 7, 8, 9)
//	slcbench -table 1             # one table (1, 2, 3)
//	slcbench -fig 7 -json         # machine-readable cell results
//	slcbench -matrix smoke -json  # a named cell subset (see -list-matrix)
//	slcbench -all -out report.txt -v
//
// -parallel N executes the evaluation matrix on N workers (0 = all cores)
// before rendering; the figures then read the memoised results, so the
// output is identical to a serial run. -simworkers N additionally shards
// each cell's timing simulation across N event lanes (0 = all cores) with
// bitwise-identical results. -json replaces the text report with a JSON
// dump of every executed cell — the format the bench trajectory is
// recorded in.
//
// -matrix NAME runs a named subset of the evaluation matrix (registered in
// internal/experiments; -list-matrix prints the set with descriptions) —
// e.g. `smoke` is CI's every-push slice, `new-codecs` covers the post-paper
// codec families (lz4b, zcd) and `float-workloads` runs the HPC float fields
// under the sz error-bounded family against lossless comparators. -bound
// overrides the error bound of any error-bounded (sz) cells in the selected
// subset. The text output is one line per cell; with -json the subset is
// emitted as a trajectory like any other target.
//
// -store DIR persists memoised results (golden runs, entropy tables, cell
// measurements) to a content-addressed store in DIR; a second identical
// invocation then recomputes nothing and emits bitwise-identical results
// (observable via the Store hit counters in -json output). -store-clear
// empties the store first.
//
// -decodebench times the three entropy decoders (LUT, bit-by-bit reference,
// gap-array parallel) over corpora sampled from every registered workload.
// Alone it prints a per-workload table; combined with -json (with or
// without another target) the timings land in the trajectory's Decode
// section, which CI uploads per push.
//
// -simbench times the discrete-event engine itself: every workload's trace
// is replayed repeatedly through one simulator (at the -simworkers setting)
// and the resulting events/s and ns/event land in a text table or, with
// -json, the trajectory's Sim section (uploaded as bench-sim.json by CI,
// which also fails its regression smoke step when ns/event degrades >25%
// against the committed baseline fixture).
//
// -cpuprofile FILE / -memprofile FILE record pprof profiles of whatever the
// invocation runs — see the README's "Profiling" section for the workflow.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cliio"
	"repro/internal/compress"
	"repro/internal/experiments"
	"repro/internal/gpu/sim"
	"repro/internal/profileflag"
	"repro/internal/storeflag"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of slcbench. Every failure path — including
// write errors to -out, which fmt.Fprintf-based rendering would otherwise
// swallow — must yield a non-zero exit.
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("slcbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		all       = fs.Bool("all", false, "regenerate every table and figure")
		fig       = fs.Int("fig", 0, "regenerate one figure (1, 2, 7, 8, 9)")
		table     = fs.Int("table", 0, "regenerate one table (1, 2, 3)")
		ablations = fs.Bool("ablations", false, "run the ablation study")
		matrix    = fs.String("matrix", "", "run a named cell subset of the evaluation matrix (see -list-matrix)")
		bound     = fs.Float64("bound", 0, "override the error bound of error-bounded cells in the selected matrix (0 = keep each cell's bound)")
		listMat   = fs.Bool("list-matrix", false, "list registered matrix subsets and exit")
		out       = fs.String("out", "", "write output to this file instead of stdout")
		parallel  = fs.Int("parallel", 1, "evaluation workers (0 = all cores, 1 = serial)")
		simw      = fs.Int("simworkers", 1, "worker goroutines per sharded timing simulation (0 = all cores, 1 = serial engine)")
		asJSON    = fs.Bool("json", false, "emit the executed cells as JSON instead of the text report (-all, -fig, -ablations, -matrix)")
		decodeb   = fs.Bool("decodebench", false, "time the entropy decoders over per-workload corpora (text table, or the trajectory's Decode section with -json)")
		simb      = fs.Bool("simbench", false, "time the event engine replaying every workload's trace (text table, or the trajectory's Sim section with -json)")
		verbose   = fs.Bool("v", false, "log per-run progress to stderr")
		store     = storeflag.RegisterOn(fs)
		prof      = profileflag.RegisterOn(fs)
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if extra := fs.Args(); len(extra) > 0 {
		fmt.Fprintf(stderr, "slcbench: unexpected arguments: %v\n", extra)
		fs.Usage()
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "slcbench:", err)
		return 1
	}

	if *listMat {
		for _, name := range experiments.MatrixNames() {
			m, _ := experiments.LookupMatrix(name)
			fmt.Fprintf(stdout, "%-14s %s\n", name, m.Desc)
		}
		return 0
	}

	if err := prof.Start(); err != nil {
		return fail(err)
	}
	defer func() {
		// A truncated profile is a failed invocation even when the report
		// rendered fine.
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(stderr, "slcbench:", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	w := cliio.NewWriter(stdout)
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		outFile = f
		w = cliio.NewWriter(f)
	}
	defer func() {
		// Surface short writes (full disk, closed pipe) as a failure; the
		// rendering paths write through fmt.Fprintf, which drops errors.
		if err := w.Err(); err != nil {
			fmt.Fprintln(stderr, "slcbench: writing output:", err)
			if code == 0 {
				code = 1
			}
		}
		if outFile != nil {
			if err := outFile.Close(); err != nil {
				fmt.Fprintln(stderr, "slcbench: closing output:", err)
				if code == 0 {
					code = 1
				}
			}
		}
	}()

	r := experiments.NewRunner()
	r.SimWorkers = experiments.Workers(*simw)
	if *verbose {
		r.Progress = func(s string) { fmt.Fprintln(stderr, "  ..", s) }
	}
	st, err := store.Attach(r)
	if err != nil {
		return fail(err)
	}
	if st != nil {
		defer func() {
			s := st.Stats()
			fmt.Fprintf(stderr, "store %s: %d hits, %d misses, %d writes\n",
				st.Dir(), s.Hits, s.Misses, s.Puts)
		}()
	}
	// The cells the selected target renders: full runs (timing + error) and
	// compression-only sweeps.
	var full, comp []experiments.Cell
	var target string
	switch {
	case *all:
		target = "all"
		full = experiments.EvaluationCells()
		comp = experiments.CompressionCells(compress.MAG32)
	case *ablations:
		target = "ablations"
		full = experiments.AblationCells()
	case *fig != 0:
		target = fmt.Sprintf("fig%d", *fig)
		full, comp = experiments.CellsForFigure(*fig)
		if len(full)+len(comp) == 0 {
			return fail(fmt.Errorf("unknown figure %d (have 1, 2, 7, 8, 9)", *fig))
		}
	case *matrix != "":
		target = "matrix:" + *matrix
		var merr error
		full, comp, merr = experiments.MatrixCells(*matrix)
		if merr != nil {
			return fail(merr)
		}
	}
	// -bound rewrites error-bounded cells to the requested bound; lossless
	// and threshold-lossy cells are untouched, so it is a no-op on subsets
	// without sz cells.
	if full, err = experiments.WithErrorBound(full, *bound); err != nil {
		return fail(err)
	}
	if comp, err = experiments.WithErrorBound(comp, *bound); err != nil {
		return fail(err)
	}

	// Warm the runner's memo across a worker pool; the output below then
	// reads memoised results and is byte-identical to a serial run.
	// (-table targets render static configuration tables; there is nothing
	// to parallelise.)
	if *parallel != 1 || *asJSON || *matrix != "" {
		if len(full) > 0 {
			if _, err := r.RunAll(full, *parallel); err != nil {
				return fail(err)
			}
		}
		if len(comp) > 0 {
			if err := r.CompressAll(comp, *parallel); err != nil {
				return fail(err)
			}
		}
	}

	// Decode benchmarks run against whatever tables the selected workloads
	// train (memoised, so a -fig 2 run above shares them).
	var dbench []experiments.DecodeBench
	if *decodeb {
		dbench, err = experiments.CollectDecodeBenches(r, 0)
		if err != nil {
			return fail(err)
		}
		if target == "" {
			target = "decode"
		}
	}

	// Simulator throughput runs each workload's trace through one reusable
	// Simulator at the -simworkers setting; the numbers CI's regression
	// smoke step compares against the committed baseline fixture.
	var sbench []experiments.SimBench
	if *simb {
		sbench, err = experiments.CollectSimBenches(r, r.SimWorkers)
		if err != nil {
			return fail(err)
		}
		if target == "" {
			target = "sim"
		}
	}

	if *asJSON {
		if target == "" {
			return fail(fmt.Errorf("-json needs -all, -fig, -ablations, -matrix, -decodebench or -simbench"))
		}
		if err := emitJSON(w, r, target, full, comp, dbench, sbench); err != nil {
			return fail(err)
		}
		return 0
	}

	if *decodeb {
		printDecodeBenches(w, dbench)
		if target == "decode" && *table == 0 {
			return 0
		}
	}

	if *simb {
		printSimBenches(w, sbench)
		if target == "sim" && *table == 0 {
			return 0
		}
	}

	switch {
	case *all:
		if err := experiments.Report(w, r); err != nil {
			return fail(err)
		}
	case *ablations:
		ab, err := experiments.RunAblations(r)
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(w, ab)
	case *table != 0:
		switch *table {
		case 1:
			fmt.Fprint(w, experiments.TableI())
		case 2:
			fmt.Fprint(w, experiments.TableII(sim.DefaultConfig()))
		case 3:
			fmt.Fprint(w, experiments.TableIII())
		default:
			return fail(fmt.Errorf("unknown table %d (have 1, 2, 3)", *table))
		}
	case *fig != 0:
		if err := runFigure(w, r, *fig); err != nil {
			return fail(err)
		}
	case *matrix != "":
		if err := printMatrix(w, r, *matrix, full, comp); err != nil {
			return fail(err)
		}
	default:
		fs.Usage()
		return 2
	}
	return 0
}

// emitJSON re-reads the memoised cells (warmed above) and writes the bench
// trajectory, including the store's hit counters when one is attached and
// the decode benchmarks when -decodebench was given.
func emitJSON(w io.Writer, r *experiments.Runner, target string, full, comp []experiments.Cell, dbench []experiments.DecodeBench, sbench []experiments.SimBench) error {
	traj, err := experiments.CollectTrajectory(r, target, full, comp)
	if err != nil {
		return err
	}
	traj.Decode = dbench
	traj.Sim = sbench
	return traj.WriteJSON(w)
}

// printSimBenches renders the -simbench throughput as a text table.
func printSimBenches(w io.Writer, sbench []experiments.SimBench) {
	fmt.Fprintf(w, "simulator throughput (trace replay under E2MC@MAG32)\n")
	fmt.Fprintf(w, "  %-8s %8s %9s %8s %10s %12s %9s\n",
		"workload", "events", "accesses", "replays", "ns/event", "events/s", "wall ms")
	for _, b := range sbench {
		fmt.Fprintf(w, "  %-8s %8d %9d %8d %10.1f %12.0f %9.2f\n",
			b.Workload, b.Events, b.Accesses, b.Replays, b.NsPerEvent,
			b.EventsPerSec, b.WallMs)
	}
}

// printDecodeBenches renders the -decodebench timings as a text table.
func printDecodeBenches(w io.Writer, dbench []experiments.DecodeBench) {
	fmt.Fprintf(w, "entropy decode (ns/block over sampled corpora)\n")
	fmt.Fprintf(w, "  %-8s %7s %10s %10s %10s %9s\n",
		"workload", "blocks", "LUT", "reference", "parallel", "speedup")
	for _, d := range dbench {
		fmt.Fprintf(w, "  %-8s %7d %10.1f %10.1f %10.1f %8.2fx\n",
			d.Workload, d.Blocks, d.LUTNsPerBlock, d.RefNsPerBlock,
			d.ParNsPerBlock, d.Speedup)
	}
}

// printMatrix renders a named subset as one line per cell, reading the
// memoised results warmed above (so the -parallel setting cannot change the
// output).
func printMatrix(w io.Writer, r *experiments.Runner, name string, full, comp []experiments.Cell) error {
	m, _ := experiments.LookupMatrix(name)
	fmt.Fprintf(w, "matrix %s: %s\n", name, m.Desc)
	for _, c := range full {
		res, err := r.Run(c.Workload, c.Config)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-6s × %-20s %10.1f µs  CR %.2f/%.2f  err %.4f%%\n",
			res.Workload, res.Config.Name, res.Sim.TimeNs/1e3,
			res.Comp.RawRatio(), res.Comp.EffectiveRatio(), res.ErrorFrac*100)
	}
	for _, c := range comp {
		st, err := r.CompressionOnly(c.Workload, c.Config)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-6s × %-20s compression only   CR %.2f/%.2f\n",
			c.Workload.Info().Name, c.Config.Name, st.RawRatio(), st.EffectiveRatio())
	}
	return nil
}

func runFigure(w io.Writer, r *experiments.Runner, fig int) error {
	switch fig {
	case 1:
		f, err := experiments.Figure1(r, compress.MAG32)
		if err != nil {
			return err
		}
		fmt.Fprint(w, f)
	case 2:
		f, err := experiments.Figure2(r, compress.MAG32)
		if err != nil {
			return err
		}
		fmt.Fprint(w, f)
	case 7:
		f, err := experiments.Figure7(r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, f)
	case 8:
		f, err := experiments.Figure8(r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, f)
	case 9:
		f, err := experiments.Figure9(r)
		if err != nil {
			return err
		}
		fmt.Fprint(w, f)
	default:
		return fmt.Errorf("unknown figure %d (have 1, 2, 7, 8, 9)", fig)
	}
	return nil
}
