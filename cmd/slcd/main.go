// Command slcd is the streaming compression daemon: the codec registry,
// trained-table builder cache and compression pipeline served over HTTP.
//
//	slcd -addr :8080 -store /var/cache/slc
//
// Endpoints (see internal/serving and the README quick-start):
//
//	POST /v1/compress    compress data block-by-block under a codec
//	POST /v1/decompress  decode blocks (E2MC uses the parallel gap decode)
//	POST /v1/evaluate    run data or a workload through the real pipeline
//	GET  /v1/codecs      registered codecs and training profiles
//	GET  /healthz        200 while serving, 503 while draining
//	GET  /metrics        Prometheus text metrics
//
// On SIGINT/SIGTERM the daemon drains gracefully: the listener closes
// first, in-flight requests run to completion (bounded by -drain-timeout),
// and only then does the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/resultstore"
	"repro/internal/serving"
	"repro/internal/storeflag"
)

// storeOptions routes store notices (stale-lock takeovers) to stderr.
func storeOptions(stderr io.Writer) resultstore.Options {
	return resultstore.Options{
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, "slcd: store: "+format+"\n", args...)
		},
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable daemon body. ready, when non-nil, receives the bound
// listener address once the server is accepting connections (tests pass
// ":0" and dial whatever was assigned).
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("slcd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("parallel", 0, "per-request worker fan-out (0 = one per core)")
	maxInFlight := fs.Int("max-inflight", serving.DefaultMaxInFlight, "bound on concurrently admitted requests (beyond it: 429)")
	reqTimeout := fs.Duration("request-timeout", serving.DefaultRequestTimeout, "per-request execution timeout")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "bound on graceful drain after SIGTERM")
	store := storeflag.RegisterOn(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if extra := fs.Args(); len(extra) > 0 {
		fmt.Fprintf(stderr, "slcd: unexpected arguments: %v\n", extra)
		fs.Usage()
		return 2
	}

	core := serving.NewCore(serving.Config{Workers: *workers, MaxInFlight: *maxInFlight})
	st, err := store.Open(storeOptions(stderr))
	if err != nil {
		fmt.Fprintln(stderr, "slcd:", err)
		return 1
	}
	core.SetStore(st)

	server := &http.Server{
		Handler:           serving.NewHandler(core, *reqTimeout),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "slcd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "slcd: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	served := make(chan error, 1)
	go func() { served <- server.Serve(ln) }()

	select {
	case err := <-served:
		// The listener failed outright; nothing is being served.
		fmt.Fprintln(stderr, "slcd:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: refuse new admissions, then Shutdown — which closes
	// the listener first and waits for in-flight requests to complete.
	fmt.Fprintln(stdout, "slcd: draining")
	core.StartDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := server.Shutdown(dctx); err != nil {
		fmt.Fprintln(stderr, "slcd: drain:", err)
		return 1
	}
	if err := <-served; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "slcd:", err)
		return 1
	}
	fmt.Fprintln(stdout, "slcd: drained")
	return 0
}
