package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/serving"
)

// daemon runs the slcd body in-process against an ephemeral port and hands
// back its base URL plus a wait function returning the exit code.
func daemon(t *testing.T, args ...string) (base string, wait func() int, stdout *lockedBuffer) {
	t.Helper()
	stdout = &lockedBuffer{}
	stderr := &lockedBuffer{}
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), stdout, stderr, ready)
	}()
	select {
	case addr := <-ready:
		base = "http://" + addr
	case code := <-done:
		t.Fatalf("daemon exited %d before listening\nstderr: %s", code, stderr)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	wait = func() int {
		select {
		case code := <-done:
			return code
		case <-time.After(30 * time.Second):
			t.Fatal("daemon never exited")
			return -1
		}
	}
	return base, wait, stdout
}

// lockedBuffer is a goroutine-safe bytes.Buffer: the daemon goroutine writes
// while the test reads.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func testBlocks(n int) []byte {
	data := make([]byte, n*128)
	for i := range data {
		data[i] = byte((i / 4) % 97)
	}
	return data
}

// TestServeRoundTripAndGracefulDrain is the daemon lifecycle test: start,
// serve a compress→decompress round trip, check health and metrics, then
// SIGTERM and verify the drain completes with exit 0.
func TestServeRoundTripAndGracefulDrain(t *testing.T) {
	base, wait, stdout := daemon(t, "-store", t.TempDir())

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	data := testBlocks(4)
	creq, _ := json.Marshal(serving.CompressRequest{Codec: "bdi", Data: data})
	resp, err = http.Post(base+"/v1/compress", "application/json", bytes.NewReader(creq))
	if err != nil {
		t.Fatal(err)
	}
	var cres serving.CompressResponse
	if err := json.NewDecoder(resp.Body).Decode(&cres); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress: %d", resp.StatusCode)
	}

	dreq, _ := json.Marshal(serving.DecompressRequest{Codec: "bdi", Blocks: cres.Blocks})
	resp, err = http.Post(base+"/v1/decompress", "application/json", bytes.NewReader(dreq))
	if err != nil {
		t.Fatal(err)
	}
	var dres serving.DecompressResponse
	if err := json.NewDecoder(resp.Body).Decode(&dres); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !bytes.Equal(dres.Data, data) {
		t.Fatal("daemon round trip is not byte-identical")
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(resp.Body) //nolint:errcheck
	resp.Body.Close()
	if !strings.Contains(metrics.String(), "slcd_requests_total") {
		t.Fatalf("/metrics lacks request counters:\n%s", metrics.String())
	}

	// SIGTERM to our own process: run's NotifyContext catches it.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := wait(); code != 0 {
		t.Fatalf("drained daemon exited %d, want 0", code)
	}
	out := stdout.String()
	if !strings.Contains(out, "slcd: draining") || !strings.Contains(out, "slcd: drained") {
		t.Fatalf("stdout lacks the drain lifecycle:\n%s", out)
	}

	// The listener is gone: new connections fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still accepting connections after drain")
	}
}

func TestStrayArgumentsExitNonZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"stray"}, &out, &errw, nil); code != 2 {
		t.Fatalf("stray arguments exited %d, want 2", code)
	}
}

func TestBadFlagExitsNonZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errw, nil); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestUnbindableAddressExitsNonZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-addr", "256.0.0.1:0"}, &out, &errw, nil); code != 1 {
		t.Fatalf("unbindable address exited %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "slcd:") {
		t.Fatalf("stderr does not report the bind failure: %s", errw.String())
	}
}
