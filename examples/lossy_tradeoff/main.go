// Lossy threshold trade-off: sweep the SLC lossy threshold on one benchmark
// and watch the paper's §III trade-off — a larger threshold converts more
// blocks to lossy mode, buying bandwidth and speed at the cost of accuracy.
//
// Run with: go run ./examples/lossy_tradeoff [-bench DCT]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/compress"
	"repro/internal/experiments"
	"repro/internal/slc"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "DCT", "benchmark to sweep")
	flag.Parse()

	w, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	r := experiments.NewRunner()
	base, err := r.Run(w, experiments.E2MCConfig(compress.MAG32))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: TSLC-OPT threshold sweep at MAG 32B (baseline E2MC)\n\n", *bench)
	fmt.Printf("%-10s %8s %10s %10s %10s\n", "threshold", "speedup", "error", "bandwidth", "lossy")
	for _, tb := range []int{0, 4, 8, 12, 16, 24, 32} {
		res, err := r.Run(w, experiments.TSLCConfig(slc.OPT, compress.MAG32, tb*8))
		if err != nil {
			log.Fatal(err)
		}
		lossyPct := 0.0
		if res.Comp.Blocks > 0 {
			lossyPct = 100 * float64(res.Comp.LossyBlocks) / float64(res.Comp.Blocks)
		}
		fmt.Printf("%8dB %8.3f %9.4f%% %10.3f %9.1f%%\n",
			tb,
			base.Sim.TimeNs/res.Sim.TimeNs,
			res.ErrorFrac*100,
			float64(res.Sim.DramBytes)/float64(base.Sim.DramBytes),
			lossyPct)
	}
	fmt.Println("\nThe paper uses 16B: most of the bandwidth win at well under 1% mean error")
	fmt.Println("for image benchmarks. A 0B threshold degenerates to lossless E2MC.")
}
