// Matrix subsets: the `slcbench -matrix new-codecs -json -store DIR`
// pipeline end-to-end, in library form. The walkthrough:
//
//  1. resolve the named subset to cells (experiments.MatrixCells — the
//     subset registry mirrors the codec registry, so `-matrix` names work
//     here verbatim),
//  2. attach a content-addressed result store and warm the cells across a
//     worker pool (cold run: every cell is a store miss and is computed),
//  3. collect the subset as a bench trajectory and emit the same JSON
//     `slcbench -json` writes,
//  4. run the identical subset again on a fresh Runner sharing the store
//     (warm run: zero misses, nothing recomputed, identical trajectory).
//
// Run with: go run ./examples/matrix_subsets [-matrix new-codecs] [-store DIR]
//
// The default subset, new-codecs, covers the post-paper codec families
// (lz4b, zcd) over every workload plus one timed cell each; -matrix smoke
// reproduces exactly what CI records on every push. An empty -store uses a
// throwaway temp directory so the warm-run demonstration still works.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/resultstore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("matrix_subsets: ")
	var (
		name = flag.String("matrix", "new-codecs", "matrix subset to run (see slcbench -list-matrix)")
		dir  = flag.String("store", "", "result store directory (empty = a temp directory)")
	)
	flag.Parse()

	// 1. Resolve the subset by name. Unknown names fail with the available
	//    set, exactly like an unknown codec name.
	full, comp, err := experiments.MatrixCells(*name)
	if err != nil {
		log.Fatal(err)
	}
	m, _ := experiments.LookupMatrix(*name)
	fmt.Printf("subset %q: %s\n", *name, m.Desc)
	fmt.Printf("  %d full cells (timing + error), %d compression-only cells\n\n", len(full), len(comp))

	// 2. Attach a store and warm the cells across all cores.
	if *dir == "" {
		tmp, err := os.MkdirTemp("", "slc-matrix-example-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}
	traj := collect(*name, *dir, full, comp)

	// 3. The trajectory is the `slcbench -json` schema: cell results plus
	//    the store's hit/miss counters.
	if err := traj.WriteJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "\ncold run: %d store hits, %d misses (everything computed once)\n",
		traj.Store.Hits, traj.Store.Misses)

	// 4. A fresh Runner over the same store recomputes nothing: every cell
	//    resolves as a disk hit and the result sections are bitwise
	//    identical (the Store counters are the only difference, which is
	//    why the Trajectory keeps them in a separate section).
	warm := collect(*name, *dir, full, comp)
	fmt.Fprintf(os.Stderr, "warm run: %d store hits, %d misses\n", warm.Store.Hits, warm.Store.Misses)
	if warm.Store.Misses != 0 {
		log.Fatal("warm run recomputed cells — the store should have served everything")
	}
}

// collect warms the subset's cells on a fresh Runner attached to the store
// at dir and assembles the trajectory, as `slcbench -matrix` does.
func collect(name, dir string, full, comp []experiments.Cell) *experiments.Trajectory {
	r := experiments.NewRunner()
	st, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		log.Fatal(err)
	}
	r.Store = st
	if len(full) > 0 {
		if _, err := r.RunAll(full, 0); err != nil {
			log.Fatal(err)
		}
	}
	if len(comp) > 0 {
		if err := r.CompressAll(comp, 0); err != nil {
			log.Fatal(err)
		}
	}
	traj, err := experiments.CollectTrajectory(r, "matrix:"+name, full, comp)
	if err != nil {
		log.Fatal(err)
	}
	return traj
}
