// MAG sensitivity: the paper's Figure 9 in miniature — run one benchmark at
// 16, 32 and 64-byte memory access granularity and watch how the effective
// compression ratio, SLC's opportunity, and the speedup move.
//
// Run with: go run ./examples/mag_sensitivity [-bench NN]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/compress"
	"repro/internal/experiments"
	"repro/internal/slc"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "NN", "benchmark to sweep")
	flag.Parse()

	w, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	r := experiments.NewRunner()
	fmt.Printf("%s: TSLC-OPT across memory access granularities (threshold = MAG/2)\n\n", *bench)
	fmt.Printf("%-6s %10s %10s %10s %10s %10s\n",
		"MAG", "E2MC-eff", "TSLC-eff", "speedup", "error", "bandwidth")
	for _, mag := range []compress.MAG{compress.MAG16, compress.MAG32, compress.MAG64} {
		base, err := r.Run(w, experiments.E2MCConfig(mag))
		if err != nil {
			log.Fatal(err)
		}
		res, err := r.Run(w, experiments.TSLCConfig(slc.OPT, mag, mag.Bits()/2))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %10.2f %10.2f %10.3f %9.4f%% %10.3f\n",
			mag,
			base.Comp.EffectiveRatio(), res.Comp.EffectiveRatio(),
			base.Sim.TimeNs/res.Sim.TimeNs,
			res.ErrorFrac*100,
			float64(res.Sim.DramBytes)/float64(base.Sim.DramBytes))
	}
	fmt.Println("\nLarger granularity costs the lossless baseline more effective ratio")
	fmt.Println("(fewer points where a block can beat the burst rounding), which is")
	fmt.Println("exactly where selective lossy compression has the most to recover.")
}
