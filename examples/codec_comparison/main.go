// Codec comparison: run one benchmark's memory image through the six
// lossless codecs of the paper's Figure 1 (BDI, FPC, C-PACK, E2MC, BPC,
// HyComp) and compare raw vs effective compression ratio at 32-byte memory
// access granularity. For the post-paper families (lz4b, zcd) see
// examples/matrix_subsets or `slcbench -matrix new-codecs`.
//
// Run with: go run ./examples/codec_comparison [-bench TP]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/compress"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "TP", "benchmark to analyse")
	flag.Parse()

	w, err := workloads.ByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	r := experiments.NewRunner()
	fmt.Printf("%s: raw vs effective compression ratio (MAG 32B)\n\n", *bench)
	fmt.Printf("%-8s %8s %10s %14s\n", "codec", "raw", "effective", "lost to MAG")
	for _, c := range experiments.Fig1Codecs {
		st, err := r.CompressionOnly(w, experiments.BaselineConfig(c.Codec, compress.MAG32))
		if err != nil {
			log.Fatal(err)
		}
		raw, eff := st.RawRatio(), st.EffectiveRatio()
		fmt.Printf("%-8s %8.2f %10.2f %13.1f%%\n", c.Label, raw, eff, (1-eff/raw)*100)
	}
	fmt.Println("\nThe gap between raw and effective ratio is the paper's motivation:")
	fmt.Println("compressed blocks a few bytes above a burst boundary still fetch the")
	fmt.Println("whole extra 32-byte burst. SLC closes that gap selectively.")
}
