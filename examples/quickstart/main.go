// Quickstart: compress one 128-byte block losslessly with E2MC and
// selectively lossily with SLC, and see why the memory access granularity
// makes the difference.
//
// Run with: go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"repro/internal/compress"
	"repro/internal/compress/e2mc"
	"repro/internal/slc"
)

func main() {
	// 1. Train the E2MC entropy table on data with the character of a GPU
	//    workload: tick-quantised floats with occasional full-precision
	//    values (the online sampling phase of the real system).
	trainer := e2mc.NewTrainer()
	seed := uint64(42)
	next := func() uint64 { seed ^= seed << 13; seed ^= seed >> 7; seed ^= seed << 17; return seed }
	makeBlock := func() []byte {
		b := make([]byte, compress.BlockSize)
		for i := 0; i < 32; i++ {
			v := 2 + float32(next()%512)/256
			if next()%5 == 0 {
				v = 2 + float32(next()%(1<<20))/float32(1<<19)
			}
			binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
		}
		return b
	}
	for i := 0; i < 500; i++ {
		trainer.Sample(makeBlock())
	}
	table, err := trainer.Build(0, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Compress a block losslessly.
	block := makeBlock()
	lossless := e2mc.New(table)
	enc := lossless.Compress(block)
	mag := compress.MAG32
	fmt.Printf("E2MC (lossless): %d bits = %d bytes → %d bursts of %s (%d bytes fetched)\n",
		enc.Bits, enc.Bytes(), mag.Bursts(enc.Bits), mag, mag.EffectiveBytes(enc.Bits))
	fmt.Printf("  raw ratio %.2f, effective ratio %.2f\n",
		compress.RawRatio(enc.Bits), compress.EffectiveRatio(enc.Bits, mag))

	// 3. The same block through SLC: if the lossless size is only a few
	//    bytes above a burst boundary, SLC approximates just enough symbols
	//    to save a whole burst.
	codec, err := slc.New(table, slc.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	d := codec.Decide(block)
	fmt.Printf("\nSLC decision: mode=%s comp=%db budget=%db extra=%db\n",
		d.Mode, d.CompBits, d.BudgetBits, d.ExtraBits)
	if d.Mode == slc.ModeLossy {
		fmt.Printf("  approximating %d symbols starting at %d (tree level %d, %d bits)\n",
			d.Node.Count, d.Node.Start, d.Node.Level, d.Node.Sum)
	}
	encL := codec.Compress(block)
	fmt.Printf("SLC: %d bits → %d bursts (saved %d burst(s) vs lossless)\n",
		encL.Bits, mag.Bursts(encL.Bits), mag.Bursts(enc.Bits)-mag.Bursts(encL.Bits))

	// 4. Decompress and measure the damage.
	out := make([]byte, compress.BlockSize)
	if err := codec.Decompress(encL, out); err != nil {
		log.Fatal(err)
	}
	var maxRel float64
	for i := 0; i < 32; i++ {
		a := math.Float32frombits(binary.LittleEndian.Uint32(block[i*4:]))
		b := math.Float32frombits(binary.LittleEndian.Uint32(out[i*4:]))
		if a != 0 {
			rel := math.Abs(float64(b-a)) / math.Abs(float64(a))
			if rel > maxRel {
				maxRel = rel
			}
		}
	}
	fmt.Printf("max per-value relative error after round trip: %.4f%%\n", maxRel*100)
}
